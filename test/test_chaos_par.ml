(* The parallel deduplicated explorer, pinned to the sequential oracle.

   The sequential Explore.run path is untouched by the parallel engine and
   serves as the trusted oracle: on small spaces (n ≤ 3, horizon ≤ 6, ≤ 2
   faults) the parallel explorer must report the same violation-or-clean
   verdict and the same examined/space counts at every -j, with and without
   fingerprint dedup. QCheck properties cover fingerprint soundness and the
   order-insensitivity of report merging; a regression case nails the
   silent-budget footgun on the parallel path. *)

open Helpers

let small_config _sys ~max_faults ~horizon =
  { Chaos.Explore.max_faults; horizon; stride = 1; budget = 100_000; max_steps = 2_000;
    kinds = [ Chaos.Schedule.Crash_k ]; degrade = false }

(* The violation signature the differential test compares: everything but
   the exec (which the runner reproduces deterministically anyway). *)
let viol_sig (v : Chaos.Explore.violation) =
  Chaos.Schedule.to_string v.Chaos.Explore.schedule
  ^ "|" ^ v.Chaos.Explore.monitor ^ "|" ^ v.Chaos.Explore.reason
  ^ "|" ^ string_of_bool v.Chaos.Explore.proven

let verdict r = Option.map viol_sig r.Chaos.Explore.violation

(* --- Satellite 1: differential vs the sequential explorer --- *)

let check_differential name sys ~max_faults ~horizon =
  let config = small_config sys ~max_faults ~horizon in
  let seq = Chaos.Explore.run ~config sys in
  List.iter
    (fun j ->
      let tag suffix = Printf.sprintf "%s -j%d %s" name j suffix in
      (* Without dedup the parallel report must be identical in full. *)
      let par = Chaos.Explore.run_par ~config ~domains:j ~dedup:false sys in
      Alcotest.(check int) (tag "examined") seq.Chaos.Explore.examined par.Chaos.Explore.examined;
      Alcotest.(check int) (tag "space") seq.Chaos.Explore.space par.Chaos.Explore.space;
      Alcotest.(check bool) (tag "truncated") seq.Chaos.Explore.truncated
        par.Chaos.Explore.truncated;
      Alcotest.(check int) (tag "step budget hits") seq.Chaos.Explore.step_budget_hits
        par.Chaos.Explore.step_budget_hits;
      Alcotest.(check int) (tag "monitor truncations") seq.Chaos.Explore.monitor_truncations
        par.Chaos.Explore.monitor_truncations;
      Alcotest.(check int) (tag "undelivered") seq.Chaos.Explore.undelivered_crashes
        par.Chaos.Explore.undelivered_crashes;
      Alcotest.(check int) (tag "dedup hits (off)") 0 par.Chaos.Explore.dedup_hits;
      Alcotest.(check (option string)) (tag "verdict") (verdict seq) (verdict par);
      (* With dedup, the verdict and the examined/space/truncated counts
         still coincide (pruning inherits proven verdicts, never invents or
         suppresses them); only monitor_truncations may undercount. *)
      let ded = Chaos.Explore.run_par ~config ~domains:j ~dedup:true sys in
      Alcotest.(check int) (tag "dedup examined") seq.Chaos.Explore.examined
        ded.Chaos.Explore.examined;
      Alcotest.(check int) (tag "dedup space") seq.Chaos.Explore.space ded.Chaos.Explore.space;
      Alcotest.(check bool) (tag "dedup truncated") seq.Chaos.Explore.truncated
        ded.Chaos.Explore.truncated;
      Alcotest.(check int) (tag "dedup step budget hits") seq.Chaos.Explore.step_budget_hits
        ded.Chaos.Explore.step_budget_hits;
      Alcotest.(check int) (tag "dedup undelivered") seq.Chaos.Explore.undelivered_crashes
        ded.Chaos.Explore.undelivered_crashes;
      Alcotest.(check bool) (tag "dedup truncations bounded") true
        (ded.Chaos.Explore.monitor_truncations <= seq.Chaos.Explore.monitor_truncations);
      Alcotest.(check (option string)) (tag "dedup verdict") (verdict seq) (verdict ded))
    [ 1; 2; 4 ]

let test_differential_direct () =
  check_differential "direct f=1" (Protocols.Direct.system ~n:2 ~f:1) ~max_faults:2 ~horizon:6;
  check_differential "direct f=0" (Protocols.Direct.system ~n:2 ~f:0) ~max_faults:1 ~horizon:5;
  check_differential "direct n=3" (Protocols.Direct.system ~n:3 ~f:2) ~max_faults:2 ~horizon:4

let test_differential_tob () =
  check_differential "tob f=0" (Protocols.Tob_direct.system ~n:2 ~f:0) ~max_faults:1 ~horizon:5;
  check_differential "tob f=1" (Protocols.Tob_direct.system ~n:2 ~f:1) ~max_faults:2 ~horizon:6

(* --- Satellite 2: fingerprint soundness --- *)

(* Structurally equal configurations get equal fingerprints, even when
   rebuilt through fresh arrays (no physical sharing). *)
let test_fingerprint_structural () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:2 ~pid:1 ] in
  let r = Chaos.Runner.run ~schedule ~max_steps:500 sys in
  let s = Model.Exec.last_state (r.Chaos.Runner.exec) in
  let rebuilt = Model.State.with_proc s 0 s.Model.State.procs.(0) in
  Alcotest.check state_testable "rebuilt state equal" s rebuilt;
  Alcotest.(check int) "equal states, equal fingerprints" (Model.State.fingerprint s)
    (Model.State.fingerprint rebuilt);
  (* The observable-history fingerprint ignores crash placement. *)
  let obs = Model.Exec.obs_fingerprint r.Chaos.Runner.exec in
  let crashed = Model.Exec.append_fail sys r.Chaos.Runner.exec 0 in
  Alcotest.(check int) "obs fingerprint blind to fail events" obs
    (Model.Exec.obs_fingerprint crashed);
  Alcotest.(check bool) "distinct decisions, distinct state fingerprints" true
    (Model.State.fingerprint s
    <> Model.State.fingerprint (Model.State.with_decision s 0 (Ioa.Value.int 7)))

(* Deterministic replay of the same schedule reaches fingerprint-identical
   configurations at every prefix. *)
let qcheck_fingerprint_replay =
  let gen = QCheck2.Gen.(pair (int_bound 5) (int_bound 1)) in
  qtest "equal exec prefixes have equal fingerprints" ~count:50 gen (fun (step, pid) ->
      let sys = Protocols.Direct.system ~n:2 ~f:1 in
      let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step ~pid ] in
      let r1 = Chaos.Runner.run ~schedule ~max_steps:300 sys in
      let r2 = Chaos.Runner.run ~schedule ~max_steps:300 sys in
      let s1 = Model.Exec.last_state r1.Chaos.Runner.exec
      and s2 = Model.Exec.last_state r2.Chaos.Runner.exec in
      Model.State.equal s1 s2
      && Model.State.fingerprint s1 = Model.State.fingerprint s2
      && Model.Exec.obs_fingerprint r1.Chaos.Runner.exec
         = Model.Exec.obs_fingerprint r2.Chaos.Runner.exec)

(* Dedup never suppresses a violation the no-dedup explorer finds: on
   sampled configurations, run both and compare verdicts (and counts). *)
let qcheck_dedup_preserves_verdicts =
  let gen = QCheck2.Gen.(triple (int_range 0 2) (int_range 1 6) (int_bound 2)) in
  qtest "dedup preserves verdicts" ~count:40 gen (fun (max_faults, horizon, which) ->
      let sys =
        match which with
        | 0 -> Protocols.Direct.system ~n:2 ~f:0
        | 1 -> Protocols.Direct.system ~n:2 ~f:1
        | _ -> Protocols.Register_wait.system ()
      in
      let config = small_config sys ~max_faults ~horizon in
      let plain = Chaos.Explore.run_par ~config ~domains:1 ~dedup:false sys in
      let ded = Chaos.Explore.run_par ~config ~domains:1 ~dedup:true sys in
      verdict plain = verdict ded && plain.Chaos.Explore.examined = ded.Chaos.Explore.examined)

(* --- Satellite 3: merging is associative / order-insensitive --- *)

let qcheck_merge_order_insensitive =
  (* One shared violating run provides realistic violation payloads. *)
  let sys = Protocols.Register_wait.system () in
  let exec =
    (Chaos.Runner.run ~schedule:Chaos.Schedule.empty ~max_steps:200 sys).Chaos.Runner.exec
  in
  let record_gen rank =
    QCheck2.Gen.(
      let* budget_hit = bool and* truncations = int_bound 3 and* undelivered = int_bound 2 in
      let* deduped = bool and* statically_pruned = bool and* por_pruned = bool in
      let* violating = int_bound 4 in
      let* step = int_bound 6 and* pid = int_bound 1 and* proven = bool in
      let found =
        if violating = 0 then
          Some
            Chaos.Explore.
              {
                schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step ~pid ];
                monitor = (if proven then "f-termination" else "agreement");
                reason = "generated";
                proven;
                exec;
                steps = Model.Exec.length exec;
                degraded_to = None;
              }
        else None
      in
      return
        Chaos.Explore.
          {
            rank;
            budget_hit;
            truncations;
            undelivered;
            undelivered_n = 0;
            vacuous = 0;
            deduped;
            statically_pruned;
            por_pruned;
            parent = None;
            found;
          })
  in
  let gen =
    QCheck2.Gen.(
      let* n = int_range 0 24 in
      let* records = flatten_l (List.init n record_gen) in
      let* shuffled = shuffle_l records in
      let* owners = list_repeat n (int_bound 3) in
      return (records, shuffled, owners, n))
  in
  let report_sig (r : Chaos.Explore.report) =
    Format.asprintf "%d/%d/%b/%d/%d/%d/%d/%d/%d/%s" r.Chaos.Explore.examined
      r.Chaos.Explore.space r.Chaos.Explore.truncated r.Chaos.Explore.step_budget_hits
      r.Chaos.Explore.monitor_truncations r.Chaos.Explore.undelivered_crashes
      r.Chaos.Explore.dedup_hits r.Chaos.Explore.static_prunes r.Chaos.Explore.por_prunes
      (Option.value (verdict r) ~default:"clean")
  in
  qtest "merge is order- and partition-insensitive" ~count:100 gen
    (fun (records, shuffled, owners, n) ->
      let space = n + 5 and scheduled = n in
      let flat = Chaos.Explore.merge ~space ~scheduled [ records ] in
      (* Partition the shuffled records across 4 "workers" and merge. *)
      let buckets = Array.make 4 [] in
      List.iteri
        (fun i r ->
          let w = List.nth owners i in
          buckets.(w) <- r :: buckets.(w))
        shuffled;
      let split = Chaos.Explore.merge ~space ~scheduled (Array.to_list buckets) in
      report_sig flat = report_sig split)

(* --- Satellite 4: the silent-budget footgun stays dead --- *)

let test_silent_budget_regression () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let config =
    { (small_config sys ~max_faults:1 ~horizon:6) with Chaos.Explore.budget = 3 }
  in
  let check name (r : Chaos.Explore.report) =
    Alcotest.(check bool) (name ^ ": space exceeds budget") true (r.Chaos.Explore.space > 3);
    Alcotest.(check int) (name ^ ": examined = budget") 3 r.Chaos.Explore.examined;
    Alcotest.(check bool) (name ^ ": truncated flagged") true r.Chaos.Explore.truncated;
    (* The footgun: a clean verdict on a partial sweep without the flag. *)
    Alcotest.(check bool) (name ^ ": no silent clean verdict") false
      (r.Chaos.Explore.violation = None
      && r.Chaos.Explore.examined < r.Chaos.Explore.space
      && not r.Chaos.Explore.truncated)
  in
  check "sequential" (Chaos.Explore.run ~config sys);
  check "par j=2 dedup" (Chaos.Explore.run_par ~config ~domains:2 ~dedup:true sys);
  check "par j=4 no-dedup" (Chaos.Explore.run_par ~config ~domains:4 ~dedup:false sys)

(* --- Driver integration: -j routes through the parallel engine --- *)

let test_driver_parallel () =
  let sys = Protocols.Register_wait.system () in
  let config = { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 1 } in
  let seq = Chaos.Driver.run ~shrink:false (Chaos.Driver.Systematic config) sys in
  let par = Chaos.Driver.run ~shrink:false ~domains:4 (Chaos.Driver.Systematic config) sys in
  let monitor_of r =
    match r.Chaos.Driver.outcome with
    | Chaos.Driver.Passed -> None
    | Chaos.Driver.Violated { original; _ } -> Some original.Chaos.Explore.monitor
  in
  Alcotest.(check (option string)) "same monitor violated" (monitor_of seq) (monitor_of par);
  Alcotest.(check int) "same examined" seq.Chaos.Driver.examined par.Chaos.Driver.examined

let suite =
  ( "chaos-par",
    [
      Alcotest.test_case "differential: direct at -j 1,2,4" `Quick test_differential_direct;
      Alcotest.test_case "differential: tob at -j 1,2,4" `Quick test_differential_tob;
      Alcotest.test_case "fingerprints are structural" `Quick test_fingerprint_structural;
      qcheck_fingerprint_replay;
      qcheck_dedup_preserves_verdicts;
      qcheck_merge_order_insensitive;
      Alcotest.test_case "silent-budget regression (seq + par)" `Quick
        test_silent_budget_regression;
      Alcotest.test_case "driver -j parity" `Quick test_driver_parallel;
    ] )
