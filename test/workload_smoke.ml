(* @workload-smoke: a bounded multi-shot serve run with mixed mid-traffic
   faults on a resilient protocol (must complete every op, recover the
   crashed replica, apply retried ops exactly once, and keep the incremental
   linearizability monitor green), plus tob under its Thm 9 drop fault (must
   abort with a shot violation and a minimized witness). Wired into the
   default `dune runtest` so tier-1 always exercises the workload engine end
   to end. *)

let fail fmt = Format.kasprintf (fun s -> Format.printf "workload-smoke FAILED: %s@." s; exit 1) fmt

let resilient () =
  let schedule =
    match Chaos.Schedule.parse "crash@6:1,partition@20:0|1.2:32,drop@40:cons:0" with
    | Ok s -> Some s
    | Error e -> fail "bad schedule: %s" e
  in
  let cfg =
    {
      (Workload.Engine.default_config ~proto:"direct" ()) with
      Workload.Engine.clients = 8;
      ops = 400;
      rate = 8;
      batch = 8;
      pipeline = 2;
      rejoin_after = 12;
      seed = 7;
      schedule;
      pin_oracle = true;
    }
  in
  let r = Workload.Engine.run cfg in
  print_string (Workload.Report.render r);
  Format.printf "@.";
  (match r.Workload.Report.outcome with
  | Workload.Report.Served -> ()
  | o -> fail "expected SERVED, got %a" Workload.Report.pp_outcome o);
  if r.Workload.Report.completed <> 400 then fail "completed %d/400" r.Workload.Report.completed;
  if r.Workload.Report.rejoins < 1 then fail "crashed replica never rejoined";
  if r.Workload.Report.catch_up_replayed < 1 then fail "no catch-up replay happened";
  if r.Workload.Report.retries < 1 then fail "no retry was exercised";
  if r.Workload.Report.duplicate_applications <> 0 then
    fail "%d duplicate applications" r.Workload.Report.duplicate_applications;
  if r.Workload.Report.lin <> Workload.Linear_inc.Ok then fail "lin monitor not ok";
  if r.Workload.Report.oracle_pinned <> Some true then fail "oracle pin disagrees";
  (* Seeded exact replay: the rendered report is byte-identical. *)
  let r2 = Workload.Engine.run cfg in
  if not (String.equal (Workload.Report.render r) (Workload.Report.render r2)) then
    fail "seeded replay is not byte-identical"

let tob_falls () =
  let schedule =
    match Chaos.Schedule.parse "drop@6:tob:0" with
    | Ok s -> Some s
    | Error e -> fail "bad schedule: %s" e
  in
  let cfg =
    {
      (Workload.Engine.default_config ~proto:"tob" ()) with
      Workload.Engine.params = { Protocols.Registry.default_params with n = 2; f = 0 };
      clients = 4;
      ops = 64;
      rate = 4;
      batch = 4;
      seed = 7;
      schedule;
    }
  in
  let r = Workload.Engine.run cfg in
  print_string (Workload.Report.render r);
  Format.printf "@.";
  match r.Workload.Report.outcome with
  | Workload.Report.Shot_violation { minimized; _ } ->
    (match Chaos.Schedule.parse minimized with
    | Ok s -> if Chaos.Schedule.n_faults s < 1 then fail "empty minimized witness"
    | Error e -> fail "minimized witness does not parse: %s" e)
  | o -> fail "expected a shot violation on tob, got %a" Workload.Report.pp_outcome o

let () =
  resilient ();
  tob_falls ();
  Format.printf "workload-smoke OK@."
