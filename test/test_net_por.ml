(* Net-fault partial-order reduction (ISSUE 7): the differential-oracle
   battery for the footprint-driven slide argument.

   Three layers of evidence, cheapest claim to full-report pin:

   1. QCheck soundness — every *independence* claim the static relation
      makes (net⇄task, net⇄net, net⇄crash) is validated by concretely
      executing both orders from a random reachable state and comparing
      the resulting [State.t]s, events, applicability and vacuousness;
   2. exhaustive small-G(C) order swaps — the same commutation check over
      every reachable state of a small system (BFS under tasks, crashes
      and net mutations), every fault kind, every task, both policies;
   3. differential oracles — `--por`/`--static-prune` reports pinned
      field-for-field against the unpruned sequential explorer on tob's
      mixed crash+drop space and a truncated register-vote sweep over all
      kinds, with a ≥20% prune-rate bar and the seeded-mode invariance
      pin (POR flags must not perturb `Chaos.Rand` streams). *)

open Helpers
module Fp = Analysis.Footprint
module If = Analysis.Interfere

let direct_f1 () = Protocols.Direct.system ~n:2 ~f:1
let tob2 () = Protocols.Tob_direct.system ~n:2 ~f:0
let tob3 () = Protocols.Tob_direct.system ~n:3 ~f:1

let sites sys =
  Array.to_list sys.Model.System.services
  |> List.concat_map (fun (c : Model.Service.t) ->
         List.map
           (fun ep -> c.Model.Service.id, ep)
           (Array.to_list c.Model.Service.endpoints))

let omission_of sys (service, endpoint) =
  Fp.Omission { svc = Model.System.service_pos sys service; endpoint }

let net_kinds =
  [ Model.Event.Drop; Model.Event.Duplicate; Model.Event.Delay 1; Model.Event.Delay 2 ]

(* One analysis context per system, shared across QCheck iterations. *)
type ctx = {
  sys : Model.System.t;
  inter : If.t;
  ss : (string * int) list;
  tasks : Model.Task.t array;
}

let ctx sys =
  { sys; inter = If.analyze ~max_crashes:1 sys; ss = sites sys; tasks = sys.Model.System.tasks }

let ctxs = lazy [| ctx (direct_f1 ()); ctx (tob2 ()) |]
let pick_ctx i = (Lazy.force ctxs).((abs i) mod 2)

(* A random reachable state: walk from the initialized state mixing task
   turns (both policies), net mutations and at most one crash — the states
   the chaos runner ranges over under its kind lattice with f = 1. *)
let walk { sys; ss; tasks; _ } moves =
  let nt = Array.length tasks in
  let np = Model.System.n_processes sys in
  let ns = List.length ss in
  let crashes = ref 0 in
  List.fold_left
    (fun s m ->
      let m = abs m in
      match m mod 10 with
      | 0 when !crashes < 1 ->
        incr crashes;
        snd (Model.System.apply_fail sys s (m / 10 mod np))
      | 1 | 2 -> (
        let service, endpoint = List.nth ss (m / 10 mod ns) in
        let kind = List.nth net_kinds (m / 100 mod List.length net_kinds) in
        match Model.System.apply_net sys s ~service ~endpoint ~kind with
        | Some (_, s') -> s'
        | None -> s)
      | _ -> (
        let policy =
          if m mod 2 = 0 then Model.System.real_policy else Model.System.dummy_policy
        in
        match Model.System.transition ~policy sys s tasks.(m / 10 mod nt) with
        | Some (_, s') -> s'
        | None -> s))
    (Model.System.initialize sys (Chaos.Runner.default_inputs sys))
    moves

let moves_gen = QCheck2.Gen.(list_size (int_bound 60) (int_range 0 1_000_000))

(* Apply an optional-step action, threading the state through. *)
let opt_step f s = match f s with Some (e, s') -> Some e, s' | None -> None, s

(* Both orders of (net mutation, task turn): independence must preserve the
   final state, both events (hence applicability and vacuousness), exactly. *)
let omission_task_commutes { sys; _ } ~policy s ~site:(service, endpoint) ~kind tk =
  let net s = Model.System.apply_net sys s ~service ~endpoint ~kind in
  let task s = Model.System.transition ~policy sys s tk in
  let n1, s1 = opt_step net s in
  let t1, s1 = opt_step task s1 in
  let t2, s2 = opt_step task s in
  let n2, s2 = opt_step net s2 in
  Option.equal Model.Event.equal n1 n2
  && Option.equal Model.Event.equal t1 t2
  && Model.State.equal s1 s2

(* The first (site, task) pair from a rotating offset the relation claims
   independent — every QCheck iteration then validates a real claim. *)
let independent_site_task c off =
  let combos =
    List.concat_map (fun site -> Array.to_list (Array.map (fun tk -> site, tk) c.tasks)) c.ss
  in
  let n = List.length combos in
  let rec go i =
    if i >= n then None
    else
      let site, tk = List.nth combos ((off + i) mod n) in
      if If.net_independent c.inter (omission_of c.sys site) tk then Some (site, tk)
      else go (i + 1)
  in
  go 0

let test_independent_pairs_exist () =
  Array.iter
    (fun c ->
      Alcotest.(check bool)
        "some omission⇄task independence claimed" true
        (independent_site_task c 0 <> None))
    (Lazy.force ctxs)

let qcheck_omission_task_sound name kind =
  let gen = QCheck2.Gen.(tup4 moves_gen (int_range 0 1_000_000) bool bool) in
  qtest
    (Printf.sprintf "independence sound: %s vs task (1000 random states)" name)
    ~count:1000 gen
    (fun (moves, off, which, pol) ->
      let c = pick_ctx (Bool.to_int which) in
      let s = walk c moves in
      match independent_site_task c off with
      | None -> true
      | Some (site, tk) ->
        let policy =
          if pol then Model.System.real_policy else Model.System.dummy_policy
        in
        omission_task_commutes c ~policy s ~site ~kind tk)

(* net ⇄ net: claimed-independent deliveries (distinct buffers) commute. *)
let qcheck_net_net_sound =
  let gen = QCheck2.Gen.(tup5 moves_gen (int_range 0 1_000_000) (int_range 0 1_000_000) bool bool) in
  qtest "independence sound: net vs net (1000 random states)" ~count:1000 gen
    (fun (moves, i, j, which, flip) ->
      let c = pick_ctx (Bool.to_int which) in
      let s = walk c moves in
      let ns = List.length c.ss in
      let site1 = List.nth c.ss (i mod ns) and site2 = List.nth c.ss (j mod ns) in
      let k1 = List.nth net_kinds (i / ns mod List.length net_kinds)
      and k2 = List.nth net_kinds (j / ns mod List.length net_kinds) in
      let k1, k2 = if flip then k2, k1 else k1, k2 in
      if If.net_net_interferes (omission_of c.sys site1) (omission_of c.sys site2) then
        true
      else begin
        let app (service, endpoint) kind s =
          Model.System.apply_net c.sys s ~service ~endpoint ~kind
        in
        let a1, s1 = opt_step (app site1 k1) s in
        let b1, s1 = opt_step (app site2 k2) s1 in
        let b2, s2 = opt_step (app site2 k2) s in
        let a2, s2 = opt_step (app site1 k1) s2 in
        Option.equal Model.Event.equal a1 a2
        && Option.equal Model.Event.equal b1 b2
        && Model.State.equal s1 s2
      end)

(* net ⇄ crash: the relation claims universal independence; validate it
   concretely — a crash bit and a response buffer never alias. *)
let qcheck_net_crash_sound =
  let gen = QCheck2.Gen.(tup4 moves_gen (int_range 0 1_000_000) (int_range 0 1_000_000) bool) in
  qtest "independence sound: net vs crash (1000 random states)" ~count:1000 gen
    (fun (moves, i, p, which) ->
      let c = pick_ctx (Bool.to_int which) in
      let s = walk c moves in
      let ns = List.length c.ss in
      let site = List.nth c.ss (i mod ns) in
      let kind = List.nth net_kinds (i / ns mod List.length net_kinds) in
      let pid = p mod Model.System.n_processes c.sys in
      let op = omission_of c.sys site in
      If.net_crash_interferes op ~pid = false
      &&
      let service, endpoint = site in
      let net s = Model.System.apply_net c.sys s ~service ~endpoint ~kind in
      let n1, s1 = opt_step net s in
      let s1 = snd (Model.System.apply_fail c.sys s1 pid) in
      let s2 = snd (Model.System.apply_fail c.sys s pid) in
      let n2, s2 = opt_step net s2 in
      Option.equal Model.Event.equal n1 n2 && Model.State.equal s1 s2)

(* Topology ⇄ task: the runner's partition gate ([Schedule.blocked]) may
   only ever hold back tasks the relation flags as topology-interfering —
   a claimed-independent task runs identically whether or not a partition
   is active, whatever the buffers hold. *)
let blocks_variants n =
  List.init n (fun pid -> [ [ pid ] ]) @ if n = 2 then [ [ [ 0 ]; [ 1 ] ] ] else []

let topology_gate_respects_independence c s =
  List.for_all
    (fun blocks ->
      let sched =
        Chaos.Schedule.make [ Chaos.Schedule.partition ~step:0 ~blocks ~heal_at:100_000 ]
      in
      let comp = Chaos.Schedule.compile sched c.sys in
      ignore (Chaos.Schedule.due comp ~step:0);
      Array.for_all
        (fun tk ->
          (not (Chaos.Schedule.blocked comp c.sys s tk))
          || If.net_interferes c.inter Fp.Topology tk)
        c.tasks)
    (blocks_variants (Model.System.n_processes c.sys))

let qcheck_topology_task_sound =
  let gen = QCheck2.Gen.(pair moves_gen bool) in
  qtest "independence sound: partition gate vs task (1000 random states)" ~count:1000 gen
    (fun (moves, which) ->
      let c = pick_ctx (Bool.to_int which) in
      topology_gate_respects_independence c (walk c moves))

(* --- exhaustive order swaps over a small G(C) --- *)

let reachable c ~cap =
  let module Tbl = Hashtbl in
  let seen = Tbl.create 256 in
  let key s = Model.State.fingerprint s in
  let mem s =
    match Tbl.find_opt seen (key s) with
    | Some states -> List.exists (Model.State.equal s) states
    | None -> false
  in
  let add s = Tbl.replace seen (key s) (s :: Option.value (Tbl.find_opt seen (key s)) ~default:[]) in
  let out = ref [] in
  let queue = Queue.create () in
  let push s =
    if (not (mem s)) && Tbl.length seen < cap then begin
      add s;
      out := s :: !out;
      Queue.push s queue
    end
  in
  push (Model.System.initialize c.sys (Chaos.Runner.default_inputs c.sys));
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Array.iter
      (fun tk ->
        List.iter
          (fun policy ->
            match Model.System.transition ~policy c.sys s tk with
            | Some (_, s') -> push s'
            | None -> ())
          [ Model.System.real_policy; Model.System.dummy_policy ])
      c.tasks;
    if Spec.Iset.cardinal s.Model.State.failed < 1 then
      for pid = 0 to Model.System.n_processes c.sys - 1 do
        push (snd (Model.System.apply_fail c.sys s pid))
      done;
    List.iter
      (fun site ->
        List.iter
          (fun kind ->
            let service, endpoint = site in
            match Model.System.apply_net c.sys s ~service ~endpoint ~kind with
            | Some (_, s') -> push s'
            | None -> ())
          net_kinds)
      c.ss
  done;
  !out

let test_exhaustive_small_gc () =
  let c = ctx (direct_f1 ()) in
  let states = reachable c ~cap:400 in
  Alcotest.(check bool) "a nontrivial reachable set" true (List.length states > 10);
  let checked = ref 0 in
  List.iter
    (fun s ->
      (* Every omission kind vs every task, both policies. *)
      List.iter
        (fun site ->
          Array.iter
            (fun tk ->
              if If.net_independent c.inter (omission_of c.sys site) tk then
                List.iter
                  (fun kind ->
                    List.iter
                      (fun policy ->
                        incr checked;
                        if not (omission_task_commutes c ~policy s ~site ~kind tk) then
                          Alcotest.failf "omission⇄task claim failed at %s"
                            (Format.asprintf "%a" Model.Task.pp tk))
                      [ Model.System.real_policy; Model.System.dummy_policy ])
                  net_kinds)
            c.tasks)
        c.ss;
      (* Every claimed-independent net pair. *)
      List.iter
        (fun s1 ->
          List.iter
            (fun s2 ->
              if not (If.net_net_interferes (omission_of c.sys s1) (omission_of c.sys s2))
              then begin
                incr checked;
                let app (service, endpoint) kind st =
                  Model.System.apply_net c.sys st ~service ~endpoint ~kind
                in
                let a1, st1 = opt_step (app s1 Model.Event.Drop) s in
                let b1, st1 = opt_step (app s2 Model.Event.Duplicate) st1 in
                let b2, st2 = opt_step (app s2 Model.Event.Duplicate) s in
                let a2, st2 = opt_step (app s1 Model.Event.Drop) st2 in
                if
                  not
                    (Option.equal Model.Event.equal a1 a2
                    && Option.equal Model.Event.equal b1 b2
                    && Model.State.equal st1 st2)
                then Alcotest.fail "net⇄net claim failed"
              end)
            c.ss)
        c.ss;
      (* Every net op vs every crash. *)
      List.iter
        (fun site ->
          for pid = 0 to Model.System.n_processes c.sys - 1 do
            incr checked;
            let service, endpoint = site in
            let net st = Model.System.apply_net c.sys st ~service ~endpoint ~kind:Model.Event.Drop in
            let n1, st1 = opt_step net s in
            let st1 = snd (Model.System.apply_fail c.sys st1 pid) in
            let st2 = snd (Model.System.apply_fail c.sys s pid) in
            let n2, st2 = opt_step net st2 in
            if not (Option.equal Model.Event.equal n1 n2 && Model.State.equal st1 st2)
            then Alcotest.fail "net⇄crash claim failed"
          done)
        c.ss;
      (* The partition gate never holds back a claimed-independent task. *)
      if not (topology_gate_respects_independence c s) then
        Alcotest.fail "partition gate held back a claimed-independent task")
    states;
  Alcotest.(check bool) "exhaustive sweep nonvacuous" true (!checked > 1_000)

(* --- differential oracles: --por/--static-prune vs the sequential run --- *)

let config sys ~kinds ~max_faults ~budget =
  { (Chaos.Explore.default_config sys) with
    Chaos.Explore.max_faults;
    kinds;
    budget;
    max_steps = 4_000;
  }

let violation_sig (v : Chaos.Explore.violation) =
  ( Chaos.Schedule.to_string v.Chaos.Explore.schedule,
    v.Chaos.Explore.monitor,
    v.Chaos.Explore.reason,
    v.Chaos.Explore.proven,
    v.Chaos.Explore.steps,
    v.Chaos.Explore.degraded_to )

(* Every verdict-bearing field of the report; the prune counters themselves
   (and dedup hits) are the only fields allowed to differ. *)
let report_sig (r : Chaos.Explore.report) =
  ( ( r.Chaos.Explore.examined,
      r.Chaos.Explore.space,
      r.Chaos.Explore.truncated,
      r.Chaos.Explore.wall_truncated ),
    ( r.Chaos.Explore.step_budget_hits,
      r.Chaos.Explore.monitor_truncations,
      r.Chaos.Explore.undelivered_crashes,
      r.Chaos.Explore.undelivered_net,
      r.Chaos.Explore.vacuous_net_faults ),
    Option.map violation_sig r.Chaos.Explore.violation )

let sig_testable =
  Alcotest.testable
    (fun ppf ((a, b, c, d), (e, f, g, h, i), v) ->
      Format.fprintf ppf "examined=%d space=%d trunc=%b wall=%b budget=%d mtrunc=%d uc=%d un=%d vac=%d %s"
        a b c d e f g h i
        (match v with
        | None -> "clean"
        | Some (s, m, _, _, _, _) -> Printf.sprintf "violation %s [%s]" s m))
    (fun a b -> a = b)

let test_differential_tob_mixed () =
  let sys = tob3 () in
  let cfg =
    config sys ~kinds:[ Chaos.Schedule.Crash_k; Chaos.Schedule.Drop_k ] ~max_faults:1
      ~budget:1_000_000
  in
  let oracle = Chaos.Explore.run ~config:cfg sys in
  List.iter
    (fun j ->
      let par =
        Chaos.Explore.run_par ~config:cfg ~domains:j ~dedup:false ~static_prune:true
          ~por:true sys
      in
      Alcotest.check sig_testable
        (Printf.sprintf "-j%d report matches the unpruned oracle" j)
        (report_sig oracle) (report_sig par);
      let pruned = par.Chaos.Explore.static_prunes + par.Chaos.Explore.por_prunes in
      Alcotest.(check bool)
        (Printf.sprintf "-j%d prune rate >= 20%% (%d/%d)" j pruned
           par.Chaos.Explore.examined)
        true
        (5 * pruned >= par.Chaos.Explore.examined))
    [ 1; 2 ]

let test_differential_register_vote_truncated () =
  let sys = Protocols.Register_vote.system () in
  let cfg =
    config sys
      ~kinds:
        [ Chaos.Schedule.Crash_k; Chaos.Schedule.Drop_k; Chaos.Schedule.Dup_k;
          Chaos.Schedule.Delay_k; Chaos.Schedule.Partition_k ]
      ~max_faults:1 ~budget:60
  in
  let oracle = Chaos.Explore.run ~config:cfg sys in
  List.iter
    (fun j ->
      let par =
        Chaos.Explore.run_par ~config:cfg ~domains:j ~dedup:false ~static_prune:true
          ~por:true sys
      in
      Alcotest.check sig_testable
        (Printf.sprintf "-j%d truncated sweep matches the unpruned oracle" j)
        (report_sig oracle) (report_sig par))
    [ 1; 2 ]

(* Mixed-kind spaces compose with dedup too: the fingerprint table and the
   slide argument prune along different axes, and the verdict-bearing
   fields still pin to the oracle (counters under dedup are documented to
   undercount, so only the verdict and examined/space are compared). *)
let test_mixed_por_dedup_compose () =
  let sys = tob3 () in
  let cfg =
    config sys ~kinds:[ Chaos.Schedule.Crash_k; Chaos.Schedule.Drop_k ] ~max_faults:1
      ~budget:1_000_000
  in
  let oracle = Chaos.Explore.run ~config:cfg sys in
  let par =
    Chaos.Explore.run_par ~config:cfg ~domains:2 ~dedup:true ~static_prune:true ~por:true
      sys
  in
  Alcotest.(check (pair int (option (triple string string bool))))
    "dedup+por verdict matches"
    ( oracle.Chaos.Explore.examined,
      Option.map
        (fun (v : Chaos.Explore.violation) ->
          ( Chaos.Schedule.to_string v.Chaos.Explore.schedule,
            v.Chaos.Explore.monitor,
            v.Chaos.Explore.proven ))
        oracle.Chaos.Explore.violation )
    ( par.Chaos.Explore.examined,
      Option.map
        (fun (v : Chaos.Explore.violation) ->
          ( Chaos.Schedule.to_string v.Chaos.Explore.schedule,
            v.Chaos.Explore.monitor,
            v.Chaos.Explore.proven ))
        par.Chaos.Explore.violation )

(* --- satellite 2: seeded-mode RNG streams are POR-invariant --- *)

let driver_sig (r : Chaos.Driver.report) =
  ( ( r.Chaos.Driver.examined,
      r.Chaos.Driver.space,
      r.Chaos.Driver.step_budget_hits,
      r.Chaos.Driver.monitor_truncations ),
    ( r.Chaos.Driver.undelivered_crashes,
      r.Chaos.Driver.undelivered_net,
      r.Chaos.Driver.vacuous_net_faults,
      r.Chaos.Driver.static_prunes,
      r.Chaos.Driver.por_prunes ),
    match r.Chaos.Driver.outcome with
    | Chaos.Driver.Passed -> None
    | Chaos.Driver.Violated { original; minimized; replayed; _ } ->
      Some
        ( Chaos.Schedule.to_string original.Chaos.Explore.schedule,
          original.Chaos.Explore.monitor,
          Option.map
            (fun (m : Chaos.Explore.violation) ->
              Chaos.Schedule.to_string m.Chaos.Explore.schedule)
            minimized,
          replayed ) )

let test_seeded_por_invariant () =
  let sys = tob2 () in
  let mode =
    Chaos.Driver.Seeded
      {
        seed = 42;
        runs = 40;
        max_faults = 2;
        horizon = 12;
        max_steps = 2_000;
        kinds =
          [ Chaos.Schedule.Crash_k; Chaos.Schedule.Drop_k; Chaos.Schedule.Partition_k ];
        degrade = false;
      }
  in
  let off = Chaos.Driver.run mode sys in
  let on = Chaos.Driver.run ~static_prune:true ~por:true mode sys in
  Alcotest.(check bool) "seeded reports byte-identical with POR on vs off" true
    (driver_sig off = driver_sig on);
  Alcotest.(check int) "seeded mode never statically prunes" 0
    on.Chaos.Driver.static_prunes;
  Alcotest.(check int) "seeded mode never POR-prunes" 0 on.Chaos.Driver.por_prunes

let suite =
  ( "net-por",
    [
      Alcotest.test_case "independence claims are nonvacuous" `Quick
        test_independent_pairs_exist;
      qcheck_omission_task_sound "drop" Model.Event.Drop;
      qcheck_omission_task_sound "dup" Model.Event.Duplicate;
      qcheck_omission_task_sound "delay" (Model.Event.Delay 1);
      qcheck_net_net_sound;
      qcheck_net_crash_sound;
      qcheck_topology_task_sound;
      Alcotest.test_case "exhaustive small-G(C) order swaps" `Quick
        test_exhaustive_small_gc;
      Alcotest.test_case "differential: tob mixed crash+drop, >=20% pruned" `Quick
        test_differential_tob_mixed;
      Alcotest.test_case "differential: register-vote truncated all-kind sweep" `Quick
        test_differential_register_vote_truncated;
      Alcotest.test_case "por composes with dedup on mixed kinds" `Quick
        test_mixed_por_dedup_compose;
      Alcotest.test_case "seeded RNG streams POR-invariant" `Quick
        test_seeded_por_invariant;
    ] )
