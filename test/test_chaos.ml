(* The chaos engine: fault schedules, monitors, systematic exploration,
   shrinking, and witness rendering. The register-wait cases are the
   acceptance path: a 1-resilience claim over wait-free registers falls to a
   single crash, found systematically, shrunk to a minimal schedule, and
   proven non-terminating by lasso. *)

open Helpers

let sched_testable = Alcotest.testable Chaos.Schedule.pp Chaos.Schedule.equal

(* --- Schedule: parsing, printing, compilation --- *)

let test_parse_round_trip () =
  let check spec =
    match Chaos.Schedule.parse spec with
    | Error e -> Alcotest.failf "parse %S: %s" spec e
    | Ok s -> (
      match Chaos.Schedule.parse (Chaos.Schedule.to_string s) with
      | Error e -> Alcotest.failf "re-parse of %S: %s" (Chaos.Schedule.to_string s) e
      | Ok s' -> Alcotest.check sched_testable spec s s')
  in
  List.iter check
    [ "crash@0:1"; "crash@3:0,silence@5:cons"; "helpful,crash@2:1"; "4:1"; "" ]

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Chaos.Schedule.parse spec with
      | Ok _ -> Alcotest.failf "expected parse error for %S" spec
      | Error _ -> ())
    [ "crash@x:1"; "crash@1:"; "explode@1:2"; "crash@-1:0" ]

let test_validate () =
  let sys = Protocols.Register_wait.system () in
  let bad_pid = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:0 ~pid:7 ] in
  let bad_svc = Chaos.Schedule.make [ Chaos.Schedule.silence ~step:0 ~service:"nope" ] in
  let ok = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:0 ~pid:1 ] in
  Alcotest.(check bool) "bad pid" true (Result.is_error (Chaos.Schedule.validate sys bad_pid));
  Alcotest.(check bool) "bad svc" true (Result.is_error (Chaos.Schedule.validate sys bad_svc));
  Alcotest.(check bool) "ok" true (Result.is_ok (Chaos.Schedule.validate sys ok))

(* The compile-down contract: a schedule drives any protocol through the
   plain Model.Scheduler.run, unchanged. *)
let test_to_scheduler () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:0 ~pid:0 ] in
  let sched, policy = Chaos.Schedule.to_scheduler schedule sys in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let exec, _ = Model.Scheduler.run ~policy ~max_steps:10_000 sys exec0 sched in
  let s = Model.Exec.last_state exec in
  Alcotest.(check bool) "pid 0 failed" true (Spec.Iset.mem 0 s.Model.State.failed);
  (* f = 1 tolerates the crash: the survivor still decides. *)
  Alcotest.(check bool) "termination" true (Model.Properties.termination s)

(* --- Acceptance: register-wait falls to systematic exploration --- *)

let test_register_wait_violation () =
  let sys = Protocols.Register_wait.system () in
  let config =
    { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 1 }
  in
  let report = Chaos.Driver.run ~shrink:true (Chaos.Driver.Systematic config) sys in
  match report.Chaos.Driver.outcome with
  | Chaos.Driver.Passed -> Alcotest.fail "expected an f-termination violation"
  | Chaos.Driver.Violated { original; minimized; witness; _ } ->
    Alcotest.(check string) "monitor" "f-termination" original.Chaos.Explore.monitor;
    let m = Option.get minimized in
    Alcotest.(check bool) "minimal: at most 2 crashes" true
      (Chaos.Schedule.n_crashes m.Chaos.Explore.schedule <= 2);
    Alcotest.(check bool) "proven by lasso" true m.Chaos.Explore.proven;
    (* Registers are wait-free: the shrinker discovers no silencing is even
       needed — one crash under the helpful adversary suffices. *)
    Alcotest.(check int) "minimal: exactly 1 crash" 1
      (Chaos.Schedule.n_crashes m.Chaos.Explore.schedule);
    (match witness with
    | Some (Engine.Counterexample.Non_termination { proven; failed; exec }) ->
      Alcotest.(check bool) "witness proven" true proven;
      Alcotest.(check bool) "witness has failures" true (failed <> []);
      Alcotest.(check bool) "witness exec extractable" true
        (Engine.Counterexample.witness_exec
           (Engine.Counterexample.Non_termination { proven; failed; exec })
        <> None)
    | _ -> Alcotest.fail "expected a Non_termination witness")

(* direct with f = 1 over n = 2 genuinely tolerates one failure: the whole
   1-fault sweep passes. *)
let test_direct_resilient_passes () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let config =
    { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 1 }
  in
  let r = Chaos.Explore.run ~config sys in
  Alcotest.(check bool) "no violation" true (r.Chaos.Explore.violation = None);
  Alcotest.(check bool) "not truncated" false r.Chaos.Explore.truncated;
  Alcotest.(check int) "full space examined" r.Chaos.Explore.space r.Chaos.Explore.examined

(* direct with f = 0 falls to one crash — but only to the silencing
   adversary: shrinking must keep Prefer_dummy. *)
let test_direct_f0_needs_silencing () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let config =
    { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 1 }
  in
  let report = Chaos.Driver.run ~shrink:true (Chaos.Driver.Systematic config) sys in
  match report.Chaos.Driver.outcome with
  | Chaos.Driver.Passed -> Alcotest.fail "expected a violation"
  | Chaos.Driver.Violated { minimized; _ } ->
    let m = Option.get minimized in
    Alcotest.(check string) "monitor" "f-termination" m.Chaos.Explore.monitor;
    Alcotest.(check int) "one crash" 1 (Chaos.Schedule.n_crashes m.Chaos.Explore.schedule);
    Alcotest.(check bool) "silencing adversary required" true
      (m.Chaos.Explore.schedule.Chaos.Schedule.default_pref = Model.System.Prefer_dummy)

(* --- Truncation is reported, never silent --- *)

let test_truncation_reported () =
  let sys = Protocols.Register_wait.system () in
  let config =
    { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 1; budget = 1 }
  in
  let r = Chaos.Explore.run ~config sys in
  Alcotest.(check int) "examined capped" 1 r.Chaos.Explore.examined;
  Alcotest.(check bool) "space larger" true (r.Chaos.Explore.space > 1);
  Alcotest.(check bool) "truncated flag" true r.Chaos.Explore.truncated;
  let rendered = Format.asprintf "%a" Chaos.Explore.pp_report r in
  Alcotest.(check bool) "report says TRUNCATED" true (contains rendered "TRUNCATED")

(* Step-budget truncation: when --max-steps cuts a run short, the outcome is
   explicitly downgraded, never silently upgraded. With liveness monitors on,
   an undecided truncated run is only *bounded evidence* of violation
   (proven = false); with safety-only monitors, the budget hit itself is
   counted and reported. *)
let test_step_budget_reported () =
  let sys = Protocols.Register_wait.system () in
  let config =
    { (Chaos.Explore.default_config sys) with Chaos.Explore.max_faults = 0; max_steps = 3 }
  in
  let r = Chaos.Explore.run ~config sys in
  (match r.Chaos.Explore.violation with
  | Some v ->
    Alcotest.(check string) "monitor" "f-termination" v.Chaos.Explore.monitor;
    Alcotest.(check bool) "bounded evidence only" false v.Chaos.Explore.proven;
    let rendered = Format.asprintf "%a" Chaos.Explore.pp_violation v in
    Alcotest.(check bool) "labelled bounded" true (contains rendered "bounded evidence")
  | None -> Alcotest.fail "expected a bounded-evidence violation");
  let r = Chaos.Explore.run ~monitors:(Chaos.Monitor.safety ()) ~config sys in
  Alcotest.(check int) "budget hit counted" 1 r.Chaos.Explore.step_budget_hits;
  let rendered = Format.asprintf "%a" Chaos.Explore.pp_report r in
  Alcotest.(check bool) "report mentions step budget" true (contains rendered "step budget")

(* --- Seeded chaos mode: detection + replay + shrink --- *)

let test_seeded_mode_finds_and_replays () =
  let sys = Protocols.Register_wait.system () in
  let mode =
    Chaos.Driver.Seeded
      { seed = 1; runs = 64; max_faults = 1; horizon = 16; max_steps = 4_000;
        kinds = [ Chaos.Schedule.Crash_k; Chaos.Schedule.Silence_k ]; degrade = false }
  in
  let report = Chaos.Driver.run ~shrink:true mode sys in
  match report.Chaos.Driver.outcome with
  | Chaos.Driver.Passed -> Alcotest.fail "expected some seed to find the violation"
  | Chaos.Driver.Violated { replayed; minimized; _ } ->
    Alcotest.(check (option bool)) "replay identical" (Some true) replayed;
    Alcotest.(check bool) "shrunk to ≤2 crashes" true
      (Chaos.Schedule.n_crashes (Option.get minimized).Chaos.Explore.schedule <= 2)

(* --- Monitors --- *)

let test_monitor_linearizability_truncates () =
  let sys = Protocols.Register_wait.system () in
  let m = Chaos.Monitor.linearizability ~max_history:1 () in
  (* A failure-free quiescent run produces register histories longer than 1
     event, so the monitor must decline rather than pass silently. *)
  let r =
    Chaos.Runner.run ~monitors:[ m ] ~schedule:Chaos.Schedule.empty ~max_steps:4_000 sys
  in
  Alcotest.(check bool) "truncation surfaced" true
    (r.Chaos.Runner.monitor_truncations <> [])

let test_monitor_linearizability_passes () =
  let sys = Protocols.Register_wait.system () in
  let r =
    Chaos.Runner.run
      ~monitors:(Chaos.Monitor.defaults ())
      ~schedule:Chaos.Schedule.empty ~max_steps:4_000 sys
  in
  match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation { monitor; reason; _ } ->
    Alcotest.failf "failure-free run violated %s: %s" monitor reason
  | Chaos.Runner.Lasso _ | Chaos.Runner.Budget | Chaos.Runner.Pruned -> ()

(* Crashes scheduled beyond the step budget are counted, not dropped. *)
let test_undelivered_crashes_reported () =
  let sys = Protocols.Register_wait.system () in
  let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:1_000_000 ~pid:0 ] in
  let r = Chaos.Runner.run ~schedule ~max_steps:200 sys in
  Alcotest.(check int) "undelivered" 1 r.Chaos.Runner.undelivered_crashes

let suite =
  ( "chaos",
    [
      Alcotest.test_case "schedule parse round-trips" `Quick test_parse_round_trip;
      Alcotest.test_case "schedule parse rejects junk" `Quick test_parse_errors;
      Alcotest.test_case "schedule validation" `Quick test_validate;
      Alcotest.test_case "compiles to Scheduler.t + policy" `Quick test_to_scheduler;
      Alcotest.test_case "register-wait: found, shrunk, proven" `Quick
        test_register_wait_violation;
      Alcotest.test_case "direct f=1: full sweep passes" `Quick test_direct_resilient_passes;
      Alcotest.test_case "direct f=0: needs the silencing adversary" `Quick
        test_direct_f0_needs_silencing;
      Alcotest.test_case "enumeration truncation reported" `Quick test_truncation_reported;
      Alcotest.test_case "step-budget truncation reported" `Quick test_step_budget_reported;
      Alcotest.test_case "seeded mode: finds, replays, shrinks" `Quick
        test_seeded_mode_finds_and_replays;
      Alcotest.test_case "linearizability monitor truncates loudly" `Quick
        test_monitor_linearizability_truncates;
      Alcotest.test_case "monitors pass failure-free" `Quick test_monitor_linearizability_passes;
      Alcotest.test_case "undelivered crashes counted" `Quick test_undelivered_crashes_reported;
    ] )
