(* The incremental-analysis layer: structural hashing, the persistent
   cache, rename/permutation reuse, and the warm-vs-cold differentials.

   The perturbation properties are the soundness side of the cache: any
   edit an analysis could observe — a task's step function, the service
   wiring, the resilience parameter — must move the structural hash, or a
   warm cache would replay a stale verdict. The differentials are the
   completeness side: a warm cache (including one warmed by a renamed or
   service-permuted twin) must reproduce the cold analysis byte for byte. *)

open Helpers
module Value = Ioa.Value
module Registry = Protocols.Registry
module Structhash = Analysis.Structhash
module Cache = Analysis.Cache

(* Fresh scratch directory per call; unique enough across the suite. *)
let scratch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "boost-cache-test-%d-%d" (Unix.getpid ()) !counter)
    in
    ignore (Cache.clear ~dir);
    dir

(* --- system surgery: the "edits" the hash must notice --- *)

(* Tag one process's step outcomes: the smallest observable edit to a task's
   transition function. The stale [tasks] array is irrelevant — these
   systems are only ever hashed, never run. *)
let perturb_step pid (sys : Model.System.t) =
  let tag v = Value.Pair (v, Value.int 9) in
  {
    sys with
    Model.System.processes =
      Array.map
        (fun (p : Model.Process.t) ->
          if p.Model.Process.pid <> pid then p
          else
            {
              p with
              Model.Process.step =
                (fun s ->
                  match p.Model.Process.step s with
                  | Model.Process.Invoke { service; op; next } ->
                    Model.Process.Invoke { service; op = tag op; next }
                  | Model.Process.Decide { value; next } ->
                    Model.Process.Decide { value = tag value; next }
                  | Model.Process.Internal v -> Model.Process.Internal (tag v));
            })
        sys.Model.System.processes;
  }

(* Bump one service's resilience level — a wiring/parameter edit. *)
let perturb_resilience j (sys : Model.System.t) =
  {
    sys with
    Model.System.services =
      Array.mapi
        (fun i (c : Model.Service.t) ->
          if i <> j then c
          else { c with Model.Service.resilience = c.Model.Service.resilience + 1 })
        sys.Model.System.services;
  }

(* A consistently renamed and service-permuted twin: every service id gets a
   fresh name, the service array is reversed, and every process reference
   (invocations out, responses in) is translated. Semantically identical;
   presentationally distinct. *)
let renamed_twin (sys : Model.System.t) =
  let rename id = "tw-" ^ id in
  let unrename id =
    if String.length id > 3 && String.sub id 0 3 = "tw-" then
      String.sub id 3 (String.length id - 3)
    else id
  in
  let services =
    Array.to_list sys.Model.System.services
    |> List.rev_map (fun (c : Model.Service.t) ->
           { c with Model.Service.id = rename c.Model.Service.id })
  in
  let processes =
    Array.to_list sys.Model.System.processes
    |> List.map (fun (p : Model.Process.t) ->
           {
             p with
             Model.Process.step =
               (fun s ->
                 match p.Model.Process.step s with
                 | Model.Process.Invoke { service; op; next } ->
                   Model.Process.Invoke { service = rename service; op; next }
                 | o -> o);
             on_response =
               (fun s ~service r -> p.Model.Process.on_response s ~service:(unrename service) r);
           })
  in
  Model.System.make ~processes ~services

(* --- structural hashing --- *)

let test_deterministic () =
  List.iter
    (fun (e : Registry.entry) ->
      let h1 = Structhash.system (e.Registry.build Registry.default_params) in
      let h2 = Structhash.system (e.Registry.build Registry.default_params) in
      Alcotest.(check string) (e.Registry.name ^ " full") (Structhash.key h1)
        (Structhash.key h2);
      Alcotest.(check string) (e.Registry.name ^ " sem") (Structhash.sem_key h1)
        (Structhash.sem_key h2))
    Registry.all

let test_fleet_distinct () =
  let keys = List.map (fun (_, h) -> Structhash.key h) (Registry.manifest ()) in
  Alcotest.(check int) "13 distinct full hashes"
    (List.length keys)
    (List.length (List.sort_uniq String.compare keys))

(* Protocols whose processes react to both seed inputs — where every edit
   below is observable within the probe bound. *)
let probe_entries =
  List.filter_map Registry.find [ "direct"; "register-vote"; "tob"; "mp-all"; "queue" ]

let prop_perturbation_moves_hash =
  let gen =
    QCheck2.Gen.(
      triple (int_bound (List.length probe_entries - 1)) (int_bound 1) (int_bound 1))
  in
  qtest "any observable edit moves the structural hash" ~count:40 gen
    (fun (which, kind, idx) ->
      let e = List.nth probe_entries which in
      let sys = e.Registry.build Registry.default_params in
      let edited =
        match kind with
        | 0 -> perturb_step (idx mod Array.length sys.Model.System.processes) sys
        | _ -> perturb_resilience (idx mod Array.length sys.Model.System.services) sys
      in
      let h = Structhash.system sys and h' = Structhash.system edited in
      h.Structhash.full <> h'.Structhash.full && not (Structhash.equal_sem h h'))

let test_f_parameter_moves_hash () =
  let h0 = Structhash.system (Protocols.Direct.system ~n:2 ~f:0) in
  let h1 = Structhash.system (Protocols.Direct.system ~n:2 ~f:1) in
  Alcotest.(check bool) "f moves full" true (h0.Structhash.full <> h1.Structhash.full);
  Alcotest.(check bool) "f moves sem" true (not (Structhash.equal_sem h0 h1))

(* --- rename and permutation detection --- *)

let test_rename_detection () =
  let sys = Protocols.Register_vote.system () in
  let twin = renamed_twin sys in
  let h = Structhash.system sys and h' = Structhash.system twin in
  Alcotest.(check bool) "sem preserved" true (Structhash.equal_sem h h');
  Alcotest.(check bool) "full moved" true (h.Structhash.full <> h'.Structhash.full);
  match Cache.diff [ "p", h ] [ "p", h' ] with
  | { Cache.changes = [ (_, Cache.Renamed pairs) ]; removed = [] } ->
    (* Behaviorally tied services pair in table order, so the exact old/new
       matching is free — but every pair must cross the "tw-" rename. *)
    Alcotest.(check bool) "rename pairs reported" true (pairs <> []);
    Alcotest.(check (list string)) "renames cover the id map"
      (List.sort String.compare (List.map (fun (o, _) -> "tw-" ^ o) pairs))
      (List.sort String.compare (List.map snd pairs))
  | _ -> Alcotest.fail "expected a Renamed classification"

let test_diff_classes () =
  let h = Structhash.system (Protocols.Register_vote.system ()) in
  let h' = Structhash.system (perturb_step 0 (Protocols.Register_vote.system ())) in
  let r =
    Cache.diff
      [ "same", h; "edited", h; "gone", h ]
      [ "same", h; "edited", h'; "fresh", h ]
  in
  Alcotest.(check bool) "same unchanged" true
    (List.assoc "same" r.Cache.changes = Cache.Unchanged);
  Alcotest.(check bool) "edited changed" true
    (List.assoc "edited" r.Cache.changes = Cache.Changed);
  Alcotest.(check bool) "fresh added" true
    (List.assoc "fresh" r.Cache.changes = Cache.Added);
  Alcotest.(check (list string)) "removed" [ "gone" ] r.Cache.removed

(* The golden reuse path: a fixpoint solution stored by the original
   protocol is found by its renamed/permuted twin, mapped through the
   permutation, and yields the same findings the twin computes cold. The
   split protocol's per-process services are behaviorally distinct, so the
   reversed service table forces a genuine (non-identity) permutation. *)
let test_rename_cache_reuse () =
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  let sys = Protocols.Split.system ~n:2 in
  let h = Structhash.system sys in
  let cold = Analysis.Lint.analyze ~max_faults:1 sys in
  Cache.reach_store c h ~max_faults:1 ~inputs_key:"idef" cold.Analysis.Lint.reach;
  let twin = renamed_twin sys in
  let h' = Structhash.system twin in
  (match Cache.reach_find c h' ~max_faults:1 ~inputs_key:"idef" twin with
  | None -> Alcotest.fail "twin missed the stored solution"
  | Some reach ->
    let warm = Analysis.Lint.analyze ~max_faults:1 ~reach twin in
    let cold' = Analysis.Lint.analyze ~max_faults:1 twin in
    Alcotest.(check int) "same exit code"
      (Analysis.Lint.exit_code cold')
      (Analysis.Lint.exit_code warm);
    Alcotest.(check (list string)) "same findings"
      (List.map (Format.asprintf "%a" Analysis.Lint.pp_finding)
         cold'.Analysis.Lint.findings)
      (List.map (Format.asprintf "%a" Analysis.Lint.pp_finding)
         warm.Analysis.Lint.findings));
  Alcotest.(check int) "hit counted" 1 c.Cache.stats.Cache.hits;
  Alcotest.(check int) "rename counted" 1 c.Cache.stats.Cache.renamed;
  ignore (Cache.clear ~dir)

(* --- envelope hygiene: stale and corrupt entries --- *)

let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".entry")

let test_corrupt_quarantine () =
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  Cache.lint_store c ~key:"k" { Cache.human = "report\n"; findings = []; code = 0 };
  (match entry_files dir with
  | [ f ] ->
    let path = Filename.concat dir f in
    let content = In_channel.with_open_bin path In_channel.input_all in
    (* Truncate mid-payload: the header survives, the decode cannot. *)
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (String.sub content 0 (String.length content - 3)))
  | _ -> Alcotest.fail "expected exactly one entry");
  Alcotest.(check bool) "corrupt entry is a miss" true
    (Cache.lint_find c ~key:"k" = None);
  Alcotest.(check int) "corrupt counted" 1 c.Cache.stats.Cache.corrupt;
  Alcotest.(check int) "file quarantined" 1 (Cache.corrupt_count ~dir);
  Alcotest.(check (list string)) "no live entry left" [] (entry_files dir);
  (* Quarantined files are never consulted again: the next lookup is a
     plain miss, and a store resurrects the key. *)
  Alcotest.(check bool) "then a plain miss" true (Cache.lint_find c ~key:"k" = None);
  Alcotest.(check int) "still one corrupt" 1 c.Cache.stats.Cache.corrupt;
  ignore (Cache.clear ~dir)

let test_stale_envelope_dropped () =
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  Cache.lint_store c ~key:"k" { Cache.human = "report\n"; findings = []; code = 0 };
  (match entry_files dir with
  | [ f ] ->
    let path = Filename.concat dir f in
    let content = In_channel.with_open_bin path In_channel.input_all in
    let nl = String.index content '\n' in
    (* A well-formed header from a future analyzer: stale, not corrupt. *)
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (Printf.sprintf "boost-cache 1 %d lint k" (Structhash.analyzer_version + 1));
        Out_channel.output_string oc
          (String.sub content nl (String.length content - nl)))
  | _ -> Alcotest.fail "expected exactly one entry");
  Alcotest.(check bool) "stale entry is a miss" true
    (Cache.lint_find c ~key:"k" = None);
  Alcotest.(check int) "stale counted" 1 c.Cache.stats.Cache.stale;
  Alcotest.(check int) "not corrupt" 0 c.Cache.stats.Cache.corrupt;
  Alcotest.(check (list string)) "silently removed" [] (entry_files dir);
  Alcotest.(check int) "nothing quarantined" 0 (Cache.corrupt_count ~dir);
  ignore (Cache.clear ~dir)

(* --- warm-vs-cold differentials over the whole fleet --- *)

let lint_fleet ?cache () =
  List.map (fun e -> Registry.lint ?cache ~max_faults:1 e Registry.default_params)
    Registry.all

let test_lint_warm_equals_cold () =
  let dir = scratch () in
  let cold = lint_fleet () in
  let c1 = Cache.open_ ~dir in
  let first = lint_fleet ~cache:c1 () in
  Alcotest.(check int) "cold run: no hits" 0 c1.Cache.stats.Cache.hits;
  let c2 = Cache.open_ ~dir in
  let warm = lint_fleet ~cache:c2 () in
  Alcotest.(check int) "warm run: one hit per protocol" (List.length Registry.all)
    c2.Cache.stats.Cache.hits;
  Alcotest.(check int) "warm run: no misses" 0 c2.Cache.stats.Cache.misses;
  List.iter2
    (fun (a : Registry.lint_result) (b : Registry.lint_result) ->
      Alcotest.(check string) ("populate " ^ a.Registry.name) a.Registry.human
        b.Registry.human)
    cold first;
  List.iter2
    (fun (a : Registry.lint_result) (b : Registry.lint_result) ->
      Alcotest.(check string) ("replay " ^ a.Registry.name) a.Registry.human
        b.Registry.human;
      Alcotest.(check int) ("code " ^ a.Registry.name) a.Registry.code b.Registry.code)
    cold warm;
  ignore (Cache.clear ~dir)

(* Change-impact: after "editing" exactly one protocol, a warm sweep
   re-analyzes that protocol alone — everyone else replays. *)
let test_single_edit_reanalyzes_one () =
  let dir = scratch () in
  let c1 = Cache.open_ ~dir in
  ignore (lint_fleet ~cache:c1 ());
  let c2 = Cache.open_ ~dir in
  let edited = "register-vote" in
  List.iter
    (fun (e : Registry.entry) ->
      let e =
        if String.equal e.Registry.name edited then
          { e with Registry.build = (fun p -> perturb_step 0 (e.Registry.build p)) }
        else e
      in
      ignore (Registry.lint ~cache:c2 ~max_faults:1 e Registry.default_params))
    Registry.all;
  Alcotest.(check int) "hits: everyone else"
    (List.length Registry.all - 1)
    c2.Cache.stats.Cache.hits;
  (* The edited protocol misses its lint entry, then its reach and
     footprint entries. *)
  Alcotest.(check int) "misses: the edited protocol only" 3 c2.Cache.stats.Cache.misses;
  Alcotest.(check int) "writes: its three fresh entries" 3 c2.Cache.stats.Cache.writes;
  ignore (Cache.clear ~dir)

(* --- the chaos verdict cache --- *)

let chaos_config =
  {
    Chaos.Explore.max_faults = 1;
    horizon = 8;
    stride = 1;
    budget = 500;
    max_steps = 400;
    kinds = [ Chaos.Schedule.Crash_k ];
    degrade = false;
  }

let render_report = Format.asprintf "%a" Chaos.Driver.pp_report

let chaos_differential ~name ~domains ~static_prune () =
  let dir = scratch () in
  let e = Option.get (Registry.find name) in
  let sys () = e.Registry.build Registry.default_params in
  let run ?cache () =
    let sys = sys () in
    let cache = Option.map (fun c -> c, Structhash.system sys) cache in
    Chaos.Driver.run ~domains ~static_prune ?cache (Chaos.Driver.Systematic chaos_config)
      sys
  in
  let cold = render_report (run ()) in
  let c1 = Cache.open_ ~dir in
  let first = render_report (run ~cache:c1 ()) in
  Alcotest.(check int) "cold: no verdict hits" 0 c1.Cache.stats.Cache.hits;
  let c2 = Cache.open_ ~dir in
  let warm = render_report (run ~cache:c2 ()) in
  Alcotest.(check bool) "warm: replayed from cache" true
    (c2.Cache.stats.Cache.hits >= 1 && c2.Cache.stats.Cache.misses = 0);
  Alcotest.(check string) "populate = cold" cold first;
  Alcotest.(check string) "replay = cold" cold warm;
  (* Tamper with the stored verdict: the decoder (or the replay validation)
     rejects it, the entry is quarantined, and the cold path reproduces the
     same report. *)
  (match
     List.find_opt
       (fun f -> String.length f > 6 && String.sub f 0 6 = "chaos-")
       (entry_files dir)
   with
  | None -> Alcotest.fail "no chaos entry stored"
  | Some f ->
    let path = Filename.concat dir f in
    let content = In_channel.with_open_bin path In_channel.input_all in
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc
          (String.sub content 0 (String.length content - 2))));
  let c3 = Cache.open_ ~dir in
  let requickened = render_report (run ~cache:c3 ()) in
  Alcotest.(check string) "tampered entry falls back cold" cold requickened;
  Alcotest.(check bool) "tampering was noticed" true
    (c3.Cache.stats.Cache.corrupt >= 1);
  ignore (Cache.clear ~dir)

let test_chaos_verdict_cache_violating () =
  chaos_differential ~name:"register-wait" ~domains:1 ~static_prune:false ()

let test_chaos_verdict_cache_passing () =
  chaos_differential ~name:"register-vote" ~domains:1 ~static_prune:false ()

let test_chaos_verdict_cache_parallel () =
  chaos_differential ~name:"register-wait" ~domains:2 ~static_prune:true ()

let suite =
  ( "cache",
    [
      Alcotest.test_case "hashing is deterministic" `Quick test_deterministic;
      Alcotest.test_case "fleet hashes are distinct" `Quick test_fleet_distinct;
      prop_perturbation_moves_hash;
      Alcotest.test_case "f parameter moves the hash" `Quick test_f_parameter_moves_hash;
      Alcotest.test_case "rename/permutation detected" `Quick test_rename_detection;
      Alcotest.test_case "diff classifies changes" `Quick test_diff_classes;
      Alcotest.test_case "renamed twin reuses the solution" `Quick
        test_rename_cache_reuse;
      Alcotest.test_case "corrupt entries quarantined" `Quick test_corrupt_quarantine;
      Alcotest.test_case "stale envelopes dropped" `Quick test_stale_envelope_dropped;
      Alcotest.test_case "lint: warm = cold, hit per protocol" `Quick
        test_lint_warm_equals_cold;
      Alcotest.test_case "one edit re-analyzes one protocol" `Quick
        test_single_edit_reanalyzes_one;
      Alcotest.test_case "chaos verdicts: violating sweep" `Quick
        test_chaos_verdict_cache_violating;
      Alcotest.test_case "chaos verdicts: passing sweep" `Quick
        test_chaos_verdict_cache_passing;
      Alcotest.test_case "chaos verdicts: parallel engine" `Quick
        test_chaos_verdict_cache_parallel;
    ] )
