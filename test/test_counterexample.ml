(* Tests for the counterexample engine: mechanized Theorems 2, 9, 10 on every
   candidate protocol, plus the resilience boundary where refutation must
   fail (the positive-results frontier). *)

open Helpers
module E = Engine
module C = Engine.Counterexample

let refute ?(failures = 1) sys = C.refute ~failures sys

let expect_non_termination name report =
  match report.C.outcome with
  | C.Refuted (C.Non_termination { exec; failed; proven }) ->
    Alcotest.(check bool) (name ^ ": lasso-proven") true proven;
    let final = Model.Exec.last_state exec in
    (* The witness is honest: the failed set matches, and no survivor that
       received an input has decided. *)
    Alcotest.check iset_testable
      (name ^ ": failures applied")
      (Spec.Iset.of_list failed)
      final.Model.State.failed;
    List.iter
      (fun (i, _) ->
        Alcotest.(check bool) (name ^ ": decider is failed") true (List.mem i failed))
      (Model.State.decided_pairs final)
  | o -> Alcotest.failf "%s: expected non-termination, got %a" name C.pp_outcome o

let expect_agreement_violation name report =
  match report.C.outcome with
  | C.Refuted (C.Agreement_violation exec) ->
    Alcotest.(check bool)
      (name ^ ": witness execution is failure-free")
      true
      (Model.Exec.is_failure_free exec);
    let final = Model.Exec.last_state exec in
    Alcotest.(check bool)
      (name ^ ": two decisions recorded")
      true
      (List.length (Model.State.decided_values final) >= 2)
  | o -> Alcotest.failf "%s: expected agreement violation, got %a" name C.pp_outcome o

let expect_not_refuted name report =
  match report.C.outcome with
  | C.Not_refuted _ -> ()
  | o -> Alcotest.failf "%s: expected not-refuted, got %a" name C.pp_outcome o

let test_theorem2_direct_n2 () =
  let report = refute (Protocols.Direct.system ~n:2 ~f:0) in
  expect_non_termination "direct n=2 f=0" report;
  (* The hook pivots on the consensus object via Lemma 7. *)
  (match report.C.pivot with
  | Some (C.Pivot_service _) -> ()
  | p ->
    Alcotest.failf "expected service pivot, got %s"
      (match p with
      | Some (C.Pivot_process i) -> "process " ^ string_of_int i
      | Some (C.Pivot_service k) -> "service " ^ string_of_int k
      | None -> "none"));
  Alcotest.(check bool) "hook reported" true (Option.is_some report.C.hook);
  Alcotest.(check bool) "bivalent init found" true (Option.is_some report.C.bivalent_inputs)

let test_theorem2_direct_n3 () =
  expect_non_termination "direct n=3 f=0" (refute (Protocols.Direct.system ~n:3 ~f:0))

let test_theorem2_direct_f1_claim2 () =
  expect_non_termination "direct n=3 f=1 claim 2"
    (refute ~failures:2 (Protocols.Direct.system ~n:3 ~f:1))

let test_boundary_not_refuted () =
  (* Claims within the services' resilience are NOT refuted — the positive
     frontier of §4/§6.3. *)
  expect_not_refuted "wait-free n=2" (refute (Protocols.Direct.system ~n:2 ~f:1));
  expect_not_refuted "f=1 claim 1" (refute (Protocols.Direct.system ~n:3 ~f:1));
  expect_not_refuted "wait-free n=3 claim 2" (refute ~failures:2 (Protocols.Direct.system ~n:3 ~f:2))

let test_split_agreement () =
  expect_agreement_violation "split" (refute (Protocols.Split.system ~n:2))

let test_register_vote_agreement () =
  expect_agreement_violation "register_vote" (refute (Protocols.Register_vote.system ()))

let test_register_wait_flip () =
  let report = refute (Protocols.Register_wait.system ()) in
  expect_non_termination "register_wait" report;
  (* No bivalent initialization: the Lemma 4 flip path was taken. *)
  Alcotest.(check bool) "no bivalent init" true (report.C.bivalent_inputs = None);
  match report.C.pivot with
  | Some (C.Pivot_process _) -> ()
  | _ -> Alcotest.fail "expected the flip process as pivot"

let test_theorem9_tob () =
  let report = refute (Protocols.Tob_direct.system ~n:2 ~f:0) in
  expect_non_termination "tob n=2 f=0" report;
  match report.C.pivot with
  | Some (C.Pivot_service _) -> ()
  | _ -> Alcotest.fail "expected the TOB service as pivot (Lemma 7)"

let test_theorem9_tob_n3 () =
  expect_non_termination "tob n=3 f=0" (refute (Protocols.Tob_direct.system ~n:3 ~f:0))

let test_theorem10_fd () =
  let report = refute (Protocols.Fd_allconnected.system ~n:3 ~f:0) in
  expect_non_termination "fd_allconnected n=3 f=0" report

let test_witness_fail_count_bounded () =
  let failures = 1 in
  let report = refute ~failures (Protocols.Direct.system ~n:3 ~f:0) in
  match report.C.outcome with
  | C.Refuted (C.Non_termination { failed; _ }) ->
    Alcotest.(check int) "exactly f+1 failures" failures (List.length failed)
  | o -> Alcotest.failf "unexpected %a" C.pp_outcome o

let test_staircase_in_report () =
  let report = refute (Protocols.Direct.system ~n:2 ~f:0) in
  Alcotest.(check int) "n+1 staircase entries" 3 (List.length report.C.staircase);
  let verdicts = List.map snd report.C.staircase in
  Alcotest.(check (list verdict_testable)) "staircase verdicts"
    [ E.Valence.Zero_valent; E.Valence.Bivalent; E.Valence.One_valent ]
    verdicts

let test_invalid_arguments () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  Alcotest.check_raises "failures = 0"
    (Invalid_argument "Counterexample.refute: need 0 < failures < n") (fun () ->
    ignore (C.refute ~failures:0 sys));
  Alcotest.check_raises "failures = n"
    (Invalid_argument "Counterexample.refute: need 0 < failures < n") (fun () ->
    ignore (C.refute ~failures:2 sys))

let test_budget_reported () =
  let report = C.refute ~max_states:3 ~failures:1 (Protocols.Direct.system ~n:2 ~f:0) in
  match report.C.outcome with
  | C.Out_of_budget _ -> ()
  | o -> Alcotest.failf "expected out-of-budget, got %a" C.pp_outcome o

let test_witness_execution_replayable () =
  (* The non-termination witness replays deterministically: applying its task
     labels to its own start state reproduces the final state. *)
  let report = refute (Protocols.Direct.system ~n:2 ~f:0) in
  match report.C.outcome with
  | C.Refuted (C.Non_termination { exec; _ }) ->
    let sys = Protocols.Direct.system ~n:2 ~f:0 in
    let replay = Model.Exec.init exec.Model.Exec.start in
    let final =
      List.fold_left
        (fun acc step ->
          match acc with
          | None -> None
          | Some e -> (
            match step.Model.Exec.label with
            | Model.Exec.L_init (i, v) -> Some (Model.Exec.append_init sys e i v)
            | Model.Exec.L_fail i -> Some (Model.Exec.append_fail sys e i)
            | Model.Exec.L_task t ->
              Model.Exec.append_task ~policy:Model.System.dummy_policy sys e t
            | Model.Exec.L_net { service; endpoint; kind } ->
              Model.Exec.append_net sys e ~service ~endpoint ~kind
            | Model.Exec.L_partition blocks -> Some (Model.Exec.append_partition e blocks)
            | Model.Exec.L_heal blocks -> Some (Model.Exec.append_heal e blocks)))
        (Some replay) (Model.Exec.steps exec)
    in
    (match final with
    | Some e ->
      Alcotest.check state_testable "witness replays" (Model.Exec.last_state exec)
        (Model.Exec.last_state e)
    | None -> Alcotest.fail "witness not replayable")
  | o -> Alcotest.failf "unexpected %a" C.pp_outcome o

let suite =
  ( "counterexample",
    [
      Alcotest.test_case "Theorem 2: direct n=2 f=0" `Quick test_theorem2_direct_n2;
      Alcotest.test_case "Theorem 2: direct n=3 f=0" `Quick test_theorem2_direct_n3;
      Alcotest.test_case "Theorem 2: f=1 object, claim 2" `Quick test_theorem2_direct_f1_claim2;
      Alcotest.test_case "boundary: claims within resilience stand" `Slow test_boundary_not_refuted;
      Alcotest.test_case "split: agreement violation" `Quick test_split_agreement;
      Alcotest.test_case "register_vote: agreement violation" `Quick test_register_vote_agreement;
      Alcotest.test_case "register_wait: Lemma 4 flip" `Quick test_register_wait_flip;
      Alcotest.test_case "Theorem 9: TOB n=2" `Quick test_theorem9_tob;
      Alcotest.test_case "Theorem 9: TOB n=3" `Slow test_theorem9_tob_n3;
      Alcotest.test_case "Theorem 10: all-connected FD" `Quick test_theorem10_fd;
      Alcotest.test_case "witness failure count" `Quick test_witness_fail_count_bounded;
      Alcotest.test_case "staircase in report" `Quick test_staircase_in_report;
      Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
      Alcotest.test_case "budget reported" `Quick test_budget_reported;
      Alcotest.test_case "witness replayable" `Quick test_witness_execution_replayable;
    ] )
