(* @chaos-smoke: a bounded (~2s) chaos sweep over the two theorem-target
   protocols, wired into the default `dune runtest` so tier-1 always
   exercises the fault-injection subsystem end to end.

   direct f=1 genuinely tolerates one crash (Theorem 11 side); direct f=0
   and tob f=0 must fall to a single crash plus the silencing adversary
   (Theorems 2 and 9 side). *)

let check name sys ~expect_violation =
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      budget = 64;
      max_steps = 4_000;
    }
  in
  let report = Chaos.Driver.run ~shrink:expect_violation (Chaos.Driver.Systematic config) sys in
  let got_violation =
    match report.Chaos.Driver.outcome with
    | Chaos.Driver.Passed -> false
    | Chaos.Driver.Violated _ -> true
  in
  Format.printf "--- %s ---@.%a@.@." name Chaos.Driver.pp_report report;
  if got_violation <> expect_violation then begin
    Format.printf "chaos-smoke FAILED on %s: expected %s@." name
      (if expect_violation then "a violation" else "no violation");
    exit 1
  end

let () =
  check "direct n=2 f=1 (resilient)" (Protocols.Direct.system ~n:2 ~f:1)
    ~expect_violation:false;
  check "direct n=2 f=0 (Thm 2 target)" (Protocols.Direct.system ~n:2 ~f:0)
    ~expect_violation:true;
  check "tob n=2 f=0 (Thm 9 target)" (Protocols.Tob_direct.system ~n:2 ~f:0)
    ~expect_violation:true;
  Format.printf "chaos-smoke OK@."
