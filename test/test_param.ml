(* The parameterized (n, f) layer: symmetry classes, the symbolic fixpoint,
   resilience certificates and cross-parameter cache reuse.

   Soundness is pinned from two directions. The QCheck walk harness drives
   concrete executions — fault-free and with a canonical crash pattern
   delivered in pid order (every intermediate failed set of such a delivery
   is itself canonical, so the whole path lives inside the symbolic
   constraint system) — and requires each final configuration to abstract
   below the symbolic solution at its context. The certificate tests are
   the authority side: certificates must be byte-for-byte what fresh
   concrete per-point lints produce ([cert_disagreements] empty), and the
   golden tob certificate must match Thm 9's range — the guarantee gap
   present exactly where the broadcast service is genuinely f-resilient,
   absent where §2.1.3 makes it effectively reliable. *)

open Helpers
module Value = Ioa.Value
module Iset = Spec.Iset
module Registry = Protocols.Registry
module Param = Analysis.Param
module Reach = Analysis.Reach
module Astate = Analysis.Astate
module Cert = Analysis.Cert
module Cache = Analysis.Cache
module Structhash = Analysis.Structhash
module Codec = Analysis.Codec
module Lint = Analysis.Lint
module Interfere = Analysis.Interfere
module Footprint = Analysis.Footprint

let scratch =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "boost-param-test-%d-%d" (Unix.getpid ()) !counter)
    in
    ignore (Cache.clear ~dir);
    dir

let build name p =
  match Registry.find name with
  | Some e -> e.Registry.build p
  | None -> Alcotest.failf "unknown protocol %s" name

let entry name =
  match Registry.find name with
  | Some e -> e
  | None -> Alcotest.failf "unknown protocol %s" name

let params n f = { Registry.default_params with Registry.n = n; f }

(* --- symmetry classes and canonical signatures --- *)

let test_classes_direct () =
  (* Under the binary staircase inputs, direct at n = 4 has two behavioral
     classes split by input parity: {0,2} and {1,3}. *)
  let cs = Param.classes (build "direct" (params 4 1)) in
  Alcotest.(check (list (pair int (list int))))
    "parity classes"
    [ 0, [ 0; 2 ]; 1, [ 1; 3 ] ]
    (List.map (fun (c : Param.cls) -> c.Param.repr, c.Param.members) cs)

let test_covered_direct () =
  (* Two classes of two at f = 2: signatures (0,0) (1,0) (0,1) (2,0) (1,1)
     (0,2) = 6 canonical unknowns standing for C(4,0)+C(4,1)+C(4,2) = 11
     concrete failed sets. *)
  let cs = Param.classes (build "direct" (params 4 2)) in
  let canonical, full = Param.covered cs ~max_faults:2 in
  Alcotest.(check (pair int int)) "compression" (6, 11) (canonical, full);
  let sets = Param.class_sets cs ~max_faults:2 in
  Alcotest.(check int) "one set per signature" 6 (List.length sets);
  Alcotest.check iset_testable "empty set first" Iset.empty (List.hd sets)

let test_canon_properties () =
  let sys = build "direct" (params 4 2) in
  let cs = Param.classes sys in
  (* Every canonical set is its own canon, and canon is signature-preserving
     and idempotent on arbitrary subsets. *)
  List.iter
    (fun s -> Alcotest.check iset_testable "canonical fixpoint" s (Param.canon cs s))
    (Param.class_sets cs ~max_faults:2);
  let subsets =
    [ Iset.of_list [ 2 ]; Iset.of_list [ 3 ]; Iset.of_list [ 2; 3 ]; Iset.of_list [ 1; 2 ] ]
  in
  List.iter
    (fun s ->
      let c = Param.canon cs s in
      Alcotest.(check (list int)) "signature preserved" (Param.signature cs s)
        (Param.signature cs c);
      Alcotest.check iset_testable "idempotent" c (Param.canon cs c))
    subsets

(* --- the symbolic fixpoint against the full one --- *)

(* The seed unknown is self-contained (no crash predecessors), so both index
   sets must solve it to the very same abstraction — and with it every
   failure-free fact. Dead-task verdicts additionally agree on these
   protocols: their crash contexts are class-symmetric. *)
let test_sym_matches_full_seed () =
  List.iter
    (fun (name, n, f, mf) ->
      let sys = build name (params n f) in
      let full = Reach.analyze ~max_faults:mf sys in
      let sym = Reach.analyze_sym ~max_faults:mf sys in
      let tag = Printf.sprintf "%s n=%d f=%d mf=%d" name n f mf in
      Alcotest.(check bool) (tag ^ ": seed astate equal") true
        (Astate.equal (Reach.seed_info full).Reach.astate
           (Reach.seed_info sym).Reach.astate);
      Alcotest.(check bool) (tag ^ ": proven_blank agrees")
        (Reach.proven_blank full) (Reach.proven_blank sym);
      Alcotest.(check (list int)) (tag ^ ": never_decides agrees")
        (Reach.never_decides full) (Reach.never_decides sym);
      Alcotest.(check (list int)) (tag ^ ": dead tasks agree")
        (List.map fst (Reach.dead_tasks full))
        (List.map fst (Reach.dead_tasks sym)))
    [
      "direct", 3, 1, 1;
      "direct", 4, 2, 2;
      "tob", 3, 1, 1;
      "fd-all", 3, 1, 1;
      "mp-all", 3, 0, 1;
      "split", 3, 0, 1;
    ]

let test_sym_compresses () =
  (* The point of the quotient: fewer unknowns than the concrete powerset. *)
  let sys = build "direct" (params 4 2) in
  let full = Reach.analyze ~max_faults:2 sys in
  let sym = Reach.analyze_sym ~max_faults:2 sys in
  Alcotest.(check int) "full solves 11 unknowns" 11 (Array.length full.Reach.infos);
  Alcotest.(check int) "sym solves 6 unknowns" 6 (Array.length sym.Reach.infos)

(* Abstract-⊇-concrete: a concrete round-robin walk that crashes a canonical
   set in ascending pid order must land below the symbolic solution at that
   context. Pid-order delivery keeps every intermediate failed set canonical
   (within each class the crashed members are always a members-list prefix),
   so the concrete path never leaves the symbolic index set. *)
let test_walks_below_sym =
  let cases =
    [| "direct", 3, 1, 1; "direct", 4, 2, 2; "tob", 3, 1, 1; "fd-all", 3, 1, 1 |]
  in
  qtest "concrete walks stay below the symbolic astate" ~count:60
    QCheck2.Gen.(tup3 (int_bound 1000) (int_bound 1000) (int_bound 6))
    (fun (case_pick, set_pick, stagger) ->
      let name, n, f, mf = cases.(case_pick mod Array.length cases) in
      let sys = build name (params n f) in
      let cs = Param.classes sys in
      let sym = Reach.analyze_sym ~max_faults:mf sys in
      let sets = Param.class_sets cs ~max_faults:mf in
      let failed = List.nth sets (set_pick mod List.length sets) in
      (* Deliver in ascending pid order, staggered a few task turns apart. *)
      let faults =
        List.mapi (fun i pid -> i * (1 + stagger), pid) (Iset.elements failed)
      in
      let final, _, _ = run_rr ~faults sys (List.init n (fun i -> i mod 2)) in
      let info =
        Array.to_list sym.Reach.infos
        |> List.find_opt (fun (inf : Reach.info) -> Iset.equal inf.Reach.failed failed)
      in
      match info with
      | None -> QCheck2.Test.fail_reportf "canonical set missing from the sym index"
      | Some inf ->
        QCheck2.assume (Iset.equal final.Model.State.failed failed);
        Astate.leq (Astate.of_state final) inf.Reach.astate)

(* Class-respecting permutations: transporting a concrete final state of a
   permuted crash pattern back through [Astate.permute_procs] lands below
   the canonical context's astate — the symmetry argument the quotient
   stands on, checked concretely on a fully-connected protocol whose values
   carry no pids. *)
let test_permuted_walk_transports () =
  let sys = build "direct" (params 4 2) in
  let cs = Param.classes sys in
  let sym = Reach.analyze_sym ~max_faults:2 sys in
  (* Crash {2} — class 0's second member; canon is {0}. The transporting
     permutation swaps 0 and 2 (same class, same input parity). *)
  let final, _, _ = run_rr ~faults:[ 0, 2 ] sys [ 0; 1; 0; 1 ] in
  Alcotest.check iset_testable "crashed as planned" (Iset.of_list [ 2 ])
    final.Model.State.failed;
  let canon = Param.canon cs (Iset.of_list [ 2 ]) in
  Alcotest.check iset_testable "canon is {0}" (Iset.of_list [ 0 ]) canon;
  let inf =
    Array.to_list sym.Reach.infos
    |> List.find (fun (inf : Reach.info) -> Iset.equal inf.Reach.failed canon)
  in
  let transported = Astate.permute_procs [| 2; 1; 0; 3 |] (Astate.of_state final) in
  Alcotest.(check bool) "transported state below canonical astate" true
    (Astate.leq transported inf.Reach.astate)

(* --- certificates --- *)

let test_golden_tob_certificate () =
  (* Thm 9's range, statically: the f-resilient broadcast service supports
     termination under f crashes, the protocol claims f+1 — the gap finding
     must be present at exactly the points where the service is genuinely
     f-resilient (f < n − 1) and replaced by the §2.1.3 wait-free-claim
     where f ≥ n − 1 makes it effectively reliable. *)
  let cert = Registry.certify (entry "tob") in
  Alcotest.(check string) "protocol" "tob" cert.Cert.protocol;
  Alcotest.(check int) "nine points" 9 (List.length cert.Cert.points);
  Alcotest.(check (pair (pair int int) (pair int int)))
    "window" ((2, 0), (4, 2)) (Cert.window cert);
  List.iter
    (fun (p : Cert.point) ->
      let tag = Printf.sprintf "(n=%d, f=%d)" p.Cert.pn p.Cert.pf in
      let has rule =
        List.exists (fun (f : Analysis.Lint.finding) -> f.Analysis.Lint.code = rule)
          p.Cert.findings
      in
      if p.Cert.pf < p.Cert.pn - 1 then begin
        Alcotest.(check bool) (tag ^ ": guarantee gap present") true
          (has "guarantee-gap");
        let detail =
          List.find
            (fun (f : Analysis.Lint.finding) ->
              f.Analysis.Lint.code = "guarantee-gap")
            p.Cert.findings
        in
        Alcotest.(check bool) (tag ^ ": claims f+1") true
          (contains detail.Analysis.Lint.detail
             (Printf.sprintf "claimed termination under %d crash(es)" (p.Cert.pf + 1)))
      end
      else begin
        Alcotest.(check bool) (tag ^ ": no gap once wait-free") false
          (has "guarantee-gap");
        if p.Cert.pf < p.Cert.pn then
          (* n − 1 ≤ f < n: wait-free, effectively reliable (§2.1.3). *)
          Alcotest.(check bool) (tag ^ ": wait-free-claim present") true
            (has "wait-free-claim")
        else
          (* f ≥ n: the silencing threshold is unattainable. *)
          Alcotest.(check bool) (tag ^ ": over-resilient flagged") true
            (has "over-resilient")
      end)
    cert.Cert.points;
  Alcotest.(check (list int)) "exit codes: only (2,2) warns"
    [ 0; 0; 1; 0; 0; 0; 0; 0; 0 ]
    (List.map (fun (p : Cert.point) -> p.Cert.code) cert.Cert.points);
  Alcotest.(check (list (pair int int))) "validates against concrete lints" []
    (Registry.cert_disagreements (entry "tob") cert)

let test_kset_universal_gap () =
  (* Thm 2 quantified verbatim: the scope gap is byte-identical at every
     window point, so it lands in [stable] — a universally-quantified
     statement over the whole window. *)
  let cert = Registry.certify (entry "kset") in
  Alcotest.(check bool) "scope gap universal" true
    (List.exists
       (fun (f : Analysis.Lint.finding) ->
         f.Analysis.Lint.code = "guarantee-gap"
         && f.Analysis.Lint.subject = "component scope")
       cert.Cert.stable);
  Alcotest.(check (list (pair int int))) "validates" []
    (Registry.cert_disagreements (entry "kset") cert)

let test_cert_roundtrip () =
  let cert = Registry.certify (entry "direct") in
  let b = Buffer.create 1024 in
  Cert.encode b cert;
  let cert' = Cert.decode (Codec.cursor (Buffer.contents b)) in
  Alcotest.(check string) "json identical through the codec" (Cert.json cert)
    (Cert.json cert');
  (* The derived views are rebuilt, not stored: still present after decode. *)
  Alcotest.(check int) "stable re-derived"
    (List.length cert.Cert.stable)
    (List.length cert'.Cert.stable)

(* --- cross-parameter cache reuse --- *)

let test_warm_sweep_hits () =
  let dir = scratch () in
  let c1 = Cache.open_ ~dir in
  let cold = Registry.certify ~cache:c1 (entry "direct") in
  Alcotest.(check bool) "cold run stores the pcert entry" true
    (c1.Cache.stats.Cache.writes > 0);
  let c2 = Cache.open_ ~dir in
  let warm = Registry.certify ~cache:c2 (entry "direct") in
  Alcotest.(check string) "warm replay byte-identical" (Cert.json cold)
    (Cert.json warm);
  Alcotest.(check int) "warm sweep: one pcert hit" 1 c2.Cache.stats.Cache.hits;
  Alcotest.(check int) "warm sweep: zero misses" 0 c2.Cache.stats.Cache.misses;
  (* The CI gate's shape: hit rate ≥ 50% across the warm sweep. *)
  let s = c2.Cache.stats in
  Alcotest.(check bool) "hit rate ≥ 50%" true
    (2 * s.Cache.hits >= s.Cache.hits + s.Cache.misses);
  ignore (Cache.clear ~dir)

let test_family_key_moves () =
  (* Parameterized hashing: editing any grid point's behavior must move the
     family key, or a stale certificate would replay. The "edit" substitutes
     a behaviorally different system at the n = 4 points only. *)
  let e = entry "direct" in
  let base = Registry.family_key e in
  let edited =
    {
      e with
      Registry.build =
        (fun p ->
          if p.Registry.n = 4 then (entry "tob").Registry.build p
          else e.Registry.build p);
    }
  in
  Alcotest.(check bool) "single-point edit moves the family key" true
    (not (String.equal base (Registry.family_key edited)));
  Alcotest.(check string) "stable otherwise" base (Registry.family_key e)

(* --- footprint summaries as first-class cache entries --- *)

let test_fp_roundtrip () =
  let sys = build "tob" (params 3 1) in
  let itf = Analysis.Interfere.analyze ~max_crashes:1 sys in
  let fps = Array.map snd (Analysis.Interfere.footprints itf) in
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  let key = Cache.fp_key ~full_key:"test" ~max_crashes:1 ~refined:false in
  Cache.fp_store c ~key fps;
  (match Cache.fp_find c ~key ~n_tasks:(Array.length fps) with
  | None -> Alcotest.fail "stored footprints not found"
  | Some fps' ->
    Alcotest.(check int) "arity" (Array.length fps) (Array.length fps');
    Array.iteri
      (fun i (fp : Analysis.Footprint.t) ->
        Alcotest.(check bool)
          (Printf.sprintf "task %d round-trips" i)
          true
          (Analysis.Footprint.Cset.equal fp.Analysis.Footprint.reads
             fps'.(i).Analysis.Footprint.reads
          && Analysis.Footprint.Cset.equal fp.Analysis.Footprint.writes
               fps'.(i).Analysis.Footprint.writes))
      fps);
  (* A wrong-arity consumer quarantines rather than trusts the entry. *)
  let c2 = Cache.open_ ~dir in
  Alcotest.(check bool) "arity mismatch rejected" true
    (Cache.fp_find c2 ~key ~n_tasks:(Array.length fps + 1) = None);
  Alcotest.(check int) "counted corrupt" 1 c2.Cache.stats.Cache.corrupt;
  ignore (Cache.clear ~dir)

let test_lint_via_cached_footprints () =
  (* A presentation miss whose footprint entry is warm must reproduce the
     cache-less report byte for byte — the footprints feed the interference
     relation, the race pass, and the rendered summary. *)
  let e = entry "tob" in
  let p = params 3 1 in
  let reference = Registry.lint ~max_faults:1 e p in
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  let sys = e.Registry.build p in
  let h = Structhash.system sys in
  let r = Analysis.Lint.analyze ~max_faults:1 ~gaps:(Registry.gaps e p sys) sys in
  Cache.fp_store c
    ~key:(Cache.fp_key ~full_key:(Structhash.key h) ~max_crashes:1 ~refined:true)
    (Array.map snd (Analysis.Interfere.footprints r.Analysis.Lint.interference));
  let via_fp = Registry.lint ~cache:c ~max_faults:1 e p in
  Alcotest.(check int) "footprint entry hit" 1 c.Cache.stats.Cache.hits;
  Alcotest.(check string) "report byte-identical" reference.Registry.human
    via_fp.Registry.human;
  Alcotest.(check int) "code identical" reference.Registry.code via_fp.Registry.code;
  ignore (Cache.clear ~dir)

(* --- the stats JSON kinds census --- *)

let test_stats_json_kinds () =
  let dir = scratch () in
  let c = Cache.open_ ~dir in
  Cache.store c ~kind:"lint" ~key:"k1" "x";
  Cache.store c ~kind:"fp" ~key:"k2" "y";
  Cache.store c ~kind:"pcert" ~key:"k3" "z";
  Cache.store c ~kind:"fp" ~key:"k4" "w";
  let json = Cache.stats_json c in
  Alcotest.(check bool) "kinds object present" true (contains json "\"kinds\"");
  Alcotest.(check bool) "fp counted" true (contains json "\"fp\": 2");
  Alcotest.(check bool) "lint counted" true (contains json "\"lint\": 1");
  Alcotest.(check bool) "pcert counted" true (contains json "\"pcert\": 1");
  (* Deterministic sorted order: fp before lint before pcert. *)
  let idx needle =
    let rec go i =
      if i + String.length needle > String.length json then -1
      else if String.sub json i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "sorted by kind" true
    (idx "\"fp\"" < idx "\"lint\"" && idx "\"lint\"" < idx "\"pcert\"");
  ignore (Cache.clear ~dir)

let suite =
  ( "param",
    [
    Alcotest.test_case "symmetry classes: direct parity split" `Quick
      test_classes_direct;
    Alcotest.test_case "canonical signatures compress the powerset" `Quick
      test_covered_direct;
    Alcotest.test_case "canon: signature-preserving idempotent" `Quick
      test_canon_properties;
    Alcotest.test_case "sym fixpoint matches full on seed facts" `Slow
      test_sym_matches_full_seed;
    Alcotest.test_case "sym fixpoint solves fewer unknowns" `Quick
      test_sym_compresses;
    test_walks_below_sym;
    Alcotest.test_case "permuted walk transports below canon" `Quick
      test_permuted_walk_transports;
    Alcotest.test_case "golden tob certificate: Thm 9's range" `Slow
      test_golden_tob_certificate;
    Alcotest.test_case "kset scope gap quantifies universally" `Slow
      test_kset_universal_gap;
    Alcotest.test_case "certificate codec round-trips" `Quick test_cert_roundtrip;
    Alcotest.test_case "warm (n, f) sweep: one pcert hit, zero misses" `Quick
      test_warm_sweep_hits;
    Alcotest.test_case "family key moves on a single-point edit" `Quick
      test_family_key_moves;
    Alcotest.test_case "footprints round-trip the cache" `Quick test_fp_roundtrip;
    Alcotest.test_case "lint via cached footprints is byte-identical" `Quick
      test_lint_via_cached_footprints;
    Alcotest.test_case "stats JSON groups entries by kind, sorted" `Quick
      test_stats_json_kinds;
  ] )
