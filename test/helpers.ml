(* Shared test utilities: qcheck generators for structural values, execution
   builders, and common alcotest testables. *)

open Ioa

let value_testable = Alcotest.testable Value.pp Value.equal
let state_testable = Alcotest.testable Model.State.pp Model.State.equal
let task_testable = Alcotest.testable Model.Task.pp Model.Task.equal
let iset_testable = Alcotest.testable Spec.Iset.pp Spec.Iset.equal

let verdict_testable = Alcotest.testable Engine.Valence.pp_verdict Engine.Valence.equal_verdict

(* QCheck generator for structural values, depth-bounded. *)
let value_gen =
  let open QCheck2.Gen in
  sized_size (int_bound 4) @@ fix (fun self n ->
    if n <= 0 then
      oneof
        [
          return Value.Unit;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) (int_range (-100) 100);
          map (fun s -> Value.Str s) (string_size ~gen:printable (int_bound 6));
        ]
    else
      oneof
        [
          map (fun i -> Value.Int i) (int_range (-100) 100);
          map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
          map (fun xs -> Value.List xs) (list_size (int_bound 4) (self (n / 2)));
        ])

(* Register a QCheck2 property as an alcotest case. *)
let qtest name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* Build an initialized execution for a system. *)
let initialized sys inputs =
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i v, i + 1)
    (Model.Exec.init (Model.System.initial_state sys), 0)
    inputs
  |> fst

let int_inputs vs = List.map Value.int vs

(* Naive substring search, for asserting on rendered reports. *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Run a system round-robin to quiescence or bound; return the final state. *)
let run_rr ?policy ?(faults = []) ?(max_steps = 20_000) sys inputs =
  let exec0 = initialized sys (int_inputs inputs) in
  let sched = Model.Scheduler.round_robin ~faults sys in
  let exec, outcome = Model.Scheduler.run ?policy ~max_steps sys exec0 sched in
  Model.Exec.last_state exec, outcome, exec

(* Drive one system by a seeded random scheduler until the stop condition or
   bound. *)
let run_random ?policy ~seed ?(fail_prob = 0.0) ?(max_failures = 0) ?(max_steps = 30_000)
    ?(stop_when = fun _ -> false) sys inputs =
  let exec0 = initialized sys (int_inputs inputs) in
  let sched = Model.Scheduler.random ~seed ~fail_prob ~max_failures sys in
  let exec, outcome = Model.Scheduler.run ?policy ~stop_when ~max_steps sys exec0 sched in
  Model.Exec.last_state exec, outcome, exec
