(* Regression coverage for Scheduler.random's failure accounting.

   The contract: at most [max_failures] fail_i inputs are ever delivered,
   and the budget is never burned on an already-failed process — fail_i is
   idempotent in the model (§2.1.3), so re-failing pid would waste the
   adversary's budget. Scheduler.random guarantees both by construction
   (it draws only from the currently-alive set), and these tests pin that
   down against regressions. *)

open Helpers

let seed_gen = QCheck2.Gen.int_bound 10_000

let fail_pids exec =
  List.filter_map
    (function Model.Exec.L_fail i -> Some i | _ -> None)
    (Model.Exec.labels exec)

let prop_budget_respected =
  qtest "Scheduler.random: max_failures never exceeded" ~count:100
    QCheck2.Gen.(pair seed_gen (int_bound 3))
    (fun (seed, max_failures) ->
      let sys = Protocols.Direct.system ~n:3 ~f:2 in
      let _, _, exec =
        run_random ~seed ~fail_prob:1.0 ~max_failures ~max_steps:500 sys [ 0; 1; 0 ]
      in
      List.length (fail_pids exec) <= max_failures)

let prop_no_double_fail =
  qtest "Scheduler.random: never re-fails a failed pid (no budget burn)" ~count:100
    seed_gen
    (fun seed ->
      let sys = Protocols.Direct.system ~n:3 ~f:2 in
      let final, _, exec =
        run_random ~seed ~fail_prob:0.5 ~max_failures:2 ~max_steps:1_000 sys [ 0; 1; 0 ]
      in
      let pids = fail_pids exec in
      (* Distinct fail targets, and each delivered fail grew the failed set:
         the budget bought exactly |failed| silenced processes. *)
      List.length (List.sort_uniq Int.compare pids) = List.length pids
      && Spec.Iset.cardinal final.Model.State.failed = List.length pids)

(* With an exhausted budget the scheduler must keep scheduling tasks: all
   three processes can still be failed only when max_failures allows it. *)
let prop_zero_budget_means_no_failures =
  qtest "Scheduler.random: zero budget, zero failures" ~count:50 seed_gen (fun seed ->
    let sys = Protocols.Direct.system ~n:3 ~f:2 in
    let final, _, exec =
      run_random ~seed ~fail_prob:1.0 ~max_failures:0 ~max_steps:300 sys [ 0; 1; 0 ]
    in
    fail_pids exec = [] && Spec.Iset.is_empty final.Model.State.failed)

(* The model-level idempotence the accounting leans on: delivering fail_i
   twice (possible via an explicit round_robin fault list) records one
   failure. *)
let test_fail_idempotent () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let final, _, exec = run_rr ~faults:[ (0, 1); (1, 1) ] ~max_steps:2_000 sys [ 1; 0 ] in
  Alcotest.(check int) "two fail_i deliveries" 2
    (List.length
       (List.filter (function Model.Exec.L_fail _ -> true | _ -> false)
          (Model.Exec.labels exec)));
  Alcotest.(check int) "one failed process" 1 (Spec.Iset.cardinal final.Model.State.failed)

let suite =
  ( "scheduler-random",
    [
      prop_budget_respected;
      prop_no_double_fail;
      prop_zero_budget_means_no_failures;
      Alcotest.test_case "fail_i idempotent in the model" `Quick test_fail_idempotent;
    ] )
