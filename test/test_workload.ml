(* The multi-shot RSM workload engine (ISSUE 10). The load-bearing pins:

   1. the incremental linearizability monitor is a differential twin of the
      monolithic Model.Linearize oracle on random small histories with
      random window boundaries — the window invariant says any partition
      into windows is exact, so the verdicts must coincide event-for-event;
   2. a deliberately non-linearizable batch is caught at its batch
      boundary, naming the window;
   3. the engine survives random mixed fault timelines on a resilient
      protocol — crashed replicas rejoin, retried commands apply exactly
      once, the monitor stays green and agrees with the oracle — and
      replays byte-for-byte per seed;
   4. tob's serve run falls to its Thm 9 drop with a 1-minimal witness
      whose fault references stay inside the executed shot range. *)

open Helpers
module L = Model.Linearize
module LI = Workload.Linear_inc

let counter = Spec.Seq_counter.make ()

(* Random histories over two endpoints: a (call?, raw) draw becomes a Call
   of increment/read, or — when the endpoint has an outstanding call — a
   Return carrying a small count response. Responses are often-but-not-
   always plausible, so both verdicts occur. *)
let build_history choices =
  let outstanding = Array.make 2 0 in
  List.map
    (fun (ep, is_call, r) ->
      if is_call || outstanding.(ep) = 0 then begin
        outstanding.(ep) <- outstanding.(ep) + 1;
        L.Call
          {
            endpoint = ep;
            op = (if r mod 2 = 0 then Spec.Seq_counter.increment else Spec.Seq_counter.read);
          }
      end
      else begin
        outstanding.(ep) <- outstanding.(ep) - 1;
        L.Return { endpoint = ep; resp = Spec.Seq_counter.count r }
      end)
    choices

let qcheck_inc_vs_oracle =
  qtest "incremental monitor ≡ full oracle under random windows" ~count:500
    QCheck2.Gen.(
      list_size (int_bound 16) (quad (int_bound 1) bool (int_bound 3) bool))
    (fun draws ->
      let events = build_history (List.map (fun (e, c, r, _) -> e, c, r) draws) in
      let t = LI.create counter in
      List.iter2
        (fun ev (_, _, _, cut) ->
          LI.record t ev;
          if cut then ignore (LI.flush t))
        events draws;
      let incremental =
        match LI.finish t with
        | LI.Ok -> Some true
        | LI.Violation _ -> Some false
        | LI.Truncated _ -> None (* must not happen at this size *)
      in
      incremental = Some (L.check counter events))

let test_golden_batch_boundary () =
  let t = LI.create counter in
  (* Batch 1 is clean: one increment observing the initial 0. *)
  LI.record t (L.Call { endpoint = 0; op = Spec.Seq_counter.increment });
  LI.record t (L.Return { endpoint = 0; resp = Spec.Seq_counter.count 0 });
  (match LI.flush t with
  | LI.Ok -> ()
  | v -> Alcotest.failf "clean batch rejected: %s" (match v with
      | LI.Violation m | LI.Truncated m -> m
      | LI.Ok -> assert false));
  (* Batch 2 cannot linearize: a read claims the counter is at 5 when only
     one increment ever committed. The violation must land exactly at this
     batch's flush and name it. *)
  LI.record t (L.Call { endpoint = 1; op = Spec.Seq_counter.read });
  LI.record t (L.Return { endpoint = 1; resp = Spec.Seq_counter.count 5 });
  (match LI.flush t with
  | LI.Violation msg ->
    Alcotest.(check bool) "violation names batch 2" true (contains msg "window 2")
  | LI.Ok -> Alcotest.fail "non-linearizable batch passed"
  | LI.Truncated msg -> Alcotest.failf "truncated instead of caught: %s" msg);
  Alcotest.(check int) "caught at the second boundary" 2 (LI.windows t);
  (* Once violated, the verdict is sticky. *)
  LI.record t (L.Call { endpoint = 0; op = Spec.Seq_counter.read });
  (match LI.finish t with
  | LI.Violation _ -> ()
  | _ -> Alcotest.fail "verdict not sticky")

(* --- the engine under random fault timelines --- *)

let engine_cfg ~seed ~kinds ~max_faults =
  {
    (Workload.Engine.default_config ~proto:"direct" ()) with
    Workload.Engine.clients = 4;
    ops = 60;
    rate = 6;
    batch = 8;
    pipeline = 2;
    rejoin_after = 10;
    catch_up_rate = 16;
    seed;
    kinds;
    max_faults;
    pin_oracle = true;
  }

let qcheck_engine_random_faults =
  let kinds =
    Chaos.Schedule.[ Crash_k; Drop_k; Dup_k; Delay_k; Partition_k ]
  in
  qtest "engine survives random mixed faults exactly-once" ~count:12
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let r = Workload.Engine.run (engine_cfg ~seed ~kinds ~max_faults:2) in
      let served =
        match r.Workload.Report.outcome with
        | Workload.Report.Served | Workload.Report.Degraded _ -> true
        | _ -> false
      in
      served
      && r.Workload.Report.duplicate_applications = 0
      && r.Workload.Report.lin = LI.Ok
      && r.Workload.Report.oracle_pinned = Some true)

let qcheck_seeded_replay =
  qtest "seeded runs replay byte-for-byte" ~count:8
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let cfg =
        engine_cfg ~seed ~kinds:Chaos.Schedule.[ Crash_k; Partition_k ] ~max_faults:2
      in
      String.equal
        (Workload.Report.render (Workload.Engine.run cfg))
        (Workload.Report.render (Workload.Engine.run cfg)))

(* Crash/rejoin and duplicate resubmission on a fixed timeline: the crash
   forces client failover and retry; the replica must come back via log
   replay, and the retried (client, seq) commands must not apply twice. *)
let test_crash_rejoin_exactly_once () =
  let schedule =
    match Chaos.Schedule.parse "crash@4:1,crash@9:2" with
    | Ok s -> Some s
    | Error e -> Alcotest.fail e
  in
  let cfg =
    { (engine_cfg ~seed:3 ~kinds:[] ~max_faults:0) with
      Workload.Engine.ops = 120;
      rejoin_after = 8;
      schedule;
    }
  in
  let r = Workload.Engine.run cfg in
  (match r.Workload.Report.outcome with
  | Workload.Report.Served -> ()
  | o -> Alcotest.failf "expected SERVED, got %a" Workload.Report.pp_outcome o);
  Alcotest.(check int) "all ops completed" 120 r.Workload.Report.completed;
  Alcotest.(check bool) "both crashes rejoined" true (r.Workload.Report.rejoins = 2);
  Alcotest.(check bool) "catch-up replayed the log" true
    (r.Workload.Report.catch_up_replayed > 0);
  Alcotest.(check int) "no duplicate application" 0
    r.Workload.Report.duplicate_applications;
  Alcotest.(check bool) "monitor green" true (r.Workload.Report.lin = LI.Ok);
  Alcotest.(check (option bool)) "oracle pinned" (Some true)
    r.Workload.Report.oracle_pinned

(* --- the shrunk serve witness stays inside the executed range --- *)

let test_tob_witness_clamped () =
  let schedule =
    match Chaos.Schedule.parse "drop@6:tob:0" with
    | Ok s -> Some s
    | Error e -> Alcotest.fail e
  in
  let cfg =
    {
      (Workload.Engine.default_config ~proto:"tob" ()) with
      Workload.Engine.params = { Protocols.Registry.default_params with n = 2; f = 0 };
      clients = 4;
      ops = 64;
      rate = 4;
      batch = 4;
      seed = 7;
      schedule;
    }
  in
  let r = Workload.Engine.run cfg in
  match r.Workload.Report.outcome with
  | Workload.Report.Shot_violation { minimized; candidates; runs; _ } ->
    Alcotest.(check bool) "shrinker actually ran" true (candidates > 0 && runs > 0);
    (match Chaos.Schedule.parse minimized with
    | Error e -> Alcotest.failf "minimized witness does not parse: %s" e
    | Ok m ->
      Alcotest.(check int) "1-minimal" 1 (Chaos.Schedule.n_faults m);
      List.iter
        (fun fault ->
          let step =
            match fault with
            | Chaos.Schedule.Crash { step; _ }
            | Chaos.Schedule.Silence { step; _ }
            | Chaos.Schedule.Drop { step; _ }
            | Chaos.Schedule.Duplicate { step; _ }
            | Chaos.Schedule.Delay { step; _ }
            | Chaos.Schedule.Partition { step; _ } ->
              step
          in
          (* The violating shot runs for ~18 steps; a clamped witness cannot
             reference a step far beyond it (the pre-clamp failure mode was
             heal/step references at the shrinker's untouched midpoints). *)
          Alcotest.(check bool)
            (Printf.sprintf "fault step %d inside the executed shot range" step)
            true (step <= 50))
        m.Chaos.Schedule.faults)
  | o -> Alcotest.failf "expected a shot violation on tob, got %a" Workload.Report.pp_outcome o

(* --- Schedule.map_steps: the rebase used to carry engine-tick faults into
   a shot's step space --- *)

let test_map_steps_keeps_heal_after_onset () =
  let s =
    Chaos.Schedule.make
      [ Chaos.Schedule.partition ~step:5 ~blocks:[ [ 0 ] ] ~heal_at:40 ]
  in
  (* A collapsing map would put the heal at or before the onset; map_steps
     must keep it strictly after. *)
  let s' = Chaos.Schedule.map_steps (fun _ -> 3) s in
  match s'.Chaos.Schedule.faults with
  | [ Chaos.Schedule.Partition { step; heal_at; _ } ] ->
    Alcotest.(check int) "onset mapped" 3 step;
    Alcotest.(check bool) "heal strictly after onset" true (heal_at > step)
  | _ -> Alcotest.fail "partition lost by map_steps"

let suite =
  ( "workload",
    [
      qcheck_inc_vs_oracle;
      Alcotest.test_case "non-linearizable batch caught at its boundary" `Quick
        test_golden_batch_boundary;
      qcheck_engine_random_faults;
      qcheck_seeded_replay;
      Alcotest.test_case "crash/rejoin applies retried ops exactly once" `Quick
        test_crash_rejoin_exactly_once;
      Alcotest.test_case "tob serve witness is 1-minimal and clamped" `Quick
        test_tob_witness_clamped;
      Alcotest.test_case "map_steps keeps partition heal after onset" `Quick
        test_map_steps_keeps_heal_after_onset;
    ] )
