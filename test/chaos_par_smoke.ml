(* @chaos-par-smoke: a bounded (~2s) parallel chaos sweep at -j 2, wired
   into the default `dune runtest` so tier-1 always exercises the
   multi-domain explorer and its fingerprint dedup end to end.

   direct f=1 must sweep its full one-fault space clean (not truncated);
   tob f=0 must fall to a single crash with the same verdict the
   sequential explorer reports. *)

let par_config sys =
  {
    (Chaos.Explore.default_config sys) with
    Chaos.Explore.max_faults = 1;
    budget = 10_000;
    max_steps = 4_000;
  }

let fail fmt = Format.kasprintf (fun m -> Format.printf "%s@." m; exit 1) fmt

let () =
  (* direct f=1: the full space, clean, in parallel with dedup. *)
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let config = par_config sys in
  let r = Chaos.Driver.run ~shrink:false ~domains:2 (Chaos.Driver.Systematic config) sys in
  Format.printf "--- direct n=2 f=1 @ -j 2 ---@.%a@.@." Chaos.Driver.pp_report r;
  (match r.Chaos.Driver.outcome with
  | Chaos.Driver.Passed -> ()
  | Chaos.Driver.Violated _ -> fail "chaos-par-smoke FAILED: direct f=1 violated");
  if r.Chaos.Driver.truncated then
    fail "chaos-par-smoke FAILED: direct f=1 sweep truncated (budget too small)";
  if r.Chaos.Driver.examined <> r.Chaos.Driver.space then
    fail "chaos-par-smoke FAILED: direct f=1 examined %d of %d" r.Chaos.Driver.examined
      r.Chaos.Driver.space;

  (* tob f=0: parallel verdict must match the sequential oracle. *)
  let sys = Protocols.Tob_direct.system ~n:2 ~f:0 in
  let config = par_config sys in
  let seq = Chaos.Explore.run ~config sys in
  let par = Chaos.Driver.run ~shrink:false ~domains:2 (Chaos.Driver.Systematic config) sys in
  Format.printf "--- tob n=2 f=0 @ -j 2 ---@.%a@.@." Chaos.Driver.pp_report par;
  (match (seq.Chaos.Explore.violation, par.Chaos.Driver.outcome) with
  | Some sv, Chaos.Driver.Violated { original; _ } ->
      if
        sv.Chaos.Explore.monitor <> original.Chaos.Explore.monitor
        || not
             (Chaos.Schedule.equal sv.Chaos.Explore.schedule original.Chaos.Explore.schedule)
      then
        fail "chaos-par-smoke FAILED: tob f=0 parallel verdict diverges from sequential"
  | None, Chaos.Driver.Passed -> fail "chaos-par-smoke FAILED: tob f=0 passed (expected violation)"
  | Some _, Chaos.Driver.Passed -> fail "chaos-par-smoke FAILED: parallel missed the violation"
  | None, Chaos.Driver.Violated _ ->
      fail "chaos-par-smoke FAILED: parallel found a violation the oracle did not");
  if par.Chaos.Driver.examined <> seq.Chaos.Explore.examined then
    fail "chaos-par-smoke FAILED: examined %d (sequential %d)" par.Chaos.Driver.examined
      seq.Chaos.Explore.examined;
  Format.printf "chaos-par-smoke OK@."
