(* Deterministic replay: the same seed must reproduce the byte-identical
   event sequence, for both the pre-existing Scheduler.random and the chaos
   engine's seeded mode. QCheck drives seeds and small systems; equality is
   on the full event list (and for chaos also the derived schedule), so any
   hidden nondeterminism — wall clock, global Random state, hash-order
   iteration — would show up as a mismatch. *)

open Helpers

let small_systems =
  [
    "register-wait", (fun () -> Protocols.Register_wait.system ());
    "direct n=2 f=1", (fun () -> Protocols.Direct.system ~n:2 ~f:1);
    "direct n=3 f=0", (fun () -> Protocols.Direct.system ~n:3 ~f:0);
  ]

let seed_gen = QCheck2.Gen.int_bound 10_000

let events_equal e1 e2 =
  List.equal Model.Event.equal (Model.Exec.events e1) (Model.Exec.events e2)

let prop_scheduler_random_replays =
  qtest "replay: Scheduler.random is seed-deterministic" ~count:60
    QCheck2.Gen.(pair seed_gen (int_bound (List.length small_systems - 1)))
    (fun (seed, which) ->
      let _, mk = List.nth small_systems which in
      let run () =
        let sys = mk () in
        let inputs = List.init (Model.System.n_processes sys) (fun i -> i mod 2) in
        let _, _, exec =
          run_random ~policy:Model.System.dummy_policy ~seed ~fail_prob:0.05
            ~max_failures:1 ~max_steps:2_000 sys inputs
        in
        exec
      in
      events_equal (run ()) (run ()))

let prop_chaos_seeded_replays =
  qtest "replay: chaos seeded mode is seed-deterministic" ~count:60
    QCheck2.Gen.(pair seed_gen (int_bound (List.length small_systems - 1)))
    (fun (seed, which) ->
      let _, mk = List.nth small_systems which in
      let run () = Chaos.Rand.run ~seed ~max_steps:2_000 (mk ()) in
      let r1, s1 = run () in
      let r2, s2 = run () in
      Chaos.Schedule.equal s1 s2
      && events_equal r1.Chaos.Runner.exec r2.Chaos.Runner.exec
      && r1.Chaos.Runner.stop = r2.Chaos.Runner.stop)

(* Round-robin chaos runs are trivially deterministic, but assert it anyway:
   the compiled schedule must not smuggle in any global randomness. *)
let prop_chaos_systematic_replays =
  qtest "replay: compiled schedules are deterministic" ~count:40
    QCheck2.Gen.(pair (int_bound 8) (int_bound 1))
    (fun (step, pid) ->
      let run () =
        let sys = Protocols.Register_wait.system () in
        let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step ~pid ] in
        Chaos.Runner.run ~schedule ~max_steps:2_000 sys
      in
      let r1 = run () and r2 = run () in
      events_equal r1.Chaos.Runner.exec r2.Chaos.Runner.exec
      && r1.Chaos.Runner.stop = r2.Chaos.Runner.stop)

let suite =
  ( "replay",
    [ prop_scheduler_random_replays; prop_chaos_seeded_replays; prop_chaos_systematic_replays ]
  )
