(* The abstract-interpretation analyzer, pinned to the exact engine.

   Soundness is differential: on registry protocols small enough to
   materialize G(C), the abstract may-decided set of the seed (failure-free)
   context must over-approximate the exact reachable-decision mask computed
   by Valence.analyze at the root. A golden lint on a deliberately flawed
   candidate checks the blank-protocol diagnostic, and the static pruning
   oracle is pinned to the unpruned explorer: identical reports while
   skipping a nonzero number of schedules. *)

open Ioa
open Helpers
module E = Engine
module A = Analysis

(* --- domain units --- *)

let interval_testable = Alcotest.testable A.Interval.pp A.Interval.equal

let test_interval () =
  let open A.Interval in
  Alcotest.check interval_testable "hull" (range 1 4) (hull [ 4; 1; 2 ]);
  Alcotest.check interval_testable "add saturates at 0" (range 0 1) (add (range 0 2) (-1));
  Alcotest.check interval_testable "stretch" (range 1 3) (stretch (range 1 2) 1);
  Alcotest.check interval_testable "pred" (range 0 1) (pred (range 1 2));
  Alcotest.(check bool) "mem inf" true (mem 1_000_000 (unbounded 3));
  Alcotest.(check bool) "bot empty" false (mem 0 bot);
  (* Widening: an unstable upper bound must jump to ∞, and the result must
     bound both arguments. *)
  let w = widen (range 0 1) (range 0 2) in
  Alcotest.(check bool) "widen covers" true (leq (range 0 2) w);
  Alcotest.check interval_testable "widen jumps" (unbounded 0) w;
  Alcotest.check interval_testable "widen stable" (range 0 5) (widen (range 0 5) (range 1 4))

let test_vset_cap () =
  let open A.Vset in
  let vs = List.init (cap + 1) Value.int in
  Alcotest.(check bool) "over cap collapses" true (is_top (of_list vs));
  let s = of_list (List.init cap Value.int) in
  Alcotest.(check bool) "at cap stays finite" false (is_top s);
  Alcotest.(check bool) "top absorbs" true (is_top (add (Value.int cap) s));
  Alcotest.(check bool) "mem top" true (mem (Value.str "anything") top);
  Alcotest.(check bool) "join monotone" true (leq s (join s (singleton (Value.int 0))))

let test_fixpoint_chain () =
  (* x0 = [0,0]; x(i) ⊇ x(i-1) + 1; x1 additionally feeds back into itself,
     so only widening terminates — and the solution must be a
     post-fixpoint. *)
  let module F = A.Fixpoint.Make (A.Interval) in
  let rhs ~get u =
    if u = 0 then A.Interval.zero
    else A.Interval.join (A.Interval.add (get (u - 1)) 1) (A.Interval.add (get u) 1)
  in
  let dependents u = if u < 2 then [ u + 1; u ] else [ u ] in
  let sol, stats = F.solve ~n:3 ~bot:A.Interval.bot ~rhs ~dependents () in
  Alcotest.check interval_testable "seed exact" A.Interval.zero sol.(0);
  Alcotest.(check bool) "widened to ∞" true
    (A.Interval.equal sol.(1) (A.Interval.unbounded 1));
  for u = 0 to 2 do
    Alcotest.(check bool) "post-fixpoint" true
      (A.Interval.leq (rhs ~get:(fun v -> sol.(v)) u) sol.(u))
  done;
  Alcotest.(check bool) "widenings counted" true (stats.A.Fixpoint.widenings > 0)

(* --- soundness vs the exact engine --- *)

(* Registry protocols whose G(C) materializes quickly at default params and
   whose decisions are binary (Valence.analyze's precondition). *)
let small_protocols = [ "direct"; "split"; "register-vote"; "register-wait"; "tob"; "tas"; "queue" ]

let build name =
  match Protocols.Registry.find name with
  | Some e -> e.Protocols.Registry.build Protocols.Registry.default_params
  | None -> Alcotest.failf "unknown registry protocol %s" name

let concrete_decided sys inputs =
  let g = E.Graph.explore sys (Model.System.initialize sys (int_inputs inputs)) in
  if not (E.Graph.complete g) then None
  else
    let a = E.Valence.analyze g in
    Some
      (match E.Valence.verdict a (E.Graph.root g) with
      | E.Valence.Blank -> []
      | E.Valence.Zero_valent -> [ 0 ]
      | E.Valence.One_valent -> [ 1 ]
      | E.Valence.Bivalent -> [ 0; 1 ])

let qcheck_abstract_over_approximates =
  let gen =
    QCheck2.Gen.(
      let* which = int_bound (List.length small_protocols - 1) in
      let* bits = list_repeat 2 (int_bound 1) in
      return (List.nth small_protocols which, bits))
  in
  qtest "abstract may-decided ⊇ exact root valence" ~count:60 gen (fun (name, inputs) ->
      let sys = build name in
      match concrete_decided sys inputs with
      | None -> QCheck2.assume_fail ()
      | Some decided ->
        let r = A.Reach.analyze ~inputs:(int_inputs inputs) sys in
        let abstract = A.Reach.may_decided_values r in
        List.for_all (fun v -> A.Vset.mem (Value.int v) abstract) decided)

let test_registry_lints_clean () =
  (* The acceptance bar for `boost lint --all`: no registry protocol is
     worse than Info at default parameters. *)
  List.iter
    (fun e ->
      let sys = e.Protocols.Registry.build Protocols.Registry.default_params in
      let report = A.Lint.analyze sys in
      Alcotest.(check int)
        (Printf.sprintf "%s lints clean" e.Protocols.Registry.name)
        0 (A.Lint.exit_code report))
    Protocols.Registry.all

(* --- golden lint: a deliberately flawed candidate --- *)

(* A one-shot consensus client whose init handler guards on the wrong
   program-state tag: the input is dropped, the process never leaves "idle",
   so nothing is ever invoked and no process can ever emit a decide. The
   analyzer must prove the protocol statically blank. (A subtler flaw — say
   a broken response guard — is still caught by the exact engine but not by
   the independent-attribute abstraction, which loses the process-state ×
   queue correlation once invocations accumulate and degrades to ⊤.) *)
let flawed_system ~n =
  let service = "cons" in
  let st tag fields = Value.pair (Value.str tag) (Value.list fields) in
  let tag s = Value.to_str (fst (Value.to_pair s)) in
  let field s i = List.nth (Value.to_list (snd (Value.to_pair s))) i in
  let is t s = String.equal t (tag s) in
  let client pid =
    let step s =
      if is "have" s then
        Model.Process.Invoke
          {
            service;
            op = Spec.Seq_consensus.init (Value.to_int (field s 0));
            next = st "waiting" [ field s 0 ];
          }
      else if is "got" s then
        Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
      else Model.Process.Internal s
    in
    (* BUG: arms from a state the automaton never enters, dropping the
       input. *)
    let on_init s v = if is "ready" s then st "have" [ v ] else s in
    let on_response s ~service:src b =
      if is "waiting" s && String.equal src service && Spec.Seq_consensus.is_decide b then
        st "got" [ Value.int (Spec.Seq_consensus.decided_value b) ]
      else s
    in
    Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()
  in
  Model.System.make
    ~processes:(List.init n client)
    ~services:
      [ Model.Service.atomic ~id:service ~endpoints:(List.init n Fun.id) ~f:0
          (Spec.Seq_consensus.make ()) ]

let test_golden_flawed_blank () =
  let report = A.Lint.analyze (flawed_system ~n:2) in
  let codes = List.map (fun f -> f.A.Lint.code) report.A.Lint.findings in
  Alcotest.(check bool) "blank-protocol flagged" true (List.mem "blank-protocol" codes);
  Alcotest.(check int) "exit code 1" 1 (A.Lint.exit_code report);
  (* The exact engine agrees: the root of G(C) is Blank. *)
  Alcotest.(check (option (list int))) "engine confirms blank" (Some [])
    (concrete_decided (flawed_system ~n:2) [ 1; 0 ])

(* --- static pruning, pinned to the unpruned explorer --- *)

let cfg ?(horizon = 12) () =
  { Chaos.Explore.max_faults = 1; horizon; stride = 1; budget = 100_000; max_steps = 2_000;
    kinds = [ Chaos.Schedule.Crash_k ]; degrade = false }

let report_sig (r : Chaos.Explore.report) =
  (* Everything the pruned run must reproduce byte-identically; static_prunes
     is the one field allowed to differ (and asserted separately). *)
  Format.asprintf "%d/%d/%b/%d/%d/%d/%s" r.Chaos.Explore.examined r.Chaos.Explore.space
    r.Chaos.Explore.truncated r.Chaos.Explore.step_budget_hits
    r.Chaos.Explore.monitor_truncations r.Chaos.Explore.undelivered_crashes
    (match r.Chaos.Explore.violation with
    | None -> "clean"
    | Some v ->
      Chaos.Schedule.to_string v.Chaos.Explore.schedule
      ^ "|" ^ v.Chaos.Explore.monitor ^ "|" ^ v.Chaos.Explore.reason
      ^ "|" ^ string_of_bool v.Chaos.Explore.proven)

let differential ?horizon ~expect_prunes sys =
  let config = cfg ?horizon () in
  let oracle = Chaos.Explore.run ~config sys in
  let pruned = Chaos.Explore.run_par ~config ~dedup:false ~static_prune:true sys in
  Alcotest.(check string) "report identical" (report_sig oracle) (report_sig pruned);
  Alcotest.(check int) "oracle never prunes" 0 oracle.Chaos.Explore.static_prunes;
  if expect_prunes then
    Alcotest.(check bool) "skipped a nonzero number of schedules" true
      (pruned.Chaos.Explore.static_prunes > 0)

let test_prune_direct_clean () =
  (* f = 1 tolerates the single crash: every schedule is clean, and those
     crashing after quiescence are skipped. *)
  differential ~expect_prunes:true (Protocols.Direct.system ~n:2 ~f:1)

let test_prune_tob_clean () =
  differential ~horizon:40 ~expect_prunes:true (Protocols.Tob_direct.system ~n:2 ~f:1)

let test_prune_direct_violating () =
  (* f = 0: the rank-least violation (crash@0:0) precedes every prunable
     schedule, so the reports coincide including the violation. *)
  differential ~expect_prunes:false (Protocols.Direct.system ~n:2 ~f:0)

let test_prune_oracle_direct () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  match
    A.Prune.clean_from ~inputs:(Chaos.Runner.default_inputs sys) ~horizon:12 sys
  with
  | None -> Alcotest.fail "expected a quiescence certificate for direct f=1"
  | Some { A.Prune.quiescent_from = q; buffers_empty } ->
    Alcotest.(check bool) "within horizon" true (q < 12);
    (* Direct's frozen state has drained every response buffer, so the
       certificate extends to post-Q omission deliveries. *)
    Alcotest.(check bool) "frozen buffers are empty" true buffers_empty;
    (* The certificate is honest: a crash at q is a clean lasso concretely. *)
    let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step:q ~pid:0 ] in
    let r = Chaos.Runner.run ~max_steps:2_000 ~schedule sys in
    (match r.Chaos.Runner.stop with
    | Chaos.Runner.Lasso _ -> ()
    | s -> Alcotest.failf "expected a lasso at Q, got %a" Chaos.Runner.pp_stop s);
    Alcotest.(check int) "all crashes delivered" 0 r.Chaos.Runner.undelivered_crashes

let suite =
  ( "analysis",
    [
      Alcotest.test_case "interval domain" `Quick test_interval;
      Alcotest.test_case "vset cap" `Quick test_vset_cap;
      Alcotest.test_case "fixpoint chain widens" `Quick test_fixpoint_chain;
      qcheck_abstract_over_approximates;
      Alcotest.test_case "registry lints clean" `Slow test_registry_lints_clean;
      Alcotest.test_case "golden flawed candidate" `Quick test_golden_flawed_blank;
      Alcotest.test_case "prune differential: direct clean" `Quick test_prune_direct_clean;
      Alcotest.test_case "prune differential: tob clean" `Quick test_prune_tob_clean;
      Alcotest.test_case "prune differential: direct violating" `Quick
        test_prune_direct_violating;
      Alcotest.test_case "prune oracle certificate" `Quick test_prune_oracle_direct;
    ] )
