(* @degrade-smoke: a bounded sweep exercising graceful-degradation
   monitoring end to end, wired into the default `dune runtest`.

   direct f=1 survives a mixed crash/drop/partition sweep even under the
   degraded (stricter-than-waived) termination demand; tob f=1 falls to a
   single stolen response, and the violation must carry the live guarantee
   vector the theft degraded the system to. *)

let config sys ~kinds =
  {
    (Chaos.Explore.default_config sys) with
    Chaos.Explore.max_faults = 1;
    budget = 96;
    max_steps = 4_000;
    kinds;
    degrade = true;
  }

let run name sys ~kinds ~expect_violation =
  let report =
    Chaos.Driver.run
      ~monitors:(Chaos.Monitor.defaults ~degrade:true ())
      ~shrink:expect_violation
      (Chaos.Driver.Systematic (config sys ~kinds))
      sys
  in
  Format.printf "--- %s ---@.%a@.@." name Chaos.Driver.pp_report report;
  (match report.Chaos.Driver.outcome with
  | Chaos.Driver.Passed when expect_violation ->
    Format.printf "degrade-smoke FAILED on %s: expected a violation@." name;
    exit 1
  | Chaos.Driver.Violated _ when not expect_violation ->
    Format.printf "degrade-smoke FAILED on %s: expected no violation@." name;
    exit 1
  | _ -> ());
  report

let () =
  let kinds =
    [ Chaos.Schedule.Crash_k; Chaos.Schedule.Drop_k; Chaos.Schedule.Partition_k ]
  in
  let _ =
    run "direct n=2 f=1 (resilient, degraded demand)"
      (Protocols.Direct.system ~n:2 ~f:1)
      ~kinds ~expect_violation:false
  in
  let report =
    run "tob n=2 f=1 (falls to a stolen response)"
      (Protocols.Tob_direct.system ~n:2 ~f:1)
      ~kinds ~expect_violation:true
  in
  (match report.Chaos.Driver.outcome with
  | Chaos.Driver.Violated { original; _ } ->
    (match original.Chaos.Explore.degraded_to with
    | Some _ -> ()
    | None ->
      Format.printf "degrade-smoke FAILED: violation carries no live vector@.";
      exit 1)
  | Chaos.Driver.Passed -> ());
  Format.printf "degrade-smoke OK@."
