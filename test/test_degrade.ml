(* Guarantee-vector degradation (ISSUE 6). Three pins:

   1. the heal/re-engage matrix — a partition degrades the live vector and
      the degraded monitors waive exactly the processes the damage excuses;
      a heal (before, at, or beyond the run's end) restores the full vector
      and with it the full termination demand;
   2. crash-only executions are untouched: the degrade-aware monitors give
      the same verdicts, word for word, as the waiver-based ones;
   3. the truncation-category split (monitor-budget vs adversary) — the
      monitor giving up is never conflated with the adversary earning a
      degraded check. *)

module G = Analysis.Gvector

let direct_f1 () = Protocols.Direct.system ~n:2 ~f:1
let tob ~f () = Protocols.Tob_direct.system ~n:2 ~f

let vector_testable = Alcotest.testable G.pp G.equal

(* --- the lattice --- *)

let test_lattice () =
  let sys = direct_f1 () in
  let v = Analysis.Guarantee.compose sys in
  Alcotest.check vector_testable "top is the meet identity" v (G.meet G.top v);
  Alcotest.check vector_testable "meet is idempotent" v (G.meet v v);
  let d = { v with G.recency = G.Rec_none; termination = G.Term_none } in
  Alcotest.check vector_testable "meet is pointwise weakest" d (G.meet v d);
  Alcotest.(check bool) "degraded leq full" true (G.leq d v);
  Alcotest.(check bool) "full not leq degraded" false (G.leq v d)

(* --- static gaps: the boosts and only the boosts --- *)

let test_static_gaps () =
  let gap_components name =
    match Protocols.Registry.find name with
    | None -> Alcotest.failf "no registry entry %s" name
    | Some e ->
      let p = Protocols.Registry.default_params in
      let sys = e.Protocols.Registry.build p in
      let claim = e.Protocols.Registry.claims p in
      Analysis.Guarantee.gaps ~claim sys
      |> List.map (fun (g : Analysis.Guarantee.gap) -> g.Analysis.Guarantee.component)
  in
  Alcotest.(check (list string)) "tob over-claims termination (Thm 9)"
    [ "termination" ] (gap_components "tob");
  Alcotest.(check (list string)) "kset over-claims scope (Thm 2)"
    [ "scope" ] (gap_components "kset");
  List.iter
    (fun name ->
      Alcotest.(check (list string)) (name ^ " claims honestly") [] (gap_components name))
    [ "direct"; "register-vote"; "mp-quorum"; "universal" ]

(* --- the absorb matrix: net damage x heal timing, at the vector level --- *)

let test_absorb_matrix () =
  let sys = direct_f1 () in
  let baseline = Analysis.Guarantee.compose sys in
  let blocks = [ [ 0 ] ] in
  let net kind = Model.Event.Net { service = "cons"; endpoint = 0; kind } in
  List.iter
    (fun (label, kind, survives_heal) ->
      let d0 = Chaos.Degrade.absorb Chaos.Degrade.empty (net kind) in
      let d1 = Chaos.Degrade.absorb d0 (Model.Event.Partition blocks) in
      let partitioned = Chaos.Degrade.live_vector sys d1 in
      Alcotest.(check bool)
        (label ^ ": partition cuts the scope") true
        (partitioned.G.scope > baseline.G.scope);
      Alcotest.(check bool)
        (label ^ ": degraded vector sits strictly below baseline") true
        (G.leq partitioned baseline && not (G.equal partitioned baseline));
      let d2 = Chaos.Degrade.absorb d1 (Model.Event.Heal blocks) in
      let healed = Chaos.Degrade.live_vector sys d2 in
      Alcotest.(check int)
        (label ^ ": heal restores the scope") baseline.G.scope healed.G.scope;
      Alcotest.(check bool)
        (label ^ ": net damage survives the heal iff it stole state")
        survives_heal
        (not (G.equal healed baseline)))
    [
      (* A stolen response is gone for good; dup/delay only perturb timing. *)
      "drop", Model.Event.Drop, true;
      "dup", Model.Event.Duplicate, true;
      "delay", Model.Event.Delay 2, true;
    ];
  (* A pure partition + heal restores the baseline exactly. *)
  let d =
    List.fold_left Chaos.Degrade.absorb Chaos.Degrade.empty
      [ Model.Event.Partition blocks; Model.Event.Heal blocks ]
  in
  Alcotest.check vector_testable "partition+heal round-trips to baseline" baseline
    (Chaos.Degrade.live_vector sys d)

(* --- the heal/re-engage matrix on real runs --- *)

(* Partition isolating P1, healed before / at / beyond the end of the run.
   The degrade-aware termination monitor must enforce (and see satisfied)
   the full demand whenever the heal lands inside the run, and waive exactly
   the isolated process - never the whole property - when it does not. *)
let test_heal_matrix () =
  let sys = direct_f1 () in
  let run ~degrade ~heal_at ~max_steps =
    Chaos.Runner.run
      ~monitors:(if degrade then [ Chaos.Monitor.f_termination_degraded ] else [ Chaos.Monitor.f_termination ])
      ~max_steps
      ~schedule:
        (Chaos.Schedule.make
           [ Chaos.Schedule.partition ~step:0 ~blocks:[ [ 1 ] ] ~heal_at ])
      sys
  in
  (* Healed before the end: full demand re-engaged, satisfied, no waiver. *)
  let r = run ~degrade:true ~heal_at:5 ~max_steps:500 in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation _ -> Alcotest.fail "healed: must terminate"
  | _ -> ());
  Alcotest.(check bool) "healed: no waiver" true (r.Chaos.Runner.monitor_truncations = []);
  (* Trajectory: degraded at the partition, baseline again at the heal. *)
  let baseline, changes = Chaos.Degrade.trajectory sys r.Chaos.Runner.exec in
  Alcotest.check vector_testable "trajectory baseline is the composed vector"
    (Analysis.Guarantee.compose sys) baseline;
  (match changes with
  | [ (_, Model.Event.Partition _, cut); (_, Model.Event.Heal _, restored) ] ->
    Alcotest.(check bool) "cut vector strictly below baseline" true
      (G.leq cut baseline && not (G.equal cut baseline));
    Alcotest.check vector_testable "heal restores the baseline" baseline restored
  | _ -> Alcotest.failf "expected partition+heal trajectory, got %d change(s)"
           (List.length changes));
  (* Heal at / beyond the run's end: P1 is excused, P0 is still on the hook
     (and decides) - a pass with no wholesale waiver, where the old monitor
     declined to judge. *)
  List.iter
    (fun heal_at ->
      let r = run ~degrade:true ~heal_at ~max_steps:500 in
      (match r.Chaos.Runner.stop with
      | Chaos.Runner.Violation { reason; _ } ->
        Alcotest.failf "unhealed: P0 decided, P1 excused - no violation, got %s" reason
      | _ -> ());
      Alcotest.(check bool) "unhealed: degraded monitor decides, no waiver" true
        (r.Chaos.Runner.monitor_truncations = []);
      let old = run ~degrade:false ~heal_at ~max_steps:500 in
      Alcotest.(check bool) "unhealed: waiver-based monitor declines" true
        (List.exists
           (fun (m, cat, _) -> m = "f-termination" && cat = Chaos.Monitor.Adversary)
           old.Chaos.Runner.monitor_truncations);
      let _, changes = Chaos.Degrade.trajectory sys r.Chaos.Runner.exec in
      match List.rev changes with
      | (_, _, last) :: _ ->
        Alcotest.(check bool) "unhealed: trajectory ends degraded" false
          (G.equal last (Analysis.Guarantee.compose sys))
      | [] -> Alcotest.fail "unhealed: expected a trajectory change")
    [ 500; 9_999 ]

(* The tob boost under a stolen response: with degrade-aware monitors the
   old wholesale waiver becomes an explicit verdict carrying the live
   vector, whose termination component the theft voided. *)
let test_tob_drop_degrades () =
  let sys = tob ~f:1 () in
  let r =
    Chaos.Runner.run
      ~monitors:(Chaos.Monitor.defaults ~degrade:true ())
      ~max_steps:4_000
      ~schedule:
        (Chaos.Schedule.make [ Chaos.Schedule.drop ~step:7 ~service:"tob" ~endpoint:0 ])
      sys
  in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation { monitor; _ } ->
    Alcotest.(check string) "agreement breaks even degraded" "agreement" monitor
  | _ -> Alcotest.fail "tob must fall to the stolen response");
  let live = Chaos.Degrade.live_vector sys (Chaos.Degrade.of_exec r.Chaos.Runner.exec) in
  Alcotest.(check bool) "the theft voids the termination component" true
    (live.G.termination = G.Term_none);
  Alcotest.(check bool) "describe renders the live vector" true
    (live |> G.to_string |> String.length > 0)

(* --- pin 2: crash-only identity --- *)

let test_crash_only_identity () =
  List.iter
    (fun (sys, step, pid) ->
      let schedule = Chaos.Schedule.make [ Chaos.Schedule.crash ~step ~pid ] in
      let run monitors = Chaos.Runner.run ~monitors ~max_steps:2_000 ~schedule sys in
      let old_r = run [ Chaos.Monitor.f_termination ] in
      let new_r = run [ Chaos.Monitor.f_termination_degraded ] in
      Alcotest.(check bool) "crash-only stop identical" true
        (old_r.Chaos.Runner.stop = new_r.Chaos.Runner.stop);
      Alcotest.(check bool) "crash-only truncations identical" true
        (old_r.Chaos.Runner.monitor_truncations = new_r.Chaos.Runner.monitor_truncations))
    [
      direct_f1 (), 0, 0;
      direct_f1 (), 3, 1;
      tob ~f:0 (), 0, 0;
      tob ~f:0 (), 2, 1;
    ]

(* --- pin 3: truncation categories (the satellite-2 regression) --- *)

let test_truncation_categories () =
  Alcotest.(check string) "category names" "monitor-budget"
    (Chaos.Monitor.category_name Chaos.Monitor.Monitor_budget);
  Alcotest.(check string) "category names" "adversary"
    (Chaos.Monitor.category_name Chaos.Monitor.Adversary);
  (* The monitor giving up (history outgrew the search budget) is
     monitor-budget... *)
  let r =
    Chaos.Runner.run
      ~monitors:[ Chaos.Monitor.linearizability ~max_history:1 () ]
      ~max_steps:2_000 ~schedule:(Chaos.Schedule.make []) (direct_f1 ())
  in
  Alcotest.(check bool) "history bound is monitor-budget" true
    (List.exists
       (fun (m, cat, _) -> m = "linearizability" && cat = Chaos.Monitor.Monitor_budget)
       r.Chaos.Runner.monitor_truncations);
  (* ...while a waiver earned by adversary damage is adversary. *)
  let r =
    Chaos.Runner.run
      ~monitors:[ Chaos.Monitor.linearizability () ]
      ~max_steps:4_000
      ~schedule:
        (Chaos.Schedule.make [ Chaos.Schedule.drop ~step:7 ~service:"tob" ~endpoint:0 ])
      (tob ~f:1 ())
  in
  Alcotest.(check bool) "net-fault waiver is adversary" true
    (List.exists
       (fun (m, cat, _) -> m = "linearizability" && cat = Chaos.Monitor.Adversary)
       r.Chaos.Runner.monitor_truncations)

(* --- POR x degrade composition (ISSUE 7 satellite) ---

   With [--por --degrade] an inherited verdict must carry the same
   degraded-vector annotation the unpruned explorer computes: the slide
   argument excludes decision-writing tasks from partition windows
   precisely so the graded verdict survives the canonicalization. *)

let test_por_degrade_compose () =
  let sys = tob ~f:0 () in
  let cfg =
    { (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      kinds = [ Chaos.Schedule.Drop_k; Chaos.Schedule.Partition_k ];
      budget = 1_000_000;
      max_steps = 4_000;
      degrade = true;
    }
  in
  let vsig (v : Chaos.Explore.violation) =
    ( Chaos.Schedule.to_string v.Chaos.Explore.schedule,
      v.Chaos.Explore.monitor,
      v.Chaos.Explore.reason,
      v.Chaos.Explore.proven,
      v.Chaos.Explore.steps,
      v.Chaos.Explore.degraded_to )
  in
  let oracle = Chaos.Explore.run ~config:cfg sys in
  let par =
    Chaos.Explore.run_par ~config:cfg ~domains:2 ~dedup:false ~static_prune:true
      ~por:true sys
  in
  Alcotest.(check bool) "degrade oracle reaches a verdict" true
    (oracle.Chaos.Explore.violation <> None);
  (match oracle.Chaos.Explore.violation with
  | Some v ->
    Alcotest.(check bool) "oracle verdict carries a degraded vector" true
      (v.Chaos.Explore.degraded_to <> None)
  | None -> ());
  Alcotest.(check bool) "pruned verdict matches, degraded vector included" true
    (Option.map vsig oracle.Chaos.Explore.violation
    = Option.map vsig par.Chaos.Explore.violation);
  Alcotest.(check int) "examined counts agree" oracle.Chaos.Explore.examined
    par.Chaos.Explore.examined;
  Alcotest.(check bool) "the slide argument actually fired" true
    (par.Chaos.Explore.por_prunes > 0);
  (* The minimizer must agree too: Driver.run with POR on and off lands on
     the same minimal schedule with the same minimized damage. *)
  let driver por =
    match
      (Chaos.Driver.run ~dedup:false ~static_prune:por ~por
         (Chaos.Driver.Systematic cfg) sys)
        .Chaos.Driver.outcome
    with
    | Chaos.Driver.Violated { minimized = Some m; _ } ->
      (Chaos.Schedule.to_string m.Chaos.Explore.schedule, m.Chaos.Explore.degraded_to)
    | _ -> Alcotest.fail "expected a minimized degrade-aware violation"
  in
  Alcotest.(check (pair string (option string)))
    "minimized schedule and damage POR-invariant" (driver false) (driver true)

(* --- CLI error satellite: kind parsing names its vocabulary --- *)

let test_parse_kind_errors () =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  (match Chaos.Schedule.parse_kinds "explode" with
  | Ok _ -> Alcotest.fail "unknown kind must be rejected"
  | Error e ->
    Alcotest.(check bool) "error names the accepted kinds" true
      (contains e "crash" && contains e "partition");
    Alcotest.(check bool) "error suggests --faults crash" true
      (contains e "--faults crash"));
  match Chaos.Schedule.parse_kinds "" with
  | Ok _ -> Alcotest.fail "empty kind list must be rejected"
  | Error e ->
    Alcotest.(check bool) "empty-list error names the accepted kinds" true
      (contains e "crash")

(* Witness files carry the trajectory as '#' comment lines; parse must skip
   them so a --witness-out file replays as-is. *)
let test_witness_round_trip () =
  let bare = "crash@0:1,drop@4:tob:0" in
  let annotated =
    bare ^ "\n# baseline: <vector>\n# step 5 drop_{0,tob}: <vector>\n"
  in
  match Chaos.Schedule.parse bare, Chaos.Schedule.parse annotated with
  | Ok a, Ok b ->
    Alcotest.(check bool) "comment lines are ignored" true (Chaos.Schedule.equal a b)
  | Error e, _ | _, Error e -> Alcotest.fail e

let suite =
  ( "degrade",
    [
      Alcotest.test_case "guarantee-vector lattice" `Quick test_lattice;
      Alcotest.test_case "static gaps: the boosts and only the boosts" `Quick
        test_static_gaps;
      Alcotest.test_case "absorb matrix: damage x heal" `Quick test_absorb_matrix;
      Alcotest.test_case "heal/re-engage matrix on real runs" `Quick test_heal_matrix;
      Alcotest.test_case "tob drop: waiver becomes degraded verdict" `Quick
        test_tob_drop_degrades;
      Alcotest.test_case "crash-only verdicts identical" `Quick test_crash_only_identity;
      Alcotest.test_case "truncation categories" `Quick test_truncation_categories;
      Alcotest.test_case "por composes with degrade" `Quick test_por_degrade_compose;
      Alcotest.test_case "fault-kind parse errors name the vocabulary" `Quick
        test_parse_kind_errors;
      Alcotest.test_case "witness trajectory comments round-trip" `Quick
        test_witness_round_trip;
    ] )
