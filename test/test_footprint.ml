(* The static interference relation, pinned to the concrete semantics.

   The soundness obligation is directional: whenever the footprints declare
   two tasks independent (or a task independent of a pid's crash bit), the
   concrete transition function must commute them — same final state,
   applicability preserved either way, under either policy resolution. The
   converse (interfering pairs that happen to commute) is allowed slack;
   the partial-order reduction only ever exploits the sound direction, and
   its report is differentially pinned to the unreduced explorer here. *)

open Helpers
module A = Analysis

(* --- concrete commutation oracles --- *)

(* Strong commutation at a state: matching applicability in both orders and,
   when both tasks fire, equal final states (Engine.Commute.commute_at also
   demands applicability is preserved across the swap). *)
let commutes ?policy sys s e e' =
  let step tk st = Model.System.transition ?policy sys st tk in
  match step e s, step e' s with
  | None, None -> true
  | Some (_, s_e), None -> Option.is_none (step e' s_e)
  | None, Some (_, s_e') -> Option.is_none (step e s_e')
  | Some _, Some _ -> (
    match Engine.Commute.commute_at ?policy sys s e e' with
    | Ok () -> true
    | Error _ -> false)

(* Commutation of a task against the adversary's fail_pid input: the task
   must take the same action to the same state on both sides of the crash
   delivery. *)
let crash_commutes ?policy sys s ~pid tk =
  let fail st = snd (Model.System.apply_fail sys st pid) in
  let step st = Model.System.transition ?policy sys st tk in
  match step (fail s), step s with
  | None, None -> true
  | Some (ev1, s1), Some (ev2, s2) ->
    Model.Event.equal ev1 ev2 && Model.State.equal s1 (fail s2)
  | Some _, None | None, Some _ -> false

let policies = [ Model.System.real_policy; Model.System.dummy_policy ]

(* Every statically-independent claim the analysis makes at [s] must hold
   concretely; returns a counterexample description, or None. *)
let independence_sound inter sys s =
  let tasks = sys.Model.System.tasks in
  let n = Array.length tasks in
  let bad = ref None in
  let note msg = if !bad = None then bad := Some msg in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if A.Interfere.independent inter tasks.(i) tasks.(j) then
        List.iter
          (fun policy ->
            if not (commutes ~policy sys s tasks.(i) tasks.(j)) then
              note
                (Format.asprintf "%a / %a do not commute at %a" Model.Task.pp tasks.(i)
                   Model.Task.pp tasks.(j) Model.State.pp s))
          policies
    done
  done;
  let k = A.Interfere.max_crashes inter in
  for pid = 0 to Model.System.n_processes sys - 1 do
    (* Delivering fail_pid here stays within the crash bound the footprints
       were sharpened for. *)
    if Spec.Iset.mem pid s.Model.State.failed || Spec.Iset.cardinal s.Model.State.failed < k
    then
      Array.iter
        (fun tk ->
          if not (A.Interfere.crash_interferes inter ~pid tk) then
            List.iter
              (fun policy ->
                if not (crash_commutes ~policy sys s ~pid tk) then
                  note
                    (Format.asprintf "%a does not commute with fail_%d at %a" Model.Task.pp
                       tk pid Model.State.pp s))
              policies)
        tasks
  done;
  !bad

(* --- protocols under test --- *)

let build name =
  match Protocols.Registry.find name with
  | Some e -> e.Protocols.Registry.build Protocols.Registry.default_params
  | None -> Alcotest.failf "unknown registry protocol %s" name

let small_protocols = [ "direct"; "split"; "register-vote"; "tob" ]

(* --- random-walk soundness --- *)

(* Walk the concrete system by arbitrary task/crash choices (at most
   [max_crashes] crashes injected, so every visited state is within the
   bound the footprints assume), then audit every independence claim at the
   final state. *)
let qcheck_walk_soundness =
  let gen =
    QCheck2.Gen.(
      let* which = int_bound (List.length small_protocols - 1) in
      let* bits = list_repeat 2 (int_bound 1) in
      let* max_crashes = int_bound 2 in
      let* picks = list_size (int_bound 25) (int_bound 10_000) in
      let* adversarial = bool in
      return (List.nth small_protocols which, bits, max_crashes, picks, adversarial))
  in
  qtest "independent claims commute along random walks" ~count:150 gen
    (fun (name, bits, max_crashes, picks, adversarial) ->
      let sys = build name in
      let policy =
        if adversarial then Model.System.dummy_policy else Model.System.real_policy
      in
      let n_tasks = Array.length sys.Model.System.tasks in
      let np = Model.System.n_processes sys in
      let s = ref (Model.System.initialize sys (int_inputs bits)) in
      List.iter
        (fun v ->
          if v mod 7 = 0 && Spec.Iset.cardinal !s.Model.State.failed < max_crashes then
            s := snd (Model.System.apply_fail sys !s (v / 7 mod np))
          else
            match
              Model.System.transition ~policy sys !s sys.Model.System.tasks.(v mod n_tasks)
            with
            | Some (_, s') -> s := s'
            | None -> ())
        picks;
      let reach = A.Reach.analyze ~max_faults:max_crashes ~inputs:(int_inputs bits) sys in
      let inter = A.Interfere.analyze ~reach ~max_crashes sys in
      match independence_sound inter sys !s with
      | None -> true
      | Some msg -> QCheck2.Test.fail_report msg)

(* --- exhaustive soundness over G(C) --- *)

let test_exhaustive_small () =
  (* Every failure-free reachable state of the small protocols, audited
     against footprints sharpened for one crash: all task pairs, plus one
     crash delivery per pid from each state. *)
  List.iter
    (fun name ->
      let sys = build name in
      let inputs = List.init (Model.System.n_processes sys) (fun i -> i mod 2) in
      let reach = A.Reach.analyze ~max_faults:1 ~inputs:(int_inputs inputs) sys in
      let inter = A.Interfere.analyze ~reach ~max_crashes:1 sys in
      let g = Engine.Graph.explore sys (Model.System.initialize sys (int_inputs inputs)) in
      if not (Engine.Graph.complete g) then Alcotest.failf "%s: G(C) did not materialize" name;
      Engine.Graph.iter_states g (fun _ s ->
          match independence_sound inter sys s with
          | None -> ()
          | Some msg -> Alcotest.failf "%s: %s" name msg))
    small_protocols

(* --- interference over-approximates Commute.check_disjoint --- *)

let test_interference_covers_disjoint_violations () =
  (* Commute.check_disjoint reports concretely non-commuting disjoint pairs
     over G(C); the static relation must flag every such pair interfering.
     Registry protocols have none (Lemma 8 holds), so the check is vacuous
     there — assert that emptiness too, which is the same theorem. *)
  List.iter
    (fun name ->
      let sys = build name in
      let inter = A.Interfere.analyze sys in
      let g = Engine.Graph.explore sys (Model.System.initialize sys (int_inputs [ 1; 0 ])) in
      let a = Engine.Valence.analyze g in
      List.iter
        (fun (v : Engine.Commute.violation) ->
          Alcotest.(check bool)
            (Format.asprintf "%s: %a/%a flagged interfering" name Model.Task.pp
               v.Engine.Commute.e Model.Task.pp v.Engine.Commute.e')
            true
            (A.Interfere.interferes inter v.Engine.Commute.e v.Engine.Commute.e'))
        (Engine.Commute.check_disjoint a);
      Alcotest.(check int)
        (name ^ ": Lemma 8 discipline holds concretely")
        0
        (List.length (Engine.Commute.check_disjoint a)))
    small_protocols

let test_registry_race_free () =
  (* The static Lemma 8/Claim 2 theorem-check: in a well-wired system every
     written component is owned by a participant both writers share, so the
     race lint is provably empty on all registry protocols. *)
  List.iter
    (fun e ->
      let sys = e.Protocols.Registry.build Protocols.Registry.default_params in
      let inter = A.Interfere.analyze sys in
      Alcotest.(check int)
        (e.Protocols.Registry.name ^ " has no static races")
        0
        (List.length (A.Interfere.races inter)))
    Protocols.Registry.all

(* --- partial-order reduction, pinned to the unreduced explorer --- *)

let cfg ?(max_faults = 1) ?(horizon = 12) () =
  { Chaos.Explore.max_faults; horizon; stride = 1; budget = 100_000; max_steps = 2_000;
    kinds = [ Chaos.Schedule.Crash_k ]; degrade = false }

let report_sig (r : Chaos.Explore.report) =
  (* Everything the reduced run must reproduce byte-identically; por_prunes
     is the one field allowed to differ (asserted separately). *)
  Format.asprintf "%d/%d/%b/%d/%d/%d/%s" r.Chaos.Explore.examined r.Chaos.Explore.space
    r.Chaos.Explore.truncated r.Chaos.Explore.step_budget_hits
    r.Chaos.Explore.monitor_truncations r.Chaos.Explore.undelivered_crashes
    (match r.Chaos.Explore.violation with
    | None -> "clean"
    | Some v ->
      Chaos.Schedule.to_string v.Chaos.Explore.schedule
      ^ "|" ^ v.Chaos.Explore.monitor ^ "|" ^ v.Chaos.Explore.reason
      ^ "|" ^ string_of_bool v.Chaos.Explore.proven)

let por_differential ?max_faults ?horizon ~expect_prunes sys =
  let config = cfg ?max_faults ?horizon () in
  let oracle = Chaos.Explore.run ~config sys in
  let reduced = Chaos.Explore.run_par ~config ~dedup:false ~por:true sys in
  Alcotest.(check string) "report identical" (report_sig oracle) (report_sig reduced);
  Alcotest.(check int) "oracle never prunes" 0 oracle.Chaos.Explore.por_prunes;
  if expect_prunes then
    Alcotest.(check bool) "skipped a nonzero number of schedules" true
      (reduced.Chaos.Explore.por_prunes > 0)

let test_por_direct_clean () =
  por_differential ~expect_prunes:true (Protocols.Direct.system ~n:2 ~f:1)

let test_por_tob_clean () =
  por_differential ~horizon:40 ~expect_prunes:true (Protocols.Tob_direct.system ~n:2 ~f:1)

let test_por_direct_violating () =
  (* f = 0: the reports must coincide including the violation — a violating
     schedule's canonical crash placement violates at lower rank, so the
     rank-least winner survives reduction. *)
  por_differential ~expect_prunes:false (Protocols.Direct.system ~n:2 ~f:0)

let test_por_prune_rate_tob () =
  (* The acceptance bar: ≥ 20% of the default-config tob space is pruned. *)
  let sys = Protocols.Tob_direct.system ~n:2 ~f:1 in
  let config = Chaos.Explore.default_config sys in
  let r = Chaos.Explore.run_par ~config ~dedup:false ~por:true sys in
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d pruned" r.Chaos.Explore.por_prunes r.Chaos.Explore.space)
    true
    (5 * r.Chaos.Explore.por_prunes >= r.Chaos.Explore.space)

let test_por_composes () =
  (* por ∘ static_prune ∘ dedup ∘ domains, against the sequential oracle. *)
  let sys = Protocols.Tob_direct.system ~n:2 ~f:1 in
  let config = cfg ~horizon:40 () in
  let oracle = Chaos.Explore.run ~config sys in
  let reduced =
    Chaos.Explore.run_par ~config ~domains:2 ~dedup:true ~static_prune:true ~por:true sys
  in
  Alcotest.(check string) "report identical" (report_sig oracle) (report_sig reduced)

let suite =
  ( "footprint",
    [
      qcheck_walk_soundness;
      Alcotest.test_case "exhaustive soundness on small G(C)" `Slow test_exhaustive_small;
      Alcotest.test_case "covers concrete disjoint violations" `Quick
        test_interference_covers_disjoint_violations;
      Alcotest.test_case "registry race-free" `Quick test_registry_race_free;
      Alcotest.test_case "por differential: direct clean" `Quick test_por_direct_clean;
      Alcotest.test_case "por differential: tob clean" `Quick test_por_tob_clean;
      Alcotest.test_case "por differential: direct violating" `Quick
        test_por_direct_violating;
      Alcotest.test_case "por prune rate on tob" `Quick test_por_prune_rate_tob;
      Alcotest.test_case "por composes with dedup and static-prune" `Quick test_por_composes;
    ] )
