(* The network adversary: omission/duplication/delay/partition faults
   beyond crashes (ISSUE 5). Three pins hold the PR together:

   1. the crash-only differential — with [kinds = [Crash_k]] the kind-aware
      explorer reproduces, field for field, an independent reimplementation
      of the pre-network enumeration (the old engine's behavior);
   2. resilient protocols survive every mixed schedule within their fault
      budget, while the tob boost protocol falls to a single minimized
      network fault — the graceful-degradation story of §6.3;
   3. shrinking stays 1-minimal across kinds and never emits a schedule
      referencing steps beyond the violating run's executed range. *)

open Helpers

let sched_testable = Alcotest.testable Chaos.Schedule.pp Chaos.Schedule.equal

let tob () = Protocols.Tob_direct.system ~n:2 ~f:0
let direct_f1 () = Protocols.Direct.system ~n:2 ~f:1

let config sys ~kinds ~max_faults =
  { (Chaos.Explore.default_config sys) with
    Chaos.Explore.max_faults;
    kinds;
    budget = 1_000_000;
    max_steps = 4_000;
  }

(* --- Schedule: net-fault grammar and validation --- *)

let test_parse_round_trip_net () =
  let check spec =
    match Chaos.Schedule.parse spec with
    | Error e -> Alcotest.failf "parse %S: %s" spec e
    | Ok s -> (
      match Chaos.Schedule.parse (Chaos.Schedule.to_string s) with
      | Error e -> Alcotest.failf "re-parse of %S: %s" (Chaos.Schedule.to_string s) e
      | Ok s' -> Alcotest.check sched_testable spec s s')
  in
  List.iter check
    [
      "drop@3:tob:0";
      "dup@2:tob:1";
      "delay@4:tob:0:2";
      "partition@1:0|1.2:9";
      "partition@3:1:8";
      "crash@0:1,drop@2:tob:0,partition@3:1:8";
      "helpful,delay@1:tob:1:3";
    ]

let test_parse_errors_net () =
  List.iter
    (fun spec ->
      match Chaos.Schedule.parse spec with
      | Ok _ -> Alcotest.failf "expected parse error for %S" spec
      | Error _ -> ())
    [ "drop@1:tob"; "delay@1:tob:0"; "partition@2:0"; "dup@x:tob:0"; "partition@2:0:x" ]

let test_parse_kinds () =
  (match Chaos.Schedule.parse_kinds "drop,partition" with
  | Ok [ Chaos.Schedule.Drop_k; Chaos.Schedule.Partition_k ] -> ()
  | Ok _ -> Alcotest.fail "wrong kinds"
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "unknown kind rejected" true
    (Result.is_error (Chaos.Schedule.parse_kinds "drop,explode"));
  Alcotest.(check bool) "empty rejected" true
    (Result.is_error (Chaos.Schedule.parse_kinds ""))

let test_validate_net () =
  let sys = tob () in
  let bad = [
    Chaos.Schedule.drop ~step:1 ~service:"tob" ~endpoint:5;
    Chaos.Schedule.drop ~step:1 ~service:"nope" ~endpoint:0;
    Chaos.Schedule.delay ~step:1 ~service:"tob" ~endpoint:0 ~lag:0;
    Chaos.Schedule.partition ~step:2 ~blocks:[ [ 0 ]; [ 0 ] ] ~heal_at:5;
    Chaos.Schedule.partition ~step:2 ~blocks:[ [ 7 ] ] ~heal_at:5;
    Chaos.Schedule.partition ~step:2 ~blocks:[ [ 0 ] ] ~heal_at:2;
  ]
  and good = [
    Chaos.Schedule.drop ~step:1 ~service:"tob" ~endpoint:0;
    Chaos.Schedule.delay ~step:1 ~service:"tob" ~endpoint:1 ~lag:2;
    Chaos.Schedule.partition ~step:2 ~blocks:[ [ 0 ] ] ~heal_at:5;
  ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Format.asprintf "reject %a" Chaos.Schedule.pp (Chaos.Schedule.make [ f ]))
        true
        (Result.is_error (Chaos.Schedule.validate sys (Chaos.Schedule.make [ f ]))))
    bad;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Format.asprintf "accept %a" Chaos.Schedule.pp (Chaos.Schedule.make [ f ]))
        true
        (Result.is_ok (Chaos.Schedule.validate sys (Chaos.Schedule.make [ f ]))))
    good

(* Delivered net faults leave their event in the execution; partitions are
   bracketed by partition/heal events. *)
let test_net_events_in_exec () =
  let sys = tob () in
  let events schedule =
    (Chaos.Runner.run ~max_steps:2_000 ~schedule sys).Chaos.Runner.exec
    |> Model.Exec.events
  in
  let has p schedule = List.exists p (events schedule) in
  Alcotest.(check bool) "drop event" true
    (has
       (function
         | Model.Event.Net { kind = Model.Event.Drop; service = "tob"; endpoint = 0 } ->
           true
         | _ -> false)
       (Chaos.Schedule.make [ Chaos.Schedule.drop ~step:7 ~service:"tob" ~endpoint:0 ]));
  Alcotest.(check bool) "dup event" true
    (has
       (function
         | Model.Event.Net { kind = Model.Event.Duplicate; _ } -> true | _ -> false)
       (Chaos.Schedule.make
          [ Chaos.Schedule.duplicate ~step:7 ~service:"tob" ~endpoint:0 ]));
  let part =
    Chaos.Schedule.make [ Chaos.Schedule.partition ~step:0 ~blocks:[ [ 0 ] ] ~heal_at:4 ]
  in
  Alcotest.(check bool) "partition event" true
    (has (function Model.Event.Partition [ [ 0 ] ] -> true | _ -> false) part);
  Alcotest.(check bool) "heal event" true
    (has (function Model.Event.Heal [ [ 0 ] ] -> true | _ -> false) part)

(* --- Pin 1: crash-only differential against the pre-network oracle --- *)

(* Independent reimplementation of the pre-network enumeration (k-subsets
   of pids, lexicographic, one crash-step tuple per subset) and of the
   sequential early-stop scan. The kind-aware engine with
   [kinds = [Crash_k]] must reproduce it in every verdict-bearing field. *)
let oracle sys (cfg : Chaos.Explore.config) =
  let n = Model.System.n_processes sys in
  let points = List.init cfg.Chaos.Explore.horizon Fun.id in
  let rec choose k lst =
    if k = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest -> List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest
  in
  let rec tuples k =
    if k = 0 then [ [] ]
    else List.concat_map (fun tl -> List.map (fun p -> p :: tl) points) (tuples (k - 1))
  in
  let schedules =
    List.concat_map
      (fun k ->
        List.concat_map
          (fun subset ->
            List.map
              (fun steps ->
                Chaos.Schedule.make
                  (List.map2
                     (fun pid step -> Chaos.Schedule.crash ~step ~pid)
                     subset (List.rev steps)))
              (tuples k))
          (choose k (List.init n Fun.id)))
      (List.init (cfg.Chaos.Explore.max_faults + 1) Fun.id)
  in
  let examined = ref 0 in
  let rec scan = function
    | [] -> None
    | schedule :: rest ->
      if !examined >= cfg.Chaos.Explore.budget then None
      else begin
        incr examined;
        let r =
          Chaos.Runner.run ~max_steps:cfg.Chaos.Explore.max_steps ~schedule sys
        in
        match r.Chaos.Runner.stop with
        | Chaos.Runner.Violation { monitor; reason; proven } ->
          Some ((Chaos.Schedule.to_string schedule, monitor), (reason, proven))
        | _ -> scan rest
      end
  in
  let found = scan schedules in
  !examined, found

let check_crash_differential name sys ~max_faults ~horizon =
  let cfg =
    { (config sys ~kinds:[ Chaos.Schedule.Crash_k ] ~max_faults) with
      Chaos.Explore.horizon;
      max_steps = 2_000;
    }
  in
  let expected_examined, expected = oracle sys cfg in
  let r = Chaos.Explore.run ~config:cfg sys in
  let got =
    Option.map
      (fun (v : Chaos.Explore.violation) ->
        ( (Chaos.Schedule.to_string v.Chaos.Explore.schedule, v.Chaos.Explore.monitor),
          (v.Chaos.Explore.reason, v.Chaos.Explore.proven) ))
      r.Chaos.Explore.violation
  in
  Alcotest.(check int) (name ^ ": examined") expected_examined r.Chaos.Explore.examined;
  Alcotest.(check (option (pair (pair string string) (pair string bool))))
    (name ^ ": verdict") expected got;
  Alcotest.(check int)
    (name ^ ": net counters stay zero") 0
    (r.Chaos.Explore.undelivered_net + r.Chaos.Explore.vacuous_net_faults)

let test_crash_only_differential () =
  check_crash_differential "register-wait" (Protocols.Register_wait.system ())
    ~max_faults:1 ~horizon:6;
  check_crash_differential "direct f=1" (direct_f1 ()) ~max_faults:2 ~horizon:5;
  check_crash_differential "tob f=0" (tob ()) ~max_faults:1 ~horizon:6

(* --- Pin 2: tob falls to one network fault; resilient protocols don't --- *)

let test_tob_mixed_witness () =
  let sys = tob () in
  let cfg = config sys ~kinds:[ Chaos.Schedule.Drop_k; Chaos.Schedule.Delay_k ] ~max_faults:1 in
  let r = Chaos.Explore.run ~config:cfg sys in
  match r.Chaos.Explore.violation with
  | None -> Alcotest.fail "expected a mixed-fault violation on tob"
  | Some v ->
    Alcotest.(check bool) "witness carries a net fault" true
      (Chaos.Schedule.net_faults v.Chaos.Explore.schedule <> []);
    let m, _ = Chaos.Shrink.shrink ~max_steps:cfg.Chaos.Explore.max_steps sys v in
    Alcotest.(check int) "minimized to one fault" 1
      (Chaos.Schedule.n_faults m.Chaos.Explore.schedule);
    Alcotest.(check int) "the one fault is a net fault" 1
      (List.length (Chaos.Schedule.net_faults m.Chaos.Explore.schedule));
    (* 1-minimality: removing the remaining fault kills the violation. *)
    let stripped =
      Chaos.Schedule.make
        ~default_pref:m.Chaos.Explore.schedule.Chaos.Schedule.default_pref
        ~overrides:m.Chaos.Explore.schedule.Chaos.Schedule.overrides []
    in
    let r' =
      Chaos.Runner.run ~max_steps:cfg.Chaos.Explore.max_steps ~schedule:stripped sys
    in
    (match r'.Chaos.Runner.stop with
    | Chaos.Runner.Violation { monitor; _ } when monitor = m.Chaos.Explore.monitor ->
      Alcotest.fail "stripped schedule still violates: not 1-minimal"
    | _ -> ())

let test_resilient_survive_mixed () =
  let kinds =
    Chaos.Schedule.
      [ Crash_k; Drop_k; Dup_k; Delay_k; Partition_k ]
  in
  List.iter
    (fun (name, sys) ->
      let cfg =
        { (config sys ~kinds ~max_faults:1) with Chaos.Explore.horizon = 8 }
      in
      let r = Chaos.Explore.run ~config:cfg sys in
      Alcotest.(check bool) (name ^ ": full space covered") false
        r.Chaos.Explore.truncated;
      Alcotest.(check bool) (name ^ ": no violation") true
        (r.Chaos.Explore.violation = None))
    [ "direct f=1", direct_f1 (); "register-vote", Protocols.Register_vote.system () ]

(* --- Recovery-aware monitors --- *)

(* Drops steal messages: a non-termination caused by one is waived
   (Truncated), never charged as a violation — but some drop must actually
   have bitten for the waiver to exist. *)
let test_termination_waived_under_drops () =
  let sys = direct_f1 () in
  let cfg = config sys ~kinds:[ Chaos.Schedule.Drop_k ] ~max_faults:1 in
  let r = Chaos.Explore.run ~monitors:[ Chaos.Monitor.f_termination ] ~config:cfg sys in
  Alcotest.(check bool) "no violation" true (r.Chaos.Explore.violation = None);
  Alcotest.(check bool) "some termination checks waived" true
    (r.Chaos.Explore.monitor_truncations > 0)

let test_termination_partition_recovery () =
  let sys = direct_f1 () in
  let run heal_at =
    Chaos.Runner.run
      ~monitors:[ Chaos.Monitor.f_termination ]
      ~max_steps:300
      ~schedule:
        (Chaos.Schedule.make
           [ Chaos.Schedule.partition ~step:0 ~blocks:[ [ 0 ] ] ~heal_at ])
      sys
  in
  (* Unhealed: the blocked process never decides, and the monitor waives. *)
  let r = run 9_999 in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation _ -> Alcotest.fail "unhealed partition must not violate"
  | _ -> ());
  Alcotest.(check bool) "unhealed waiver recorded" true
    (List.exists
       (fun (m, cat, why) ->
         m = "f-termination" && cat = Chaos.Monitor.Adversary && contains why "unhealed")
       r.Chaos.Runner.monitor_truncations);
  (* Healed: degradation must be graceful — termination is enforced and
     holds, with no waiver. *)
  let r = run 5 in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation _ -> Alcotest.fail "healed partition must terminate"
  | _ -> ());
  Alcotest.(check bool) "no waiver after heal" true
    (r.Chaos.Runner.monitor_truncations = [])

(* Duplicated responses must stay harmless on a resilient protocol: same
   decide delivered twice is still one decision. *)
let test_dup_harmless () =
  let sys = direct_f1 () in
  let cfg = config sys ~kinds:[ Chaos.Schedule.Dup_k ] ~max_faults:1 in
  let r = Chaos.Explore.run ~config:cfg sys in
  Alcotest.(check bool) "no violation under duplication" true
    (r.Chaos.Explore.violation = None)

(* ◇P monitors on the network-failure-detector protocol: completeness holds
   under a crash; an unhealed partition waives instead of failing. *)
let test_fd_monitors () =
  let sys = Protocols.Fd_network.system ~n:2 in
  let output = Protocols.Fd_network.output_of in
  let monitors =
    [ Chaos.Monitor.fd_completeness ~output (); Chaos.Monitor.fd_accuracy ~output () ]
  in
  let r =
    Chaos.Runner.run ~monitors ~max_steps:4_000
      ~schedule:(Chaos.Schedule.make [ Chaos.Schedule.crash ~step:4 ~pid:0 ])
      sys
  in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation { monitor; reason; _ } ->
    Alcotest.failf "fd monitors violated: %s (%s)" monitor reason
  | _ -> ());
  let r =
    Chaos.Runner.run ~monitors ~max_steps:400
      ~schedule:
        (Chaos.Schedule.make
           [ Chaos.Schedule.partition ~step:0 ~blocks:[ [ 0 ] ] ~heal_at:9_999 ])
      sys
  in
  (match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation _ -> Alcotest.fail "unhealed partition must waive, not fail"
  | _ -> ());
  Alcotest.(check bool) "fd waivers recorded" true
    (List.length r.Chaos.Runner.monitor_truncations >= 1)

(* --- Pin 3: shrinking across kinds --- *)

(* Regression for the clamp satellite: a violation that NEEDS its partition
   unhealed (custom monitor) starts with heal_at far beyond the run; the
   shrunk schedule must reference nothing past the violating run's executed
   step range. Before the clamp pass, shrinking got stuck at whatever
   midpoint the heal-earlier weakening last reproduced (well beyond the
   prefix). *)
let test_shrink_clamps_to_executed_range () =
  let sys = tob () in
  let unhealed_mon =
    Chaos.Monitor.
      {
        name = "unhealed";
        phase = End;
        relevant = (fun _ -> true);
        check =
          (fun _sys exec ->
            if Chaos.Monitor.unhealed_partition exec then Fail "partition never healed"
            else Pass);
      }
  in
  let monitors = [ unhealed_mon ] in
  let schedule =
    Chaos.Schedule.make
      [ Chaos.Schedule.partition ~step:0 ~blocks:[ [ 0 ] ] ~heal_at:9_999 ]
  in
  let r = Chaos.Runner.run ~monitors ~max_steps:200 ~schedule sys in
  let reason, proven =
    match r.Chaos.Runner.stop with
    | Chaos.Runner.Violation { monitor = "unhealed"; reason; proven } -> reason, proven
    | s -> Alcotest.failf "expected unhealed violation, got %a" Chaos.Runner.pp_stop s
  in
  let v =
    Chaos.Explore.
      {
        schedule;
        monitor = "unhealed";
        reason;
        proven;
        exec = r.Chaos.Runner.exec;
        steps = r.Chaos.Runner.steps;
        degraded_to = None;
      }
  in
  let m, _ = Chaos.Shrink.shrink ~monitors ~max_steps:200 sys v in
  List.iter
    (function
      | Chaos.Schedule.Partition { step; heal_at; _ } ->
        Alcotest.(check bool) "partition step within executed range" true
          (step <= m.Chaos.Explore.steps);
        Alcotest.(check bool)
          (Printf.sprintf "heal_at %d clamped within executed range + 1 (%d)" heal_at
             (m.Chaos.Explore.steps + 1))
          true
          (heal_at <= m.Chaos.Explore.steps + 1)
      | Chaos.Schedule.Crash { step; _ }
      | Chaos.Schedule.Silence { step; _ }
      | Chaos.Schedule.Drop { step; _ }
      | Chaos.Schedule.Duplicate { step; _ }
      | Chaos.Schedule.Delay { step; _ } ->
        Alcotest.(check bool) "fault step within executed range" true
          (step <= m.Chaos.Explore.steps))
    m.Chaos.Explore.schedule.Chaos.Schedule.faults

(* Delay-lag weakening: a minimized delay never keeps a lag a smaller lag
   would reproduce. The "saw-delay" monitor fails iff any delay was actually
   delivered, so every lag ≥ 1 reproduces and the shrinker must walk the
   lag all the way down to 1 (and no further: removing the fault kills the
   violation). *)
let test_shrink_weakens_delay () =
  let sys = tob () in
  let saw_delay =
    Chaos.Monitor.
      {
        name = "saw-delay";
        phase = End;
        relevant = (fun _ -> true);
        check =
          (fun _sys exec ->
            if
              List.exists
                (function
                  | Model.Event.Net { kind = Model.Event.Delay _; _ } -> true
                  | _ -> false)
                (Model.Exec.events exec)
            then Fail "a delay fault was delivered"
            else Pass);
      }
  in
  let monitors = [ saw_delay ] in
  (* tob buffers never hold two responses on their own, and a delay on a
     single-element buffer is vacuous — so a duplicate inflates the buffer
     first. The shrinker cannot remove either fault (dropping the dup makes
     the delay vacuous; dropping the delay kills the event), leaving the lag
     as the only weakenable dimension. *)
  let schedule =
    Chaos.Schedule.make
      [
        Chaos.Schedule.duplicate ~step:7 ~service:"tob" ~endpoint:0;
        Chaos.Schedule.delay ~step:8 ~service:"tob" ~endpoint:0 ~lag:3;
      ]
  in
  let r = Chaos.Runner.run ~monitors ~max_steps:4_000 ~schedule sys in
  match r.Chaos.Runner.stop with
  | Chaos.Runner.Violation { monitor = "saw-delay"; reason; proven } ->
    let v =
      Chaos.Explore.
        {
          schedule;
          monitor = "saw-delay";
          reason;
          proven;
          exec = r.Chaos.Runner.exec;
          steps = r.Chaos.Runner.steps;
        degraded_to = None;
        }
    in
    let m, _ = Chaos.Shrink.shrink ~monitors ~max_steps:4_000 sys v in
    Alcotest.(check int) "both faults are load-bearing" 2
      (Chaos.Schedule.n_faults m.Chaos.Explore.schedule);
    (match
       List.find_opt
         (function Chaos.Schedule.Delay _ -> true | _ -> false)
         m.Chaos.Explore.schedule.Chaos.Schedule.faults
     with
    | Some (Chaos.Schedule.Delay { lag; _ }) ->
      Alcotest.(check int) "lag weakened to the minimum" 1 lag
    | _ -> Alcotest.fail "expected the delay to survive shrinking")
  | s -> Alcotest.failf "expected the delay to be delivered, got %a" Chaos.Runner.pp_stop s

(* --- Composition: -j / dedup / static-prune / por with net kinds --- *)

let test_par_composition_net () =
  let sys = tob () in
  let cfg =
    { (config sys ~kinds:[ Chaos.Schedule.Drop_k; Chaos.Schedule.Partition_k ]
         ~max_faults:1)
      with
      Chaos.Explore.max_steps = 4_000;
    }
  in
  let seq = Chaos.Explore.run ~config:cfg sys in
  let sig_of (r : Chaos.Explore.report) =
    ( r.Chaos.Explore.examined,
      Option.map
        (fun (v : Chaos.Explore.violation) ->
          ( Chaos.Schedule.to_string v.Chaos.Explore.schedule,
            v.Chaos.Explore.monitor,
            v.Chaos.Explore.proven ))
        r.Chaos.Explore.violation )
  in
  List.iter
    (fun j ->
      let par =
        Chaos.Explore.run_par ~config:cfg ~domains:j ~dedup:true ~static_prune:true
          ~por:true sys
      in
      Alcotest.(check (pair int (option (triple string string bool))))
        (Printf.sprintf "-j%d verdict matches sequential" j)
        (sig_of seq) (sig_of par);
      (* The footprint-driven oracles accept mixed-kind schedules: some net
         placement is provably slidable here, so the reduction must engage
         (the verdict check above pins it to the sequential oracle). *)
      Alcotest.(check bool)
        (Printf.sprintf "-j%d por prunes net schedules" j)
        true
        (par.Chaos.Explore.por_prunes > 0))
    [ 1; 2 ];
  (* Contrast: the same flags on a crash-only clean space do prune — the
     gating is per kind, not a global off-switch. *)
  let crash_cfg =
    { (config (direct_f1 ()) ~kinds:[ Chaos.Schedule.Crash_k ] ~max_faults:1) with
      Chaos.Explore.max_steps = 2_000;
    }
  in
  let pruned =
    Chaos.Explore.run_par ~config:crash_cfg ~domains:1 ~dedup:false ~static_prune:true
      ~por:false (direct_f1 ())
  in
  Alcotest.(check bool) "crash-only schedules still statically pruned" true
    (pruned.Chaos.Explore.static_prunes > 0)

(* --- Wall-clock truncation --- *)

let test_wall_truncation () =
  let sys = direct_f1 () in
  let cfg = config sys ~kinds:[ Chaos.Schedule.Crash_k ] ~max_faults:1 in
  let expired () = true in
  let r = Chaos.Explore.run ~config:cfg ~stop:expired sys in
  Alcotest.(check bool) "sequential wall-truncated" true r.Chaos.Explore.wall_truncated;
  Alcotest.(check int) "nothing examined" 0 r.Chaos.Explore.examined;
  Alcotest.(check bool) "not budget-truncated" false r.Chaos.Explore.truncated;
  let rp = Chaos.Explore.run_par ~config:cfg ~domains:2 ~stop:expired sys in
  Alcotest.(check bool) "parallel wall-truncated" true rp.Chaos.Explore.wall_truncated;
  let report = Chaos.Driver.run ~stop:expired (Chaos.Driver.Systematic cfg) sys in
  Alcotest.(check bool) "driver wall-truncated" true report.Chaos.Driver.wall_truncated;
  Alcotest.(check bool) "report carries the explicit marker" true
    (contains (Format.asprintf "%a" Chaos.Driver.pp_report report) "truncated: wall-clock");
  (* A violation found before expiry wins over truncation. *)
  let deadline = ref 2 in
  let stop () =
    decr deadline;
    !deadline < 0
  in
  let tob_cfg = config (tob ()) ~kinds:[ Chaos.Schedule.Crash_k ] ~max_faults:1 in
  let r = Chaos.Explore.run ~config:tob_cfg ~stop sys in
  Alcotest.(check bool) "partial result reported" true
    (r.Chaos.Explore.wall_truncated || r.Chaos.Explore.violation <> None)

(* --- Seeded mode: mixed kinds, exact replay, legacy stream pinned --- *)

let qcheck_mixed_seed_replay =
  qtest "mixed-fault seed replay is deterministic" ~count:25
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let sys = tob () in
      let kinds = Chaos.Schedule.all_kinds in
      let r1, s1 = Chaos.Rand.run ~seed ~max_faults:2 ~kinds ~max_steps:2_000 sys in
      let r2, s2 = Chaos.Rand.run ~seed ~max_faults:2 ~kinds ~max_steps:2_000 sys in
      Chaos.Schedule.equal s1 s2
      && List.equal Model.Event.equal
           (Model.Exec.events r1.Chaos.Runner.exec)
           (Model.Exec.events r2.Chaos.Runner.exec))

let qcheck_net_kinds_preserve_legacy_stream =
  qtest "net kinds never shift the crash/silence draws" ~count:50
    QCheck2.Gen.(int_bound 10_000)
    (fun seed ->
      let sys = direct_f1 () in
      let base = Chaos.Rand.schedule ~seed ~max_faults:2 sys in
      let mixed =
        Chaos.Rand.schedule ~seed ~max_faults:2 ~kinds:Chaos.Schedule.all_kinds sys
      in
      let crash_or_silence f =
        match Chaos.Schedule.kind_of_fault f with
        | Chaos.Schedule.Crash_k | Chaos.Schedule.Silence_k -> true
        | _ -> false
      in
      List.equal
        (fun a b -> Chaos.Schedule.compare_fault a b = 0)
        base.Chaos.Schedule.faults
        (List.filter crash_or_silence mixed.Chaos.Schedule.faults))

let suite =
  ( "chaos-net",
    [
      Alcotest.test_case "net fault parse round-trips" `Quick test_parse_round_trip_net;
      Alcotest.test_case "net fault parse errors" `Quick test_parse_errors_net;
      Alcotest.test_case "fault-kind lists parse" `Quick test_parse_kinds;
      Alcotest.test_case "net fault validation" `Quick test_validate_net;
      Alcotest.test_case "net faults leave events" `Quick test_net_events_in_exec;
      Alcotest.test_case "crash-only differential vs pre-network oracle" `Slow
        test_crash_only_differential;
      Alcotest.test_case "tob falls to a minimized net fault" `Quick test_tob_mixed_witness;
      Alcotest.test_case "resilient protocols survive mixed kinds" `Slow
        test_resilient_survive_mixed;
      Alcotest.test_case "termination waived under drops" `Quick
        test_termination_waived_under_drops;
      Alcotest.test_case "partition recovery: waive unhealed, enforce healed" `Quick
        test_termination_partition_recovery;
      Alcotest.test_case "duplication is harmless on resilient direct" `Quick
        test_dup_harmless;
      Alcotest.test_case "fd-network ◇P monitors" `Quick test_fd_monitors;
      Alcotest.test_case "shrink clamps to the executed range" `Quick
        test_shrink_clamps_to_executed_range;
      Alcotest.test_case "shrink keeps delay lag minimal" `Quick test_shrink_weakens_delay;
      Alcotest.test_case "par/dedup/static-prune/por compose with net kinds" `Slow
        test_par_composition_net;
      Alcotest.test_case "wall-clock truncation" `Quick test_wall_truncation;
      qcheck_mixed_seed_replay;
      qcheck_net_kinds_preserve_legacy_stream;
    ] )
