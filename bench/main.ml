(* Benchmark harness: regenerates every experiment of the reproduction
   (E1-E11, the paper's tables/figures equivalent — see DESIGN.md §4 and
   EXPERIMENTS.md) and then times the core computations with Bechamel, one
   Test.make per experiment.

   Run with: dune exec bench/main.exe -- [-j N] [--json FILE] [--only SUBSTR]
   -j N sizes the parallel chaos kernels (default 4 domains);
   --json FILE additionally writes every kernel as machine-readable JSON
   (name, mean ms, derived ops/sec, plus the serve engine's simulated
   latency percentiles) — the CI artifact;
   --only SUBSTR times only the kernels whose name contains SUBSTR. *)

open Bechamel
open Toolkit

let argv_value flag =
  let rec find i =
    if i >= Array.length Sys.argv then None
    else if Sys.argv.(i) = flag && i + 1 < Array.length Sys.argv then
      Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let jobs = max 1 (Option.value (Option.bind (argv_value "-j") int_of_string_opt) ~default:4)
let json_out = argv_value "--json"
let only = argv_value "--only"

(* --- Part 1: the reproduction tables (paper-vs-measured) --- *)

let print_experiments () =
  Format.printf "=== Reproduction battery: paper vs measured ===@.@.";
  let rows = Experiments.all () in
  Format.printf "%a@." Experiments.pp_table rows;
  let ok = List.length (List.filter (fun r -> r.Experiments.ok) rows) in
  Format.printf "@.%d/%d experiment rows match the paper@.@." ok (List.length rows)

(* --- Part 2: timed kernels, one per experiment --- *)

let initialized sys inputs =
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i (Ioa.Value.int v), i + 1)
    (Model.Exec.init (Model.System.initial_state sys), 0)
    inputs
  |> fst

(* E1: canonical object operation cycle (invoke/perform/respond/decide). *)
let bench_canonical_ops =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  Test.make ~name:"E1/canonical-object-ops"
    (Staged.stage (fun () ->
       let exec = initialized sys [ 1; 0 ] in
       let sched = Model.Scheduler.round_robin sys in
       ignore
         (Model.Scheduler.run ~stop_when:Model.Properties.termination ~max_steps:1_000 sys
            exec sched)))

(* E2: staircase valence analysis. *)
let bench_bivalent_init =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  Test.make ~name:"E2/bivalent-init"
    (Staged.stage (fun () -> ignore (Engine.Initialization.find_bivalent sys)))

(* E3: G(C) exploration + hook search (Fig. 3). *)
let bench_graph_explore =
  let sys = Protocols.Direct.system ~n:3 ~f:0 in
  let start = Model.System.initialize sys (List.init 3 (fun i -> Ioa.Value.int (i mod 2))) in
  Test.make ~name:"E3/graph-explore-n3"
    (Staged.stage (fun () -> ignore (Engine.Graph.explore sys start)))

let bench_hook_fig3 =
  let sys = Protocols.Direct.system ~n:3 ~f:0 in
  let entry = Option.get (Engine.Initialization.find_bivalent sys) in
  let a = entry.Engine.Initialization.analysis in
  Test.make ~name:"E3/hook-fig3" (Staged.stage (fun () -> ignore (Engine.Hook.find a)))

let bench_hook_brute =
  let sys = Protocols.Direct.system ~n:3 ~f:0 in
  let entry = Option.get (Engine.Initialization.find_bivalent sys) in
  let a = entry.Engine.Initialization.analysis in
  Test.make ~name:"E3/hook-brute" (Staged.stage (fun () -> ignore (Engine.Hook.find_brute a)))

(* E4: commutation sweep over the explored graph. *)
let bench_commute =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let entry = Option.get (Engine.Initialization.find_bivalent sys) in
  let a = entry.Engine.Initialization.analysis in
  Test.make ~name:"E4/commute-sweep"
    (Staged.stage (fun () -> ignore (Engine.Commute.check_disjoint a)))

(* E5/E7/E10/E11: full refutations. *)
let bench_refute name sys failures =
  Test.make ~name
    (Staged.stage (fun () -> ignore (Engine.Counterexample.refute ~failures sys)))

let bench_thm2 = bench_refute "E5/thm2-witness" (Protocols.Direct.system ~n:2 ~f:0) 1
let bench_thm9 = bench_refute "E7/thm9-witness" (Protocols.Tob_direct.system ~n:2 ~f:0) 1
let bench_thm10 = bench_refute "E10/thm10-witness" (Protocols.Fd_allconnected.system ~n:2 ~f:0) 1
let bench_flp = bench_refute "E11/flp-witness" (Protocols.Register_wait.system ()) 1

(* E6: one adversarial k-set boosting run. *)
let bench_kset =
  let sys = Protocols.Kset_boost.system ~groups:2 ~group_size:2 in
  Test.make ~name:"E6/kset-boost-run"
    (Staged.stage (fun () ->
       let exec = initialized sys [ 0; 1; 2; 3 ] in
       let sched = Model.Scheduler.random ~seed:11 ~fail_prob:0.02 ~max_failures:3 sys in
       ignore
         (Model.Scheduler.run ~policy:Model.System.dummy_policy
            ~stop_when:Model.Properties.termination ~max_steps:30_000 sys exec sched)))

(* E8: failure-detector service churn. *)
let bench_fd_behaviour =
  let endpoints = [ 0; 1; 2 ] in
  let sys =
    Model.System.make
      ~processes:(List.map (fun pid -> Model.Process.idle ~pid) endpoints)
      ~services:
        [
          Model.Service.general ~coalesce:true ~id:"fd" ~endpoints ~f:2
            (Services.Perfect_fd.make ~endpoints);
        ]
  in
  Test.make ~name:"E8/fd-behaviour"
    (Staged.stage (fun () ->
       let exec = Model.Exec.init (Model.System.initial_state sys) in
       let sched = Model.Scheduler.round_robin ~quiesce:false ~faults:[ (50, 1) ] sys in
       ignore (Model.Scheduler.run ~max_steps:500 sys exec sched)))

(* E9: one §6.3 FD-boosting consensus run with failures. *)
let bench_fd_boost =
  let sys = Protocols.Fd_boost.system ~n:3 in
  Test.make ~name:"E9/fd-boost-run"
    (Staged.stage (fun () ->
       let exec = initialized sys [ 0; 1; 2 ] in
       let sched = Model.Scheduler.round_robin ~faults:[ (0, 0); (30, 1) ] sys in
       ignore
         (Model.Scheduler.run ~policy:Model.System.dummy_policy
            ~stop_when:Model.Properties.termination ~max_steps:60_000 sys exec sched)))

(* E7: TOB throughput (messages ordered and delivered per schedule). *)
let bench_tob =
  let endpoints = [ 0; 1; 2 ] in
  let sys =
    let tob =
      Model.Service.oblivious ~id:"tob" ~endpoints ~f:2
        (Services.Tob.make ~endpoints ~alphabet:[ Ioa.Value.int 0 ])
    in
    Model.System.make
      ~processes:
        (List.map
           (fun pid ->
             Protocols.Proto_util.(
               Model.Process.make ~pid ~start:(st "have" [ Ioa.Value.int pid ])
                 ~step:(fun s ->
                   if is "have" s then
                     Model.Process.Invoke
                       {
                         service = "tob";
                         op = Services.Tob.bcast (field s 0);
                         next = st "sent" [];
                       }
                   else Model.Process.Internal s)
                 ()))
           endpoints)
      ~services:[ tob ]
  in
  Test.make ~name:"E7/tob-order"
    (Staged.stage (fun () ->
       let exec = Model.Exec.init (Model.System.initial_state sys) in
       let sched = Model.Scheduler.round_robin sys in
       ignore (Model.Scheduler.run ~max_steps:200 sys exec sched)))

(* Ablation: SCC-condensation valence vs the naive per-vertex oracle. *)
let valence_benches =
  let sys = Protocols.Direct.system ~n:3 ~f:0 in
  let start = Model.System.initialize sys (List.init 3 (fun i -> Ioa.Value.int (i mod 2))) in
  let g = Engine.Graph.explore sys start in
  [
    Test.make ~name:"ablation/valence-scc"
      (Staged.stage (fun () -> ignore (Engine.Valence.analyze g)));
    Test.make ~name:"ablation/valence-naive"
      (Staged.stage (fun () -> ignore (Engine.Valence_naive.verdicts g)));
  ]

(* Chaos explorer: systematic single-crash sweep with full monitors, the
   hot loop of `boost chaos`. Same bounded configuration as @chaos-smoke
   so the timing tracks what tier-1 actually runs. *)
let bench_chaos sys name =
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      budget = 64;
      max_steps = 4_000;
    }
  in
  Test.make ~name (Staged.stage (fun () -> ignore (Chaos.Explore.run ~config sys)))

let bench_chaos_direct =
  bench_chaos (Protocols.Direct.system ~n:2 ~f:1) "chaos/explore-direct"

let bench_chaos_tob =
  bench_chaos (Protocols.Tob_direct.system ~n:2 ~f:0) "chaos/explore-tob"

(* Parallel chaos explorer: the full enumeration space at twice the seed
   horizon and up to two crashes — the workload where the sequential
   1,024-schedule budget truncates — spread over [jobs] domains with
   fingerprint dedup. Compare against chaos/explore-* above for the
   speedup table in EXPERIMENTS.md. *)
let par_chaos_config sys =
  let d = Chaos.Explore.default_config sys in
  let cfg =
    { d with Chaos.Explore.max_faults = 2; horizon = 2 * d.Chaos.Explore.horizon;
      max_steps = 4_000 }
  in
  { cfg with
    Chaos.Explore.budget =
      Chaos.Explore.space_size sys cfg }

let bench_chaos_par sys name =
  let config = par_chaos_config sys in
  Test.make ~name
    (Staged.stage (fun () ->
       ignore (Chaos.Explore.run_par ~config ~domains:jobs ~dedup:true sys)))

let bench_chaos_par_direct =
  bench_chaos_par (Protocols.Direct.system ~n:2 ~f:1)
    (Printf.sprintf "chaos/explore-par-direct-j%d" jobs)

let bench_chaos_par_tob =
  (* f=1 (the resilient side): f=0 falls to the second candidate, which
     benchmarks nothing — the sweep kernel needs the clean full space. *)
  bench_chaos_par (Protocols.Tob_direct.system ~n:2 ~f:1)
    (Printf.sprintf "chaos/explore-par-tob-j%d" jobs)

let bench_chaos_par_tob_pruned =
  (* The same sweep with the abstract-interpretation infeasibility oracle:
     schedules whose crashes land after the certified quiescence step are
     skipped without execution. Compare against explore-par-tob-j* for the
     prune-rate/wall-time row in EXPERIMENTS.md. *)
  let sys = Protocols.Tob_direct.system ~n:2 ~f:1 in
  let config = par_chaos_config sys in
  Test.make ~name:(Printf.sprintf "chaos/explore-par-tob-pruned-j%d" jobs)
    (Staged.stage (fun () ->
       ignore (Chaos.Explore.run_par ~config ~domains:jobs ~dedup:true ~static_prune:true sys)))

(* Partial-order reduction over the same single-crash sweep as
   chaos/explore-*: schedules whose crash placement is interference-
   equivalent to a lower-ranked one are skipped, verdict inherited.
   Compare against chaos/explore-* for the POR row in EXPERIMENTS.md.
   tob at f=1 (the crash-tolerant side), where the service's oblivious
   class makes most task slots crash-independent. *)
let bench_chaos_por sys name =
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      budget = 64;
      max_steps = 4_000;
    }
  in
  Test.make ~name
    (Staged.stage (fun () ->
       ignore (Chaos.Explore.run_par ~config ~dedup:false ~por:true sys)))

let bench_chaos_por_direct =
  bench_chaos_por (Protocols.Direct.system ~n:2 ~f:1) "chaos/explore-por-direct"

let bench_chaos_por_tob =
  bench_chaos_por (Protocols.Tob_direct.system ~n:2 ~f:1) "chaos/explore-por-tob"

let bench_chaos_por_par_tob =
  (* POR stacked on the parallel two-crash sweep with dedup, the fully
     composed configuration. Compare against explore-par-tob-j*. *)
  let sys = Protocols.Tob_direct.system ~n:2 ~f:1 in
  let config = par_chaos_config sys in
  Test.make ~name:(Printf.sprintf "chaos/explore-por-tob-j%d" jobs)
    (Staged.stage (fun () ->
       ignore (Chaos.Explore.run_par ~config ~domains:jobs ~dedup:true ~por:true sys)))

(* Network adversary: the mixed omission/partition sweep of ISSUE 5's
   tentpole. Same bounded budget as chaos/explore-* so the rows compare
   directly — the delta is the cost of compiling and delivering buffer
   mutations and partition spans instead of pure crash schedules. *)
let net_kinds =
  Chaos.Schedule.[ Crash_k; Drop_k; Dup_k; Delay_k; Partition_k ]

let bench_chaos_net sys name =
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      kinds = net_kinds;
      budget = 64;
      max_steps = 4_000;
    }
  in
  Test.make ~name (Staged.stage (fun () -> ignore (Chaos.Explore.run ~config sys)))

let bench_chaos_net_tob =
  bench_chaos_net (Protocols.Tob_direct.system ~n:2 ~f:0) "chaos/explore-net-tob"

let bench_chaos_net_fdnet =
  let sys = Protocols.Fd_network.system ~n:2 in
  let output = Protocols.Fd_network.output_of in
  let monitors =
    Chaos.Monitor.safety ()
    @ [ Chaos.Monitor.fd_completeness ~output (); Chaos.Monitor.fd_accuracy ~output () ]
  in
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      kinds = net_kinds;
      budget = 64;
      max_steps = 4_000;
    }
  in
  Test.make ~name:"chaos/explore-net-fdnet"
    (Staged.stage (fun () -> ignore (Chaos.Explore.run ~monitors ~config sys)))

(* The same mixed sweep over the full single-fault space on [jobs] domains,
   with neither static oracle engaged — this row isolates the raw parallel
   speedup on the widened space (compare explore-net-por-*-j* below for
   what the footprint oracles buy on top). *)
let bench_chaos_net_par sys name =
  let d = Chaos.Explore.default_config sys in
  let cfg =
    { d with Chaos.Explore.max_faults = 1; kinds = net_kinds; max_steps = 4_000 }
  in
  let config = { cfg with Chaos.Explore.budget = Chaos.Explore.space_size sys cfg } in
  Test.make ~name
    (Staged.stage (fun () ->
       ignore (Chaos.Explore.run_par ~config ~domains:jobs ~dedup:true sys)))

let bench_chaos_net_par_tob =
  bench_chaos_net_par (Protocols.Tob_direct.system ~n:2 ~f:1)
    (Printf.sprintf "chaos/explore-net-tob-j%d" jobs)

let bench_chaos_net_par_fdnet =
  bench_chaos_net_par (Protocols.Fd_network.system ~n:2)
    (Printf.sprintf "chaos/explore-net-fdnet-j%d" jobs)

(* Net-fault partial-order reduction (ISSUE 7): the mixed single-fault
   sweep with both footprint oracles on — omission deliveries slide past
   statically independent task slots and post-quiescence placements are
   skipped on the empty-buffer certificate. Compare against the matching
   explore-net-* rows for the prune-rate/wall-time table in
   EXPERIMENTS.md. *)
let net_por_config sys =
  let d = Chaos.Explore.default_config sys in
  let cfg =
    { d with Chaos.Explore.max_faults = 1; kinds = net_kinds; max_steps = 4_000 }
  in
  { cfg with Chaos.Explore.budget = Chaos.Explore.space_size sys cfg }

let bench_chaos_net_por ~domains sys name =
  let config = net_por_config sys in
  Test.make ~name
    (Staged.stage (fun () ->
       ignore
         (Chaos.Explore.run_par ~config ~domains ~dedup:false ~static_prune:true
            ~por:true sys)))

let bench_chaos_net_por_tob =
  bench_chaos_net_por ~domains:1
    (Protocols.Tob_direct.system ~n:2 ~f:1)
    "chaos/explore-net-por-tob"

let bench_chaos_net_por_rv =
  bench_chaos_net_por ~domains:1
    (Protocols.Register_vote.system ())
    "chaos/explore-net-por-register-vote"

let bench_chaos_net_por_par_tob =
  bench_chaos_net_por ~domains:jobs
    (Protocols.Tob_direct.system ~n:2 ~f:1)
    (Printf.sprintf "chaos/explore-net-por-tob-j%d" jobs)

let bench_chaos_net_por_par_rv =
  bench_chaos_net_por ~domains:jobs
    (Protocols.Register_vote.system ())
    (Printf.sprintf "chaos/explore-net-por-register-vote-j%d" jobs)

(* Degrade-aware monitoring (ISSUE 6): the same mixed sweep as
   chaos/explore-net-tob with the graceful-degradation monitors and the
   per-violation live-vector annotation. The damage summary is folded once
   per end-of-run check, so the delta against chaos/explore-net-tob is the
   monitoring overhead budgeted at <5%. *)
let bench_chaos_degrade_tob =
  let sys = Protocols.Tob_direct.system ~n:2 ~f:0 in
  let config =
    {
      (Chaos.Explore.default_config sys) with
      Chaos.Explore.max_faults = 1;
      kinds = net_kinds;
      budget = 64;
      max_steps = 4_000;
      degrade = true;
    }
  in
  let monitors = Chaos.Monitor.defaults ~degrade:true () in
  Test.make ~name:"chaos/monitor-degrade-tob"
    (Staged.stage (fun () -> ignore (Chaos.Explore.run ~monitors ~config sys)))

(* The abstract-reachability fixpoint itself: the one-shot cost `boost lint`
   pays per protocol, and the amortized cost of the pruning oracle. *)
let bench_fixpoint sys name =
  Test.make ~name (Staged.stage (fun () -> ignore (Analysis.Reach.analyze sys)))

let bench_fixpoint_direct =
  bench_fixpoint (Protocols.Direct.system ~n:2 ~f:1) "analysis/fixpoint-direct"

let bench_fixpoint_tob =
  bench_fixpoint (Protocols.Tob_direct.system ~n:2 ~f:1) "analysis/fixpoint-tob"

(* The symbolic (n, f) fixpoint against the concrete powerset one, on the
   largest grid point the certificates cover: direct at n=4 under two
   faults solves 6 signature unknowns where the full system solves 11
   failed-set unknowns. The -n4f2 row is the like-for-like comparator. *)
let bench_param_fixpoint_direct =
  let sys = Protocols.Direct.system ~n:4 ~f:2 in
  let classes = Analysis.Param.classes sys in
  Test.make ~name:"analysis/param-fixpoint-direct"
    (Staged.stage (fun () -> ignore (Analysis.Reach.analyze_sym ~max_faults:2 ~classes sys)))

let bench_fixpoint_direct_n4f2 =
  let sys = Protocols.Direct.system ~n:4 ~f:2 in
  Test.make ~name:"analysis/fixpoint-direct-n4f2"
    (Staged.stage (fun () -> ignore (Analysis.Reach.analyze ~max_faults:2 sys)))

let bench_param_fixpoint_tob =
  let sys = Protocols.Tob_direct.system ~n:3 ~f:1 in
  let classes = Analysis.Param.classes sys in
  Test.make ~name:"analysis/param-fixpoint-tob"
    (Staged.stage (fun () -> ignore (Analysis.Reach.analyze_sym ~max_faults:1 ~classes sys)))

(* Substrate micro-benchmarks. *)
let bench_state_hash =
  let sys = Protocols.Fd_boost.system ~n:4 in
  let s = Model.System.initialize sys (List.init 4 Ioa.Value.int) in
  Test.make ~name:"micro/state-hash" (Staged.stage (fun () -> ignore (Model.State.hash s)))

let bench_transition =
  let sys = Protocols.Direct.system ~n:3 ~f:2 in
  let s = Model.System.initialize sys (List.init 3 Ioa.Value.int) in
  Test.make ~name:"micro/transition"
    (Staged.stage (fun () -> ignore (Model.System.transition sys s (Model.Task.Proc 0))))

(* The incremental-analysis cache: whole-fleet lint cold vs warm, and the
   cached chaos verdict sweep. The warm kernels replay from a cache
   populated once at startup; [print_cache_rates] re-runs each of them once
   instrumented after the timing table, so the hit rates land next to the
   wall times in EXPERIMENTS.md. *)
let bench_cache_dir =
  let f = Filename.temp_file "boost-bench-cache" "" in
  Sys.remove f;
  f

let lint_fleet ?cache () =
  List.iter
    (fun e ->
      ignore
        (Protocols.Registry.lint ?cache ~max_faults:1 e Protocols.Registry.default_params))
    Protocols.Registry.all

let bench_lint_all_cold =
  Test.make ~name:"analysis/lint-all-cold" (Staged.stage (fun () -> lint_fleet ()))

let bench_lint_all_warm =
  lint_fleet ~cache:(Analysis.Cache.open_ ~dir:bench_cache_dir) ();
  (* Each run opens a fresh handle on the warm directory — the hashing and
     the envelope reads are part of what a warm `boost lint --all` costs. *)
  Test.make ~name:"analysis/lint-all-warm"
    (Staged.stage (fun () ->
       lint_fleet ~cache:(Analysis.Cache.open_ ~dir:bench_cache_dir) ()))

(* Same sweep as chaos/explore-tob, replayed from the verdict cache: the
   warm run re-executes only the stored winning/minimized schedules. *)
let tob_cached_sys = Protocols.Tob_direct.system ~n:2 ~f:0

let tob_cached_config =
  {
    (Chaos.Explore.default_config tob_cached_sys) with
    Chaos.Explore.max_faults = 1;
    budget = 64;
    max_steps = 4_000;
  }

let run_tob_cached () =
  let cache =
    Analysis.Cache.open_ ~dir:bench_cache_dir, Analysis.Structhash.system tob_cached_sys
  in
  Chaos.Driver.run ~cache (Chaos.Driver.Systematic tob_cached_config) tob_cached_sys

let bench_chaos_tob_cached =
  ignore (run_tob_cached ());
  Test.make ~name:"chaos/explore-tob-cached"
    (Staged.stage (fun () -> ignore (run_tob_cached ())))

(* The parameterized (n, f) sweep: certify direct and tob over the default
   3×3 window. Cold pays 9 concrete lints per protocol; warm replays the
   whole window from one pcert entry per protocol (hit rates printed by
   [print_cache_rates]). *)
let certify_grid ?cache () =
  List.iter
    (fun name ->
      ignore (Protocols.Registry.certify ?cache (Option.get (Protocols.Registry.find name))))
    [ "direct"; "tob" ]

let bench_sweep_grid_cold =
  Test.make ~name:"analysis/sweep-grid-cold" (Staged.stage (fun () -> certify_grid ()))

let bench_sweep_grid_warm =
  certify_grid ~cache:(Analysis.Cache.open_ ~dir:bench_cache_dir) ();
  Test.make ~name:"analysis/sweep-grid-warm"
    (Staged.stage (fun () ->
       certify_grid ~cache:(Analysis.Cache.open_ ~dir:bench_cache_dir) ()))

let print_cache_rates () =
  let rate (c : Analysis.Cache.t) =
    let s = c.Analysis.Cache.stats in
    let total = s.Analysis.Cache.hits + s.Analysis.Cache.misses in
    if total = 0 then 0.
    else 100. *. float_of_int s.Analysis.Cache.hits /. float_of_int total
  in
  let c_lint = Analysis.Cache.open_ ~dir:bench_cache_dir in
  lint_fleet ~cache:c_lint ();
  let c_chaos = Analysis.Cache.open_ ~dir:bench_cache_dir in
  ignore
    (Chaos.Driver.run
       ~cache:(c_chaos, Analysis.Structhash.system tob_cached_sys)
       (Chaos.Driver.Systematic tob_cached_config) tob_cached_sys);
  let c_sweep = Analysis.Cache.open_ ~dir:bench_cache_dir in
  certify_grid ~cache:c_sweep ();
  Format.printf "@.=== Cache hit rates (warm kernels) ===@.@.";
  Format.printf "%-36s %5.1f%%  %a@." "analysis/lint-all-warm" (rate c_lint)
    Analysis.Cache.pp_stats c_lint;
  Format.printf "%-36s %5.1f%%  %a@." "chaos/explore-tob-cached" (rate c_chaos)
    Analysis.Cache.pp_stats c_chaos;
  Format.printf "%-36s %5.1f%%  %a@." "analysis/sweep-grid-warm" (rate c_sweep)
    Analysis.Cache.pp_stats c_sweep

(* The multi-shot RSM workload engine (ISSUE 10): one clean serve run and one
   with the mixed crash+partition timeline of @workload-smoke. The derived
   ops/sec in the JSON artifact divides the run's completed operations by the
   kernel's mean wall time; the simulated latency percentiles come from the
   deterministic report of one untimed run (identical every time by the
   seeded-replay contract). *)
let serve_schedule spec =
  match Chaos.Schedule.parse spec with
  | Ok s -> Some s
  | Error e -> invalid_arg e

let serve_cfg ~faults =
  {
    (Workload.Engine.default_config ~proto:"direct" ()) with
    Workload.Engine.clients = 8;
    ops = 400;
    rate = 8;
    batch = 8;
    pipeline = 2;
    rejoin_after = 12;
    seed = 7;
    schedule = (if faults then serve_schedule "crash@6:1,partition@20:0|1.2:32" else None);
  }

let serve_report = Workload.Engine.run (serve_cfg ~faults:true)

let bench_serve_clean =
  let cfg = serve_cfg ~faults:false in
  Test.make ~name:"serve/direct-clean"
    (Staged.stage (fun () -> ignore (Workload.Engine.run cfg)))

let bench_serve_faults =
  let cfg = serve_cfg ~faults:true in
  Test.make ~name:"serve/direct-mixed-faults"
    (Staged.stage (fun () -> ignore (Workload.Engine.run cfg)))

let tests =
  ([
      bench_canonical_ops;
      bench_bivalent_init;
      bench_graph_explore;
      bench_hook_fig3;
      bench_hook_brute;
      bench_commute;
      bench_thm2;
      bench_thm9;
      bench_thm10;
      bench_flp;
      bench_kset;
      bench_fd_behaviour;
      bench_fd_boost;
      bench_tob;
      bench_chaos_direct;
      bench_chaos_tob;
      bench_chaos_par_direct;
      bench_chaos_par_tob;
      bench_chaos_par_tob_pruned;
      bench_chaos_por_direct;
      bench_chaos_por_tob;
      bench_chaos_por_par_tob;
      bench_chaos_net_tob;
      bench_chaos_net_fdnet;
      bench_chaos_net_par_tob;
      bench_chaos_net_par_fdnet;
      bench_chaos_net_por_tob;
      bench_chaos_net_por_rv;
      bench_chaos_net_por_par_tob;
      bench_chaos_net_por_par_rv;
      bench_chaos_degrade_tob;
      bench_fixpoint_direct;
      bench_fixpoint_tob;
      bench_param_fixpoint_direct;
      bench_fixpoint_direct_n4f2;
      bench_param_fixpoint_tob;
      bench_lint_all_cold;
      bench_lint_all_warm;
      bench_chaos_tob_cached;
      bench_sweep_grid_cold;
      bench_sweep_grid_warm;
      bench_state_hash;
      bench_transition;
      bench_serve_clean;
      bench_serve_faults;
    ]
    @ valence_benches)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let tests =
  match only with
  | None -> tests
  | Some substr -> (
    match List.filter (fun t -> contains (Test.name t) substr) tests with
    | [] ->
      Format.eprintf "--only %s matches no kernel@." substr;
      exit 3
    | kept -> kept)

let tests = Test.make_grouped ~name:"boosting" tests

let run_benchmarks () =
  Format.printf "=== Timings (Bechamel, monotonic clock) ===@.@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let estimate =
          match Analyze.OLS.estimates result with Some [ e ] -> e | _ -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Format.printf "%-36s  (no estimate)@." name
      else if ns > 1e6 then Format.printf "%-36s %10.3f ms/run@." name (ns /. 1e6)
      else Format.printf "%-36s %10.1f ns/run@." name ns)
    rows;
  rows

(* The machine-readable artifact: every kernel with its mean wall time and a
   derived throughput — serve kernels divide the run's completed operations
   by the mean (true ops/sec of the engine), everything else reports
   runs/sec. The serve engine's deterministic latency percentiles ride
   along. *)
let write_json file rows =
  let oc = open_out file in
  let ops_of name ns =
    if contains name "serve/" then float_of_int serve_report.Workload.Report.completed /. (ns /. 1e9)
    else 1e9 /. ns
  in
  let p50, p95, p99, pmax = Workload.Report.latency_summary serve_report in
  let rows = List.filter (fun (_, ns) -> not (Float.is_nan ns)) rows in
  Printf.fprintf oc "{\n  \"benchmarks\": [\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    {\"name\": %S, \"mean_ms\": %.6f, \"ops_per_sec\": %.1f}%s\n"
        name (ns /. 1e6) (ops_of name ns)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"serve\": {\"proto\": %S, \"completed_ops\": %d, \"ticks\": %d, \
     \"sim_ops_per_tick\": %.3f, \"latency_ticks\": {\"p50\": %d, \"p95\": %d, \"p99\": \
     %d, \"max\": %d}}\n"
    serve_report.Workload.Report.proto serve_report.Workload.Report.completed
    serve_report.Workload.Report.ticks
    (float_of_int serve_report.Workload.Report.completed
    /. float_of_int (max 1 serve_report.Workload.Report.ticks))
    p50 p95 p99 pmax;
  Printf.fprintf oc "}\n";
  close_out oc;
  Format.eprintf "benchmark JSON written to %s@." file

let () =
  print_experiments ();
  let rows = run_benchmarks () in
  Option.iter (fun file -> write_json file rows) json_out;
  print_cache_rates ()
