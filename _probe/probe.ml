let () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let blocks = [ [ 1 ] ] in
  let r =
    Chaos.Runner.run
      ~monitors:[]
      ~max_steps:200
      ~schedule:(Chaos.Schedule.make [ Chaos.Schedule.partition ~step:0 ~blocks ~heal_at:3 ])
      sys
  in
  let d = Chaos.Degrade.of_exec r.Chaos.Runner.exec in
  Printf.printf "of_exec partition_active after in-run heal: %b\n"
    (Chaos.Degrade.partition_active d);
  let d' =
    List.fold_left Chaos.Degrade.absorb Chaos.Degrade.empty
      (Model.Exec.events r.Chaos.Runner.exec)
  in
  Printf.printf "forward-fold partition_active:              %b\n"
    (Chaos.Degrade.partition_active d')
