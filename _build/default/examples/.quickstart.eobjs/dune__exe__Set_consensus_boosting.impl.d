examples/set_consensus_boosting.ml: Array Format Fun Ioa List Model Protocols Spec Value
