examples/fd_consensus.ml: Array Format Fun Ioa List Model Protocols Spec Value
