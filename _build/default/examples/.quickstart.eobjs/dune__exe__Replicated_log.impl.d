examples/replicated_log.ml: Array Format Fun Ioa List Model Printf Protocols Services Spec String Value
