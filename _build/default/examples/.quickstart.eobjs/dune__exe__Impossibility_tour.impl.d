examples/impossibility_tour.ml: Engine Format List Model Protocols String
