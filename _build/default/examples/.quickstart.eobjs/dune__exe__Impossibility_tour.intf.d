examples/impossibility_tour.mli:
