examples/universal_object.ml: Array Format Fun Int Ioa List Model Protocols Spec String Value
