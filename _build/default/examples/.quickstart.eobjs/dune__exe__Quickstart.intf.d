examples/quickstart.mli:
