examples/set_consensus_boosting.mli:
