examples/universal_object.mli:
