examples/fd_consensus.mli:
