examples/quickstart.ml: Array Format Ioa List Model Protocols Spec Value
