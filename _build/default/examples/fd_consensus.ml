(* The §6.3 positive result as a demo: consensus among four processes that
   tolerates three failures, built only from 1-resilient 2-process perfect
   failure detectors and reliable registers — boosting that Theorem 10 rules
   out for all-connected detectors but that the pairwise connection pattern
   makes possible.

   The rotating-coordinator protocol runs while the adversary crashes
   coordinators at awkward moments; the pairwise detectors (each wait-free
   for its pair) keep informing survivors, every phase unblocks, and all
   survivors decide the same value.

   Run with: dune exec examples/fd_consensus.exe *)

open Ioa

let () =
  let n = 4 in
  let sys = Protocols.Fd_boost.system ~n in
  Format.printf "system: %d processes, %d pairwise perfect FDs, %d phase registers@." n
    (n * (n - 1) / 2) n;

  let exec0 =
    List.fold_left
      (fun (e, i) v -> Model.Exec.append_init sys e i (Value.int v), i + 1)
      (Model.Exec.init (Model.System.initial_state sys), 0)
      (List.init n Fun.id)
    |> fst
  in

  (* Kill coordinator 0 before it writes and coordinator 1 somewhere in the
     middle; later also 3 — three failures against 1-resilient services. *)
  let faults = [ 0, 0; 60, 1; 120, 3 ] in
  let sched = Model.Scheduler.round_robin ~faults sys in
  let exec, outcome =
    Model.Scheduler.run ~policy:Model.System.dummy_policy
      ~stop_when:Model.Properties.termination ~max_steps:100_000 sys exec0 sched
  in
  let final = Model.Exec.last_state exec in

  Format.printf "outcome: %a after %d steps@." Model.Scheduler.pp_outcome outcome
    (Model.Exec.length exec);
  Format.printf "failed: %a@.@." Spec.Iset.pp final.Model.State.failed;

  List.iteri
    (fun pid d ->
      let suspected = Protocols.Fd_boost.suspected_of final ~pid in
      match d with
      | Some v ->
        Format.printf "process %d decided %a (suspects %a)@." pid Value.pp v Spec.Iset.pp
          suspected
      | None -> Format.printf "process %d crashed undecided@." pid)
    (Array.to_list final.Model.State.decisions);

  Format.printf "@.report: %a@." Model.Properties.pp_report (Model.Properties.check final);
  Format.printf
    "resilience boosted: each detector is 1-resilient, the system tolerated %d failures.@."
    (Spec.Iset.cardinal final.Model.State.failed)
