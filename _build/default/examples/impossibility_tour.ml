(* A guided tour of the Theorem 2 machinery on the textbook instance: two
   processes coordinating through a 0-resilient consensus object, claiming to
   solve 1-resilient consensus.

   The tour shows each stage of the paper's proof running as an algorithm:
   the Lemma 4 staircase, the execution graph G(C) and its exact valences,
   the Fig. 3 hook search, the Lemma 8 similarity analysis at the hook, and
   finally the Lemma 7 silencing construction producing a provably infinite
   fair execution in which the survivor never decides.

   Run with: dune exec examples/impossibility_tour.exe *)

let () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in

  Format.printf "== Stage 1: Lemma 4 staircase ==@.";
  let entries = Engine.Initialization.staircase sys in
  List.iter (fun e -> Format.printf "  %a@." Engine.Initialization.pp_entry e) entries;

  let entry =
    match Engine.Initialization.find_bivalent sys with
    | Some e -> e
    | None -> failwith "no bivalent initialization"
  in
  let analysis = entry.Engine.Initialization.analysis in
  let g = Engine.Valence.graph analysis in
  Format.printf "@.== Stage 2: G(C) of the bivalent initialization ==@.";
  Format.printf "  %d reachable states (complete: %b)@." (Engine.Graph.size g)
    (Engine.Graph.complete g);
  List.iter
    (fun v ->
      Format.printf "  %a states: %d@." Engine.Valence.pp_verdict v
        (Engine.Valence.count analysis v))
    Engine.Valence.[ Zero_valent; One_valent; Bivalent ];

  Format.printf "@.== Stage 3: Fig. 3 hook search ==@.";
  let hook =
    match Engine.Hook.find analysis with
    | Engine.Hook.Hook h -> h
    | r -> failwith (Format.asprintf "no hook: %a" Engine.Hook.pp_result r)
  in
  Format.printf "  %a@." Engine.Hook.pp hook;
  Format.printf "  e  = %a (order the object's endpoint-0 invocation first)@."
    Model.Task.pp hook.Engine.Hook.e;
  Format.printf "  e' = %a (or the endpoint-1 invocation first)@." Model.Task.pp
    hook.Engine.Hook.e';

  Format.printf "@.== Stage 4: Lemma 8 similarity at the hook ==@.";
  let s0 = Engine.Graph.state g hook.Engine.Hook.alpha0 in
  let s1 = Engine.Graph.state g hook.Engine.Hook.alpha1 in
  Format.printf "  j-witnesses: {%s}@."
    (String.concat "," (List.map string_of_int (Engine.Similarity.j_witnesses sys s0 s1)));
  Format.printf "  k-witnesses: {%s} — the endpoint states differ only inside the object@."
    (String.concat "," (List.map string_of_int (Engine.Similarity.k_witnesses sys s0 s1)));

  Format.printf "@.== Stage 5: the full refutation ==@.";
  let report = Engine.Counterexample.refute ~failures:1 sys in
  Format.printf "%a@." Engine.Counterexample.pp_report report;

  (match report.Engine.Counterexample.outcome with
  | Engine.Counterexample.Refuted
      (Engine.Counterexample.Non_termination { exec; failed; proven }) ->
    Format.printf "@.The witness execution (%s):@.  @[<v>%a@]@."
      (if proven then "pumpable forever" else "bounded")
      Model.Exec.pp exec;
    Format.printf
      "@.After failing process%s %s, the 0-resilient object's dummy actions stay enabled@."
      (if List.length failed > 1 then "es" else "")
      (String.concat ", " (List.map string_of_int failed));
    Format.printf
      "forever, so fairness is satisfied while the survivor waits on it for eternity:@.";
    Format.printf "boosting a 0-resilient object to 1-resilient consensus is impossible.@."
  | _ -> ());

  Format.printf "@.== Contrast: the same claim against a wait-free object ==@.";
  let report = Engine.Counterexample.refute ~failures:1 (Protocols.Direct.system ~n:2 ~f:1) in
  Format.printf "%a@." Engine.Counterexample.pp_report report
