(* The §4 positive result as a demo: wait-free 2-set consensus for six
   processes built from two wait-free 3-process consensus services — the
   resilience boost (from 2 to 5 tolerated failures) that Theorem 2 forbids
   for consensus but that IS possible for 2-set consensus.

   The adversary kills five of the six processes mid-run; the survivor still
   decides, and across all processes at most two distinct values are ever
   chosen.

   Run with: dune exec examples/set_consensus_boosting.exe *)

open Ioa

let () =
  let groups = 2 and group_size = 3 in
  let n = groups * group_size in
  let sys = Protocols.Kset_boost.system ~groups ~group_size in

  (* Distinct inputs so the 2-value bound is visible. *)
  let exec0 =
    List.fold_left
      (fun (e, i) v -> Model.Exec.append_init sys e i (Value.int v), i + 1)
      (Model.Exec.init (Model.System.initial_state sys), 0)
      (List.init n Fun.id)
    |> fst
  in

  (* Kill processes 0,1,2,4,5 at staggered (early) points: 5 = n-1 failures. *)
  let faults = [ 1, 0; 2, 1; 3, 2; 4, 4; 5, 5 ] in
  let sched = Model.Scheduler.round_robin ~faults sys in
  let exec, outcome =
    Model.Scheduler.run ~policy:Model.System.dummy_policy
      ~stop_when:Model.Properties.termination ~max_steps:20_000 sys exec0 sched
  in
  let final = Model.Exec.last_state exec in

  Format.printf "outcome: %a@." Model.Scheduler.pp_outcome outcome;
  Format.printf "failed: %a@." Spec.Iset.pp final.Model.State.failed;
  List.iteri
    (fun pid d ->
      let group = Protocols.Kset_boost.group_of ~group_size pid in
      match d with
      | Some v -> Format.printf "process %d (group %d) decided %a@." pid group Value.pp v
      | None -> Format.printf "process %d (group %d) crashed before deciding@." pid group)
    (Array.to_list final.Model.State.decisions);

  let report = Model.Properties.check ~k:groups final in
  Format.printf "@.2-set consensus report: %a@." Model.Properties.pp_report report;
  Format.printf
    "resilience boosted: services tolerate %d failures each, the system tolerated %d.@."
    (group_size - 1)
    (Spec.Iset.cardinal final.Model.State.failed)
