(* The universal construction (§1's motivation for consensus): a wait-free
   linearizable shared counter assembled from consensus slots and registers.

   Each process publishes one increment, then drives per-slot consensus to
   agree on the global order of operations; every replica applies the same
   log. The demo kills a process mid-run: the survivors' responses are still
   distinct pre-values — the counter linearizes.

   Run with: dune exec examples/universal_object.exe *)

open Ioa

let () =
  let n = 4 in
  let counter = Spec.Seq_counter.make () in
  let sys =
    Protocols.Universal.system ~obj:counter
      ~ops:(List.init n (fun _ -> Spec.Seq_counter.increment))
  in
  Format.printf "universal counter: %d processes, %d op registers, %d consensus slots@.@." n
    n n;

  let exec0 =
    List.fold_left
      (fun (e, i) v -> Model.Exec.append_init sys e i (Value.int v), i + 1)
      (Model.Exec.init (Model.System.initial_state sys), 0)
      (List.init n Fun.id)
    |> fst
  in
  let sched = Model.Scheduler.round_robin ~faults:[ (40, 1) ] sys in
  let exec, outcome =
    Model.Scheduler.run ~policy:Model.System.dummy_policy
      ~stop_when:Model.Properties.termination ~max_steps:100_000 sys exec0 sched
  in
  let final = Model.Exec.last_state exec in
  Format.printf "outcome: %a, failed: %a@.@." Model.Scheduler.pp_outcome outcome Spec.Iset.pp
    final.Model.State.failed;

  List.iteri
    (fun pid d ->
      match d with
      | Some resp ->
        Format.printf "process %d: increment returned %d (commit log %s)@." pid
          (Spec.Op.int_arg resp)
          (String.concat "," (List.map string_of_int (Protocols.Universal.log_of final ~pid)))
      | None -> Format.printf "process %d: crashed before its operation returned@." pid)
    (Array.to_list final.Model.State.decisions);

  let resps =
    List.map (fun (_, v) -> Spec.Op.int_arg v) (Model.State.decided_pairs final)
  in
  Format.printf "@.responses are distinct pre-values: %b — the counter linearizes.@."
    (List.length resps = List.length (List.sort_uniq Int.compare resps))
