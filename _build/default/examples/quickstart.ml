(* Quickstart: assemble a complete system C from the public API — three
   client processes sharing one wait-free binary consensus object — run it
   under a fair round-robin schedule with a crash, and check the consensus
   conditions.

   Run with: dune exec examples/quickstart.exe *)

open Ioa

let () =
  (* 1. A wait-free (2-resilient, 3 endpoints) canonical consensus object. *)
  let sys = Protocols.Direct.system ~n:3 ~f:2 in

  (* 2. Input-first execution: init(1)_0, init(0)_1, init(1)_2. *)
  let exec =
    List.fold_left
      (fun (exec, pid) v -> Model.Exec.append_init sys exec pid (Value.int v), pid + 1)
      (Model.Exec.init (Model.System.initial_state sys), 0)
      [ 1; 0; 1 ]
    |> fst
  in

  (* 3. Crash process 2 early, then drive everything round-robin. *)
  let sched = Model.Scheduler.round_robin ~faults:[ (2, 2) ] sys in
  let exec, outcome =
    Model.Scheduler.run ~policy:Model.System.dummy_policy
      ~stop_when:Model.Properties.termination ~max_steps:10_000 sys exec sched
  in

  (* 4. Inspect the run. *)
  Format.printf "schedule outcome: %a@." Model.Scheduler.pp_outcome outcome;
  Format.printf "events:@.  @[<v>%a@]@." Model.Exec.pp exec;
  let final = Model.Exec.last_state exec in
  Format.printf "@.report: %a@." Model.Properties.pp_report
    (Model.Properties.check final);
  List.iteri
    (fun pid d ->
      match d with
      | Some v -> Format.printf "process %d decided %a@." pid Value.pp v
      | None ->
        Format.printf "process %d did not decide (%s)@." pid
          (if Spec.Iset.mem pid final.Model.State.failed then "crashed" else "no input"))
    (Array.to_list final.Model.State.decisions)
