(* A replicated append-only log built on the totally ordered broadcast
   service (§5.2): each replica broadcasts its local commands and applies
   every delivered command in the service's global order. Totally ordered
   delivery makes all replica logs prefix-consistent — the textbook state
   machine replication pattern, running on the canonical failure-oblivious
   service.

   Run with: dune exec examples/replicated_log.exe *)

open Ioa
open Protocols.Proto_util

let tob_id = "tob"
let n = 3

(* Commands this demo replicates: one string per replica. *)
let command_of pid = Value.str (Printf.sprintf "cmd-from-%d" pid)

(* Replica: broadcast own command once, then apply every delivery to the
   local log. State: ("ready"|"sent") [log]. *)
let replica pid =
  let step s =
    if is "ready" s then
      Model.Process.Invoke
        {
          service = tob_id;
          op = Services.Tob.bcast (command_of pid);
          next = st "sent" [ field s 0 ];
        }
    else Model.Process.Internal s
  in
  let on_response s ~service b =
    if String.equal service tob_id && Spec.Op.is "rcv" b then begin
      let cmd, sender = Services.Tob.rcv_parts b in
      let entry = Value.pair cmd (Value.int sender) in
      st (tag s) [ Value.queue_push entry (field s 0) ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "ready" [ Value.queue_empty ]) ~step
    ~on_init:(fun s _ -> s)
    ~on_response ()

let log_of (s : Model.State.t) pid = Value.to_list (field s.Model.State.procs.(pid) 0)

let () =
  let endpoints = List.init n Fun.id in
  let tob =
    Model.Service.oblivious ~id:tob_id ~endpoints ~f:(n - 1)
      (Services.Tob.make ~endpoints ~alphabet:(List.map command_of endpoints))
  in
  let sys = Model.System.make ~processes:(List.init n replica) ~services:[ tob ] in

  (* Drive with an adversarial random schedule — total order holds under any
     interleaving. *)
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.random ~seed:7 sys in
  let all_applied s = List.for_all (fun pid -> List.length (log_of s pid) = n) endpoints in
  let exec, outcome =
    Model.Scheduler.run ~stop_when:all_applied ~max_steps:20_000 sys exec0 sched
  in
  Format.printf "outcome: %a after %d steps@.@." Model.Scheduler.pp_outcome outcome
    (Model.Exec.length exec);

  let final = Model.Exec.last_state exec in
  List.iter
    (fun pid ->
      Format.printf "replica %d log:@." pid;
      List.iteri
        (fun i entry ->
          let cmd, sender = Value.to_pair entry in
          Format.printf "  %d. %a (from replica %a)@." i Value.pp cmd Value.pp sender)
        (log_of final pid))
    endpoints;

  let logs = List.map (log_of final) endpoints in
  let identical =
    match logs with
    | [] -> true
    | l :: rest -> List.for_all (List.equal Value.equal l) rest
  in
  Format.printf "@.all replica logs identical: %b@." identical
