(* Tests for the generic I/O automata substrate: actions, tasks, automata,
   composition, hiding, executions, and bounded trace inclusion. *)

open Ioa
open Helpers

let action_testable = Alcotest.testable Action.pp Action.equal

let set_v b = Action.make "set" (Value.bool b)
let flip = Action.make "flip" Value.unit
let emit b = Action.make "emit" (Value.bool b)

(* A toggle bit: input [set(b)] forces the bit, internal [flip] negates it,
   output [emit(b)] reports it. *)
let toggle =
  let classify a =
    match Action.name a with
    | "set" -> Some Automaton.Input
    | "flip" -> Some Automaton.Internal
    | "emit" -> Some Automaton.Output
    | _ -> None
  in
  let step s a =
    match Action.name a with
    | "set" -> [ Action.arg a ]
    | "flip" -> [ Value.bool (not (Value.to_bool s)) ]
    | "emit" -> if Value.equal (Action.arg a) s then [ s ] else []
    | _ -> []
  in
  let flip_task =
    Task.make ~label:"flip"
      ~contains:(fun a -> String.equal (Action.name a) "flip")
      ~enabled:(fun _ -> [ flip ])
  in
  let emit_task =
    Task.make ~label:"emit"
      ~contains:(fun a -> String.equal (Action.name a) "emit")
      ~enabled:(fun s -> [ emit (Value.to_bool s) ])
  in
  Automaton.make ~name:"toggle" ~classify ~start:[ Value.bool false ] ~step
    ~tasks:[ flip_task; emit_task ]

(* A sink recording the last emitted bit; [emit] is its input. *)
let sink =
  let classify a =
    match Action.name a with "emit" -> Some Automaton.Input | _ -> None
  in
  let step _s a = match Action.name a with "emit" -> [ Action.arg a ] | _ -> [] in
  Automaton.make ~name:"sink" ~classify ~start:[ Value.unit ] ~step ~tasks:[]

let test_action_basics () =
  Alcotest.check action_testable "make/name/arg" (set_v true)
    (Action.make (Action.name (set_v true)) (Action.arg (set_v true)));
  Alcotest.(check bool) "equal" true (Action.equal flip (Action.make "flip" Value.unit));
  Alcotest.(check bool) "hash consistent" true (Action.hash flip = Action.hash (Action.make "flip" Value.unit));
  Alcotest.(check string) "pp nullary" "flip" (Action.to_string flip);
  Alcotest.(check string) "pp payload" "emit(true)" (Action.to_string (emit true))

let test_automaton_classify () =
  Alcotest.(check bool) "input" true (toggle.Automaton.classify (set_v true) = Some Automaton.Input);
  Alcotest.(check bool) "internal" true (toggle.Automaton.classify flip = Some Automaton.Internal);
  Alcotest.(check bool) "output" true (toggle.Automaton.classify (emit true) = Some Automaton.Output);
  Alcotest.(check bool) "unknown" true (toggle.Automaton.classify (Action.make "x" Value.unit) = None);
  Alcotest.(check bool) "locally controlled" true (Automaton.is_locally_controlled toggle flip);
  Alcotest.(check bool) "input not locally controlled" false
    (Automaton.is_locally_controlled toggle (set_v true));
  Alcotest.(check bool) "external output" true (Automaton.is_external toggle (emit true));
  Alcotest.(check bool) "internal not external" false (Automaton.is_external toggle flip)

let test_enabled_and_tasks () =
  let acts = Automaton.enabled_local toggle (Value.bool false) in
  Alcotest.(check int) "two enabled" 2 (List.length acts);
  Alcotest.(check bool) "emit false enabled" true (List.exists (Action.equal (emit false)) acts);
  (match Automaton.task_of_action toggle flip with
  | Some t -> Alcotest.(check string) "task of flip" "flip" t.Task.label
  | None -> Alcotest.fail "expected flip task");
  Alcotest.(check bool) "no task for input" true
    (Automaton.task_of_action toggle (set_v true) = None)

let test_determinism_and_input_enabled () =
  Alcotest.(check bool) "toggle deterministic" true
    (Automaton.is_deterministic toggle ~states:[ Value.bool false; Value.bool true ]);
  (match
     Automaton.check_input_enabled toggle
       ~states:[ Value.bool false; Value.bool true ]
       ~inputs:[ set_v false; set_v true ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e)

let test_composition () =
  let c = Compose.compose ~name:"toggle||sink" [ toggle; sink ] in
  (* emit is an output of toggle and input of sink: still an output of the
     composition; both participants move. *)
  Alcotest.(check bool) "emit output" true (c.Automaton.classify (emit false) = Some Automaton.Output);
  let s0 = List.hd c.Automaton.start in
  (match c.Automaton.step s0 (emit false) with
  | [ s1 ] ->
    (match Value.to_list s1 with
    | [ tog; snk ] ->
      Alcotest.check value_testable "toggle unchanged" (Value.bool false) tog;
      Alcotest.check value_testable "sink recorded" (Value.bool false) snk
    | _ -> Alcotest.fail "bad composite state")
  | _ -> Alcotest.fail "expected one joint transition");
  (* emit true is not enabled in the false state: no joint transition. *)
  Alcotest.(check int) "disabled joint action" 0 (List.length (c.Automaton.step s0 (emit true)));
  Alcotest.(check int) "lifted tasks" 2 (List.length c.Automaton.tasks)

let test_compatibility () =
  (match Compose.check_compatible [ toggle; sink ] ~alphabet:[ set_v true; flip; emit true ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Two copies of toggle share the output [emit]: incompatible. *)
  match Compose.check_compatible [ toggle; toggle ] ~alphabet:[ emit true ] with
  | Ok () -> Alcotest.fail "expected incompatibility"
  | Error _ -> ()

let test_hiding () =
  let h = Compose.hide (fun a -> String.equal (Action.name a) "emit") toggle in
  Alcotest.(check bool) "emit hidden" true (h.Automaton.classify (emit true) = Some Automaton.Internal);
  Alcotest.(check bool) "set unchanged" true (h.Automaton.classify (set_v true) = Some Automaton.Input)

let test_execution () =
  let exec = Execution.init (Value.bool false) in
  Alcotest.(check int) "empty length" 0 (Execution.length exec);
  let exec =
    match Execution.apply_tasks toggle exec [ List.hd toggle.Automaton.tasks ] with
    | Some e -> e
    | None -> Alcotest.fail "flip applicable"
  in
  Alcotest.check value_testable "flipped" (Value.bool true) (Execution.last_state exec);
  Alcotest.(check int) "one step" 1 (Execution.length exec);
  Alcotest.(check (list string)) "actions" [ "flip" ]
    (List.map Action.name (Execution.actions exec));
  (* Trace excludes internal actions. *)
  Alcotest.(check int) "trace empty" 0 (List.length (Execution.trace toggle exec));
  let exec2 =
    match Execution.apply_task toggle exec (List.nth toggle.Automaton.tasks 1) with
    | Some e -> e
    | None -> Alcotest.fail "emit applicable"
  in
  Alcotest.(check (list string)) "trace has emit" [ "emit" ]
    (List.map Action.name (Execution.trace toggle exec2));
  (* Toggle always has enabled tasks: never fair when finite. *)
  Alcotest.(check bool) "not fair" false (Execution.is_fair_finite toggle exec2);
  Alcotest.(check int) "enabled tasks" 2 (List.length (Execution.enabled_tasks toggle exec2))

let test_execution_concat () =
  let a = Execution.init (Value.bool false) in
  let a = Execution.append a flip (Value.bool true) in
  let b = Execution.init (Value.bool true) in
  let b = Execution.append b flip (Value.bool false) in
  let ab = Execution.concat a b in
  Alcotest.(check int) "concat length" 2 (Execution.length ab);
  Alcotest.check value_testable "concat end" (Value.bool false) (Execution.last_state ab);
  Alcotest.check_raises "mismatched concat"
    (Invalid_argument "Execution.concat: fragments do not match") (fun () ->
    ignore (Execution.concat b b))

(* Trace inclusion: a one-shot emitter of [emit(false)] is included in
   toggle's traces (toggle can emit false from its start state), whereas a
   one-shot emitter of [emit(true)] first is not included in an
   emit-false-only spec. *)
let one_shot b =
  let classify a =
    match Action.name a with "emit" -> Some Automaton.Output | _ -> None
  in
  let step s a =
    if String.equal (Action.name a) "emit" && Value.equal (Action.arg a) (Value.bool b)
       && Value.equal s (Value.bool false)
    then [ Value.bool true ]
    else []
  in
  let t =
    Task.make ~label:"emit"
      ~contains:(fun a -> String.equal (Action.name a) "emit")
      ~enabled:(fun s -> if Value.equal s (Value.bool false) then [ emit b ] else [])
  in
  Automaton.make ~name:"one-shot" ~classify ~start:[ Value.bool false ] ~step ~tasks:[ t ]

let emit_false_only =
  let classify a =
    match Action.name a with "emit" -> Some Automaton.Output | _ -> None
  in
  let step s a =
    if Action.equal a (emit false) then [ s ] else []
  in
  let t =
    Task.make ~label:"emit"
      ~contains:(fun a -> String.equal (Action.name a) "emit")
      ~enabled:(fun _ -> [ emit false ])
  in
  Automaton.make ~name:"emit-false" ~classify ~start:[ Value.unit ] ~step ~tasks:[ t ]

let test_implements_included () =
  match
    Implements.check_traces ~impl:(one_shot false) ~spec:emit_false_only ~inputs:[]
      ~max_states:100
  with
  | Implements.Included -> ()
  | v -> Alcotest.failf "expected inclusion, got %a" Implements.pp_verdict v

let test_implements_counterexample () =
  match
    Implements.check_traces ~impl:(one_shot true) ~spec:emit_false_only ~inputs:[]
      ~max_states:100
  with
  | Implements.Counterexample [ a ] ->
    Alcotest.check action_testable "offending action" (emit true) a
  | v -> Alcotest.failf "expected counterexample, got %a" Implements.pp_verdict v

let test_implements_budget () =
  (* toggle has infinitely many executions but only 2 states; with a budget of
     1 the check cannot finish. *)
  match
    Implements.check_traces ~impl:toggle ~spec:toggle ~inputs:[ set_v true ] ~max_states:1
  with
  | Implements.Out_of_budget _ -> ()
  | v -> Alcotest.failf "expected out-of-budget, got %a" Implements.pp_verdict v

let test_implements_reflexive () =
  match
    Implements.check_traces ~impl:toggle ~spec:toggle
      ~inputs:[ set_v true; set_v false ] ~max_states:10_000
  with
  | Implements.Included -> ()
  | v -> Alcotest.failf "expected inclusion, got %a" Implements.pp_verdict v

let suite =
  ( "ioa",
    [
      Alcotest.test_case "action basics" `Quick test_action_basics;
      Alcotest.test_case "automaton classify" `Quick test_automaton_classify;
      Alcotest.test_case "enabled and tasks" `Quick test_enabled_and_tasks;
      Alcotest.test_case "determinism and input-enabledness" `Quick
        test_determinism_and_input_enabled;
      Alcotest.test_case "composition" `Quick test_composition;
      Alcotest.test_case "compatibility" `Quick test_compatibility;
      Alcotest.test_case "hiding" `Quick test_hiding;
      Alcotest.test_case "execution" `Quick test_execution;
      Alcotest.test_case "execution concat" `Quick test_execution_concat;
      Alcotest.test_case "implements: included" `Quick test_implements_included;
      Alcotest.test_case "implements: counterexample" `Quick test_implements_counterexample;
      Alcotest.test_case "implements: budget" `Quick test_implements_budget;
      Alcotest.test_case "implements: reflexive" `Quick test_implements_reflexive;
    ] )
