(* Direct tests for the lasso-detecting fair runner. *)

open Helpers
module F = Engine.Fair_run

let test_decided () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let exec, outcome = F.run ~goal:Model.Properties.termination sys exec0 in
  (match outcome with
  | F.Decided -> ()
  | o -> Alcotest.failf "expected Decided, got %a" F.pp_outcome o);
  Alcotest.(check bool) "goal holds at end" true
    (Model.Properties.termination (Model.Exec.last_state exec))

let test_lasso_on_silenced_system () =
  (* Fail a process of the f=0 system and silence: the fair run provably
     cycles. *)
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let exec0 = Model.Exec.append_fail sys exec0 0 in
  let _, outcome =
    F.run ~policy:Model.System.dummy_policy
      ~goal:(fun s -> Option.is_some s.Model.State.decisions.(1))
      sys exec0
  in
  match outcome with
  | F.Lasso { period } -> Alcotest.(check bool) "positive period" true (period > 0)
  | o -> Alcotest.failf "expected Lasso, got %a" F.pp_outcome o

let test_budget () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let _, outcome = F.run ~max_steps:1 ~goal:(fun _ -> false) sys exec0 in
  match outcome with
  | F.Budget -> ()
  | o -> Alcotest.failf "expected Budget, got %a" F.pp_outcome o

let test_goal_checked_first () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let exec, outcome = F.run ~goal:(fun _ -> true) sys exec0 in
  (match outcome with F.Decided -> () | o -> Alcotest.failf "expected Decided, got %a" F.pp_outcome o);
  Alcotest.(check int) "no steps taken" (Model.Exec.length exec0) (Model.Exec.length exec)

let test_lasso_is_fair () =
  (* Every task index appears as a turn within each detected period: the
     pumped suffix is a fair schedule by construction (round-robin). The
     runner's cursor covers all tasks each cycle; we just sanity-check the
     lasso period is at least the task count when nothing is enabled but
     no-ops. *)
  let sys = Protocols.Register_wait.system () in
  let exec0 = initialized sys (int_inputs [ 1; 0 ]) in
  let exec0 = Model.Exec.append_fail sys exec0 1 in
  let _, outcome =
    F.run ~policy:Model.System.dummy_policy
      ~goal:(fun s -> Option.is_some s.Model.State.decisions.(0))
      sys exec0
  in
  match outcome with
  | F.Lasso { period } ->
    Alcotest.(check bool) "period covers at least some turns" true (period >= 1)
  | o -> Alcotest.failf "expected Lasso, got %a" F.pp_outcome o

let suite =
  ( "fair-run",
    [
      Alcotest.test_case "decided" `Quick test_decided;
      Alcotest.test_case "lasso on silenced system" `Quick test_lasso_on_silenced_system;
      Alcotest.test_case "budget" `Quick test_budget;
      Alcotest.test_case "goal checked first" `Quick test_goal_checked_first;
      Alcotest.test_case "lasso period sanity" `Quick test_lasso_is_fair;
    ] )
