(* In-system properties of the totally ordered broadcast service (§5.2):
   total order, agreement on delivery prefixes, validity, integrity. *)

open Ioa
open Helpers

(* A broadcaster/recorder process: on init(v) broadcasts v, and appends every
   delivered (message, sender) pair to a local log. *)
let recorder ~tob_id pid =
  let open Protocols.Proto_util in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = tob_id;
          op = Services.Tob.bcast (field s 0);
          next = st "logging" [ field s 1 ];
        }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v; field s 0 ] else s in
  let on_response s ~service b =
    if String.equal service tob_id && Spec.Op.is "rcv" b then begin
      let m, sender = Services.Tob.rcv_parts b in
      let entry = Value.pair m (Value.int sender) in
      let log = if is "logging" s then field s 0 else field s 1 in
      let log = Value.queue_push entry log in
      if is "logging" s then st "logging" [ log ]
      else if is "have" s then st "have" [ field s 0; log ]
      else st "idle" [ log ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" [ Value.queue_empty ]) ~step ~on_init
    ~on_response ()

let log_of (s : Model.State.t) pid =
  let open Protocols.Proto_util in
  let ps = s.Model.State.procs.(pid) in
  let log = if is "logging" ps then field ps 0 else if is "have" ps then field ps 1 else field ps 0 in
  Value.to_list log

let tob_system ~n ~f =
  let endpoints = List.init n Fun.id in
  let tob =
    Model.Service.oblivious ~id:"tob" ~endpoints ~f
      (Services.Tob.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1; Value.int 2 ])
  in
  Model.System.make ~processes:(List.init n (recorder ~tob_id:"tob")) ~services:[ tob ]

let is_prefix xs ys =
  let rec go xs ys =
    match xs, ys with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> Value.equal x y && go xs' ys'
  in
  go xs ys

let check_total_order s ~n =
  (* Any two logs are prefix-comparable: the service imposes one global
     order. *)
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then begin
            let li = log_of s i and lj = log_of s j in
            Alcotest.(check bool)
              (Printf.sprintf "logs %d/%d prefix-comparable" i j)
              true
              (is_prefix li lj || is_prefix lj li)
          end)
        (List.init n Fun.id))
    (List.init n Fun.id)

let test_total_order_rr () =
  let sys = tob_system ~n:3 ~f:2 in
  let final, _, _ = run_rr sys [ 0; 1; 2 ] in
  check_total_order final ~n:3;
  (* Failure-free fair run: everyone eventually logs all three messages. *)
  List.iter
    (fun pid -> Alcotest.(check int) "full log" 3 (List.length (log_of final pid)))
    [ 0; 1; 2 ]

let test_total_order_random () =
  List.iter
    (fun seed ->
      let sys = tob_system ~n:3 ~f:2 in
      let final, _, _ = run_random ~seed sys [ 0; 1; 2 ] in
      check_total_order final ~n:3)
    (List.init 10 Fun.id)

let test_validity_and_integrity () =
  let sys = tob_system ~n:3 ~f:2 in
  let final, _, _ = run_rr sys [ 2; 0; 1 ] in
  List.iter
    (fun pid ->
      let log = log_of final pid in
      (* Validity: every delivered message was broadcast with that content by
         that sender. *)
      List.iter
        (fun entry ->
          let m, sender = Value.to_pair entry in
          Alcotest.(check bool) "delivered = sender's input" true
            (match final.Model.State.inputs.(Value.to_int sender) with
            | Some v -> Value.equal v m
            | None -> false))
        log;
      (* Integrity: no duplicates. *)
      Alcotest.(check int) "no duplicates" (List.length log)
        (List.length (List.sort_uniq Value.compare log)))
    [ 0; 1; 2 ]

let test_delivery_with_failures () =
  (* f = 2 TOB keeps delivering to survivors after 2 failures... only 1
     endpoint remains; with all-but-one failed, survivors still get ordered
     messages they broadcast themselves. *)
  let sys = tob_system ~n:3 ~f:2 in
  let final, _, _ =
    run_rr ~policy:Model.System.dummy_policy ~faults:[ (0, 0); (0, 1) ] sys [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "survivor logged its own message" true
    (List.length (log_of final 2) >= 1)

let test_silencing_with_low_resilience () =
  (* f = 0 TOB: one failure lets the adversary stop all deliveries. *)
  let sys = tob_system ~n:3 ~f:0 in
  let final, _, _ =
    run_rr ~policy:Model.System.dummy_policy ~faults:[ (0, 0) ] sys [ 0; 1; 2 ]
  in
  List.iter
    (fun pid -> Alcotest.(check int) "no deliveries" 0 (List.length (log_of final pid)))
    [ 1; 2 ]

let prop_total_order_random_schedules =
  qtest "TOB: prefix-comparability under random schedules" ~count:60
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 2 4))
    (fun (seed, n) ->
      let sys = tob_system ~n ~f:(n - 1) in
      let final, _, _ = run_random ~seed ~max_steps:4_000 sys (List.init n (fun i -> i mod 3)) in
      let ok = ref true in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i < j then begin
                let li = log_of final i and lj = log_of final j in
                if not (is_prefix li lj || is_prefix lj li) then ok := false
              end)
            (List.init n Fun.id))
        (List.init n Fun.id);
      !ok)

let suite =
  ( "tob",
    [
      Alcotest.test_case "total order (round-robin)" `Quick test_total_order_rr;
      Alcotest.test_case "total order (random)" `Quick test_total_order_random;
      Alcotest.test_case "validity and integrity" `Quick test_validity_and_integrity;
      Alcotest.test_case "delivery with failures" `Quick test_delivery_with_failures;
      Alcotest.test_case "silencing at f=0" `Quick test_silencing_with_low_resilience;
      prop_total_order_random_schedules;
    ] )
