(* Exhaustive lemma checks (Engine.Lemma_check): Lemmas 1 and 3 on every
   system; the Lemma 6/7 state-level consequences on correct systems, and
   their deliberate violation on boosting candidates (which is exactly the
   refutation lever). Also the SCC-vs-naive valence ablation oracle. *)

module E = Engine
module L = Engine.Lemma_check

let staircase_analyses sys =
  List.map
    (fun (e : E.Initialization.entry) -> e.E.Initialization.analysis)
    (E.Initialization.staircase sys)

let no_failures name fs =
  Alcotest.(check int)
    (name ^ ": no violations")
    0 (List.length fs);
  match fs with [] -> () | f :: _ -> Alcotest.failf "%a" L.pp_failure f

let all_systems =
  [
    "direct n=2 f=0", Protocols.Direct.system ~n:2 ~f:0;
    "direct n=2 f=1", Protocols.Direct.system ~n:2 ~f:1;
    "tob n=2 f=0", Protocols.Tob_direct.system ~n:2 ~f:0;
    "register_vote", Protocols.Register_vote.system ();
    "register_wait", Protocols.Register_wait.system ();
    "tas f=1", Protocols.Tas_consensus.system ~f:1;
    "queue f=1", Protocols.Queue_consensus.system ~f:1;
  ]

let test_lemma1 () =
  List.iter
    (fun (name, sys) ->
      List.iter (fun a -> no_failures name (L.lemma1_applicability a)) (staircase_analyses sys))
    all_systems

let test_lemma3 () =
  List.iter
    (fun (name, sys) ->
      List.iter (fun a -> no_failures name (L.lemma3_dichotomy a)) (staircase_analyses sys))
    all_systems

let test_lemma6_on_correct_systems () =
  List.iter
    (fun (name, sys) ->
      no_failures name (L.lemma6_j_similarity sys (staircase_analyses sys)))
    [
      "direct n=2 f=1", Protocols.Direct.system ~n:2 ~f:1;
      "tas f=1", Protocols.Tas_consensus.system ~f:1;
      "queue f=1", Protocols.Queue_consensus.system ~f:1;
    ]

let test_lemma7_on_correct_systems () =
  List.iter
    (fun (name, sys) ->
      no_failures name (L.lemma7_k_similarity ~failures:1 sys (staircase_analyses sys)))
    [
      "direct n=2 f=1", Protocols.Direct.system ~n:2 ~f:1;
      "tas f=1", Protocols.Tas_consensus.system ~f:1;
      "queue f=1", Protocols.Queue_consensus.system ~f:1;
    ]

let test_lemma7_violated_on_candidate () =
  (* On the f=0 boosting candidate the k-similar opposite-valence pair exists
     (the hook endpoints) — the refutation lever. *)
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let fs = L.lemma7_k_similarity ~failures:1 sys (staircase_analyses sys) in
  Alcotest.(check bool) "violations found on candidate" true (fs <> [])

let test_scc_vs_naive () =
  List.iter
    (fun (name, sys) ->
      List.iter (fun a -> no_failures name (L.scc_vs_naive a)) (staircase_analyses sys))
    all_systems

let test_scc_vs_naive_cyclic () =
  (* register_wait has polling cycles — the interesting SCC case. *)
  let sys = Protocols.Register_wait.system () in
  List.iter (fun a -> no_failures "register_wait" (L.scc_vs_naive a)) (staircase_analyses sys)

let suite =
  ( "lemmas",
    [
      Alcotest.test_case "Lemma 1 (applicability persists)" `Quick test_lemma1;
      Alcotest.test_case "Lemma 3 (valence dichotomy)" `Quick test_lemma3;
      Alcotest.test_case "Lemma 6 consequence on correct systems" `Quick
        test_lemma6_on_correct_systems;
      Alcotest.test_case "Lemma 7 consequence on correct systems" `Quick
        test_lemma7_on_correct_systems;
      Alcotest.test_case "Lemma 7 violated on candidates" `Quick test_lemma7_violated_on_candidate;
      Alcotest.test_case "valence: SCC vs naive oracle" `Quick test_scc_vs_naive;
      Alcotest.test_case "valence: SCC vs naive on cycles" `Quick test_scc_vs_naive_cyclic;
    ] )
