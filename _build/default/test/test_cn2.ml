(* The consensus-number-2 constructions (test&set and pre-filled queue):
   correct 2-process consensus with wait-free objects, refuted boosting with
   under-resilient ones. These exercise the register/mixed-service cases of
   the Lemma 8 analysis. *)

open Helpers
module P = Model.Properties
module C = Engine.Counterexample

let check_correct_runs name sys =
  (* Random adversarial runs with one failure. *)
  List.iter
    (fun seed ->
      let final, _, exec =
        run_random ~policy:Model.System.dummy_policy ~seed ~fail_prob:0.05 ~max_failures:1
          ~stop_when:P.termination sys [ 1; 0 ]
      in
      let r = P.check final in
      Alcotest.(check bool) (name ^ " agreement") true r.P.agreement;
      Alcotest.(check bool) (name ^ " validity") true r.P.validity;
      Alcotest.(check bool) (name ^ " termination") true r.P.termination;
      Alcotest.(check bool) (name ^ " per-process") true (P.per_process_agreement exec))
    (List.init 12 Fun.id)

let check_exhaustive_safety name sys =
  (* Every reachable failure-free state of every initialization satisfies
     agreement and validity. *)
  List.iter
    (fun (e : Engine.Initialization.entry) ->
      let g = Engine.Valence.graph e.Engine.Initialization.analysis in
      Alcotest.(check bool) (name ^ " explored completely") true (Engine.Graph.complete g);
      Engine.Graph.iter_states g (fun _ s ->
        Alcotest.(check bool) (name ^ " agreement everywhere") true (P.agreement s);
        Alcotest.(check bool) (name ^ " validity everywhere") true (P.validity s)))
    (Engine.Initialization.all_binary sys)

let test_tas_correct_runs () = check_correct_runs "tas" (Protocols.Tas_consensus.system ~f:1)
let test_tas_safety () = check_exhaustive_safety "tas" (Protocols.Tas_consensus.system ~f:1)

let test_tas_boundary () =
  match (C.refute ~failures:1 (Protocols.Tas_consensus.system ~f:1)).C.outcome with
  | C.Not_refuted _ -> ()
  | o -> Alcotest.failf "wait-free T&S should stand: %a" C.pp_outcome o

let test_tas_refuted () =
  match (C.refute ~failures:1 (Protocols.Tas_consensus.system ~f:0)).C.outcome with
  | C.Refuted (C.Non_termination { proven = true; _ }) -> ()
  | o -> Alcotest.failf "0-resilient T&S should be refuted: %a" C.pp_outcome o

let test_queue_correct_runs () =
  check_correct_runs "queue" (Protocols.Queue_consensus.system ~f:1)

let test_queue_safety () =
  check_exhaustive_safety "queue" (Protocols.Queue_consensus.system ~f:1)

let test_queue_boundary () =
  match (C.refute ~failures:1 (Protocols.Queue_consensus.system ~f:1)).C.outcome with
  | C.Not_refuted _ -> ()
  | o -> Alcotest.failf "wait-free queue should stand: %a" C.pp_outcome o

let test_queue_refuted () =
  match (C.refute ~failures:1 (Protocols.Queue_consensus.system ~f:0)).C.outcome with
  | C.Refuted (C.Non_termination { proven = true; _ }) -> ()
  | o -> Alcotest.failf "0-resilient queue should be refuted: %a" C.pp_outcome o

let test_tas_winner_takes_race () =
  (* Deterministic round-robin: process 0 writes and races first, wins, and
     both decide P0's input. *)
  let sys = Protocols.Tas_consensus.system ~f:1 in
  let final, _, _ = run_rr sys [ 1; 0 ] in
  List.iter
    (fun pid ->
      match final.Model.State.decisions.(pid) with
      | Some v -> Alcotest.(check int) "P0's input wins" 1 (Ioa.Value.to_int v)
      | None -> Alcotest.failf "process %d undecided" pid)
    [ 0; 1 ]

let test_queue_token_unique () =
  (* Across the full exploration, at most one process ever holds the
     token-winner role: both deciding own (different) inputs is impossible —
     subsumed by exhaustive agreement, but check the queue drains to empty
     exactly once via the final states. *)
  let sys = Protocols.Queue_consensus.system ~f:1 in
  let final, _, _ = run_rr sys [ 1; 0 ] in
  let qpos = Model.System.service_pos sys Protocols.Queue_consensus.queue_id in
  Alcotest.check value_testable "token consumed" Ioa.Value.queue_empty
    final.Model.State.svcs.(qpos).Model.State.value

(* The Theorem 2 boundary, swept by property: for the direct system with an
   f-resilient object, the claim of `failures`-resilient consensus is refuted
   iff failures > f. *)
let prop_theorem2_boundary =
  qtest "Theorem 2 boundary: refuted iff failures > f" ~count:25
    QCheck2.Gen.(
      let* n = int_range 2 3 in
      let* f = int_bound (n - 1) in
      let* failures = int_range 1 (n - 1) in
      return (n, f, failures))
    (fun (n, f, failures) ->
      let sys = Protocols.Direct.system ~n ~f in
      match (C.refute ~failures sys).C.outcome with
      | C.Refuted _ -> failures > f
      | C.Not_refuted _ -> failures <= f
      | C.Out_of_budget _ -> false)

let suite =
  ( "cn2",
    [
      Alcotest.test_case "T&S: adversarial runs" `Quick test_tas_correct_runs;
      Alcotest.test_case "T&S: exhaustive safety" `Quick test_tas_safety;
      Alcotest.test_case "T&S: boundary stands" `Quick test_tas_boundary;
      Alcotest.test_case "T&S: f=0 refuted" `Quick test_tas_refuted;
      Alcotest.test_case "queue: adversarial runs" `Quick test_queue_correct_runs;
      Alcotest.test_case "queue: exhaustive safety" `Quick test_queue_safety;
      Alcotest.test_case "queue: boundary stands" `Quick test_queue_boundary;
      Alcotest.test_case "queue: f=0 refuted" `Quick test_queue_refuted;
      Alcotest.test_case "T&S: race winner" `Quick test_tas_winner_takes_race;
      Alcotest.test_case "queue: token consumed" `Quick test_queue_token_unique;
      prop_theorem2_boundary;
    ] )
