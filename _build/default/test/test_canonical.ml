(* Tests for the canonical automata of Figs. 1/4/8 at the generic IOA level:
   buffer flow, response nondeterminism resolution, dummy enabling conditions
   as functions of the failed set and the resilience level f. *)

open Ioa
open Helpers
module SN = Services.Sig_names

let endpoints = [ 0; 1 ]
let consensus = Spec.Seq_consensus.make ()

(* A 0-resilient 2-endpoint canonical consensus object. *)
let obj = Services.Canonical.atomic consensus ~endpoints ~f:0 ~k:"c"
let start = List.hd obj.Automaton.start

let step1 s a =
  match obj.Automaton.step s a with
  | [ s' ] -> s'
  | [] -> Alcotest.failf "action %a not enabled" Action.pp a
  | _ -> Alcotest.failf "action %a nondeterministic" Action.pp a

let test_invoke_perform_respond () =
  let s1 = step1 start (SN.invoke 0 "c" (Spec.Seq_consensus.init 1)) in
  let s2 = step1 s1 (SN.perform 0 "c") in
  (* The response must now be deliverable at endpoint 0. *)
  let s3 = step1 s2 (SN.respond 0 "c" (Spec.Seq_consensus.decide 1)) in
  (* A second invocation at endpoint 1 must get the remembered value. *)
  let s4 = step1 s3 (SN.invoke 1 "c" (Spec.Seq_consensus.init 0)) in
  let s5 = step1 s4 (SN.perform 1 "c") in
  ignore (step1 s5 (SN.respond 1 "c" (Spec.Seq_consensus.decide 1)))

let test_wrong_response_disabled () =
  let s1 = step1 start (SN.invoke 0 "c" (Spec.Seq_consensus.init 1)) in
  let s2 = step1 s1 (SN.perform 0 "c") in
  Alcotest.(check int) "decide(0) not deliverable" 0
    (List.length (obj.Automaton.step s2 (SN.respond 0 "c" (Spec.Seq_consensus.decide 0))))

let test_perform_requires_pending () =
  Alcotest.(check int) "perform disabled initially" 0
    (List.length (obj.Automaton.step start (SN.perform 0 "c")))

let test_fifo_buffers () =
  (* Two invocations at the same endpoint are performed in order. *)
  let s1 = step1 start (SN.invoke 0 "c" (Spec.Seq_consensus.init 0)) in
  let s2 = step1 s1 (SN.invoke 0 "c" (Spec.Seq_consensus.init 1)) in
  let s3 = step1 s2 (SN.perform 0 "c") in
  let s4 = step1 s3 (SN.perform 0 "c") in
  (* Both responses decide 0 (the first invocation wins), in FIFO order. *)
  let s5 = step1 s4 (SN.respond 0 "c" (Spec.Seq_consensus.decide 0)) in
  ignore (step1 s5 (SN.respond 0 "c" (Spec.Seq_consensus.decide 0)))

let enabled_of_task label s =
  match List.find_opt (fun t -> String.equal t.Task.label label) obj.Automaton.tasks with
  | Some t -> t.Task.enabled s
  | None -> Alcotest.failf "no task %s" label

let test_dummy_disabled_when_failure_free () =
  List.iter
    (fun label ->
      let acts = enabled_of_task label start in
      Alcotest.(check bool)
        (label ^ " has no dummy when failure-free")
        false
        (List.exists SN.is_dummy acts))
    [ "c.perform[0]"; "c.output[0]"; "c.perform[1]"; "c.output[1]" ]

let test_dummy_enabled_after_own_failure () =
  let s1 = step1 start (SN.fail 0) in
  let acts = enabled_of_task "c.perform[0]" s1 in
  Alcotest.(check bool) "dummy_perform[0] enabled" true (List.exists SN.is_dummy acts);
  (* f = 0: one failure exceeds the budget, so endpoint 1's dummies are also
     enabled. *)
  let acts1 = enabled_of_task "c.perform[1]" s1 in
  Alcotest.(check bool) "dummy_perform[1] enabled (budget exceeded)" true
    (List.exists SN.is_dummy acts1)

let test_resilient_object_keeps_serving () =
  (* A 1-resilient object: a single failure does NOT enable dummies at live
     endpoints. *)
  let obj1 = Services.Canonical.atomic consensus ~endpoints ~f:1 ~k:"c" in
  let s1 =
    match obj1.Automaton.step (List.hd obj1.Automaton.start) (SN.fail 0) with
    | [ s ] -> s
    | _ -> Alcotest.fail "fail must be enabled"
  in
  let task =
    List.find (fun t -> String.equal t.Task.label "c.perform[1]") obj1.Automaton.tasks
  in
  Alcotest.(check bool) "no dummy at live endpoint of 1-resilient object" false
    (List.exists SN.is_dummy (task.Task.enabled s1))

let test_fail_idempotent_state () =
  let s1 = step1 start (SN.fail 0) in
  let s2 = step1 s1 (SN.fail 0) in
  Alcotest.check value_testable "fail twice = fail once" s1 s2

let test_dummy_preserves_state () =
  let s1 = step1 start (SN.fail 0) in
  let s2 = step1 s1 (SN.dummy_perform 0 "c") in
  Alcotest.check value_testable "dummy no-op" s1 s2

let test_compute_task_for_tob () =
  let tob =
    Services.Canonical.oblivious
      (Services.Tob.make ~endpoints ~alphabet:[ Value.int 0 ])
      ~endpoints ~f:0 ~k:"t"
  in
  let s0 = List.hd tob.Automaton.start in
  (* compute is always enabled (δ2 total). *)
  let compute_task =
    List.find (fun t -> String.equal t.Task.label "t.compute[g]") tob.Automaton.tasks
  in
  Alcotest.(check bool) "compute enabled" true (Task.is_enabled compute_task s0);
  (* bcast, perform, compute, then both endpoints have a deliverable rcv. *)
  let s1 =
    match tob.Automaton.step s0 (SN.invoke 1 "t" (Services.Tob.bcast (Value.int 0))) with
    | [ s ] -> s
    | _ -> Alcotest.fail "invoke"
  in
  let s2 = match tob.Automaton.step s1 (SN.perform 1 "t") with [ s ] -> s | _ -> Alcotest.fail "perform" in
  let s3 = match tob.Automaton.step s2 (SN.compute "g" "t") with [ s ] -> s | _ -> Alcotest.fail "compute" in
  let rcv = Services.Tob.rcv (Value.int 0) 1 in
  Alcotest.(check int) "deliverable at 0" 1 (List.length (tob.Automaton.step s3 (SN.respond 0 "t" rcv)));
  Alcotest.(check int) "deliverable at 1" 1 (List.length (tob.Automaton.step s3 (SN.respond 1 "t" rcv)))

let test_register_is_wait_free () =
  let reg =
    Services.Canonical.register
      (Spec.Seq_register.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0))
      ~endpoints ~k:"r"
  in
  (* One failure (f = |J| - 1 = 1): live endpoint dummies stay disabled. *)
  let s1 =
    match reg.Automaton.step (List.hd reg.Automaton.start) (SN.fail 0) with
    | [ s ] -> s
    | _ -> Alcotest.fail "fail"
  in
  let task = List.find (fun t -> String.equal t.Task.label "r.perform[1]") reg.Automaton.tasks in
  Alcotest.(check bool) "register serves" false (List.exists SN.is_dummy (task.Task.enabled s1))

let test_classify () =
  Alcotest.(check bool) "invoke input" true
    (obj.Automaton.classify (SN.invoke 0 "c" (Spec.Seq_consensus.init 0)) = Some Automaton.Input);
  Alcotest.(check bool) "respond output" true
    (obj.Automaton.classify (SN.respond 0 "c" (Spec.Seq_consensus.decide 0)) = Some Automaton.Output);
  Alcotest.(check bool) "perform internal" true
    (obj.Automaton.classify (SN.perform 0 "c") = Some Automaton.Internal);
  Alcotest.(check bool) "fail input" true (obj.Automaton.classify (SN.fail 1) = Some Automaton.Input);
  Alcotest.(check bool) "other service's actions not in signature" true
    (obj.Automaton.classify (SN.perform 0 "other") = None);
  Alcotest.(check bool) "non-endpoint invoke not in signature" true
    (obj.Automaton.classify (SN.invoke 7 "c" (Spec.Seq_consensus.init 0)) = None)

let test_deterministic_after_embedding () =
  (* The §5.1/§6.1 embedding of a deterministic sequential type yields a
     deterministic automaton on reachable states. *)
  let s1 = step1 start (SN.invoke 0 "c" (Spec.Seq_consensus.init 1)) in
  let s2 = step1 s1 (SN.perform 0 "c") in
  Alcotest.(check bool) "deterministic" true
    (Automaton.is_deterministic obj ~states:[ start; s1; s2 ])

let suite =
  ( "canonical",
    [
      Alcotest.test_case "invoke/perform/respond flow" `Quick test_invoke_perform_respond;
      Alcotest.test_case "wrong response disabled" `Quick test_wrong_response_disabled;
      Alcotest.test_case "perform requires pending invocation" `Quick test_perform_requires_pending;
      Alcotest.test_case "FIFO buffers" `Quick test_fifo_buffers;
      Alcotest.test_case "no dummies when failure-free" `Quick test_dummy_disabled_when_failure_free;
      Alcotest.test_case "dummies after failure (f=0)" `Quick test_dummy_enabled_after_own_failure;
      Alcotest.test_case "1-resilient object keeps serving" `Quick test_resilient_object_keeps_serving;
      Alcotest.test_case "fail idempotent" `Quick test_fail_idempotent_state;
      Alcotest.test_case "dummy preserves state" `Quick test_dummy_preserves_state;
      Alcotest.test_case "TOB compute task" `Quick test_compute_task_for_tob;
      Alcotest.test_case "register is wait-free" `Quick test_register_is_wait_free;
      Alcotest.test_case "signature classification" `Quick test_classify;
      Alcotest.test_case "determinism after embedding" `Quick test_deterministic_after_embedding;
    ] )
