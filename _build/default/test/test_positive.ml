(* The positive results, validated by adversarial execution:
   - §4: wait-free k-set consensus from wait-free group consensus;
   - §6.3: consensus for any number of failures from 1-resilient 2-process
     perfect failure detectors + registers, and the emulated wait-free
     n-process perfect detector. *)

open Helpers
module P = Model.Properties

(* --- §4 k-set boosting --- *)

let kset_report ?(policy = Model.System.dummy_policy) ~groups ~group_size ~seed ~max_failures ()
    =
  let sys = Protocols.Kset_boost.system ~groups ~group_size in
  let n = groups * group_size in
  let final, _, exec =
    run_random ~policy ~seed ~fail_prob:0.01 ~max_failures
      ~stop_when:P.termination sys (List.init n Fun.id)
  in
  final, exec

let check_kset ~groups final exec =
  Alcotest.(check bool) "k-agreement" true (P.agreement ~k:groups final);
  Alcotest.(check bool) "validity" true (P.validity final);
  Alcotest.(check bool) "termination" true (P.termination final);
  Alcotest.(check bool) "per-process agreement" true (P.per_process_agreement exec)

let test_kset_2x2 () =
  List.iter
    (fun seed ->
      let final, exec = kset_report ~groups:2 ~group_size:2 ~seed ~max_failures:3 () in
      check_kset ~groups:2 final exec)
    (List.init 15 Fun.id)

let test_kset_2x3 () =
  List.iter
    (fun seed ->
      let final, exec = kset_report ~groups:2 ~group_size:3 ~seed ~max_failures:5 () in
      check_kset ~groups:2 final exec)
    (List.init 8 Fun.id)

let test_kset_3x2 () =
  List.iter
    (fun seed ->
      let final, exec = kset_report ~groups:3 ~group_size:2 ~seed ~max_failures:5 () in
      check_kset ~groups:3 final exec)
    (List.init 8 Fun.id)

let test_kset_group_isolation () =
  (* Killing an entire group must not block the other group: wait-freedom. *)
  let sys = Protocols.Kset_boost.system ~groups:2 ~group_size:2 in
  let final, _, _ =
    run_rr ~policy:Model.System.dummy_policy ~faults:[ (0, 0); (0, 1) ] sys [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "termination for survivors" true (P.termination final);
  (* Survivors belong to group 1: they decide group 1's winner. *)
  List.iter
    (fun pid ->
      match final.Model.State.decisions.(pid) with
      | Some v -> Alcotest.(check bool) "group-1 value" true (List.mem (Ioa.Value.to_int v) [ 2; 3 ])
      | None -> Alcotest.failf "survivor %d undecided" pid)
    [ 2; 3 ]

let test_kset_decision_count_tight () =
  (* Failure-free with adversarial ordering: exactly ≤ groups distinct
     decisions, and with distinct inputs the bound is reached. *)
  let sys = Protocols.Kset_boost.system ~groups:2 ~group_size:2 in
  let final, _, _ = run_rr sys [ 0; 1; 2; 3 ] in
  let d = Model.State.decided_values final in
  Alcotest.(check int) "exactly 2 decisions with distinct inputs" 2 (List.length d)

let test_kset_exhaustive_small () =
  (* Exhaustive exploration of the 2x1 instance (two singleton groups):
     every reachable state satisfies 2-agreement and validity. *)
  let sys = Protocols.Kset_boost.system ~groups:2 ~group_size:1 in
  let start = Model.System.initialize sys (int_inputs [ 0; 1 ]) in
  let g = Engine.Graph.explore sys start in
  Alcotest.(check bool) "complete" true (Engine.Graph.complete g);
  Engine.Graph.iter_states g (fun _ s ->
    Alcotest.(check bool) "2-agreement everywhere" true (P.agreement ~k:2 s);
    Alcotest.(check bool) "validity everywhere" true (P.validity s))

(* --- §6.3 FD-based consensus --- *)

let fd_consensus_final ?(policy = Model.System.dummy_policy) ~n ~seed ~max_failures () =
  let sys = Protocols.Fd_boost.system ~n in
  run_random ~policy ~seed ~fail_prob:0.01 ~max_failures ~stop_when:P.termination
    ~max_steps:60_000 sys (List.init n Fun.id)

let check_consensus final exec =
  let r = P.check final in
  Alcotest.(check bool) "agreement" true r.P.agreement;
  Alcotest.(check bool) "validity" true r.P.validity;
  Alcotest.(check bool) "termination" true r.P.termination;
  Alcotest.(check bool) "per-process agreement" true (P.per_process_agreement exec)

let test_fd_boost_n3 () =
  List.iter
    (fun seed ->
      let final, _, exec = fd_consensus_final ~n:3 ~seed ~max_failures:2 () in
      check_consensus final exec)
    (List.init 12 Fun.id)

let test_fd_boost_n4 () =
  List.iter
    (fun seed ->
      let final, _, exec = fd_consensus_final ~n:4 ~seed ~max_failures:3 () in
      check_consensus final exec)
    (List.init 6 Fun.id)

let test_fd_boost_kill_coordinators () =
  (* Adversarial plan: kill coordinators 0 and 1 before anything runs. The
     1-resilient pairwise detectors survive and unblock every phase. *)
  let sys = Protocols.Fd_boost.system ~n:3 in
  let final, _, exec =
    run_rr ~policy:Model.System.dummy_policy ~faults:[ (0, 0); (1, 1) ] ~max_steps:60_000 sys
      [ 0; 1; 2 ]
  in
  check_consensus final exec;
  (match final.Model.State.decisions.(2) with
  | Some v -> Alcotest.(check int) "survivor decides own input" 2 (Ioa.Value.to_int v)
  | None -> Alcotest.fail "survivor undecided")

let test_fd_boost_kill_coordinator_after_write () =
  (* Kill coordinator 0 later, after it likely wrote: either way agreement
     must hold among survivors. *)
  let sys = Protocols.Fd_boost.system ~n:3 in
  List.iter
    (fun at ->
      let final, _, exec =
        run_rr ~policy:Model.System.dummy_policy ~faults:[ (at, 0) ] ~max_steps:60_000 sys
          [ 0; 1; 2 ]
      in
      check_consensus final exec)
    [ 5; 10; 20; 40; 80 ]

let test_fd_boost_failure_free () =
  let sys = Protocols.Fd_boost.system ~n:3 in
  let final, _, exec = run_rr ~max_steps:60_000 sys [ 2; 1; 0 ] in
  check_consensus final exec;
  (* Failure-free, the first coordinator's estimate wins. *)
  List.iter
    (fun pid ->
      match final.Model.State.decisions.(pid) with
      | Some v -> Alcotest.(check int) "coordinator 0's input wins" 2 (Ioa.Value.to_int v)
      | None -> Alcotest.failf "process %d undecided" pid)
    [ 0; 1; 2 ]

let test_fd_boost_suspicions_accurate () =
  (* Strong accuracy, lifted to the consensus protocol's suspicion sets:
     checked at every step of a run with failures. *)
  let sys = Protocols.Fd_boost.system ~n:3 in
  let exec0 = initialized sys (int_inputs [ 0; 1; 2 ]) in
  let sched = Model.Scheduler.round_robin ~faults:[ (30, 1) ] ~quiesce:false sys in
  let exec, _ =
    Model.Scheduler.run ~policy:Model.System.dummy_policy ~max_steps:5_000 sys exec0 sched
  in
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      List.iter
        (fun pid ->
          if not (Spec.Iset.mem pid s.Model.State.failed) then
            Alcotest.(check bool) "suspected ⊆ failed" true
              (Spec.Iset.subset (Protocols.Fd_boost.suspected_of s ~pid) s.Model.State.failed))
        [ 0; 1; 2 ])
    (Model.Exec.steps exec)

(* The P-vs-◇P contrast (§6.2): the same rotating-coordinator protocol that
   is correct over perfect pairwise detectors loses agreement when the
   detectors are eventually perfect with an adversarial imperfect phase. *)
let test_fd_boost_needs_perfect_detector () =
  let sys = Protocols.Fd_boost.system_paranoid_ep ~n:2 in
  match
    (Engine.Counterexample.refute ~max_states:500_000 ~failures:1 sys)
      .Engine.Counterexample.outcome
  with
  | Engine.Counterexample.Refuted (Engine.Counterexample.Agreement_violation exec) ->
    Alcotest.(check bool) "failure-free violation" true (Model.Exec.is_failure_free exec)
  | o -> Alcotest.failf "expected agreement violation under ◇P, got %a"
           Engine.Counterexample.pp_outcome o

(* --- §6.3 FD network emulation --- *)

let test_fd_network_accuracy_always () =
  let sys = Protocols.Fd_network.system ~n:3 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (40, 2); (120, 0) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:4_000 sys exec0 sched in
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      List.iter
        (fun pid ->
          if not (Spec.Iset.mem pid s.Model.State.failed) then
            Alcotest.(check bool) "output ⊆ failed (strong accuracy)" true
              (Spec.Iset.subset (Protocols.Fd_network.output_of s ~pid) s.Model.State.failed))
        [ 0; 1; 2 ])
    (Model.Exec.steps exec)

let test_fd_network_completeness () =
  let sys = Protocols.Fd_network.system ~n:4 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (10, 1); (30, 3) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:8_000 sys exec0 sched in
  let s = Model.Exec.last_state exec in
  let failed = s.Model.State.failed in
  Alcotest.check iset_testable "two failures" (Spec.Iset.of_list [ 1; 3 ]) failed;
  List.iter
    (fun pid ->
      if not (Spec.Iset.mem pid failed) then begin
        Alcotest.check iset_testable "output = failed (completeness + accuracy)" failed
          (Protocols.Fd_network.output_of s ~pid);
        Alcotest.check iset_testable "local view complete" failed
          (Protocols.Fd_network.local_of s ~pid)
      end)
    [ 0; 1; 2; 3 ]

let test_fd_network_register_sharing () =
  (* The union-of-registers path works even for a process whose own pairwise
     detector information is artificially ignored: outputs flow through the
     shared registers. After the run, every survivor's [output_of] contains
     every failure even if learned indirectly. *)
  let sys = Protocols.Fd_network.system ~n:3 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (20, 0) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:6_000 sys exec0 sched in
  let s = Model.Exec.last_state exec in
  List.iter
    (fun pid ->
      if not (Spec.Iset.mem pid s.Model.State.failed) then
        Alcotest.(check bool) "published failure visible" true
          (Spec.Iset.mem 0 (Protocols.Fd_network.output_of s ~pid)))
    [ 1; 2 ]

(* Property: the §4 bound holds for random group counts and failure plans. *)
let prop_kset_bound =
  qtest "kset boosting: ≤ groups distinct decisions on random runs" ~count:40
    QCheck2.Gen.(triple (int_range 1 3) (int_range 1 3) (int_bound 1000))
    (fun (groups, group_size, seed) ->
      let sys = Protocols.Kset_boost.system ~groups ~group_size in
      let n = groups * group_size in
      let final, _, _ =
        run_random ~policy:Model.System.dummy_policy ~seed ~fail_prob:0.02
          ~max_failures:(n - 1) ~stop_when:P.termination sys (List.init n Fun.id)
      in
      P.agreement ~k:groups final && P.validity final)

let suite =
  ( "positive",
    [
      Alcotest.test_case "§4: 2-set from 2x2" `Quick test_kset_2x2;
      Alcotest.test_case "§4: 2-set from 2x3" `Quick test_kset_2x3;
      Alcotest.test_case "§4: 3-set from 3x2" `Quick test_kset_3x2;
      Alcotest.test_case "§4: group isolation (wait-freedom)" `Quick test_kset_group_isolation;
      Alcotest.test_case "§4: decision bound tight" `Quick test_kset_decision_count_tight;
      Alcotest.test_case "§4: exhaustive small instance" `Quick test_kset_exhaustive_small;
      Alcotest.test_case "§6.3: consensus n=3, ≤2 failures" `Quick test_fd_boost_n3;
      Alcotest.test_case "§6.3: consensus n=4, ≤3 failures" `Slow test_fd_boost_n4;
      Alcotest.test_case "§6.3: coordinators killed" `Quick test_fd_boost_kill_coordinators;
      Alcotest.test_case "§6.3: coordinator killed mid-flight" `Quick
        test_fd_boost_kill_coordinator_after_write;
      Alcotest.test_case "§6.3: failure-free" `Quick test_fd_boost_failure_free;
      Alcotest.test_case "§6.3: suspicion accuracy invariant" `Quick test_fd_boost_suspicions_accurate;
      Alcotest.test_case "§6.2: rotating coordinator needs P, not ◇P" `Quick
        test_fd_boost_needs_perfect_detector;
      Alcotest.test_case "FD network: accuracy at every step" `Quick test_fd_network_accuracy_always;
      Alcotest.test_case "FD network: completeness" `Quick test_fd_network_completeness;
      Alcotest.test_case "FD network: register sharing" `Quick test_fd_network_register_sharing;
      prop_kset_bound;
    ] )
