(* Three late substrates together:
   - the reliable network service and the message-passing consensus
     candidates (the TR [2] / FLP setting);
   - the universal construction (§1's motivation for consensus);
   - the linearizability checker, validated on canonical-object histories. *)

open Ioa
open Helpers
module C = Engine.Counterexample

(* --- network service --- *)

let courier ~net_id ~payload_to pid =
  let open Protocols.Proto_util in
  let step s =
    if is "send" s then
      Model.Process.Invoke
        {
          service = net_id;
          op = Services.Network.send ~dst:payload_to (Value.int pid);
          next = st "sent" [ field s 0 ];
        }
    else Model.Process.Internal s
  in
  let on_response s ~service b =
    if String.equal service net_id && Services.Network.is_packet b then
      st (tag s) [ Value.queue_push b (field s 0) ]
    else s
  in
  Model.Process.make ~pid ~start:(st "send" [ Value.queue_empty ]) ~step
    ~on_init:(fun s _ -> s)
    ~on_response ()

let inbox (s : Model.State.t) pid =
  Value.to_list (Protocols.Proto_util.field s.Model.State.procs.(pid) 0)

let test_network_delivery () =
  (* Both processes send one packet to process 0; fairness delivers both,
     and only to the addressee. *)
  let endpoints = [ 0; 1 ] in
  let net =
    Model.Service.oblivious ~id:"net" ~endpoints ~f:1
      (Services.Network.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1 ])
  in
  let sys =
    Model.System.make
      ~processes:(List.init 2 (courier ~net_id:"net" ~payload_to:0))
      ~services:[ net ]
  in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin sys in
  let exec, _ = Model.Scheduler.run ~max_steps:200 sys exec0 sched in
  let final = Model.Exec.last_state exec in
  Alcotest.(check int) "addressee got both" 2 (List.length (inbox final 0));
  Alcotest.(check int) "other inbox empty" 0 (List.length (inbox final 1))

let test_network_silencing () =
  (* A 0-resilient network drops everything after one failure under the
     adversarial policy. *)
  let endpoints = [ 0; 1; 2 ] in
  let net =
    Model.Service.oblivious ~id:"net" ~endpoints ~f:0
      (Services.Network.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1; Value.int 2 ])
  in
  let sys =
    Model.System.make
      ~processes:(List.init 3 (courier ~net_id:"net" ~payload_to:0))
      ~services:[ net ]
  in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~quiesce:false ~faults:[ (0, 2) ] sys in
  let exec, _ =
    Model.Scheduler.run ~policy:Model.System.dummy_policy ~max_steps:400 sys exec0 sched
  in
  Alcotest.(check int) "nothing delivered" 0 (List.length (inbox (Model.Exec.last_state exec) 0))

(* --- message-passing consensus candidates --- *)

let test_mp_all_refuted () =
  match (C.refute ~failures:1 (Protocols.Mp_consensus.all_system ~n:3)).C.outcome with
  | C.Refuted (C.Non_termination { proven = true; _ }) -> ()
  | o -> Alcotest.failf "expected lasso non-termination, got %a" C.pp_outcome o

let test_mp_quorum_refuted () =
  match (C.refute ~failures:1 (Protocols.Mp_consensus.quorum_system ~n:3)).C.outcome with
  | C.Refuted (C.Agreement_violation exec) ->
    Alcotest.(check bool) "failure-free witness" true (Model.Exec.is_failure_free exec)
  | o -> Alcotest.failf "expected agreement violation, got %a" C.pp_outcome o

let test_mp_all_correct_failure_free () =
  (* The safe variant does decide the global minimum when nobody fails. *)
  let sys = Protocols.Mp_consensus.all_system ~n:3 in
  let final, _, _ = run_rr sys [ 1; 0; 1 ] in
  List.iter
    (fun pid ->
      match final.Model.State.decisions.(pid) with
      | Some v -> Alcotest.(check int) "global minimum" 0 (Value.to_int v)
      | None -> Alcotest.failf "process %d undecided" pid)
    [ 0; 1; 2 ]

(* --- universal construction --- *)

let universal_counter n =
  Protocols.Universal.system ~obj:(Spec.Seq_counter.make ())
    ~ops:(List.init n (fun _ -> Spec.Seq_counter.increment))

let test_universal_failure_free () =
  let n = 3 in
  let sys = universal_counter n in
  let final, _, _ = run_rr ~max_steps:60_000 sys (List.init n Fun.id) in
  let resps =
    List.map
      (fun (_, v) -> Spec.Op.int_arg v)
      (Model.State.decided_pairs final)
  in
  (* Three increments linearize: the pre-values are exactly {0, 1, 2}. *)
  Alcotest.(check (list int)) "linearized counter" [ 0; 1; 2 ] (List.sort Int.compare resps)

let test_universal_under_failures () =
  let n = 3 in
  List.iter
    (fun seed ->
      let sys = universal_counter n in
      let final, _, _ =
        run_random ~policy:Model.System.dummy_policy ~seed ~fail_prob:0.02
          ~max_failures:(n - 1) ~stop_when:Model.Properties.termination ~max_steps:60_000
          sys (List.init n Fun.id)
      in
      Alcotest.(check bool) "wait-free termination" true (Model.Properties.termination final);
      (* Every survivor's response is a distinct pre-value. *)
      let resps =
        List.map (fun (_, v) -> Spec.Op.int_arg v) (Model.State.decided_pairs final)
      in
      Alcotest.(check int) "distinct responses" (List.length resps)
        (List.length (List.sort_uniq Int.compare resps)))
    (List.init 10 Fun.id)

let test_universal_logs_prefix_consistent () =
  let n = 3 in
  let sys = universal_counter n in
  let final, _, _ = run_rr ~max_steps:60_000 sys (List.init n Fun.id) in
  (* While running, the processes' commit logs agree on the common prefix;
     at termination all are prefixes of one another. *)
  let logs = List.map (fun pid -> Protocols.Universal.log_of final ~pid) [ 0; 1; 2 ] in
  let rec is_prefix a b =
    match a, b with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> x = y && is_prefix a' b'
  in
  List.iter
    (fun a -> List.iter (fun b -> Alcotest.(check bool) "prefix" true (is_prefix a b || is_prefix b a)) logs)
    logs

(* --- linearizability checker --- *)

let register = Spec.Seq_register.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0)

let call i op = Model.Linearize.Call { endpoint = i; op }
let ret i resp = Model.Linearize.Return { endpoint = i; resp }

let test_linearize_sequential () =
  Alcotest.(check bool) "write then read" true
    (Model.Linearize.check register
       [
         call 0 (Spec.Seq_register.write (Value.int 1));
         ret 0 Spec.Seq_register.ack;
         call 1 Spec.Seq_register.read;
         ret 1 (Spec.Seq_register.value_resp (Value.int 1));
       ])

let test_linearize_stale_read_rejected () =
  Alcotest.(check bool) "stale read after completed write" false
    (Model.Linearize.check register
       [
         call 0 (Spec.Seq_register.write (Value.int 1));
         ret 0 Spec.Seq_register.ack;
         call 1 Spec.Seq_register.read;
         ret 1 (Spec.Seq_register.value_resp (Value.int 0));
       ])

let test_linearize_concurrent_flexibility () =
  (* A read overlapping a write may return either value. *)
  let overlapping resp =
    [
      call 0 (Spec.Seq_register.write (Value.int 1));
      call 1 Spec.Seq_register.read;
      ret 1 (Spec.Seq_register.value_resp (Value.int resp));
      ret 0 Spec.Seq_register.ack;
    ]
  in
  Alcotest.(check bool) "overlapping read: old value ok" true
    (Model.Linearize.check register (overlapping 0));
  Alcotest.(check bool) "overlapping read: new value ok" true
    (Model.Linearize.check register (overlapping 1))

let test_linearize_pending_ok () =
  (* An invocation without a response is fine (it may or may not have taken
     effect). *)
  Alcotest.(check bool) "pending write" true
    (Model.Linearize.check register
       [
         call 0 (Spec.Seq_register.write (Value.int 1));
         call 1 Spec.Seq_register.read;
         ret 1 (Spec.Seq_register.value_resp (Value.int 1));
       ])

let test_linearize_canonical_histories () =
  (* Histories observed at canonical objects on random schedules are
     linearizable — for several types. *)
  let consensus = Spec.Seq_consensus.make () in
  let direct = Protocols.Direct.system ~n:3 ~f:2 in
  List.iter
    (fun seed ->
      let _, _, exec =
        run_random ~seed ~stop_when:Model.Properties.termination direct [ 0; 1; 1 ]
      in
      let h = Model.Linearize.history exec ~service:Protocols.Direct.service_id in
      Alcotest.(check bool) "consensus history linearizable" true
        (Model.Linearize.check consensus h))
    (List.init 8 Fun.id);
  let tas_sys = Protocols.Tas_consensus.system ~f:1 in
  List.iter
    (fun seed ->
      let _, _, exec =
        run_random ~seed ~stop_when:Model.Properties.termination tas_sys [ 1; 0 ]
      in
      let h = Model.Linearize.history exec ~service:Protocols.Tas_consensus.tas_id in
      Alcotest.(check bool) "test&set history linearizable" true
        (Model.Linearize.check (Spec.Seq_tas.make ()) h))
    (List.init 8 Fun.id)

let test_linearize_nondeterministic_type () =
  let kset = Spec.Seq_kset.make ~k:2 ~n:3 in
  Alcotest.(check bool) "either remembered value acceptable" true
    (Model.Linearize.check kset
       [
         call 0 (Spec.Seq_kset.init 2);
         ret 0 (Spec.Seq_kset.decide 2);
         call 1 (Spec.Seq_kset.init 1);
         ret 1 (Spec.Seq_kset.decide 2);
       ]
    && Model.Linearize.check kset
         [
           call 0 (Spec.Seq_kset.init 2);
           ret 0 (Spec.Seq_kset.decide 2);
           call 1 (Spec.Seq_kset.init 1);
           ret 1 (Spec.Seq_kset.decide 1);
         ]);
  Alcotest.(check bool) "unremembered value rejected" false
    (Model.Linearize.check kset
       [
         call 0 (Spec.Seq_kset.init 2);
         ret 0 (Spec.Seq_kset.decide 0);
       ])

let suite =
  ( "mp-universal-lin",
    [
      Alcotest.test_case "network delivery" `Quick test_network_delivery;
      Alcotest.test_case "network silencing" `Quick test_network_silencing;
      Alcotest.test_case "mp-all refuted (termination)" `Quick test_mp_all_refuted;
      Alcotest.test_case "mp-quorum refuted (agreement)" `Quick test_mp_quorum_refuted;
      Alcotest.test_case "mp-all correct failure-free" `Quick test_mp_all_correct_failure_free;
      Alcotest.test_case "universal: failure-free counter" `Quick test_universal_failure_free;
      Alcotest.test_case "universal: wait-free under failures" `Quick test_universal_under_failures;
      Alcotest.test_case "universal: log prefix consistency" `Quick
        test_universal_logs_prefix_consistent;
      Alcotest.test_case "linearize: sequential" `Quick test_linearize_sequential;
      Alcotest.test_case "linearize: stale read rejected" `Quick test_linearize_stale_read_rejected;
      Alcotest.test_case "linearize: concurrency flexibility" `Quick
        test_linearize_concurrent_flexibility;
      Alcotest.test_case "linearize: pending ops" `Quick test_linearize_pending_ok;
      Alcotest.test_case "linearize: canonical histories" `Quick test_linearize_canonical_histories;
      Alcotest.test_case "linearize: nondeterministic type" `Quick
        test_linearize_nondeterministic_type;
    ] )
