test/test_cn2.ml: Alcotest Array Engine Fun Helpers Ioa List Model Protocols QCheck2
