test/test_seq_types.ml: Alcotest Helpers Int Ioa List QCheck2 Queue Random Spec Value
