test/helpers.ml: Alcotest Engine Ioa List Model QCheck2 QCheck_alcotest Spec Value
