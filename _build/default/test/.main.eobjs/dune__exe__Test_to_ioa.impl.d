test/test_to_ioa.ml: Alcotest Helpers Ioa List Model Protocols Services Spec String
