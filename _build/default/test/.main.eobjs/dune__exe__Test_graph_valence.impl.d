test/test_graph_valence.ml: Alcotest Engine Helpers List Model Option Protocols
