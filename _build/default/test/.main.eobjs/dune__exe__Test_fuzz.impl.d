test/test_fuzz.ml: Engine Fun Helpers Ioa List Model Printf Protocols QCheck2 Spec String Value
