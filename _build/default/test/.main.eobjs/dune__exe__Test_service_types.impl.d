test/test_service_types.ml: Alcotest Helpers Ioa List Services Spec Value
