test/main.mli:
