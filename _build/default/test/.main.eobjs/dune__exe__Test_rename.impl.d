test/test_rename.ml: Action Alcotest Automaton Ioa List Model Protocols Services String Task Value
