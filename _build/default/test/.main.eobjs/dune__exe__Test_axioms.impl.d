test/test_axioms.ml: Alcotest Array Engine Format Fun Helpers Ioa List Model Option Protocols Services Spec Value
