test/test_tob.ml: Alcotest Array Fun Helpers Ioa List Model Printf Protocols QCheck2 Services Spec String Value
