test/test_positive.ml: Alcotest Array Engine Fun Helpers Ioa List Model Protocols QCheck2 Spec
