test/test_counterexample.ml: Alcotest Engine Helpers List Model Option Protocols Spec
