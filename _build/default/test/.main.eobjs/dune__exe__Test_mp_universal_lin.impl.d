test/test_mp_universal_lin.ml: Alcotest Array Engine Fun Helpers Int Ioa List Model Protocols Services Spec String Value
