test/test_more_types.ml: Alcotest Array Helpers Ioa List Model QCheck2 Spec Value
