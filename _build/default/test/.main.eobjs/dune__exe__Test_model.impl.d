test/test_model.ml: Alcotest Array Helpers Ioa List Model Option Protocols Spec Value
