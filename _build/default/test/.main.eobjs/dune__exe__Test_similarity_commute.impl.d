test/test_similarity_commute.ml: Alcotest Array Engine Helpers Ioa List Model Protocols Value
