test/test_hook.ml: Alcotest Engine Helpers List Model Protocols
