test/test_value.ml: Alcotest Fun Helpers Int Ioa List Option QCheck2 Value
