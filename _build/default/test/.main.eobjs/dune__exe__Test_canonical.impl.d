test/test_canonical.ml: Action Alcotest Automaton Helpers Ioa List Services Spec String Task Value
