test/test_fd_services.ml: Alcotest Array Fun Helpers List Model Services Spec String
