test/test_lemmas.ml: Alcotest Engine List Protocols
