test/test_fair_run.ml: Alcotest Array Engine Helpers Model Option Protocols
