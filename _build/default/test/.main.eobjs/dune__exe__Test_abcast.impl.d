test/test_abcast.ml: Alcotest Array Fun Helpers Ioa List Model Protocols Services Spec String Value
