test/test_ioa.ml: Action Alcotest Automaton Compose Execution Helpers Implements Ioa List String Task Value
