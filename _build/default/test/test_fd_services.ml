(* In-system behaviour of the failure-detector services (§6.2): P's strong
   accuracy and completeness, ◇P's imperfect period and stabilization, and
   the coalescing substitution that keeps their output buffers finite. *)

open Helpers

(* A listener process recording the last suspect set it received. *)
let listener ~fd_id pid =
  let step s = Model.Process.Internal s in
  let on_response s ~service b =
    if String.equal service fd_id && Spec.Op.is "suspect" b then Spec.Op.arg b else s
  in
  Model.Process.make ~pid ~start:(Spec.Iset.to_value Spec.Iset.empty) ~step
    ~on_init:(fun s _ -> s)
    ~on_response ()

let last_suspects (s : Model.State.t) pid = Spec.Iset.of_value s.Model.State.procs.(pid)

let p_system ~n ~f =
  let endpoints = List.init n Fun.id in
  let fd =
    Model.Service.general ~coalesce:true ~id:"fd" ~endpoints ~f
      (Services.Perfect_fd.make ~endpoints)
  in
  Model.System.make ~processes:(List.init n (listener ~fd_id:"fd")) ~services:[ fd ]

let test_p_accuracy_failure_free () =
  let sys = p_system ~n:3 ~f:2 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:500 sys exec0 sched in
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      List.iter
        (fun pid ->
          Alcotest.check iset_testable "nobody suspected" Spec.Iset.empty (last_suspects s pid))
        [ 0; 1; 2 ])
    (Model.Exec.steps exec)

let test_p_completeness_and_accuracy () =
  let sys = p_system ~n:3 ~f:2 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (20, 1) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:2_000 sys exec0 sched in
  let final = Model.Exec.last_state exec in
  (* Accuracy at every step; completeness at the end. *)
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      List.iter
        (fun pid ->
          if not (Spec.Iset.mem pid s.Model.State.failed) then
            Alcotest.(check bool) "suspects ⊆ failed" true
              (Spec.Iset.subset (last_suspects s pid) s.Model.State.failed))
        [ 0; 1; 2 ])
    (Model.Exec.steps exec);
  List.iter
    (fun pid ->
      Alcotest.check iset_testable "eventually suspects the crash"
        (Spec.Iset.of_list [ 1 ])
        (last_suspects final pid))
    [ 0; 2 ]

let test_p_silenced_past_resilience () =
  (* A 0-resilient P stops informing once one process has failed — the
     Theorem 10 lever. *)
  let sys = p_system ~n:3 ~f:0 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (0, 1) ] ~quiesce:false sys in
  let exec, _ =
    Model.Scheduler.run ~policy:Model.System.dummy_policy ~max_steps:2_000 sys exec0 sched
  in
  let final = Model.Exec.last_state exec in
  List.iter
    (fun pid ->
      Alcotest.check iset_testable "no information flows" Spec.Iset.empty
        (last_suspects final pid))
    [ 0; 2 ]

let test_coalesce_bounds_buffers () =
  let sys = p_system ~n:2 ~f:1 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:3_000 sys exec0 sched in
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      Array.iter
        (fun q ->
          Alcotest.(check bool) "response buffer stays short" true (List.length q <= 2))
        s.Model.State.svcs.(0).Model.State.resp_bufs)
    (Model.Exec.steps exec)

let ep_system ~n =
  let endpoints = List.init n Fun.id in
  let fd =
    Model.Service.general ~coalesce:true ~id:"efd" ~endpoints ~f:(n - 1)
      (Services.Eventually_perfect_fd.make ~endpoints ())
  in
  Model.System.make ~processes:(List.init n (listener ~fd_id:"efd")) ~services:[ fd ]

let test_ep_determinized_stabilizes () =
  (* The determinized ◇P switches to perfect at its first background-task
     turn and then reports accurately. *)
  let sys = ep_system ~n:2 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (10, 0) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:1_000 sys exec0 sched in
  let final = Model.Exec.last_state exec in
  Alcotest.check value_testable "mode perfect"
    Services.Eventually_perfect_fd.mode_perfect
    final.Model.State.svcs.(0).Model.State.value;
  Alcotest.check iset_testable "accurate after stabilization"
    (Spec.Iset.of_list [ 0 ])
    (last_suspects final 1)

let test_ep_imperfect_period_nondeterminism () =
  (* The raw (un-determinized) ◇P allows inaccurate suspicions while
     imperfect — visible in the relation itself. *)
  let fd = Services.Eventually_perfect_fd.make ~endpoints:[ 0; 1 ] () in
  let outcomes =
    fd.Spec.General_type.delta_glob (Services.Eventually_perfect_fd.task_for 0)
      Services.Eventually_perfect_fd.mode_imperfect ~failed:Spec.Iset.empty
  in
  let reported =
    List.filter_map
      (fun (rmap, _) ->
        match rmap with [ (0, [ r ]) ] -> Some (Services.Eventually_perfect_fd.suspected_set r) | _ -> None)
      outcomes
  in
  Alcotest.(check bool) "can wrongly suspect a live process" true
    (List.exists (fun s -> Spec.Iset.mem 1 s) reported)

let suite =
  ( "fd-services",
    [
      Alcotest.test_case "P: accuracy failure-free" `Quick test_p_accuracy_failure_free;
      Alcotest.test_case "P: completeness and accuracy" `Quick test_p_completeness_and_accuracy;
      Alcotest.test_case "P: silenced past resilience" `Quick test_p_silenced_past_resilience;
      Alcotest.test_case "coalescing bounds buffers" `Quick test_coalesce_bounds_buffers;
      Alcotest.test_case "◇P: determinized stabilization" `Quick test_ep_determinized_stabilizes;
      Alcotest.test_case "◇P: imperfect-period nondeterminism" `Quick
        test_ep_imperfect_period_nondeterminism;
    ] )
