(* Tests for failure-oblivious and general service types (§5.1, §6.1) and the
   concrete services built from them: TOB (§5.2), P and ◇P (§6.2). *)

open Ioa
open Helpers

let consensus = Spec.Seq_consensus.make ()

let test_of_sequential_shape () =
  let u = Spec.Service_type.of_sequential consensus in
  Alcotest.(check (list string)) "no global tasks" [] u.Spec.Service_type.global_tasks;
  (* δ1 delivers exactly one response, to the invoking endpoint. *)
  let v0 = List.hd u.Spec.Service_type.initials in
  (match u.Spec.Service_type.delta_inv (Spec.Seq_consensus.init 1) 3 v0 with
  | [ (rmap, _v') ] ->
    (match rmap with
    | [ (endpoint, [ resp ]) ] ->
      Alcotest.(check int) "responds to invoker" 3 endpoint;
      Alcotest.check value_testable "decide response" (Spec.Seq_consensus.decide 1) resp
    | _ -> Alcotest.fail "expected a single response to one endpoint")
  | _ -> Alcotest.fail "expected exactly one outcome");
  Alcotest.(check int) "δ2 empty" 0 (List.length (u.Spec.Service_type.delta_glob "g" v0))

let test_of_oblivious_ignores_failures () =
  let u = Spec.Service_type.of_sequential consensus in
  let g = Spec.General_type.of_oblivious u in
  let v0 = List.hd g.Spec.General_type.initials in
  let with_failures =
    g.Spec.General_type.delta_inv (Spec.Seq_consensus.init 0) 1 v0
      ~failed:(Spec.Iset.of_list [ 0; 1; 2 ])
  in
  let without = g.Spec.General_type.delta_inv (Spec.Seq_consensus.init 0) 1 v0 ~failed:Spec.Iset.empty in
  Alcotest.(check int) "same outcome count" (List.length without) (List.length with_failures);
  match with_failures, without with
  | [ (_, v1) ], [ (_, v2) ] -> Alcotest.check value_testable "failure-oblivious" v1 v2
  | _ -> Alcotest.fail "expected single outcomes"

let test_service_type_determinize () =
  let kset = Spec.Seq_kset.make ~k:2 ~n:3 in
  let u = Spec.Service_type.of_sequential kset in
  let d = Spec.Service_type.determinize u in
  let v0 = List.hd d.Spec.Service_type.initials in
  let _, v1 = List.hd (d.Spec.Service_type.delta_inv (Spec.Seq_kset.init 1) 0 v0) in
  Alcotest.(check int) "single outcome after determinize" 1
    (List.length (d.Spec.Service_type.delta_inv (Spec.Seq_kset.init 2) 0 v1))

let endpoints = [ 0; 1; 2 ]

let test_tob_delta1 () =
  let tob = Services.Tob.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1 ] in
  let v0 = List.hd tob.Spec.Service_type.initials in
  match tob.Spec.Service_type.delta_inv (Services.Tob.bcast (Value.int 1)) 2 v0 with
  | [ (rmap, v1) ] ->
    Alcotest.(check int) "bcast yields no responses" 0 (List.length rmap);
    Alcotest.(check int) "message queued" 1 (Value.queue_length v1)
  | _ -> Alcotest.fail "expected one outcome"

let test_tob_delta2 () =
  let tob = Services.Tob.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1 ] in
  let v0 = List.hd tob.Spec.Service_type.initials in
  (* Empty msgs: δ2 is the identity with no responses (totality). *)
  (match tob.Spec.Service_type.delta_glob Services.Tob.global_task v0 with
  | [ (rmap, v1) ] ->
    Alcotest.(check int) "no responses on empty" 0 (List.length rmap);
    Alcotest.check value_testable "value unchanged" v0 v1
  | _ -> Alcotest.fail "expected identity outcome");
  (* Nonempty: head delivered to EVERY endpoint. *)
  let _, v1 =
    List.hd (tob.Spec.Service_type.delta_inv (Services.Tob.bcast (Value.int 0)) 1 v0)
  in
  match tob.Spec.Service_type.delta_glob Services.Tob.global_task v1 with
  | [ (rmap, v2) ] ->
    Alcotest.(check int) "delivered to all endpoints" 3 (List.length rmap);
    List.iter
      (fun (j, rs) ->
        Alcotest.(check bool) "endpoint in J" true (List.mem j endpoints);
        match rs with
        | [ r ] ->
          let m, sender = Services.Tob.rcv_parts r in
          Alcotest.check value_testable "message" (Value.int 0) m;
          Alcotest.(check int) "sender" 1 sender
        | _ -> Alcotest.fail "expected one response per endpoint")
      rmap;
    Alcotest.(check int) "queue drained" 0 (Value.queue_length v2)
  | _ -> Alcotest.fail "expected one outcome"

let test_perfect_fd () =
  let fd = Services.Perfect_fd.make ~endpoints in
  let v0 = List.hd fd.Spec.General_type.initials in
  let failed = Spec.Iset.of_list [ 1 ] in
  (match fd.Spec.General_type.delta_glob (Services.Perfect_fd.task_for 0) v0 ~failed with
  | [ (rmap, _) ] -> (
    match rmap with
    | [ (0, [ resp ]) ] ->
      Alcotest.check iset_testable "reports exactly the failed set" failed
        (Services.Perfect_fd.suspected_set resp)
    | _ -> Alcotest.fail "expected a single response to endpoint 0")
  | _ -> Alcotest.fail "expected one outcome");
  (* Unknown task name: no outcomes (not a task of this service). *)
  Alcotest.(check int) "unknown task" 0
    (List.length (fd.Spec.General_type.delta_glob "99" v0 ~failed));
  Alcotest.(check int) "no invocations" 0 (List.length fd.Spec.General_type.invocations)

let test_eventually_perfect_fd_modes () =
  let fd = Services.Eventually_perfect_fd.make ~endpoints () in
  let imperfect = Services.Eventually_perfect_fd.mode_imperfect in
  let perfect = Services.Eventually_perfect_fd.mode_perfect in
  Alcotest.check value_testable "starts imperfect" imperfect
    (List.hd fd.Spec.General_type.initials);
  (* The switch task's first choice moves to perfect. *)
  (match
     fd.Spec.General_type.delta_glob Services.Eventually_perfect_fd.switch_task imperfect
       ~failed:Spec.Iset.empty
   with
  | (_, v) :: _ -> Alcotest.check value_testable "switches" perfect v
  | [] -> Alcotest.fail "switch task must be total");
  (* While imperfect, arbitrary suspicions are allowed (2^|J| choices). *)
  let outcomes =
    fd.Spec.General_type.delta_glob (Services.Eventually_perfect_fd.task_for 1) imperfect
      ~failed:Spec.Iset.empty
  in
  Alcotest.(check int) "imperfect: all subsets" 8 (List.length outcomes);
  (* Once perfect, only the accurate report remains. *)
  let failed = Spec.Iset.of_list [ 2 ] in
  match
    fd.Spec.General_type.delta_glob (Services.Eventually_perfect_fd.task_for 1) perfect ~failed
  with
  | [ ([ (1, [ resp ]) ], v) ] ->
    Alcotest.check iset_testable "accurate" failed
      (Services.Eventually_perfect_fd.suspected_set resp);
    Alcotest.check value_testable "stays perfect" perfect v
  | _ -> Alcotest.fail "expected the accurate single outcome"

let test_eventually_perfect_first_choice_accurate () =
  let fd = Services.Eventually_perfect_fd.make ~endpoints () in
  let imperfect = Services.Eventually_perfect_fd.mode_imperfect in
  let failed = Spec.Iset.of_list [ 0; 2 ] in
  match
    fd.Spec.General_type.delta_glob (Services.Eventually_perfect_fd.task_for 1) imperfect ~failed
  with
  | ([ (1, [ resp ]) ], _) :: _ ->
    Alcotest.check iset_testable "determinized ◇P behaves like P" failed
      (Services.Eventually_perfect_fd.suspected_set resp)
  | _ -> Alcotest.fail "expected accurate first choice"

let test_general_determinize () =
  let fd = Services.Eventually_perfect_fd.make ~endpoints () in
  let d = Spec.General_type.determinize fd in
  let imperfect = Services.Eventually_perfect_fd.mode_imperfect in
  Alcotest.(check int) "single outcome" 1
    (List.length
       (d.Spec.General_type.delta_glob (Services.Eventually_perfect_fd.task_for 0) imperfect
          ~failed:Spec.Iset.empty))

let suite =
  ( "service-types",
    [
      Alcotest.test_case "of_sequential shape" `Quick test_of_sequential_shape;
      Alcotest.test_case "of_oblivious ignores failures" `Quick test_of_oblivious_ignores_failures;
      Alcotest.test_case "service determinize" `Quick test_service_type_determinize;
      Alcotest.test_case "TOB δ1" `Quick test_tob_delta1;
      Alcotest.test_case "TOB δ2" `Quick test_tob_delta2;
      Alcotest.test_case "perfect FD" `Quick test_perfect_fd;
      Alcotest.test_case "◇P modes" `Quick test_eventually_perfect_fd_modes;
      Alcotest.test_case "◇P accurate first choice" `Quick
        test_eventually_perfect_first_choice_accurate;
      Alcotest.test_case "general determinize" `Quick test_general_determinize;
    ] )
