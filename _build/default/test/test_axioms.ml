(* Theorem 11 (Appendix B): the canonical f-resilient consensus object
   satisfies the axiomatic agreement, validity and modified-termination
   conditions. Exercised operationally through the direct system with a
   wait-free object and adversarial scheduling/failure injection, plus a
   bounded trace-inclusion check of the system layer against the generic
   canonical automaton (the §2.1.4 "implements" relation). *)

open Ioa
open Helpers
module P = Model.Properties

let test_agreement_validity_all_schedules () =
  (* Exhaustive: every reachable state of the wait-free direct system
     satisfies agreement and validity — over all 4 initializations. *)
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  List.iter
    (fun (e : Engine.Initialization.entry) ->
      let g = Engine.Valence.graph e.Engine.Initialization.analysis in
      Alcotest.(check bool) "complete" true (Engine.Graph.complete g);
      Engine.Graph.iter_states g (fun _ s ->
        Alcotest.(check bool) "agreement everywhere" true (P.agreement s);
        Alcotest.(check bool) "validity everywhere" true (P.validity s)))
    (Engine.Initialization.all_binary sys)

let test_modified_termination_with_failures () =
  (* n = 3, wait-free object, up to 2 failures, dummy-preferring adversary:
     every surviving initialized process decides. *)
  let sys = Protocols.Direct.system ~n:3 ~f:2 in
  List.iter
    (fun seed ->
      let final, _, _ =
        run_random ~policy:Model.System.dummy_policy ~seed ~fail_prob:0.03 ~max_failures:2
          ~stop_when:P.termination sys [ 0; 1; 1 ]
      in
      let r = P.check final in
      Alcotest.(check bool) "agreement" true r.P.agreement;
      Alcotest.(check bool) "validity" true r.P.validity;
      Alcotest.(check bool) "modified termination" true r.P.termination)
    (List.init 15 Fun.id)

let test_partial_inputs () =
  (* Modified termination: a process that receives no input need not decide;
     the others still must. *)
  let sys = Protocols.Direct.system ~n:3 ~f:2 in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let exec0 = Model.Exec.append_init sys exec0 0 (Value.int 1) in
  let exec0 = Model.Exec.append_init sys exec0 2 (Value.int 0) in
  let sched = Model.Scheduler.round_robin sys in
  let exec, _ = Model.Scheduler.run ~stop_when:P.termination ~max_steps:20_000 sys exec0 sched in
  let final = Model.Exec.last_state exec in
  Alcotest.(check bool) "P1 has no input" true (final.Model.State.inputs.(1) = None);
  Alcotest.(check bool) "P1 need not decide" true (final.Model.State.decisions.(1) = None);
  Alcotest.(check bool) "P0 decided" true (Option.is_some final.Model.State.decisions.(0));
  Alcotest.(check bool) "P2 decided" true (Option.is_some final.Model.State.decisions.(2));
  Alcotest.(check bool) "modified termination" true (P.termination final)

(* Cross-validation of the system layer against the generic canonical
   automaton: a fixed scenario is executed in both representations and must
   produce the same value evolution and response stream. *)
let test_system_vs_canonical_automaton () =
  let consensus = Spec.Seq_consensus.make () in
  let auto = Services.Canonical.atomic consensus ~endpoints:[ 0; 1 ] ~f:0 ~k:"cons" in
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  (* Drive the system: init, both invoke, both performed, both responses. *)
  let exec = initialized sys (int_inputs [ 1; 0 ]) in
  let tasks =
    [
      Model.Task.Proc 0;
      Model.Task.Proc 1;
      Model.Task.Svc_perform { svc = 0; endpoint = 0 };
      Model.Task.Svc_perform { svc = 0; endpoint = 1 };
      Model.Task.Svc_output { svc = 0; endpoint = 0 };
      Model.Task.Svc_output { svc = 0; endpoint = 1 };
    ]
  in
  let exec =
    match Model.Exec.replay_tasks sys exec tasks with
    | Some e -> e
    | None -> Alcotest.fail "system replay"
  in
  (* Mirror the service-relevant actions on the canonical automaton. *)
  let service_actions =
    List.filter_map
      (fun ev ->
        match ev with
        | Model.Event.Invoke _ | Model.Event.Respond _ | Model.Event.Perform _ ->
          Some (Model.Event.to_ioa ev)
        | _ -> None)
      (Model.Exec.events exec)
  in
  let final_auto =
    List.fold_left
      (fun s a ->
        match auto.Ioa.Automaton.step s a with
        | [ s' ] -> s'
        | [] -> Alcotest.failf "canonical automaton rejects %a" Ioa.Action.pp a
        | _ -> Alcotest.failf "canonical automaton nondeterministic on %a" Ioa.Action.pp a)
      (List.hd auto.Ioa.Automaton.start)
      service_actions
  in
  (* Both report the same final object value, and the system's responses were
     accepted verbatim by the canonical automaton (checked by the fold). *)
  let value_auto, _, _ = Value.to_triple final_auto in
  let sys_value = (Model.Exec.last_state exec).Model.State.svcs.(0).Model.State.value in
  Alcotest.check value_testable "object value agrees" value_auto sys_value

(* Bounded trace inclusion: the one-shot client composed with a wait-free
   object only produces decide sequences the binary consensus spec allows.
   (Checked on the external consensus interface via the agreement/validity
   exhaustive test above; here we check the *service* interface instead:
   the canonical 0-resilient object implements the canonical wait-free
   object's *finite traces* — resilience is a liveness distinction only.) *)
let test_resilience_is_liveness_only () =
  let consensus = Spec.Seq_consensus.make () in
  let weak = Services.Canonical.atomic consensus ~endpoints:[ 0; 1 ] ~f:0 ~k:"c" in
  let strong = Services.Canonical.atomic consensus ~endpoints:[ 0; 1 ] ~f:1 ~k:"c" in
  let inputs =
    [
      Services.Sig_names.invoke 0 "c" (Spec.Seq_consensus.init 0);
      Services.Sig_names.invoke 1 "c" (Spec.Seq_consensus.init 1);
    ]
  in
  match Ioa.Implements.check_traces ~impl:weak ~spec:strong ~inputs ~max_states:2_000 with
  | Ioa.Implements.Included | Ioa.Implements.Out_of_budget _ -> ()
  | Ioa.Implements.Counterexample tr ->
    Alcotest.failf "unexpected counterexample: %a"
      (Format.pp_print_list Ioa.Action.pp) tr

let suite =
  ( "axioms",
    [
      Alcotest.test_case "Thm 11: safety over all schedules" `Quick
        test_agreement_validity_all_schedules;
      Alcotest.test_case "Thm 11: modified termination" `Quick
        test_modified_termination_with_failures;
      Alcotest.test_case "Thm 11: partial inputs" `Quick test_partial_inputs;
      Alcotest.test_case "system layer vs canonical automaton" `Quick
        test_system_vs_canonical_automaton;
      Alcotest.test_case "resilience is liveness-only (trace inclusion)" `Quick
        test_resilience_is_liveness_only;
    ] )
