(* Tests for G(C) exploration (§3.3) and exact valence analysis (§3.2):
   graph structure, determinism of task edges, staircase verdicts, SCC
   handling on cyclic graphs, and anomaly detection. *)

open Helpers
module E = Engine

let explore sys inputs =
  let start = Model.System.initialize sys (int_inputs inputs) in
  E.Graph.explore sys start

let test_graph_basics () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  Alcotest.(check bool) "complete" true (E.Graph.complete g);
  Alcotest.(check bool) "nonempty" true (E.Graph.size g > 1);
  Alcotest.(check int) "root" 0 (E.Graph.root g);
  (* Root state is the initialization. *)
  Alcotest.check state_testable "root state"
    (Model.System.initialize sys (int_inputs [ 1; 0 ]))
    (E.Graph.state g 0);
  Alcotest.(check (option int)) "index of root" (Some 0)
    (E.Graph.index_of g (E.Graph.state g 0))

let test_graph_deterministic_edges () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  (* §3.1: at most one e-labelled edge per vertex. *)
  E.Graph.iter_states g (fun i _ ->
    let labels = List.map fst (E.Graph.succs g i) in
    let sorted = List.sort_uniq Model.Task.compare labels in
    Alcotest.(check int) "unique task labels" (List.length labels) (List.length sorted))

let test_graph_successor_consistent () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  E.Graph.iter_states g (fun i s ->
    List.iter
      (fun (e, j) ->
        (* The edge matches the system's transition function. *)
        match Model.System.transition sys s e with
        | Some (_, s') ->
          Alcotest.check state_testable "edge target" s' (E.Graph.state g j);
          Alcotest.(check (option int)) "successor lookup" (Some j) (E.Graph.successor g i e)
        | None -> Alcotest.fail "edge for disabled task")
      (E.Graph.succs g i))

let test_graph_path_between () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  let dst = E.Graph.size g - 1 in
  (match E.Graph.path_between g ~src:0 ~dst with
  | Some tasks ->
    (* Walk the path and land on dst. *)
    let v =
      List.fold_left
        (fun v e ->
          match E.Graph.successor g v e with
          | Some w -> w
          | None -> Alcotest.fail "path step invalid")
        0 tasks
    in
    Alcotest.(check int) "path reaches dst" dst v
  | None -> Alcotest.fail "graph is connected from root");
  Alcotest.(check (option (list task_testable))) "self path" (Some [])
    (E.Graph.path_between g ~src:0 ~dst:0)

let test_graph_budget () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let start = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let g = E.Graph.explore ~max_states:3 sys start in
  Alcotest.(check bool) "incomplete" false (E.Graph.complete g)

let test_staircase_direct () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let entries = E.Initialization.staircase sys in
  let verdicts = List.map (fun e -> e.E.Initialization.verdict) entries in
  Alcotest.(check (list verdict_testable)) "0-valent, bivalent, 1-valent"
    [ E.Valence.Zero_valent; E.Valence.Bivalent; E.Valence.One_valent ]
    verdicts

let test_staircase_register_wait () =
  (* min-deciding protocol: only the all-ones initialization is 1-valent. *)
  let sys = Protocols.Register_wait.system () in
  let entries = E.Initialization.staircase sys in
  let verdicts = List.map (fun e -> e.E.Initialization.verdict) entries in
  Alcotest.(check (list verdict_testable)) "univalent staircase"
    [ E.Valence.Zero_valent; E.Valence.Zero_valent; E.Valence.One_valent ]
    verdicts;
  Alcotest.(check bool) "no bivalent entry" true
    (E.Initialization.find_bivalent sys = None);
  match E.Initialization.staircase_flip sys with
  | Some (a, b) ->
    Alcotest.check verdict_testable "flip left" E.Valence.Zero_valent a.E.Initialization.verdict;
    Alcotest.check verdict_testable "flip right" E.Valence.One_valent b.E.Initialization.verdict
  | None -> Alcotest.fail "expected a staircase flip"

let test_all_binary () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let entries = E.Initialization.all_binary sys in
  Alcotest.(check int) "4 initializations" 4 (List.length entries);
  (* [0;1] and [1;0] are the bivalent ones. *)
  let bivalent =
    List.filter
      (fun e -> E.Valence.equal_verdict e.E.Initialization.verdict E.Valence.Bivalent)
      entries
  in
  Alcotest.(check int) "two bivalent" 2 (List.length bivalent)

let test_valence_monotone_along_edges () =
  (* The reachable-decision mask of a successor is a subset of its
     predecessor's. *)
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  let a = E.Valence.analyze g in
  let mask i =
    match E.Valence.verdict a i with
    | E.Valence.Blank -> 0
    | E.Valence.Zero_valent -> 1
    | E.Valence.One_valent -> 2
    | E.Valence.Bivalent -> 3
  in
  E.Graph.iter_states g (fun i _ ->
    List.iter
      (fun (_, j) ->
        Alcotest.(check bool) "succ mask subset" true (mask j land lnot (mask i) = 0))
      (E.Graph.succs g i))

let test_valence_counts () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  let a = E.Valence.analyze g in
  Alcotest.(check bool) "exact" true (E.Valence.is_exact a);
  Alcotest.(check bool) "bivalent root" true
    (E.Valence.equal_verdict (E.Valence.verdict a 0) E.Valence.Bivalent);
  Alcotest.(check bool) "has 0-valent states" true (E.Valence.count a E.Valence.Zero_valent > 0);
  Alcotest.(check bool) "has 1-valent states" true (E.Valence.count a E.Valence.One_valent > 0);
  Alcotest.(check int) "no blank states in a live protocol" 0 (E.Valence.count a E.Valence.Blank);
  Alcotest.(check int) "counts partition" (E.Graph.size g)
    (E.Valence.count a E.Valence.Zero_valent
    + E.Valence.count a E.Valence.One_valent
    + E.Valence.count a E.Valence.Bivalent
    + E.Valence.count a E.Valence.Blank)

let test_valence_cycles () =
  (* register_wait has polling cycles before decisions; SCC condensation must
     still give exact verdicts. *)
  let sys = Protocols.Register_wait.system () in
  let g = explore sys [ 1; 0 ] in
  let a = E.Valence.analyze g in
  Alcotest.(check bool) "exact" true (E.Valence.is_exact a);
  Alcotest.(check bool) "root 0-valent (min of 1,0)" true
    (E.Valence.equal_verdict (E.Valence.verdict a 0) E.Valence.Zero_valent)

let test_anomaly_detection () =
  let ok = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore ok [ 1; 0 ] in
  let a = E.Valence.analyze g in
  Alcotest.(check (option int)) "no disagreement in correct object" None
    (E.Valence.first_disagreement a);
  Alcotest.(check (option int)) "no invalid decision" None (E.Valence.first_invalid_decision a);
  let bad = Protocols.Split.system ~n:2 in
  let g = explore bad [ 1; 0 ] in
  let a = E.Valence.analyze g in
  Alcotest.(check bool) "split disagrees" true (Option.is_some (E.Valence.first_disagreement a))

let test_verdict_of_state () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let g = explore sys [ 1; 0 ] in
  let a = E.Valence.analyze g in
  Alcotest.(check bool) "root verdict via state" true
    (match E.Valence.verdict_of_state a (E.Graph.state g 0) with
    | Some v -> E.Valence.equal_verdict v E.Valence.Bivalent
    | None -> false);
  (* A state outside the graph: unknown. *)
  let other = Model.System.initialize sys (int_inputs [ 0; 0 ]) in
  Alcotest.(check bool) "foreign state" true (E.Valence.verdict_of_state a other = None)

let suite =
  ( "graph-valence",
    [
      Alcotest.test_case "graph basics" `Quick test_graph_basics;
      Alcotest.test_case "deterministic edges" `Quick test_graph_deterministic_edges;
      Alcotest.test_case "edges match transitions" `Quick test_graph_successor_consistent;
      Alcotest.test_case "path between" `Quick test_graph_path_between;
      Alcotest.test_case "exploration budget" `Quick test_graph_budget;
      Alcotest.test_case "staircase: direct" `Quick test_staircase_direct;
      Alcotest.test_case "staircase: register_wait flip" `Quick test_staircase_register_wait;
      Alcotest.test_case "all binary initializations" `Quick test_all_binary;
      Alcotest.test_case "valence monotone along edges" `Quick test_valence_monotone_along_edges;
      Alcotest.test_case "valence counts" `Quick test_valence_counts;
      Alcotest.test_case "valence with cycles" `Quick test_valence_cycles;
      Alcotest.test_case "anomaly detection" `Quick test_anomaly_detection;
      Alcotest.test_case "verdict of state" `Quick test_verdict_of_state;
    ] )
