(* Unit and property tests for Ioa.Value: ordering, hashing, and the
   canonical set/map/queue encodings. *)

open Ioa
open Helpers

let v = Alcotest.check value_testable

let test_constructors () =
  v "unit" Value.unit Value.Unit;
  v "bool" (Value.bool true) (Value.Bool true);
  v "int" (Value.int 42) (Value.Int 42);
  v "str" (Value.str "x") (Value.Str "x");
  v "pair" (Value.pair (Value.int 1) (Value.int 2)) (Value.Pair (Value.Int 1, Value.Int 2));
  v "triple"
    (Value.triple (Value.int 1) (Value.int 2) (Value.int 3))
    (Value.Pair (Value.Int 1, Value.Pair (Value.Int 2, Value.Int 3)));
  v "of_int_list" (Value.of_int_list [ 1; 2 ]) (Value.List [ Value.Int 1; Value.Int 2 ])

let test_destructors () =
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check int) "to_int" 7 (Value.to_int (Value.int 7));
  Alcotest.(check string) "to_str" "a" (Value.to_str (Value.str "a"));
  let a, b = Value.to_pair (Value.pair Value.unit (Value.int 1)) in
  v "to_pair fst" a Value.unit;
  v "to_pair snd" b (Value.int 1);
  let x, y, z = Value.to_triple (Value.triple (Value.int 1) (Value.int 2) (Value.int 3)) in
  Alcotest.(check (list int)) "to_triple" [ 1; 2; 3 ] (List.map Value.to_int [ x; y; z ])

let test_type_errors () =
  Alcotest.check_raises "to_int on str" (Value.Type_error "expected int, got \"a\"")
    (fun () -> ignore (Value.to_int (Value.str "a")));
  Alcotest.check_raises "to_pair on int" (Value.Type_error "expected pair, got 3") (fun () ->
    ignore (Value.to_pair (Value.int 3)))

let test_ordering_constructors () =
  (* Unit < Bool < Int < Str < Pair < List *)
  let chain =
    [
      Value.Unit;
      Value.Bool false;
      Value.Int 0;
      Value.Str "";
      Value.Pair (Value.Unit, Value.Unit);
      Value.List [];
    ]
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          let c = Value.compare a b in
          if i < j then Alcotest.(check bool) "lt" true (c < 0)
          else if i = j then Alcotest.(check int) "eq" 0 c
          else Alcotest.(check bool) "gt" true (c > 0))
        chain)
    chain

let test_sets () =
  let s = Value.set_of_list [ Value.int 3; Value.int 1; Value.int 3; Value.int 2 ] in
  v "set_of_list dedups and sorts" s (Value.of_int_list [ 1; 2; 3 ]);
  Alcotest.(check bool) "mem" true (Value.set_mem (Value.int 2) s);
  Alcotest.(check bool) "not mem" false (Value.set_mem (Value.int 9) s);
  v "add existing" (Value.set_add (Value.int 2) s) s;
  v "add new" (Value.set_add (Value.int 0) s) (Value.of_int_list [ 0; 1; 2; 3 ]);
  v "remove" (Value.set_remove (Value.int 2) s) (Value.of_int_list [ 1; 3 ]);
  v "union"
    (Value.set_union s (Value.of_int_list [ 0; 2; 4 ]))
    (Value.of_int_list [ 0; 1; 2; 3; 4 ]);
  Alcotest.(check int) "cardinal" 3 (Value.set_cardinal s);
  Alcotest.(check bool) "subset" true (Value.set_subset (Value.of_int_list [ 1; 3 ]) s);
  Alcotest.(check bool) "not subset" false (Value.set_subset (Value.of_int_list [ 1; 4 ]) s);
  Alcotest.(check bool) "empty subset" true (Value.set_subset Value.set_empty s)

let test_maps () =
  let m = Value.map_add (Value.int 2) (Value.str "b") Value.map_empty in
  let m = Value.map_add (Value.int 1) (Value.str "a") m in
  Alcotest.(check (option string))
    "find 1" (Some "a")
    (Option.map Value.to_str (Value.map_find (Value.int 1) m));
  Alcotest.(check (option string))
    "find missing" None
    (Option.map Value.to_str (Value.map_find (Value.int 9) m));
  v "get default" (Value.map_get ~default:Value.unit (Value.int 9) m) Value.unit;
  let m2 = Value.map_add (Value.int 1) (Value.str "z") m in
  Alcotest.(check (option string))
    "overwrite" (Some "z")
    (Option.map Value.to_str (Value.map_find (Value.int 1) m2));
  Alcotest.(check int) "bindings sorted" 1
    (Value.to_int (fst (List.hd (Value.map_bindings m))));
  let m3 = Value.map_remove (Value.int 1) m in
  Alcotest.(check (option string))
    "removed" None
    (Option.map Value.to_str (Value.map_find (Value.int 1) m3))

let test_map_canonical () =
  (* Insertion order must not affect the representation. *)
  let m1 =
    Value.map_add (Value.int 1) (Value.str "a")
      (Value.map_add (Value.int 2) (Value.str "b") Value.map_empty)
  in
  let m2 =
    Value.map_add (Value.int 2) (Value.str "b")
      (Value.map_add (Value.int 1) (Value.str "a") Value.map_empty)
  in
  v "insertion order irrelevant" m1 m2

let test_queues () =
  let q = Value.queue_push (Value.int 2) (Value.queue_push (Value.int 1) Value.queue_empty) in
  Alcotest.(check int) "length" 2 (Value.queue_length q);
  Alcotest.(check bool) "not empty" false (Value.queue_is_empty q);
  (match Value.queue_pop q with
  | Some (x, rest) ->
    v "FIFO head" x (Value.int 1);
    (match Value.queue_pop rest with
    | Some (y, rest2) ->
      v "FIFO second" y (Value.int 2);
      Alcotest.(check bool) "drained" true (Value.queue_is_empty rest2)
    | None -> Alcotest.fail "expected second element")
  | None -> Alcotest.fail "expected head");
  Alcotest.(check bool) "pop empty" true (Value.queue_pop Value.queue_empty = None)

let test_pp () =
  Alcotest.(check string) "pp pair" "(1, true)" (Value.to_string (Value.pair (Value.int 1) (Value.bool true)));
  Alcotest.(check string) "pp unit" "()" (Value.to_string Value.unit);
  Alcotest.(check string) "pp list" "[1; 2]" (Value.to_string (Value.of_int_list [ 1; 2 ]))

(* Properties *)

let prop_compare_refl = qtest "compare reflexive" value_gen (fun a -> Value.compare a a = 0)

let prop_compare_antisym =
  qtest "compare antisymmetric" QCheck2.Gen.(pair value_gen value_gen) (fun (a, b) ->
    let c1 = Value.compare a b and c2 = Value.compare b a in
    (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_compare_trans =
  qtest "compare transitive" QCheck2.Gen.(triple value_gen value_gen value_gen)
    (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0 && Value.compare x z <= 0
      | _ -> false)

let prop_hash_consistent =
  qtest "equal implies same hash" QCheck2.Gen.(pair value_gen value_gen) (fun (a, b) ->
    (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_set_model =
  qtest "set ops match a model" ~count:300
    QCheck2.Gen.(list_size (int_bound 12) (int_bound 8))
    (fun xs ->
      let s = Value.set_of_list (List.map Value.int xs) in
      let model = List.sort_uniq Int.compare xs in
      List.map Value.to_int (Value.set_elements s) = model
      && Value.set_cardinal s = List.length model)

let prop_set_add_mem =
  qtest "set_add then mem" QCheck2.Gen.(pair (int_bound 20) (list_size (int_bound 10) (int_bound 20)))
    (fun (x, xs) ->
      let s = Value.set_of_list (List.map Value.int xs) in
      Value.set_mem (Value.int x) (Value.set_add (Value.int x) s))

let prop_map_model =
  qtest "map_add/find match assoc model" ~count:300
    QCheck2.Gen.(list_size (int_bound 12) (pair (int_bound 6) (int_bound 50)))
    (fun kvs ->
      let m =
        List.fold_left
          (fun m (k, v) -> Value.map_add (Value.int k) (Value.int v) m)
          Value.map_empty kvs
      in
      let model k =
        List.fold_left (fun acc (k', v) -> if k = k' then Some v else acc) None kvs
      in
      List.for_all
        (fun k ->
          Option.map Value.to_int (Value.map_find (Value.int k) m) = model k)
        (List.init 7 Fun.id))

let prop_queue_fifo =
  qtest "queue is FIFO" QCheck2.Gen.(list_size (int_bound 10) (int_bound 100)) (fun xs ->
    let q = List.fold_left (fun q x -> Value.queue_push (Value.int x) q) Value.queue_empty xs in
    let rec drain q acc =
      match Value.queue_pop q with
      | None -> List.rev acc
      | Some (x, rest) -> drain rest (Value.to_int x :: acc)
    in
    drain q [] = xs)

let suite =
  ( "value",
    [
      Alcotest.test_case "constructors" `Quick test_constructors;
      Alcotest.test_case "destructors" `Quick test_destructors;
      Alcotest.test_case "type errors" `Quick test_type_errors;
      Alcotest.test_case "constructor ordering" `Quick test_ordering_constructors;
      Alcotest.test_case "sets" `Quick test_sets;
      Alcotest.test_case "maps" `Quick test_maps;
      Alcotest.test_case "map canonical form" `Quick test_map_canonical;
      Alcotest.test_case "queues" `Quick test_queues;
      Alcotest.test_case "pretty-printing" `Quick test_pp;
      prop_compare_refl;
      prop_compare_antisym;
      prop_compare_trans;
      prop_hash_consistent;
      prop_set_model;
      prop_set_add_mem;
      prop_map_model;
      prop_queue_fifo;
    ] )
