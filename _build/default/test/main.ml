let () =
  Alcotest.run "boosting"
    [
      Test_value.suite;
      Test_ioa.suite;
      Test_seq_types.suite;
      Test_service_types.suite;
      Test_canonical.suite;
      Test_model.suite;
      Test_graph_valence.suite;
      Test_hook.suite;
      Test_similarity_commute.suite;
      Test_counterexample.suite;
      Test_positive.suite;
      Test_tob.suite;
      Test_fd_services.suite;
      Test_axioms.suite;
      Test_cn2.suite;
      Test_lemmas.suite;
      Test_to_ioa.suite;
      Test_abcast.suite;
      Test_more_types.suite;
      Test_mp_universal_lin.suite;
      Test_fair_run.suite;
      Test_fuzz.suite;
      Test_rename.suite;
    ]
