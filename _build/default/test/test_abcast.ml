(* Atomic broadcast (failure-aware ordered delivery): one agreed stream of
   messages and crash announcements at every endpoint; crash announcements
   are accurate and precede later messages consistently. *)

open Ioa
open Helpers
open Protocols.Proto_util

let ab_id = "ab"

(* A replica logging everything delivered, broadcasting its input once. *)
let replica pid =
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = ab_id;
          op = Services.Atomic_broadcast.bcast (field s 0);
          next = st "sent" [ field s 1 ];
        }
    else Model.Process.Internal s
  in
  let on_init s v = if is "ready" s then st "have" [ v; field s 0 ] else s in
  let on_response s ~service b =
    if String.equal service ab_id then begin
      let log = if is "have" s then field s 1 else field s 0 in
      let log = Value.queue_push b log in
      if is "have" s then st "have" [ field s 0; log ] else st (tag s) [ log ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "ready" [ Value.queue_empty ]) ~step ~on_init
    ~on_response ()

let log_of (s : Model.State.t) pid =
  let ps = s.Model.State.procs.(pid) in
  Value.to_list (if is "have" ps then field ps 1 else field ps 0)

let system ~n ~f =
  let endpoints = List.init n Fun.id in
  let ab =
    Model.Service.general ~id:ab_id ~endpoints ~f
      (Services.Atomic_broadcast.make ~endpoints
         ~alphabet:(List.map Value.int endpoints))
  in
  Model.System.make ~processes:(List.init n replica) ~services:[ ab ]

let is_prefix xs ys =
  let rec go xs ys =
    match xs, ys with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> Value.equal x y && go xs' ys'
  in
  go xs ys

let test_one_agreed_stream () =
  let sys = system ~n:3 ~f:2 in
  let final, _, _ = run_rr ~faults:[ (25, 1) ] sys [ 0; 1; 2 ] in
  let survivors = [ 0; 2 ] in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if i < j then begin
            let li = log_of final i and lj = log_of final j in
            Alcotest.(check bool) "streams prefix-comparable" true
              (is_prefix li lj || is_prefix lj li)
          end)
        survivors)
    survivors

let test_crash_announced () =
  let sys = system ~n:3 ~f:2 in
  let final, _, _ = run_rr ~faults:[ (10, 1) ] sys [ 0; 1; 2 ] in
  List.iter
    (fun pid ->
      let crashes =
        List.filter Services.Atomic_broadcast.is_crashed (log_of final pid)
      in
      Alcotest.(check (list int)) "exactly the real crash announced" [ 1 ]
        (List.map Services.Atomic_broadcast.crashed_endpoint crashes))
    [ 0; 2 ]

let test_crash_accuracy () =
  (* Failure-free: no crash announcements ever. *)
  let sys = system ~n:3 ~f:2 in
  let final, _, _ = run_rr sys [ 0; 1; 2 ] in
  List.iter
    (fun pid ->
      Alcotest.(check int) "no spurious crashes" 0
        (List.length (List.filter Services.Atomic_broadcast.is_crashed (log_of final pid))))
    [ 0; 1; 2 ]

let test_crash_positions_agree () =
  (* The position of a crash announcement relative to messages is part of
     the agreed order: identical across survivors. *)
  let sys = system ~n:3 ~f:2 in
  List.iter
    (fun seed ->
      let exec0 = initialized sys (int_inputs [ 0; 1; 2 ]) in
      let sched = Model.Scheduler.random ~seed ~fail_prob:0.05 ~max_failures:1 sys in
      let exec, _ = Model.Scheduler.run ~max_steps:4_000 sys exec0 sched in
      let final = Model.Exec.last_state exec in
      let alive =
        List.filter (fun i -> not (Spec.Iset.mem i final.Model.State.failed)) [ 0; 1; 2 ]
      in
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if i < j then begin
                let li = log_of final i and lj = log_of final j in
                Alcotest.(check bool) "prefix-comparable with crashes interleaved" true
                  (is_prefix li lj || is_prefix lj li)
              end)
            alive)
        alive)
    (List.init 10 Fun.id)

let test_silenced_past_resilience () =
  (* f = 0: a single failure allows total silence — no announcement even of
     that very failure. *)
  let sys = system ~n:3 ~f:0 in
  let final, _, _ =
    run_rr ~policy:Model.System.dummy_policy ~faults:[ (0, 0) ] sys [ 0; 1; 2 ]
  in
  List.iter
    (fun pid -> Alcotest.(check int) "silenced" 0 (List.length (log_of final pid)))
    [ 1; 2 ]

let test_delta_semantics () =
  let ab = Services.Atomic_broadcast.make ~endpoints:[ 0; 1 ] ~alphabet:[ Value.int 0 ] in
  let v0 = List.hd ab.Spec.General_type.initials in
  (* Identity on empty state. *)
  (match ab.Spec.General_type.delta_glob "g" v0 ~failed:Spec.Iset.empty with
  | [ ([], v) ] -> Alcotest.check value_testable "identity" v0 v
  | _ -> Alcotest.fail "expected identity");
  (* Crash announcement preferred over message delivery. *)
  let _, v1 =
    List.hd
      (ab.Spec.General_type.delta_inv (Services.Atomic_broadcast.bcast (Value.int 0)) 1 v0
         ~failed:Spec.Iset.empty)
  in
  match ab.Spec.General_type.delta_glob "g" v1 ~failed:(Spec.Iset.of_list [ 0 ]) with
  | [ (rmap, v2) ] ->
    List.iter
      (fun (_, rs) ->
        match rs with
        | [ r ] ->
          Alcotest.(check bool) "crash first" true (Services.Atomic_broadcast.is_crashed r)
        | _ -> Alcotest.fail "one response per endpoint")
      rmap;
    (* Second turn delivers the message. *)
    (match ab.Spec.General_type.delta_glob "g" v2 ~failed:(Spec.Iset.of_list [ 0 ]) with
    | [ (rmap2, _) ] ->
      List.iter
        (fun (_, rs) ->
          match rs with
          | [ r ] ->
            Alcotest.(check bool) "then message" true (Services.Atomic_broadcast.is_rcv r)
          | _ -> Alcotest.fail "one response per endpoint")
        rmap2
    | _ -> Alcotest.fail "expected delivery")
  | _ -> Alcotest.fail "expected announcement"

let suite =
  ( "atomic-broadcast",
    [
      Alcotest.test_case "one agreed stream" `Quick test_one_agreed_stream;
      Alcotest.test_case "crash announced to survivors" `Quick test_crash_announced;
      Alcotest.test_case "no spurious crash announcements" `Quick test_crash_accuracy;
      Alcotest.test_case "crash positions agree" `Quick test_crash_positions_agree;
      Alcotest.test_case "silenced past resilience" `Quick test_silenced_past_resilience;
      Alcotest.test_case "δ semantics" `Quick test_delta_semantics;
    ] )
