(* Unit tests for the action-renaming combinator. *)

open Ioa
module SN = Services.Sig_names

let spec () = Model.To_ioa.consensus_spec (Protocols.Direct.system ~n:2 ~f:1) ~f:1

let test_kinds_translated () =
  let a = spec () in
  Alcotest.(check bool) "renamed invocation is an input" true
    (a.Automaton.classify (SN.init 0 (Value.int 1)) = Some Automaton.Input);
  Alcotest.(check bool) "renamed response is an output" true
    (a.Automaton.classify (SN.decide 1 (Value.int 0)) = Some Automaton.Output);
  (* The original (pre-rename) names are no longer in the signature... they
     ARE, because backward maps only init/decide; invoke/respond on the spec
     object remain internal-ish members of the signature under their own
     names only if backward maps them to themselves — which it does, so the
     original external names still classify. The renamed interface is a
     superset; what matters is that the renamed actions behave like the
     originals. *)
  Alcotest.(check bool) "fail still an input" true
    (a.Automaton.classify (SN.fail 0) = Some Automaton.Input)

let test_transitions_follow_rename () =
  let a = spec () in
  let s0 = List.hd a.Automaton.start in
  match a.Automaton.step s0 (SN.init 0 (Value.int 1)) with
  | [ s1 ] -> (
    (* Perform, then the renamed decide is deliverable. *)
    match a.Automaton.step s1 (SN.perform 0 "spec") with
    | [ s2 ] ->
      Alcotest.(check int) "renamed response enabled" 1
        (List.length (a.Automaton.step s2 (SN.decide 0 (Value.int 1))));
      Alcotest.(check int) "wrong renamed response disabled" 0
        (List.length (a.Automaton.step s2 (SN.decide 0 (Value.int 0))))
    | _ -> Alcotest.fail "perform")
  | _ -> Alcotest.fail "renamed invocation not accepted"

let test_tasks_emit_renamed_actions () =
  let a = spec () in
  let s0 = List.hd a.Automaton.start in
  let s1 =
    match a.Automaton.step s0 (SN.init 1 (Value.int 0)) with
    | [ s ] -> s
    | _ -> Alcotest.fail "init"
  in
  let s2 =
    match a.Automaton.step s1 (SN.perform 1 "spec") with
    | [ s ] -> s
    | _ -> Alcotest.fail "perform"
  in
  let output_task =
    List.find (fun t -> String.equal t.Task.label "spec.output[1]") a.Automaton.tasks
  in
  match output_task.Task.enabled s2 with
  | [ act ] ->
    Alcotest.(check string) "task offers the renamed action" "decide" (Action.name act)
  | _ -> Alcotest.fail "expected exactly one enabled output"

let suite =
  ( "rename",
    [
      Alcotest.test_case "kinds translated" `Quick test_kinds_translated;
      Alcotest.test_case "transitions follow rename" `Quick test_transitions_follow_rename;
      Alcotest.test_case "tasks emit renamed actions" `Quick test_tasks_emit_renamed_actions;
    ] )
