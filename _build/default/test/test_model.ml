(* Tests for the complete-system model (§2.2): state updates, service
   descriptors, system construction, transition semantics per task class,
   the dummy/real policies, participants, executions and schedulers. *)

open Ioa
open Helpers

let consensus = Spec.Seq_consensus.make ()

let sys2 f = Protocols.Direct.system ~n:2 ~f
let cons_task sys name = Model.System.service_pos sys name

(* --- State --- *)

let test_state_updates () =
  let sys = sys2 0 in
  let s = Model.System.initial_state sys in
  let s1 = Model.State.with_proc s 0 (Value.str "x") in
  Alcotest.(check bool) "with_proc differs" false (Model.State.equal s s1);
  Alcotest.check value_testable "proc updated" (Value.str "x") s1.Model.State.procs.(0);
  Alcotest.check value_testable "other proc untouched" s.Model.State.procs.(1)
    s1.Model.State.procs.(1);
  let s2 = Model.State.with_decision s 1 (Value.int 0) in
  Alcotest.(check int) "decision recorded" 1 (List.length (Model.State.decided_pairs s2));
  let s3 = Model.State.with_failed s (Spec.Iset.of_list [ 1 ]) in
  Alcotest.check iset_testable "failed set" (Spec.Iset.of_list [ 1 ]) s3.Model.State.failed

let test_state_hash_equal () =
  let sys = sys2 0 in
  let s = Model.System.initial_state sys in
  let s' = Model.System.initial_state sys in
  Alcotest.(check bool) "fresh initial states equal" true (Model.State.equal s s');
  Alcotest.(check bool) "equal implies same hash" true
    (Model.State.hash s = Model.State.hash s');
  Alcotest.(check int) "compare zero" 0 (Model.State.compare s s')

let test_svc_buffers () =
  let svc = { Model.State.value = Value.unit; inv_bufs = [| [] |]; resp_bufs = [| [] |] } in
  let svc = Model.State.svc_push_inv svc ~pos:0 (Value.int 1) in
  let svc = Model.State.svc_push_inv svc ~pos:0 (Value.int 2) in
  (match Model.State.svc_pop_inv svc ~pos:0 with
  | Some (v, svc') ->
    Alcotest.check value_testable "FIFO inv" (Value.int 1) v;
    (match Model.State.svc_pop_inv svc' ~pos:0 with
    | Some (v2, _) -> Alcotest.check value_testable "FIFO inv 2" (Value.int 2) v2
    | None -> Alcotest.fail "second pop")
  | None -> Alcotest.fail "pop");
  let svc = Model.State.svc_push_resp svc ~pos:0 (Value.int 9) in
  (match Model.State.svc_pop_resp svc ~pos:0 with
  | Some (v, _) -> Alcotest.check value_testable "resp" (Value.int 9) v
  | None -> Alcotest.fail "resp pop")

let test_svc_coalesce () =
  let svc = { Model.State.value = Value.unit; inv_bufs = [| [] |]; resp_bufs = [| [] |] } in
  let svc = Model.State.svc_push_resp ~coalesce:true svc ~pos:0 (Value.int 1) in
  let svc = Model.State.svc_push_resp ~coalesce:true svc ~pos:0 (Value.int 1) in
  Alcotest.(check int) "duplicate tail coalesced" 1 (List.length svc.Model.State.resp_bufs.(0));
  let svc = Model.State.svc_push_resp ~coalesce:true svc ~pos:0 (Value.int 2) in
  let svc = Model.State.svc_push_resp ~coalesce:true svc ~pos:0 (Value.int 1) in
  Alcotest.(check int) "distinct values kept" 3 (List.length svc.Model.State.resp_bufs.(0))

(* --- Service descriptors --- *)

let test_service_descriptor () =
  let c = Model.Service.atomic ~id:"c" ~endpoints:[ 2; 0; 2 ] ~f:1 consensus in
  Alcotest.(check (list int)) "endpoints sorted+deduped" [ 0; 2 ]
    (Array.to_list c.Model.Service.endpoints);
  Alcotest.(check (option int)) "pos of 2" (Some 1) (Model.Service.endpoint_pos c 2);
  Alcotest.(check (option int)) "pos of 1" None (Model.Service.endpoint_pos c 1);
  Alcotest.(check bool) "wait-free (f=1, |J|=2)" true (Model.Service.is_wait_free c);
  Alcotest.check iset_testable "failed endpoints"
    (Spec.Iset.of_list [ 2 ])
    (Model.Service.failed_endpoints c (Spec.Iset.of_list [ 1; 2 ]));
  Alcotest.(check bool) "not connected to all of 3" false (Model.Service.connected_to_all c ~n:3)

let test_register_descriptor () =
  let r =
    Model.Service.register ~id:"r" ~endpoints:[ 0; 1; 2 ]
      (Spec.Seq_register.make ~values:[ Value.int 0 ] ~initial:(Value.int 0))
  in
  Alcotest.(check int) "wait-free resilience" 2 r.Model.Service.resilience;
  Alcotest.(check bool) "register class" true (r.Model.Service.cls = Model.Service.Register)

(* --- System construction --- *)

let test_system_validation () =
  let p0 = Model.Process.idle ~pid:0 in
  let bad_pid = Model.Process.idle ~pid:5 in
  Alcotest.check_raises "pid mismatch"
    (Invalid_argument "System.make: process at position 0 has pid 5") (fun () ->
    ignore (Model.System.make ~processes:[ bad_pid ] ~services:[]));
  let c = Model.Service.atomic ~id:"c" ~endpoints:[ 0; 7 ] ~f:0 consensus in
  Alcotest.check_raises "endpoint out of range"
    (Invalid_argument "System.make: service c endpoint 7 out of range") (fun () ->
    ignore (Model.System.make ~processes:[ p0 ] ~services:[ c ]));
  let c0 = Model.Service.atomic ~id:"c" ~endpoints:[ 0 ] ~f:0 consensus in
  Alcotest.check_raises "duplicate service"
    (Invalid_argument "System.make: duplicate service id c") (fun () ->
    ignore (Model.System.make ~processes:[ p0 ] ~services:[ c0; c0 ]))

let test_task_enumeration () =
  let sys = sys2 0 in
  (* 2 proc tasks + (2 perform + 2 output) for the single service. *)
  Alcotest.(check int) "task count" 6 (Array.length sys.Model.System.tasks)

let test_initialize () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  Alcotest.(check bool) "inputs recorded" true
    (s.Model.State.inputs.(0) = Some (Value.int 1) && s.Model.State.inputs.(1) = Some (Value.int 0));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "System.initialize: need one input per process") (fun () ->
    ignore (Model.System.initialize sys [ Value.int 1 ]))

(* --- Transitions --- *)

let test_proc_transition_flow () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  (* P0's task: invoke. *)
  (match Model.System.transition sys s (Model.Task.Proc 0) with
  | Some (Model.Event.Invoke (0, "cons", op), s1) ->
    Alcotest.check value_testable "init op" (Spec.Seq_consensus.init 1) op;
    let k = cons_task sys "cons" in
    Alcotest.(check int) "invocation buffered" 1
      (List.length s1.Model.State.svcs.(k).Model.State.inv_bufs.(0));
    (* perform then respond then P0 decides. *)
    (match Model.System.transition sys s1 (Model.Task.Svc_perform { svc = k; endpoint = 0 }) with
    | Some (Model.Event.Perform ("cons", 0), s2) -> (
      match Model.System.transition sys s2 (Model.Task.Svc_output { svc = k; endpoint = 0 }) with
      | Some (Model.Event.Respond (0, "cons", b), s3) -> (
        Alcotest.check value_testable "decide resp" (Spec.Seq_consensus.decide 1) b;
        match Model.System.transition sys s3 (Model.Task.Proc 0) with
        | Some (Model.Event.Decide (0, v), s4) ->
          Alcotest.check value_testable "decision value" (Value.int 1) v;
          Alcotest.(check bool) "recorded" true (s4.Model.State.decisions.(0) = Some (Value.int 1))
        | _ -> Alcotest.fail "expected Decide")
      | _ -> Alcotest.fail "expected Respond")
    | _ -> Alcotest.fail "expected Perform")
  | _ -> Alcotest.fail "expected Invoke")

let test_perform_disabled_without_invocation () =
  let sys = sys2 0 in
  let s = Model.System.initial_state sys in
  let k = cons_task sys "cons" in
  Alcotest.(check bool) "perform disabled" false
    (Model.System.enabled sys s (Model.Task.Svc_perform { svc = k; endpoint = 0 }));
  Alcotest.(check bool) "output disabled" false
    (Model.System.enabled sys s (Model.Task.Svc_output { svc = k; endpoint = 0 }));
  Alcotest.(check bool) "proc always enabled" true
    (Model.System.enabled sys s (Model.Task.Proc 0))

let test_failed_process_dummy () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  let _, s = Model.System.apply_fail sys s 0 in
  match Model.System.transition sys s (Model.Task.Proc 0) with
  | Some (Model.Event.Dummy (Model.Task.Proc 0), s') ->
    Alcotest.(check bool) "state unchanged" true (Model.State.equal s s')
  | _ -> Alcotest.fail "failed process must take dummy steps"

let test_policy_silencing () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  (* P0 invokes, then P0 fails: the 0-resilient object is over budget. *)
  let s =
    match Model.System.transition sys s (Model.Task.Proc 0) with
    | Some (_, s) -> s
    | None -> Alcotest.fail "invoke"
  in
  let _, s = Model.System.apply_fail sys s 0 in
  let k = cons_task sys "cons" in
  let perform0 = Model.Task.Svc_perform { svc = k; endpoint = 0 } in
  (* Real-preferring: the pending invocation is still performed. *)
  (match Model.System.transition ~policy:Model.System.real_policy sys s perform0 with
  | Some (Model.Event.Perform _, _) -> ()
  | _ -> Alcotest.fail "real policy should perform");
  (* Dummy-preferring: the adversary silences it. *)
  (match Model.System.transition ~policy:Model.System.dummy_policy sys s perform0 with
  | Some (Model.Event.Dummy _, s') ->
    Alcotest.(check bool) "dummy no-op" true (Model.State.equal s s')
  | _ -> Alcotest.fail "dummy policy should take dummy");
  (* Endpoint 1's tasks are also silenceable: budget exceeded. *)
  let perform1 = Model.Task.Svc_perform { svc = k; endpoint = 1 } in
  match Model.System.transition ~policy:Model.System.dummy_policy sys s perform1 with
  | Some (Model.Event.Dummy _, _) -> ()
  | _ -> Alcotest.fail "budget-exceeded service should be silenceable at live endpoints"

let test_resilient_service_not_silenceable () =
  let sys = sys2 1 in
  (* wait-free object *)
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  let s =
    match Model.System.transition sys s (Model.Task.Proc 1) with
    | Some (_, s) -> s
    | None -> Alcotest.fail "invoke"
  in
  let _, s = Model.System.apply_fail sys s 0 in
  let k = cons_task sys "cons" in
  (* P1 alive, budget not exceeded: dummy not available for endpoint 1. *)
  match
    Model.System.transition ~policy:Model.System.dummy_policy sys s
      (Model.Task.Svc_perform { svc = k; endpoint = 1 })
  with
  | Some (Model.Event.Perform _, _) -> ()
  | _ -> Alcotest.fail "wait-free object must keep serving live endpoints"

let test_silence_policy_selective () =
  let sys = sys2 0 in
  let k = cons_task sys "cons" in
  let p = Model.System.silence_policy ~silenced:(fun svc -> svc = k) in
  Alcotest.(check bool) "service task dummied" true
    (p (Model.Task.Svc_perform { svc = k; endpoint = 0 }) = Model.System.Prefer_dummy);
  Alcotest.(check bool) "proc task real" true (p (Model.Task.Proc 0) = Model.System.Prefer_real)

let test_participants () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  let k = cons_task sys "cons" in
  (* Invoke: process + service. *)
  (match Model.System.participants sys s (Model.Task.Proc 0) with
  | [ Model.System.P 0; Model.System.S k' ] -> Alcotest.(check int) "svc" k k'
  | _ -> Alcotest.fail "invoke participants");
  let s1 =
    match Model.System.transition sys s (Model.Task.Proc 0) with
    | Some (_, s) -> s
    | None -> assert false
  in
  (* Perform: service only. *)
  (match Model.System.participants sys s1 (Model.Task.Svc_perform { svc = k; endpoint = 0 }) with
  | [ Model.System.S k' ] -> Alcotest.(check int) "svc only" k k'
  | _ -> Alcotest.fail "perform participants");
  (* Disabled task: no participants. *)
  Alcotest.(check int) "disabled" 0
    (List.length (Model.System.participants sys s (Model.Task.Svc_output { svc = k; endpoint = 0 })))

(* --- Executions --- *)

let test_exec_replay_and_strip () =
  let sys = sys2 0 in
  let exec = initialized sys (int_inputs [ 1; 0 ]) in
  Alcotest.(check bool) "failure-free" true (Model.Exec.is_failure_free exec);
  Alcotest.(check int) "two inits" 2 (Model.Exec.length exec);
  let k = cons_task sys "cons" in
  let tasks =
    [
      Model.Task.Proc 0;
      Model.Task.Svc_perform { svc = k; endpoint = 0 };
      Model.Task.Svc_output { svc = k; endpoint = 0 };
      Model.Task.Proc 0;
    ]
  in
  (match Model.Exec.replay_tasks sys exec tasks with
  | Some exec2 ->
    Alcotest.(check int) "replayed" 6 (Model.Exec.length exec2);
    Alcotest.(check (list (pair int int)))
      "decide event" [ 0, 1 ]
      (List.map (fun (i, v) -> i, Value.to_int v) (Model.Exec.decide_events exec2));
    Alcotest.(check int) "task labels" 4 (List.length (Model.Exec.task_labels exec2));
    (* strip with keep = everything-but-P0 drops two steps *)
    let kept =
      Model.Exec.strip exec2 ~keep:(fun st ->
        match st.Model.Exec.label with Model.Exec.L_task (Model.Task.Proc 0) -> false | _ -> true)
    in
    Alcotest.(check int) "stripped" 2 (List.length kept)
  | None -> Alcotest.fail "replay failed");
  (* replaying an inapplicable task fails *)
  Alcotest.(check bool) "inapplicable replay" true
    (Model.Exec.replay_tasks sys exec [ Model.Task.Svc_perform { svc = k; endpoint = 0 } ] = None)

let test_exec_fail_label () =
  let sys = sys2 0 in
  let exec = initialized sys (int_inputs [ 1; 0 ]) in
  let exec = Model.Exec.append_fail sys exec 1 in
  Alcotest.(check bool) "not failure-free" false (Model.Exec.is_failure_free exec);
  Alcotest.check iset_testable "failed in state" (Spec.Iset.of_list [ 1 ])
    (Model.Exec.last_state exec).Model.State.failed

(* --- Schedulers --- *)

let test_round_robin_decides () =
  let sys = sys2 0 in
  let final, outcome, exec = run_rr sys [ 1; 0 ] in
  (match outcome with
  | Model.Scheduler.Scheduler_stop | Model.Scheduler.Stopped -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Model.Scheduler.pp_outcome o);
  let r = Model.Properties.check final in
  Alcotest.(check bool) "consensus reached" true
    (r.Model.Properties.agreement && r.Model.Properties.validity && r.Model.Properties.termination);
  Alcotest.(check bool) "per-process agreement" true (Model.Properties.per_process_agreement exec)

let test_round_robin_fault_injection () =
  let sys = sys2 1 in
  (* wait-free object: survivor decides despite a failure *)
  let final, _, _ = run_rr ~faults:[ (0, 0) ] sys [ 1; 0 ] in
  Alcotest.(check bool) "P0 failed" true (Spec.Iset.mem 0 final.Model.State.failed);
  Alcotest.(check bool) "survivor decided" true (Option.is_some final.Model.State.decisions.(1));
  Alcotest.(check bool) "termination (modified)" true (Model.Properties.termination final)

let test_random_scheduler_reproducible () =
  let sys = sys2 0 in
  let s1, _, e1 = run_random ~seed:42 ~stop_when:Model.Properties.termination sys [ 1; 0 ] in
  let s2, _, e2 = run_random ~seed:42 ~stop_when:Model.Properties.termination sys [ 1; 0 ] in
  Alcotest.check state_testable "same seed, same state" s1 s2;
  Alcotest.(check int) "same length" (Model.Exec.length e1) (Model.Exec.length e2)

let test_random_scheduler_decides () =
  let sys = sys2 0 in
  List.iter
    (fun seed ->
      let final, _, _ = run_random ~seed ~stop_when:Model.Properties.termination sys [ 0; 1 ] in
      let r = Model.Properties.check final in
      Alcotest.(check bool) "consensus ok" true
        (r.Model.Properties.agreement && r.Model.Properties.validity && r.Model.Properties.termination))
    [ 1; 2; 3; 4; 5 ]

(* --- Properties --- *)

let test_properties_checks () =
  let sys = sys2 0 in
  let s = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  Alcotest.(check bool) "vacuous agreement" true (Model.Properties.agreement s);
  Alcotest.(check bool) "no termination yet" false (Model.Properties.termination s);
  let s1 = Model.State.with_decision s 0 (Value.int 1) in
  let s2 = Model.State.with_decision s1 1 (Value.int 0) in
  Alcotest.(check bool) "disagreement detected" false (Model.Properties.agreement s2);
  Alcotest.(check bool) "2-agreement ok" true (Model.Properties.agreement ~k:2 s2);
  Alcotest.(check bool) "validity ok (both inputs)" true (Model.Properties.validity s2);
  let s3 = Model.State.with_decision s 0 (Value.int 7) in
  Alcotest.(check bool) "invalid decision detected" false (Model.Properties.validity s3);
  Alcotest.(check bool) "termination after both decide" true (Model.Properties.termination s2);
  (* failed process exempt from termination *)
  let s4 = Model.State.with_failed s1 (Spec.Iset.of_list [ 1 ]) in
  Alcotest.(check bool) "failed exempt" true (Model.Properties.termination s4)

let suite =
  ( "model",
    [
      Alcotest.test_case "state updates" `Quick test_state_updates;
      Alcotest.test_case "state hash/equal" `Quick test_state_hash_equal;
      Alcotest.test_case "service buffers" `Quick test_svc_buffers;
      Alcotest.test_case "coalescing" `Quick test_svc_coalesce;
      Alcotest.test_case "service descriptor" `Quick test_service_descriptor;
      Alcotest.test_case "register descriptor" `Quick test_register_descriptor;
      Alcotest.test_case "system validation" `Quick test_system_validation;
      Alcotest.test_case "task enumeration" `Quick test_task_enumeration;
      Alcotest.test_case "initialize" `Quick test_initialize;
      Alcotest.test_case "process transition flow" `Quick test_proc_transition_flow;
      Alcotest.test_case "perform requires invocation" `Quick test_perform_disabled_without_invocation;
      Alcotest.test_case "failed process dummy" `Quick test_failed_process_dummy;
      Alcotest.test_case "policy silencing" `Quick test_policy_silencing;
      Alcotest.test_case "resilient service not silenceable" `Quick test_resilient_service_not_silenceable;
      Alcotest.test_case "selective silence policy" `Quick test_silence_policy_selective;
      Alcotest.test_case "participants" `Quick test_participants;
      Alcotest.test_case "exec replay and strip" `Quick test_exec_replay_and_strip;
      Alcotest.test_case "exec fail label" `Quick test_exec_fail_label;
      Alcotest.test_case "round-robin decides" `Quick test_round_robin_decides;
      Alcotest.test_case "fault injection" `Quick test_round_robin_fault_injection;
      Alcotest.test_case "random scheduler reproducible" `Quick test_random_scheduler_reproducible;
      Alcotest.test_case "random scheduler decides" `Quick test_random_scheduler_decides;
      Alcotest.test_case "property checkers" `Quick test_properties_checks;
    ] )
