(* Tests for the similarity notions (§3.5/§6.3) and the Lemma 8 commutation
   facts, checked mechanically over explored graphs. *)

open Ioa
open Helpers
module E = Engine

let test_identical_states_similar () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  List.iter
    (fun j -> Alcotest.(check bool) "j-similar to itself" true (E.Similarity.j_similar sys ~j s s))
    [ 0; 1 ];
  Alcotest.(check bool) "k-similar to itself" true (E.Similarity.k_similar sys ~k:0 s s);
  Alcotest.(check (list int)) "all j witnesses" [ 0; 1 ] (E.Similarity.j_witnesses sys s s);
  Alcotest.(check (list int)) "all k witnesses" [ 0 ] (E.Similarity.k_witnesses sys s s)

let test_j_similarity_detects_proc_difference () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let s' = Model.State.with_proc s 0 (Value.str "different") in
  Alcotest.(check bool) "0-similar (only P0 differs)" true (E.Similarity.j_similar sys ~j:0 s s');
  Alcotest.(check bool) "not 1-similar" false (E.Similarity.j_similar sys ~j:1 s s');
  Alcotest.(check bool) "not k-similar (procs differ)" false
    (E.Similarity.k_similar sys ~k:0 s s')

let test_k_similarity_detects_service_difference () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let svc = s.Model.State.svcs.(0) in
  let s' = Model.State.with_svc s 0 { svc with Model.State.value = Value.str "x" } in
  Alcotest.(check bool) "k-similar" true (E.Similarity.k_similar sys ~k:0 s s');
  (* A service-value difference is not hidden by any j. *)
  Alcotest.(check (list int)) "no j witnesses" [] (E.Similarity.j_witnesses sys s s')

let test_j_similarity_ignores_j_buffers () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let svc = Model.State.svc_push_inv s.Model.State.svcs.(0) ~pos:0 (Value.int 9) in
  let s' = Model.State.with_svc s 0 svc in
  Alcotest.(check bool) "0-similar (only buffer(0) differs)" true
    (E.Similarity.j_similar sys ~j:0 s s');
  Alcotest.(check bool) "not 1-similar" false (E.Similarity.j_similar sys ~j:1 s s')

let test_decisions_break_similarity () =
  (* The recorded decision is part of the process component (§2.2.1). *)
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let s' = Model.State.with_decision s 1 (Value.int 0) in
  Alcotest.(check bool) "not 0-similar (P1's decision differs)" false
    (E.Similarity.j_similar sys ~j:0 s s');
  Alcotest.(check bool) "1-similar" true (E.Similarity.j_similar sys ~j:1 s s')

let test_general_services_exempt () =
  (* §6.3: failure-aware services are not constrained by similarity. *)
  let sys = Protocols.Fd_allconnected.system ~n:2 ~f:0 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let fd_pos = Model.System.service_pos sys Protocols.Fd_allconnected.fd_id in
  let svc = s.Model.State.svcs.(fd_pos) in
  let s' =
    Model.State.with_svc s fd_pos
      (Model.State.svc_push_resp svc ~pos:0 (Value.str "junk"))
  in
  List.iter
    (fun j ->
      Alcotest.(check bool) "FD state exempt from j-similarity" true
        (E.Similarity.j_similar sys ~j s s'))
    [ 0; 1 ]

let hook_end_states sys =
  match E.Initialization.find_bivalent sys with
  | None -> Alcotest.fail "no bivalent init"
  | Some entry -> (
    let a = entry.E.Initialization.analysis in
    match E.Hook.find a with
    | E.Hook.Hook h ->
      let g = E.Valence.graph a in
      sys, a, h, E.Graph.state g h.E.Hook.alpha0, E.Graph.state g h.E.Hook.alpha1
    | r -> Alcotest.failf "no hook: %a" E.Hook.pp_result r)

let test_hook_endpoints_k_similar_direct () =
  (* Claim 4 case 1: both hook tasks are perform tasks of the consensus
     object, so the endpoint states are k-similar for it. *)
  let sys, _, _, s0, s1 = hook_end_states (Protocols.Direct.system ~n:2 ~f:0) in
  Alcotest.(check (list int)) "k-witness is the object" [ 0 ]
    (E.Similarity.k_witnesses sys s0 s1);
  Alcotest.(check (list int)) "not j-similar" [] (E.Similarity.j_witnesses sys s0 s1)

let test_commute_disjoint_no_violations () =
  List.iter
    (fun sys ->
      match E.Initialization.find_bivalent sys with
      | None -> Alcotest.fail "no bivalent init"
      | Some entry ->
        let violations = E.Commute.check_disjoint entry.E.Initialization.analysis in
        Alcotest.(check int) "no commutation violations" 0 (List.length violations))
    [
      Protocols.Direct.system ~n:2 ~f:0;
      Protocols.Tob_direct.system ~n:2 ~f:0;
      Protocols.Register_vote.system ();
    ]

let test_hook_intersection () =
  let _, a, h, _, _ = hook_end_states (Protocols.Direct.system ~n:2 ~f:0) in
  match E.Commute.check_hook_intersection a h with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_shared_participant () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  (* Before any input, both processes take internal dummy steps: their tasks
     have disjoint participants. *)
  let s0 = Model.System.initial_state sys in
  Alcotest.(check bool) "disjoint idle proc tasks" true
    (E.Commute.shared_participant sys s0 (Model.Task.Proc 0) (Model.Task.Proc 1) = None);
  (* After initialization both are about to invoke the same object: the
     object is a shared participant. *)
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  (match E.Commute.shared_participant sys s (Model.Task.Proc 0) (Model.Task.Proc 1) with
  | Some (Model.System.S 0) -> ()
  | _ -> Alcotest.fail "expected the shared object as common participant");
  (* After P0's invocation is buffered, P1's invoking task and the service's
     perform task share the service. *)
  let s1 =
    match Model.System.transition sys s (Model.Task.Proc 0) with
    | Some (_, s) -> s
    | None -> assert false
  in
  (match
     E.Commute.shared_participant sys s1 (Model.Task.Proc 1)
       (Model.Task.Svc_perform { svc = 0; endpoint = 0 })
   with
  | Some (Model.System.S 0) -> ()
  | _ -> Alcotest.fail "expected shared service participant");
  (* P0 is now waiting (internal step only): disjoint from the perform
     task. *)
  Alcotest.(check bool) "waiting process disjoint from perform" true
    (E.Commute.shared_participant sys s1 (Model.Task.Proc 0)
       (Model.Task.Svc_perform { svc = 0; endpoint = 0 })
    = None)

let suite =
  ( "similarity-commute",
    [
      Alcotest.test_case "identical states similar" `Quick test_identical_states_similar;
      Alcotest.test_case "j-similarity: process difference" `Quick
        test_j_similarity_detects_proc_difference;
      Alcotest.test_case "k-similarity: service difference" `Quick
        test_k_similarity_detects_service_difference;
      Alcotest.test_case "j-similarity ignores j's buffers" `Quick test_j_similarity_ignores_j_buffers;
      Alcotest.test_case "decisions break similarity" `Quick test_decisions_break_similarity;
      Alcotest.test_case "general services exempt (§6.3)" `Quick test_general_services_exempt;
      Alcotest.test_case "hook endpoints k-similar (direct)" `Quick
        test_hook_endpoints_k_similar_direct;
      Alcotest.test_case "disjoint tasks commute" `Quick test_commute_disjoint_no_violations;
      Alcotest.test_case "hook participants intersect" `Quick test_hook_intersection;
      Alcotest.test_case "shared participant" `Quick test_shared_participant;
    ] )
