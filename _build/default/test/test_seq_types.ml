(* Tests for the sequential type library (§2.1.2): totality, determinism,
   per-type semantics, legal sequences, and the §3.1 determinization. *)

open Ioa
open Helpers

let check_total name t =
  match Spec.Seq_type.check_total t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

let consensus = Spec.Seq_consensus.make ()
let kset = Spec.Seq_kset.make ~k:2 ~n:4
let register = Spec.Seq_register.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0)
let tas = Spec.Seq_tas.make ()
let cas = Spec.Seq_cas.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0)
let counter = Spec.Seq_counter.make ()
let queue = Spec.Seq_queue.make ~elements:[ Value.str "a"; Value.str "b" ] ()

let test_totality () =
  check_total "consensus" consensus;
  check_total "kset" kset;
  check_total "register" register;
  check_total "tas" tas;
  check_total "cas" cas;
  check_total "queue" queue

let test_determinism_flags () =
  Alcotest.(check bool) "consensus det" true (Spec.Seq_type.is_deterministic consensus);
  Alcotest.(check bool) "register det" true (Spec.Seq_type.is_deterministic register);
  Alcotest.(check bool) "tas det" true (Spec.Seq_type.is_deterministic tas);
  Alcotest.(check bool) "cas det" true (Spec.Seq_type.is_deterministic cas);
  Alcotest.(check bool) "kset NOT det" false (Spec.Seq_type.is_deterministic kset);
  Alcotest.(check bool) "determinized kset det" true
    (Spec.Seq_type.is_deterministic (Spec.Seq_type.determinize kset))

let test_consensus_semantics () =
  let v0 = List.hd consensus.Spec.Seq_type.initials in
  let r1, v1 = Spec.Seq_type.apply consensus (Spec.Seq_consensus.init 1) v0 in
  Alcotest.(check int) "first init decides itself" 1 (Spec.Seq_consensus.decided_value r1);
  let r2, v2 = Spec.Seq_type.apply consensus (Spec.Seq_consensus.init 0) v1 in
  Alcotest.(check int) "second init gets first value" 1 (Spec.Seq_consensus.decided_value r2);
  Alcotest.check value_testable "value stable" v1 v2

let test_kset_semantics () =
  let v0 = List.hd kset.Spec.Seq_type.initials in
  let outcomes = kset.Spec.Seq_type.delta (Spec.Seq_kset.init 3) v0 in
  Alcotest.(check int) "first init: single outcome" 1 (List.length outcomes);
  let r, v1 = List.hd outcomes in
  Alcotest.(check int) "first decides itself" 3 (Spec.Seq_kset.decided_value r);
  let outcomes2 = kset.Spec.Seq_type.delta (Spec.Seq_kset.init 1) v1 in
  Alcotest.(check int) "second init: two choices" 2 (List.length outcomes2);
  let _, v2 = List.hd outcomes2 in
  (* After k = 2 distinct values, the remembered set is full: a third value
     is not added and every response comes from the set. *)
  let outcomes3 = kset.Spec.Seq_type.delta (Spec.Seq_kset.init 0) v2 in
  List.iter
    (fun (r, v3) ->
      Alcotest.check value_testable "set saturated" v2 v3;
      Alcotest.(check bool) "response from set" true
        (List.mem (Spec.Seq_kset.decided_value r) [ 1; 3 ]))
    outcomes3

let test_register_semantics () =
  let v0 = Value.int 0 in
  let r, v = Spec.Seq_type.apply register Spec.Seq_register.read v0 in
  Alcotest.check value_testable "read returns value" (Value.int 0) (Spec.Seq_register.read_value r);
  Alcotest.check value_testable "read preserves" v0 v;
  let r2, v2 = Spec.Seq_type.apply register (Spec.Seq_register.write (Value.int 1)) v0 in
  Alcotest.check value_testable "write acks" Spec.Seq_register.ack r2;
  Alcotest.check value_testable "write stores" (Value.int 1) v2

let test_tas_semantics () =
  let r, v = Spec.Seq_type.apply tas Spec.Seq_tas.test_and_set (Value.int 0) in
  Alcotest.check value_testable "returns old bit" (Spec.Seq_tas.bit 0) r;
  Alcotest.check value_testable "sets bit" (Value.int 1) v;
  let r2, v2 = Spec.Seq_type.apply tas Spec.Seq_tas.test_and_set v in
  Alcotest.check value_testable "second sees 1" (Spec.Seq_tas.bit 1) r2;
  Alcotest.check value_testable "stays 1" (Value.int 1) v2

let test_cas_semantics () =
  let cas_op = Spec.Seq_cas.cas ~expected:(Value.int 0) ~desired:(Value.int 1) in
  let r, v = Spec.Seq_type.apply cas cas_op (Value.int 0) in
  Alcotest.check value_testable "cas succeeds" (Spec.Seq_cas.ok true) r;
  Alcotest.check value_testable "cas swaps" (Value.int 1) v;
  let r2, v2 = Spec.Seq_type.apply cas cas_op (Value.int 1) in
  Alcotest.check value_testable "cas fails" (Spec.Seq_cas.ok false) r2;
  Alcotest.check value_testable "cas leaves" (Value.int 1) v2

let test_counter_semantics () =
  let r, v = Spec.Seq_type.apply counter Spec.Seq_counter.increment (Value.int 0) in
  Alcotest.check value_testable "returns pre-increment" (Spec.Seq_counter.count 0) r;
  Alcotest.check value_testable "incremented" (Value.int 1) v;
  let r2, _ = Spec.Seq_type.apply counter Spec.Seq_counter.read v in
  Alcotest.check value_testable "read" (Spec.Seq_counter.count 1) r2

let test_queue_semantics () =
  let q0 = Value.queue_empty in
  let r, q1 = Spec.Seq_type.apply queue (Spec.Seq_queue.enqueue (Value.str "a")) q0 in
  Alcotest.check value_testable "enqueue acks" Spec.Seq_queue.ack r;
  let _, q2 = Spec.Seq_type.apply queue (Spec.Seq_queue.enqueue (Value.str "b")) q1 in
  let r3, q3 = Spec.Seq_type.apply queue Spec.Seq_queue.dequeue q2 in
  Alcotest.check value_testable "FIFO dequeue" (Spec.Seq_queue.item (Value.str "a")) r3;
  let r4, _ = Spec.Seq_type.apply queue Spec.Seq_queue.dequeue q3 in
  Alcotest.check value_testable "second dequeue" (Spec.Seq_queue.item (Value.str "b")) r4;
  let r5, _ = Spec.Seq_type.apply queue Spec.Seq_queue.dequeue q0 in
  Alcotest.check value_testable "empty dequeue" Spec.Seq_queue.empty_resp r5

let test_legal_sequence () =
  Alcotest.(check bool) "consensus legal" true
    (Spec.Seq_type.legal_sequence consensus
       [
         Spec.Seq_consensus.init 1, Spec.Seq_consensus.decide 1;
         Spec.Seq_consensus.init 0, Spec.Seq_consensus.decide 1;
       ]);
  Alcotest.(check bool) "consensus illegal: disagreement" false
    (Spec.Seq_type.legal_sequence consensus
       [
         Spec.Seq_consensus.init 1, Spec.Seq_consensus.decide 1;
         Spec.Seq_consensus.init 0, Spec.Seq_consensus.decide 0;
       ]);
  Alcotest.(check bool) "register legal" true
    (Spec.Seq_type.legal_sequence register
       [
         Spec.Seq_register.write (Value.int 1), Spec.Seq_register.ack;
         Spec.Seq_register.read, Spec.Seq_register.value_resp (Value.int 1);
       ]);
  Alcotest.(check bool) "register illegal: stale read" false
    (Spec.Seq_type.legal_sequence register
       [
         Spec.Seq_register.write (Value.int 1), Spec.Seq_register.ack;
         Spec.Seq_register.read, Spec.Seq_register.value_resp (Value.int 0);
       ]);
  (* Nondeterministic type: any of the remembered values is acceptable. *)
  Alcotest.(check bool) "kset legal either way" true
    (Spec.Seq_type.legal_sequence kset
       [
         Spec.Seq_kset.init 3, Spec.Seq_kset.decide 3;
         Spec.Seq_kset.init 1, Spec.Seq_kset.decide 3;
       ]
    && Spec.Seq_type.legal_sequence kset
         [
           Spec.Seq_kset.init 3, Spec.Seq_kset.decide 3;
           Spec.Seq_kset.init 1, Spec.Seq_kset.decide 1;
         ])

let test_reachable_values () =
  let vs = Spec.Seq_type.reachable_values consensus in
  Alcotest.(check int) "consensus reaches 3 values" 3 (List.length vs);
  let vs = Spec.Seq_type.reachable_values tas in
  Alcotest.(check int) "tas reaches 2 values" 2 (List.length vs)

let test_kset_constructor_validation () =
  Alcotest.check_raises "k >= n rejected" (Invalid_argument "Seq_kset.make: need 0 < k < n")
    (fun () -> ignore (Spec.Seq_kset.make ~k:4 ~n:4));
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Seq_kset.make: need 0 < k < n")
    (fun () -> ignore (Spec.Seq_kset.make ~k:0 ~n:4))

(* Properties *)

let prop_consensus_sticky =
  qtest "consensus: every response equals the first proposal"
    QCheck2.Gen.(list_size (int_range 1 8) (int_bound 1))
    (fun proposals ->
      let v0 = List.hd consensus.Spec.Seq_type.initials in
      let first = List.hd proposals in
      let _, responses =
        List.fold_left
          (fun (v, acc) p ->
            let r, v' = Spec.Seq_type.apply consensus (Spec.Seq_consensus.init p) v in
            v', Spec.Seq_consensus.decided_value r :: acc)
          (v0, []) proposals
      in
      List.for_all (Int.equal first) responses)

let prop_kset_bound =
  qtest "k-set: at most k distinct responses on any δ resolution"
    QCheck2.Gen.(pair (list_size (int_range 1 10) (int_bound 3)) (int_bound 1000))
    (fun (proposals, seed) ->
      let rng = Random.State.make [| seed |] in
      let v0 = List.hd kset.Spec.Seq_type.initials in
      let _, responses =
        List.fold_left
          (fun (v, acc) p ->
            let outcomes = kset.Spec.Seq_type.delta (Spec.Seq_kset.init p) v in
            let r, v' = List.nth outcomes (Random.State.int rng (List.length outcomes)) in
            v', Spec.Seq_kset.decided_value r :: acc)
          (v0, []) proposals
      in
      List.length (List.sort_uniq Int.compare responses) <= 2)

let prop_register_last_write =
  qtest "register: read returns the last written value"
    QCheck2.Gen.(list_size (int_bound 10) (int_bound 1))
    (fun writes ->
      let final =
        List.fold_left
          (fun v w -> snd (Spec.Seq_type.apply register (Spec.Seq_register.write (Value.int w)) v))
          (Value.int 0) writes
      in
      let r, _ = Spec.Seq_type.apply register Spec.Seq_register.read final in
      let expected = match List.rev writes with [] -> 0 | w :: _ -> w in
      Value.to_int (Spec.Seq_register.read_value r) = expected)

let prop_queue_model =
  qtest "queue type matches Stdlib.Queue model"
    QCheck2.Gen.(list_size (int_bound 14) (option (int_bound 5)))
    (fun ops ->
      (* Some x = enqueue x; None = dequeue. *)
      let model = Queue.create () in
      let ok = ref true in
      let _ =
        List.fold_left
          (fun v op ->
            match op with
            | Some x ->
              Queue.add x model;
              snd (Spec.Seq_type.apply queue (Spec.Seq_queue.enqueue (Value.int x)) v)
            | None ->
              let r, v' = Spec.Seq_type.apply queue Spec.Seq_queue.dequeue v in
              (match Queue.take_opt model with
              | None -> if not (Value.equal r Spec.Seq_queue.empty_resp) then ok := false
              | Some x ->
                if not (Value.equal r (Spec.Seq_queue.item (Value.int x))) then ok := false);
              v')
          Value.queue_empty ops
      in
      !ok)

let suite =
  ( "seq-types",
    [
      Alcotest.test_case "totality" `Quick test_totality;
      Alcotest.test_case "determinism flags" `Quick test_determinism_flags;
      Alcotest.test_case "consensus semantics" `Quick test_consensus_semantics;
      Alcotest.test_case "k-set semantics" `Quick test_kset_semantics;
      Alcotest.test_case "register semantics" `Quick test_register_semantics;
      Alcotest.test_case "test&set semantics" `Quick test_tas_semantics;
      Alcotest.test_case "compare&swap semantics" `Quick test_cas_semantics;
      Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
      Alcotest.test_case "queue semantics" `Quick test_queue_semantics;
      Alcotest.test_case "legal sequences" `Quick test_legal_sequence;
      Alcotest.test_case "reachable values" `Quick test_reachable_values;
      Alcotest.test_case "k-set validation" `Quick test_kset_constructor_validation;
      prop_consensus_sticky;
      prop_kset_bound;
      prop_register_last_write;
      prop_queue_model;
    ] )
