(* The later sequential-type additions: atomic snapshot and max-register. *)

open Ioa
open Helpers

let snapshot =
  Spec.Seq_snapshot.make ~segments:3 ~values:[ Value.int 1; Value.int 2 ]
    ~initial:(Value.int 0)

let maxreg = Spec.Seq_max.make ~sample:[ 0; 1; 5 ] ()

let test_snapshot_totality () =
  match Spec.Seq_type.check_total snapshot with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_snapshot_semantics () =
  let v0 = List.hd snapshot.Spec.Seq_type.initials in
  let r, _ = Spec.Seq_type.apply snapshot Spec.Seq_snapshot.scan v0 in
  Alcotest.(check int) "initial scan: 3 cells" 3 (List.length (Spec.Seq_snapshot.view_map r));
  let _, v1 = Spec.Seq_type.apply snapshot (Spec.Seq_snapshot.update ~seg:1 (Value.int 2)) v0 in
  let r2, _ = Spec.Seq_type.apply snapshot Spec.Seq_snapshot.scan v1 in
  let bindings = Spec.Seq_snapshot.view_map r2 in
  Alcotest.(check (list (pair int int)))
    "scan after update" [ 0, 0; 1, 2; 2, 0 ]
    (List.map (fun (k, v) -> k, Value.to_int v) bindings)

let test_snapshot_atomicity_is_structural () =
  (* A scan never mixes: the response equals the exact value, which updates
     replace atomically — checked via the sequential relation. *)
  Alcotest.(check bool) "legal: scan sees update" true
    (Spec.Seq_type.legal_sequence snapshot
       [
         Spec.Seq_snapshot.update ~seg:0 (Value.int 1), Spec.Seq_snapshot.ack;
         ( Spec.Seq_snapshot.scan,
           Spec.Seq_snapshot.view
             (Value.map_add (Value.int 0) (Value.int 1)
                (List.hd snapshot.Spec.Seq_type.initials)) );
       ]);
  Alcotest.(check bool) "illegal: stale scan" false
    (Spec.Seq_type.legal_sequence snapshot
       [
         Spec.Seq_snapshot.update ~seg:0 (Value.int 1), Spec.Seq_snapshot.ack;
         Spec.Seq_snapshot.scan, Spec.Seq_snapshot.view (List.hd snapshot.Spec.Seq_type.initials);
       ])

let test_snapshot_rejects_bad_segment () =
  let v0 = List.hd snapshot.Spec.Seq_type.initials in
  Alcotest.(check int) "out-of-range update has no outcome" 0
    (List.length (snapshot.Spec.Seq_type.delta (Spec.Seq_snapshot.update ~seg:7 (Value.int 1)) v0))

let test_max_semantics () =
  let v0 = List.hd maxreg.Spec.Seq_type.initials in
  let r, v1 = Spec.Seq_type.apply maxreg (Spec.Seq_max.write 5) v0 in
  Alcotest.check value_testable "write returns new max" (Spec.Seq_max.max_resp 5) r;
  let r2, v2 = Spec.Seq_type.apply maxreg (Spec.Seq_max.write 3) v1 in
  Alcotest.check value_testable "lower write keeps max" (Spec.Seq_max.max_resp 5) r2;
  Alcotest.check value_testable "value monotone" (Value.int 5) v2;
  let r3, _ = Spec.Seq_type.apply maxreg Spec.Seq_max.read v2 in
  Alcotest.check value_testable "read" (Spec.Seq_max.max_resp 5) r3

let prop_max_is_running_max =
  qtest "max-register equals running maximum"
    QCheck2.Gen.(list_size (int_bound 12) (int_bound 50))
    (fun writes ->
      let final =
        List.fold_left
          (fun v w -> snd (Spec.Seq_type.apply maxreg (Spec.Seq_max.write w) v))
          (List.hd maxreg.Spec.Seq_type.initials)
          writes
      in
      Value.to_int final = List.fold_left max 0 writes)

let prop_snapshot_independent_segments =
  qtest "snapshot segments are independent"
    QCheck2.Gen.(list_size (int_bound 10) (pair (int_bound 2) (int_range 1 2)))
    (fun updates ->
      let final =
        List.fold_left
          (fun v (seg, x) ->
            snd (Spec.Seq_type.apply snapshot (Spec.Seq_snapshot.update ~seg (Value.int x)) v))
          (List.hd snapshot.Spec.Seq_type.initials)
          updates
      in
      let model seg =
        List.fold_left (fun acc (s, x) -> if s = seg then x else acc) 0 updates
      in
      let r, _ = Spec.Seq_type.apply snapshot Spec.Seq_snapshot.scan final in
      List.for_all
        (fun (seg, v) -> Value.to_int v = model seg)
        (Spec.Seq_snapshot.view_map r))

let test_as_canonical_objects () =
  (* Both types also work as canonical atomic objects in a system. *)
  let sn =
    Model.Service.atomic ~id:"snap" ~endpoints:[ 0 ] ~f:0
      (Spec.Seq_snapshot.make ~segments:2 ~values:[ Value.int 1 ] ~initial:(Value.int 0))
  in
  let mx = Model.Service.atomic ~id:"max" ~endpoints:[ 0 ] ~f:0 maxreg in
  let sys = Model.System.make ~processes:[ Model.Process.idle ~pid:0 ] ~services:[ sn; mx ] in
  let s = Model.System.initial_state sys in
  Alcotest.(check int) "two services" 2 (Array.length s.Model.State.svcs)

let suite =
  ( "more-types",
    [
      Alcotest.test_case "snapshot totality" `Quick test_snapshot_totality;
      Alcotest.test_case "snapshot semantics" `Quick test_snapshot_semantics;
      Alcotest.test_case "snapshot atomicity" `Quick test_snapshot_atomicity_is_structural;
      Alcotest.test_case "snapshot rejects bad segment" `Quick test_snapshot_rejects_bad_segment;
      Alcotest.test_case "max-register semantics" `Quick test_max_semantics;
      prop_max_is_running_max;
      prop_snapshot_independent_segments;
      Alcotest.test_case "usable as canonical objects" `Quick test_as_canonical_objects;
    ] )
