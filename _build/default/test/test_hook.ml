(* Tests for the hook machinery (§3.4, Fig. 3, Lemma 5): the path
   construction, the brute-force cross-check, and hook validity. *)

open Helpers
module E = Engine

let analysis_of sys inputs =
  let start = Model.System.initialize sys (int_inputs inputs) in
  E.Valence.analyze (E.Graph.explore sys start)

let bivalent_analysis sys =
  match E.Initialization.find_bivalent sys with
  | Some e -> e.E.Initialization.analysis
  | None -> Alcotest.fail "expected a bivalent initialization"

let check_hook a h =
  match E.Hook.check a h with Ok () -> () | Error e -> Alcotest.fail e

let test_find_direct () =
  let a = bivalent_analysis (Protocols.Direct.system ~n:2 ~f:0) in
  match E.Hook.find a with
  | E.Hook.Hook h ->
    check_hook a h;
    (* The textbook hook: both tasks are perform tasks of the shared
       consensus object. *)
    (match h.E.Hook.e, h.E.Hook.e' with
    | Model.Task.Svc_perform _, Model.Task.Svc_perform _ -> ()
    | _ -> Alcotest.fail "expected perform/perform hook");
    Alcotest.(check bool) "e <> e'" false (Model.Task.equal h.E.Hook.e h.E.Hook.e')
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let test_find_direct_n3 () =
  let a = bivalent_analysis (Protocols.Direct.system ~n:3 ~f:0) in
  match E.Hook.find a with
  | E.Hook.Hook h -> check_hook a h
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let test_find_tob () =
  let a = bivalent_analysis (Protocols.Tob_direct.system ~n:2 ~f:0) in
  match E.Hook.find a with
  | E.Hook.Hook h -> check_hook a h
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let test_find_wait_free () =
  (* Hooks exist even in correct systems — the refutation fails later, at the
     silencing step, not here. *)
  let a = bivalent_analysis (Protocols.Direct.system ~n:2 ~f:1) in
  match E.Hook.find a with
  | E.Hook.Hook h -> check_hook a h
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let test_brute_agrees () =
  List.iter
    (fun sys ->
      let a = bivalent_analysis sys in
      match E.Hook.find a, E.Hook.find_brute a with
      | E.Hook.Hook h1, Some h2 ->
        check_hook a h1;
        check_hook a h2
      | r, _ -> Alcotest.failf "fig3 found %a" E.Hook.pp_result r)
    [
      Protocols.Direct.system ~n:2 ~f:0;
      Protocols.Direct.system ~n:3 ~f:0;
      Protocols.Tob_direct.system ~n:2 ~f:0;
    ]

let test_base_path_replayable () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let a = bivalent_analysis sys in
  match E.Hook.find a with
  | E.Hook.Hook h ->
    let g = E.Valence.graph a in
    (* Walking base_path from the root lands on the hook's base vertex. *)
    let v =
      List.fold_left
        (fun v e ->
          match E.Graph.successor g v e with
          | Some w -> w
          | None -> Alcotest.fail "base path step invalid")
        (E.Graph.root g) h.E.Hook.base_path
    in
    Alcotest.(check int) "base path lands on base" h.E.Hook.base v;
    (* Base is bivalent; endpoints univalent and opposite. *)
    Alcotest.(check bool) "base bivalent" true
      (E.Valence.equal_verdict (E.Valence.verdict a h.E.Hook.base) E.Valence.Bivalent)
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let test_not_bivalent () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let a = analysis_of sys [ 0; 0 ] in
  match E.Hook.find a with
  | E.Hook.Not_bivalent -> ()
  | r -> Alcotest.failf "expected Not_bivalent, got %a" E.Hook.pp_result r

let test_inexact () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let start = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let a = E.Valence.analyze (E.Graph.explore ~max_states:3 sys start) in
  match E.Hook.find a with
  | E.Hook.Inexact -> ()
  | r -> Alcotest.failf "expected Inexact, got %a" E.Hook.pp_result r

let test_hook_check_rejects_corruption () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let a = bivalent_analysis sys in
  match E.Hook.find a with
  | E.Hook.Hook h ->
    let broken = { h with E.Hook.e' = h.E.Hook.e } in
    (match E.Hook.check a broken with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "corrupted hook accepted")
  | r -> Alcotest.failf "expected hook, got %a" E.Hook.pp_result r

let suite =
  ( "hook",
    [
      Alcotest.test_case "fig3 on direct n=2" `Quick test_find_direct;
      Alcotest.test_case "fig3 on direct n=3" `Quick test_find_direct_n3;
      Alcotest.test_case "fig3 on TOB" `Quick test_find_tob;
      Alcotest.test_case "hooks exist in correct systems" `Quick test_find_wait_free;
      Alcotest.test_case "brute-force agrees" `Quick test_brute_agrees;
      Alcotest.test_case "base path replayable" `Quick test_base_path_replayable;
      Alcotest.test_case "not bivalent" `Quick test_not_bivalent;
      Alcotest.test_case "inexact graph" `Quick test_inexact;
      Alcotest.test_case "check rejects corruption" `Quick test_hook_check_rejects_corruption;
    ] )
