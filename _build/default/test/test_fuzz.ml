(* Fuzzing the engine over randomized protocols: generate small systems whose
   processes run random straight-line programs over a shared consensus
   object and registers, then check engine invariants that must hold for
   EVERY system in the model:
   - Lemma 1 (applicability persistence) on the explored graph;
   - SCC valence = naive valence;
   - valence monotonicity along edges;
   - j-/k-similarity are symmetric and reflexive;
   - Graph edges agree with the transition function. *)

open Ioa
open Helpers
module E = Engine

(* A random program is a list of instructions executed in order; the process
   then spins. Deterministic by construction. *)
type instr =
  | I_write of int * int (* register index, value *)
  | I_read of int
  | I_propose (* invoke consensus with own input *)
  | I_decide_input (* decide own input *)
  | I_noop

let instr_gen ~regs =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun r v -> I_write (r, v)) (int_bound (regs - 1)) (int_bound 1);
        map (fun r -> I_read r) (int_bound (regs - 1));
        return I_propose;
        return I_decide_input;
        return I_noop;
      ])

let program_gen ~regs = QCheck2.Gen.(list_size (int_range 1 4) (instr_gen ~regs))

(* Build a process executing [program]; upon a consensus response it decides
   that response's value (overriding the program). *)
let proc_of_program ~regs:_ ~program pid =
  let open Protocols.Proto_util in
  (* state: run [input; pc] / got [w] / done [w] / idle *)
  let step s =
    if is "run" s then begin
      let input = field s 0 and pc = Value.to_int (field s 1) in
      if pc >= List.length program then Model.Process.Internal s
      else
        let next = st "run" [ input; Value.int (pc + 1) ] in
        match List.nth program pc with
        | I_write (r, v) ->
          Model.Process.Invoke
            { service = Printf.sprintf "reg%d" r; op = Spec.Seq_register.write (Value.int v); next }
        | I_read r ->
          Model.Process.Invoke
            { service = Printf.sprintf "reg%d" r; op = Spec.Seq_register.read; next }
        | I_propose ->
          Model.Process.Invoke
            { service = "cons"; op = Spec.Seq_consensus.init (Value.to_int input); next }
        | I_decide_input -> Model.Process.Decide { value = input; next }
        | I_noop -> Model.Process.Internal next
    end
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "run" [ v; Value.int 0 ] else s in
  let on_response s ~service b =
    if String.equal service "cons" && Spec.Seq_consensus.is_decide b && is "run" s then
      st "got" [ Value.int (Spec.Seq_consensus.decided_value b) ]
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system_of_programs ~regs programs =
  let n = List.length programs in
  let endpoints = List.init n Fun.id in
  let registers =
    List.init regs (fun r ->
      Model.Service.register ~id:(Printf.sprintf "reg%d" r) ~endpoints
        (Spec.Seq_register.make
           ~values:[ Protocols.Proto_util.none; Value.int 0; Value.int 1 ]
           ~initial:Protocols.Proto_util.none))
  in
  let cons =
    Model.Service.atomic ~id:"cons" ~endpoints ~f:0 (Spec.Seq_consensus.make ())
  in
  Model.System.make ~processes:(List.mapi (fun pid p -> proc_of_program ~regs ~program:p pid) programs)
    ~services:(cons :: registers)

let gen_system =
  QCheck2.Gen.(
    let regs = 2 in
    let* p0 = program_gen ~regs in
    let* p1 = program_gen ~regs in
    return (system_of_programs ~regs [ p0; p1 ]))

let explore sys =
  let start = Model.System.initialize sys [ Value.int 1; Value.int 0 ] in
  E.Graph.explore ~max_states:50_000 sys start

let prop_lemma1 =
  qtest "fuzz: Lemma 1 on random systems" ~count:40 gen_system (fun sys ->
    let g = explore sys in
    E.Graph.complete g
    && E.Lemma_check.lemma1_applicability (E.Valence.analyze g) = [])

let prop_scc_vs_naive =
  qtest "fuzz: SCC valence = naive valence" ~count:40 gen_system (fun sys ->
    let g = explore sys in
    E.Graph.complete g && E.Lemma_check.scc_vs_naive (E.Valence.analyze g) = [])

let prop_valence_monotone =
  qtest "fuzz: valence monotone along edges" ~count:40 gen_system (fun sys ->
    let g = explore sys in
    let a = E.Valence.analyze g in
    let mask i =
      match E.Valence.verdict a i with
      | E.Valence.Blank -> 0
      | E.Valence.Zero_valent -> 1
      | E.Valence.One_valent -> 2
      | E.Valence.Bivalent -> 3
    in
    let ok = ref true in
    E.Graph.iter_states g (fun i _ ->
      List.iter
        (fun (_, j) -> if mask j land lnot (mask i) <> 0 then ok := false)
        (E.Graph.succs g i));
    !ok)

let prop_similarity_reflexive_symmetric =
  qtest "fuzz: similarity reflexive and symmetric" ~count:30 gen_system (fun sys ->
    let g = explore sys in
    let s0 = E.Graph.state g 0 in
    let last = E.Graph.state g (E.Graph.size g - 1) in
    List.for_all (fun j -> E.Similarity.j_similar sys ~j s0 s0) [ 0; 1 ]
    && List.for_all
         (fun j ->
           E.Similarity.j_similar sys ~j s0 last = E.Similarity.j_similar sys ~j last s0)
         [ 0; 1 ])

let prop_edges_sound =
  qtest "fuzz: graph edges match transitions" ~count:30 gen_system (fun sys ->
    let g = explore sys in
    let ok = ref true in
    E.Graph.iter_states g (fun i s ->
      List.iter
        (fun (e, j) ->
          match Model.System.transition sys s e with
          | Some (_, s') -> if not (Model.State.equal s' (E.Graph.state g j)) then ok := false
          | None -> ok := false)
        (E.Graph.succs g i));
    !ok)

let prop_refute_never_crashes =
  qtest "fuzz: refute total on random systems" ~count:25 gen_system (fun sys ->
    match (E.Counterexample.refute ~max_states:50_000 ~run_bound:5_000 ~failures:1 sys).E.Counterexample.outcome with
    | E.Counterexample.Refuted _ | E.Counterexample.Not_refuted _
    | E.Counterexample.Out_of_budget _ ->
      true)

let suite =
  ( "fuzz",
    [
      prop_lemma1;
      prop_scc_vs_naive;
      prop_valence_monotone;
      prop_similarity_reflexive_symmetric;
      prop_edges_sound;
      prop_refute_never_crashes;
    ] )
