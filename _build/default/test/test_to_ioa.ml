(* The §2.2.4 definition of "solving consensus", executable: the complete
   system as a generic I/O automaton must implement the canonical consensus
   object for the full endpoint set (finite-trace side, via the bounded
   subset-construction check). A correct system passes; an agreement-breaking
   system yields a concrete counterexample trace. *)

open Helpers
module SN = Services.Sig_names

let fails_for n = List.init n SN.fail

(* Trace inclusion per fixed input vector: the init interface is closed by an
   environment automaton (open init inputs can repeat, growing the spec
   object's buffers without bound), while fail inputs stay open — they are
   idempotent. *)
let check_implements sys ~f ~inputs =
  let n = Model.System.n_processes sys in
  let vec = List.map Ioa.Value.int inputs in
  let impl = Model.To_ioa.closed ~inputs:vec sys in
  let spec = Model.To_ioa.closed_spec ~inputs:vec ~f sys in
  Ioa.Implements.check_traces ~impl ~spec ~inputs:(fails_for n) ~max_states:300_000

let test_encode_decode_roundtrip () =
  let sys = Protocols.Direct.system ~n:3 ~f:1 in
  let s = Model.System.initialize sys (int_inputs [ 1; 0; 1 ]) in
  let s' = Model.To_ioa.decode_state sys (Model.To_ioa.encode_state s) in
  Alcotest.check state_testable "roundtrip" s s';
  (* And after some steps. *)
  let s2 =
    match Model.System.transition sys s (Model.Task.Proc 0) with
    | Some (_, s2) -> s2
    | None -> Alcotest.fail "step"
  in
  Alcotest.check state_testable "roundtrip after step" s2
    (Model.To_ioa.decode_state sys (Model.To_ioa.encode_state s2))

let test_signature () =
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let a = Model.To_ioa.automaton sys in
  Alcotest.(check bool) "init input" true
    (a.Ioa.Automaton.classify (SN.init 0 (Ioa.Value.int 1)) = Some Ioa.Automaton.Input);
  Alcotest.(check bool) "fail input" true
    (a.Ioa.Automaton.classify (SN.fail 1) = Some Ioa.Automaton.Input);
  Alcotest.(check bool) "decide output" true
    (a.Ioa.Automaton.classify (SN.decide 0 (Ioa.Value.int 1)) = Some Ioa.Automaton.Output);
  Alcotest.(check bool) "invoke internal" true
    (a.Ioa.Automaton.classify (SN.invoke 0 "cons" (Spec.Seq_consensus.init 1))
    = Some Ioa.Automaton.Internal);
  Alcotest.(check bool) "perform internal" true
    (a.Ioa.Automaton.classify (SN.perform 0 "cons") = Some Ioa.Automaton.Internal);
  Alcotest.(check bool) "out-of-range init rejected" true
    (a.Ioa.Automaton.classify (SN.init 9 (Ioa.Value.int 1)) = None)

let test_transitions_mirror_system () =
  (* Driving the generic automaton with the model's own event stream works
     step for step. *)
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  let a = Model.To_ioa.automaton sys in
  let exec = initialized sys (int_inputs [ 1; 0 ]) in
  let exec =
    match
      Model.Exec.replay_tasks sys exec
        [
          Model.Task.Proc 0;
          Model.Task.Proc 1;
          Model.Task.Svc_perform { svc = 0; endpoint = 1 };
          Model.Task.Svc_output { svc = 0; endpoint = 1 };
          Model.Task.Proc 1;
        ]
    with
    | Some e -> e
    | None -> Alcotest.fail "replay"
  in
  let final =
    List.fold_left
      (fun s ev ->
        let act = Model.Event.to_ioa ev in
        match a.Ioa.Automaton.step s act with
        | [ s' ] -> s'
        | [] -> Alcotest.failf "generic automaton rejects %a" Ioa.Action.pp act
        | _ -> Alcotest.failf "generic automaton nondeterministic on %a" Ioa.Action.pp act)
      (List.hd a.Ioa.Automaton.start)
      (Model.Exec.events exec)
  in
  Alcotest.check state_testable "same final state" (Model.Exec.last_state exec)
    (Model.To_ioa.decode_state sys final)

let test_task_enumeration_includes_dummies () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  let a = Model.To_ioa.automaton sys in
  (* After P0 invokes and fails, the perform task at endpoint 0 offers both
     the real perform and the dummy. *)
  let s = Model.System.initialize sys (int_inputs [ 1; 0 ]) in
  let s =
    match Model.System.transition sys s (Model.Task.Proc 0) with
    | Some (_, s) -> s
    | None -> assert false
  in
  let _, s = Model.System.apply_fail sys s 0 in
  let packed = Model.To_ioa.encode_state s in
  let perform_task =
    List.find
      (fun (t : Ioa.Task.t) ->
        String.equal t.Ioa.Task.label (Model.Task.to_string (Model.Task.Svc_perform { svc = 0; endpoint = 0 })))
      a.Ioa.Automaton.tasks
  in
  let acts = perform_task.Ioa.Task.enabled packed in
  Alcotest.(check int) "both resolutions offered" 2 (List.length acts);
  Alcotest.(check bool) "real offered" true
    (List.exists (Ioa.Action.equal (SN.perform 0 "cons")) acts);
  Alcotest.(check bool) "dummy offered" true (List.exists SN.is_dummy acts)

let test_wait_free_system_implements_spec () =
  (* §2.2.4, safety side: the wait-free direct system's finite traces are
     traces of the canonical 1-resilient consensus object for {0, 1}, for
     every binary input vector. *)
  let sys = Protocols.Direct.system ~n:2 ~f:1 in
  List.iter
    (fun inputs ->
      match check_implements sys ~f:1 ~inputs with
      | Ioa.Implements.Included -> ()
      | v -> Alcotest.failf "expected inclusion, got %a" Ioa.Implements.pp_verdict v)
    [ [ 0; 0 ]; [ 0; 1 ]; [ 1; 0 ]; [ 1; 1 ] ]

let test_weak_object_system_still_safe () =
  (* The f=0 candidate is safe too — its failure is liveness-only, invisible
     to finite-trace inclusion. *)
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  match check_implements sys ~f:1 ~inputs:[ 1; 0 ] with
  | Ioa.Implements.Included -> ()
  | v -> Alcotest.failf "expected inclusion, got %a" Ioa.Implements.pp_verdict v

let test_split_system_has_counterexample () =
  (* The agreement-breaking split system is NOT an implementation: the check
     produces a concrete offending trace ending in conflicting decides. *)
  let sys = Protocols.Split.system ~n:2 in
  match check_implements sys ~f:1 ~inputs:[ 1; 0 ] with
  | Ioa.Implements.Counterexample trace ->
    let decides =
      List.filter (fun a -> String.equal (Ioa.Action.name a) "decide") trace
    in
    Alcotest.(check bool) "trace ends in a decide the spec cannot make" true (decides <> [])
  | v -> Alcotest.failf "expected counterexample, got %a" Ioa.Implements.pp_verdict v

let suite =
  ( "to-ioa",
    [
      Alcotest.test_case "state encode/decode roundtrip" `Quick test_encode_decode_roundtrip;
      Alcotest.test_case "signature classification" `Quick test_signature;
      Alcotest.test_case "transitions mirror the system" `Quick test_transitions_mirror_system;
      Alcotest.test_case "task enumeration includes dummies" `Quick
        test_task_enumeration_includes_dummies;
      Alcotest.test_case "§2.2.4: wait-free system implements the spec" `Slow
        test_wait_free_system_implements_spec;
      Alcotest.test_case "§2.2.4: weak object still safe (liveness-only gap)" `Slow
        test_weak_object_system_still_safe;
      Alcotest.test_case "§2.2.4: split system refuted by trace inclusion" `Quick
        test_split_system_has_counterexample;
    ] )
