type outcome = Decided | Lasso of { period : int } | Budget

let pp_outcome ppf = function
  | Decided -> Format.pp_print_string ppf "goal reached"
  | Lasso { period } -> Format.fprintf ppf "lasso (period %d): provably non-terminating" period
  | Budget -> Format.pp_print_string ppf "step budget exhausted"

module Tbl = Hashtbl.Make (struct
  type t = int * Model.State.t

  let equal (c1, s1) (c2, s2) = c1 = c2 && Model.State.equal s1 s2
  let hash (c, s) = (c * 31) lxor Model.State.hash s
end)

let run ?policy ?(max_steps = 200_000) ~goal (sys : Model.System.t) exec =
  let tasks = sys.Model.System.tasks in
  let n_tasks = Array.length tasks in
  let seen = Tbl.create 1024 in
  let rec go exec cursor step =
    let s = Model.Exec.last_state exec in
    if goal s then exec, Decided
    else if step >= max_steps then exec, Budget
    else begin
      let key = cursor, s in
      match Tbl.find_opt seen key with
      | Some prior_step -> exec, Lasso { period = step - prior_step }
      | None ->
        Tbl.replace seen key step;
        let exec =
          match Model.Exec.append_task ?policy sys exec tasks.(cursor) with
          | Some exec -> exec
          | None -> exec
        in
        go exec ((cursor + 1) mod n_tasks) (step + 1)
    end
  in
  go exec 0 0
