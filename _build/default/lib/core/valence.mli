(** Valence of finite failure-free input-first executions (paper §3.2).

    A finite failure-free input-first execution is 0-valent if some
    failure-free extension contains [decide(0)_i] and none contains
    [decide(1)_i]; 1-valent symmetrically; bivalent if both are reachable.
    Under the determinism assumptions valence is a function of the end state,
    so this module computes, for {e every} vertex of a materialized G(C), the
    set of decision values contained in some extension — exactly, by a
    strongly-connected-component condensation pass.

    Beyond the paper's three cases, two anomalies are reported, because
    candidate (i.e. flawed) protocols exhibit them: [Blank] (no decision
    reachable at all — a termination anomaly) and, via {!first_disagreement},
    reachable states that already contain two different decisions (an
    agreement violation). *)

type verdict =
  | Zero_valent
  | One_valent
  | Bivalent
  | Blank  (** No failure-free extension contains any decision. *)

val pp_verdict : Format.formatter -> verdict -> unit
val equal_verdict : verdict -> verdict -> bool

type t
(** A valence analysis of one execution graph. *)

val analyze : Graph.t -> t
(** Computes the reachable-decision mask of every vertex. Decisions are read
    from the recorded per-process decision values, which must be integers 0
    or 1 (binary consensus); other decided values raise
    [Invalid_argument]. *)

val graph : t -> Graph.t
val verdict : t -> int -> verdict
(** Verdict of a vertex. *)

val verdict_of_state : t -> Model.State.t -> verdict option
(** Verdict of a state, if it is a vertex of the analyzed graph. *)

val is_exact : t -> bool
(** True iff the underlying graph is complete, making every verdict exact
    rather than a lower bound. *)

val count : t -> verdict -> int
(** Number of vertices with the given verdict. *)

val first_disagreement : t -> int option
(** A vertex whose state already records two distinct decisions, if any —
    a concrete agreement violation. *)

val first_invalid_decision : t -> int option
(** A vertex recording a decision that is not any process's input — a
    concrete validity violation. *)
