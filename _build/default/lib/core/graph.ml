module StateTbl = Hashtbl.Make (struct
  type t = Model.State.t

  let equal = Model.State.equal
  let hash = Model.State.hash
end)

type t = {
  system : Model.System.t;
  states : Model.State.t array;
  index : int StateTbl.t;
  succs_arr : (Model.Task.t * int) list array;
  complete : bool;
}

let explore ?(max_states = 200_000) (sys : Model.System.t) start =
  let index = StateTbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let succs = ref [] in
  (* Vertices are appended in BFS order; succs are collected in the same
     order, so the two lists stay aligned. *)
  let queue = Queue.create () in
  let complete = ref true in
  let add_state s =
    match StateTbl.find_opt index s with
    | Some i -> i
    | None ->
      let i = !n_states in
      StateTbl.replace index s i;
      states := s :: !states;
      incr n_states;
      Queue.add s queue;
      i
  in
  ignore (add_state start);
  let tasks = Array.to_list sys.Model.System.tasks in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    if !n_states > max_states then begin
      complete := false;
      succs := [] :: !succs
    end
    else begin
      let edges =
        List.filter_map
          (fun e ->
            match Model.System.transition sys s e with
            | None -> None
            | Some (_event, s') -> Some (e, add_state s'))
          tasks
      in
      succs := edges :: !succs
    end
  done;
  let states = Array.of_list (List.rev !states) in
  let succs_list = List.rev !succs in
  let succs_arr =
    Array.init (Array.length states) (fun _ -> ([] : (Model.Task.t * int) list))
  in
  List.iteri (fun i edges -> if i < Array.length succs_arr then succs_arr.(i) <- edges) succs_list;
  { system = sys; states; index; succs_arr; complete = !complete }

let system g = g.system
let size g = Array.length g.states
let complete g = g.complete
let root _ = 0
let state g i = g.states.(i)
let succs g i = g.succs_arr.(i)
let index_of g s = StateTbl.find_opt g.index s

let successor g i e =
  List.find_map
    (fun (e', j) -> if Model.Task.equal e e' then Some j else None)
    g.succs_arr.(i)

let path_between g ~src ~dst =
  if src = dst then Some []
  else begin
    let n = Array.length g.states in
    let pred = Array.make n None in
    let visited = Array.make n false in
    visited.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun (e, v) ->
          if not visited.(v) then begin
            visited.(v) <- true;
            pred.(v) <- Some (u, e);
            if v = dst then found := true else Queue.add v queue
          end)
        g.succs_arr.(u)
    done;
    if not !found then None
    else begin
      let rec build v acc =
        match pred.(v) with
        | None -> acc
        | Some (u, e) -> build u (e :: acc)
      in
      Some (build dst [])
    end
  end

let find_state g p =
  let rec go i =
    if i >= Array.length g.states then None
    else if p g.states.(i) then Some i
    else go (i + 1)
  in
  go 0

let iter_states g f = Array.iteri f g.states
