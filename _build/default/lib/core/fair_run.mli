(** Fair round-robin runs with lasso detection.

    The Lemma 6/7 constructions extend an execution with a {e fair} schedule
    after f+1 failures and ask whether survivors decide. For a deterministic
    system under a fixed round-robin schedule, revisiting the same pair
    (round-robin cursor, global state) proves the run has entered a cycle
    that the schedule will repeat forever: the pumped execution is an
    infinite {e fair} execution (every task gets a turn each cycle) in which
    no further decision ever happens. Lasso detection therefore turns
    "budget exhausted" into an actual non-termination proof. *)

type outcome =
  | Decided
      (** The goal predicate became true. *)
  | Lasso of { period : int }
      (** A (cursor, state) pair repeated: the suffix of the returned
          execution is a cycle of [period] task turns that fairness can pump
          forever. *)
  | Budget  (** [max_steps] turns without goal or repetition. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?policy:Model.System.policy ->
  ?max_steps:int ->
  goal:(Model.State.t -> bool) ->
  Model.System.t ->
  Model.Exec.t ->
  Model.Exec.t * outcome
(** Round-robin over all tasks of the system (disabled tasks are skipped but
    the cursor still advances), stopping when [goal] holds, a lasso is
    detected, or [max_steps] (default 200_000) turns elapse. *)
