type t = {
  base : int;
  e : Model.Task.t;
  e' : Model.Task.t;
  alpha0 : int;
  mid : int;
  alpha1 : int;
  v0 : Valence.verdict;
  base_path : Model.Task.t list;
}

let pp ppf h =
  Format.fprintf ppf
    "hook@@v%d: e=%a e'=%a, e(α)=v%d (%a), e'(α)=v%d, e(e'(α))=v%d (opposite)" h.base
    Model.Task.pp h.e Model.Task.pp h.e' h.alpha0 Valence.pp_verdict h.v0 h.mid h.alpha1

type search =
  | Hook of t
  | Unbounded of Model.Task.t list
  | Not_bivalent
  | Inexact

let pp_result ppf = function
  | Hook h -> pp ppf h
  | Unbounded path -> Format.fprintf ppf "bivalence preserved past budget (%d steps)" (List.length path)
  | Not_bivalent -> Format.pp_print_string ppf "root not bivalent"
  | Inexact -> Format.pp_print_string ppf "graph incomplete; valences not exact"

let opposite = function
  | Valence.Zero_valent -> Valence.One_valent
  | Valence.One_valent -> Valence.Zero_valent
  | v -> v

(* Does the state of vertex v itself record decision [d]? *)
let decides_now g v d =
  List.exists
    (fun (_, value) -> Ioa.Value.to_int value = d)
    (Model.State.decided_pairs (Graph.state g v))

(* BFS from [src] over edges whose label differs from [avoid]; returns the
   first vertex satisfying [accept] together with the path to it. *)
let bfs_avoiding g ~src ~avoid ~accept =
  let n = Graph.size g in
  let visited = Array.make n false in
  let pred = Array.make n None in
  let queue = Queue.create () in
  visited.(src) <- true;
  Queue.add src queue;
  let result = ref None in
  while Option.is_none !result && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if accept u then result := Some u
    else
      List.iter
        (fun (e, v) ->
          let skip = match avoid with Some a -> Model.Task.equal e a | None -> false in
          if (not skip) && not visited.(v) then begin
            visited.(v) <- true;
            pred.(v) <- Some (u, e);
            Queue.add v queue
          end)
        (Graph.succs g u)
  done;
  match !result with
  | None -> None
  | Some dst ->
    let rec build v acc =
      match pred.(v) with None -> acc | Some (u, e) -> build u (e :: acc)
    in
    Some (dst, build dst [])

let verdict_int = function
  | Valence.Zero_valent -> 0
  | Valence.One_valent -> 1
  | Valence.Bivalent | Valence.Blank -> -1

(* Once the Fig. 3 construction terminates at a bivalent vertex [cur] with a
   task [e] such that e(x) is univalent for every descendant x reached
   without scheduling e: locate the hook by the Lemma 5 scan. *)
let locate_hook analysis ~cur ~e ~base_path =
  let g = Valence.graph analysis in
  let v0 =
    match Graph.successor g cur e with
    | None -> invalid_arg "Hook.locate_hook: e not applicable at cur"
    | Some a -> Valence.verdict analysis a
  in
  let opp = opposite v0 in
  let opp_int = verdict_int opp in
  (* A descendant in which some process decides the opposite value. The
     search may traverse e-labeled edges (the proof's second case). *)
  match bfs_avoiding g ~src:cur ~avoid:None ~accept:(fun v -> decides_now g v opp_int) with
  | None -> None
  | Some (_dst, tasks) ->
    (* σ_0 .. σ_m with σ_0 = cur; the scan stops at the first occurrence of e
       (the proof's second case). *)
    let sigmas, stopped_by_e =
      let rec go v = function
        | [] -> [ v, None ], false
        | t :: rest -> (
          match Graph.successor g v t with
          | None -> invalid_arg "Hook.locate_hook: path broke"
          | Some w ->
            if Model.Task.equal t e then [ v, Some t; w, None ], true
            else
              let tail, flag = go w rest in
              ((v, Some t) :: tail, flag))
      in
      go cur tasks
    in
    (* For each σ_j, the valence of e(σ_j). Before the first occurrence of e,
       e is applicable by Lemma 1. If the scan stopped because e occurred,
       the terminal vertex IS e(σ_k) and its own verdict is used. *)
    let valences =
      List.map
        (fun (v, label) ->
          match label, Graph.successor g v e with
          | Some _, Some a -> v, label, Valence.verdict analysis a
          | Some _, None ->
            invalid_arg "Hook.locate_hook: e not applicable along path (Lemma 1)"
          | None, _ when stopped_by_e -> v, None, Valence.verdict analysis v
          | None, Some a -> v, None, Valence.verdict analysis a
          | None, None ->
            invalid_arg "Hook.locate_hook: e not applicable at path end (Lemma 1)")
        sigmas
    in
    let rec scan = function
      | (v, Some label, vj) :: ((_, _, vj1) :: _ as rest) ->
        if
          (not (Model.Task.equal label e))
          && Valence.equal_verdict vj v0 && Valence.equal_verdict vj1 opp
        then begin
          let mid =
            match Graph.successor g v label with
            | Some m -> m
            | None -> assert false
          in
          let alpha0 = Option.get (Graph.successor g v e) in
          let alpha1 = Option.get (Graph.successor g mid e) in
          Some { base = v; e; e' = label; alpha0; mid; alpha1; v0; base_path }
        end
        else scan rest
      | _ -> None
    in
    scan valences

let find ?(max_path = 10_000) analysis =
  let g = Valence.graph analysis in
  if not (Graph.complete g) then Inexact
  else if not (Valence.equal_verdict (Valence.verdict analysis (Graph.root g)) Valence.Bivalent)
  then Not_bivalent
  else begin
    let tasks = (Graph.system g).Model.System.tasks in
    let n_tasks = Array.length tasks in
    let rr = ref 0 in
    let cur = ref (Graph.root g) in
    let path = ref [] in
    (* rev path *)
    let result = ref None in
    (try
       while !result = None do
         if List.length !path > max_path then begin
           result := Some (Unbounded (List.rev !path));
           raise Exit
         end;
         (* Next applicable task in round-robin order. *)
         let e =
           let rec next k =
             if k >= n_tasks then raise Exit (* no applicable task: cannot happen *)
             else
               let cand = tasks.((!rr + k) mod n_tasks) in
               match Graph.successor g !cur cand with
               | Some _ -> cand, k
               | None -> next (k + 1)
           in
           let e, k = next 0 in
           rr := (!rr + k + 1) mod n_tasks;
           e
         in
         (* Seek a descendant x, reachable without e, with e(x) bivalent. *)
         match
           bfs_avoiding g ~src:!cur ~avoid:(Some e) ~accept:(fun x ->
             match Graph.successor g x e with
             | Some a -> Valence.equal_verdict (Valence.verdict analysis a) Valence.Bivalent
             | None -> false)
         with
         | Some (x, to_x) ->
           path := e :: List.rev_append to_x !path;
           cur := Option.get (Graph.successor g x e)
         | None -> (
           match locate_hook analysis ~cur:!cur ~e ~base_path:(List.rev !path) with
           | Some h -> result := Some (Hook h)
           | None ->
             (* cur is bivalent but no opposite-deciding descendant exists:
                impossible with exact valences. *)
             assert false)
       done
     with Exit -> ());
    match !result with Some r -> r | None -> assert false
  end

let find_brute analysis =
  let g = Valence.graph analysis in
  let n = Graph.size g in
  let univalent v =
    let vd = Valence.verdict analysis v in
    Valence.equal_verdict vd Valence.Zero_valent || Valence.equal_verdict vd Valence.One_valent
  in
  let rec scan_vertex v =
    if v >= n then None
    else
      let edges = Graph.succs g v in
      let found =
        List.find_map
          (fun (e, a0) ->
            if not (univalent a0) then None
            else
              let v0 = Valence.verdict analysis a0 in
              List.find_map
                (fun (e', mid) ->
                  if Model.Task.equal e e' then None
                  else
                    match Graph.successor g mid e with
                    | Some a1
                      when Valence.equal_verdict (Valence.verdict analysis a1) (opposite v0)
                      ->
                      Some (e, e', a0, mid, a1, v0)
                    | _ -> None)
                edges)
          edges
      in
      match found with
      | Some (e, e', alpha0, mid, alpha1, v0) ->
        let base_path =
          Option.value ~default:[] (Graph.path_between g ~src:(Graph.root g) ~dst:v)
        in
        Some { base = v; e; e'; alpha0; mid; alpha1; v0; base_path }
      | None -> scan_vertex (v + 1)
  in
  scan_vertex 0

let check analysis h =
  let g = Valence.graph analysis in
  let check_edge src e expected_dst what =
    match Graph.successor g src e with
    | Some d when d = expected_dst -> Ok ()
    | Some d -> Error (Printf.sprintf "%s: expected vertex %d, got %d" what expected_dst d)
    | None -> Error (Printf.sprintf "%s: task not applicable" what)
  in
  let ( let* ) = Result.bind in
  let* () = check_edge h.base h.e h.alpha0 "e(base)" in
  let* () = check_edge h.base h.e' h.mid "e'(base)" in
  let* () = check_edge h.mid h.e h.alpha1 "e(e'(base))" in
  let v0 = Valence.verdict analysis h.alpha0 in
  let v1 = Valence.verdict analysis h.alpha1 in
  if not (Valence.equal_verdict v0 h.v0) then Error "recorded v0 differs from analysis"
  else if not (Valence.equal_verdict v1 (opposite h.v0)) then
    Error "alpha1 does not have the opposite valence"
  else if
    not
      (Valence.equal_verdict v0 Valence.Zero_valent
      || Valence.equal_verdict v0 Valence.One_valent)
  then Error "alpha0 not univalent"
  else Ok ()
