type verdict = Zero_valent | One_valent | Bivalent | Blank

let pp_verdict ppf = function
  | Zero_valent -> Format.pp_print_string ppf "0-valent"
  | One_valent -> Format.pp_print_string ppf "1-valent"
  | Bivalent -> Format.pp_print_string ppf "bivalent"
  | Blank -> Format.pp_print_string ppf "blank"

let equal_verdict a b =
  match a, b with
  | Zero_valent, Zero_valent | One_valent, One_valent | Bivalent, Bivalent | Blank, Blank
    ->
    true
  | _ -> false

type t = { graph : Graph.t; mask : int array }

(* Decisions recorded in a state, as a 2-bit mask. *)
let own_mask s =
  List.fold_left
    (fun m (_, v) ->
      match Ioa.Value.to_int v with
      | 0 -> m lor 1
      | 1 -> m lor 2
      | _ -> invalid_arg "Valence: non-binary decision value")
    0
    (Model.State.decided_pairs s)

(* Iterative Tarjan SCC. SCCs are emitted sinks-first (reverse topological
   order of the condensation), so when an SCC is completed every SCC it can
   reach is already finished and a single pass accumulates the
   reachable-decision masks. An explicit work stack avoids overflowing the
   OCaml stack on deep graphs. *)
let analyze (g : Graph.t) =
  let n = Graph.size g in
  let mask = Array.make n 0 in
  let indices = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_of = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_scc = ref 0 in
  let scc_mask = Hashtbl.create 64 in
  let finish_scc v =
    let id = !next_scc in
    incr next_scc;
    let members = ref [] in
    let continue = ref true in
    while !continue do
      let w = Stack.pop stack in
      on_stack.(w) <- false;
      scc_of.(w) <- id;
      members := w :: !members;
      if w = v then continue := false
    done;
    let scc_m =
      List.fold_left
        (fun acc w ->
          List.fold_left
            (fun acc (_e, x) ->
              if scc_of.(x) >= 0 && scc_of.(x) <> id then
                acc lor Hashtbl.find scc_mask scc_of.(x)
              else acc)
            (acc lor own_mask (Graph.state g w))
            (Graph.succs g w))
        0 !members
    in
    Hashtbl.replace scc_mask id scc_m;
    List.iter (fun w -> mask.(w) <- scc_m) !members
  in
  (* Work items: (vertex, remaining successor list). *)
  let visit root =
    let work = Stack.create () in
    let open_vertex v =
      indices.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      Stack.push v stack;
      on_stack.(v) <- true;
      Stack.push (v, ref (List.map snd (Graph.succs g v))) work
    in
    open_vertex root;
    while not (Stack.is_empty work) do
      let v, remaining = Stack.top work in
      match !remaining with
      | w :: rest ->
        remaining := rest;
        if indices.(w) = -1 then open_vertex w
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) indices.(w)
      | [] ->
        ignore (Stack.pop work);
        if lowlink.(v) = indices.(v) then finish_scc v;
        (match Stack.top_opt work with
        | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
        | None -> ())
    done
  in
  for v = 0 to n - 1 do
    if indices.(v) = -1 then visit v
  done;
  { graph = g; mask }

let graph t = t.graph

let verdict t i =
  match t.mask.(i) with
  | 0 -> Blank
  | 1 -> Zero_valent
  | 2 -> One_valent
  | _ -> Bivalent

let verdict_of_state t s = Option.map (verdict t) (Graph.index_of t.graph s)
let is_exact t = Graph.complete t.graph

let count t v =
  let c = ref 0 in
  Array.iteri (fun i _ -> if equal_verdict (verdict t i) v then incr c) t.mask;
  !c

let first_disagreement t =
  Graph.find_state t.graph (fun s -> List.length (Model.State.decided_values s) > 1)

let first_invalid_decision t =
  Graph.find_state t.graph (fun s ->
    let inputs =
      Array.to_list s.Model.State.inputs
      |> List.filter_map Fun.id
      |> List.sort_uniq Ioa.Value.compare
    in
    List.exists
      (fun v -> not (List.exists (Ioa.Value.equal v) inputs))
      (Model.State.decided_values s))
