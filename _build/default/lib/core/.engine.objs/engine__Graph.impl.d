lib/core/graph.ml: Array Hashtbl List Model Queue
