lib/core/similarity.ml: Array Fun Ioa List Model Option
