lib/core/counterexample.ml: Array Fair_run Format Fun Graph Hook Initialization Int Ioa List Model Option Printf Similarity Valence Value
