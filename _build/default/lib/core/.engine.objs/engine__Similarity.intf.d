lib/core/similarity.mli: Model
