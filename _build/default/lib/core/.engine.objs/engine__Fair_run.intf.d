lib/core/fair_run.mli: Format Model
