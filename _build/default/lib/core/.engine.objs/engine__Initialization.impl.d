lib/core/initialization.ml: Format Graph Ioa List Model Valence Value
