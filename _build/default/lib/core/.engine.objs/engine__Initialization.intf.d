lib/core/initialization.mli: Format Ioa Model Valence Value
