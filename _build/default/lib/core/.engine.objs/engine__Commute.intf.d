lib/core/commute.mli: Format Hook Model Valence
