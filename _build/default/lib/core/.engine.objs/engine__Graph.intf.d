lib/core/graph.mli: Model
