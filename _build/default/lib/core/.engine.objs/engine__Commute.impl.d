lib/core/commute.ml: Format Graph Hook List Model Option Printf Valence
