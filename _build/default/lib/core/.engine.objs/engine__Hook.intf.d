lib/core/hook.mli: Format Model Valence
