lib/core/valence_naive.mli: Graph Valence
