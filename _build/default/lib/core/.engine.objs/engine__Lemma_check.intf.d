lib/core/lemma_check.mli: Format Model Valence
