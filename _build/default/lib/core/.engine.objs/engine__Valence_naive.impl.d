lib/core/valence_naive.ml: Array Graph Ioa List Model Queue Valence
