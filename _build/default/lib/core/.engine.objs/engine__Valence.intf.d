lib/core/valence.mli: Format Graph Model
