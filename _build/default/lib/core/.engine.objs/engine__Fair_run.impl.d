lib/core/fair_run.ml: Array Format Hashtbl Model
