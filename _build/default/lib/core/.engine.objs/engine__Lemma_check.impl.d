lib/core/lemma_check.ml: Array Format Graph List Model Option Printf Similarity Valence Valence_naive
