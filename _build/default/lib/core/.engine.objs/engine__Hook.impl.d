lib/core/hook.ml: Array Format Graph Ioa List Model Option Printf Queue Result Valence
