lib/core/valence.ml: Array Format Fun Graph Hashtbl Ioa List Model Option Stack
