lib/core/counterexample.mli: Format Hook Ioa Model Valence Value
