(** Hooks and the Fig. 3 path construction (paper §3.4, Lemma 5).

    A hook is the execution pattern of Fig. 2: from an execution α, one
    applicable task [e] leads to a 0-valent extension, while a second task
    [e'] followed by the same [e] leads to a 1-valent extension. Lemma 5
    proves every system satisfying the consensus conditions has one; the
    impossibility engine {e finds} one — or, failing that, returns the
    bivalence-preserving schedule whose existence refutes termination. *)

type t = {
  base : int;  (** Vertex of α. *)
  e : Model.Task.t;  (** The hook task. *)
  e' : Model.Task.t;
  alpha0 : int;  (** Vertex of e(α). *)
  mid : int;  (** Vertex of e'(α). *)
  alpha1 : int;  (** Vertex of e(e'(α)). *)
  v0 : Valence.verdict;  (** Valence of [alpha0]; [alpha1] has the opposite. *)
  base_path : Model.Task.t list;  (** Task path from the root to [base]. *)
}

val pp : Format.formatter -> t -> unit

type search =
  | Hook of t
  | Unbounded of Model.Task.t list
      (** The Fig. 3 construction kept extending a bivalent execution past
          the budget: the returned prefix of a bivalence-preserving schedule
          is (bounded) evidence of non-termination. *)
  | Not_bivalent  (** The root of the analyzed graph is not bivalent. *)
  | Inexact  (** The graph is incomplete, so valences are not exact. *)

val pp_result : Format.formatter -> search -> unit

val find : ?max_path:int -> Valence.t -> search
(** The Fig. 3 round-robin path construction, followed by the Lemma 5 scan
    when it terminates. [max_path] (default 10_000) bounds the constructed
    bivalent path. *)

val find_brute : Valence.t -> t option
(** Exhaustive hook search over all vertices and task pairs — the
    cross-check oracle for {!find}. [base_path] is a BFS path from the
    root. *)

val check : Valence.t -> t -> (unit, string) result
(** Verifies the definitional hook conditions against the analysis. *)
