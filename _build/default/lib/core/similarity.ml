let is_general (c : Model.Service.t) =
  match c.Model.Service.cls with
  | Model.Service.General -> true
  | Model.Service.Register | Model.Service.Atomic | Model.Service.Oblivious -> false

let buf_equal = List.equal Ioa.Value.equal

let svc_equal (a : Model.State.svc) (b : Model.State.svc) =
  Ioa.Value.equal a.Model.State.value b.Model.State.value
  && Array.for_all2 buf_equal a.Model.State.inv_bufs b.Model.State.inv_bufs
  && Array.for_all2 buf_equal a.Model.State.resp_bufs b.Model.State.resp_bufs

(* Service comparison that ignores the buffers belonging to endpoint [j]. *)
let svc_equal_except (c : Model.Service.t) j (a : Model.State.svc) (b : Model.State.svc) =
  Ioa.Value.equal a.Model.State.value b.Model.State.value
  &&
  let skip =
    match Model.Service.endpoint_pos c j with Some pos -> pos | None -> -1
  in
  let bufs_ok inv_a inv_b =
    let ok = ref true in
    Array.iteri
      (fun pos q -> if pos <> skip && not (buf_equal q inv_b.(pos)) then ok := false)
      inv_a;
    !ok
  in
  bufs_ok a.Model.State.inv_bufs b.Model.State.inv_bufs
  && bufs_ok a.Model.State.resp_bufs b.Model.State.resp_bufs

let opt_equal = Option.equal Ioa.Value.equal

(* The per-process bookkeeping (recorded decision and received input) is
   formally part of the process state (§2.2.1), so similarity compares it
   alongside [procs]. *)
let proc_component_equal (s0 : Model.State.t) (s1 : Model.State.t) i =
  Ioa.Value.equal s0.Model.State.procs.(i) s1.Model.State.procs.(i)
  && opt_equal s0.Model.State.decisions.(i) s1.Model.State.decisions.(i)
  && opt_equal s0.Model.State.inputs.(i) s1.Model.State.inputs.(i)

let j_similar (sys : Model.System.t) ~j (s0 : Model.State.t) (s1 : Model.State.t) =
  let n = Model.System.n_processes sys in
  let procs_ok =
    List.for_all (fun i -> i = j || proc_component_equal s0 s1 i) (List.init n Fun.id)
  in
  procs_ok
  && Array.for_all Fun.id
       (Array.mapi
          (fun k c ->
            is_general c
            || svc_equal_except c j s0.Model.State.svcs.(k) s1.Model.State.svcs.(k))
          sys.Model.System.services)

let k_similar (sys : Model.System.t) ~k (s0 : Model.State.t) (s1 : Model.State.t) =
  let n = Model.System.n_processes sys in
  let procs_ok = List.for_all (proc_component_equal s0 s1) (List.init n Fun.id) in
  procs_ok
  && Array.for_all Fun.id
       (Array.mapi
          (fun k' c ->
            k' = k || is_general c
            || svc_equal s0.Model.State.svcs.(k') s1.Model.State.svcs.(k'))
          sys.Model.System.services)

let j_witnesses sys s0 s1 =
  List.filter
    (fun j -> j_similar sys ~j s0 s1)
    (List.init (Model.System.n_processes sys) Fun.id)

let k_witnesses (sys : Model.System.t) s0 s1 =
  List.filter
    (fun k -> k_similar sys ~k s0 s1)
    (List.init (Array.length sys.Model.System.services) Fun.id)
