(** Exhaustive checks of the paper's lemmas as universally quantified
    statements over explored state spaces.

    These are not used by the refutation pipeline — they are its regression
    net and its teaching instrument. Lemmas 1 and 3 hold for {e every} system
    in the model, so their checks must always return no failures. The
    state-level consequences of Lemmas 6 and 7 ("similar univalent states
    share their valence") hold exactly for systems that actually satisfy the
    claimed resilient-termination property: on a correct system the checks
    pass, while on a boosting candidate the returned counterexample pair is
    precisely the lever the refutation engine pulls at the hook. *)

type failure = { description : string }

val pp_failure : Format.formatter -> failure -> unit

val lemma1_applicability : Valence.t -> failure list
(** Lemma 1: an applicable task remains applicable along any extension that
    does not schedule it. Checked edge-wise over the whole graph: if [e] is
    applicable at [s] and an edge [e' ≠ e] leads to [s'], then [e] is
    applicable at [s']. Must hold for every system. *)

val lemma3_dichotomy : Valence.t -> failure list
(** Lemma 3: every finite failure-free input-first execution is univalent or
    bivalent — no vertex may be [Blank] when the system decides in fair
    failure-free runs. *)

val lemma6_j_similarity : Model.System.t -> Valence.t list -> failure list
(** Lemma 6, state-level consequence: across all vertices of the supplied
    graphs (e.g. the whole Lemma 4 staircase), two {e univalent} states that
    are j-similar for some process j have the same valence. Holds for
    systems satisfying ≥1-resilient termination; a returned pair on a
    candidate is the Lemma 6 refutation lever. *)

val lemma7_k_similarity :
  failures:int -> Model.System.t -> Valence.t list -> failure list
(** Lemma 7, state-level consequence: two univalent states that are
    k-similar for some service k {e silenceable by [failures] failures} have
    the same valence. Un-silenceable services genuinely may separate
    valences — that is the positive-results boundary — so they are skipped,
    mirroring the lemma's use in the proof. *)

val scc_vs_naive : Valence.t -> failure list
(** Ablation oracle: the SCC-condensation valence of every vertex equals the
    quadratic per-vertex reachability result. *)
