let own_mask s =
  List.fold_left
    (fun m (_, v) ->
      match Ioa.Value.to_int v with
      | 0 -> m lor 1
      | 1 -> m lor 2
      | _ -> invalid_arg "Valence_naive: non-binary decision value")
    0
    (Model.State.decided_pairs s)

let verdicts (g : Graph.t) =
  let n = Graph.size g in
  let result = Array.make n Valence.Blank in
  let visited = Array.make n (-1) in
  for v = 0 to n - 1 do
    (* BFS over all states reachable from v, unioning their recorded
       decisions. *)
    let mask = ref 0 in
    let queue = Queue.create () in
    visited.(v) <- v;
    Queue.add v queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      mask := !mask lor own_mask (Graph.state g u);
      List.iter
        (fun (_e, w) ->
          if visited.(w) <> v then begin
            visited.(w) <- v;
            Queue.add w queue
          end)
        (Graph.succs g u)
    done;
    result.(v) <-
      (match !mask with
      | 0 -> Valence.Blank
      | 1 -> Valence.Zero_valent
      | 2 -> Valence.One_valent
      | _ -> Valence.Bivalent)
  done;
  result
