(** Similarity of system states (paper §3.5, generalized as in §6.3).

    Two states are j-similar when every component looks the same except for
    process j's own state and the j-portions of the service buffers; they are
    k-similar when everything matches except the state of service k. The §6.3
    versions — used uniformly here, since they specialize to §3.5 when there
    are no general services — exempt failure-aware (general) services from
    the comparison entirely, because the proofs silence them.

    Lemmas 6 and 7 show that univalent executions ending in similar states
    must share their valence; {!Counterexample} exercises those lemmas
    constructively. *)

val j_similar : Model.System.t -> j:int -> Model.State.t -> Model.State.t -> bool
(** (1) every process other than [j] has equal state; (2) every
    non-general service has equal value and equal buffers at every endpoint
    other than [j]. *)

val k_similar : Model.System.t -> k:int -> Model.State.t -> Model.State.t -> bool
(** (1) every process has equal state; (2) every non-general service other
    than service position [k] has equal state. *)

val j_witnesses : Model.System.t -> Model.State.t -> Model.State.t -> int list
(** All [j] for which the states are j-similar. *)

val k_witnesses : Model.System.t -> Model.State.t -> Model.State.t -> int list
(** All service positions [k] for which the states are k-similar. *)
