(** Reference valence computation, by per-vertex forward reachability.

    Quadratic in the graph size where {!Valence.analyze} is linear — kept as
    the independent oracle for the SCC-condensation implementation and as the
    ablation baseline in the benchmark harness. *)

val verdicts : Graph.t -> Valence.verdict array
(** [verdicts g] computes, for every vertex, the set of decision values
    reachable by failure-free extensions, by a fresh BFS per vertex. *)
