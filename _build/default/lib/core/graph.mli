(** The execution graph G(C) (paper §3.3), materialized.

    Vertices are the failure-free reachable global states from a given
    (input-first) start state; there is an edge labelled with task [e] from
    [s] to [e(s)] whenever [e] is applicable. Under the §3.1 determinism
    assumptions each task labels at most one outgoing edge, so the graph of
    states is the quotient of the paper's tree of executions by end-state
    equality — valence is a function of the end state, which is what makes
    the analysis exact.

    Exploration is bounded by [max_states]; [complete g = false] reports that
    the bound was hit (no silent truncation). *)

type t

val explore : ?max_states:int -> Model.System.t -> Model.State.t -> t
(** Breadth-first materialization of G(C) from the given start state
    (default bound 200_000 states). Failure-free: only task edges, no [fail]
    inputs, real-preferring policy (no dummy is enabled anyway while
    [failed = ∅]). *)

val system : t -> Model.System.t
val size : t -> int
val complete : t -> bool
val root : t -> int
val state : t -> int -> Model.State.t
val succs : t -> int -> (Model.Task.t * int) list

val index_of : t -> Model.State.t -> int option
(** Vertex index of a state, if explored. O(1) expected. *)

val successor : t -> int -> Model.Task.t -> int option
(** The unique [e]-successor of a vertex, if [e] is applicable. *)

val path_between : t -> src:int -> dst:int -> Model.Task.t list option
(** A task path from [src] to [dst] in G(C), by BFS. *)

val find_state : t -> (Model.State.t -> bool) -> int option
(** Lowest-index explored vertex satisfying the predicate. *)

val iter_states : t -> (int -> Model.State.t -> unit) -> unit
