open Ioa

type entry = {
  inputs : Value.t list;
  analysis : Valence.t;
  verdict : Valence.verdict;
}

let entry_of ?max_states sys inputs =
  let start = Model.System.initialize sys inputs in
  let graph = Graph.explore ?max_states sys start in
  let analysis = Valence.analyze graph in
  let verdict = Valence.verdict analysis (Graph.root graph) in
  { inputs; analysis; verdict }

let staircase ?max_states sys =
  let n = Model.System.n_processes sys in
  List.init (n + 1) (fun i ->
    let inputs = List.init n (fun p -> Value.int (if p < i then 1 else 0)) in
    entry_of ?max_states sys inputs)

let all_binary ?max_states sys =
  let n = Model.System.n_processes sys in
  if n > 16 then invalid_arg "Initialization.all_binary: too many processes";
  List.init (1 lsl n) (fun bits ->
    let inputs = List.init n (fun p -> Value.int ((bits lsr p) land 1)) in
    entry_of ?max_states sys inputs)

let find_bivalent ?max_states sys =
  List.find_opt
    (fun e -> Valence.equal_verdict e.verdict Valence.Bivalent)
    (staircase ?max_states sys)

let staircase_flip ?max_states sys =
  let entries = staircase ?max_states sys in
  let rec go = function
    | a :: (b :: _ as rest) ->
      if Valence.equal_verdict a.verdict Valence.Bivalent then None
      else if
        Valence.equal_verdict a.verdict Valence.Zero_valent
        && not (Valence.equal_verdict b.verdict Valence.Zero_valent)
      then Some (a, b)
      else go rest
    | _ -> None
  in
  go entries

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>inputs=[%a] -> %a (graph: %d states%s)@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";") Value.pp)
    e.inputs Valence.pp_verdict e.verdict
    (Graph.size (Valence.graph e.analysis))
    (if Valence.is_exact e.analysis then "" else ", bounded")
