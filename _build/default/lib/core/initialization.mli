(** Initializations and the bivalent-initialization lemma (paper §3.2,
    Lemma 4).

    An initialization is a finite execution containing exactly one
    [init(v)_i] per process and nothing else. Lemma 4's proof walks the
    "staircase" α_0, ..., α_n where α_i gives input 1 to the first [i]
    processes and 0 to the rest, and locates a bivalent one. This module
    materializes that scan, analyzing the full G(C) of each initialization. *)

open Ioa

type entry = {
  inputs : Value.t list;  (** Input vector, process 0 first. *)
  analysis : Valence.t;  (** Valence analysis of the initialization's G(C). *)
  verdict : Valence.verdict;  (** Verdict of the initialization itself. *)
}

val staircase : ?max_states:int -> Model.System.t -> entry list
(** The n+1 Lemma-4 initializations α_0 … α_n, in order. *)

val all_binary : ?max_states:int -> Model.System.t -> entry list
(** All 2^n binary initializations (for small n; raises if n > 16). *)

val find_bivalent : ?max_states:int -> Model.System.t -> entry option
(** The first bivalent entry of the staircase, as Lemma 4 produces it. *)

val staircase_flip : ?max_states:int -> Model.System.t -> (entry * entry) option
(** When no staircase entry is bivalent: the consecutive pair
    (α_i 0-valent, α_{i+1} 1-valent or bivalent) that the Lemma 4 argument
    turns into a contradiction. [None] if a bivalent entry exists first. *)

val pp_entry : Format.formatter -> entry -> unit
