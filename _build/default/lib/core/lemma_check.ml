type failure = { description : string }

let pp_failure ppf f = Format.pp_print_string ppf f.description

let fail fmt = Format.kasprintf (fun description -> { description }) fmt

let lemma1_applicability analysis =
  let g = Valence.graph analysis in
  let failures = ref [] in
  Graph.iter_states g (fun v _ ->
    let applicable = List.map fst (Graph.succs g v) in
    List.iter
      (fun (e', w) ->
        List.iter
          (fun e ->
            if (not (Model.Task.equal e e')) && Option.is_none (Graph.successor g w e) then
              failures :=
                fail "Lemma 1: %a applicable at v%d but not after %a" Model.Task.pp e v
                  Model.Task.pp e'
                :: !failures)
          applicable)
      (Graph.succs g v));
  List.rev !failures

let lemma3_dichotomy analysis =
  let g = Valence.graph analysis in
  let failures = ref [] in
  Graph.iter_states g (fun v _ ->
    if Valence.equal_verdict (Valence.verdict analysis v) Valence.Blank then
      failures := fail "Lemma 3: vertex %d is blank (no reachable decision)" v :: !failures);
  List.rev !failures

let univalent_states analyses =
  List.concat_map
    (fun analysis ->
      let g = Valence.graph analysis in
      let acc = ref [] in
      Graph.iter_states g (fun v s ->
        match Valence.verdict analysis v with
        | Valence.Zero_valent -> acc := (s, 0) :: !acc
        | Valence.One_valent -> acc := (s, 1) :: !acc
        | Valence.Bivalent | Valence.Blank -> ());
      !acc)
    analyses

let check_pairs ~similar ~what sys analyses =
  let states = Array.of_list (univalent_states analyses) in
  let failures = ref [] in
  let n = Array.length states in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s0, v0 = states.(i) and s1, v1 = states.(j) in
      if v0 <> v1 then begin
        match similar sys s0 s1 with
        | Some witness ->
          failures :=
            fail "%s: univalent states with opposite valences are %s-similar" what witness
            :: !failures
        | None -> ()
      end
    done
  done;
  List.rev !failures

let lemma6_j_similarity sys analyses =
  check_pairs ~what:"Lemma 6" sys analyses ~similar:(fun sys s0 s1 ->
    match Similarity.j_witnesses sys s0 s1 with
    | j :: _ -> Some (Printf.sprintf "%d (process)" j)
    | [] -> None)

let lemma7_k_similarity ~failures sys analyses =
  let silenceable k =
    let c = sys.Model.System.services.(k) in
    Array.length c.Model.Service.endpoints <= failures
    || c.Model.Service.resilience < failures
  in
  check_pairs ~what:"Lemma 7" sys analyses ~similar:(fun sys s0 s1 ->
    match List.filter silenceable (Similarity.k_witnesses sys s0 s1) with
    | k :: _ -> Some (Printf.sprintf "%d (service)" k)
    | [] -> None)

let scc_vs_naive analysis =
  let g = Valence.graph analysis in
  let reference = Valence_naive.verdicts g in
  let failures = ref [] in
  Graph.iter_states g (fun v _ ->
    if not (Valence.equal_verdict (Valence.verdict analysis v) reference.(v)) then
      failures :=
        fail "valence mismatch at vertex %d: scc=%a naive=%a" v Valence.pp_verdict
          (Valence.verdict analysis v) Valence.pp_verdict reference.(v)
        :: !failures);
  List.rev !failures
