(** The reproduction experiments E1–E11 (see DESIGN.md §4).

    Each experiment returns rows pairing the paper's claim ("expected") with
    what the engine measured; [ok] is the per-row verdict. The [all] battery
    is what `boost experiments` prints and EXPERIMENTS.md records; the bench
    harness wraps the same functions for timing. *)

type row = {
  experiment : string;  (** Experiment id, e.g. ["E5"]. *)
  label : string;  (** Instance description. *)
  expected : string;  (** The paper's claim for this instance. *)
  measured : string;  (** What the engine produced. *)
  ok : bool;
}

val pp_row : Format.formatter -> row -> unit
val pp_table : Format.formatter -> row list -> unit

val e1_canonical_objects : unit -> row list
(** Fig. 1 / Thm. 11: canonical atomic objects satisfy their sequential types
    and the consensus axioms under adversarial schedules. *)

val e2_bivalent_initialization : unit -> row list
(** Lemma 4: the staircase of the Theorem 2 target contains a bivalent
    initialization. *)

val e3_hook_search : unit -> row list
(** Fig. 3 / Lemma 5: the path construction finds a hook; the brute-force
    oracle agrees. *)

val e4_similarity_commutation : unit -> row list
(** Lemma 8 machinery: hook endpoints are k-similar for the pivot service;
    disjoint-participant tasks commute over the whole explored graph. *)

val e5_theorem2 : unit -> row list
(** Theorem 2: refutation witnesses for atomic-object boosting candidates,
    and non-refutation at the resilience boundary. *)

val e6_kset_boosting : unit -> row list
(** §4: k-set-consensus boosting succeeds under failure injection. *)

val e7_theorem9_tob : unit -> row list
(** §5.2/Theorem 9: TOB total order holds; TOB-based boosting is refuted. *)

val e8_failure_detectors : unit -> row list
(** §6.2: P accuracy/completeness; ◇P stabilization. *)

val e9_fd_boosting : unit -> row list
(** §6.3: consensus for any number of failures from 1-resilient 2-process
    perfect detectors; the emulated n-process detector is perfect. *)

val e10_theorem10 : unit -> row list
(** Theorem 10: all-connected general services cannot boost. *)

val e11_flp_instance : unit -> row list
(** The FLP-flavoured register-only instances (f = 0 heritage results). *)

val e12_message_passing : unit -> row list
(** The TR [2] / FLP setting: consensus candidates over the reliable network
    service are refuted on termination (safe variant) or agreement (live
    variant). *)

val e13_universal : unit -> row list
(** §1's universality claim: a wait-free linearizable counter from consensus
    slots and registers, validated under adversarial runs. *)

val all : unit -> row list
(** The full battery, in order. *)
