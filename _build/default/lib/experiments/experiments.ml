open Ioa

type row = {
  experiment : string;
  label : string;
  expected : string;
  measured : string;
  ok : bool;
}

let pp_row ppf r =
  Format.fprintf ppf "%-4s %-42s | expected: %-38s | measured: %-44s | %s" r.experiment
    r.label r.expected r.measured
    (if r.ok then "OK" else "MISMATCH")

let pp_table ppf rows =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    rows

let row experiment label expected measured ok = { experiment; label; expected; measured; ok }

(* --- helpers --- *)

let initialized sys inputs =
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i (Value.int v), i + 1)
    (Model.Exec.init (Model.System.initial_state sys), 0)
    inputs
  |> fst

let random_consensus_runs ?(policy = Model.System.dummy_policy) ~sys ~inputs ~seeds
    ~max_failures ~k () =
  let ok = ref 0 in
  for seed = 0 to seeds - 1 do
    let exec0 = initialized sys inputs in
    let sched = Model.Scheduler.random ~seed ~fail_prob:0.02 ~max_failures sys in
    let exec, _ =
      Model.Scheduler.run ~policy ~stop_when:Model.Properties.termination ~max_steps:60_000
        sys exec0 sched
    in
    let r = Model.Properties.check ~k (Model.Exec.last_state exec) in
    if
      r.Model.Properties.agreement && r.Model.Properties.validity
      && r.Model.Properties.termination
      && Model.Properties.per_process_agreement exec
    then incr ok
  done;
  !ok

let outcome_summary (report : Engine.Counterexample.report) =
  Format.asprintf "%a" Engine.Counterexample.pp_outcome report.Engine.Counterexample.outcome

let refuted_nonterm (report : Engine.Counterexample.report) =
  match report.Engine.Counterexample.outcome with
  | Engine.Counterexample.Refuted (Engine.Counterexample.Non_termination { proven; _ }) ->
    proven
  | _ -> false

let refuted_agreement (report : Engine.Counterexample.report) =
  match report.Engine.Counterexample.outcome with
  | Engine.Counterexample.Refuted (Engine.Counterexample.Agreement_violation _) -> true
  | _ -> false

let not_refuted (report : Engine.Counterexample.report) =
  match report.Engine.Counterexample.outcome with
  | Engine.Counterexample.Not_refuted _ -> true
  | _ -> false

(* --- E1 --- *)

let e1_canonical_objects () =
  let totality =
    let types =
      [
        "consensus", Spec.Seq_consensus.make ();
        "k-set(2,4)", Spec.Seq_kset.make ~k:2 ~n:4;
        ( "read/write",
          Spec.Seq_register.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0) );
        "test&set", Spec.Seq_tas.make ();
        "compare&swap", Spec.Seq_cas.make ~values:[ Value.int 0; Value.int 1 ] ~initial:(Value.int 0);
        "fifo-queue", Spec.Seq_queue.make ~elements:[ Value.str "a"; Value.str "b" ] ();
      ]
    in
    let bad =
      List.filter (fun (_, t) -> Result.is_error (Spec.Seq_type.check_total t)) types
    in
    row "E1" "sequential type totality (6 types)" "all total"
      (Printf.sprintf "%d/6 total" (6 - List.length bad))
      (bad = [])
  in
  let axioms =
    let sys = Protocols.Direct.system ~n:3 ~f:2 in
    let ok =
      random_consensus_runs ~sys ~inputs:[ 0; 1; 1 ] ~seeds:20 ~max_failures:2 ~k:1 ()
    in
    row "E1" "canonical consensus object axioms (Thm 11)" "20/20 runs satisfy axioms"
      (Printf.sprintf "%d/20 runs ok" ok)
      (ok = 20)
  in
  let implements =
    let sys = Protocols.Direct.system ~n:2 ~f:1 in
    let vec = [ Value.int 1; Value.int 0 ] in
    let impl = Model.To_ioa.closed ~inputs:vec sys in
    let spec = Model.To_ioa.closed_spec ~inputs:vec ~f:1 sys in
    let verdict =
      Ioa.Implements.check_traces ~impl ~spec
        ~inputs:[ Services.Sig_names.fail 0; Services.Sig_names.fail 1 ]
        ~max_states:300_000
    in
    row "E1" "§2.2.4: system implements canonical consensus object"
      "finite-trace inclusion holds"
      (Format.asprintf "%a" Ioa.Implements.pp_verdict verdict)
      (match verdict with Ioa.Implements.Included -> true | _ -> false)
  in
  [ totality; axioms; implements ]

(* --- E2 --- *)

let e2_bivalent_initialization () =
  List.map
    (fun (n, f) ->
      let sys = Protocols.Direct.system ~n ~f in
      let entries = Engine.Initialization.staircase sys in
      let verdicts =
        List.map
          (fun e ->
            Format.asprintf "%a" Engine.Valence.pp_verdict e.Engine.Initialization.verdict)
          entries
      in
      let has_bivalent = Option.is_some (Engine.Initialization.find_bivalent sys) in
      row "E2"
        (Printf.sprintf "staircase direct n=%d f=%d" n f)
        "some α_i bivalent (Lemma 4)"
        (String.concat ", " verdicts)
        has_bivalent)
    [ 2, 0; 3, 0; 3, 1 ]

(* --- E3 --- *)

let e3_hook_search () =
  List.map
    (fun (name, sys) ->
      match Engine.Initialization.find_bivalent sys with
      | None -> row "E3" name "hook found" "no bivalent initialization" false
      | Some entry -> (
        let a = entry.Engine.Initialization.analysis in
        let g = Engine.Valence.graph a in
        match Engine.Hook.find a, Engine.Hook.find_brute a with
        | Engine.Hook.Hook h, Some h' ->
          let checked =
            Result.is_ok (Engine.Hook.check a h) && Result.is_ok (Engine.Hook.check a h')
          in
          row "E3" name "hook found; Fig. 3 and brute-force agree"
            (Printf.sprintf "hook at depth %d over %d states" (List.length h.Engine.Hook.base_path)
               (Engine.Graph.size g))
            checked
        | r, _ ->
          row "E3" name "hook found"
            (Format.asprintf "%a" Engine.Hook.pp_result r)
            false))
    [
      "direct n=2 f=0", Protocols.Direct.system ~n:2 ~f:0;
      "direct n=3 f=0", Protocols.Direct.system ~n:3 ~f:0;
      "tob n=2 f=0", Protocols.Tob_direct.system ~n:2 ~f:0;
    ]

(* --- E4 --- *)

let e4_similarity_commutation () =
  let sys = Protocols.Direct.system ~n:2 ~f:0 in
  match Engine.Initialization.find_bivalent sys with
  | None -> [ row "E4" "direct n=2 f=0" "bivalent init" "missing" false ]
  | Some entry -> (
    let a = entry.Engine.Initialization.analysis in
    let violations = Engine.Commute.check_disjoint a in
    let commute_row =
      row "E4" "disjoint-participant commutation (Lemma 8 Claim 2)" "0 violations"
        (Printf.sprintf "%d violations over %d states" (List.length violations)
           (Engine.Graph.size (Engine.Valence.graph a)))
        (violations = [])
    in
    match Engine.Hook.find a with
    | Engine.Hook.Hook h ->
      let g = Engine.Valence.graph a in
      let s0 = Engine.Graph.state g h.Engine.Hook.alpha0 in
      let s1 = Engine.Graph.state g h.Engine.Hook.alpha1 in
      let ks = Engine.Similarity.k_witnesses sys s0 s1 in
      let intersect = Engine.Commute.check_hook_intersection a h in
      [
        commute_row;
        row "E4" "hook endpoints k-similar (Claim 4)" "pivot service is a k-witness"
          (Printf.sprintf "k-witnesses: {%s}"
             (String.concat "," (List.map string_of_int ks)))
          (ks <> []);
        row "E4" "hook participants intersect (Claims 1-2)" "intersection nonempty"
          (match intersect with Ok () -> "nonempty" | Error e -> e)
          (Result.is_ok intersect);
      ]
    | r ->
      [ commute_row; row "E4" "hook" "found" (Format.asprintf "%a" Engine.Hook.pp_result r) false ])

(* --- E5 --- *)

let e5_theorem2 () =
  let refute ~failures sys = Engine.Counterexample.refute ~failures sys in
  [
    (let r = refute ~failures:1 (Protocols.Direct.system ~n:2 ~f:0) in
     row "E5" "direct n=2, f=0 object, claim 1-resilient" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r = refute ~failures:1 (Protocols.Direct.system ~n:3 ~f:0) in
     row "E5" "direct n=3, f=0 object, claim 1-resilient" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r = refute ~failures:2 (Protocols.Direct.system ~n:3 ~f:1) in
     row "E5" "direct n=3, f=1 object, claim 2-resilient" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r = refute ~failures:1 (Protocols.Direct.system ~n:3 ~f:1) in
     row "E5" "direct n=3, f=1 object, claim 1-resilient (boundary)" "NOT refuted"
       (outcome_summary r) (not_refuted r));
    (let r = refute ~failures:1 (Protocols.Direct.system ~n:2 ~f:1) in
     row "E5" "direct n=2, wait-free object, claim 1-resilient (boundary)" "NOT refuted"
       (outcome_summary r) (not_refuted r));
    (let r = refute ~failures:1 (Protocols.Split.system ~n:2) in
     row "E5" "split objects n=2" "refuted (agreement violation)" (outcome_summary r)
       (refuted_agreement r));
    (let r = refute ~failures:1 (Protocols.Tas_consensus.system ~f:0) in
     row "E5" "test&set consensus, f=0 object, claim 1-resilient" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r = refute ~failures:1 (Protocols.Tas_consensus.system ~f:1) in
     row "E5" "test&set consensus, wait-free object (boundary)" "NOT refuted"
       (outcome_summary r) (not_refuted r));
    (let r = refute ~failures:1 (Protocols.Queue_consensus.system ~f:0) in
     row "E5" "queue consensus, f=0 object, claim 1-resilient" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r = refute ~failures:1 (Protocols.Queue_consensus.system ~f:1) in
     row "E5" "queue consensus, wait-free object (boundary)" "NOT refuted"
       (outcome_summary r) (not_refuted r));
  ]

(* --- E6 --- *)

let e6_kset_boosting () =
  List.map
    (fun (groups, group_size) ->
      let n = groups * group_size in
      let sys = Protocols.Kset_boost.system ~groups ~group_size in
      let ok =
        random_consensus_runs ~sys ~inputs:(List.init n Fun.id) ~seeds:20
          ~max_failures:(n - 1) ~k:groups ()
      in
      row "E6"
        (Printf.sprintf "%d-set consensus, %d procs, ≤%d failures (§4)" groups n (n - 1))
        "20/20 runs: ≤k agreement, validity, termination"
        (Printf.sprintf "%d/20 runs ok" ok)
        (ok = 20))
    [ 2, 2; 2, 3; 3, 2 ]

(* --- E7 --- *)

let e7_theorem9_tob () =
  let witness =
    List.map
      (fun n ->
        let r = Engine.Counterexample.refute ~failures:1 (Protocols.Tob_direct.system ~n ~f:0) in
        row "E7"
          (Printf.sprintf "TOB-based consensus n=%d, f=0 TOB (Thm 9)" n)
          "refuted (termination, lasso)" (outcome_summary r) (refuted_nonterm r))
      [ 2; 3 ]
  in
  let boundary =
    let r = Engine.Counterexample.refute ~failures:1 (Protocols.Tob_direct.system ~n:2 ~f:1) in
    row "E7" "TOB-based consensus n=2, wait-free TOB (boundary)" "NOT refuted"
      (outcome_summary r) (not_refuted r)
  in
  witness @ [ boundary ]

(* --- E8 --- *)

let e8_failure_detectors () =
  (* Drive a P service with listeners; check accuracy at every step and
     completeness at the end. *)
  let listener ~fd_id pid =
    Model.Process.make ~pid
      ~start:(Spec.Iset.to_value Spec.Iset.empty)
      ~step:(fun s -> Model.Process.Internal s)
      ~on_init:(fun s _ -> s)
      ~on_response:(fun s ~service b ->
        if String.equal service fd_id && Spec.Op.is "suspect" b then Spec.Op.arg b else s)
      ()
  in
  let n = 3 in
  let endpoints = List.init n Fun.id in
  let sys =
    Model.System.make
      ~processes:(List.init n (listener ~fd_id:"fd"))
      ~services:
        [
          Model.Service.general ~coalesce:true ~id:"fd" ~endpoints ~f:(n - 1)
            (Services.Perfect_fd.make ~endpoints);
        ]
  in
  let exec0 = Model.Exec.init (Model.System.initial_state sys) in
  let sched = Model.Scheduler.round_robin ~faults:[ (20, 1) ] ~quiesce:false sys in
  let exec, _ = Model.Scheduler.run ~max_steps:2_000 sys exec0 sched in
  let accurate = ref true in
  List.iter
    (fun (step : Model.Exec.step) ->
      let s = step.Model.Exec.state in
      List.iter
        (fun pid ->
          if not (Spec.Iset.mem pid s.Model.State.failed) then begin
            let suspects = Spec.Iset.of_value s.Model.State.procs.(pid) in
            if not (Spec.Iset.subset suspects s.Model.State.failed) then accurate := false
          end)
        endpoints)
    (Model.Exec.steps exec);
  let final = Model.Exec.last_state exec in
  let complete =
    List.for_all
      (fun pid ->
        Spec.Iset.mem pid final.Model.State.failed
        || Spec.Iset.mem 1 (Spec.Iset.of_value final.Model.State.procs.(pid)))
      endpoints
  in
  let needs_p =
    let sys = Protocols.Fd_boost.system_paranoid_ep ~n:2 in
    let r = Engine.Counterexample.refute ~max_states:500_000 ~failures:1 sys in
    row "E8" "P vs ◇P: rotating coordinator under adversarial ◇P"
      "agreement violated (the algorithm needs strong accuracy)"
      (outcome_summary r) (refuted_agreement r)
  in
  [
    row "E8" "P: strong accuracy (every step)" "suspects ⊆ failed always"
      (if !accurate then "held at every step" else "violated")
      !accurate;
    row "E8" "P: strong completeness" "crash eventually suspected by all survivors"
      (if complete then "held" else "violated")
      complete;
    needs_p;
  ]

(* --- E9 --- *)

let e9_fd_boosting () =
  let consensus =
    List.map
      (fun n ->
        let sys = Protocols.Fd_boost.system ~n in
        let ok =
          random_consensus_runs ~sys ~inputs:(List.init n Fun.id) ~seeds:15
            ~max_failures:(n - 1) ~k:1 ()
        in
        row "E9"
          (Printf.sprintf "consensus n=%d from pairwise 1-resilient P (§6.3), ≤%d failures" n
             (n - 1))
          "15/15 runs: agreement, validity, termination"
          (Printf.sprintf "%d/15 runs ok" ok)
          (ok = 15))
      [ 3; 4 ]
  in
  let network =
    let sys = Protocols.Fd_network.system ~n:3 in
    let exec0 = Model.Exec.init (Model.System.initial_state sys) in
    let sched = Model.Scheduler.round_robin ~faults:[ (30, 1) ] ~quiesce:false sys in
    let exec, _ = Model.Scheduler.run ~max_steps:5_000 sys exec0 sched in
    let s = Model.Exec.last_state exec in
    let good =
      List.for_all
        (fun pid ->
          Spec.Iset.mem pid s.Model.State.failed
          || Spec.Iset.equal (Protocols.Fd_network.output_of s ~pid) s.Model.State.failed)
        [ 0; 1; 2 ]
    in
    row "E9" "emulated wait-free n-process P from pairwise P + registers"
      "output = failed set at all survivors"
      (if good then "exact" else "wrong")
      good
  in
  consensus @ [ network ]

(* --- E10 --- *)

let e10_theorem10 () =
  [
    (let r = Engine.Counterexample.refute ~failures:1 (Protocols.Fd_allconnected.system ~n:3 ~f:0) in
     row "E10" "all-connected 0-resilient P + registers, claim 1-resilient (Thm 10)"
       "refuted (termination, lasso)" (outcome_summary r) (refuted_nonterm r));
    (let r = Engine.Counterexample.refute ~failures:2 (Protocols.Fd_allconnected.system ~n:3 ~f:1) in
     row "E10" "all-connected 1-resilient P + registers, claim 2-resilient (Thm 10)"
       "refuted (termination, lasso)" (outcome_summary r) (refuted_nonterm r));
  ]

(* --- E11 --- *)

let e11_flp_instance () =
  [
    (let r = Engine.Counterexample.refute ~failures:1 (Protocols.Register_vote.system ()) in
     row "E11" "racy register voting (registers only)" "refuted (agreement violation)"
       (outcome_summary r) (refuted_agreement r));
    (let r = Engine.Counterexample.refute ~failures:1 (Protocols.Register_wait.system ()) in
     row "E11" "blocking register voting (registers only)" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
  ]

(* --- E12: message passing (the TR [2] / FLP setting) --- *)

let e12_message_passing () =
  [
    (let r = Engine.Counterexample.refute ~failures:1 (Protocols.Mp_consensus.all_system ~n:3) in
     row "E12" "mp consensus, wait for all n values (safe)" "refuted (termination, lasso)"
       (outcome_summary r) (refuted_nonterm r));
    (let r =
       Engine.Counterexample.refute ~failures:1 (Protocols.Mp_consensus.quorum_system ~n:3)
     in
     row "E12" "mp consensus, wait for n-1 values (live)" "refuted (agreement violation)"
       (outcome_summary r) (refuted_agreement r));
  ]

(* --- E13: the universal construction (§1) --- *)

let e13_universal () =
  let n = 3 in
  let sys =
    Protocols.Universal.system ~obj:(Spec.Seq_counter.make ())
      ~ops:(List.init n (fun _ -> Spec.Seq_counter.increment))
  in
  let ok = ref 0 in
  for seed = 0 to 14 do
    let exec0 = initialized sys (List.init n Fun.id) in
    let sched = Model.Scheduler.random ~seed ~fail_prob:0.02 ~max_failures:(n - 1) sys in
    let exec, _ =
      Model.Scheduler.run ~policy:Model.System.dummy_policy
        ~stop_when:Model.Properties.termination ~max_steps:60_000 sys exec0 sched
    in
    let final = Model.Exec.last_state exec in
    let resps =
      List.map (fun (_, v) -> Spec.Op.int_arg v) (Model.State.decided_pairs final)
    in
    if
      Model.Properties.termination final
      && List.length resps = List.length (List.sort_uniq Int.compare resps)
    then incr ok
  done;
  [
    row "E13" "wait-free counter from consensus slots (universal construction)"
      "15/15 runs: wait-free, responses distinct (linearizable)"
      (Printf.sprintf "%d/15 runs ok" !ok)
      (!ok = 15);
  ]

let all () =
  List.concat
    [
      e1_canonical_objects ();
      e2_bivalent_initialization ();
      e3_hook_search ();
      e4_similarity_commutation ();
      e5_theorem2 ();
      e6_kset_boosting ();
      e7_theorem9_tob ();
      e8_failure_detectors ();
      e9_fd_boosting ();
      e10_theorem10 ();
      e11_flp_instance ();
      e12_message_passing ();
      e13_universal ();
    ]
