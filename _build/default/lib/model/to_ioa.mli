(** The complete system C as a single generic I/O automaton (§2.2.3).

    This is the formal view the paper's definitions quantify over: the
    parallel composition of processes, services and registers, with the
    communication actions hidden. External actions are [init(v)_i] and
    [fail_i] (inputs) and [decide(v)_i] (outputs); everything else —
    invocations, responses, performs, computes, process steps, dummies — is
    internal.

    Together with {!Ioa.Rename} and {!Ioa.Implements} this makes the paper's
    §2.2.4 definition of "solving f-resilient consensus" executable: the
    system automaton implements the canonical consensus object for the full
    endpoint set, with [init]/[decide] identified with the object's
    invocations and responses. The real-vs-dummy nondeterminism of canonical
    services is preserved: when both resolutions are enabled, the task
    enumerates both actions. *)

val automaton : System.t -> Ioa.Automaton.t
(** The generic-automaton view of a system. State encoding is an opaque
    {!Ioa.Value} packing of {!State.t}; use {!encode_state}/{!decode_state}
    to cross the boundary. *)

val encode_state : State.t -> Ioa.Value.t
val decode_state : System.t -> Ioa.Value.t -> State.t

val consensus_spec : System.t -> f:int -> Ioa.Automaton.t
(** The §2.2.4 specification: the canonical f-resilient binary consensus
    object for the system's full endpoint set, renamed so that its
    invocation at endpoint i is [init(v)_i] and its response is
    [decide(v)_i]. A system solves f-resilient consensus iff its
    {!automaton} implements this (§2.2.4). *)

val environment : inputs:Ioa.Value.t list -> Ioa.Automaton.t
(** A closing environment: one task per process that outputs [init(v_i)_i]
    exactly once. Composing it with {!automaton} (and with
    {!consensus_spec}) closes the init interface, so bounded trace-inclusion
    checks terminate — repeated open [init] inputs would otherwise grow the
    specification object's buffers without bound. *)

val closed : inputs:Ioa.Value.t list -> System.t -> Ioa.Automaton.t
(** [automaton sys] composed with [environment ~inputs]. The [init] actions
    become outputs of the composition (not hidden), so they still appear in
    traces and synchronize with the specification side of an inclusion
    check. *)

val closed_spec : inputs:Ioa.Value.t list -> f:int -> System.t -> Ioa.Automaton.t
(** [consensus_spec] composed with the same environment. *)
