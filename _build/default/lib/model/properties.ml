open Ioa

type report = {
  agreement : bool;
  validity : bool;
  termination : bool;
  distinct_decisions : Value.t list;
}

let pp_report ppf r =
  Format.fprintf ppf "agreement=%b validity=%b termination=%b decided={%a}" r.agreement
    r.validity r.termination
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") Value.pp)
    r.distinct_decisions

let agreement ?(k = 1) (s : State.t) = List.length (State.decided_values s) <= k

let validity (s : State.t) =
  let inputs =
    Array.to_list s.State.inputs |> List.filter_map Fun.id |> List.sort_uniq Value.compare
  in
  List.for_all (fun v -> List.exists (Value.equal v) inputs) (State.decided_values s)

let termination (s : State.t) =
  let n = Array.length s.State.procs in
  List.for_all
    (fun i ->
      Spec.Iset.mem i s.State.failed
      || Option.is_none s.State.inputs.(i)
      || Option.is_some s.State.decisions.(i))
    (List.init n Fun.id)

let per_process_agreement exec =
  let seen = Hashtbl.create 8 in
  List.for_all
    (fun (i, v) ->
      match Hashtbl.find_opt seen i with
      | None ->
        Hashtbl.replace seen i v;
        true
      | Some v' -> Value.equal v v')
    (Exec.decide_events exec)

let check ?k s =
  {
    agreement = agreement ?k s;
    validity = validity s;
    termination = termination s;
    distinct_decisions = State.decided_values s;
  }
