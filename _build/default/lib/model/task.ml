type t =
  | Proc of int
  | Svc_perform of { svc : int; endpoint : int }
  | Svc_output of { svc : int; endpoint : int }
  | Svc_compute of { svc : int; glob : string }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf = function
  | Proc i -> Format.fprintf ppf "proc[%d]" i
  | Svc_perform { svc; endpoint } -> Format.fprintf ppf "perform[s%d,%d]" svc endpoint
  | Svc_output { svc; endpoint } -> Format.fprintf ppf "output[s%d,%d]" svc endpoint
  | Svc_compute { svc; glob } -> Format.fprintf ppf "compute[s%d,%s]" svc glob

let to_string t = Format.asprintf "%a" pp t
