(** Tasks of the complete system (paper §2.2.3).

    Each process has a single task; each service has an i-perform and an
    i-output task per endpoint and a g-compute task per global task name.
    These partition all locally controlled actions of the composed system.
    Tasks are the unit of fairness and the edges of the execution graph G(C)
    (§3.3). *)

type t =
  | Proc of int  (** The single task of process [pid]. *)
  | Svc_perform of { svc : int; endpoint : int }
      (** i-perform task of the service at position [svc]. *)
  | Svc_output of { svc : int; endpoint : int }  (** i-output task. *)
  | Svc_compute of { svc : int; glob : string }  (** g-compute task. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
