lib/model/process.mli: Ioa Value
