lib/model/linearize.mli: Exec Format Ioa Spec Value
