lib/model/event.ml: Format Ioa Services Stdlib Task
