lib/model/service.mli: Format Spec
