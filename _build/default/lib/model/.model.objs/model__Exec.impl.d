lib/model/exec.ml: Event Format Ioa List Option State System Task
