lib/model/process.ml: Ioa Value
