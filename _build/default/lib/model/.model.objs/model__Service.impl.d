lib/model/service.ml: Array Format Int List Spec
