lib/model/task.mli: Format
