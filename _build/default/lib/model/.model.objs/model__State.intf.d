lib/model/state.mli: Format Ioa Spec Value
