lib/model/properties.mli: Exec Format Ioa State Value
