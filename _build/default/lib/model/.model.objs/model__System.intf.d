lib/model/system.mli: Event Format Ioa Process Service State Task
