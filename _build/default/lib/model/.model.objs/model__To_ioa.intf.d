lib/model/to_ioa.mli: Ioa State System
