lib/model/system.ml: Array Event Format Hashtbl Ioa List Option Printf Process Service Spec State String Task
