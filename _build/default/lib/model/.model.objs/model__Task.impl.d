lib/model/task.ml: Format Stdlib
