lib/model/state.ml: Array Format Fun Int Ioa List Option Spec Value
