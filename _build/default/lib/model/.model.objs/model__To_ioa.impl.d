lib/model/to_ioa.ml: Array Event Fun Ioa List Option Printf Service Services Spec State String System Task
