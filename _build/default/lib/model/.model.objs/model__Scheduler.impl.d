lib/model/scheduler.ml: Array Exec Format Fun List Random Spec State Stdlib System Task
