lib/model/exec.mli: Event Format Ioa State System Task
