lib/model/linearize.ml: Array Event Exec Format Ioa List Spec String
