lib/model/properties.ml: Array Exec Format Fun Hashtbl Ioa List Option Spec State Value
