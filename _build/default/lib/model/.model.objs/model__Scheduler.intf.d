lib/model/scheduler.mli: Exec Format State System Task
