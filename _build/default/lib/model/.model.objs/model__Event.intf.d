lib/model/event.mli: Format Ioa Task
