(** Process automata P_i (paper §2.2.1).

    A process is a deterministic automaton with a single task comprising all
    its locally controlled actions. Its inputs are [init(v)_i], responses
    from connected services, and [fail_i]; its outputs are invocations on
    services and [decide(v)_i]. In every state some locally controlled
    action is enabled — {!outcome} makes this structural: [step] is total and
    [Internal] with an unchanged state is the "dummy" step.

    The [fail_i] semantics of the paper (no output action enabled from the
    failure onward) is enforced by the system layer: a failed process's task
    always takes a dummy internal step. *)

open Ioa

type outcome =
  | Invoke of { service : string; op : Value.t; next : Value.t }
      (** Issue invocation [op] on [service] and move to [next]. *)
  | Decide of { value : Value.t; next : Value.t }
      (** Output [decide(value)_i], record the decision, move to [next]. *)
  | Internal of Value.t
      (** An internal step; returning the current state is a no-op dummy. *)

type t = {
  pid : int;
  start : Value.t;
  step : Value.t -> outcome;  (** The single task's deterministic choice. *)
  on_init : Value.t -> Value.t -> Value.t;
      (** [on_init state v] handles the [init(v)_i] input action. *)
  on_response : Value.t -> service:string -> Value.t -> Value.t;
      (** [on_response state ~service b] handles the response input
          [b_{i,k}]. *)
}

val make :
  pid:int ->
  start:Value.t ->
  step:(Value.t -> outcome) ->
  ?on_init:(Value.t -> Value.t -> Value.t) ->
  ?on_response:(Value.t -> service:string -> Value.t -> Value.t) ->
  unit ->
  t
(** [on_init] defaults to replacing the whole state with the input; both
    handlers default to ignoring the event if omitted where noted. *)

val idle : pid:int -> t
(** A process that only ever takes dummy internal steps — useful as a passive
    observer in tests. *)
