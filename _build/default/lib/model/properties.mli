(** Consensus and k-set-consensus correctness conditions (paper §2.2.4 and
    Appendix B).

    These are the agreement, validity and {e modified termination} conditions
    of the paper: inputs arrive via [init(v)_i] actions, not every process
    need receive an input, and only nonfaulty processes that received an
    input must decide. *)

open Ioa

type report = {
  agreement : bool;  (** ≤ k distinct decided values ([k = 1] for consensus). *)
  validity : bool;  (** Every decided value is some process's input. *)
  termination : bool;
      (** Every nonfaulty process that received an input has decided. *)
  distinct_decisions : Value.t list;  (** The decided values, deduplicated. *)
}

val pp_report : Format.formatter -> report -> unit

val agreement : ?k:int -> State.t -> bool
(** [agreement ~k s] holds iff at most [k] (default 1) distinct values have
    been decided. *)

val validity : State.t -> bool
(** Every recorded decision equals some recorded input. *)

val termination : State.t -> bool
(** Modified termination at this state: all nonfaulty input-receiving
    processes have decided. Meaningful at the end of a fair execution. *)

val per_process_agreement : Exec.t -> bool
(** No process emits two [decide] events with different values. *)

val check : ?k:int -> State.t -> report
(** Full report at a (final) state. *)
