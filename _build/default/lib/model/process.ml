open Ioa

type outcome =
  | Invoke of { service : string; op : Value.t; next : Value.t }
  | Decide of { value : Value.t; next : Value.t }
  | Internal of Value.t

type t = {
  pid : int;
  start : Value.t;
  step : Value.t -> outcome;
  on_init : Value.t -> Value.t -> Value.t;
  on_response : Value.t -> service:string -> Value.t -> Value.t;
}

let make ~pid ~start ~step ?(on_init = fun _state v -> v)
    ?(on_response = fun state ~service:_ _ -> state) () =
  { pid; start; step; on_init; on_response }

let idle ~pid =
  make ~pid ~start:Value.unit ~step:(fun s -> Internal s) ~on_init:(fun s _ -> s) ()
