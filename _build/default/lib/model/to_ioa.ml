module Value = Ioa.Value
module SN = Services.Sig_names

(* --- State packing --- *)

let encode_opt = function
  | None -> Value.str "none"
  | Some v -> Value.pair (Value.str "some") v

let decode_opt v =
  match v with
  | Value.Str "none" -> None
  | Value.Pair (Value.Str "some", x) -> Some x
  | _ -> raise (Value.Type_error "expected option encoding")

let encode_bufs bufs = Value.list (Array.to_list bufs |> List.map Value.list)

let decode_bufs v = Value.to_list v |> List.map Value.to_list |> Array.of_list

let encode_state (s : State.t) =
  Value.list
    [
      Value.list (Array.to_list s.State.procs);
      Value.list
        (Array.to_list s.State.svcs
        |> List.map (fun (svc : State.svc) ->
             Value.triple svc.State.value (encode_bufs svc.State.inv_bufs)
               (encode_bufs svc.State.resp_bufs)));
      Spec.Iset.to_value s.State.failed;
      Value.list (Array.to_list s.State.decisions |> List.map encode_opt);
      Value.list (Array.to_list s.State.inputs |> List.map encode_opt);
    ]

let decode_state (_sys : System.t) v =
  match Value.to_list v with
  | [ procs; svcs; failed; decisions; inputs ] ->
    {
      State.procs = Array.of_list (Value.to_list procs);
      svcs =
        Value.to_list svcs
        |> List.map (fun t ->
             let value, inv, resp = Value.to_triple t in
             { State.value; inv_bufs = decode_bufs inv; resp_bufs = decode_bufs resp })
        |> Array.of_list;
      failed = Spec.Iset.of_value failed;
      decisions = Array.of_list (List.map decode_opt (Value.to_list decisions));
      inputs = Array.of_list (List.map decode_opt (Value.to_list inputs));
    }
  | _ -> raise (Value.Type_error "expected packed system state")

(* --- Action dispatch --- *)

(* The task responsible for a locally controlled action, and the policy that
   makes the canonical automaton's real-vs-dummy choice produce it. *)
let task_of_action (sys : System.t) act =
  let svc_pos_opt id =
    let rec go i =
      if i >= Array.length sys.System.services then None
      else if String.equal sys.System.services.(i).Service.id id then Some i
      else go (i + 1)
    in
    go 0
  in
  match SN.as_decide act with
  | Some (i, _) -> Some (Task.Proc i, System.real_policy)
  | None -> (
    match SN.as_invoke act with
    | Some (i, _, _) -> Some (Task.Proc i, System.real_policy)
    | None -> (
      match SN.as_perform act with
      | Some (i, k) ->
        Option.map
          (fun svc -> Task.Svc_perform { svc; endpoint = i }, System.real_policy)
          (svc_pos_opt k)
      | None -> (
        match SN.as_respond act with
        | Some (i, k, _) ->
          Option.map
            (fun svc -> Task.Svc_output { svc; endpoint = i }, System.real_policy)
            (svc_pos_opt k)
        | None -> (
          match SN.as_compute act with
          | Some (g, k) ->
            Option.map
              (fun svc -> Task.Svc_compute { svc; glob = g }, System.real_policy)
              (svc_pos_opt k)
          | None -> (
            match Ioa.Action.name act with
            | "step" -> Some (Task.Proc (Value.to_int (Ioa.Action.arg act)), System.real_policy)
            | "dummy_perform" | "dummy_output" ->
              let i, k = Value.to_pair (Ioa.Action.arg act) in
              Option.map
                (fun svc ->
                  let endpoint = Value.to_int i in
                  ( (if String.equal (Ioa.Action.name act) "dummy_perform" then
                       Task.Svc_perform { svc; endpoint }
                     else Task.Svc_output { svc; endpoint }),
                    System.dummy_policy ))
                (int_of_string_opt (Value.to_str k))
            | "dummy_compute" ->
              let g, k = Value.to_pair (Ioa.Action.arg act) in
              Option.map
                (fun svc -> Task.Svc_compute { svc; glob = Value.to_str g }, System.dummy_policy)
                (int_of_string_opt (Value.to_str k))
            | _ -> None)))))

let automaton (sys : System.t) =
  let n = System.n_processes sys in
  let in_range i = 0 <= i && i < n in
  let classify act =
    match SN.as_init act with
    | Some (i, _) when in_range i -> Some Ioa.Automaton.Input
    | Some _ -> None
    | None -> (
      match SN.as_fail act with
      | Some i when in_range i -> Some Ioa.Automaton.Input
      | Some _ -> None
      | None -> (
        match SN.as_decide act with
        | Some (i, _) when in_range i -> Some Ioa.Automaton.Output
        | Some _ -> None
        | None -> (
          match task_of_action sys act with
          | Some _ -> Some Ioa.Automaton.Internal
          | None -> None)))
  in
  let step packed act =
    let s = decode_state sys packed in
    match SN.as_init act with
    | Some (i, v) when in_range i -> [ encode_state (snd (System.apply_init sys s i v)) ]
    | Some _ -> []
    | None -> (
      match SN.as_fail act with
      | Some i when in_range i -> [ encode_state (snd (System.apply_fail sys s i)) ]
      | Some _ -> []
      | None -> (
        match task_of_action sys act with
        | None -> []
        | Some (task, policy) -> (
          match System.transition ~policy sys s task with
          | Some (event, s') when Ioa.Action.equal (Event.to_ioa event) act ->
            [ encode_state s' ]
          | _ -> [])))
  in
  let lift_task task =
    let enabled packed =
      let s = decode_state sys packed in
      let candidate policy =
        Option.map (fun (event, _) -> Event.to_ioa event) (System.transition ~policy sys s task)
      in
      let real = candidate System.real_policy in
      let dummy = candidate System.dummy_policy in
      match real, dummy with
      | Some a, Some b when not (Ioa.Action.equal a b) -> [ a; b ]
      | Some a, _ -> [ a ]
      | None, Some b -> [ b ]
      | None, None -> []
    in
    Ioa.Task.make ~label:(Task.to_string task)
      ~contains:(fun act ->
        match task_of_action sys act with
        | Some (task', _) -> Task.equal task task'
        | None -> false)
      ~enabled
  in
  Ioa.Automaton.make ~name:"system"
    ~classify
    ~start:[ encode_state (System.initial_state sys) ]
    ~step
    ~tasks:(Array.to_list sys.System.tasks |> List.map lift_task)

let consensus_spec (sys : System.t) ~f =
  let n = System.n_processes sys in
  let endpoints = List.init n Fun.id in
  let k = "spec" in
  let base = Services.Canonical.atomic (Spec.Seq_consensus.make ()) ~endpoints ~f ~k in
  let forward act =
    match SN.as_invoke act with
    | Some (i, k', op) when String.equal k k' && Spec.Op.is "init" op ->
      SN.init i (Spec.Op.arg op)
    | _ -> (
      match SN.as_respond act with
      | Some (i, k', resp) when String.equal k k' && Spec.Op.is "decide" resp ->
        SN.decide i (Spec.Op.arg resp)
      | _ -> act)
  in
  let backward act =
    match SN.as_init act with
    | Some (i, v) -> SN.invoke i k (Spec.Op.v "init" v)
    | None -> (
      match SN.as_decide act with
      | Some (i, v) -> SN.respond i k (Spec.Op.v "decide" v)
      | None -> act)
  in
  Ioa.Rename.apply ~forward ~backward base

let environment ~inputs =
  let n = List.length inputs in
  let input_of = Array.of_list inputs in
  (* State: canonical set of process ids still to initialize. *)
  let start = Value.set_of_list (List.init n Value.int) in
  let classify act =
    match SN.as_init act with
    | Some (i, v) when i < n && Value.equal v input_of.(i) -> Some Ioa.Automaton.Output
    | _ -> None
  in
  let step s act =
    match SN.as_init act with
    | Some (i, v)
      when i < n && Value.equal v input_of.(i) && Value.set_mem (Value.int i) s ->
      [ Value.set_remove (Value.int i) s ]
    | _ -> []
  in
  let task i =
    Ioa.Task.make
      ~label:(Printf.sprintf "env.init[%d]" i)
      ~contains:(fun act ->
        match SN.as_init act with Some (i', _) -> i = i' | None -> false)
      ~enabled:(fun s ->
        if Value.set_mem (Value.int i) s then [ SN.init i input_of.(i) ] else [])
  in
  Ioa.Automaton.make ~name:"environment" ~classify ~start:[ start ] ~step
    ~tasks:(List.init n task)

let closed ~inputs sys =
  Ioa.Compose.compose ~name:"system||env" [ automaton sys; environment ~inputs ]

let closed_spec ~inputs ~f sys =
  Ioa.Compose.compose ~name:"spec||env" [ consensus_spec sys ~f; environment ~inputs ]
