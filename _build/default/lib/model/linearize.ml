module Value = Ioa.Value

type event =
  | Call of { endpoint : int; op : Value.t }
  | Return of { endpoint : int; resp : Value.t }

let pp_event ppf = function
  | Call { endpoint; op } -> Format.fprintf ppf "call(%d, %a)" endpoint Value.pp op
  | Return { endpoint; resp } -> Format.fprintf ppf "return(%d, %a)" endpoint Value.pp resp

let history exec ~service =
  List.filter_map
    (fun (step : Exec.step) ->
      match step.Exec.event with
      | Event.Invoke (i, k, op) when String.equal k service -> Some (Call { endpoint = i; op })
      | Event.Respond (i, k, resp) when String.equal k service ->
        Some (Return { endpoint = i; resp })
      | _ -> None)
    (Exec.steps exec)

(* Search state: position in the event list, per-endpoint FIFO of invoked but
   not-yet-linearized operations, per-endpoint FIFO of linearized responses
   awaiting their Return event, and the object value. Encoded structurally
   for memoization. *)
let encode_key idx pending inflight value =
  Value.list [ Value.int idx; pending; inflight; value ]

let push_q m i x =
  let q = Value.map_get ~default:Value.queue_empty (Value.int i) m in
  Value.map_add (Value.int i) (Value.queue_push x q) m

let pop_q m i =
  let q = Value.map_get ~default:Value.queue_empty (Value.int i) m in
  match Value.queue_pop q with
  | None -> None
  | Some (x, rest) -> Some (x, Value.map_add (Value.int i) rest m)

let endpoints_with_pending m =
  List.filter_map
    (fun (k, q) -> if Value.queue_is_empty q then None else Some (Value.to_int k))
    (Value.map_bindings m)

let check (t : Spec.Seq_type.t) events =
  let events = Array.of_list events in
  let n = Array.length events in
  let visited = Value.Tbl.create 1024 in
  (* DFS over (idx, pending, inflight, value); returns true iff some
     completion linearizes the suffix from this configuration. *)
  let rec go idx pending inflight value =
    let key = encode_key idx pending inflight value in
    if Value.Tbl.mem visited key then false
      (* already explored and failed: successful paths return immediately *)
    else begin
      let result =
        consume idx pending inflight value || linearize_now idx pending inflight value
      in
      if not result then Value.Tbl.replace visited key ();
      result
    end
  and consume idx pending inflight value =
    if idx >= n then true
    else
      match events.(idx) with
      | Call { endpoint; op } -> go (idx + 1) (push_q pending endpoint op) inflight value
      | Return { endpoint; resp } -> (
        (* The response must be the oldest linearized-but-unreturned result
           of this endpoint. *)
        match pop_q inflight endpoint with
        | Some (r, inflight') when Value.equal r resp -> go (idx + 1) pending inflight' value
        | _ -> false)
  and linearize_now idx pending inflight value =
    List.exists
      (fun endpoint ->
        match pop_q pending endpoint with
        | None -> false
        | Some (op, pending') ->
          List.exists
            (fun (resp, value') ->
              go idx pending' (push_q inflight endpoint resp) value')
            (t.Spec.Seq_type.delta op value))
      (endpoints_with_pending pending)
  in
  List.exists
    (fun v0 -> go 0 Value.map_empty Value.map_empty v0)
    t.Spec.Seq_type.initials
