open Ioa

let send ~dst m = Spec.Op.v "send" (Value.pair (Value.int dst) m)
let packet m ~src = Spec.Op.v "packet" (Value.pair m (Value.int src))

let packet_parts resp =
  let m, src = Value.to_pair (Spec.Op.arg resp) in
  m, Value.to_int src

let is_packet = Spec.Op.is "packet"

let make ~endpoints ~alphabet =
  let delta_inv inv src v =
    if Spec.Op.is "send" inv then begin
      let dst, m = Value.to_pair (Spec.Op.arg inv) in
      let dst = Value.to_int dst in
      if List.mem dst endpoints then [ [ dst, [ packet m ~src ] ], v ]
      else [ [], v ] (* sends to unknown endpoints vanish; δ1 stays total *)
    end
    else []
  in
  Spec.Service_type.make ~name:"network" ~initials:[ Value.unit ]
    ~invocations:
      (List.concat_map (fun dst -> List.map (fun m -> send ~dst m) alphabet) endpoints)
    ~responses:
      (List.concat_map (fun src -> List.map (fun m -> packet m ~src) alphabet) endpoints)
    ~global_tasks:[]
    ~delta_inv
    ~delta_glob:(fun _ _ -> [])
