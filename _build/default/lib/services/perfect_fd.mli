(** The perfect failure detector P as a general service (paper §6.2.1,
    Fig. 9).

    The service maintains no internal state beyond the failed set. It has no
    invocations; one global task per endpoint [i] deposits a
    [suspect(failed)] response — the current, accurate failed set — into
    [i]'s response buffer. Strong completeness and strong accuracy both
    follow: the reported set is always exactly the set of crashed
    endpoints. *)

open Ioa

val suspect : Spec.Iset.t -> Value.t
(** [suspect s] response carrying the suspected set. *)

val suspected_set : Value.t -> Spec.Iset.t
(** Decodes a [suspect] response. *)

val task_for : int -> string
(** Name of the global task that serves endpoint [i]. *)

val make : endpoints:int list -> Spec.General_type.t
