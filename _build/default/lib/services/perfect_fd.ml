open Ioa

let suspect s = Spec.Op.v "suspect" (Spec.Iset.to_value s)
let suspected_set resp = Spec.Iset.of_value (Spec.Op.arg resp)
let task_for i = string_of_int i

let make ~endpoints =
  let delta_glob g _v ~failed =
    match int_of_string_opt g with
    | Some i when List.mem i endpoints -> [ [ i, [ suspect failed ] ], Value.unit ]
    | _ -> []
  in
  Spec.General_type.make ~name:"perfect-fd" ~initials:[ Value.unit ] ~invocations:[]
    ~responses:[ suspect Spec.Iset.empty ]
    ~global_tasks:(List.map task_for endpoints)
    ~delta_inv:(fun _ _ _ ~failed:_ -> [])
    ~delta_glob
