open Ioa

(* State layout: triple val (Pair (inv_buffers, resp_buffers)) failed. *)

let pack ~value ~inv_bufs ~resp_bufs ~failed =
  Value.triple value (Value.pair inv_bufs resp_bufs) failed

let unpack s =
  let value, bufs, failed = Value.to_triple s in
  let inv_bufs, resp_bufs = Value.to_pair bufs in
  value, inv_bufs, resp_bufs, failed

let empty_bufs endpoints =
  List.fold_left
    (fun m i -> Value.map_add (Value.int i) Value.queue_empty m)
    Value.map_empty endpoints

let initial_state (u : Spec.General_type.t) ~endpoints =
  pack
    ~value:(List.hd u.Spec.General_type.initials)
    ~inv_bufs:(empty_bufs endpoints) ~resp_bufs:(empty_bufs endpoints)
    ~failed:Value.set_empty

let buf_of bufs i = Value.map_get ~default:Value.queue_empty (Value.int i) bufs

let apply_response_map resp_bufs (rmap : Spec.Service_type.response_map) =
  List.fold_left
    (fun bufs (j, rs) ->
      let q = List.fold_left (fun q r -> Value.queue_push r q) (buf_of bufs j) rs in
      Value.map_add (Value.int j) q bufs)
    resp_bufs rmap

let general (u : Spec.General_type.t) ~endpoints ~f ~k =
  let j_set = Spec.Iset.of_list endpoints in
  let failed_of s =
    let _, _, _, failed = unpack s in
    Spec.Iset.of_value failed
  in
  let dummy_io_enabled s i =
    let failed = failed_of s in
    Spec.Iset.mem i failed || Spec.Iset.cardinal failed > f
  in
  let dummy_compute_enabled s =
    let failed = failed_of s in
    Spec.Iset.cardinal failed > f || Spec.Iset.subset j_set failed
  in
  let classify act =
    let owns_endpoint i = List.mem i endpoints in
    match Sig_names.as_invoke act with
    | Some (i, k', _) when String.equal k k' && owns_endpoint i -> Some Automaton.Input
    | _ -> (
      match Sig_names.as_respond act with
      | Some (i, k', _) when String.equal k k' && owns_endpoint i -> Some Automaton.Output
      | _ -> (
        match Sig_names.as_fail act with
        | Some i when owns_endpoint i -> Some Automaton.Input
        | _ ->
          let internal_with_k payload_k = String.equal k payload_k in
          let kind_of_internal () =
            match Sig_names.as_perform act with
            | Some (i, k') when internal_with_k k' && owns_endpoint i ->
              Some Automaton.Internal
            | _ -> (
              match Sig_names.as_compute act with
              | Some (g, k')
                when internal_with_k k' && List.mem g u.Spec.General_type.global_tasks ->
                Some Automaton.Internal
              | _ -> (
                match Action.name act with
                | "dummy_perform" | "dummy_output" ->
                  let i, k' = Value.to_pair (Action.arg act) in
                  if String.equal k (Value.to_str k') && owns_endpoint (Value.to_int i)
                  then Some Automaton.Internal
                  else None
                | "dummy_compute" ->
                  let g, k' = Value.to_pair (Action.arg act) in
                  if
                    String.equal k (Value.to_str k')
                    && List.mem (Value.to_str g) u.Spec.General_type.global_tasks
                  then Some Automaton.Internal
                  else None
                | _ -> None))
          in
          kind_of_internal ()))
  in
  let step s act =
    let value, inv_bufs, resp_bufs, failed_v = unpack s in
    let failed = Spec.Iset.of_value failed_v in
    match Sig_names.as_invoke act with
    | Some (i, _, a) ->
      let q = Value.queue_push a (buf_of inv_bufs i) in
      [ pack ~value ~inv_bufs:(Value.map_add (Value.int i) q inv_bufs) ~resp_bufs
          ~failed:failed_v ]
    | None -> (
      match Sig_names.as_fail act with
      | Some i ->
        [ pack ~value ~inv_bufs ~resp_bufs
            ~failed:(Value.set_add (Value.int i) failed_v) ]
      | None -> (
        match Sig_names.as_perform act with
        | Some (i, _) -> (
          match Value.queue_pop (buf_of inv_bufs i) with
          | None -> []
          | Some (a, rest) ->
            let inv_bufs = Value.map_add (Value.int i) rest inv_bufs in
            u.Spec.General_type.delta_inv a i value ~failed
            |> List.map (fun (rmap, value') ->
                 pack ~value:value' ~inv_bufs
                   ~resp_bufs:(apply_response_map resp_bufs rmap)
                   ~failed:failed_v))
        | None -> (
          match Sig_names.as_respond act with
          | Some (i, _, b) -> (
            match Value.queue_pop (buf_of resp_bufs i) with
            | Some (b', rest) when Value.equal b b' ->
              [ pack ~value ~inv_bufs
                  ~resp_bufs:(Value.map_add (Value.int i) rest resp_bufs)
                  ~failed:failed_v ]
            | _ -> [])
          | None -> (
            match Sig_names.as_compute act with
            | Some (g, _) ->
              u.Spec.General_type.delta_glob g value ~failed
              |> List.map (fun (rmap, value') ->
                   pack ~value:value' ~inv_bufs
                     ~resp_bufs:(apply_response_map resp_bufs rmap)
                     ~failed:failed_v)
            | None -> (
              match Action.name act with
              | "dummy_perform" | "dummy_output" ->
                let i = Value.to_int (fst (Value.to_pair (Action.arg act))) in
                if dummy_io_enabled s i then [ s ] else []
              | "dummy_compute" -> if dummy_compute_enabled s then [ s ] else []
              | _ -> [])))))
  in
  let perform_task i =
    Task.make
      ~label:(Printf.sprintf "%s.perform[%d]" k i)
      ~contains:(fun act ->
        Action.equal act (Sig_names.perform i k)
        || Action.equal act (Sig_names.dummy_perform i k))
      ~enabled:(fun s ->
        let _, inv_bufs, _, _ = unpack s in
        let real =
          if Value.queue_is_empty (buf_of inv_bufs i) then []
          else [ Sig_names.perform i k ]
        in
        let dummy = if dummy_io_enabled s i then [ Sig_names.dummy_perform i k ] else [] in
        real @ dummy)
  in
  let output_task i =
    Task.make
      ~label:(Printf.sprintf "%s.output[%d]" k i)
      ~contains:(fun act ->
        (match Sig_names.as_respond act with
        | Some (i', k', _) -> i = i' && String.equal k k'
        | None -> false)
        || Action.equal act (Sig_names.dummy_output i k))
      ~enabled:(fun s ->
        let _, _, resp_bufs, _ = unpack s in
        let real =
          match Value.queue_pop (buf_of resp_bufs i) with
          | None -> []
          | Some (b, _) -> [ Sig_names.respond i k b ]
        in
        let dummy = if dummy_io_enabled s i then [ Sig_names.dummy_output i k ] else [] in
        real @ dummy)
  in
  let compute_task g =
    Task.make
      ~label:(Printf.sprintf "%s.compute[%s]" k g)
      ~contains:(fun act ->
        Action.equal act (Sig_names.compute g k)
        || Action.equal act (Sig_names.dummy_compute g k))
      ~enabled:(fun s ->
        (* δ2 is total, so the compute action is always enabled. *)
        let real = [ Sig_names.compute g k ] in
        let dummy = if dummy_compute_enabled s then [ Sig_names.dummy_compute g k ] else [] in
        real @ dummy)
  in
  let tasks =
    List.concat_map (fun i -> [ perform_task i; output_task i ]) endpoints
    @ List.map compute_task u.Spec.General_type.global_tasks
  in
  Automaton.make
    ~name:(Printf.sprintf "canonical:%s:%s" u.Spec.General_type.name k)
    ~classify
    ~start:[ initial_state u ~endpoints ]
    ~step ~tasks

let oblivious u ~endpoints ~f ~k = general (Spec.General_type.of_oblivious u) ~endpoints ~f ~k
let atomic t ~endpoints ~f ~k = general (Spec.General_type.of_sequential t) ~endpoints ~f ~k
let register t ~endpoints ~k = atomic t ~endpoints ~f:(List.length endpoints - 1) ~k
