lib/services/tob.mli: Ioa Spec Value
