lib/services/canonical.ml: Action Automaton Ioa List Printf Sig_names Spec String Task Value
