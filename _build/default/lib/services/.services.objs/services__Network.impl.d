lib/services/network.ml: Ioa List Spec Value
