lib/services/atomic_broadcast.ml: Ioa List Spec String Value
