lib/services/sig_names.ml: Action Ioa String Value
