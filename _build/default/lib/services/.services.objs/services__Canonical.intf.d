lib/services/canonical.mli: Automaton Ioa Spec Value
