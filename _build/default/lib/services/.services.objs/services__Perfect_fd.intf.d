lib/services/perfect_fd.mli: Ioa Spec Value
