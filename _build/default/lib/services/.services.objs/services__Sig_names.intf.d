lib/services/sig_names.mli: Action Ioa Value
