lib/services/eventually_perfect_fd.mli: Ioa Spec Value
