lib/services/atomic_broadcast.mli: Ioa Spec Value
