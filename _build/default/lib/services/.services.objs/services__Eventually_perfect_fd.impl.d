lib/services/eventually_perfect_fd.ml: Ioa List Spec String Value
