lib/services/perfect_fd.ml: Ioa List Spec Value
