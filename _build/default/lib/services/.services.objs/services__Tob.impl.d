lib/services/tob.ml: Ioa List Spec String Value
