lib/services/network.mli: Ioa Spec Value
