(** The eventually perfect failure detector ◇P as a general service (paper
    §6.2.2, Figs. 10–11).

    The service value is a [mode] flag, initially [imperfect]. While
    imperfect, the per-endpoint global tasks may emit arbitrary [suspect]
    responses; a background global task [g] eventually (nondeterministically,
    but guaranteed under task fairness after determinization) switches the
    mode to [perfect], after which every response is [suspect(failed)] —
    recent and accurate. *)

open Ioa

val suspect : Spec.Iset.t -> Value.t
val suspected_set : Value.t -> Spec.Iset.t
val task_for : int -> string
val switch_task : string
(** The background task [g] that switches the mode to perfect. *)

val mode_perfect : Value.t
val mode_imperfect : Value.t

val make : ?paranoid:bool -> endpoints:int list -> unit -> Spec.General_type.t
(** While imperfect, the per-endpoint δ2 enumerates all subsets of the
    endpoint set as possible suspicions. The first choice — which the §3.1
    determinization keeps — is the accurate set by default, so the
    determinized service behaves like P from the start; with [paranoid] it is
    "suspect everyone else", the adversarial imperfect period that
    distinguishes algorithms needing P from those content with ◇P. *)
