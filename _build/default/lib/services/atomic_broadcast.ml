open Ioa

let bcast m = Spec.Op.v "bcast" m
let rcv m i = Spec.Op.v "rcv" (Value.pair m (Value.int i))
let crashed i = Spec.Op.v "crashed" (Value.int i)
let is_rcv = Spec.Op.is "rcv"
let is_crashed = Spec.Op.is "crashed"

let rcv_parts resp =
  let m, i = Value.to_pair (Spec.Op.arg resp) in
  m, Value.to_int i

let crashed_endpoint resp = Spec.Op.int_arg resp
let global_task = "g"

(* val = Pair (msgs queue, announced crash set). *)
let initial = Value.pair Value.queue_empty Value.set_empty

let make ~endpoints ~alphabet =
  let deliver_all resp = List.map (fun j -> j, [ resp ]) endpoints in
  let delta_inv inv i v ~failed:_ =
    if Spec.Op.is "bcast" inv then begin
      let msgs, announced = Value.to_pair v in
      [ [], Value.pair (Value.queue_push (Value.pair (Spec.Op.arg inv) (Value.int i)) msgs) announced ]
    end
    else []
  in
  let delta_glob g v ~failed =
    if not (String.equal g global_task) then []
    else begin
      let msgs, announced = Value.to_pair v in
      (* Announce the smallest unannounced failure first; failure knowledge
         is exactly what makes this service failure-aware. *)
      let unannounced =
        Spec.Iset.filter
          (fun i -> not (Value.set_mem (Value.int i) announced))
          failed
      in
      match Spec.Iset.min_elt_opt unannounced with
      | Some i ->
        [ deliver_all (crashed i), Value.pair msgs (Value.set_add (Value.int i) announced) ]
      | None -> (
        match Value.queue_pop msgs with
        | None -> [ [], v ]
        | Some (entry, rest) ->
          let m, sender = Value.to_pair entry in
          [ deliver_all (rcv m (Value.to_int sender)), Value.pair rest announced ])
    end
  in
  Spec.General_type.make ~name:"atomic-broadcast" ~initials:[ initial ]
    ~invocations:(List.map bcast alphabet)
    ~responses:
      (List.concat_map (fun m -> List.map (rcv m) endpoints) alphabet
      @ List.map crashed endpoints)
    ~global_tasks:[ global_task ]
    ~delta_inv ~delta_glob
