(** Reliable point-to-point messaging as a failure-oblivious service.

    The paper's results were first stated for asynchronous message passing
    (the 2002 technical report [2] it builds on); a reliable network is
    itself a failure-oblivious service: [send(dst, m)] invoked at endpoint
    [src] deposits [packet(m, src)] in [dst]'s response buffer. The service
    is stateless (val = unit); per-pair FIFO follows from the buffer
    discipline of the canonical automaton, and fairness of the delivery
    tasks gives guaranteed eventual delivery — the FLP network model.

    A wait-free instance cannot be silenced, yet boosting candidates over it
    are still refuted: delivery order to a single destination is the
    nondeterminism the bivalence argument exploits, and hooks pivot on the
    receiving {e process} (Lemma 6), exactly as in FLP. *)

open Ioa

val send : dst:int -> Value.t -> Value.t
(** [send ~dst m] invocation. *)

val packet : Value.t -> src:int -> Value.t
(** [packet m ~src] — the delivery carrying [m] from [src]. *)

val packet_parts : Value.t -> Value.t * int
(** Decodes a delivery into [(message, source)]. *)

val is_packet : Value.t -> bool

val make : endpoints:int list -> alphabet:Value.t list -> Spec.Service_type.t
