(** Totally ordered broadcast as a failure-oblivious service (paper §5.2,
    Figs. 5–7).

    The service value is a queue [msgs] of [(message, sender)] pairs that
    have been totally ordered. δ1 processes a [bcast(m)] invocation from
    endpoint [i] by appending [(m, i)] to [msgs] and producing no responses;
    the single global task [g] takes the head of [msgs] and delivers
    [rcv(m, i)] to {e every} endpoint. TOB cannot be expressed as an atomic
    object, since one invocation triggers many responses. *)

open Ioa

val bcast : Value.t -> Value.t
(** [bcast m] invocation. *)

val rcv : Value.t -> int -> Value.t
(** [rcv m i] — receipt of message [m] from sender [i]. *)

val rcv_parts : Value.t -> Value.t * int
(** Decodes a [rcv] response into [(message, sender)]. *)

val global_task : string
(** The name of the single global task [g]. *)

val make : endpoints:int list -> alphabet:Value.t list -> Spec.Service_type.t
(** The TOB service type for the given endpoint set and message alphabet
    sample. *)
