(** Atomic broadcast as a general (failure-aware) service.

    The paper's introduction lists atomic broadcast, alongside failure
    detectors, as a service whose behaviour may depend on failures (§1, §6).
    This instance extends totally ordered broadcast: the delivery stream is
    still one global sequence consistent at every endpoint, but the ordering
    task also injects [crashed(i)] notifications into the stream when it
    observes endpoint failures — so all endpoints see messages and crash
    announcements in one agreed order (view-synchrony style).

    The service value is the pair (pending message queue, announced crash
    set). δ2 prefers announcing an unannounced failure over delivering the
    next message; both are broadcast to every endpoint. *)

open Ioa

val bcast : Value.t -> Value.t
(** [bcast m] invocation. *)

val rcv : Value.t -> int -> Value.t
(** [rcv m i] — delivery of message [m] from sender [i]. *)

val crashed : int -> Value.t
(** [crashed i] — delivery of the crash announcement for endpoint [i]. *)

val is_rcv : Value.t -> bool
val is_crashed : Value.t -> bool
val rcv_parts : Value.t -> Value.t * int
val crashed_endpoint : Value.t -> int

val global_task : string

val make : endpoints:int list -> alphabet:Value.t list -> Spec.General_type.t
