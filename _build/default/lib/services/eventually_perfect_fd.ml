open Ioa

let suspect s = Spec.Op.v "suspect" (Spec.Iset.to_value s)
let suspected_set resp = Spec.Iset.of_value (Spec.Op.arg resp)
let task_for i = string_of_int i
let switch_task = "g"
let mode_perfect = Value.str "perfect"
let mode_imperfect = Value.str "imperfect"

let rec subsets = function
  | [] -> [ Spec.Iset.empty ]
  | x :: rest ->
    let tails = subsets rest in
    List.map (Spec.Iset.add x) tails @ tails

let make ?(paranoid = false) ~endpoints () =
  let all_subsets = subsets endpoints in
  let delta_glob g mode ~failed =
    if String.equal g switch_task then
      (* Nondeterministically switch to perfect; first choice switches so the
         determinized service stabilizes at its first [g] turn. *)
      [ [], mode_perfect; [], mode ]
    else
      match int_of_string_opt g with
      | Some i when List.mem i endpoints ->
        if Value.equal mode mode_perfect then [ [ i, [ suspect failed ] ], mode ]
        else begin
          (* Imperfect period: any suspicion is allowed. The first choice is
             what the §3.1 determinization keeps: accurate by default, or —
             with [paranoid] — "suspect everyone else", the adversarial
             resolution that exposes algorithms needing P rather than ◇P. *)
          let first =
            if paranoid then
              [ i, [ suspect (Spec.Iset.remove i (Spec.Iset.of_list endpoints)) ] ], mode
            else [ i, [ suspect failed ] ], mode
          in
          first
          :: List.filter_map
               (fun s ->
                 let fst_set =
                   if paranoid then Spec.Iset.remove i (Spec.Iset.of_list endpoints)
                   else failed
                 in
                 if Spec.Iset.equal s fst_set then None
                 else Some ([ i, [ suspect s ] ], mode))
               all_subsets
        end
      | _ -> []
  in
  Spec.General_type.make ~name:"eventually-perfect-fd" ~initials:[ mode_imperfect ]
    ~invocations:[]
    ~responses:(List.map suspect all_subsets)
    ~global_tasks:(switch_task :: List.map task_for endpoints)
    ~delta_inv:(fun _ _ _ ~failed:_ -> [])
    ~delta_glob
