open Ioa

let bcast m = Spec.Op.v "bcast" m
let rcv m i = Spec.Op.v "rcv" (Value.pair m (Value.int i))

let rcv_parts resp =
  let m, i = Value.to_pair (Spec.Op.arg resp) in
  m, Value.to_int i

let global_task = "g"

let make ~endpoints ~alphabet =
  let delta_inv inv i v =
    if Spec.Op.is "bcast" inv then [ [], Value.queue_push (Value.pair (Spec.Op.arg inv) (Value.int i)) v ]
    else []
  in
  let delta_glob g v =
    if not (String.equal g global_task) then []
    else
      match Value.queue_pop v with
      | None -> [ [], v ]
      | Some (entry, rest) ->
        let m, sender = Value.to_pair entry in
        let resp = rcv m (Value.to_int sender) in
        [ List.map (fun j -> j, [ resp ]) endpoints, rest ]
  in
  Spec.Service_type.make ~name:"totally-ordered-broadcast"
    ~initials:[ Value.queue_empty ]
    ~invocations:(List.map bcast alphabet)
    ~responses:(List.concat_map (fun m -> List.map (rcv m) endpoints) alphabet)
    ~global_tasks:[ global_task ]
    ~delta_inv ~delta_glob
