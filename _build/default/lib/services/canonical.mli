(** Canonical f-resilient services as generic I/O automata.

    This module is a direct transcription of the paper's canonical automata:
    Fig. 1 (atomic object), Fig. 4 (failure-oblivious service) and Fig. 8
    (general service), built on top of {!Ioa.Automaton}. All three are
    produced by the single {!general} constructor through the type
    embeddings of §5.1 and §6.1; {!atomic} and {!oblivious} are the derived
    special cases.

    State layout: [Value.triple val (Pair (inv_buffers, resp_buffers)) failed]
    where the buffers are maps from endpoint to FIFO queue and [failed] is
    the set of failed endpoints.

    Tasks, per §2.1.3 and §5.1:
    - [i-perform] = [{perform(i,k), dummy_perform(i,k)}];
    - [i-output]  = [{respond(i,k,b) : b ∈ resps} ∪ {dummy_output(i,k)}];
    - [g-compute] = [{compute(g,k), dummy_compute(g,k)}].

    The dummy actions are enabled exactly when [i ∈ failed ∨ |failed| > f]
    (for compute: [|failed| > f ∨ failed ⊇ J]); fairness of the task system
    then expresses f-resilience exactly as in the paper. *)

open Ioa

val general : Spec.General_type.t -> endpoints:int list -> f:int -> k:string -> Automaton.t
(** CanonicalGeneralService(U, J, f, k) — Fig. 8 semantics. *)

val oblivious : Spec.Service_type.t -> endpoints:int list -> f:int -> k:string -> Automaton.t
(** CanonicalFailureObliviousService(U, J, f, k) — Fig. 4, via the §6.1
    embedding. *)

val atomic : Spec.Seq_type.t -> endpoints:int list -> f:int -> k:string -> Automaton.t
(** CanonicalAtomicObject(T, J, f, k) — Fig. 1, via the §5.1 embedding. *)

val register : Spec.Seq_type.t -> endpoints:int list -> k:string -> Automaton.t
(** A canonical reliable (wait-free) register: an atomic object with
    [f = |J| − 1]. The sequential type should be a read/write type. *)

val initial_state : Spec.General_type.t -> endpoints:int list -> Value.t
(** The start state of the canonical automaton (first initial value, empty
    buffers, no failures). *)
