type verdict =
  | Included
  | Counterexample of Action.t list
  | Out_of_budget of { states_explored : int }

let pp_verdict ppf = function
  | Included -> Format.pp_print_string ppf "included"
  | Counterexample tr ->
    Format.fprintf ppf "counterexample: @[<hov>%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ . ") Action.pp)
      tr
  | Out_of_budget { states_explored } ->
    Format.fprintf ppf "out of budget after %d states" states_explored

(* Canonical representation of a set of spec states: sorted, deduplicated. *)
let canon states = List.sort_uniq Value.compare states

let closure_cap = 4096

exception Closure_overflow

(* Epsilon closure of a spec state set under the spec's internal actions,
   enumerated through its task structure. *)
let epsilon_closure (spec : Automaton.t) states =
  let seen = Value.Tbl.create 64 in
  let rec go frontier =
    match frontier with
    | [] -> ()
    | s :: rest ->
      if Value.Tbl.mem seen s then go rest
      else begin
        Value.Tbl.replace seen s ();
        if Value.Tbl.length seen > closure_cap then raise Closure_overflow;
        let nexts =
          Automaton.enabled_local spec s
          |> List.filter (fun a -> spec.Automaton.classify a = Some Automaton.Internal)
          |> List.concat_map (fun a -> spec.Automaton.step s a)
        in
        go (nexts @ rest)
      end
  in
  go states;
  canon (Value.Tbl.fold (fun s () acc -> s :: acc) seen [])

(* One external step of the subset-constructed spec. *)
let spec_step (spec : Automaton.t) states act =
  let post = List.concat_map (fun s -> spec.Automaton.step s act) states in
  epsilon_closure spec (canon post)

let check_traces ~(impl : Automaton.t) ~(spec : Automaton.t) ~inputs ~max_states =
  let visited = Value.Tbl.create 1024 in
  let key impl_state spec_set = Value.pair impl_state (Value.list spec_set) in
  let queue = Queue.create () in
  let explored = ref 0 in
  let budget_hit = ref false in
  let result = ref None in
  (try
     let start_spec = epsilon_closure spec spec.Automaton.start in
     List.iter
       (fun s0 -> Queue.add (s0, start_spec, []) queue)
       impl.Automaton.start;
     while (not (Queue.is_empty queue)) && !result = None do
       let s, spec_set, rev_trace = Queue.pop queue in
       let k = key s spec_set in
       if not (Value.Tbl.mem visited k) then begin
         Value.Tbl.replace visited k ();
         incr explored;
         if !explored > max_states then begin
           budget_hit := true;
           Queue.clear queue
         end
         else begin
           let local = Automaton.enabled_local impl s in
           let ins = List.filter (fun a -> impl.Automaton.classify a = Some Automaton.Input) inputs in
           let candidates = local @ ins in
           List.iter
             (fun act ->
               let nexts = impl.Automaton.step s act in
               if nexts <> [] then begin
                 let external_ = Automaton.is_external impl act in
                 let spec_set', rev_trace' =
                   if external_ then spec_step spec spec_set act, act :: rev_trace
                   else spec_set, rev_trace
                 in
                 if external_ && spec_set' = [] then
                   result := Some (Counterexample (List.rev (act :: rev_trace)))
                 else
                   List.iter (fun s' -> Queue.add (s', spec_set', rev_trace') queue) nexts
               end)
             candidates
         end
       end
     done
   with Closure_overflow -> budget_hit := true);
  match !result with
  | Some v -> v
  | None -> if !budget_hit then Out_of_budget { states_explored = !explored } else Included
