(** Action renaming of I/O automata.

    Renaming relabels an automaton's interface without touching its
    behaviour — the standard tool for matching interfaces before composition
    or trace-inclusion checks. §2.2.4 of the paper identifies the consensus
    problem's [init(v)_i]/[decide(v)_i] actions with the invocations and
    responses of the canonical consensus object; {!apply} makes that
    identification executable. *)

val apply :
  forward:(Action.t -> Action.t) ->
  backward:(Action.t -> Action.t) ->
  Automaton.t ->
  Automaton.t
(** [apply ~forward ~backward a] renames every action [x] of [a] to
    [forward x]. [backward] must invert [forward] on the renamed signature
    (identity elsewhere); kinds and transitions are preserved. *)
