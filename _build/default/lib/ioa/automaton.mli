(** I/O automata (Lynch–Tuttle), monomorphic over {!Value.t} states.

    An automaton is a state machine whose transitions are labelled with
    actions classified as input, output or internal (paper §2.1.1). Automata
    are input-enabled: every input action has at least one transition from
    every state. Locally controlled actions (outputs and internals) are
    partitioned into {!Task.t}s, the unit of fairness. *)

type kind = Input | Output | Internal

val pp_kind : Format.formatter -> kind -> unit

type t = {
  name : string;
  classify : Action.t -> kind option;
      (** The signature: [None] means the action is not an action of this
          automaton. *)
  start : Value.t list;  (** Nonempty set of start states. *)
  step : Value.t -> Action.t -> Value.t list;
      (** All states [s'] with a transition [(s, a, s')]. Empty means [a] is
          not enabled in [s] (never allowed for input actions). *)
  tasks : Task.t list;  (** Partition of the locally controlled actions. *)
}

val make :
  name:string ->
  classify:(Action.t -> kind option) ->
  start:Value.t list ->
  step:(Value.t -> Action.t -> Value.t list) ->
  tasks:Task.t list ->
  t

val is_locally_controlled : t -> Action.t -> bool
(** Output or internal action of the automaton. *)

val is_external : t -> Action.t -> bool
(** Input or output action of the automaton. *)

val enabled_local : t -> Value.t -> Action.t list
(** All locally controlled actions enabled in a state, across all tasks. *)

val is_deterministic : t -> states:Value.t list -> bool
(** Checks the §2.1.1 determinism condition on the given state sample: for
    each task and each state, at most one enabled action, and [step] is
    single-valued on it. *)

val check_input_enabled : t -> states:Value.t list -> inputs:Action.t list -> (unit, string) result
(** Checks input-enabledness of the given input actions on a state sample;
    the error carries the offending state and action. *)

val task_of_action : t -> Action.t -> Task.t option
(** The unique task containing a locally controlled action, if any. *)
