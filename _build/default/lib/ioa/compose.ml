let product_states (per_component : Value.t list list) : Value.t list =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun s -> List.map (fun rest -> s :: rest) acc) choices)
    per_component [ [] ]
  |> List.map (fun ss -> Value.List ss)

let compose ~name (components : Automaton.t list) : Automaton.t =
  if components = [] then invalid_arg "Compose.compose: empty component list";
  let classify act =
    let kinds = List.filter_map (fun a -> a.Automaton.classify act) components in
    if kinds = [] then None
    else if List.mem Automaton.Internal kinds then Some Automaton.Internal
    else if List.mem Automaton.Output kinds then Some Automaton.Output
    else Some Automaton.Input
  in
  let start = product_states (List.map (fun a -> a.Automaton.start) components) in
  let step s act =
    let ss = Value.to_list s in
    let per_component =
      List.map2
        (fun a si ->
          match a.Automaton.classify act with
          | None -> Some [ si ]
          | Some _ -> (
            match a.Automaton.step si act with [] -> None | nexts -> Some nexts))
        components ss
    in
    if List.exists Option.is_none per_component then []
    else product_states (List.map Option.get per_component)
  in
  let lift_task idx (a : Automaton.t) (e : Task.t) =
    let enabled s =
      let si = List.nth (Value.to_list s) idx in
      (* An action enabled locally is enabled in the composition: every other
         participant has it as an input and automata are input-enabled. *)
      List.filter (fun act -> step s act <> []) (e.Task.enabled si)
    in
    Task.make
      ~label:(a.Automaton.name ^ "." ^ e.Task.label)
      ~contains:e.Task.contains ~enabled
  in
  let tasks =
    List.concat (List.mapi (fun i a -> List.map (lift_task i a) a.Automaton.tasks) components)
  in
  Automaton.make ~name ~classify ~start ~step ~tasks

let check_compatible components ~alphabet =
  let problem =
    List.find_map
      (fun act ->
        let outputs =
          List.filter (fun a -> a.Automaton.classify act = Some Automaton.Output) components
        in
        let internal_owners =
          List.filter (fun a -> a.Automaton.classify act = Some Automaton.Internal) components
        in
        let in_signature a = a.Automaton.classify act <> None in
        if List.length outputs > 1 then
          Some
            (Format.asprintf "action %a is an output of both %s and %s" Action.pp act
               (List.nth outputs 0).Automaton.name (List.nth outputs 1).Automaton.name)
        else
          List.find_map
            (fun owner ->
              let other =
                List.find_opt (fun a -> a != owner && in_signature a) components
              in
              Option.map
                (fun a ->
                  Format.asprintf "internal action %a of %s is in the signature of %s"
                    Action.pp act owner.Automaton.name a.Automaton.name)
                other)
            internal_owners)
      alphabet
  in
  match problem with None -> Ok () | Some msg -> Error msg

let hide p (a : Automaton.t) =
  let classify act =
    match a.Automaton.classify act with
    | Some Automaton.Output when p act -> Some Automaton.Internal
    | k -> k
  in
  { a with Automaton.classify }
