(** Tasks of an I/O automaton.

    The locally controlled actions of an I/O automaton are partitioned into
    tasks (paper §2.1.1). A task is the unit of fairness: a fair execution
    gives each task infinitely many turns. A task is described by a
    membership predicate over actions together with an enumerator of the
    task's actions that are enabled in a given state — the enumerator is what
    makes fairness and the [transition(e, s)] function of §3.1 executable. *)

type t = {
  label : string;  (** Unique task label within its automaton, e.g. ["P1"], ["S:perform[2]"]. *)
  contains : Action.t -> bool;  (** Membership of an action in this task. *)
  enabled : Value.t -> Action.t list;
      (** All actions of this task enabled in the given state. An automaton
          is deterministic (§2.1.1) iff this list never has length > 1 and
          the [step] relation is single-valued on it. *)
}

val make :
  label:string -> contains:(Action.t -> bool) -> enabled:(Value.t -> Action.t list) -> t

val is_enabled : t -> Value.t -> bool
(** [is_enabled e s] holds iff some action of [e] is enabled in [s] —
    "task [e] is applicable" in the sense of §2.2.3. *)

val pp : Format.formatter -> t -> unit
