type step = { action : Action.t; target : Value.t }
type t = { start : Value.t; rev_steps : step list }

let init start = { start; rev_steps = [] }

let last_state exec =
  match exec.rev_steps with [] -> exec.start | { target; _ } :: _ -> target

let length exec = List.length exec.rev_steps
let steps exec = List.rev exec.rev_steps
let actions exec = List.rev_map (fun s -> s.action) exec.rev_steps
let states exec = exec.start :: List.map (fun s -> s.target) (steps exec)

let append exec action target = { exec with rev_steps = { action; target } :: exec.rev_steps }

let concat alpha beta =
  if not (Value.equal (last_state alpha) beta.start) then
    invalid_arg "Execution.concat: fragments do not match";
  { alpha with rev_steps = beta.rev_steps @ alpha.rev_steps }

let apply_task (auto : Automaton.t) exec (e : Task.t) =
  let s = last_state exec in
  match e.Task.enabled s with
  | [] -> None
  | act :: _ -> (
    match auto.Automaton.step s act with
    | [] -> None
    | s' :: _ -> Some (append exec act s'))

let apply_tasks auto exec tasks =
  List.fold_left
    (fun acc e -> Option.bind acc (fun exec -> apply_task auto exec e))
    (Some exec) tasks

let trace auto exec = List.filter (Automaton.is_external auto) (actions exec)

let is_fair_finite (auto : Automaton.t) exec =
  let s = last_state exec in
  List.for_all (fun e -> not (Task.is_enabled e s)) auto.Automaton.tasks

let enabled_tasks (auto : Automaton.t) exec =
  let s = last_state exec in
  List.filter (fun e -> Task.is_enabled e s) auto.Automaton.tasks

let pp ppf exec =
  Format.fprintf ppf "@[<hov 2>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ . ") Action.pp)
    (actions exec)
