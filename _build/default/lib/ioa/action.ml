type t = { name : string; arg : Value.t }

let make name arg = { name; arg }
let name a = a.name
let arg a = a.arg

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Value.compare a.arg b.arg

let equal a b = compare a b = 0
let hash a = (Hashtbl.hash a.name * 31) lxor Value.hash a.arg

let pp ppf a =
  match a.arg with
  | Value.Unit -> Format.pp_print_string ppf a.name
  | arg -> Format.fprintf ppf "%s(%a)" a.name Value.pp arg

let to_string a = Format.asprintf "%a" pp a
