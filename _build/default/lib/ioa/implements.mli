(** Bounded trace-inclusion checking — the "implements" relation of §2.1.4.

    [A] implements [B] when they have the same external interface and every
    (finite or fair) trace of [A] is a trace of [B]. This module decides
    finite-trace inclusion on a bounded fragment of [A]'s reachable state
    space, using an on-the-fly subset construction on the specification side
    (internal actions of [B] are treated as epsilon moves).

    Fair-trace inclusion is not decided here; the system layer checks the
    liveness side of f-resilience directly through the consensus property
    checkers ({!Sys_model.Properties}), following Appendix B of the paper. *)

type verdict =
  | Included  (** Every explored trace of the implementation is a spec trace. *)
  | Counterexample of Action.t list
      (** A trace of the implementation that the specification cannot
          produce. *)
  | Out_of_budget of { states_explored : int }
      (** The search hit [max_states] before completing; inclusion holds on
          the explored fragment. *)

val pp_verdict : Format.formatter -> verdict -> unit

val check_traces :
  impl:Automaton.t ->
  spec:Automaton.t ->
  inputs:Action.t list ->
  max_states:int ->
  verdict
(** [check_traces ~impl ~spec ~inputs ~max_states] explores [impl] from its
    start states, driving it with every locally controlled action its tasks
    enable plus every input action from [inputs], and checks each external
    action against the subset-constructed [spec].

    [inputs] is the sample of environment actions to drive; it should cover
    the external alphabet of interest (e.g. all [init(v)_i]). Internal
    enumeration on the spec side uses the spec's task enumerators. *)
