(** Executions, extensions and traces (paper §2.1.1).

    An execution is an alternating sequence [s0 a1 s1 a2 s2 ...] such that
    [s0] is a start state and each [(s_{i-1}, a_i, s_i)] is a transition.
    Executions here are finite; fairness of a finite execution means no task
    is enabled in its final state. *)

type step = { action : Action.t; target : Value.t }

type t = {
  start : Value.t;
  rev_steps : step list;  (** Most recent step first. *)
}

val init : Value.t -> t
(** The empty execution from a start state. *)

val last_state : t -> Value.t
val length : t -> int
val steps : t -> step list
(** Steps in execution order (oldest first). *)

val actions : t -> Action.t list
(** The action sequence in execution order. *)

val states : t -> Value.t list
(** [s0; s1; ...; sn] in execution order. *)

val append : t -> Action.t -> Value.t -> t
(** [append exec a s'] extends the execution with one transition. It is the
    caller's responsibility that the transition exists; use {!apply_task} for
    checked extension. *)

val concat : t -> t -> t
(** [concat alpha beta] is the extension [alpha . beta] of §2.1.1; requires
    [beta.start] to equal [last_state alpha]. Raises [Invalid_argument]
    otherwise. *)

val apply_task : Automaton.t -> t -> Task.t -> t option
(** Run one task from the final state, deterministically: take the first
    enabled action of the task and the first resulting state. [None] iff the
    task is not applicable. For deterministic automata (§3.1) this is exactly
    the function [e(α)]. *)

val apply_tasks : Automaton.t -> t -> Task.t list -> t option
(** Apply a task sequence left to right; [None] if any task is inapplicable
    at its turn. *)

val trace : Automaton.t -> t -> Action.t list
(** External actions of the execution, in order (§2.1.1). *)

val is_fair_finite : Automaton.t -> t -> bool
(** A finite execution is fair iff no task is enabled in its final state. *)

val enabled_tasks : Automaton.t -> t -> Task.t list
(** Tasks applicable to the execution (enabled in its final state). *)

val pp : Format.formatter -> t -> unit
(** Prints the action sequence. *)
