type kind = Input | Output | Internal

let pp_kind ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Output -> Format.pp_print_string ppf "output"
  | Internal -> Format.pp_print_string ppf "internal"

type t = {
  name : string;
  classify : Action.t -> kind option;
  start : Value.t list;
  step : Value.t -> Action.t -> Value.t list;
  tasks : Task.t list;
}

let make ~name ~classify ~start ~step ~tasks =
  if start = [] then invalid_arg "Automaton.make: empty start set";
  { name; classify; start; step; tasks }

let is_locally_controlled a act =
  match a.classify act with
  | Some Output | Some Internal -> true
  | Some Input | None -> false

let is_external a act =
  match a.classify act with
  | Some Input | Some Output -> true
  | Some Internal | None -> false

let enabled_local a s = List.concat_map (fun e -> e.Task.enabled s) a.tasks

let is_deterministic a ~states =
  List.length a.start <= 1
  && List.for_all
       (fun s ->
         List.for_all
           (fun e ->
             match e.Task.enabled s with
             | [] -> true
             | [ act ] -> List.length (a.step s act) <= 1
             | _ :: _ :: _ -> false)
           a.tasks)
       states

let check_input_enabled a ~states ~inputs =
  let offending =
    List.find_map
      (fun s ->
        List.find_map
          (fun act ->
            match a.classify act with
            | Some Input when a.step s act = [] -> Some (s, act)
            | _ -> None)
          inputs)
      states
  in
  match offending with
  | None -> Ok ()
  | Some (s, act) ->
    Error
      (Format.asprintf "automaton %s: input %a not enabled in state %a" a.name
         Action.pp act Value.pp s)

let task_of_action a act =
  if is_locally_controlled a act then
    List.find_opt (fun e -> e.Task.contains act) a.tasks
  else None
