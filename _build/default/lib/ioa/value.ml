type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

exception Type_error of string

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | Pair _, _ -> -1
  | _, Pair _ -> 1
  | List xs, List ys -> compare_lists xs ys

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
    let c = compare x y in
    if c <> 0 then c else compare_lists xs' ys'

let equal a b = compare a b = 0

(* FNV-style fold over the whole structure: [Hashtbl.hash] only inspects a
   bounded prefix, which makes deep system states collide systematically. *)
let hash v =
  let combine h x = (h * 16777619) lxor x in
  let rec go h = function
    | Unit -> combine h 1
    | Bool b -> combine (combine h 2) (if b then 1 else 0)
    | Int i -> combine (combine h 3) i
    | Str s -> combine (combine h 4) (Hashtbl.hash s)
    | Pair (a, b) -> go (go (combine h 5) a) b
    | List xs -> List.fold_left go (combine h 6) xs
  in
  go 2166136261 v land max_int

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "@[<hov 1>(%a,@ %a)@]" pp a pp b
  | List xs ->
    Format.fprintf ppf "@[<hov 1>[%a]@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
      xs

let to_string v = Format.asprintf "%a" pp v

let unit = Unit
let bool b = Bool b
let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)
let list xs = List xs
let triple a b c = Pair (a, Pair (b, c))
let of_int_list xs = List (List.map (fun i -> Int i) xs)

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (to_string v)))

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int i -> i | v -> type_error "int" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_pair = function Pair (a, b) -> a, b | v -> type_error "pair" v
let to_list = function List xs -> xs | v -> type_error "list" v

let to_triple = function
  | Pair (a, Pair (b, c)) -> a, b, c
  | v -> type_error "triple" v

(* Sets: sorted duplicate-free lists. *)

let set_empty = List []

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: rest as l ->
    let c = compare x y in
    if c < 0 then x :: l else if c = 0 then l else y :: insert_sorted x rest

let set_of_list xs = List (List.fold_left (fun acc x -> insert_sorted x acc) [] xs)
let set_elements s = to_list s
let set_cardinal s = List.length (to_list s)
let set_mem x s = List.exists (equal x) (to_list s)
let set_add x s = List (insert_sorted x (to_list s))
let set_remove x s = List (List.filter (fun y -> not (equal x y)) (to_list s))
let set_union s1 s2 = List.fold_left (fun acc x -> set_add x acc) s1 (to_list s2)
let set_subset s1 s2 = List.for_all (fun x -> set_mem x s2) (to_list s1)

(* Maps: sorted assoc lists with unique keys. *)

let map_empty = List []

let map_find k m =
  let rec go = function
    | [] -> None
    | Pair (k', v) :: rest ->
      let c = compare k k' in
      if c = 0 then Some v else if c < 0 then None else go rest
    | v :: _ -> type_error "map binding" v
  in
  go (to_list m)

let map_get ~default k m = Option.value ~default (map_find k m)

let map_add k v m =
  let rec go = function
    | [] -> [ Pair (k, v) ]
    | Pair (k', v') :: rest as l ->
      let c = compare k k' in
      if c < 0 then Pair (k, v) :: l
      else if c = 0 then Pair (k, v) :: rest
      else Pair (k', v') :: go rest
    | b :: _ -> type_error "map binding" b
  in
  List (go (to_list m))

let map_remove k m =
  let keep = function
    | Pair (k', _) -> not (equal k k')
    | b -> type_error "map binding" b
  in
  List (List.filter keep (to_list m))

let map_bindings m =
  List.map
    (function Pair (k, v) -> k, v | b -> type_error "map binding" b)
    (to_list m)

(* Queues: plain lists, head = front. *)

let queue_empty = List []
let queue_push x q = List (to_list q @ [ x ])
let queue_pop q = match to_list q with [] -> None | x :: rest -> Some (x, List rest)
let queue_is_empty q = to_list q = []
let queue_length q = List.length (to_list q)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
