type t = {
  label : string;
  contains : Action.t -> bool;
  enabled : Value.t -> Action.t list;
}

let make ~label ~contains ~enabled = { label; contains; enabled }
let is_enabled e s = e.enabled s <> []
let pp ppf e = Format.pp_print_string ppf e.label
