(** Actions of I/O automata.

    An action is a name paired with a structural payload. Transitions of an
    I/O automaton are labelled by actions; in a composition, automata
    synchronize on actions with equal [name] {e and} equal [arg]
    (paper §2.1.1). *)

type t = {
  name : string;  (** The action name, e.g. ["init"], ["perform"]. *)
  arg : Value.t;  (** Structural payload, e.g. endpoint index and value. *)
}

val make : string -> Value.t -> t
val name : t -> string
val arg : t -> Value.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Renders as [name(arg)]; a [Unit] payload is omitted. *)

val to_string : t -> string
