lib/ioa/automaton.ml: Action Format List Task Value
