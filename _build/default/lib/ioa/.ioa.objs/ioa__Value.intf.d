lib/ioa/value.mli: Format Hashtbl
