lib/ioa/rename.ml: Automaton List Task
