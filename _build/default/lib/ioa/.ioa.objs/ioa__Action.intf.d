lib/ioa/action.mli: Format Value
