lib/ioa/implements.mli: Action Automaton Format
