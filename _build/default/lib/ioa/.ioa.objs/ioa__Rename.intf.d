lib/ioa/rename.mli: Action Automaton
