lib/ioa/task.mli: Action Format Value
