lib/ioa/implements.ml: Action Automaton Format List Queue Value
