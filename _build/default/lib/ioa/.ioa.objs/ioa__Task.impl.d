lib/ioa/task.ml: Action Format Value
