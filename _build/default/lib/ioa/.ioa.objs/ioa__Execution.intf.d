lib/ioa/execution.mli: Action Automaton Format Task Value
