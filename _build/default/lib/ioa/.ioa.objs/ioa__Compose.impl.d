lib/ioa/compose.ml: Action Automaton Format List Option Task Value
