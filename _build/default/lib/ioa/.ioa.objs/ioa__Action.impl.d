lib/ioa/action.ml: Format Hashtbl String Value
