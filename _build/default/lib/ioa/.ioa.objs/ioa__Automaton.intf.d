lib/ioa/automaton.mli: Action Format Task Value
