lib/ioa/execution.ml: Action Automaton Format List Option Task Value
