lib/ioa/compose.mli: Action Automaton
