lib/ioa/value.ml: Bool Format Hashtbl Int List Option Printf String
