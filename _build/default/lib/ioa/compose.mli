(** Parallel composition and hiding of I/O automata (paper §2.1.1, §2.2.3).

    The composite state of [compose [a1; ...; an]] is
    [Value.List [s1; ...; sn]]. All automata with an action in their
    signature execute it concurrently for the action to occur. The composite
    signature follows the standard rules: an action is an output of the
    composition if it is an output of some component, internal if internal of
    some component, and input otherwise. *)

val compose : name:string -> Automaton.t list -> Automaton.t
(** Parallel composition. Task labels are prefixed with the component
    automaton's name to keep them unique. Raises [Invalid_argument] on an
    empty component list. The caller is responsible for compatibility; use
    {!check_compatible} to verify it on an action alphabet. *)

val check_compatible : Automaton.t list -> alphabet:Action.t list -> (unit, string) result
(** Checks, over the given action sample, that (a) no action is an output of
    two components and (b) no internal action of one component is in the
    signature of another. *)

val hide : (Action.t -> bool) -> Automaton.t -> Automaton.t
(** [hide p a] reclassifies the output actions of [a] satisfying [p] as
    internal, as in the construction of the complete system C (§2.2.3). *)
