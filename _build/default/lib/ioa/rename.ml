let apply ~forward ~backward (a : Automaton.t) =
  let classify act = a.Automaton.classify (backward act) in
  let step s act = a.Automaton.step s (backward act) in
  let rename_task (e : Task.t) =
    Task.make ~label:e.Task.label
      ~contains:(fun act -> e.Task.contains (backward act))
      ~enabled:(fun s -> List.map forward (e.Task.enabled s))
  in
  {
    a with
    Automaton.name = a.Automaton.name ^ ":renamed";
    classify;
    step;
    tasks = List.map rename_task a.Automaton.tasks;
  }
