(** Universal structural values.

    Every piece of data that flows through the framework — invocation and
    response payloads, object values, process program states — is represented
    by this single structural type. This gives the exploration engine
    structural equality, total ordering and hashing over arbitrary component
    states for free, and lets one canonical-automaton implementation serve
    every sequential or service type (paper §2.1.2, §5.1, §6.1).

    Sets and finite maps are represented canonically (sorted, duplicate-free)
    so that structural equality coincides with set/map equality. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(** {1 Equality, ordering, hashing} *)

val equal : t -> t -> bool
(** Structural equality. *)

val compare : t -> t -> int
(** Total structural order: [Unit < Bool < Int < Str < Pair < List], with
    lexicographic ordering inside each constructor. *)

val hash : t -> int
(** Structural hash consistent with [equal]. Unlike [Hashtbl.hash], it folds
    the entire structure, so deep states do not collide systematically. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. [(1, ["a"; true])]. *)

val to_string : t -> string
(** [to_string v] is [Format.asprintf "%a" pp v]. *)

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t
val triple : t -> t -> t -> t
(** [triple a b c] is [Pair (a, Pair (b, c))]. *)

val of_int_list : int list -> t

(** {1 Destructors}

    Each destructor raises [Type_error] with a descriptive message when the
    value has the wrong shape; use them for data whose shape is an internal
    invariant. *)

exception Type_error of string

val to_bool : t -> bool
val to_int : t -> int
val to_str : t -> string
val to_pair : t -> t * t
val to_list : t -> t list
val to_triple : t -> t * t * t

(** {1 Canonical sets}

    A set is a sorted duplicate-free [List]. All operations preserve
    canonicity, so [equal] is set equality. *)

val set_empty : t
val set_of_list : t list -> t
val set_mem : t -> t -> bool
(** [set_mem x s] tests membership of [x] in set [s]. *)

val set_add : t -> t -> t
(** [set_add x s] inserts [x] into set [s]. *)

val set_remove : t -> t -> t
val set_union : t -> t -> t
val set_elements : t -> t list
val set_cardinal : t -> int
val set_subset : t -> t -> bool
(** [set_subset s1 s2] is true iff every element of [s1] is in [s2]. *)

(** {1 Canonical finite maps}

    A map is a sorted [List] of [Pair (key, value)] with unique keys. *)

val map_empty : t
val map_find : t -> t -> t option
(** [map_find k m] looks up key [k] in map [m]. *)

val map_get : default:t -> t -> t -> t
(** [map_get ~default k m] is [map_find k m] or [default]. *)

val map_add : t -> t -> t -> t
(** [map_add k v m] binds [k] to [v] in map [m], replacing any previous
    binding. *)

val map_remove : t -> t -> t
val map_bindings : t -> (t * t) list

(** {1 Queues}

    A queue is a plain [List] used FIFO: enqueue at the tail, dequeue at the
    head. These are the inv/resp buffers of canonical services (Fig. 1). *)

val queue_empty : t
val queue_push : t -> t -> t
(** [queue_push x q] appends [x] at the tail of [q]. *)

val queue_pop : t -> (t * t) option
(** [queue_pop q] is [Some (head, rest)] or [None] if [q] is empty. *)

val queue_is_empty : t -> bool
val queue_length : t -> int

(** {1 Hash tables keyed by values}

    [Hashtbl.hash] inspects only a bounded prefix of a structure, so deep
    states (long queues, big maps) collide systematically and lookups
    degrade; this functor instance uses the full-structure {!hash}. *)

module Tbl : Hashtbl.S with type key = t
