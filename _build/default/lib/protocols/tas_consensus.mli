(** Two-process consensus from a test&set object and registers — the classic
    consensus-number-2 construction (Herlihy), here both as a correct system
    and as a Theorem 2 target.

    Each process publishes its input in its own register, waits for the
    write's ack, then performs test&set: the winner (who saw 0) decides its
    own input; the loser reads the winner's register and decides what it
    finds. With a wait-free test&set object the system solves 1-resilient
    2-process consensus, and the engine correctly fails to refute it; with a
    0-resilient object the claim is refuted by silencing the object. *)

val tas_id : string
val register_id : int -> string

val system : f:int -> Model.System.t
(** [f] is the test&set object's resilience ([f ≥ 1] makes it wait-free for
    its two endpoints). *)
