open Ioa
open Proto_util

let tas_id = "tas"
let register_id pid = Printf.sprintf "reg%d" pid

(* States: idle / have[v] / wrote[v] (awaiting ack) / racing[v] (awaiting the
   test&set response) / reading[v] / got[w] / done[w]. *)

let client pid =
  let peer = 1 - pid in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = register_id pid;
          op = Spec.Seq_register.write (field s 0);
          next = st "wrote" [ field s 0 ];
        }
    else if is "ready" s then
      Model.Process.Invoke
        { service = tas_id; op = Spec.Seq_tas.test_and_set; next = st "racing" [ field s 0 ] }
    else if is "read" s then
      Model.Process.Invoke
        {
          service = register_id peer;
          op = Spec.Seq_register.read;
          next = st "reading" [ field s 0 ];
        }
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v ] else s in
  let on_response s ~service b =
    if is "wrote" s && String.equal service (register_id pid) && Spec.Op.is "ack" b then
      (* Own write completed: safe to race. *)
      st "ready" [ field s 0 ]
    else if is "racing" s && String.equal service tas_id && Spec.Op.is "bit" b then begin
      if Spec.Op.int_arg b = 0 then st "got" [ field s 0 ] (* winner *)
      else st "read" [ field s 0 ] (* loser: adopt the winner's input *)
    end
    else if is "reading" s && String.equal service (register_id peer) && Spec.Op.is "val" b
    then begin
      let w = Spec.Seq_register.read_value b in
      (* The winner's write completed before its test&set, which preceded
         ours, so the value is there; poll again defensively otherwise. *)
      if is_none w then st "read" [ field s 0 ] else st "got" [ w ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system ~f =
  let values = [ none; Value.int 0; Value.int 1 ] in
  let registers =
    List.init 2 (fun pid ->
      Model.Service.register ~id:(register_id pid) ~endpoints:[ 0; 1 ]
        (Spec.Seq_register.make ~values ~initial:none))
  in
  let tas = Model.Service.atomic ~id:tas_id ~endpoints:[ 0; 1 ] ~f (Spec.Seq_tas.make ()) in
  Model.System.make ~processes:[ client 0; client 1 ] ~services:(tas :: registers)
