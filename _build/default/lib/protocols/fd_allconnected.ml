open Ioa
open Proto_util

let fd_id = "fd"
let register_id pid = Printf.sprintf "reg%d" pid

(* States:
   - idle
   - have [v]
   - scan [v; j; suspects; seen]   -- about to poll register j
   - await [v; j; suspects; seen]  -- read of register j outstanding
   - got [w]
   - done [w] *)

let client ~n pid =
  let scan_fields s = field s 0, Value.to_int (field s 1), field s 2, field s 3 in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = register_id pid;
          op = Spec.Seq_register.write (field s 0);
          next = st "scan" [ field s 0; Value.int 0; Value.set_empty; Value.map_empty ];
        }
    else if is "scan" s then begin
      let v, j, su, seen = scan_fields s in
      if j >= n then begin
        (* Decide the value of the smallest written index. *)
        match Value.map_bindings seen with
        | (_, w) :: _ -> Model.Process.Decide { value = w; next = st "done" [ w ] }
        | [] -> Model.Process.Internal s (* unreachable: own register is written *)
      end
      else
        Model.Process.Invoke
          {
            service = register_id j;
            op = Spec.Seq_register.read;
            next = st "await" [ v; Value.int j; su; seen ];
          }
    end
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v ] else s in
  let on_response s ~service b =
    if String.equal service fd_id && Spec.Op.is "suspect" b then begin
      (* Merge the detector's report into the suspicion set, wherever we are
         in the scan. *)
      if is "scan" s || is "await" s then begin
        let v, j, su, seen = scan_fields s in
        let su' =
          Spec.Iset.to_value
            (Spec.Iset.union (Spec.Iset.of_value su) (Services.Perfect_fd.suspected_set b))
        in
        st (tag s) [ v; Value.int j; su'; seen ]
      end
      else s
    end
    else if is "await" s && Spec.Op.is "val" b then begin
      let v, j, su, seen = scan_fields s in
      if String.equal service (register_id j) then begin
        let w = Spec.Seq_register.read_value b in
        if not (is_none w) then
          st "scan" [ v; Value.int (j + 1); su; Value.map_add (Value.int j) w seen ]
        else if Value.set_mem (Value.int j) su then
          st "scan" [ v; Value.int (j + 1); su; seen ]
        else st "scan" [ v; Value.int j; su; seen ]
      end
      else s
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system ~n ~f =
  let endpoints = List.init n Fun.id in
  let values = [ none; Value.int 0; Value.int 1 ] in
  let registers =
    List.init n (fun pid ->
      Model.Service.register ~id:(register_id pid) ~endpoints
        (Spec.Seq_register.make ~values ~initial:none))
  in
  let fd =
    Model.Service.general ~coalesce:true ~id:fd_id ~endpoints ~f
      (Services.Perfect_fd.make ~endpoints)
  in
  Model.System.make ~processes:(List.init n (client ~n)) ~services:(fd :: registers)
