open Ioa
open Proto_util

let register_id pid = Printf.sprintf "reg%d" pid

let vmin a b = if Value.compare a b <= 0 then a else b

let client pid =
  let peer = 1 - pid in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = register_id pid;
          op = Spec.Seq_register.write (field s 0);
          next = st "poll" [ field s 0 ];
        }
    else if is "poll" s then
      Model.Process.Invoke
        {
          service = register_id peer;
          op = Spec.Seq_register.read;
          next = st "await" [ field s 0 ];
        }
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v ] else s in
  let on_response s ~service b =
    if is "await" s && String.equal service (register_id peer) && Spec.Op.is "val" b
    then begin
      let w = Spec.Seq_register.read_value b in
      let own = field s 0 in
      if is_none w then st "poll" [ own ] else st "got" [ vmin own w ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system () =
  let values = [ none; Value.int 0; Value.int 1 ] in
  let services =
    List.init 2 (fun pid ->
      Model.Service.register ~id:(register_id pid) ~endpoints:[ 0; 1 ]
        (Spec.Seq_register.make ~values ~initial:none))
  in
  Model.System.make ~processes:[ client 0; client 1 ] ~services
