open Ioa

let st tag fields = Value.pair (Value.str tag) (Value.list fields)
let tag s = Value.to_str (fst (Value.to_pair s))
let fields s = Value.to_list (snd (Value.to_pair s))
let field s i = List.nth (fields s) i
let is t s = String.equal t (tag s)
let none = Value.str "none"
let is_none v = Value.equal v none

let one_shot_client ~service_of ~pid =
  let service = service_of pid in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service;
          op = Spec.Seq_consensus.init (Value.to_int (field s 0));
          next = st "waiting" [ field s 0 ];
        }
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v ] else s in
  let on_response s ~service:src b =
    if is "waiting" s && String.equal src service && Spec.Seq_consensus.is_decide b then
      st "got" [ Value.int (Spec.Seq_consensus.decided_value b) ]
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()
