(** The §4 positive result: boosting IS possible for k-set consensus.

    The endpoint set is split into [groups] disjoint groups of [group_size]
    processes; each group shares one wait-free ([group_size − 1]-resilient)
    consensus service with exactly that group as endpoints. Every process
    forwards its input to its group's service and echoes the response, so at
    most [groups] distinct values are decided overall: the system solves
    wait-free [groups]-set consensus for [groups × group_size] processes out
    of services resilient to only [group_size − 1] failures — resilience is
    boosted from [group_size − 1] to [n − 1].

    With [groups = 2] this is the paper's concrete instance: wait-free
    n-endpoint 2-set consensus from wait-free n/2-endpoint consensus. *)

val service_id : int -> string
(** Service id of group [g]. *)

val group_of : group_size:int -> int -> int
(** The group a process belongs to. *)

val system : groups:int -> group_size:int -> Model.System.t
(** Inputs are expected to be integers in [0 .. n−1] (multi-valued
    consensus), so that the ≤ [groups] bound is observable. *)
