(** The Theorem 10 target: a candidate using an f-resilient perfect failure
    detector connected to {e all} processes, plus reliable registers.

    Each process writes its input to its own register, then scans registers
    0..n−1, waiting at index j until either R_j carries a value or j is
    suspected by the failure detector; it then decides the value of the
    smallest written index. Failure-free the detector reports nothing, every
    write is awaited, and the decision is deterministic — so the Lemma 4
    staircase flips rather than going bivalent. Failing f+1 processes
    (including the flip process) lets the adversary silence the all-connected
    f-resilient detector, survivors block on the dead process's register with
    no suspicion ever arriving, and termination fails: general services
    cannot boost when each is connected to all processes. *)

val fd_id : string
val register_id : int -> string

val system : n:int -> f:int -> Model.System.t
(** [f] is the resilience of the failure detector (and must satisfy
    [f < failures] for the refutation to go through — with [f ≥ failures]
    the detector survives and the claim holds, which is the §6.3 boundary). *)
