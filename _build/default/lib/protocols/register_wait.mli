(** A blocking two-process register-only consensus candidate.

    Each process writes its input to its own register, then polls the peer's
    register until a value appears, and decides the minimum of the two
    inputs. Failure-free the decision is always [min(v0, v1)] — every
    initialization is univalent — but a single crash leaves the survivor
    polling forever, so the claim of 1-resilience fails on termination. This
    exercises the engine's Lemma 4 staircase-flip path: the flip process is
    failed and the fair run never decides. *)

val register_id : int -> string
val system : unit -> Model.System.t
