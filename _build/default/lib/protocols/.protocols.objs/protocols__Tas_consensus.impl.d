lib/protocols/tas_consensus.ml: Ioa List Model Printf Proto_util Spec String Value
