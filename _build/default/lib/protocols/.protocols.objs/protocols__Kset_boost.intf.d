lib/protocols/kset_boost.mli: Model
