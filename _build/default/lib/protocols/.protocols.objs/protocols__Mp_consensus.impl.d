lib/protocols/mp_consensus.ml: Fun Ioa List Model Option Proto_util Services String Value
