lib/protocols/proto_util.mli: Ioa Model Value
