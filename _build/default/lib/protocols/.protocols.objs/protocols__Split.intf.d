lib/protocols/split.mli: Model
