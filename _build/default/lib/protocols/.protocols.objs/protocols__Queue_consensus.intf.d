lib/protocols/queue_consensus.mli: Ioa Model
