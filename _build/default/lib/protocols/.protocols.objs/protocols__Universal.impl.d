lib/protocols/universal.ml: Array Fun Ioa List Model Option Printf Proto_util Spec String Value
