lib/protocols/kset_boost.ml: Fun List Model Printf Proto_util Spec
