lib/protocols/fd_boost.ml: Array Fun Ioa List Model Printf Proto_util Services Spec String Value
