lib/protocols/register_wait.ml: Ioa List Model Printf Proto_util Spec String Value
