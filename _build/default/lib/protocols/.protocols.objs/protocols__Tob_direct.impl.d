lib/protocols/tob_direct.ml: Fun Ioa List Model Proto_util Services Spec String Value
