lib/protocols/proto_util.ml: Ioa List Model Spec String Value
