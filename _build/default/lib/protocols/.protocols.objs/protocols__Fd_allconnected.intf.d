lib/protocols/fd_allconnected.mli: Model
