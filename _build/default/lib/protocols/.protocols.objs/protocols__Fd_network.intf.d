lib/protocols/fd_network.mli: Model Spec
