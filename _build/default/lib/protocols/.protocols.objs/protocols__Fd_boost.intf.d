lib/protocols/fd_boost.mli: Ioa Model Spec Value
