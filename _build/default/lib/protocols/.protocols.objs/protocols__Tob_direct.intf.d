lib/protocols/tob_direct.mli: Model
