lib/protocols/register_wait.mli: Model
