lib/protocols/direct.ml: Fun List Model Proto_util Spec
