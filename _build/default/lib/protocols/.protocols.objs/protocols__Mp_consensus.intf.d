lib/protocols/mp_consensus.mli: Model
