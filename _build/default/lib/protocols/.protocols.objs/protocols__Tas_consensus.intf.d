lib/protocols/tas_consensus.mli: Model
