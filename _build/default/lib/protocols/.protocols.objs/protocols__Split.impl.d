lib/protocols/split.ml: List Model Printf Proto_util Spec
