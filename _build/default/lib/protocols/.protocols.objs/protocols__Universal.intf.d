lib/protocols/universal.mli: Ioa Model Spec Value
