lib/protocols/direct.mli: Model
