lib/protocols/register_vote.mli: Model
