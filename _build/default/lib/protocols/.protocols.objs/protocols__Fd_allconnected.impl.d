lib/protocols/fd_allconnected.ml: Fun Ioa List Model Printf Proto_util Services Spec String Value
