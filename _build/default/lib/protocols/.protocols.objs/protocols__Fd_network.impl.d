lib/protocols/fd_network.ml: Array Fun Ioa List Model Printf Proto_util Services Spec String Value
