lib/protocols/register_vote.ml: Ioa List Model Printf Proto_util Spec String Value
