(** The Theorem 9 target: consensus through an f-resilient totally ordered
    broadcast service (a failure-oblivious service, §5.2).

    Each process broadcasts its input and decides the value of the first
    message the service delivers to it — total order makes that consistent
    failure-free. The hook of the failure-free analysis pivots on the TOB
    service itself (Claim 4, case 1: two perform steps of the same service),
    and failing f+1 of its endpoints silences it, so the Lemma 7 construction
    yields a termination violation: boosting fails for failure-oblivious
    services exactly as for atomic objects. *)

val service_id : string

val system : n:int -> f:int -> Model.System.t
