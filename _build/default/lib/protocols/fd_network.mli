(** The §6.3 emulation proper: a wait-free n-process perfect failure
    detector built from 1-resilient 2-process perfect failure detectors and
    reliable registers.

    Process i listens to all pairwise detectors it is connected to,
    accumulates the union of suspected processes, and publishes it in a
    dedicated register; periodically it reads every published register and
    outputs the union. The emulated detector is perfect: the published sets
    contain only crashed processes (strong accuracy lifts from the pairwise
    services) and eventually every crashed process appears in every
    survivor's output (strong completeness: every pair is covered by a
    wait-free service). The experiments check both properties on adversarial
    runs. *)

val fd_id : int -> int -> string
val suspect_register : int -> string

val system : n:int -> Model.System.t

val output_of : Model.State.t -> pid:int -> Spec.Iset.t
(** The emulated n-process detector's current output at process [pid]
    (the union of all register contents it has read, plus its own
    accumulation). *)

val local_of : Model.State.t -> pid:int -> Spec.Iset.t
(** The suspicions accumulated directly from [pid]'s own pairwise
    detectors. *)
