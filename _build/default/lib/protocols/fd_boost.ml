open Ioa
open Proto_util

let fd_id i j =
  let a, b = if i < j then i, j else j, i in
  Printf.sprintf "fd_%d_%d" a b

let phase_register c = Printf.sprintf "est%d" c

(* States:
   - idle
   - run [est; c; suspects]    -- about to act in phase c
   - await [est; c; suspects]  -- read of est_c outstanding
   - done [w] *)

let run_fields s = field s 0, Value.to_int (field s 1), field s 2

let client ~n pid =
  let step s =
    if is "run" s then begin
      let est, c, su = run_fields s in
      if c >= n then Model.Process.Decide { value = est; next = st "done" [ est ] }
      else if c = pid then
        (* Coordinator: publish the estimate and advance. *)
        Model.Process.Invoke
          {
            service = phase_register c;
            op = Spec.Seq_register.write est;
            next = st "run" [ est; Value.int (c + 1); su ];
          }
      else
        Model.Process.Invoke
          {
            service = phase_register c;
            op = Spec.Seq_register.read;
            next = st "await" [ est; Value.int c; su ];
          }
    end
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "run" [ v; Value.int 0; Value.set_empty ] else s in
  let on_response s ~service b =
    if Spec.Op.is "suspect" b then begin
      if is "run" s || is "await" s then begin
        let est, c, su = run_fields s in
        let su' =
          Spec.Iset.to_value
            (Spec.Iset.union (Spec.Iset.of_value su) (Services.Perfect_fd.suspected_set b))
        in
        st (tag s) [ est; Value.int c; su' ]
      end
      else s
    end
    else if is "await" s && Spec.Op.is "val" b then begin
      let est, c, su = run_fields s in
      if String.equal service (phase_register c) then begin
        let w = Spec.Seq_register.read_value b in
        if not (is_none w) then st "run" [ w; Value.int (c + 1); su ]
        else if Value.set_mem (Value.int c) su then st "run" [ est; Value.int (c + 1); su ]
        else st "run" [ est; Value.int c; su ]
      end
      else s
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system_with_fd ~n ~fd =
  if n < 2 then invalid_arg "Fd_boost.system: need n >= 2";
  let endpoints = List.init n Fun.id in
  let values = none :: List.map Value.int (List.init n Fun.id) in
  let registers =
    List.init n (fun c ->
      Model.Service.register ~id:(phase_register c) ~endpoints
        (Spec.Seq_register.make ~values ~initial:none))
  in
  let fds =
    List.concat
      (List.init n (fun i ->
         List.filter_map (fun j -> if i < j then Some (fd i j) else None) endpoints))
  in
  Model.System.make ~processes:(List.init n (client ~n)) ~services:(registers @ fds)

let system ~n =
  system_with_fd ~n ~fd:(fun i j ->
    Model.Service.general ~coalesce:true ~id:(fd_id i j) ~endpoints:[ i; j ] ~f:1
      (Services.Perfect_fd.make ~endpoints:[ i; j ]))

let system_paranoid_ep ~n =
  system_with_fd ~n ~fd:(fun i j ->
    Model.Service.general ~coalesce:true ~id:(fd_id i j) ~endpoints:[ i; j ] ~f:1
      (Services.Eventually_perfect_fd.make ~paranoid:true ~endpoints:[ i; j ] ()))

let suspected_of (s : Model.State.t) ~pid =
  let ps = s.Model.State.procs.(pid) in
  if is "run" ps || is "await" ps then
    let _, _, su = run_fields ps in
    Spec.Iset.of_value su
  else Spec.Iset.empty

let estimate_of (s : Model.State.t) ~pid =
  let ps = s.Model.State.procs.(pid) in
  if is "run" ps || is "await" ps || is "done" ps then Some (field ps 0) else None
