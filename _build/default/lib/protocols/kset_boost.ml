let service_id g = Printf.sprintf "grp%d" g
let group_of ~group_size pid = pid / group_size

let system ~groups ~group_size =
  if groups < 1 || group_size < 1 then invalid_arg "Kset_boost.system";
  let n = groups * group_size in
  let processes =
    List.init n (fun pid ->
      Proto_util.one_shot_client
        ~service_of:(fun pid -> service_id (group_of ~group_size pid))
        ~pid)
  in
  let services =
    List.init groups (fun g ->
      let endpoints = List.init group_size (fun k -> (g * group_size) + k) in
      Model.Service.atomic ~id:(service_id g) ~endpoints ~f:(group_size - 1)
        (Spec.Seq_consensus.make ~values:(List.init n Fun.id) ()))
  in
  Model.System.make ~processes ~services
