(** The canonical Theorem 2 target: n processes coordinating through a
    single f-resilient consensus atomic object.

    Each process forwards its input to the shared object and echoes the
    object's decision. For [f ≥ n − 1] (wait-free object) the system is a
    correct (n−1)-resilient consensus implementation; for [f < n − 1] it is
    the textbook candidate for boosting — claiming (f+1)-resilient consensus
    from an f-resilient object — that Theorem 2 refutes. *)

val service_id : string

val system : n:int -> f:int -> Model.System.t
(** [system ~n ~f] — n client processes and one f-resilient binary consensus
    object connected to all of them. *)
