open Ioa
open Proto_util

let queue_id = "queue"
let register_id pid = Printf.sprintf "reg%d" pid
let token = Value.str "token"

let client pid =
  let peer = 1 - pid in
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = register_id pid;
          op = Spec.Seq_register.write (field s 0);
          next = st "wrote" [ field s 0 ];
        }
    else if is "ready" s then
      Model.Process.Invoke
        { service = queue_id; op = Spec.Seq_queue.dequeue; next = st "racing" [ field s 0 ] }
    else if is "read" s then
      Model.Process.Invoke
        {
          service = register_id peer;
          op = Spec.Seq_register.read;
          next = st "reading" [ field s 0 ];
        }
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v ] else s in
  let on_response s ~service b =
    if is "wrote" s && String.equal service (register_id pid) && Spec.Op.is "ack" b then
      st "ready" [ field s 0 ]
    else if is "racing" s && String.equal service queue_id then begin
      if Spec.Op.is "item" b then st "got" [ field s 0 ] (* took the token: winner *)
      else if Spec.Op.is "empty" b then st "read" [ field s 0 ]
      else s
    end
    else if is "reading" s && String.equal service (register_id peer) && Spec.Op.is "val" b
    then begin
      let w = Spec.Seq_register.read_value b in
      if is_none w then st "read" [ field s 0 ] else st "got" [ w ]
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system ~f =
  let values = [ none; Value.int 0; Value.int 1 ] in
  let registers =
    List.init 2 (fun pid ->
      Model.Service.register ~id:(register_id pid) ~endpoints:[ 0; 1 ]
        (Spec.Seq_register.make ~values ~initial:none))
  in
  let queue =
    Model.Service.atomic ~id:queue_id ~endpoints:[ 0; 1 ] ~f
      (Spec.Seq_queue.make ~initial:[ token ] ~elements:[ token ] ())
  in
  Model.System.make ~processes:[ client 0; client 1 ] ~services:(queue :: registers)
