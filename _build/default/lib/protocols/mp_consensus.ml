open Ioa
open Proto_util

let net_id = "net"

(* States:
   - idle
   - have [v; dst; stash]  -- broadcasting v, next destination dst, with a
     stash of deliveries that arrived before the broadcast finished
   - collecting [seen]     -- seen: canonical map src → value (self included)
   - got [w] / done [w] *)

let min_of_map seen =
  List.fold_left
    (fun acc (_, v) ->
      match acc with
      | None -> Some v
      | Some w -> Some (if Value.compare v w < 0 then v else w))
    None (Value.map_bindings seen)

let client ~n ~quorum pid =
  let settle seen =
    if List.length (Value.map_bindings seen) >= quorum then
      st "got" [ Option.get (min_of_map seen) ]
    else st "collecting" [ seen ]
  in
  let step s =
    if is "have" s then begin
      let v = field s 0 and dst = Value.to_int (field s 1) and stash = field s 2 in
      if dst >= n then
        Model.Process.Internal (settle (Value.map_add (Value.int pid) v stash))
      else if dst = pid then
        (* Own value is accounted for locally; no self-send. *)
        Model.Process.Internal (st "have" [ v; Value.int (dst + 1); stash ])
      else
        Model.Process.Invoke
          {
            service = net_id;
            op = Services.Network.send ~dst v;
            next = st "have" [ v; Value.int (dst + 1); stash ];
          }
    end
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v = if is "idle" s then st "have" [ v; Value.int 0; Value.map_empty ] else s in
  let on_response s ~service b =
    if String.equal service net_id && Services.Network.is_packet b then begin
      let m, src = Services.Network.packet_parts b in
      if is "collecting" s then settle (Value.map_add (Value.int src) m (field s 0))
      else if is "have" s then
        st "have" [ field s 0; field s 1; Value.map_add (Value.int src) m (field s 2) ]
      else s
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system ~n ~quorum =
  let endpoints = List.init n Fun.id in
  let net =
    Model.Service.oblivious ~id:net_id ~endpoints ~f:(n - 1)
      (Services.Network.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1 ])
  in
  Model.System.make ~processes:(List.init n (client ~n ~quorum)) ~services:[ net ]

let all_system ~n = system ~n ~quorum:n
let quorum_system ~n = system ~n ~quorum:(n - 1)
