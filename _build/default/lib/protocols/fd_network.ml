open Ioa
open Proto_util

let fd_id i j =
  let a, b = if i < j then i, j else j, i in
  Printf.sprintf "nfd_%d_%d" a b

let suspect_register pid = Printf.sprintf "sus%d" pid

(* States (the process runs forever — a continuous service):
   - loop [local; out; j; published] -- decide next action
   - await [local; out; j; published] -- read of sus_j outstanding
   local: union of pairwise-detector reports; out: emulated detector output;
   j: register scan cursor; published: last value written to our register. *)

let loop_fields s = field s 0, field s 1, Value.to_int (field s 2), field s 3

let client ~n pid =
  let step s =
    if is "loop" s then begin
      let local, out, j, published = loop_fields s in
      if not (Value.equal local published) then
        Model.Process.Invoke
          {
            service = suspect_register pid;
            op = Spec.Seq_register.write local;
            next = st "loop" [ local; out; Value.int j; local ];
          }
      else
        Model.Process.Invoke
          {
            service = suspect_register j;
            op = Spec.Seq_register.read;
            next = st "await" [ local; out; Value.int j; published ];
          }
    end
    else Model.Process.Internal s
  in
  let on_response s ~service b =
    if Spec.Op.is "suspect" b then begin
      if is "loop" s || is "await" s then begin
        let local, out, j, published = loop_fields s in
        let local' =
          Spec.Iset.to_value
            (Spec.Iset.union (Spec.Iset.of_value local)
               (Services.Perfect_fd.suspected_set b))
        in
        st (tag s) [ local'; out; Value.int j; published ]
      end
      else s
    end
    else if is "await" s && Spec.Op.is "val" b then begin
      let local, out, j, published = loop_fields s in
      if String.equal service (suspect_register j) then begin
        let w = Spec.Seq_register.read_value b in
        let out' =
          if is_none w then out
          else Spec.Iset.to_value (Spec.Iset.union (Spec.Iset.of_value out) (Spec.Iset.of_value w))
        in
        st "loop" [ local; out'; Value.int ((j + 1) mod n); published ]
      end
      else s
    end
    else s
  in
  Model.Process.make ~pid
    ~start:(st "loop" [ Value.set_empty; Value.set_empty; Value.int 0; Value.set_empty ])
    ~step
    ~on_init:(fun s _ -> s)
    ~on_response ()

let system ~n =
  if n < 2 then invalid_arg "Fd_network.system: need n >= 2";
  let endpoints = List.init n Fun.id in
  let registers =
    (* The register's value set is open-ended (suspicion sets); the [values]
       sample only seeds invocation enumeration for generic tools. *)
    List.init n (fun pid ->
      Model.Service.register ~id:(suspect_register pid) ~endpoints
        (Spec.Seq_register.make ~values:[ none ] ~initial:none))
  in
  let fds =
    List.concat
      (List.init n (fun i ->
         List.filter_map
           (fun j ->
             if i < j then
               Some
                 (Model.Service.general ~coalesce:true ~id:(fd_id i j) ~endpoints:[ i; j ]
                    ~f:1
                    (Services.Perfect_fd.make ~endpoints:[ i; j ]))
             else None)
           endpoints))
  in
  Model.System.make ~processes:(List.init n (client ~n)) ~services:(registers @ fds)

let local_of (s : Model.State.t) ~pid =
  let ps = s.Model.State.procs.(pid) in
  if is "loop" ps || is "await" ps then
    let local, _, _, _ = loop_fields ps in
    Spec.Iset.of_value local
  else Spec.Iset.empty

let output_of (s : Model.State.t) ~pid =
  let ps = s.Model.State.procs.(pid) in
  if is "loop" ps || is "await" ps then begin
    let local, out, _, _ = loop_fields ps in
    Spec.Iset.union (Spec.Iset.of_value local) (Spec.Iset.of_value out)
  end
  else Spec.Iset.empty
