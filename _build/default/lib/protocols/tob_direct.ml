open Ioa
open Proto_util

let service_id = "tob"

(* The first delivered message decides, no matter where in the protocol it
   arrives: total order makes the first delivery identical at every endpoint,
   and dropping an early delivery (e.g. one arriving before our own
   broadcast) would break agreement. *)
let client pid =
  let step s =
    if is "have" s then
      Model.Process.Invoke
        {
          service = service_id;
          op = Services.Tob.bcast (field s 0);
          next = st "waiting" [ field s 0 ];
        }
    else if is "got" s then
      Model.Process.Decide { value = field s 0; next = st "done" [ field s 0 ] }
    else Model.Process.Internal s
  in
  let on_init s v =
    if is "idle" s then st "have" [ v ] else if is "idle_got" s then st "got" [ field s 0 ] else s
  in
  let on_response s ~service b =
    if String.equal service service_id && Spec.Op.is "rcv" b then begin
      let m, _sender = Services.Tob.rcv_parts b in
      if is "waiting" s || is "have" s then st "got" [ m ]
      else if is "idle" s then st "idle_got" [ m ]
      else s
    end
    else s
  in
  Model.Process.make ~pid ~start:(st "idle" []) ~step ~on_init ~on_response ()

let system ~n ~f =
  let endpoints = List.init n Fun.id in
  let services =
    [
      Model.Service.oblivious ~id:service_id ~endpoints ~f
        (Services.Tob.make ~endpoints ~alphabet:[ Value.int 0; Value.int 1 ]);
    ]
  in
  Model.System.make ~processes:(List.init n client) ~services
