(** A racy two-process register-only consensus candidate.

    Each process writes its input to its own register, reads the peer's
    register once, and decides: the minimum of the two inputs if the peer's
    value was visible, its own input otherwise. A fast reader that misses the
    peer's write decides its own input while the slower peer decides the
    minimum — a failure-free agreement violation that the engine's
    direct-violation phase extracts as an execution. *)

val register_id : int -> string

val system : unit -> Model.System.t
(** Two processes, two wait-free single-writer registers. *)
