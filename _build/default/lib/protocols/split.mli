(** A broken "boosting" candidate: every process consults its own private
    wait-free consensus object.

    Each private object trivially answers its sole client with the client's
    own input, so any heterogeneous input vector yields an immediate
    agreement violation. The impossibility engine's direct-violation phase
    finds the offending execution without needing the hook machinery — a
    sanity anchor for the safety checkers. *)

val service_id : int -> string

val system : n:int -> Model.System.t
