(** The §6.3 positive result: consensus for any number of failures from
    1-resilient 2-process perfect failure detectors and reliable registers.

    Every pair {i, j} of processes shares a 1-resilient (hence wait-free)
    2-process perfect failure detector, so each process continually receives
    accurate failure information about every other process — together the
    pairwise services emulate a wait-free n-process perfect detector. On top
    of that, consensus runs as a rotating-coordinator protocol: in phase
    c = 0..n−1 the coordinator writes its current estimate to the phase
    register; every other process waits until the register is written or c
    is suspected, adopting the written value when present. After the first
    phase whose coordinator is correct, all estimates coincide, so all
    survivors decide the same value after phase n−1 — for {e any} number of
    failures up to n−1, boosting resilience from 1 to n−1. *)

open Ioa

val fd_id : int -> int -> string
(** [fd_id i j] (unordered pair) — the 2-process detector of {i, j}. *)

val phase_register : int -> string
(** The estimate register of phase [c]. *)

val system : n:int -> Model.System.t
(** Inputs are integers (use distinct values per process to make agreement
    observable). *)

val system_with_fd : n:int -> fd:(int -> int -> Model.Service.t) -> Model.System.t
(** The same protocol over custom pairwise detector services ([fd i j] must
    have endpoints [{i, j}] and id [fd_id i j]). *)

val system_paranoid_ep : n:int -> Model.System.t
(** The same protocol over ◇P detectors whose imperfect phase wrongly
    suspects everyone — the §6.2 contrast: the rotating coordinator needs
    strong accuracy, and under adversarial-◇P it loses agreement. *)

val suspected_of : Model.State.t -> pid:int -> Spec.Iset.t
(** The suspicion set process [pid] has accumulated from its pairwise
    detectors (for failure-detector emulation experiments). *)

val estimate_of : Model.State.t -> pid:int -> Value.t option
(** The current estimate of process [pid], when it is running or decided. *)
