(** Helpers for writing process programs as tagged state machines.

    Process program states are encoded as [Pair (Str tag, List fields)] so
    that programs are finite-state, structurally comparable and printable —
    prerequisites for exact exploration by the impossibility engine. *)

open Ioa

val st : string -> Value.t list -> Value.t
(** [st tag fields] builds a tagged program state. *)

val tag : Value.t -> string
val fields : Value.t -> Value.t list
val field : Value.t -> int -> Value.t
(** [field s i] is the i-th field. Raises [Value.Type_error]/[Failure] on
    shape mismatch. *)

val is : string -> Value.t -> bool
(** [is tag s] tests the tag of a state. *)

val none : Value.t
(** The distinguished "no value" register content, [Str "none"]. *)

val is_none : Value.t -> bool

val one_shot_client : service_of:(int -> string) -> pid:int -> Model.Process.t
(** The §4-style client: upon [init(v)] invoke [init(v)] on the (unique)
    consensus service [service_of pid]; upon the [decide(w)] response, output
    [decide(w)] and stop. All waiting states take dummy internal steps. *)
