let service_id = "cons"

let system ~n ~f =
  let processes =
    List.init n (fun pid -> Proto_util.one_shot_client ~service_of:(fun _ -> service_id) ~pid)
  in
  let services =
    [
      Model.Service.atomic ~id:service_id ~endpoints:(List.init n Fun.id) ~f
        (Spec.Seq_consensus.make ());
    ]
  in
  Model.System.make ~processes ~services
