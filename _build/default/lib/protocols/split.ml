let service_id pid = Printf.sprintf "cons%d" pid

let system ~n =
  let processes =
    List.init n (fun pid -> Proto_util.one_shot_client ~service_of:service_id ~pid)
  in
  let services =
    List.init n (fun pid ->
      Model.Service.atomic ~id:(service_id pid) ~endpoints:[ pid ] ~f:0
        (Spec.Seq_consensus.make ()))
  in
  Model.System.make ~processes ~services
