(** Two-process consensus from a FIFO queue pre-filled with one token — the
    other classic consensus-number-2 construction.

    Each process publishes its input, awaits the ack, then dequeues: the
    process that obtains the token decides its own input; the one that finds
    the queue empty adopts the winner's published input. Correct with a
    wait-free queue (the engine does not refute 1-resilience); refuted with a
    0-resilient queue. *)

val queue_id : string
val register_id : int -> string
val token : Ioa.Value.t

val system : f:int -> Model.System.t
