(** Message-passing consensus candidates over the reliable network service —
    the setting of the paper's original technical report [2] ("boosting
    fault-tolerance in asynchronous message passing systems is impossible")
    and of FLP.

    Every process broadcasts its input over the network, collects values
    (its own included), and decides the minimum once it holds [quorum]
    values:

    - [quorum = n] ({!all_system}): safe — the decision is always the global
      minimum — but a single crash blocks everyone, so the 1-resilience
      claim fails on termination (staircase-flip refutation);
    - [quorum = n − 1] ({!quorum_system}): live with one failure, but two
      processes can decide over different (n−1)-subsets and disagree — a
      failure-free agreement violation the engine extracts as an execution.

    FLP says no choice of protocol fixes both; these two candidates exhibit
    the two failure modes the dichotomy allows. *)

val net_id : string

val all_system : n:int -> Model.System.t
(** Wait for all [n] values, decide the minimum. *)

val quorum_system : n:int -> Model.System.t
(** Wait for [n − 1] values, decide the minimum of those seen. *)
