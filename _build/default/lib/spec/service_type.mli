(** Failure-oblivious service types U = ⟨V, V0, invs, resps, glob, δ1, δ2⟩
    (paper §5.1).

    A failure-oblivious service generalizes an atomic object: a perform step
    may deposit any number of responses in any subset of the response
    buffers, and {e global tasks} perform spontaneous compute steps not
    triggered by any invocation. The key constraint — enforced by the very
    shape of δ1/δ2, which do not receive the failed set — is that no step may
    depend on knowledge of failure events. *)

open Ioa

type response_map = (int * Value.t list) list
(** Finite support of a mapping from endpoints to finite response sequences:
    [(i, rs)] appends the responses [rs] (in order) to [resp_buffer(i)].
    Endpoints not listed receive nothing. *)

type t = {
  name : string;
  initials : Value.t list;  (** V0. *)
  invocations : Value.t list;  (** Sample/enumeration of invs. *)
  responses : Value.t list;  (** Sample/enumeration of resps. *)
  global_tasks : string list;  (** glob: names of global (compute) tasks. *)
  delta_inv : Value.t -> int -> Value.t -> (response_map * Value.t) list;
      (** δ1: total relation from invs × J × V to ResponseMap × V, used by
          perform steps. *)
  delta_glob : string -> Value.t -> (response_map * Value.t) list;
      (** δ2: total relation from glob × V to ResponseMap × V, used by
          compute steps. *)
}

val make :
  name:string ->
  initials:Value.t list ->
  invocations:Value.t list ->
  responses:Value.t list ->
  global_tasks:string list ->
  delta_inv:(Value.t -> int -> Value.t -> (response_map * Value.t) list) ->
  delta_glob:(string -> Value.t -> (response_map * Value.t) list) ->
  t

val of_sequential : Seq_type.t -> t
(** The §5.1 embedding of a sequential type: [glob = ∅], δ2 empty, and
    [δ1(a, i, v)] responds with the single δ response, delivered only to the
    invoking endpoint [i]. *)

val determinize : t -> t
(** First-choice restriction of V0, δ1 and δ2 (§3.1 determinism assumption,
    extended to failure-oblivious services in §5.3). *)

val is_deterministic : t -> sample_values:Value.t list -> bool
(** Single initial value and single-valued δ1/δ2 on the given value sample. *)
