(** The k-set-consensus sequential type (paper §2.1.2, third example).

    V is the set of subsets of {0, ..., n−1} with at most k elements,
    V0 = {∅}. The first k proposed values are remembered; every operation
    returns one of the remembered values (or the value it just added). This
    type is inherently {e nondeterministic}. *)

open Ioa

val init : int -> Value.t
val decide : int -> Value.t
val decided_value : Value.t -> int

val make : k:int -> n:int -> Seq_type.t
(** Requires [0 < k < n]; raises [Invalid_argument] otherwise. *)
