open Ioa

let v name arg = Value.pair (Value.str name) arg
let v0 name = v name Value.unit

let name op =
  let n, _ = Value.to_pair op in
  Value.to_str n

let arg op = snd (Value.to_pair op)
let is n op = match op with Value.Pair (Value.Str m, _) -> String.equal n m | _ -> false
let int_arg op = Value.to_int (arg op)
