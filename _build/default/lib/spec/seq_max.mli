(** A max-register sequential type.

    [write(v)] raises the value to [max(current, v)] (by the structural
    order on integers); [read] returns the current maximum. Deterministic,
    and a useful monotone primitive for round-based protocols. *)

open Ioa

val write : int -> Value.t
val read : Value.t
val max_resp : int -> Value.t

val make : ?initial:int -> sample:int list -> unit -> Seq_type.t
(** [sample] seeds invocation enumeration; semantics cover all integers. *)
