open Ioa

let update ~seg v = Op.v "update" (Value.pair (Value.int seg) v)
let scan = Op.v0 "scan"
let ack = Op.v0 "ack"
let view m = Op.v "view" m

let view_map resp =
  List.map (fun (k, v) -> Value.to_int k, v) (Value.map_bindings (Op.arg resp))

let make ~segments ~values ~initial =
  if segments < 1 then invalid_arg "Seq_snapshot.make: need at least one segment";
  let initial_map =
    List.fold_left
      (fun m seg -> Value.map_add (Value.int seg) initial m)
      Value.map_empty
      (List.init segments Fun.id)
  in
  let delta inv v =
    if Op.is "scan" inv then [ view v, v ]
    else if Op.is "update" inv then begin
      let seg, x = Value.to_pair (Op.arg inv) in
      if Value.to_int seg < 0 || Value.to_int seg >= segments then []
      else [ ack, Value.map_add seg x v ]
    end
    else []
  in
  let updates =
    List.concat_map
      (fun seg -> List.map (fun x -> update ~seg x) values)
      (List.init segments Fun.id)
  in
  Seq_type.make ~name:"snapshot" ~initials:[ initial_map ]
    ~invocations:(scan :: updates)
    ~responses:[ ack; view initial_map ]
    ~delta
