(** Sequential types T = ⟨V, V0, invs, resps, δ⟩ (paper §2.1.2).

    A sequential type describes the allowable sequential behaviour of an
    atomic object. The transition relation δ is total: every invocation has
    at least one outcome in every value. Nondeterminism is allowed both in
    the initial value and in δ — the k-set-consensus type requires it. *)

open Ioa

type t = {
  name : string;
  initials : Value.t list;  (** V0: nonempty set of initial values. *)
  invocations : Value.t list;
      (** Enumeration (or representative sample, for unbounded types) of
          invs, used by property tests and exhaustive drivers. *)
  responses : Value.t list;
      (** Enumeration or representative sample of resps. *)
  delta : Value.t -> Value.t -> (Value.t * Value.t) list;
      (** [delta inv v] is the nonempty list of [(response, new value)]
          outcomes of δ on [(inv, v)]. *)
}

val make :
  name:string ->
  initials:Value.t list ->
  invocations:Value.t list ->
  responses:Value.t list ->
  delta:(Value.t -> Value.t -> (Value.t * Value.t) list) ->
  t
(** Raises [Invalid_argument] if [initials] is empty. *)

val is_deterministic : t -> bool
(** True iff V0 is a singleton and δ is single-valued on the enumerated
    invocations applied to all values reachable from V0 through them
    (bounded closure; see {!reachable_values}). *)

val determinize : t -> t
(** The §3.1 restriction: keep the first initial value and the first outcome
    of each δ application. The result is deterministic and every behaviour of
    the result is a behaviour of the original. *)

val reachable_values : ?bound:int -> t -> Value.t list
(** Values reachable from V0 by applying enumerated invocations, up to
    [bound] (default 4096) distinct values. *)

val check_total : t -> (unit, string) result
(** Checks δ totality on the reachable values and enumerated invocations. *)

val apply : t -> Value.t -> Value.t -> Value.t * Value.t
(** [apply t inv v] is the first outcome of [delta inv v]. Raises
    [Invalid_argument] if δ is empty there (a totality violation). *)

val legal_sequence : t -> (Value.t * Value.t) list -> bool
(** [legal_sequence t ops] decides whether the sequence of
    [(invocation, response)] pairs is a sequential behaviour of the type,
    i.e. whether some choice of initial value and δ outcomes produces exactly
    these responses. Used by the linearizability checker. *)
