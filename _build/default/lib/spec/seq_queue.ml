open Ioa

let enqueue x = Op.v "enqueue" x
let dequeue = Op.v0 "dequeue"
let ack = Op.v0 "ack"
let item x = Op.v "item" x
let empty_resp = Op.v0 "empty"

let make ?(initial = []) ~elements () =
  let delta inv v =
    if Op.is "enqueue" inv then [ ack, Value.queue_push (Op.arg inv) v ]
    else if Op.is "dequeue" inv then
      match Value.queue_pop v with
      | None -> [ empty_resp, v ]
      | Some (x, rest) -> [ item x, rest ]
    else []
  in
  let initial_queue =
    List.fold_left (fun q x -> Value.queue_push x q) Value.queue_empty initial
  in
  Seq_type.make ~name:"fifo-queue" ~initials:[ initial_queue ]
    ~invocations:(dequeue :: List.map enqueue elements)
    ~responses:([ ack; empty_resp ] @ List.map item elements)
    ~delta
