type t = {
  name : string;
  initials : Ioa.Value.t list;
  invocations : Ioa.Value.t list;
  responses : Ioa.Value.t list;
  global_tasks : string list;
  delta_inv :
    Ioa.Value.t ->
    int ->
    Ioa.Value.t ->
    failed:Iset.t ->
    (Service_type.response_map * Ioa.Value.t) list;
  delta_glob :
    string -> Ioa.Value.t -> failed:Iset.t -> (Service_type.response_map * Ioa.Value.t) list;
}

let make ~name ~initials ~invocations ~responses ~global_tasks ~delta_inv ~delta_glob =
  if initials = [] then invalid_arg "General_type.make: empty initial value set";
  { name; initials; invocations; responses; global_tasks; delta_inv; delta_glob }

let of_oblivious (u : Service_type.t) =
  {
    name = u.Service_type.name;
    initials = u.Service_type.initials;
    invocations = u.Service_type.invocations;
    responses = u.Service_type.responses;
    global_tasks = u.Service_type.global_tasks;
    delta_inv = (fun inv i v ~failed:_ -> u.Service_type.delta_inv inv i v);
    delta_glob = (fun g v ~failed:_ -> u.Service_type.delta_glob g v);
  }

let of_sequential st = of_oblivious (Service_type.of_sequential st)

let first = function [] -> [] | outcome :: _ -> [ outcome ]

let determinize t =
  {
    t with
    initials = [ List.hd t.initials ];
    delta_inv = (fun inv i v ~failed -> first (t.delta_inv inv i v ~failed));
    delta_glob = (fun g v ~failed -> first (t.delta_glob g v ~failed));
  }
