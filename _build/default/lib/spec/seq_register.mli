(** The read/write sequential type (paper §2.1.2, first example).

    [invs = {read} ∪ {write(v)}], [resps = V ∪ {ack}],
    [δ = {((read, v), (v, v))} ∪ {((write(v), v'), (ack, v))}].
    Deterministic. *)

open Ioa

val read : Value.t
(** The [read] invocation. *)

val write : Value.t -> Value.t
(** [write v] invocation. *)

val ack : Value.t
(** The [ack] response to a write. *)

val value_resp : Value.t -> Value.t
(** [value_resp v] is the response carrying the read value [v]. *)

val read_value : Value.t -> Value.t
(** Projects the value out of a read response. *)

val make : values:Value.t list -> initial:Value.t -> Seq_type.t
(** The read/write type over value set [values] with initial value
    [initial]. *)
