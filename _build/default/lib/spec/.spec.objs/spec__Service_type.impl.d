lib/spec/service_type.ml: Ioa List Seq_type Value
