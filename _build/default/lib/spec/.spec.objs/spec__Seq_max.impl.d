lib/spec/seq_max.ml: Ioa List Op Seq_type Value
