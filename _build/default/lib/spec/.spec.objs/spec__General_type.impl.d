lib/spec/general_type.ml: Ioa Iset List Service_type
