lib/spec/seq_counter.ml: Ioa List Op Seq_type Value
