lib/spec/seq_tas.ml: Ioa Op Seq_type Value
