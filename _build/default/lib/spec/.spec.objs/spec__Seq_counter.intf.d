lib/spec/seq_counter.mli: Ioa Seq_type Value
