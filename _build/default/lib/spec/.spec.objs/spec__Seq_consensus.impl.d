lib/spec/seq_consensus.ml: Ioa List Op Seq_type Value
