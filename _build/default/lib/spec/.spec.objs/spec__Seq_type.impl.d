lib/spec/seq_type.ml: Format Ioa List Queue Value
