lib/spec/iset.ml: Format Int Ioa List Set
