lib/spec/general_type.mli: Ioa Iset Seq_type Service_type Value
