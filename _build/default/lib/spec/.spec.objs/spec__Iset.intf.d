lib/spec/iset.mli: Format Ioa Set
