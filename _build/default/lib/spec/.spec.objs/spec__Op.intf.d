lib/spec/op.mli: Ioa
