lib/spec/seq_kset.ml: Fun Ioa List Op Printf Seq_type Value
