lib/spec/seq_queue.mli: Ioa Seq_type Value
