lib/spec/op.ml: Ioa String Value
