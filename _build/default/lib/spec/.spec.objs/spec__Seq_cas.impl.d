lib/spec/seq_cas.ml: Ioa List Op Seq_type Value
