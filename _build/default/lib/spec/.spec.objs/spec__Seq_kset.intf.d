lib/spec/seq_kset.mli: Ioa Seq_type Value
