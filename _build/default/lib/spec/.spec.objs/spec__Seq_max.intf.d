lib/spec/seq_max.mli: Ioa Seq_type Value
