lib/spec/seq_snapshot.mli: Ioa Seq_type Value
