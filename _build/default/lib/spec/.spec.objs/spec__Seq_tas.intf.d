lib/spec/seq_tas.mli: Ioa Seq_type Value
