lib/spec/seq_cas.mli: Ioa Seq_type Value
