lib/spec/seq_register.ml: List Op Seq_type
