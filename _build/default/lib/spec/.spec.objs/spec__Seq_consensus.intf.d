lib/spec/seq_consensus.mli: Ioa Seq_type Value
