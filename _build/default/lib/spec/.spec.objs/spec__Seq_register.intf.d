lib/spec/seq_register.mli: Ioa Seq_type Value
