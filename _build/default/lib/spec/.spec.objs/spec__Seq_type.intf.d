lib/spec/seq_type.mli: Ioa Value
