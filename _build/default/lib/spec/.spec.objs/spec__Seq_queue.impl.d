lib/spec/seq_queue.ml: Ioa List Op Seq_type Value
