lib/spec/service_type.mli: Ioa Seq_type Value
