lib/spec/seq_snapshot.ml: Fun Ioa List Op Seq_type Value
