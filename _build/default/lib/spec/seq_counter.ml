open Ioa

let increment = Op.v0 "increment"
let read = Op.v0 "read"
let count n = Op.v "count" (Value.int n)

let make ?(sample_bound = 8) () =
  let delta inv v =
    let n = Value.to_int v in
    if Op.is "increment" inv then [ count n, Value.int (n + 1) ]
    else if Op.is "read" inv then [ count n, v ]
    else []
  in
  Seq_type.make ~name:"counter" ~initials:[ Value.int 0 ]
    ~invocations:[ increment; read ]
    ~responses:(List.init sample_bound count)
    ~delta
