
let read = Op.v0 "read"
let write v = Op.v "write" v
let ack = Op.v0 "ack"
let value_resp v = Op.v "val" v
let read_value resp = Op.arg resp

let make ~values ~initial =
  let delta inv v =
    if Op.is "read" inv then [ value_resp v, v ]
    else if Op.is "write" inv then [ ack, Op.arg inv ]
    else []
  in
  Seq_type.make ~name:"read/write" ~initials:[ initial ]
    ~invocations:(read :: List.map write values)
    ~responses:(ack :: List.map value_resp values)
    ~delta
