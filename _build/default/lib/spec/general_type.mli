(** General (potentially failure-aware) service types (paper §6.1).

    A general service further generalizes a failure-oblivious service: its
    δ1/δ2 receive the current [failed] set, so perform and compute steps may
    depend on knowledge of past failures of the processes connected to the
    service. Failure detectors (§6.2) are the canonical examples. *)

open Ioa

type t = {
  name : string;
  initials : Value.t list;
  invocations : Value.t list;
  responses : Value.t list;
  global_tasks : string list;
  delta_inv :
    Value.t -> int -> Value.t -> failed:Iset.t -> (Service_type.response_map * Value.t) list;
      (** δ1: total relation from invs × J × V × 2^I to ResponseMap × V. *)
  delta_glob :
    string -> Value.t -> failed:Iset.t -> (Service_type.response_map * Value.t) list;
      (** δ2: total relation from glob × V × 2^I to ResponseMap × V. *)
}

val make :
  name:string ->
  initials:Value.t list ->
  invocations:Value.t list ->
  responses:Value.t list ->
  global_tasks:string list ->
  delta_inv:
    (Value.t -> int -> Value.t -> failed:Iset.t -> (Service_type.response_map * Value.t) list) ->
  delta_glob:
    (string -> Value.t -> failed:Iset.t -> (Service_type.response_map * Value.t) list) ->
  t

val of_oblivious : Service_type.t -> t
(** The §6.1 embedding: δ'1((a, i, v, F)) = δ1((a, i, v)) and
    δ'2((g, v, F)) = δ2((g, v)) — the failed set is ignored. *)

val of_sequential : Seq_type.t -> t
(** Composition of the §5.1 and §6.1 embeddings. *)

val determinize : t -> t
(** First-choice restriction (§3.1). *)
