include Set.Make (Int)

let of_range lo hi = List.init (max 0 (hi - lo + 1)) (fun k -> lo + k) |> of_list

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (elements s)

let to_value s = Ioa.Value.set_of_list (List.map Ioa.Value.int (elements s))
let of_value v = of_list (List.map Ioa.Value.to_int (Ioa.Value.set_elements v))
