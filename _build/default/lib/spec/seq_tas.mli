(** The test&set sequential type.

    A one-shot bit: [test_and_set] returns the previous value and sets the
    bit; [read] returns the current value. Consensus number 2 — included as a
    representative "weak" atomic object for boosting experiments. *)

open Ioa

val test_and_set : Value.t
val read : Value.t
val bit : int -> Value.t
(** Response carrying the observed bit. *)

val make : unit -> Seq_type.t
