open Ioa

let test_and_set = Op.v0 "test_and_set"
let read = Op.v0 "read"
let bit b = Op.v "bit" (Value.int b)

let make () =
  let delta inv v =
    let b = Value.to_int v in
    if Op.is "test_and_set" inv then [ bit b, Value.int 1 ]
    else if Op.is "read" inv then [ bit b, v ]
    else []
  in
  Seq_type.make ~name:"test&set" ~initials:[ Value.int 0 ]
    ~invocations:[ test_and_set; read ]
    ~responses:[ bit 0; bit 1 ]
    ~delta
