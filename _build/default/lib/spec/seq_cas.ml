open Ioa

let cas ~expected ~desired = Op.v "cas" (Value.pair expected desired)
let read = Op.v0 "read"
let ok b = Op.v "ok" (Value.bool b)
let value_resp v = Op.v "val" v

let make ~values ~initial =
  let delta inv v =
    if Op.is "read" inv then [ value_resp v, v ]
    else if Op.is "cas" inv then
      let expected, desired = Value.to_pair (Op.arg inv) in
      if Value.equal v expected then [ ok true, desired ] else [ ok false, v ]
    else []
  in
  let cas_invs =
    List.concat_map
      (fun e -> List.map (fun d -> cas ~expected:e ~desired:d) values)
      values
  in
  Seq_type.make ~name:"compare&swap" ~initials:[ initial ]
    ~invocations:(read :: cas_invs)
    ~responses:([ ok true; ok false ] @ List.map value_resp values)
    ~delta
