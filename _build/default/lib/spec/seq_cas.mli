(** The compare&swap sequential type.

    [cas(old, new)] atomically replaces the value with [new] if it currently
    equals [old], returning whether the swap happened; [read] returns the
    current value. Universal (infinite consensus number). *)

open Ioa

val cas : expected:Value.t -> desired:Value.t -> Value.t
val read : Value.t
val ok : bool -> Value.t
(** The boolean response to a [cas]. *)

val value_resp : Value.t -> Value.t

val make : values:Value.t list -> initial:Value.t -> Seq_type.t
