open Ioa

let init v = Op.v "init" (Value.int v)
let decide v = Op.v "decide" (Value.int v)
let decided_value resp = Op.int_arg resp
let is_decide = Op.is "decide"

let make ?(values = [ 0; 1 ]) () =
  let empty = Value.set_empty in
  let delta inv v =
    if not (Op.is "init" inv) then []
    else
      let proposed = Op.int_arg inv in
      match Value.set_elements v with
      | [] -> [ decide proposed, Value.set_add (Value.int proposed) empty ]
      | first :: _ -> [ decide (Value.to_int first), v ]
  in
  Seq_type.make ~name:"consensus" ~initials:[ empty ]
    ~invocations:(List.map init values)
    ~responses:(List.map decide values)
    ~delta
