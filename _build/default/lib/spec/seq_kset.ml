open Ioa

let init v = Op.v "init" (Value.int v)
let decide v = Op.v "decide" (Value.int v)
let decided_value resp = Op.int_arg resp

let make ~k ~n =
  if not (0 < k && k < n) then invalid_arg "Seq_kset.make: need 0 < k < n";
  let delta inv w =
    if not (Op.is "init" inv) then []
    else
      let v = Op.int_arg inv in
      if Value.set_cardinal w < k then
        let w' = Value.set_add (Value.int v) w in
        List.map (fun v' -> decide (Value.to_int v'), w') (Value.set_elements w')
      else List.map (fun v' -> decide (Value.to_int v'), w) (Value.set_elements w)
  in
  let range = List.init n Fun.id in
  Seq_type.make
    ~name:(Printf.sprintf "%d-set-consensus(%d)" k n)
    ~initials:[ Value.set_empty ]
    ~invocations:(List.map init range)
    ~responses:(List.map decide range)
    ~delta
