open Ioa

type t = {
  name : string;
  initials : Value.t list;
  invocations : Value.t list;
  responses : Value.t list;
  delta : Value.t -> Value.t -> (Value.t * Value.t) list;
}

let make ~name ~initials ~invocations ~responses ~delta =
  if initials = [] then invalid_arg "Seq_type.make: empty initial value set";
  { name; initials; invocations; responses; delta }

let reachable_values ?(bound = 4096) t =
  let seen = Value.Tbl.create 64 in
  let order = ref [] in
  (* Breadth-first, so the enumerated sample prefers small values when the
     value space is unbounded and the bound kicks in. *)
  let queue = Queue.create () in
  List.iter (fun v -> Queue.add v queue) t.initials;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Value.Tbl.mem seen v) && Value.Tbl.length seen < bound then begin
      Value.Tbl.replace seen v ();
      order := v :: !order;
      List.iter
        (fun inv -> List.iter (fun (_, v') -> Queue.add v' queue) (t.delta inv v))
        t.invocations
    end
  done;
  List.rev !order

let is_deterministic t =
  List.length t.initials = 1
  && List.for_all
       (fun v -> List.for_all (fun inv -> List.length (t.delta inv v) <= 1) t.invocations)
       (reachable_values t)

let determinize t =
  {
    t with
    initials = [ List.hd t.initials ];
    delta =
      (fun inv v ->
        match t.delta inv v with [] -> [] | outcome :: _ -> [ outcome ]);
  }

let check_total t =
  let missing =
    List.find_map
      (fun v ->
        List.find_map
          (fun inv -> if t.delta inv v = [] then Some (inv, v) else None)
          t.invocations)
      (reachable_values t)
  in
  match missing with
  | None -> Ok ()
  | Some (inv, v) ->
    Error
      (Format.asprintf "type %s: delta undefined on (%a, %a)" t.name Value.pp inv
         Value.pp v)

let apply t inv v =
  match t.delta inv v with
  | [] ->
    invalid_arg
      (Format.asprintf "Seq_type.apply: %s: delta empty on (%a, %a)" t.name Value.pp
         inv Value.pp v)
  | outcome :: _ -> outcome

let legal_sequence t ops =
  (* Track the set of values consistent with the observed prefix. *)
  let step values (inv, resp) =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (r, v') -> if Value.equal r resp then Some v' else None)
          (t.delta inv v))
      values
    |> List.sort_uniq Value.compare
  in
  List.fold_left step (List.sort_uniq Value.compare t.initials) ops <> []
