open Ioa

type response_map = (int * Value.t list) list

type t = {
  name : string;
  initials : Value.t list;
  invocations : Value.t list;
  responses : Value.t list;
  global_tasks : string list;
  delta_inv : Value.t -> int -> Value.t -> (response_map * Value.t) list;
  delta_glob : string -> Value.t -> (response_map * Value.t) list;
}

let make ~name ~initials ~invocations ~responses ~global_tasks ~delta_inv ~delta_glob =
  if initials = [] then invalid_arg "Service_type.make: empty initial value set";
  { name; initials; invocations; responses; global_tasks; delta_inv; delta_glob }

let of_sequential (st : Seq_type.t) =
  {
    name = st.Seq_type.name;
    initials = st.Seq_type.initials;
    invocations = st.Seq_type.invocations;
    responses = st.Seq_type.responses;
    global_tasks = [];
    delta_inv =
      (fun inv i v ->
        List.map (fun (resp, v') -> [ i, [ resp ] ], v') (st.Seq_type.delta inv v));
    delta_glob = (fun _ _ -> []);
  }

let first = function [] -> [] | outcome :: _ -> [ outcome ]

let determinize t =
  {
    t with
    initials = [ List.hd t.initials ];
    delta_inv = (fun inv i v -> first (t.delta_inv inv i v));
    delta_glob = (fun g v -> first (t.delta_glob g v));
  }

let is_deterministic t ~sample_values =
  List.length t.initials = 1
  && List.for_all
       (fun v ->
         List.for_all
           (fun inv ->
             List.for_all (fun i -> List.length (t.delta_inv inv i v) <= 1) [ 0; 1 ])
           t.invocations
         && List.for_all (fun g -> List.length (t.delta_glob g v) <= 1) t.global_tasks)
       sample_values
