(** A FIFO queue sequential type.

    [enqueue x] appends; [dequeue] removes and returns the head, or returns
    [empty] on an empty queue. Consensus number 2. *)

open Ioa

val enqueue : Value.t -> Value.t
val dequeue : Value.t
val ack : Value.t
val item : Value.t -> Value.t
val empty_resp : Value.t

val make : ?initial:Value.t list -> elements:Value.t list -> unit -> Seq_type.t
(** [elements] is the sample alphabet used for invocation enumeration;
    [initial] (default empty) pre-fills the queue — one-shot synchronization
    objects such as the queue-consensus construction rely on it. *)
