open Ioa

let write v = Op.v "write" (Value.int v)
let read = Op.v0 "read"
let max_resp v = Op.v "max" (Value.int v)

let make ?(initial = 0) ~sample () =
  let delta inv v =
    let cur = Value.to_int v in
    if Op.is "read" inv then [ max_resp cur, v ]
    else if Op.is "write" inv then begin
      let x = Op.int_arg inv in
      [ max_resp (max cur x), Value.int (max cur x) ]
    end
    else []
  in
  Seq_type.make ~name:"max-register" ~initials:[ Value.int initial ]
    ~invocations:(read :: List.map write sample)
    ~responses:(List.map max_resp sample)
    ~delta
