(** The binary consensus sequential type (paper §2.1.2, second example).

    V = {∅, {0}, {1}}, V0 = {∅}. The first initial value is remembered and
    returned by every operation. Deterministic. *)

open Ioa

val init : int -> Value.t
(** [init v] invocation, [v ∈ {0, 1}]. *)

val decide : int -> Value.t
(** [decide v] response. *)

val decided_value : Value.t -> int
(** Projects the decision out of a [decide] response. *)

val is_decide : Value.t -> bool

val make : ?values:int list -> unit -> Seq_type.t
(** [values] (default [[0; 1]]) is the proposal alphabet: binary consensus by
    default, multi-valued when wider — the §4 boosting construction feeds it
    one distinct value per process. *)
