(** A fetch&increment counter sequential type.

    [increment] returns the pre-increment value; [read] returns the current
    value. The value set is unbounded; [invocations]/[responses] carry a
    bounded sample for enumeration-based tools. *)

open Ioa

val increment : Value.t
val read : Value.t
val count : int -> Value.t

val make : ?sample_bound:int -> unit -> Seq_type.t
(** [sample_bound] (default 8) bounds the response sample only; semantics are
    unbounded. *)
