(** Encoding of invocations and responses as structural values.

    An operation is a name with an argument, encoded as
    [Value.Pair (Str name, arg)]. All sequential and service types in this
    library use this encoding, so the canonical automata and property
    checkers can inspect operations uniformly. *)

val v : string -> Ioa.Value.t -> Ioa.Value.t
(** [v name arg] builds the operation value. *)

val v0 : string -> Ioa.Value.t
(** [v0 name] is [v name Value.unit] — a nullary operation such as [read]. *)

val name : Ioa.Value.t -> string
(** Raises [Value.Type_error] if the value is not an operation. *)

val arg : Ioa.Value.t -> Ioa.Value.t
val is : string -> Ioa.Value.t -> bool
(** [is n op] holds iff [op] is an operation named [n]. *)

val int_arg : Ioa.Value.t -> int
(** [int_arg op] is the integer argument of [op]. *)
