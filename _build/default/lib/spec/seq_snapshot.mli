(** An atomic snapshot sequential type.

    The value is a vector of [segments] cells. [update(seg, v)] writes cell
    [seg]; [scan] returns the whole vector atomically. Deterministic.
    Snapshot objects have consensus number 1; they are the canonical "strong
    but not strong enough" object for the boosting discussion. *)

open Ioa

val update : seg:int -> Value.t -> Value.t
val scan : Value.t
val ack : Value.t
val view : Value.t -> Value.t
(** Response carrying the scanned vector (a canonical map seg → value). *)

val view_map : Value.t -> (int * Value.t) list
(** Decodes a scan response into bindings. *)

val make : segments:int -> values:Value.t list -> initial:Value.t -> Seq_type.t
