(** Sets of process indices (endpoints, failed sets). *)

include Set.S with type elt = int

val of_range : int -> int -> t
(** [of_range lo hi] is [{lo, ..., hi}] (empty if [hi < lo]). *)

val pp : Format.formatter -> t -> unit
val to_value : t -> Ioa.Value.t
(** Canonical {!Ioa.Value} set encoding, for embedding into component states. *)

val of_value : Ioa.Value.t -> t
