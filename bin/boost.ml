(* The `boost` command-line driver: run the impossibility engine, the
   positive-result protocols, and the full experiment battery from the shell. *)

open Cmdliner

module Registry = Protocols.Registry

(* The one protocol table: bin, bench and the test-suites all enumerate
   [Registry.all]. *)
let protocol_conv =
  let parse s =
    match Registry.find s with
    | Some e -> Ok e
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown protocol: %s (expected one of %s)" s
             (String.concat " | " Registry.sorted_names)))
  in
  let print ppf (e : Registry.entry) = Format.pp_print_string ppf e.Registry.name in
  Arg.conv (parse, print)

let params ~n ~f ~groups ~group_size = { Registry.n; f; groups; group_size }

let build_system e ~n ~f ~groups ~group_size =
  e.Registry.build (params ~n ~f ~groups ~group_size)

let protocol_doc = "Protocol: " ^ String.concat " | " Registry.names ^ "."

let protocol_arg =
  Arg.(required & pos 0 (some protocol_conv) None & info [] ~docv:"PROTOCOL" ~doc:protocol_doc)

let n_arg = Arg.(value & opt int 2 & info [ "n"; "procs" ] ~docv:"N" ~doc:"Number of processes.")
let f_arg = Arg.(value & opt int 0 & info [ "f"; "resilience" ] ~docv:"F" ~doc:"Service resilience level.")

let failures_arg =
  Arg.(value & opt int 1 & info [ "failures" ] ~docv:"K" ~doc:"Claimed resilience (= f + 1).")

let groups_arg = Arg.(value & opt int 2 & info [ "groups" ] ~docv:"G" ~doc:"k-set groups.")

let group_size_arg =
  Arg.(value & opt int 2 & info [ "group-size" ] ~docv:"S" ~doc:"Processes per group.")

let seeds_arg = Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"S" ~doc:"Random-run count.")

(* --- the persistent analysis cache: shared flags --- *)

let cache_dir_arg =
  Arg.(
    value
    & opt ~vopt:(Some Analysis.Cache.default_dir) (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          (Printf.sprintf
             "Consult and populate a persistent analysis cache under DIR (default %s when \
              the flag is given bare). Entries are keyed by a structural hash of the \
              protocol's analysis-relevant behavior and self-invalidate when the analyzer \
              changes; a warm cache replays byte-identical reports. Off unless given."
             Analysis.Cache.default_dir))

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Ignore --cache and analyze cold — the differential baseline a warm cache run \
           is compared against.")

let cache_stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-stats" ] ~docv:"FILE"
        ~doc:
          "Write cache hit/miss/stale/corrupt/renamed/write counters as JSON to FILE. \
           Counters also go to stderr whenever a cache is active, keeping stdout \
           byte-identical to the cache-less run.")

let cache_of ~cache_dir ~no_cache =
  if no_cache then None else Option.map (fun dir -> Analysis.Cache.open_ ~dir) cache_dir

let finish_cache ~stats_out cache =
  match cache with
  | None -> ()
  | Some c ->
    (match stats_out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Analysis.Cache.stats_json c);
      close_out oc
    | None -> ());
    Format.eprintf "%a@." Analysis.Cache.pp_stats c

let max_states_arg =
  Arg.(value & opt int 200_000 & info [ "max-states" ] ~docv:"B" ~doc:"State-space bound.")

(* --- refute --- *)

let refute_cmd =
  let run protocol n f failures groups group_size max_states =
    let sys = build_system protocol ~n ~f ~groups ~group_size in
    let report = Engine.Counterexample.refute ~max_states ~failures sys in
    Format.printf "%a@." Engine.Counterexample.pp_report report;
    match report.Engine.Counterexample.outcome with
    | Engine.Counterexample.Refuted _ -> 0
    | Engine.Counterexample.Not_refuted _ -> 1
    | Engine.Counterexample.Out_of_budget _ -> 2
  in
  let term =
    Term.(
      const run $ protocol_arg $ n_arg $ f_arg $ failures_arg $ groups_arg $ group_size_arg
      $ max_states_arg)
  in
  Cmd.v
    (Cmd.info "refute"
       ~doc:
         "Attack a protocol's claim of K-resilient consensus with the Theorem 2/9/10 engine; \
          exits 0 when refuted, 1 when the claim stands.")
    term

(* --- staircase --- *)

let staircase_cmd =
  let run protocol n f groups group_size =
    let sys = build_system protocol ~n ~f ~groups ~group_size in
    List.iter
      (fun e -> Format.printf "%a@." Engine.Initialization.pp_entry e)
      (Engine.Initialization.staircase sys);
    0
  in
  let term =
    Term.(const run $ protocol_arg $ n_arg $ f_arg $ groups_arg $ group_size_arg)
  in
  Cmd.v
    (Cmd.info "staircase" ~doc:"Print the Lemma 4 staircase of initializations with valences.")
    term

(* --- explore --- *)

let explore_cmd =
  let run protocol n f groups group_size max_states =
    let sys = build_system protocol ~n ~f ~groups ~group_size in
    let inputs =
      List.init (Model.System.n_processes sys) (fun i -> Ioa.Value.int (i mod 2))
    in
    let start = Model.System.initialize sys inputs in
    let g = Engine.Graph.explore ~max_states sys start in
    let a = Engine.Valence.analyze g in
    Format.printf "states: %d (%s)@." (Engine.Graph.size g)
      (if Engine.Graph.complete g then "complete" else "bounded");
    List.iter
      (fun v ->
        Format.printf "%a: %d@." Engine.Valence.pp_verdict v (Engine.Valence.count a v))
      Engine.Valence.[ Zero_valent; One_valent; Bivalent; Blank ];
    0
  in
  let term =
    Term.(
      const run $ protocol_arg $ n_arg $ f_arg $ groups_arg $ group_size_arg $ max_states_arg)
  in
  Cmd.v (Cmd.info "explore" ~doc:"Materialize G(C) and print the valence census.") term

(* --- run (positive protocols) --- *)

let run_cmd =
  let run protocol n f groups group_size seeds =
    let sys = build_system protocol ~n ~f ~groups ~group_size in
    let np = Model.System.n_processes sys in
    let k = protocol.Registry.k_of (params ~n ~f ~groups ~group_size) in
    let ok = ref 0 in
    for seed = 0 to seeds - 1 do
      let exec0 =
        List.fold_left
          (fun (e, i) v -> Model.Exec.append_init sys e i (Ioa.Value.int v), i + 1)
          (Model.Exec.init (Model.System.initial_state sys), 0)
          (List.init np Fun.id)
        |> fst
      in
      let sched =
        Model.Scheduler.random ~seed ~fail_prob:0.02 ~max_failures:(np - 1) sys
      in
      let exec, _ =
        Model.Scheduler.run ~policy:Model.System.dummy_policy
          ~stop_when:Model.Properties.termination ~max_steps:60_000 sys exec0 sched
      in
      let final = Model.Exec.last_state exec in
      let r = Model.Properties.check ~k final in
      if
        r.Model.Properties.agreement && r.Model.Properties.validity
        && r.Model.Properties.termination
      then incr ok
      else
        Format.printf "seed %d: %a@." seed Model.Properties.pp_report r
    done;
    Format.printf "%d/%d adversarial runs satisfied the specification@." !ok seeds;
    if !ok = seeds then 0 else 1
  in
  let term =
    Term.(
      const run $ protocol_arg $ n_arg $ f_arg $ groups_arg $ group_size_arg $ seeds_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a protocol under seeded-random adversarial schedules with failure injection \
          and check its specification.")
    term

(* --- lemmas --- *)

let lemmas_cmd =
  let run protocol n f failures groups group_size =
    let sys = build_system protocol ~n ~f ~groups ~group_size in
    let analyses =
      List.map
        (fun (e : Engine.Initialization.entry) -> e.Engine.Initialization.analysis)
        (Engine.Initialization.staircase sys)
    in
    let report name failures_list =
      Format.printf "%-48s %s@." name
        (if failures_list = [] then "holds"
         else Printf.sprintf "%d counterexample(s)" (List.length failures_list));
      List.iteri
        (fun i fl -> if i < 3 then Format.printf "    %a@." Engine.Lemma_check.pp_failure fl)
        failures_list
    in
    List.iter (fun a -> report "Lemma 1 (applicability persistence)" (Engine.Lemma_check.lemma1_applicability a)) analyses;
    List.iter (fun a -> report "Lemma 3 (valence dichotomy)" (Engine.Lemma_check.lemma3_dichotomy a)) analyses;
    report "Lemma 6 consequence (j-similar univalent states)"
      (Engine.Lemma_check.lemma6_j_similarity sys analyses);
    report
      (Printf.sprintf "Lemma 7 consequence (k-similar, %d failures)" failures)
      (Engine.Lemma_check.lemma7_k_similarity ~failures sys analyses);
    List.iter (fun a -> report "valence: SCC vs naive oracle" (Engine.Lemma_check.scc_vs_naive a)) analyses;
    0
  in
  let term =
    Term.(
      const run $ protocol_arg $ n_arg $ f_arg $ failures_arg $ groups_arg $ group_size_arg)
  in
  Cmd.v
    (Cmd.info "lemmas"
       ~doc:
         "Check the paper's lemmas exhaustively over the protocol's staircase graphs. \
          Lemmas 1/3 must always hold; Lemma 6/7 counterexamples on a candidate are the \
          refutation levers.")
    term

(* --- chaos --- *)

(* fd-network is deliberately not in the registry: it decides nothing (the
   lint analyzer flags blank protocols as errors), so the chaos command
   resolves it here and swaps f-termination for the ◇P monitors its spec
   actually promises. *)
let chaos_resolve name ~degrade ~n ~f ~groups ~group_size =
  match name with
  | "fd-network" | "fd_network" ->
    let sys = Protocols.Fd_network.system ~n:(max n 2) in
    let output = Protocols.Fd_network.output_of in
    Ok
      ( sys,
        Some
          (Chaos.Monitor.safety ~degrade ()
          @ [
              Chaos.Monitor.fd_completeness ~output ();
              Chaos.Monitor.fd_accuracy ~output ();
              Chaos.Monitor.linearizability ~degrade ();
            ]) )
  | name -> (
    match Registry.find name with
    | Some e ->
      (* No explicit monitors: the explorer resolves the (degrade-aware)
         default family itself, keeping the static oracles engaged — they
         key on the caller not overriding the defaults. *)
      Ok (build_system e ~n ~f ~groups ~group_size, None)
    | None ->
      Error
        (Printf.sprintf "unknown protocol: %s (expected fd-network | %s)" name
           (String.concat " | " Registry.sorted_names)))

let chaos_cmd =
  let protocol_pos =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL"
          ~doc:("Protocol to attack: fd-network | " ^ String.concat " | " Registry.names ^ "."))
  in
  let protocol_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"PROTOCOL"
          ~doc:"Alias for the positional PROTOCOL argument.")
  in
  let faults_conv =
    let parse s =
      match int_of_string_opt s with
      | Some k when k >= 0 -> Ok (`Count k)
      | Some _ -> Error (`Msg "--faults: negative budget")
      | None -> (
        match Chaos.Schedule.parse_kinds s with
        | Ok ks -> Ok (`Kinds ks)
        | Error e -> Error (`Msg e))
    in
    let print ppf = function
      | `Count k -> Format.fprintf ppf "%d" k
      | `Kinds ks ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
          Chaos.Schedule.pp_kind ppf ks
    in
    Arg.conv (parse, print)
  in
  let faults_arg =
    Arg.(
      value
      & opt faults_conv (`Count 1)
      & info [ "faults" ] ~docv:"K|KINDS"
          ~doc:
            "Either an integer K — explore schedules with up to K crashes (the legacy \
             crash-only adversary) — or a comma-separated fault-kind list drawn from \
             crash, silence, drop, dup, delay, partition; the budget is then set by \
             $(b,--max-faults).")
  in
  let max_faults_arg =
    Arg.(
      value & opt int 1
      & info [ "max-faults" ] ~docv:"K"
          ~doc:"Fault budget when $(b,--faults) names kinds: up to K faults in total.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Wall-clock budget: stop starting new schedules after SECS seconds (or on \
             SIGINT), emit the partial report with an explicit 'truncated: wall-clock' \
             marker, and exit 2 unless a violation was already found.")
  in
  let witness_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "On violation, write the minimized (or, without shrinking, the original) \
             schedule to FILE in $(b,--schedule) syntax.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seeded chaos mode: random fault schedules and task interleavings derived \
             deterministically from SEED, SEED+1, ... with exact replay. Without this, \
             crash placements are enumerated systematically.")
  in
  let runs_arg =
    Arg.(value & opt int 64 & info [ "runs" ] ~docv:"R" ~doc:"Seeded mode: seeds to try.")
  in
  let max_steps_arg =
    Arg.(value & opt int 20_000 & info [ "max-steps" ] ~docv:"M" ~doc:"Per-run step bound.")
  in
  let horizon_arg =
    Arg.(
      value & opt int 0
      & info [ "horizon" ] ~docv:"H"
          ~doc:"Crash steps range over [0, H) (0 = twice the task count).")
  in
  let budget_arg =
    Arg.(
      value & opt int 1_024
      & info [ "budget" ] ~docv:"B"
          ~doc:
            "Systematic mode: maximum schedules to run. Truncation of the enumeration \
             space is reported, never silent.")
  in
  let stride_arg =
    Arg.(value & opt int 1 & info [ "stride" ] ~docv:"S" ~doc:"Crash-step grid granularity.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Systematic mode: explore with N parallel domains (work-stealing over the \
             candidate enumeration; the merged report is deterministic). 1 keeps the \
             sequential explorer.")
  in
  let dedup_arg =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "dedup" ]
                ~doc:
                  "Prune schedules whose configuration at activation was already explored \
                   (default; parallel systematic mode only)." );
            (false, info [ "no-dedup" ] ~doc:"Run every candidate schedule, even reconverging ones.");
          ])
  in
  let shrink_arg =
    Arg.(
      value
      & vflag true
          [
            (true, info [ "shrink" ] ~doc:"Delta-debug a violating schedule to a minimal one (default).");
            (false, info [ "no-shrink" ] ~doc:"Report the violating schedule as found.");
          ])
  in
  let static_prune_arg =
    Arg.(
      value & flag
      & info [ "static-prune" ]
          ~doc:
            "Systematic mode: skip schedules the abstract-interpretation analyzer proves \
             infeasible as violations (faults landing after the certified quiescence \
             step; network faults additionally need the empty-buffer certificate), \
             without executing them. The report is unchanged except for the prune count.")
  in
  let por_arg =
    Arg.(
      value
      & vflag false
          [
            ( true,
              info [ "por" ]
                ~doc:
                  "Systematic mode: partial-order reduction — skip schedules whose fault \
                   placement (crash, drop/dup/delay, partition) is equivalent by the \
                   static footprint relation to a lower-ranked schedule's, inheriting \
                   its verdict. Violations and verdicts match the un-reduced \
                   exploration exactly." );
            ( false,
              info [ "no-por" ]
                ~doc:"Run every fault placement, even interference-equivalent ones (default)." );
          ])
  in
  let prune_stats_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prune-stats-out" ] ~docv:"FILE"
          ~doc:
            "Systematic mode: write the exploration's prune statistics (examined, space, \
             dedup/static/por prune counts, ...) to FILE as JSON.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SPEC"
          ~doc:
            "Run one explicit fault schedule instead of exploring, e.g. \
             'crash@0:1,silence@4:cons' ('helpful,' prefix for the non-silencing \
             adversary).")
  in
  let degrade_arg =
    Arg.(
      value & flag
      & info [ "degrade" ]
          ~doc:
            "Graceful-degradation monitoring: instead of waiving liveness wholesale \
             under network damage, monitors check the degraded guarantee the live \
             vector still supports (per-partition-block agreement, liveness of every \
             process the damage does not excuse) and fail when even that is breached. \
             Violations carry the live guarantee vector ('degraded to ...'), and \
             $(b,--witness-out) appends the vector trajectory as '#' comment lines. \
             Off by default; crash-only reports are byte-identical without it.")
  in
  let run protocol_pos protocol_opt n f groups group_size faults max_faults seed runs
      max_steps horizon budget stride jobs dedup shrink static_prune por prune_stats_out
      schedule timeout witness_out degrade cache_dir no_cache cache_stats =
    let name =
      match protocol_pos, protocol_opt with
      | Some p, None | None, Some p -> Ok p
      | Some a, Some b when String.equal a b -> Ok a
      | Some _, Some _ -> Error "give PROTOCOL positionally or via --protocol, not both"
      | None, None -> Error "need a PROTOCOL argument (or --protocol)"
    in
    match
      Result.bind name (fun name -> chaos_resolve name ~degrade ~n ~f ~groups ~group_size)
    with
    | Error e ->
      Format.eprintf "%s@." e;
      3
    | Ok (sys, monitors) -> (
      let horizon =
        if horizon > 0 then horizon else 2 * Array.length sys.Model.System.tasks
      in
      match schedule with
      | Some spec -> (
        match Chaos.Schedule.parse spec with
        | Error e ->
          Format.eprintf "bad --schedule: %s@." e;
          3
        | Ok schedule -> (
          match Chaos.Schedule.validate sys schedule with
          | Error e ->
            Format.eprintf "bad --schedule: %s@." e;
            3
          | Ok () -> (
            (* A single explicit run bypasses the explorer's defaulting, so
               resolve the (degrade-aware) default family here. *)
            let monitors =
              Option.value monitors ~default:(Chaos.Monitor.defaults ~degrade ())
            in
            let r = Chaos.Runner.run ~monitors ~max_steps ~schedule sys in
            List.iter
              (fun (m, cat, why) ->
                Format.printf "monitor %s truncated [%s]: %s@." m
                  (Chaos.Monitor.category_name cat)
                  why)
              r.Chaos.Runner.monitor_truncations;
            if r.Chaos.Runner.undelivered_crashes > 0 then
              Format.printf "%d scheduled crash(es) fell beyond --max-steps@."
                r.Chaos.Runner.undelivered_crashes;
            if r.Chaos.Runner.undelivered_net > 0 then
              Format.printf "%d scheduled network fault(s) fell beyond --max-steps@."
                r.Chaos.Runner.undelivered_net;
            if r.Chaos.Runner.vacuous_net_faults > 0 then
              Format.printf "%d delivered network fault(s) found an empty buffer@."
                r.Chaos.Runner.vacuous_net_faults;
            Format.printf "%d steps: %a@." r.Chaos.Runner.steps Chaos.Runner.pp_stop
              r.Chaos.Runner.stop;
            match r.Chaos.Runner.stop with
            | Chaos.Runner.Violation _ ->
              if degrade then
                Format.printf "degraded to %s@."
                  (Chaos.Degrade.describe sys r.Chaos.Runner.exec);
              1
            | Chaos.Runner.Lasso _ | Chaos.Runner.Budget | Chaos.Runner.Pruned -> 0)))
      | None ->
        let max_faults, kinds =
          match faults with
          | `Count k -> k, None
          | `Kinds ks -> max_faults, Some ks
        in
        let mode =
          match seed with
          | Some seed ->
            Chaos.Driver.Seeded
              {
                seed;
                runs;
                max_faults;
                horizon;
                max_steps;
                kinds =
                  Option.value kinds
                    ~default:[ Chaos.Schedule.Crash_k; Chaos.Schedule.Silence_k ];
                degrade;
              }
          | None ->
            Chaos.Driver.Systematic
              {
                Chaos.Explore.max_faults;
                horizon;
                stride;
                budget;
                max_steps;
                kinds = Option.value kinds ~default:[ Chaos.Schedule.Crash_k ];
                degrade;
              }
        in
        (* Wall-clock budget: expiry and SIGINT share one graceful path —
           finish the schedule in flight, report partially, exit 2. *)
        let interrupted = ref false in
        let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) timeout in
        let prev_sigint =
          Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> interrupted := true))
        in
        let stop () =
          !interrupted
          || match deadline with Some d -> Unix.gettimeofday () >= d | None -> false
        in
        let cache = cache_of ~cache_dir ~no_cache in
        let dcache = Option.map (fun c -> c, Analysis.Structhash.system sys) cache in
        let report =
          Chaos.Driver.run ?monitors ~shrink ~domains:jobs ~dedup ~static_prune ~por
            ?cache:dcache ~stop mode sys
        in
        Sys.set_signal Sys.sigint prev_sigint;
        Format.printf "%a@." Chaos.Driver.pp_report report;
        (match prune_stats_out with
        | None -> ()
        | Some file ->
          let oc = open_out file in
          Printf.fprintf oc
            "{\n\
            \  \"examined\": %d,\n\
            \  \"space\": %d,\n\
            \  \"truncated\": %b,\n\
            \  \"wall_truncated\": %b,\n\
            \  \"dedup_hits\": %d,\n\
            \  \"static_prunes\": %d,\n\
            \  \"por_prunes\": %d,\n\
            \  \"step_budget_hits\": %d,\n\
            \  \"monitor_truncations\": %d,\n\
            \  \"vacuous_net_faults\": %d,\n\
            \  \"violation\": %b\n\
             }\n"
            report.Chaos.Driver.examined report.Chaos.Driver.space
            report.Chaos.Driver.truncated report.Chaos.Driver.wall_truncated
            report.Chaos.Driver.dedup_hits report.Chaos.Driver.static_prunes
            report.Chaos.Driver.por_prunes report.Chaos.Driver.step_budget_hits
            report.Chaos.Driver.monitor_truncations
            report.Chaos.Driver.vacuous_net_faults
            (match report.Chaos.Driver.outcome with
            | Chaos.Driver.Violated _ -> true
            | Chaos.Driver.Passed -> false);
          close_out oc;
          (* stderr, so pruned-vs-oracle stdout diffs stay clean *)
          Format.eprintf "prune statistics written to %s@." file);
        (match report.Chaos.Driver.outcome, witness_out with
        | Chaos.Driver.Violated { original; minimized; _ }, Some file ->
          let v = Option.value minimized ~default:original in
          let oc = open_out file in
          output_string oc (Chaos.Schedule.to_string v.Chaos.Explore.schedule);
          output_char oc '\n';
          if degrade then begin
            (* The vector trajectory rides along as comment lines, which
               Schedule.parse ignores, so the file still replays. *)
            let baseline, changes = Chaos.Degrade.trajectory sys v.Chaos.Explore.exec in
            Printf.fprintf oc "# baseline: %s\n" (Analysis.Gvector.to_string baseline);
            List.iter
              (fun (step, event, vec) ->
                Printf.fprintf oc "# step %d %s: %s\n" step
                  (Model.Event.to_string event)
                  (Analysis.Gvector.to_string vec))
              changes
          end;
          close_out oc;
          Format.printf "witness schedule written to %s@." file
        | _ -> ());
        finish_cache ~stats_out:cache_stats cache;
        (match report.Chaos.Driver.outcome with
        | Chaos.Driver.Violated _ -> 1
        | Chaos.Driver.Passed -> if report.Chaos.Driver.wall_truncated then 2 else 0))
  in
  let term =
    Term.(
      const run $ protocol_pos $ protocol_opt $ n_arg $ f_arg $ groups_arg
      $ group_size_arg $ faults_arg $ max_faults_arg $ seed_arg $ runs_arg $ max_steps_arg
      $ horizon_arg $ budget_arg $ stride_arg $ jobs_arg $ dedup_arg $ shrink_arg
      $ static_prune_arg $ por_arg $ prune_stats_out_arg $ schedule_arg $ timeout_arg
      $ witness_out_arg $ degrade_arg $ cache_dir_arg $ no_cache_arg $ cache_stats_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Systematic fault-schedule injection with property monitors and shrinking: \
          enumerate (or randomly sample, with --seed and exact replay) crash placements, \
          service silencings and network faults (drop/dup/delay/partition, with --faults \
          KINDS), check agreement/validity/f-termination/linearizability — or, for \
          fd-network, the \xe2\x97\x87P completeness/accuracy monitors — during each run, \
          and delta-debug any violation to a minimal schedule. With --degrade, network \
          damage degrades the checked guarantee instead of waiving it. Exits 1 with the \
          minimized schedule on violation, 0 when all monitors pass, 2 when the \
          wall-clock budget truncated the exploration first, 3 on usage errors.")
    term

(* --- serve --- *)

let serve_cmd =
  let protocol_pos =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PROTOCOL"
          ~doc:
            ("Protocol to serve on: any registry protocol claiming single-value agreement \
              (" ^ String.concat " | " Registry.names ^ ")."))
  in
  let obj_arg =
    Arg.(
      value
      & opt string "counter"
      & info [ "obj" ] ~docv:"OBJ"
          ~doc:"Replicated object: counter (increment/read) or register (read/write).")
  in
  let clients_arg =
    Arg.(value & opt int 12 & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client sessions.")
  in
  let ops_arg =
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"M" ~doc:"Total operations to serve.")
  in
  let rate_arg =
    Arg.(
      value & opt int 8
      & info [ "rate" ] ~docv:"R" ~doc:"Open-loop arrivals admitted per tick (at most).")
  in
  let batch_arg =
    Arg.(
      value & opt int 16
      & info [ "batch" ] ~docv:"B" ~doc:"Maximum commands committed per consensus shot.")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 2
      & info [ "pipeline" ] ~docv:"P" ~doc:"Consensus shots launched per tick (at most).")
  in
  let retry_timeout_arg =
    Arg.(
      value & opt int 8
      & info [ "retry-timeout" ] ~docv:"T"
          ~doc:
            "Ticks a client waits before resubmitting an operation (exponential backoff, \
             idempotent at the replicas).")
  in
  let rejoin_after_arg =
    Arg.(
      value & opt int 25
      & info [ "rejoin-after" ] ~docv:"T"
          ~doc:"Ticks a crashed replica stays down before starting catch-up.")
  in
  let catch_up_rate_arg =
    Arg.(
      value & opt int 32
      & info [ "catch-up-rate" ] ~docv:"K"
          ~doc:"Commit-log entries a recovering replica replays per tick.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"KINDS"
          ~doc:
            "Draw a random fault timeline from the seed, restricted to these kinds \
             (comma-separated from crash, silence, drop, dup, delay, partition); the \
             budget is $(b,--max-faults). Without this (and without \
             $(b,--schedule)) the run is fault-free.")
  in
  let max_faults_arg =
    Arg.(
      value & opt int 2
      & info [ "max-faults" ] ~docv:"K" ~doc:"Fault budget for the seeded timeline.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"SPEC"
          ~doc:
            "Explicit fault timeline, same grammar as $(b,boost chaos --schedule) with \
             steps read as engine ticks, e.g. 'crash@6:1,partition@20:0|1.2:32'. \
             Network faults are rebased into the next consensus shot's step space.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Determinism root: the op stream and any $(b,--faults) draws derive from S, \
             and the same invocation replays the identical report byte-for-byte.")
  in
  let max_ticks_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-ticks" ] ~docv:"T"
          ~doc:"Engine tick bound (default: scaled from --ops, --rate and --rejoin-after).")
  in
  let shot_max_steps_arg =
    Arg.(
      value & opt int 4_000
      & info [ "shot-max-steps" ] ~docv:"M" ~doc:"Per-consensus-shot step bound.")
  in
  let lin_max_nodes_arg =
    Arg.(
      value & opt int 200_000
      & info [ "lin-max-nodes" ] ~docv:"B"
          ~doc:
            "Per-window search budget of the incremental linearizability monitor; \
             exhaustion is an explicit truncation, never a silent pass.")
  in
  let pin_oracle_arg =
    Arg.(
      value & flag
      & info [ "pin-oracle" ]
          ~doc:
            "After the run, re-check the full client history with the monolithic \
             Model.Linearize oracle and report agreement (small runs only: the oracle \
             re-searches the entire history).")
  in
  let shrink_arg =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "shrink" ]
                ~doc:"Delta-debug a violating shot schedule to a minimal one (default)." );
            (false, info [ "no-shrink" ] ~doc:"Report the violating shot schedule as found.");
          ])
  in
  let witness_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "witness-out" ] ~docv:"FILE"
          ~doc:
            "On a shot violation, write the minimized (or, without shrinking, the \
             original) shot schedule to FILE in $(b,--schedule) syntax.")
  in
  let run protocol obj clients ops rate batch pipeline retry_timeout rejoin_after
      catch_up_rate faults max_faults schedule seed max_ticks shot_max_steps lin_max_nodes
      pin_oracle shrink witness_out n f groups group_size =
    let ( let* ) = Result.bind in
    let checked =
      let* proto =
        Option.to_result ~none:"need a PROTOCOL argument (e.g. `boost serve direct`)"
          protocol
      in
      let* entry =
        Option.to_result
          ~none:
            (Printf.sprintf "unknown protocol: %s (expected one of %s)" proto
               (String.concat " | " Registry.sorted_names))
          (Registry.find proto)
      in
      let params = params ~n ~f ~groups ~group_size in
      let* () =
        if Workload.Engine.eligible entry params then Ok ()
        else
          Error
            (Printf.sprintf
               "%s at n=%d f=%d does not claim single-value agreement; the engine \
                commits batches on the decided bit, so it cannot serve on it"
               proto n f)
      in
      let* _obj = Workload.Engine.obj_of_name obj in
      let* schedule =
        match schedule with
        | None -> Ok None
        | Some spec -> (
          match Chaos.Schedule.parse spec with
          | Ok s -> Ok (Some s)
          | Error e -> Error (Printf.sprintf "bad --schedule: %s" e))
      in
      let* kinds =
        match faults with
        | None -> Ok []
        | Some spec -> (
          match Chaos.Schedule.parse_kinds spec with
          | Ok ks -> Ok ks
          | Error e -> Error (Printf.sprintf "bad --faults: %s" e))
      in
      Ok (proto, params, schedule, kinds)
    in
    match checked with
    | Error e ->
      Format.eprintf "%s@." e;
      3
    | Ok (proto, params, schedule, kinds) ->
      let cfg =
        {
          (Workload.Engine.default_config ~proto ()) with
          Workload.Engine.params;
          obj_name = obj;
          clients;
          ops;
          rate;
          batch;
          pipeline;
          timeout = retry_timeout;
          rejoin_after;
          catch_up_rate;
          seed;
          schedule;
          kinds;
          max_faults = (if kinds = [] then 0 else max_faults);
          max_ticks;
          shot_max_steps;
          lin_max_nodes;
          pin_oracle;
          shrink;
        }
      in
      let t0 = Unix.gettimeofday () in
      let report = Workload.Engine.run cfg in
      let wall = Unix.gettimeofday () -. t0 in
      print_string (Workload.Report.render report);
      (* Wall-clock goes to stderr only: stdout is the seeded-replay surface. *)
      Format.eprintf "wall: %.3fs (%.0f simulated ops/sec)@." wall
        (float_of_int report.Workload.Report.completed /. Float.max wall 1e-9);
      (match report.Workload.Report.outcome, witness_out with
      | Workload.Report.Shot_violation { minimized; _ }, Some file ->
        let oc = open_out file in
        output_string oc minimized;
        output_char oc '\n';
        close_out oc;
        Format.printf "witness schedule written to %s@." file
      | _ -> ());
      Workload.Report.exit_code report
  in
  let term =
    Term.(
      const run $ protocol_pos $ obj_arg $ clients_arg $ ops_arg $ rate_arg $ batch_arg
      $ pipeline_arg $ retry_timeout_arg $ rejoin_after_arg $ catch_up_rate_arg
      $ faults_arg $ max_faults_arg $ schedule_arg $ seed_arg $ max_ticks_arg
      $ shot_max_steps_arg $ lin_max_nodes_arg $ pin_oracle_arg $ shrink_arg
      $ witness_out_arg $ n_arg $ f_arg $ groups_arg $ group_size_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Multi-shot RSM workload engine: serve an open-loop client stream on a \
          long-lived replicated object over the protocol's consensus shots, with online \
          fault injection (explicit --schedule or seeded --faults), crash-recovery via \
          commit-log catch-up, retrying clients with idempotent resubmission, and an \
          incremental linearizability monitor on the client-visible history. Fully \
          deterministic per seed. Exits 0 when the run is served (possibly degraded \
          under standing damage), 1 on any violation — shot safety (minimized through \
          the shrinker), linearizability, replica divergence or duplicate application — \
          and 3 on usage errors.")
    term

(* --- lint --- *)

let lint_cmd =
  let protocol_opt =
    Arg.(
      value
      & pos 0 (some protocol_conv) None
      & info [] ~docv:"PROTOCOL" ~doc:protocol_doc)
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Lint every registry protocol with its default parameters; exit non-zero if any has findings.")
  in
  let max_faults_arg =
    Arg.(
      value & opt int 1
      & info [ "max-faults" ] ~docv:"K"
          ~doc:"Analyze contexts with up to K crashed processes.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per finding (severity, protocol, rule, subject, message) \
             instead of the human report. Exit-code semantics are unchanged.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "With --all: lint with N parallel domains. Output stays in registry order, \
             byte-identical to the sequential run.")
  in
  let param_arg =
    Arg.(
      value & flag
      & info [ "param" ]
          ~doc:
            "Certify over the (n, f) parameter window n in {2,3,4} x f in {0,1,2} \
             instead of linting one instantiation: emit each protocol's resilience \
             certificate (findings universally quantified over the window where they \
             hold everywhere, per-point verdicts otherwise). -n/-f are ignored. Exits 0 \
             on successful certification — per-point warning exits are recorded \
             verdicts, not failures.")
  in
  let validate_arg =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "With --param: re-lint every certified point fresh (cache-less, concrete) \
             and compare byte-for-byte; exit 1 listing any disagreeing points.")
  in
  let run all protocol n f groups group_size max_faults json jobs param validate
      cache_dir no_cache cache_stats =
    let cache = cache_of ~cache_dir ~no_cache in
    let emit_human (r : Registry.lint_result) = print_string r.Registry.human in
    let selected_for_param () =
      match all, protocol with
      | true, None -> Ok (Array.of_list Registry.all)
      | false, Some e -> Ok [| e |]
      | true, Some _ ->
        Format.eprintf "--all takes no PROTOCOL argument@.";
        Error 3
      | false, None ->
        Format.eprintf "need a PROTOCOL argument or --all@.";
        Error 3
    in
    let run_param () =
      match selected_for_param () with
      | Error c -> c
      | Ok entries ->
        let certs = Array.make (Array.length entries) None in
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length entries then begin
              certs.(i) <- Some (entries.(i), Registry.certify ?cache ~max_faults entries.(i));
              loop ()
            end
          in
          loop ()
        in
        let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
        if jobs <= 1 then worker ()
        else begin
          let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
          worker ();
          List.iter Domain.join spawned
        end;
        let certs = List.filter_map Fun.id (Array.to_list certs) in
        List.iter
          (fun (_, cert) ->
            if json then print_endline (Analysis.Cert.json cert)
            else Format.printf "%a@." Analysis.Cert.pp cert)
          certs;
        if not validate then 0
        else begin
          (* The concrete gate: every stored point re-linted fresh and
             compared byte-for-byte — a certificate may claim nothing a
             concrete instantiation would not reproduce. *)
          let bad =
            List.concat_map
              (fun ((e : Registry.entry), cert) ->
                List.map
                  (fun pt -> e.Registry.name, pt)
                  (Registry.cert_disagreements ~max_faults e cert))
              certs
          in
          if bad = [] then 0
          else begin
            List.iter
              (fun (name, (pn, pf)) ->
                Format.eprintf
                  "%s: certificate disagrees with the concrete lint at (n=%d, f=%d)@."
                  name pn pf)
              bad;
            1
          end
        end
    in
    let code =
      if param then run_param ()
      else
      match all, protocol with
      | true, None ->
        let entries = Array.of_list Registry.all in
        let results = Array.make (Array.length entries) None in
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < Array.length entries then begin
              results.(i) <-
                Some (Registry.lint ?cache ~max_faults entries.(i) Registry.default_params);
              loop ()
            end
          in
          loop ()
        in
        (* The Chaos.Driver worker pattern: an atomic next-index counter,
           jobs-1 spawned domains plus this one, results landing in fixed
           slots so emission order is the registry order regardless of which
           domain ran what. *)
        let jobs = max 1 (min jobs (Domain.recommended_domain_count ())) in
        if jobs <= 1 then worker ()
        else begin
          let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
          worker ();
          List.iter Domain.join spawned
        end;
        let results = List.filter_map Fun.id (Array.to_list results) in
        if json then
          (* Globally sorted (protocol, severity, code, subject): the
             diff-stable CI artifact ordering. *)
          List.iter
            (fun (p, f) -> print_endline (Analysis.Lint.json_of_finding ~protocol:p f))
            (Analysis.Lint.sort_for_artifact
               (List.concat_map
                  (fun (r : Registry.lint_result) ->
                    List.map (fun f -> r.Registry.name, f) r.Registry.findings)
                  results))
        else List.iter emit_human results;
        (match cache with
        | Some c ->
          (* Record the fleet manifest: `boost cache status` diffs the live
             registry against it to report what changed, was renamed, or
             needs re-analysis. *)
          Analysis.Cache.write_manifest c
            (List.filter_map
               (fun (r : Registry.lint_result) ->
                 Option.map (fun h -> r.Registry.name, h) r.Registry.hash)
               results)
        | None -> ());
        List.fold_left (fun acc (r : Registry.lint_result) -> max acc r.Registry.code) 0
          results
      | false, Some e ->
        let p = params ~n ~f ~groups ~group_size in
        let r = Registry.lint ?cache ~max_faults e p in
        if json then
          List.iter
            (fun f ->
              print_endline (Analysis.Lint.json_of_finding ~protocol:r.Registry.name f))
            r.Registry.findings
        else emit_human r;
        r.Registry.code
      | true, Some _ ->
        Format.eprintf "--all takes no PROTOCOL argument@.";
        3
      | false, None ->
        Format.eprintf "need a PROTOCOL argument or --all@.";
        3
    in
    finish_cache ~stats_out:cache_stats cache;
    code
  in
  let term =
    Term.(
      const run $ all_arg $ protocol_opt $ n_arg $ f_arg $ groups_arg $ group_size_arg
      $ max_faults_arg $ json_arg $ jobs_arg $ param_arg $ validate_arg $ cache_dir_arg
      $ no_cache_arg $ cache_stats_arg)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a protocol by abstract interpretation: dead or unreachable \
          transitions, non-total/non-deterministic task functions (the §3.1 assumptions), \
          statically-blank protocols (no reachable decide), and resilience-interface \
          mismatches. One machine-readable finding per line; exits 0 when no finding is \
          worse than info, 1 otherwise, 3 on usage errors. With --param, certify over \
          the whole (n, f) window instead (resilience certificates, validated concretely \
          under --validate).")
    term

(* --- cache --- *)

let cache_cmd =
  let dir_arg =
    Arg.(
      value
      & opt string Analysis.Cache.default_dir
      & info [ "cache" ] ~docv:"DIR" ~doc:"Cache directory (default $(docv)=_boost_cache).")
  in
  let status_cmd =
    let run dir =
      if not (Sys.file_exists dir && Sys.is_directory dir) then begin
        Format.printf "%s: no cache@." dir;
        0
      end
      else begin
        let by_kind = Analysis.Cache.entries ~dir in
        Format.printf "@[<v 2>%s:@," dir;
        if by_kind = [] then Format.printf "no entries@,"
        else
          List.iter
            (fun (kind, n, bytes) ->
              Format.printf "%-8s %d entr%s, %d bytes@," kind n
                (if n = 1 then "y" else "ies")
                bytes)
            by_kind;
        let corrupt = Analysis.Cache.corrupt_count ~dir in
        if corrupt > 0 then Format.printf "%d quarantined (.corrupt) file%s@," corrupt
            (if corrupt = 1 then "" else "s");
        (* Change-impact report: the recorded fleet manifest against the
           live registry, protocol by protocol. *)
        (match Analysis.Cache.read_manifest (Analysis.Cache.open_ ~dir) with
        | None -> Format.printf "no fleet manifest (run `boost lint --all --cache %s`)@," dir
        | Some old ->
          let r = Analysis.Cache.diff old (Registry.manifest ()) in
          List.iter
            (fun (name, change) ->
              Format.printf "%-14s %a@," name Analysis.Cache.pp_change change)
            r.Analysis.Cache.changes;
          List.iter
            (fun name -> Format.printf "%-14s removed from registry@," name)
            r.Analysis.Cache.removed);
        Format.printf "@]@.";
        0
      end
    in
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Entry counts per kind, quarantined files, and a change-impact diff of the \
            live protocol fleet against the recorded manifest (unchanged / renamed / \
            changed / added).")
      Term.(const run $ dir_arg)
  in
  let clear_cmd =
    let run dir =
      let n = Analysis.Cache.clear ~dir in
      Format.printf "%s: removed %d entr%s@." dir n (if n = 1 then "y" else "ies");
      0
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Remove every cache entry (and quarantined file) under DIR.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the persistent analysis cache populated by `boost lint \
          --cache` and `boost chaos --cache`.")
    [ status_cmd; clear_cmd ]

(* --- experiments --- *)

let experiments_cmd =
  let run () =
    let rows = Experiments.all () in
    Format.printf "%a@." Experiments.pp_table rows;
    let bad = List.filter (fun r -> not r.Experiments.ok) rows in
    Format.printf "@.%d/%d experiment rows match the paper@."
      (List.length rows - List.length bad)
      (List.length rows);
    if bad = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Run the full E1-E11 battery and print paper-vs-measured.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "boost" ~version:"1.0.0"
       ~doc:
         "Executable reproduction of 'The Impossibility of Boosting Distributed Service \
          Resilience' (Attie, Guerraoui, Kuznetsov, Lynch, Rajsbaum).")
    [
      refute_cmd;
      staircase_cmd;
      explore_cmd;
      run_cmd;
      lemmas_cmd;
      chaos_cmd;
      serve_cmd;
      lint_cmd;
      cache_cmd;
      experiments_cmd;
    ]

let () = exit (Cmd.eval' main)
