module System = Model.System
module Service = Model.Service
module Task = Model.Task
module Process = Model.Process

type component =
  | Pstate of int
  | Decision of int
  | Crash_bit of int
  | Svc_value of int
  | Svc_inv of int * int
  | Svc_resp of int * int
  | Net_topology

module Cset = Set.Make (struct
  type t = component

  let compare = Stdlib.compare
end)

type t = { reads : Cset.t; writes : Cset.t }

(* --- what a process task may do ---

   The refined path reuses the Reach/Transfer machinery: the solved abstract
   states bound every program state process i can ever be in (any context,
   any crash pattern within the analysis bound), and probing the very same
   [Process.step] the transfer functions call yields the exact set of
   services it may invoke and whether it may decide. Anything imprecise
   (a Top value set, a probe raising — Transfer reports those as incidents)
   falls back to the structural answer: every connected service, may
   decide. *)

type proc_may = { invokes : int list; decides : bool }

let conservative_proc_may (sys : System.t) i =
  let invokes = ref [] in
  Array.iteri
    (fun svc (c : Service.t) ->
      if Option.is_some (Service.endpoint_pos c i) then invokes := svc :: !invokes)
    sys.System.services;
  { invokes = List.rev !invokes; decides = true }

let proc_may ?reach (sys : System.t) i =
  let conservative = conservative_proc_may sys i in
  match reach with
  | None -> conservative
  | Some (r : Reach.t) -> (
    let joined =
      Array.fold_left
        (fun acc (inf : Reach.info) ->
          match inf.Reach.astate with
          | Astate.Bot -> acc
          | Astate.St st -> Vset.join acc st.Astate.procs.(i))
        Vset.bot r.Reach.infos
    in
    match Vset.elements joined with
    | None -> conservative
    | Some vs -> (
      try
        let invokes = ref [] and decides = ref false in
        List.iter
          (fun v ->
            match sys.System.processes.(i).Process.step v with
            | Process.Invoke { service; _ } ->
              invokes := System.service_pos sys service :: !invokes
            | Process.Decide _ -> decides := true
            | Process.Internal _ -> ())
          vs;
        { invokes = List.sort_uniq Int.compare !invokes; decides = !decides }
      with _ -> conservative))

(* --- crash-bit read sets ---

   [max_crashes] bounds the total failures in the configurations the
   footprint describes; with it, reads the concrete semantics performs but
   whose outcome provably cannot vary are dropped:

   - the silencing threshold [|failed ∩ J| > f] can only trip when more
     than f crashes are possible, so at most f crashes leave only the
     task's own membership bit observable;
   - a non-General service's δ ignores the failed set by construction
     ({!Spec.General_type.of_oblivious} / [of_sequential] drop it);
   - a compute task's all-endpoints-failed dummy guard needs |J| crashes. *)

let endpoint_bits (c : Service.t) =
  Array.to_list (Array.map (fun j -> Crash_bit j) c.Service.endpoints)

let io_crash_reads ~max_crashes (c : Service.t) i =
  if max_crashes > c.Service.resilience then Crash_bit i :: endpoint_bits c
  else [ Crash_bit i ]

let perform_crash_reads ~max_crashes (c : Service.t) i =
  if c.Service.cls = Service.General then Crash_bit i :: endpoint_bits c
  else io_crash_reads ~max_crashes c i

let compute_crash_reads ~max_crashes (c : Service.t) =
  if
    c.Service.cls = Service.General
    || max_crashes > c.Service.resilience
    || max_crashes >= Array.length c.Service.endpoints
  then endpoint_bits c
  else []

let resolve_max_crashes (sys : System.t) = function
  | Some k -> max 0 k
  | None -> Array.length sys.System.processes

let of_task ?reach ?max_crashes (sys : System.t) (tk : Task.t) =
  let max_crashes = resolve_max_crashes sys max_crashes in
  match tk with
  | Task.Proc i ->
    let may = proc_may ?reach sys i in
    let base = [ Pstate i; Crash_bit i ] in
    let reads = Cset.of_list (if may.decides then Decision i :: base else base) in
    let writes =
      Cset.of_list
        ((Pstate i :: (if may.decides then [ Decision i ] else []))
        @ List.map (fun svc -> Svc_inv (svc, i)) may.invokes)
    in
    { reads; writes }
  | Task.Svc_perform { svc; endpoint = i } ->
    let c = sys.System.services.(svc) in
    let resp_all = Array.to_list (Array.map (fun j -> Svc_resp (svc, j)) c.Service.endpoints) in
    let touched = Svc_inv (svc, i) :: Svc_value svc :: resp_all in
    {
      reads = Cset.of_list (touched @ perform_crash_reads ~max_crashes c i);
      writes = Cset.of_list touched;
    }
  | Task.Svc_output { svc; endpoint = i } ->
    let c = sys.System.services.(svc) in
    let touched = [ Svc_resp (svc, i); Pstate i ] in
    {
      (* An output turn consults the cross-block delivery state: an active
         partition can hold the buffered response back (the chaos scheduler's
         [blocked] gate), so the turn's outcome may observe the topology. *)
      reads = Cset.of_list ((Net_topology :: touched) @ io_crash_reads ~max_crashes c i);
      writes = Cset.of_list touched;
    }
  | Task.Svc_compute { svc; glob = _ } ->
    let c = sys.System.services.(svc) in
    let resp_all = Array.to_list (Array.map (fun j -> Svc_resp (svc, j)) c.Service.endpoints) in
    let touched = Svc_value svc :: resp_all in
    {
      reads = Cset.of_list (touched @ compute_crash_reads ~max_crashes c);
      writes = Cset.of_list touched;
    }

let of_system ?reach ?max_crashes (sys : System.t) =
  let max_crashes = resolve_max_crashes sys max_crashes in
  (* Reach is probed per process, not per task; share one refinement pass. *)
  Array.map (fun tk -> tk, of_task ?reach ~max_crashes sys tk) sys.System.tasks

let fail_writes pid = Cset.singleton (Crash_bit pid)

(* --- network-adversary deliveries ---

   Expressed over the same component space, neutrally (no dependency on the
   chaos layer's schedule grammar): a drop/dup/delay reads and rewrites
   exactly its target endpoint's response buffer — vacuousness (empty
   buffer) is a read of the same component — while a partition or heal
   rewrites only the cross-block delivery state ([Net_topology]), which
   lives in the compiled schedule, not in {!Model.State.t}; the only tasks
   observing it are service outputs (their [blocked] gate). *)

type net_op = Omission of { svc : int; endpoint : int } | Topology

let of_net_op = function
  | Omission { svc; endpoint } ->
    let c = Cset.singleton (Svc_resp (svc, endpoint)) in
    { reads = c; writes = c }
  | Topology ->
    let c = Cset.singleton Net_topology in
    { reads = c; writes = c }

(* --- cache serialization ---

   Footprints become first-class cache entries (kind "fp"), so the POR and
   static-prune paths stop re-deriving them per run. Components are tagged
   by a single char mirroring the constructor. *)

let encode_component b = function
  | Pstate i ->
    Buffer.add_char b 'p';
    Codec.int_out b i
  | Decision i ->
    Buffer.add_char b 'd';
    Codec.int_out b i
  | Crash_bit i ->
    Buffer.add_char b 'c';
    Codec.int_out b i
  | Svc_value k ->
    Buffer.add_char b 'v';
    Codec.int_out b k
  | Svc_inv (k, i) ->
    Buffer.add_char b 'i';
    Codec.int_out b k;
    Codec.int_out b i
  | Svc_resp (k, i) ->
    Buffer.add_char b 'r';
    Codec.int_out b k;
    Codec.int_out b i
  | Net_topology -> Buffer.add_char b 't'

let decode_component cur =
  match Codec.next cur with
  | 'p' -> Pstate (Codec.int_in cur)
  | 'd' -> Decision (Codec.int_in cur)
  | 'c' -> Crash_bit (Codec.int_in cur)
  | 'v' -> Svc_value (Codec.int_in cur)
  | 'i' ->
    let k = Codec.int_in cur in
    Svc_inv (k, Codec.int_in cur)
  | 'r' ->
    let k = Codec.int_in cur in
    Svc_resp (k, Codec.int_in cur)
  | 't' -> Net_topology
  | ch -> raise (Codec.Corrupt (Printf.sprintf "bad component tag %c" ch))

let encode_cset b s =
  Codec.array_out b encode_component (Array.of_list (Cset.elements s))

let decode_cset cur =
  Array.fold_left (fun acc c -> Cset.add c acc) Cset.empty
    (Codec.array_in cur decode_component)

let encode b { reads; writes } =
  encode_cset b reads;
  encode_cset b writes

let decode cur =
  let reads = decode_cset cur in
  let writes = decode_cset cur in
  { reads; writes }

let pp_component ppf = function
  | Pstate i -> Format.fprintf ppf "proc[%d]" i
  | Decision i -> Format.fprintf ppf "decision[%d]" i
  | Crash_bit i -> Format.fprintf ppf "crash[%d]" i
  | Svc_value k -> Format.fprintf ppf "svc[%d].value" k
  | Svc_inv (k, i) -> Format.fprintf ppf "svc[%d].inv[%d]" k i
  | Svc_resp (k, i) -> Format.fprintf ppf "svc[%d].resp[%d]" k i
  | Net_topology -> Format.fprintf ppf "net.topology"

let pp_cset ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_component)
    (Cset.elements s)

let pp ppf { reads; writes } =
  Format.fprintf ppf "@[reads %a@ writes %a@]" pp_cset reads pp_cset writes
