(** Protocol lints over the abstract reachability solution.

    Each finding is a proven or honestly-qualified fact about the protocol
    as a transition system, surfaced before any concrete run:

    - [error] findings break assumptions the exact engine ({!Engine.Graph},
      {!Engine.Valence}) silently relies on (§3.1: total deterministic step
      functions, non-empty δ relations, endpoint discipline) or make the
      protocol statically vacuous ([blank-protocol]: no reachable decide —
      the [Valence.Blank] anomaly caught without materializing G(C));
    - [warning] findings are almost certainly protocol bugs ([dead-decide]:
      a process provably never decides failure-free; [over-resilient]: a
      resilience claim exceeding the endpoint count; [static-race]: two
      tasks share a written state component yet can never share a
      participant, stepping outside the Lemma 8 commutation discipline —
      see {!Interfere.races});
    - [info] findings are interface observations ([dead-task],
      [not-connected-to-all], [wait-free-claim], [decide-outside-inputs])
      whose severity depends on intent.

    Findings are deterministic and sorted (severity, code, subject), one per
    line under {!pp} — machine-readable by design; {!exit_code} maps them to
    a shell status. *)

type severity = Error | Warning | Info

type finding = { code : string; severity : severity; subject : string; detail : string }

type report = { findings : finding list; reach : Reach.t; interference : Interfere.t }

val analyze :
  ?max_faults:int ->
  ?inputs:Ioa.Value.t list ->
  ?gaps:Guarantee.gap list ->
  ?reach:Reach.t ->
  ?interference:Interfere.t ->
  Model.System.t ->
  report
(** [gaps] (from {!Guarantee.gaps} against the protocol's registered claim)
    are folded in as [guarantee-gap] findings at [Info] severity — expected
    paper-explanations for the boosting protocols, not defects. [reach]
    substitutes a (cache-restored) fixpoint solution for the solve; the
    caller owes a solution computed for this system, or one behaviorally
    identical under its cache key, at the same [max_faults]. Same contract
    for [interference] (cached footprints via
    {!Interfere.of_footprints}). *)

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"] — the JSON rendering. *)

val json_escape : string -> string
(** JSON string-body escaping shared by every JSON emitter in the repo. *)

val pp_severity : Format.formatter -> severity -> unit
val pp_finding : Format.formatter -> finding -> unit
(** One line: [SEVERITY[code] subject: detail]. *)

val pp : Format.formatter -> report -> unit
(** All findings, one per line, then the per-task footprint summary and
    independence census ({!Interfere.pp_summary}), then a summary line with
    the crash-count interval covered and solver statistics. *)

val json_of_finding : protocol:string -> finding -> string
(** One finding as a single-line JSON object:
    [{"protocol":…,"severity":…,"rule":…,"subject":…,"message":…}] — the
    machine-readable shape behind [boost lint --json]. *)

val exit_code : report -> int
(** 0 when no finding is worse than [Info]; 1 otherwise. *)

val sort_for_artifact : (string * finding) list -> (string * finding) list
(** Artifact ordering: (protocol, severity, code, subject) — a total,
    input-order-independent sort, so the [lint --all --json] artifact is
    diff-stable across parallel runs and cache replays. *)

val encode_findings : Buffer.t -> finding list -> unit

val decode_findings : Codec.cursor -> finding list
(** Raises {!Codec.Corrupt} on malformed input. *)
