(** Resilience certificates: per-protocol lint verdicts quantified over an
    (n, f) window.

    The paper's results are parameterized — Thm 2/9/10 refute boosting for
    {e all} n and every f above the composed services' resilience — and a
    certificate is the static layer's matching artifact: the verdict at
    every point of a parameter window, plus the derived
    universally-quantified view. Findings byte-identical at every point are
    [stable] (quantify verbatim); findings whose (rule, severity, subject)
    key recurs at every point while the detail embeds the parameters (tob's
    guarantee-gap names f+1 and f) are [everywhere] keys.

    Authority is concrete: {!disagreements} re-lints fresh at each point and
    compares byte-for-byte, so certification can never outrun what concrete
    instantiation reproduces — the symbolic layer buys speed, not trust. *)

type point = {
  pn : int;
  pf : int;
  findings : Lint.finding list;  (** In {!Lint.analyze}'s sorted order. *)
  code : int;  (** {!Lint.exit_code} at this point. *)
}

type t = {
  protocol : string;
  family : string;  (** {!Structhash.family} over the window — cache key. *)
  max_faults : int;  (** The analysis fault bound used at every point. *)
  points : point list;  (** Sorted by (n, f). *)
  stable : Lint.finding list;  (** Byte-identical at every point. *)
  everywhere : (string * Lint.severity * string) list;
      (** (rule, severity, subject) present at every point with varying
          detail; disjoint from the keys [stable] covers. *)
}

val make :
  protocol:string -> family:string -> max_faults:int -> point list -> t
(** Sorts the points and derives [stable]/[everywhere]. *)

val window : t -> (int * int) * (int * int)
(** [((n_lo, f_lo), (n_hi, f_hi))] hull of the points. *)

val find_point : t -> n:int -> f:int -> point option

val disagreements :
  t -> fresh:(n:int -> f:int -> Lint.finding list * int) -> (int * int) list
(** Points where a fresh concrete lint differs from the stored verdict —
    findings compared byte-for-byte, exit codes exactly. Empty means the
    certificate is validated. *)

val encode : Buffer.t -> t -> unit
(** Persists protocol, family, max_faults and points; the quantified view
    is re-derived on decode. *)

val decode : Codec.cursor -> t
(** Raises {!Codec.Corrupt} on malformed input. *)

val pp : Format.formatter -> t -> unit

val json : t -> string
(** Single-line JSON:
    [{"certificate":…,"family":…,"max_faults":…,"window":…,"stable":[…],
    "everywhere":[…],"points":[…]}] — findings in {!Lint.json_of_finding}'s
    shape. *)
