(* Persistent on-disk analysis cache, keyed by {!Structhash}.

   Layout: one file per entry under the cache directory (default
   [_boost_cache/]), named [<kind>-<key>.entry]. Every file opens with a
   one-line versioned envelope header

     boost-cache <envelope version> <analyzer version> <kind> <key>

   so entries self-invalidate when either the envelope format or the
   analyzer (via {!Structhash.analyzer_version}) changes — a mismatched
   header counts as [stale] and the entry is dropped. Files that fail the
   header or payload decode are quarantined: renamed to [*.corrupt], counted,
   and never consulted again. Writes go through a tempfile in the same
   directory plus an atomic [Sys.rename], so concurrent readers (parallel
   lint domains, concurrent CI jobs sharing a directory) never observe a
   half-written entry. Cache failures of any kind degrade to a miss; the
   cache can make an analysis faster, never wrong and never crash it. *)

module Iset = Spec.Iset

let envelope_version = 1
let default_dir = "_boost_cache"

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable corrupt : int;
  mutable renamed : int;  (* hits that were mapped through a service rename *)
  mutable writes : int;
}

type t = { dir : string; lock : Mutex.t; stats : stats }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let open_ ~dir =
  mkdir_p dir;
  {
    dir;
    lock = Mutex.create ();
    stats = { hits = 0; misses = 0; stale = 0; corrupt = 0; renamed = 0; writes = 0 };
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let bump t f = locked t (fun () -> f t.stats)

(* Keys land in filenames: keep them to a conservative alphabet. *)
let sanitize key =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c | _ -> '_')
    key

let file t ~kind ~key = Filename.concat t.dir (kind ^ "-" ^ sanitize key ^ ".entry")
let header ~kind ~key =
  Printf.sprintf "boost-cache %d %d %s %s" envelope_version Structhash.analyzer_version
    kind (sanitize key)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let quarantine_path path =
  try Sys.rename path (path ^ ".corrupt") with Sys_error _ -> ()

type raw = Hit of string | Miss | Stale | Bad

let find_raw t ~kind ~key =
  let path = file t ~kind ~key in
  if not (Sys.file_exists path) then Miss
  else
    match read_file path with
    | exception Sys_error _ | exception End_of_file ->
      quarantine_path path;
      Bad
    | content -> (
      match String.index_opt content '\n' with
      | None ->
        quarantine_path path;
        Bad
      | Some i ->
        let line = String.sub content 0 i in
        let payload = String.sub content (i + 1) (String.length content - i - 1) in
        if String.equal line (header ~kind ~key) then Hit payload
        else if String.length line >= 11 && String.equal (String.sub line 0 11) "boost-cache"
        then begin
          (* A well-formed entry from another envelope or analyzer version:
             stale, not corrupt — silently dropped, rewritten on next store. *)
          (try Sys.remove path with Sys_error _ -> ());
          Stale
        end
        else begin
          quarantine_path path;
          Bad
        end)

(* [lookup] is the counting wrapper every typed accessor goes through: a
   payload that fails its decoder is demoted from hit to corrupt (and the
   file quarantined), so the statistics always describe usable entries. *)
let lookup t ~kind ~key ~decode =
  match find_raw t ~kind ~key with
  | Miss ->
    bump t (fun s -> s.misses <- s.misses + 1);
    None
  | Stale ->
    bump t (fun s -> s.stale <- s.stale + 1);
    None
  | Bad ->
    bump t (fun s -> s.corrupt <- s.corrupt + 1);
    None
  | Hit payload -> (
    match decode payload with
    | Some v ->
      bump t (fun s -> s.hits <- s.hits + 1);
      Some v
    | None | (exception _) ->
      quarantine_path (file t ~kind ~key);
      bump t (fun s -> s.corrupt <- s.corrupt + 1);
      None)

let find t ~kind ~key = lookup t ~kind ~key ~decode:Option.some

let store t ~kind ~key payload =
  try
    mkdir_p t.dir;
    let tmp = Filename.temp_file ~temp_dir:t.dir ".write" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (header ~kind ~key);
        output_char oc '\n';
        output_string oc payload);
    Sys.rename tmp (file t ~kind ~key);
    bump t (fun s -> s.writes <- s.writes + 1)
  with Sys_error _ -> ()

(* --- maintenance --- *)

let is_cache_file name =
  Filename.check_suffix name ".entry"
  || Filename.check_suffix name ".corrupt"
  || Filename.check_suffix name ".tmp"

let clear ~dir =
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun n name ->
        if is_cache_file name then begin
          (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ());
          n + 1
        end
        else n)
      0 (Sys.readdir dir)

(* Entries on disk, grouped by kind: (kind, count, total bytes). *)
let entries ~dir =
  if not (Sys.file_exists dir) then []
  else begin
    let tally = Hashtbl.create 8 in
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".entry" then begin
          let kind =
            match String.index_opt name '-' with
            | Some i -> String.sub name 0 i
            | None -> "?"
          in
          let size =
            try
              let ic = open_in_bin (Filename.concat dir name) in
              let n = in_channel_length ic in
              close_in_noerr ic;
              n
            with Sys_error _ -> 0
          in
          let c, b = Option.value (Hashtbl.find_opt tally kind) ~default:(0, 0) in
          Hashtbl.replace tally kind (c + 1, b + size)
        end)
      (Sys.readdir dir);
    Hashtbl.fold (fun kind (c, b) acc -> (kind, c, b) :: acc) tally []
    |> List.sort (fun (k1, _, _) (k2, _, _) -> String.compare k1 k2)
  end

let corrupt_count ~dir =
  if not (Sys.file_exists dir) then 0
  else
    Array.fold_left
      (fun n name -> if Filename.check_suffix name ".corrupt" then n + 1 else n)
      0 (Sys.readdir dir)

(* --- statistics --- *)

let pp_stats ppf t =
  let s = t.stats in
  Format.fprintf ppf
    "cache: %d hit(s) (%d via rename), %d miss(es), %d stale, %d corrupt, %d write(s)"
    s.hits s.renamed s.misses s.stale s.corrupt s.writes

let stats_json t =
  let s = t.stats in
  (* The on-disk census, grouped by envelope kind in sorted order — the
     same grouping `boost cache status` prints. *)
  let kinds =
    entries ~dir:t.dir
    |> List.map (fun (kind, count, _bytes) -> Printf.sprintf "    \"%s\": %d" kind count)
    |> String.concat ",\n"
  in
  Printf.sprintf
    "{\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"stale\": %d,\n\
    \  \"corrupt\": %d,\n\
    \  \"renamed\": %d,\n\
    \  \"writes\": %d,\n\
    \  \"kinds\": {\n%s\n  }\n\
     }\n"
    s.hits s.misses s.stale s.corrupt s.renamed s.writes kinds

(* --- the fleet manifest --- *)

let encode_structhash b (h : Structhash.t) =
  Codec.int_out b h.Structhash.full;
  Codec.int_out b h.Structhash.sem;
  Codec.array_out b (fun b p -> Codec.int_out b p) h.Structhash.procs;
  Codec.int_out b (List.length h.Structhash.services);
  List.iter
    (fun (id, bh) ->
      Codec.string_out b id;
      Codec.int_out b bh)
    h.Structhash.services

let decode_structhash c =
  let full = Codec.int_in c in
  let sem = Codec.int_in c in
  let procs = Codec.array_in c Codec.int_in in
  let ns = Codec.int_in c in
  if ns < 0 then raise (Codec.Corrupt "negative service count");
  let services =
    List.init ns (fun _ ->
        let id = Codec.string_in c in
        let bh = Codec.int_in c in
        id, bh)
  in
  { Structhash.full; sem; procs; services }

let manifest_key = "fleet"

let write_manifest t manifest =
  let b = Buffer.create 512 in
  Codec.int_out b (List.length manifest);
  List.iter
    (fun (name, h) ->
      Codec.string_out b name;
      encode_structhash b h)
    manifest;
  store t ~kind:"manifest" ~key:manifest_key (Buffer.contents b)

(* Manifest reads do not count toward hit/miss statistics: they are
   bookkeeping around the analyses, not analysis reuse. *)
let read_manifest t =
  match find_raw t ~kind:"manifest" ~key:manifest_key with
  | Miss | Stale | Bad -> None
  | Hit payload -> (
    try
      let c = Codec.cursor payload in
      let n = Codec.int_in c in
      if n < 0 then raise (Codec.Corrupt "negative manifest size");
      Some
        (List.init n (fun _ ->
             let name = Codec.string_in c in
             name, decode_structhash c))
    with _ ->
      quarantine_path (file t ~kind:"manifest" ~key:manifest_key);
      None)

(* --- the Goblint-style diff pass --- *)

type change =
  | Unchanged
  | Renamed of (string * string) list  (* (old id, new id); [] = pure permutation *)
  | Changed
  | Added

type change_report = { changes : (string * change) list; removed : string list }

let change_of (old : Structhash.t option) (h : Structhash.t) =
  match old with
  | None -> Added
  | Some o ->
    if o.Structhash.full = h.Structhash.full then Unchanged
    else if o.Structhash.sem = h.Structhash.sem then
      match
        Structhash.permutation ~old_services:o.Structhash.services
          ~services:h.Structhash.services
      with
      | Some perm ->
        Renamed
          (Structhash.rename_pairs ~old_services:o.Structhash.services
             ~services:h.Structhash.services perm)
      | None -> Changed
    else Changed

let diff old_manifest manifest =
  let changes =
    List.map
      (fun (name, h) -> name, change_of (List.assoc_opt name old_manifest) h)
      manifest
  in
  let removed =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name manifest then None else Some name)
      old_manifest
  in
  { changes; removed }

(* The single-system form the tentpole names: where does [sys] stand
   relative to the recorded manifest entry for [name]? *)
let diff_system old_manifest ~name sys =
  change_of (List.assoc_opt name old_manifest) (Structhash.system sys)

let pp_change ppf = function
  | Unchanged -> Format.pp_print_string ppf "unchanged"
  | Renamed [] -> Format.pp_print_string ppf "services permuted (solutions reusable)"
  | Renamed pairs ->
    Format.fprintf ppf "renamed (%a)"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (o, n) -> Format.fprintf ppf "%s -> %s" o n))
      pairs
  | Changed -> Format.pp_print_string ppf "changed (re-analysis required)"
  | Added -> Format.pp_print_string ppf "new (no cache entry)"

(* --- typed accessors: Reach solutions --- *)

(* Reach solutions are keyed by the *semantic* hash: the abstract state is
   positional (no service identifiers inside), so a solution computed for a
   renamed or permuted-service twin is mapped onto the current system by a
   pure array permutation and re-harvested — the Goblint-style reuse path.
   The stored service hash list (donor order) supplies the permutation. *)

let reach_key (h : Structhash.t) ~max_faults ~inputs_key =
  Printf.sprintf "%s-mf%d-%s" (Structhash.sem_key h) max_faults inputs_key

let reach_store t (h : Structhash.t) ~max_faults ~inputs_key r =
  let b = Buffer.create 1024 in
  Codec.int_out b (List.length h.Structhash.services);
  List.iter
    (fun (id, bh) ->
      Codec.string_out b id;
      Codec.int_out b bh)
    h.Structhash.services;
  Reach.encode_solution b (Reach.solution_of r);
  store t ~kind:"reach" ~key:(reach_key h ~max_faults ~inputs_key) (Buffer.contents b)

let reach_find t (h : Structhash.t) ~max_faults ~inputs_key sys =
  lookup t ~kind:"reach"
    ~key:(reach_key h ~max_faults ~inputs_key)
    ~decode:(fun payload ->
      let c = Codec.cursor payload in
      let ns = Codec.int_in c in
      if ns < 0 then raise (Codec.Corrupt "negative service count");
      let stored =
        List.init ns (fun _ ->
            let id = Codec.string_in c in
            let bh = Codec.int_in c in
            id, bh)
      in
      let sol = Reach.decode_solution c in
      if sol.Reach.s_max_faults <> max_faults then
        raise (Codec.Corrupt "max_faults mismatch");
      match Structhash.permutation ~old_services:stored ~services:h.Structhash.services with
      | None -> raise (Codec.Corrupt "service hash mismatch")
      | Some perm ->
        let sol =
          if Structhash.is_identity perm then sol
          else begin
            bump t (fun s -> s.renamed <- s.renamed + 1);
            {
              sol with
              Reach.s_astates = Array.map (Astate.permute_svcs perm) sol.Reach.s_astates;
            }
          end
        in
        Some (Reach.of_solution sys sol))

(* --- typed accessors: rendered lint reports --- *)

type lint_entry = { human : string; findings : Lint.finding list; code : int }

let lint_store t ~key e =
  let b = Buffer.create 512 in
  Codec.int_out b e.code;
  Codec.string_out b e.human;
  Lint.encode_findings b e.findings;
  store t ~kind:"lint" ~key (Buffer.contents b)

let lint_find t ~key =
  lookup t ~kind:"lint" ~key ~decode:(fun payload ->
      let c = Codec.cursor payload in
      let code = Codec.int_in c in
      let human = Codec.string_in c in
      let findings = Lint.decode_findings c in
      Some { human; findings; code })

(* --- typed accessors: quiescence certificates --- *)

let cert_store t ~key cert =
  let b = Buffer.create 16 in
  Prune.encode_cert b cert;
  store t ~kind:"cert" ~key (Buffer.contents b)

(* [Some c] = a stored verdict (itself [None] when the system has no
   certificate — negative results are cached too); [None] = cache miss. *)
let cert_find t ~key =
  lookup t ~kind:"cert" ~key ~decode:(fun payload ->
      Some (Prune.decode_cert (Codec.cursor payload)))

(* --- typed accessors: footprint summaries --- *)

(* Footprints are positional over the concrete task/service arrays, so the
   key is the *full* hash (no rename transport — a renamed twin recomputes,
   which is cheap; the win is the per-run recomputation on POR/static-prune
   and warm lint paths). [refined] distinguishes reach-refined footprints
   (the lint pipeline) from structural-only ones (the chaos explorer's POR
   setup): the two disagree by construction and must not alias. *)

let fp_key ~full_key ~max_crashes ~refined =
  Printf.sprintf "%s-mc%d-%s" full_key max_crashes (if refined then "r" else "s")

let fp_store t ~key fps =
  let b = Buffer.create 1024 in
  Codec.array_out b Footprint.encode fps;
  store t ~kind:"fp" ~key (Buffer.contents b)

let fp_find t ~key ~n_tasks =
  lookup t ~kind:"fp" ~key ~decode:(fun payload ->
      let fps = Codec.array_in (Codec.cursor payload) Footprint.decode in
      if Array.length fps <> n_tasks then raise (Codec.Corrupt "footprint arity mismatch");
      Some fps)

(* --- typed accessors: resilience certificates --- *)

(* Keyed by {!Structhash.family} over the whole (n, f) window, so one entry
   replays the verdicts of an entire parameter sweep — the cross-parameter
   reuse the parameterized hashing buys. *)

let pcert_store t ~key cert =
  let b = Buffer.create 2048 in
  Cert.encode b cert;
  store t ~kind:"pcert" ~key (Buffer.contents b)

let pcert_find t ~key =
  lookup t ~kind:"pcert" ~key ~decode:(fun payload ->
      Some (Cert.decode (Codec.cursor payload)))
