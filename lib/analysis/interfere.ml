module System = Model.System
module Task = Model.Task

type t = {
  sys : System.t;
  fps : Footprint.t array;
  max_crashes : int;
}

let analyze ?reach ?max_crashes (sys : System.t) =
  let max_crashes =
    match max_crashes with
    | Some k -> max 0 k
    | None -> Array.length sys.System.processes
  in
  let fps = Array.map snd (Footprint.of_system ?reach ~max_crashes sys) in
  { sys; fps; max_crashes }

(* Rehydrate from cached footprints: sound only for footprints computed for
   this very system (full-hash-keyed cache entries), which the arity check
   cheaply cross-checks. *)
let of_footprints (sys : System.t) ~max_crashes fps =
  if Array.length fps <> Array.length sys.System.tasks then
    invalid_arg "Interfere.of_footprints: footprint/task arity mismatch";
  { sys; fps; max_crashes = max 0 max_crashes }

let max_crashes t = t.max_crashes

let footprints t = Array.mapi (fun i tk -> tk, t.fps.(i)) t.sys.System.tasks

let footprint t tk =
  let rec go i =
    if i >= Array.length t.sys.System.tasks then
      invalid_arg (Format.asprintf "Interfere.footprint: unknown task %a" Task.pp tk)
    else if Task.equal t.sys.System.tasks.(i) tk then t.fps.(i)
    else go (i + 1)
  in
  go 0

let clash_witness (f1 : Footprint.t) (f2 : Footprint.t) =
  let open Footprint in
  let w12 = Cset.inter f1.writes (Cset.union f2.reads f2.writes) in
  let w21 = Cset.inter f2.writes f1.reads in
  let w = Cset.union w12 w21 in
  if Cset.is_empty w then None else Some (Cset.min_elt w)

let clashes f1 f2 = Option.is_some (clash_witness f1 f2)

let interferes t e e' = Task.equal e e' || clashes (footprint t e) (footprint t e')

let independent t e e' = not (interferes t e e')

let crash_interferes t ~pid tk =
  let fp = footprint t tk in
  Footprint.Cset.mem (Footprint.Crash_bit pid)
    (Footprint.Cset.union fp.Footprint.reads fp.Footprint.writes)

(* --- the network adversary's deliveries against the same relation ---

   A net delivery is one more footprinted event: an omission rewrites one
   response buffer, a partition/heal rewrites the topology component. The
   clash test is the very same write-overlap criterion as task⇄task, so
   independence is again sound for commutation — swapping the delivery with
   an adjacent independent task (or fault) leaves the reached configuration,
   the task's outcome, and the omission's vacuousness unchanged. *)

let net_interferes t op tk = clashes (Footprint.of_net_op op) (footprint t tk)

let net_independent t op tk = not (net_interferes t op tk)

let net_net_interferes op op' =
  clashes (Footprint.of_net_op op) (Footprint.of_net_op op')

let net_crash_interferes op ~pid =
  let fp = Footprint.of_net_op op in
  Footprint.Cset.mem (Footprint.Crash_bit pid)
    (Footprint.Cset.union fp.Footprint.reads fp.Footprint.writes)

(* Static participants: the union of {!System.participants} over every
   action the task can take in any configuration. A process task's next
   action is an internal step, a decide, or an invocation of a may-invoked
   service; service tasks act for their service (outputs additionally
   deliver to their endpoint process). *)
let static_participants t tk =
  match tk with
  | Task.Proc i ->
    let fp = footprint t tk in
    System.P i
    :: Footprint.Cset.fold
         (fun c acc ->
           match c with Footprint.Svc_inv (svc, _) -> System.S svc :: acc | _ -> acc)
         fp.Footprint.writes []
  | Task.Svc_perform { svc; _ } | Task.Svc_compute { svc; _ } -> [ System.S svc ]
  | Task.Svc_output { svc; endpoint } -> [ System.S svc; System.P endpoint ]

let participant_equal a b =
  match a, b with
  | System.P i, System.P j | System.S i, System.S j -> i = j
  | System.P _, System.S _ | System.S _, System.P _ -> false

type race = { e : Task.t; e' : Task.t; component : Footprint.component }

let races t =
  (* A shared written component between tasks that can never share a
     participant: no hook discipline (paper Lemma 8 / Claim 2) covers the
     conflict. Structurally impossible for well-wired systems — every
     buffer/value write is owned by a service the writer participates in —
     so any hit marks an interface breach. *)
  let ts = t.sys.System.tasks in
  let acc = ref [] in
  for i = 0 to Array.length ts - 1 do
    for j = i + 1 to Array.length ts - 1 do
      match clash_witness t.fps.(i) t.fps.(j) with
      | Some component ->
        let ps = static_participants t ts.(i) and ps' = static_participants t ts.(j) in
        if not (List.exists (fun p -> List.exists (participant_equal p) ps') ps) then
          acc := { e = ts.(i); e' = ts.(j); component } :: !acc
      | None -> ()
    done
  done;
  List.rev !acc

let pp_race ppf r =
  Format.fprintf ppf "%a / %a share written component %a without a shared participant"
    Task.pp r.e Task.pp r.e' Footprint.pp_component r.component

let independent_pairs t =
  let ts = t.sys.System.tasks in
  let n = Array.length ts in
  let indep = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      if not (clashes t.fps.(i) t.fps.(j)) then incr indep
    done
  done;
  !indep, !total

let pp_summary ppf t =
  let indep, total = independent_pairs t in
  Format.fprintf ppf "@[<v>task footprints (≤%d crash(es)):@," t.max_crashes;
  Array.iteri
    (fun i tk -> Format.fprintf ppf "  %a: %a@," Task.pp tk Footprint.pp t.fps.(i))
    t.sys.System.tasks;
  Format.fprintf ppf "%d of %d task pair(s) statically independent@]" indep total
