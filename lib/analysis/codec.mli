(** Compact text codec for the persistent analysis cache.

    Values, value-set lattice elements and whole abstract states round-trip
    through a prefix encoding with no lookahead. Strings use OCaml [%S]
    escaping, so encoded payloads never contain raw newlines and envelope
    files stay line-structured. Decoders raise {!Corrupt} on any malformed
    input; the cache layer turns that into a quarantined entry, never a
    crash. *)

exception Corrupt of string

type cursor
(** A read position over an immutable payload string. *)

val cursor : string -> cursor
val peek : cursor -> char
val next : cursor -> char
val expect : cursor -> char -> unit

val string_out : Buffer.t -> string -> unit
val string_in : cursor -> string

val int_out : Buffer.t -> int -> unit
val int_in : cursor -> int

val value_out : Buffer.t -> Ioa.Value.t -> unit
val value_in : cursor -> Ioa.Value.t

val vset_out : Buffer.t -> Vset.t -> unit
val vset_in : cursor -> Vset.t
(** Re-normalizes on decode, so a hand-edited entry cannot smuggle in an
    unordered or oversized set. *)

val interval_out : Buffer.t -> Interval.t -> unit
val interval_in : cursor -> Interval.t

val array_out : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a array -> unit
val array_in : cursor -> (cursor -> 'a) -> 'a array

val abuf_out : Buffer.t -> Astate.abuf -> unit
val abuf_in : cursor -> Astate.abuf
val asvc_out : Buffer.t -> Astate.asvc -> unit
val asvc_in : cursor -> Astate.asvc
val dopt_out : Buffer.t -> Astate.dopt -> unit
val dopt_in : cursor -> Astate.dopt
val astate_out : Buffer.t -> Astate.t -> unit
val astate_in : cursor -> Astate.t

val iset_out : Buffer.t -> Spec.Iset.t -> unit
val iset_in : cursor -> Spec.Iset.t
