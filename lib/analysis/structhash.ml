(* Canonical structural hash of a system's analysis-relevant identity.

   Two hashes are computed per system:

   - [full] — the presentation hash: everything the analyses and their
     rendered reports can depend on, including service identifiers, the
     service-array order and the declared type names. Cache entries that
     store rendered output are keyed by it.

   - [sem] — the semantic hash: service identifiers and the service-array
     order are canonicalized away (a service is named by its own behavioral
     hash; processes refer to services by canonical index, not id string).
     Renaming a service — consistently in its definition and in every
     process that invokes it — or permuting the service array leaves [sem]
     unchanged while [full] moves, which is exactly the Goblint-style
     rename/permutation detection the cache's diff pass keys on.

   Behavior is hashed by *probing*, not by inspecting closures: a bounded
   breadth-first walk over each process's reachable local states (driven by
   [step], [on_init] over the seed input alphabet, and [on_response] over
   each connected service's declared response alphabet) and over each
   service's reachable type values (driven by [delta_inv] across every
   invocation × endpoint × a bounded family of failed-sets, and
   [delta_glob] across the declared global tasks). Every transition's
   observable outcome is folded into the hash, so any behavioral change a
   bounded analysis could see moves the hash; hash-equal units may still
   differ beyond the probe bound, which costs at most a spurious cache hit
   on behavior no analysis in this repository reaches. Probe caps are folded
   into the hash themselves, so a capped walk never collides with an
   uncapped one.

   [analyzer_version] salts every hash: bump it whenever the transfer
   functions, the abstract domains or the probing scheme change, and every
   existing cache entry self-invalidates. *)

module Value = Ioa.Value
module Iset = Spec.Iset
module System = Model.System
module Service = Model.Service
module Process = Model.Process

(* Bump on any change to Transfer/Astate/Vset/Interval semantics or to the
   probing scheme below. *)
let analyzer_version = 1

type t = {
  full : int;
  sem : int;
  procs : int array;  (* per-process semantic behavioral hash, pid order *)
  services : (string * int) list;  (* (id, semantic behavioral hash), array order *)
}

(* --- FNV-1a folding, the same shape as {!Ioa.Value.hash} --- *)

let fnv_prime = 16777619
let seed = 2166136261
let mix h x = ((h * fnv_prime) lxor x) land max_int
let mix_int h i = mix (mix h 3) i
let mix_bool h b = mix (mix h 7) (if b then 1 else 0)
let mix_str h s = mix (mix h 4) (Hashtbl.hash s)
let mix_value h v = mix (mix h 5) (Value.hash v)
let mix_hash h x = mix (mix h 11) x

let mix_tokens tokens = List.fold_left mix_str seed tokens

let hex h = Printf.sprintf "%016x" h

(* Parameterized hashing: a family key folds the per-instantiation keys of
   a whole (n, f) window into one filename-safe digest, so a single cache
   entry (kind "pcert") replays verdicts across the entire sweep. Any
   behavioral change at any grid point moves the family key. *)
let family tokens = hex (mix_tokens ("family" :: tokens))

(* --- probe bounds (folded into the hash when they bite) --- *)

let state_cap = 96
let call_cap = 4096

(* Bounded BFS driver: [trans h v] folds the observable outcomes of every
   transition out of [v] into [h] and returns the successor states. *)
let probe ~init ~trans h0 =
  let seen = Value.Tbl.create 64 in
  let queue = Queue.create () in
  let h = ref h0 in
  let calls = ref 0 in
  let capped = ref false in
  List.iter (fun v -> Queue.add v queue) init;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if not (Value.Tbl.mem seen v) then begin
      if Value.Tbl.length seen >= state_cap || !calls >= call_cap then capped := true
      else begin
        Value.Tbl.replace seen v ();
        let h', succs = trans !h v in
        calls := !calls + 1;
        h := h';
        List.iter (fun v' -> Queue.add v' queue) succs
      end
    end
  done;
  let h = mix_bool !h !capped in
  mix_int h (Value.Tbl.length seen)

(* --- services --- *)

let probe_failed_sets (c : Service.t) =
  let eps = Array.to_list c.Service.endpoints in
  let sets = (Iset.empty :: List.map (fun i -> Iset.of_list [ i ]) eps) @ [ Iset.of_list eps ] in
  List.sort_uniq Iset.compare sets

let mix_iset h f = List.fold_left mix_int (mix h 13) (Iset.elements f)

let mix_rmap (c : Service.t) h (rmap : Spec.Service_type.response_map) =
  (* Response-map keys are endpoint pids; canonicalize to endpoint position
     so the map hashes the same whatever the pid numbering convention. *)
  List.fold_left
    (fun h (pid, resps) ->
      let h =
        mix_int h (match Service.endpoint_pos c pid with Some p -> p | None -> -1 - pid)
      in
      List.fold_left mix_value (mix h 17) resps)
    (mix h 19) rmap

let mix_outcomes c h outs =
  List.fold_left
    (fun h (rmap, v') -> mix_value (mix_rmap c h rmap) v')
    (mix_int h (List.length outs))
    outs

let service_behavior (c : Service.t) =
  let g = c.Service.gtype in
  let failed_sets = probe_failed_sets c in
  let h = mix_str seed "svc" in
  (* Structure and wiring: endpoint pids, resilience, class, coalescing. *)
  let h = Array.fold_left mix_int (mix h 23) c.Service.endpoints in
  let h = mix_int h c.Service.resilience in
  let h =
    mix_int h
      (match c.Service.cls with
      | Service.Register -> 0
      | Service.Atomic -> 1
      | Service.Oblivious -> 2
      | Service.General -> 3)
  in
  let h = mix_bool h c.Service.coalesce in
  (* Declared alphabets — these parameterize every analysis probe. *)
  let h = List.fold_left mix_value (mix h 29) g.Spec.General_type.initials in
  let h = List.fold_left mix_value (mix h 31) g.Spec.General_type.invocations in
  let h = List.fold_left mix_value (mix h 37) g.Spec.General_type.responses in
  let h = List.fold_left mix_str (mix h 41) g.Spec.General_type.global_tasks in
  (* δ behavior over the reachable value set. *)
  let trans h v =
    let succs = ref [] in
    let h = ref (mix_value (mix h 43) v) in
    List.iter
      (fun a ->
        Array.iter
          (fun pid ->
            List.iter
              (fun failed ->
                let h' = mix_iset (mix_value (mix_int !h pid) a) failed in
                match g.Spec.General_type.delta_inv a pid v ~failed with
                | exception _ -> h := mix_str h' "raise"
                | outs ->
                  h := mix_outcomes c h' outs;
                  List.iter (fun (_, v') -> succs := v' :: !succs) outs)
              failed_sets)
          c.Service.endpoints)
      g.Spec.General_type.invocations;
    List.iter
      (fun glob ->
        List.iter
          (fun failed ->
            let h' = mix_iset (mix_str !h glob) failed in
            match g.Spec.General_type.delta_glob glob v ~failed with
            | exception _ -> h := mix_str h' "raise"
            | outs ->
              h := mix_outcomes c h' outs;
              List.iter (fun (_, v') -> succs := v' :: !succs) outs)
          failed_sets)
      g.Spec.General_type.global_tasks;
    !h, List.rev !succs
  in
  let h = probe ~init:g.Spec.General_type.initials ~trans h in
  (* The sequential witness spec, when present: the linearizability monitor
     and the seq-type lints read it, so its behavior is part of identity. *)
  match c.Service.seq with
  | None -> mix_int h 47
  | Some sq ->
    let h = mix_int h 53 in
    let h = List.fold_left mix_value h sq.Spec.Seq_type.initials in
    let h = List.fold_left mix_value h sq.Spec.Seq_type.invocations in
    let h = List.fold_left mix_value h sq.Spec.Seq_type.responses in
    let trans h v =
      let succs = ref [] in
      let h = ref (mix_value h v) in
      List.iter
        (fun a ->
          match sq.Spec.Seq_type.delta a v with
          | exception _ -> h := mix_str (mix_value !h a) "raise"
          | outs ->
            h := mix_int (mix_value !h a) (List.length outs);
            List.iter
              (fun (r, v') ->
                h := mix_value (mix_value !h r) v';
                succs := v' :: !succs)
              outs)
        sq.Spec.Seq_type.invocations;
      !h, List.rev !succs
    in
    probe ~init:sq.Spec.Seq_type.initials ~trans h

(* --- processes --- *)

(* The seed input alphabet: what {!Reach.analyze} and the chaos runner
   initialize processes with by default. *)
let probe_inputs = [ Value.int 0; Value.int 1 ]

(* [service_token id] names the invoked/responding service inside the fold:
   the raw id for the presentation hash, the service's canonical index
   (position in the behavioral-hash order) for the semantic hash. *)
let process_behavior ~service_token ~responses (p : Process.t) =
  let h = mix_str seed "proc" in
  let h = mix_value h p.Process.start in
  let trans h s =
    let succs = ref [] in
    let h = ref (mix_value (mix h 59) s) in
    (match p.Process.step s with
    | exception _ -> h := mix_str !h "raise"
    | Process.Invoke { service; op; next } ->
      h := mix_value (mix_value (service_token (mix_str !h "I") service) op) next;
      succs := next :: !succs
    | Process.Decide { value; next } ->
      h := mix_value (mix_value (mix_str !h "D") value) next;
      succs := next :: !succs
    | Process.Internal v ->
      h := mix_value (mix_str !h "N") v;
      succs := v :: !succs);
    List.iter
      (fun v ->
        match p.Process.on_init s v with
        | exception _ -> h := mix_str (mix_value (mix_str !h "i") v) "raise"
        | s' ->
          h := mix_value (mix_value (mix_str !h "i") v) s';
          succs := s' :: !succs)
      probe_inputs;
    List.iter
      (fun (id, resps) ->
        List.iter
          (fun r ->
            match p.Process.on_response s ~service:id r with
            | exception _ ->
              h := mix_str (mix_value (service_token (mix_str !h "r") id) r) "raise"
            | s' ->
              h := mix_value (mix_value (service_token (mix_str !h "r") id) r) s';
              succs := s' :: !succs)
          resps)
      responses;
    !h, List.rev !succs
  in
  probe ~init:[ p.Process.start ] ~trans h

(* --- systems --- *)

let salt h =
  mix_int (mix_str h "boost-structhash") analyzer_version

let system (sys : System.t) =
  let services =
    Array.to_list sys.System.services
    |> List.map (fun (c : Service.t) -> c.Service.id, service_behavior c)
  in
  (* Canonical service naming: rank in the (behavioral hash, multiplicity)
     order. Ties are behaviorally identical services; their relative order is
     fixed by id, which can at worst cost a spurious miss after renaming two
     interchangeable services past each other. *)
  let canon =
    List.stable_sort
      (fun (id1, h1) (id2, h2) ->
        let c = Int.compare h1 h2 in
        if c <> 0 then c else String.compare id1 id2)
      services
    |> List.mapi (fun rank (id, _) -> id, rank)
  in
  let canon_token h id =
    match List.assoc_opt id canon with
    | Some rank -> mix_int h rank
    | None -> mix_str (mix_str h "unknown-service") id
  in
  let raw_token h id = mix_str h id in
  let responses_of pid =
    Array.to_list sys.System.services
    |> List.filter_map (fun (c : Service.t) ->
           if Array.exists (fun e -> e = pid) c.Service.endpoints then
             Some (c.Service.id, c.Service.gtype.Spec.General_type.responses)
           else None)
  in
  (* The semantic probe must walk the connected services in canonical rank
     order, not array order — otherwise permuting the service array would
     reorder the [on_response] fold and move [sem]. *)
  let canon_responses_of pid =
    responses_of pid
    |> List.stable_sort (fun (id1, _) (id2, _) ->
           Int.compare (List.assoc id1 canon) (List.assoc id2 canon))
  in
  let procs_sem =
    Array.map
      (fun (p : Process.t) ->
        process_behavior ~service_token:canon_token
          ~responses:(canon_responses_of p.Process.pid) p)
      sys.System.processes
  in
  let procs_full =
    Array.map
      (fun (p : Process.t) ->
        process_behavior ~service_token:raw_token ~responses:(responses_of p.Process.pid) p)
      sys.System.processes
  in
  let n = Array.length sys.System.processes in
  let full =
    let h = salt seed in
    let h = mix_int h n in
    let h = Array.fold_left mix_hash (mix h 61) procs_full in
    List.fold_left
      (fun h ((id, bh), (c : Service.t)) ->
        mix_hash (mix_str (mix_str h id) c.Service.gtype.Spec.General_type.name) bh)
      (mix h 67)
      (List.combine services (Array.to_list sys.System.services))
  in
  let sem =
    let h = salt seed in
    let h = mix_int h n in
    let h = Array.fold_left mix_hash (mix h 71) procs_sem in
    List.fold_left mix_hash (mix h 73)
      (List.sort Int.compare (List.map snd services))
  in
  { full; sem; procs = procs_sem; services }

let key t = hex t.full
let sem_key t = hex t.sem
let equal_sem a b = a.sem = b.sem

(* --- rename / permutation detection ---

   Two service tables with the same behavioral-hash multiset are matched by
   pairing equal hashes; [permutation] returns [perm] with [perm.(j)] = the
   old index whose service the new index [j] corresponds to. Hash ties pair
   in order — tied services are behaviorally identical, so any pairing is
   semantically interchangeable. *)

let permutation ~old_services ~services =
  let n = List.length services in
  if List.length old_services <> n then None
  else begin
    let old = Array.of_list old_services in
    let used = Array.make n false in
    let perm = Array.make n (-1) in
    let ok = ref true in
    List.iteri
      (fun j (_, h) ->
        if !ok then begin
          let rec find i =
            if i >= n then None
            else if (not used.(i)) && snd old.(i) = h then Some i
            else find (i + 1)
          in
          match find 0 with
          | Some i ->
            used.(i) <- true;
            perm.(j) <- i
          | None -> ok := false
        end)
      services;
    if !ok then Some perm else None
  end

let is_identity perm =
  let ok = ref true in
  Array.iteri (fun i p -> if i <> p then ok := false) perm;
  !ok

(* The id mapping a permutation induces: (old id, new id) pairs where the
   name actually changed — the substance of a rename report. *)
let rename_pairs ~old_services ~services perm =
  let old = Array.of_list old_services in
  let names = Array.of_list (List.map fst services) in
  Array.to_list perm
  |> List.mapi (fun j i -> fst old.(i), names.(j))
  |> List.filter (fun (o, n) -> not (String.equal o n))
