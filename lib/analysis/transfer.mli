(** Abstract transfer functions, derived mechanically from the concrete task
    semantics of {!Model.System}.

    For a task and a failed set, {!task} computes an over-approximation of
    every concrete successor reachable by taking that task's {e real}
    (non-dummy) action from any state described by the abstract
    configuration: finite abstract components are enumerated and pushed
    through the very same [Process.step] / δ1 / δ2 the runtime uses (so
    every protocol in [lib/protocols] is analyzable unmodified), [Top]
    components havoc whatever the action may write. Dummy actions are
    identity steps ([post] never includes them; collecting semantics joins
    the pre-state anyway), reported only through the [dummy] flag.

    The probes double as lint sensors: each concrete call is made twice and
    compared, surfacing the §3.1 assumptions the exact engine silently
    relies on — step functions must be total and deterministic, δ relations
    non-empty ([System] raises on violation at runtime; here they become
    {!incident}s). *)

type incident = { code : string; subject : string; detail : string }
(** Codes: [non-total-step], [nondet-step], [delta-raised], [nondet-delta],
    [empty-delta], [on-response-raised], [unknown-service],
    [invoke-non-endpoint], [resp-non-endpoint]. *)

type outcome = {
  post : Astate.t;
      (** Join of all real successors; [Bot] when no real action can fire. *)
  real : bool;  (** Some described state enables the real action. *)
  dummy : bool;  (** The dummy action is enabled (failed-set dependent). *)
  decides : (int * Ioa.Value.t) list;
      (** Decide events the task may emit, deduplicated. *)
  decide_havoc : bool;
      (** A [Top] process state may decide arbitrary values. *)
  incidents : incident list;
}

val task : Model.System.t -> failed:Spec.Iset.t -> Astate.t -> Model.Task.t -> outcome
