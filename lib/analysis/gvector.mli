(** The guarantee-vector lattice.

    A vector ⟨Scope, Order, Visibility, Recency, Idempotence, Termination⟩
    records what a service — or a composition of services — still promises.
    Each component is a finite chain ordered strongest-first; {!meet} takes
    the weakest value pointwise, so the composed guarantee of a system is the
    meet over its services: one weak component caps the whole vector, which
    is the typing-level shadow of the paper's Theorems 2/9/10 (no composition
    strengthens what its weakest service offers).

    Components, weakest → strongest:

    - {b scope} — connectivity: how many disjoint islands the participant
      coverage splits into; [1] = globally connected (more islands = weaker,
      so the meet is [max]).
    - {b order} — ordering of the sequential interface: none → per-object →
      total.
    - {b visibility} — failure information exposed: oblivious → eventual
      (◇P-style) → failures (perfect, §2.1.4 general services).
    - {b recency} — response freshness: none (responses may be stolen) →
      eventual (queued delivery) → fresh.
    - {b idem} — duplication safety: dup-unsafe (a replayed response changes
      meaning) → dup-safe (idempotent outputs).
    - {b termination} — liveness resilience: none → crashes([f]) →
      wait-free (§2.1.3: effectively reliable). *)

type order = Ord_none | Ord_per_object | Ord_total
type visibility = Vis_oblivious | Vis_eventual | Vis_failures
type recency = Rec_none | Rec_eventual | Rec_fresh
type idem = Dup_unsafe | Dup_safe
type termination = Term_none | Term_crashes of int | Term_wait_free

type t = {
  scope : int;
  order : order;
  visibility : visibility;
  recency : recency;
  idem : idem;
  termination : termination;
}

val top : t
(** The identity of {!meet}: global scope, total order, failure visibility,
    fresh, dup-safe, wait-free. *)

val meet : t -> t -> t
(** Pointwise weakest. Associative, commutative, idempotent; [meet top v =
    v]. *)

val leq : t -> t -> bool
(** Pointwise comparison: [leq a b] iff [a] promises no more than [b] in
    every component (i.e. [meet a b = a]). *)

val equal : t -> t -> bool

val term_leq : termination -> termination -> bool
val term_meet : termination -> termination -> termination

val pp : Format.formatter -> t -> unit
(** [⟨scope=…, order=…, vis=…, rec=…, idem=…, term=…⟩]. *)

val to_string : t -> string

val order_to_string : order -> string
val visibility_to_string : visibility -> string
val recency_to_string : recency -> string
val idem_to_string : idem -> string
val termination_to_string : termination -> string
val scope_to_string : int -> string
