(* Compact text codec for the persistent analysis cache: values, value-set
   lattice elements and whole abstract states round-trip through a prefix
   encoding with no lookahead. Strings use OCaml %S escaping, so encoded
   payloads never contain raw newlines and envelope files stay line-structured.
   Decoders raise {!Corrupt} on any malformed input; the cache layer turns
   that into a quarantined entry, never a crash. *)

module Value = Ioa.Value

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

type cursor = { s : string; mutable pos : int }

let cursor s = { s; pos = 0 }

let peek c = if c.pos >= String.length c.s then corrupt "unexpected end" else c.s.[c.pos]

let next c =
  let ch = peek c in
  c.pos <- c.pos + 1;
  ch

let expect c ch =
  let got = next c in
  if got <> ch then corrupt "expected %C, got %C at %d" ch got (c.pos - 1)

(* --- strings --- *)

let string_out b s = Buffer.add_string b (Printf.sprintf "%S" s)

let string_in c =
  expect c '"';
  let start = c.pos in
  let rec scan () =
    match next c with
    | '"' -> ()
    | '\\' ->
      ignore (next c);
      scan ()
    | _ -> scan ()
  in
  scan ();
  let quoted = String.sub c.s (start - 1) (c.pos - start + 1) in
  match Scanf.sscanf_opt quoted "%S%!" Fun.id with
  | Some s -> s
  | None -> corrupt "bad string literal %s" quoted

(* --- integers --- *)

let int_out b i =
  Buffer.add_string b (string_of_int i);
  Buffer.add_char b ';'

let int_in c =
  let start = c.pos in
  let rec scan () = if peek c = ';' then () else (c.pos <- c.pos + 1; scan ()) in
  scan ();
  let tok = String.sub c.s start (c.pos - start) in
  c.pos <- c.pos + 1;
  match int_of_string_opt tok with
  | Some i -> i
  | None -> corrupt "bad integer %s" tok

(* --- values --- *)

let rec value_out b = function
  | Value.Unit -> Buffer.add_char b 'u'
  | Value.Bool true -> Buffer.add_char b 'T'
  | Value.Bool false -> Buffer.add_char b 'F'
  | Value.Int i ->
    Buffer.add_char b 'i';
    int_out b i
  | Value.Str s ->
    Buffer.add_char b 's';
    string_out b s
  | Value.Pair (x, y) ->
    Buffer.add_char b 'p';
    value_out b x;
    value_out b y
  | Value.List xs ->
    Buffer.add_char b 'l';
    int_out b (List.length xs);
    List.iter (value_out b) xs

let rec value_in c =
  match next c with
  | 'u' -> Value.Unit
  | 'T' -> Value.Bool true
  | 'F' -> Value.Bool false
  | 'i' -> Value.Int (int_in c)
  | 's' -> Value.Str (string_in c)
  | 'p' ->
    let x = value_in c in
    let y = value_in c in
    Value.Pair (x, y)
  | 'l' ->
    let n = int_in c in
    if n < 0 then corrupt "negative list length";
    Value.List (List.init n (fun _ -> value_in c))
  | ch -> corrupt "bad value tag %C" ch

(* --- lattice elements --- *)

let vset_out b = function
  | Vset.Top -> Buffer.add_char b '^'
  | Vset.Set vs ->
    Buffer.add_char b 'v';
    int_out b (List.length vs);
    List.iter (value_out b) vs

let vset_in c =
  match next c with
  | '^' -> Vset.Top
  | 'v' ->
    let n = int_in c in
    if n < 0 then corrupt "negative vset size";
    (* Stored sets were normalized at build time; re-normalizing keeps a
       hand-edited entry from smuggling in an unordered set. *)
    Vset.of_list (List.init n (fun _ -> value_in c))
  | ch -> corrupt "bad vset tag %C" ch

let interval_out b = function
  | Interval.Bot -> Buffer.add_char b '_'
  | Interval.Range (lo, Interval.Inf) ->
    Buffer.add_char b 'w';
    int_out b lo
  | Interval.Range (lo, Interval.Fin hi) ->
    Buffer.add_char b 'r';
    int_out b lo;
    int_out b hi

let interval_in c =
  match next c with
  | '_' -> Interval.Bot
  | 'w' -> Interval.unbounded (int_in c)
  | 'r' ->
    let lo = int_in c in
    let hi = int_in c in
    Interval.Range (lo, Interval.Fin hi)
  | ch -> corrupt "bad interval tag %C" ch

let array_out b item xs =
  int_out b (Array.length xs);
  Array.iter (item b) xs

let array_in c item =
  let n = int_in c in
  if n < 0 then corrupt "negative array length";
  Array.init n (fun _ -> item c)

(* --- abstract states --- *)

let abuf_out b { Astate.items; len } =
  vset_out b items;
  interval_out b len

let abuf_in c =
  let items = vset_in c in
  let len = interval_in c in
  { Astate.items; len }

let asvc_out b { Astate.value; inv; resp } =
  vset_out b value;
  array_out b abuf_out inv;
  array_out b abuf_out resp

let asvc_in c =
  let value = vset_in c in
  let inv = array_in c abuf_in in
  let resp = array_in c abuf_in in
  { Astate.value; inv; resp }

let dopt_out b { Astate.may_none; values } =
  Buffer.add_char b (if may_none then 'n' else 'j');
  vset_out b values

let dopt_in c =
  let may_none =
    match next c with
    | 'n' -> true
    | 'j' -> false
    | ch -> corrupt "bad dopt tag %C" ch
  in
  { Astate.may_none; values = vset_in c }

let astate_out b = function
  | Astate.Bot -> Buffer.add_char b 'B'
  | Astate.St { Astate.procs; svcs; decisions; inputs } ->
    Buffer.add_char b 'S';
    array_out b vset_out procs;
    array_out b asvc_out svcs;
    array_out b dopt_out decisions;
    array_out b dopt_out inputs

let astate_in c =
  match next c with
  | 'B' -> Astate.Bot
  | 'S' ->
    let procs = array_in c vset_in in
    let svcs = array_in c asvc_in in
    let decisions = array_in c dopt_in in
    let inputs = array_in c dopt_in in
    Astate.St { Astate.procs; svcs; decisions; inputs }
  | ch -> corrupt "bad astate tag %C" ch

let iset_out b f = array_out b (fun b i -> int_out b i) (Array.of_list (Spec.Iset.elements f))
let iset_in c = Spec.Iset.of_list (Array.to_list (array_in c int_in))
