(** Natural-number intervals with an infinite upper bound.

    The cardinality domain for crash counts and observable buffer lengths:
    [Range (lo, hi)] abstracts every n with lo ≤ n ≤ hi, where hi may be
    [Inf]. Height is unbounded through [hi], so {!widen} jumps unstable
    upper bounds to [Inf] (and unstable lower bounds to 0). *)

type bound = Fin of int | Inf

type t = Bot | Range of int * bound

include Domain.LATTICE with type t := t

val bot : t
val zero : t
val of_int : int -> t
val range : int -> int -> t
(** [range lo hi] — both inclusive; [Bot] when [hi < lo]. *)

val unbounded : int -> t
(** [unbounded lo] is [lo, ∞). *)

val mem : int -> t -> bool

val add : t -> int -> t
(** Shift both bounds by a constant, saturating the lower bound at 0. *)

val stretch : t -> int -> t
(** [stretch t k] widens the upper bound by [k] (models pushes that may
    coalesce: the length grows by 0..k). *)

val pred : t -> t
(** Abstract decrement (a pop): lower bound drops by one (saturating at 0),
    upper bound drops by one when finite and positive. *)

val hull : int list -> t
(** Convex hull of a finite sample, [Bot] on []. *)
