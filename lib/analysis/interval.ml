type bound = Fin of int | Inf

type t = Bot | Range of int * bound

let bot = Bot
let zero = Range (0, Fin 0)
let of_int n = Range (n, Fin n)
let range lo hi = if hi < lo then Bot else Range (lo, Fin hi)
let unbounded lo = Range (lo, Inf)

let bound_leq a b = match a, b with _, Inf -> true | Inf, Fin _ -> false | Fin x, Fin y -> x <= y

let leq a b =
  match a, b with
  | Bot, _ -> true
  | _, Bot -> false
  | Range (lo1, hi1), Range (lo2, hi2) -> lo2 <= lo1 && bound_leq hi1 hi2

let join a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Range (lo1, hi1), Range (lo2, hi2) ->
    Range (min lo1 lo2, if bound_leq hi1 hi2 then hi2 else hi1)

let widen a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | Range (lo1, hi1), Range (lo2, hi2) ->
    Range ((if lo2 < lo1 then 0 else lo1), if bound_leq hi2 hi1 then hi1 else Inf)

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | Range (lo1, hi1), Range (lo2, hi2) -> lo1 = lo2 && hi1 = hi2
  | _ -> false

let mem n = function
  | Bot -> false
  | Range (lo, hi) -> lo <= n && (match hi with Inf -> true | Fin h -> n <= h)

let add t k =
  match t with
  | Bot -> Bot
  | Range (lo, hi) ->
    Range (max 0 (lo + k), (match hi with Inf -> Inf | Fin h -> Fin (max 0 (h + k))))

let stretch t k =
  match t with
  | Bot -> Bot
  | Range (lo, hi) -> Range (lo, (match hi with Inf -> Inf | Fin h -> Fin (h + k)))

let pred t = add t (-1)

let hull = function
  | [] -> Bot
  | n :: rest ->
    let lo, hi = List.fold_left (fun (lo, hi) m -> min lo m, max hi m) (n, n) rest in
    Range (lo, Fin hi)

let pp ppf = function
  | Bot -> Format.fprintf ppf "⊥"
  | Range (lo, Fin hi) when lo = hi -> Format.fprintf ppf "%d" lo
  | Range (lo, Fin hi) -> Format.fprintf ppf "[%d,%d]" lo hi
  | Range (lo, Inf) -> Format.fprintf ppf "[%d,∞)" lo
