(** Persistent on-disk analysis cache, keyed by {!Structhash}.

    Layout: one file per entry under the cache directory (default
    [_boost_cache/]), named [<kind>-<key>.entry]. Every file opens with a
    one-line versioned envelope header

    {v boost-cache <envelope version> <analyzer version> <kind> <key> v}

    so entries self-invalidate when either the envelope format or the
    analyzer (via {!Structhash.analyzer_version}) changes — a mismatched
    header counts as [stale] and the entry is dropped. Files that fail the
    header or payload decode are quarantined: renamed to [*.corrupt],
    counted, and never consulted again. Writes go through a tempfile in the
    same directory plus an atomic rename, so concurrent readers (parallel
    lint domains, concurrent CI jobs sharing a directory) never observe a
    half-written entry. Cache failures of any kind degrade to a miss; the
    cache can make an analysis faster, never wrong and never crash it. *)

val envelope_version : int
val default_dir : string

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable corrupt : int;
  mutable renamed : int;  (** Hits mapped through a service rename/permutation. *)
  mutable writes : int;
}

type t = { dir : string; lock : Mutex.t; stats : stats }

val open_ : dir:string -> t
(** Creates the directory (and parents) if absent. All operations on the
    returned handle are thread-safe. *)

val find : t -> kind:string -> key:string -> string option
(** Raw payload lookup; counts a hit, miss, stale or corrupt. *)

val lookup : t -> kind:string -> key:string -> decode:(string -> 'a option) -> 'a option
(** The counting wrapper every typed accessor goes through: a payload whose
    [decode] returns [None] or raises (e.g. {!Codec.Corrupt}) is demoted
    from hit to corrupt and the file quarantined, so the statistics always
    describe usable entries. *)

val store : t -> kind:string -> key:string -> string -> unit
(** Atomic write; failures are swallowed (the entry is simply not cached). *)

(** {1 Maintenance} *)

val clear : dir:string -> int
(** Remove every cache file ([.entry], [.corrupt], [.tmp]); returns the
    count removed. *)

val entries : dir:string -> (string * int * int) list
(** Entries on disk grouped by kind: (kind, count, total bytes), sorted. *)

val corrupt_count : dir:string -> int

(** {1 Statistics} *)

val pp_stats : Format.formatter -> t -> unit

val stats_json : t -> string
(** Counters plus a ["kinds"] object — the on-disk census grouped by
    envelope kind in sorted order, the same grouping [boost cache status]
    prints. *)

(** {1 The fleet manifest} *)

val write_manifest : t -> (string * Structhash.t) list -> unit

val read_manifest : t -> (string * Structhash.t) list option
(** Manifest reads do not count toward hit/miss statistics: they are
    bookkeeping around the analyses, not analysis reuse. *)

(** {1 The Goblint-style diff pass} *)

type change =
  | Unchanged  (** Same [full] hash — every cache entry replays. *)
  | Renamed of (string * string) list
      (** Same [sem] hash, matched service tables; the (old, new) id pairs
          that changed, [[]] for a pure permutation. Semantic entries
          (fixpoint solutions) replay through the permutation map. *)
  | Changed  (** Re-analysis required. *)
  | Added  (** No recorded entry. *)

type change_report = { changes : (string * change) list; removed : string list }

val diff : (string * Structhash.t) list -> (string * Structhash.t) list -> change_report
(** [diff old_manifest manifest] — per-protocol change classification plus
    the names present before and gone now. *)

val diff_system : (string * Structhash.t) list -> name:string -> Model.System.t -> change
(** Where does one system stand relative to the recorded manifest entry for
    [name]? *)

val pp_change : Format.formatter -> change -> unit

(** {1 Typed accessors} *)

val reach_key : Structhash.t -> max_faults:int -> inputs_key:string -> string
(** Reach solutions are keyed by the {e semantic} hash: the abstract state
    is positional, so a solution computed for a renamed or permuted-service
    twin maps onto the current system by a pure array permutation
    ({!Astate.permute_svcs}) and a re-harvest. *)

val reach_store :
  t -> Structhash.t -> max_faults:int -> inputs_key:string -> Reach.t -> unit

val reach_find :
  t -> Structhash.t -> max_faults:int -> inputs_key:string -> Model.System.t -> Reach.t option
(** A hit that crossed a rename/permutation also bumps [renamed]. *)

type lint_entry = { human : string; findings : Lint.finding list; code : int }
(** A rendered lint report: the exact human text (margin 78), the findings
    for JSON re-emission, and the exit code. Keyed by the caller-built
    presentation key ([full] hash + parameters + claim digest). *)

val lint_store : t -> key:string -> lint_entry -> unit
val lint_find : t -> key:string -> lint_entry option

val cert_store : t -> key:string -> Prune.cert option -> unit
(** Quiescence certificates; negative results ([None]) are cached too —
    recomputing "nothing to prune" costs a full fixpoint. *)

val cert_find : t -> key:string -> Prune.cert option option
(** [Some c] = a stored verdict (itself [None] when the system has no
    certificate); [None] = cache miss. *)

val fp_key : full_key:string -> max_crashes:int -> refined:bool -> string
(** Footprint summaries are positional over the task/service arrays, so the
    key is the {e full} hash (renamed twins recompute — cheap). [refined]
    distinguishes reach-refined footprints (the lint pipeline) from
    structural-only ones (the chaos explorer's POR setup); the two disagree
    by construction and must not alias. *)

val fp_store : t -> key:string -> Footprint.t array -> unit
(** One footprint per entry of [sys.tasks], task order. *)

val fp_find : t -> key:string -> n_tasks:int -> Footprint.t array option
(** Arity-checked against the consuming system's task count; a mismatch
    quarantines the entry. *)

val pcert_store : t -> key:string -> Cert.t -> unit
(** Resilience certificates, keyed by {!Structhash.family} over the whole
    (n, f) window — one entry replays an entire parameter sweep. *)

val pcert_find : t -> key:string -> Cert.t option
