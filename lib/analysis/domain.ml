module type LATTICE = sig
  type t

  val leq : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
