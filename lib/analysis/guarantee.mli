(** Static guarantee-vector typing of services and systems.

    {!of_service} assigns every service constructor a {!Gvector.t} keyed on
    its class (§2.1: register / atomic / failure-oblivious / general), its
    resilience [f] and endpoint count; {!compose} walks a system's service
    table and takes the meet — plus a union-find pass over endpoint coverage
    for the scope component. {!gaps} compares a protocol's registered claim
    ({!claim}, see {!Protocols.Registry}) against the composed vector: a
    non-empty result is a {e guarantee gap}, the static explanation of a
    Thm 2/9/10 refutation. The typing is deliberately conservative: a
    well-typed claim is supported by composition alone; a gap means the
    composition typing cannot certify the claim, not necessarily that every
    execution refutes it. *)

val of_service : Model.Service.t -> Gvector.t
(** The static vector of one service. Registers are per-object-ordered,
    fresh, dup-safe; atomic objects totally ordered but dup-unsafe;
    failure-oblivious services eventually-recent (queued delivery), with
    total order only for the broadcast type; general services expose failure
    visibility (perfect: [Vis_failures]; ◇P: [Vis_eventual]). The
    termination component is [wait-free] iff [f ≥ |J|−1], else
    [crashes(f)]. Scope is [1] (a single service spans its own endpoints). *)

val compose : Model.System.t -> Gvector.t
(** Meet over all services, with scope = number of coverage islands among
    the processes and order restricted to spec-carrying services (the ones
    linearizability checks). *)

val islands : Model.System.t -> int
(** Connected components of the process set under "shares a service". *)

type resilience = Crashes of int | Wait_free

type claim = {
  agreement : int option;  (** The k the chaos battery holds the protocol to. *)
  termination : resilience option;  (** Claimed crash resilience, if any. *)
  linearizable : bool;
  scales : bool;  (** The claim quantifies over all n (checked at a probe size too). *)
}

val no_claim : claim
(** Claims nothing; {!gaps} is empty against it. *)

type gap = { component : string; theorem : string; claimed : string; supported : string }

val pp_gap : Format.formatter -> gap -> unit

val gaps : claim:claim -> Model.System.t -> gap list
(** Scope / termination / order checks of [claim] against [compose sys]. *)

val scaling_gaps : claim:claim -> Model.System.t -> gap list
(** The Thm 10 visibility check, evaluated on a probe-size instance of a
    [scales] claim: a crash-surviving claim needs either an oblivious
    coordinator of matching resilience connected to all processes or a
    failure-aware service connected to all processes. Empty for claims that
    survive no crashes. *)

val term_of_resilience : resilience -> Gvector.termination
val resilience_to_string : resilience -> string
