(** The static interference relation over tasks.

    Two tasks interfere when one's may-write footprint overlaps the other's
    may-read-or-write footprint ({!Footprint}); otherwise they are
    independent, and independence is sound for commutation: independent
    tasks commute — same final state, applicability preserved either way —
    at every configuration within the [max_crashes] bound, under either
    policy. The relation over-approximates non-commutation, so any pair
    {!Engine.Commute.check_disjoint} finds concretely non-commuting is
    flagged interfering; the converse direction is what the partial-order
    reduction in {!Chaos.Explore} exploits (swapping adjacent independent
    steps preserves the run's verdict, DESIGN.md §3.9).

    [crash_interferes] is the same question against the adversary's
    [fail_pid] input, whose footprint writes only the pid's crash bit: a
    task not reading that bit behaves identically on both sides of the
    crash delivery. *)

type t

val analyze : ?reach:Reach.t -> ?max_crashes:int -> Model.System.t -> t
(** Compute all task footprints once. [max_crashes] defaults to the process
    count (fully conservative); pass the exploration's fault bound to
    sharpen crash-bit reads. [reach] enables the process-step refinement
    (see {!Footprint.of_task}). *)

val of_footprints : Model.System.t -> max_crashes:int -> Footprint.t array -> t
(** Rehydrate from cached footprints (one per entry of [sys.tasks], task
    order). The caller owes footprints computed for this very system —
    full-hash cache keying guarantees it; the arity check catches gross
    mismatches. Raises [Invalid_argument] on arity mismatch. *)

val max_crashes : t -> int

val footprints : t -> (Model.Task.t * Footprint.t) array
val footprint : t -> Model.Task.t -> Footprint.t
(** Raises [Invalid_argument] for a task not in the system. *)

val interferes : t -> Model.Task.t -> Model.Task.t -> bool
(** Symmetric; a task always interferes with itself. *)

val independent : t -> Model.Task.t -> Model.Task.t -> bool

val crash_interferes : t -> pid:int -> Model.Task.t -> bool
(** Whether the task may observe [pid]'s crash bit (so delivering [fail_pid]
    across it is not a provable no-op swap). *)

val net_interferes : t -> Footprint.net_op -> Model.Task.t -> bool
(** Whether the task's footprint clashes with the delivery's
    ({!Footprint.of_net_op}): an omission interferes exactly with the tasks
    touching its target response buffer, a topology change with the
    service-output turns whose [blocked] gate reads the partition state.
    Independence is sound for commutation — the slid-past task neither
    observes the mutated buffer (including its vacuousness) nor changes it,
    so both orders reach the same configuration. *)

val net_independent : t -> Footprint.net_op -> Model.Task.t -> bool

val net_net_interferes : Footprint.net_op -> Footprint.net_op -> bool
(** Two deliveries clash iff they touch a shared component: omissions on the
    same (service, endpoint) buffer, or two topology changes. Needs no task
    analysis, hence no [t]. *)

val net_crash_interferes : Footprint.net_op -> pid:int -> bool
(** Always false — no net delivery touches a crash bit — kept as the third
    leg of the relation so the soundness battery audits it like the rest. *)

val static_participants : t -> Model.Task.t -> Model.System.participant list
(** Union of {!Model.System.participants} over every action the task can
    take in any configuration. *)

type race = { e : Model.Task.t; e' : Model.Task.t; component : Footprint.component }

val races : t -> race list
(** Task pairs sharing a written component while their static participant
    sets are disjoint — conflicts outside the paper's Lemma 8 discipline
    (tasks with disjoint participants must commute). Expected empty for
    well-wired systems; any hit marks an interface breach. *)

val pp_race : Format.formatter -> race -> unit

val independent_pairs : t -> int * int
(** [(independent, total)] over unordered distinct task pairs. *)

val pp_summary : Format.formatter -> t -> unit
(** Per-task footprints and the independence census. *)
