(** Generic worklist fixpoint solver with delayed widening.

    Solves a finite constraint system over any {!Domain.LATTICE}: unknowns
    are integers [0..n-1], each with a monotone right-hand side reading the
    current assignment. Iteration is chaotic with an explicit worklist; an
    unknown updated more than [widen_delay] times routes further growth
    through [widen], so unbounded-height domains still stabilize. *)

type stats = {
  iterations : int;  (** Right-hand-side evaluations performed. *)
  widenings : int;  (** Updates that went through [widen]. *)
}

module Make (L : Domain.LATTICE) : sig
  val solve :
    ?widen_delay:int ->
    n:int ->
    bot:L.t ->
    rhs:(get:(int -> L.t) -> int -> L.t) ->
    dependents:(int -> int list) ->
    unit ->
    L.t array * stats
  (** [rhs ~get u] must include every contribution to unknown [u] (seeds
      and flow edges); [dependents u] lists the unknowns whose right-hand
      sides read [u] (requeued when [u] grows). [widen_delay] defaults
      to 3. The result is a post-fixpoint: [leq (rhs ~get u) (get u)] for
      every [u]. *)
end
