type stats = { iterations : int; widenings : int }

module Make (L : Domain.LATTICE) = struct
  let solve ?(widen_delay = 3) ~n ~bot ~rhs ~dependents () =
    let values = Array.make n bot in
    let updates = Array.make n 0 in
    let queued = Array.make n false in
    let queue = Queue.create () in
    let push u =
      if not queued.(u) then begin
        queued.(u) <- true;
        Queue.add u queue
      end
    in
    for u = 0 to n - 1 do
      push u
    done;
    let iterations = ref 0 in
    let widenings = ref 0 in
    let get u = values.(u) in
    while not (Queue.is_empty queue) do
      let u = Queue.take queue in
      queued.(u) <- false;
      incr iterations;
      let nv = rhs ~get u in
      if not (L.leq nv values.(u)) then begin
        let joined = L.join values.(u) nv in
        updates.(u) <- updates.(u) + 1;
        let next =
          if updates.(u) > widen_delay then begin
            incr widenings;
            L.widen values.(u) joined
          end
          else joined
        in
        values.(u) <- next;
        List.iter push (dependents u)
      end
    done;
    values, { iterations = !iterations; widenings = !widenings }
end
