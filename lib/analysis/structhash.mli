(** Canonical structural hash of a system's analysis-relevant identity.

    Two hashes are computed per system:

    - [full] — the presentation hash: everything the analyses and their
      rendered reports can depend on, including service identifiers, the
      service-array order and the declared type names. Cache entries that
      store rendered output are keyed by it.

    - [sem] — the semantic hash: service identifiers and the service-array
      order are canonicalized away (a service is named by its own behavioral
      hash; processes refer to services by canonical index, not id string).
      Renaming a service — consistently in its definition and in every
      process that invokes it — or permuting the service array leaves [sem]
      unchanged while [full] moves, which is exactly the Goblint-style
      rename/permutation detection the cache's diff pass keys on.

    Behavior is hashed by {e probing}, not by inspecting closures: a bounded
    breadth-first walk over each process's reachable local states (driven by
    [step], [on_init] over the seed input alphabet, and [on_response] over
    each connected service's declared response alphabet) and over each
    service's reachable type values (driven by [delta_inv] across every
    invocation × endpoint × a bounded family of failed-sets, and
    [delta_glob] across the declared global tasks). Every transition's
    observable outcome is folded into the hash, so any behavioral change a
    bounded analysis could see moves the hash; hash-equal units may still
    differ beyond the probe bound, which costs at most a spurious cache hit
    on behavior no analysis in this repository reaches. Probe caps are
    folded into the hash themselves, so a capped walk never collides with an
    uncapped one. *)

val analyzer_version : int
(** Salts every hash and every cache envelope: bump it whenever the
    transfer functions, the abstract domains or the probing scheme change,
    and every existing cache entry self-invalidates. *)

type t = {
  full : int;  (** Presentation hash. *)
  sem : int;  (** Semantic hash (service ids and order canonicalized). *)
  procs : int array;  (** Per-process semantic behavioral hash, pid order. *)
  services : (string * int) list;
      (** (id, semantic behavioral hash), service-array order. *)
}

val system : Model.System.t -> t

val key : t -> string
(** The [full] hash as a 16-hex-digit string — filename-safe. *)

val sem_key : t -> string
(** The [sem] hash, same rendering. *)

val equal_sem : t -> t -> bool

val hex : int -> string

val probe_inputs : Ioa.Value.t list
(** The seed input alphabet the process probe drives [on_init] over — the
    binary staircase convention {!Reach.analyze} defaults to. *)

val mix_tokens : string list -> int
(** FNV-1a fold of a token list — for callers composing cache keys that
    include non-system inputs (claims, parameter tuples). *)

val family : string list -> string
(** Parameterized hashing: fold a whole (n, f) window's per-instantiation
    keys (plus any parameter tokens) into one filename-safe digest — the
    key a cross-parameter cache entry (resilience certificate) lives
    under. Any behavioral change at any grid point moves it. *)

val permutation :
  old_services:(string * int) list -> services:(string * int) list -> int array option
(** Match two service tables by behavioral hash: [Some perm] with
    [perm.(j)] = the old index whose service the new index [j] corresponds
    to, [None] when the hash multisets differ. Hash ties pair in order —
    tied services are behaviorally identical, so any pairing is
    semantically interchangeable. *)

val is_identity : int array -> bool

val rename_pairs :
  old_services:(string * int) list ->
  services:(string * int) list ->
  int array ->
  (string * string) list
(** The id mapping a permutation induces: (old id, new id) pairs where the
    name actually changed — the substance of a rename report. *)
