(** The lattice signature every abstract domain plugs into.

    The analyzer is a classic abstract interpreter: abstract values form a
    join-semilattice with a widening operator, transfer functions are
    monotone, and {!Fixpoint} iterates a constraint system to a
    post-fixpoint. Domains here are finite-height in practice ({!Vset} caps
    its cardinality, {!Interval} widens to ∞), so [widen] may coincide with
    [join]; the solver still routes late updates through [widen] so an
    unbounded domain added later terminates too. *)

module type LATTICE = sig
  type t

  val leq : t -> t -> bool
  (** Partial order: [leq a b] iff [a] describes a subset of what [b]
      describes. *)

  val join : t -> t -> t
  (** Least upper bound (or a sound upper bound where exact lub is not
      representable). *)

  val widen : t -> t -> t
  (** [widen old next] — an upper bound of both that guarantees
      stabilization along any ascending chain. Called with [leq old next]. *)

  val equal : t -> t -> bool

  val pp : Format.formatter -> t -> unit
end
