module Value = Ioa.Value

type abuf = { items : Vset.t; len : Interval.t }
type asvc = { value : Vset.t; inv : abuf array; resp : abuf array }
type dopt = { may_none : bool; values : Vset.t }

type st = {
  procs : Vset.t array;
  svcs : asvc array;
  decisions : dopt array;
  inputs : dopt array;
}

type t = Bot | St of st

let bot = Bot

let buf_make ~items ~len =
  match Vset.elements items with
  | Some qs -> { items; len = Interval.hull (List.map (fun q -> List.length (Value.to_list q)) qs) }
  | None -> { items; len }

let buf_of_queue q = buf_make ~items:(Vset.singleton (Value.list q)) ~len:Interval.bot
let buf_top ~len = { items = Vset.top; len }

let dopt_none = { may_none = true; values = Vset.bot }
let dopt_of = function None -> dopt_none | Some v -> { may_none = false; values = Vset.singleton v }

let dopt_leq a b = (b.may_none || not a.may_none) && Vset.leq a.values b.values
let dopt_join a b = { may_none = a.may_none || b.may_none; values = Vset.join a.values b.values }

let dopt_widen a b =
  { may_none = a.may_none || b.may_none; values = Vset.widen a.values b.values }

let dopt_equal a b = a.may_none = b.may_none && Vset.equal a.values b.values

let buf_leq a b = Vset.leq a.items b.items && Interval.leq a.len b.len
let buf_join a b = buf_make ~items:(Vset.join a.items b.items) ~len:(Interval.join a.len b.len)
let buf_widen a b = buf_make ~items:(Vset.widen a.items b.items) ~len:(Interval.widen a.len b.len)
let buf_equal a b = Vset.equal a.items b.items && Interval.equal a.len b.len

let svc_leq a b =
  Vset.leq a.value b.value
  && Array.for_all2 buf_leq a.inv b.inv
  && Array.for_all2 buf_leq a.resp b.resp

let svc_merge fv fb a b =
  { value = fv a.value b.value; inv = Array.map2 fb a.inv b.inv; resp = Array.map2 fb a.resp b.resp }

let svc_equal a b =
  Vset.equal a.value b.value
  && Array.for_all2 buf_equal a.inv b.inv
  && Array.for_all2 buf_equal a.resp b.resp

let of_state (s : Model.State.t) =
  St
    {
      procs = Array.map Vset.singleton s.Model.State.procs;
      svcs =
        Array.map
          (fun (svc : Model.State.svc) ->
            {
              value = Vset.singleton svc.Model.State.value;
              inv = Array.map buf_of_queue svc.Model.State.inv_bufs;
              resp = Array.map buf_of_queue svc.Model.State.resp_bufs;
            })
          s.Model.State.svcs;
      decisions = Array.map dopt_of s.Model.State.decisions;
      inputs = Array.map dopt_of s.Model.State.inputs;
    }

let leq a b =
  match a, b with
  | Bot, _ -> true
  | _, Bot -> false
  | St a, St b ->
    Array.for_all2 Vset.leq a.procs b.procs
    && Array.for_all2 svc_leq a.svcs b.svcs
    && Array.for_all2 dopt_leq a.decisions b.decisions
    && Array.for_all2 dopt_leq a.inputs b.inputs

let merge fv fb fd a b =
  match a, b with
  | Bot, x | x, Bot -> x
  | St a, St b ->
    St
      {
        procs = Array.map2 fv a.procs b.procs;
        svcs = Array.map2 (svc_merge fv fb) a.svcs b.svcs;
        decisions = Array.map2 fd a.decisions b.decisions;
        inputs = Array.map2 fd a.inputs b.inputs;
      }

let join a b = merge Vset.join buf_join dopt_join a b
let widen a b = merge Vset.widen buf_widen dopt_widen a b

let equal a b =
  match a, b with
  | Bot, Bot -> true
  | St a, St b ->
    Array.for_all2 Vset.equal a.procs b.procs
    && Array.for_all2 svc_equal a.svcs b.svcs
    && Array.for_all2 dopt_equal a.decisions b.decisions
    && Array.for_all2 dopt_equal a.inputs b.inputs
  | _ -> false

(* Re-index the service slots of a stored state onto a permuted service
   table: [perm.(j)] names the old position of the service now at [j]. The
   abstract state is positional (no identifiers inside), so this is the
   entire rename mapping the cache needs for fixpoint solutions. *)
let permute_svcs perm = function
  | Bot -> Bot
  | St a ->
    if Array.length perm <> Array.length a.svcs then
      invalid_arg "Astate.permute_svcs: arity mismatch";
    St { a with svcs = Array.map (fun j -> a.svcs.(j)) perm }

(* Re-index the per-process slots onto a permuted pid space: [perm.(i)]
   names the old pid of the process now at [i]. Service inv/resp buffer
   rows are pid-indexed too, but only when the service connects to every
   process (row length = perm length); partially-connected rows are
   positional over the service's own endpoint list and left alone — the
   caller owes class-respecting permutations for those (the symmetry-class
   tests only permute within fully-connected systems). *)
let permute_procs perm = function
  | Bot -> Bot
  | St a ->
    if Array.length perm <> Array.length a.procs then
      invalid_arg "Astate.permute_procs: arity mismatch";
    let row arr =
      if Array.length arr = Array.length perm then Array.map (fun j -> arr.(j)) perm
      else arr
    in
    St
      {
        procs = Array.map (fun j -> a.procs.(j)) perm;
        svcs = Array.map (fun s -> { s with inv = row s.inv; resp = row s.resp }) a.svcs;
        decisions = Array.map (fun j -> a.decisions.(j)) perm;
        inputs = Array.map (fun j -> a.inputs.(j)) perm;
      }

let pp_dopt ppf d =
  Format.fprintf ppf "%s%a" (if d.may_none then "·|" else "") Vset.pp d.values

let pp_buf ppf b = Format.fprintf ppf "%a#%a" Vset.pp b.items Interval.pp b.len

let pp ppf = function
  | Bot -> Format.fprintf ppf "⊥"
  | St a ->
    Format.fprintf ppf "@[<v 2>astate:";
    Array.iteri (fun i v -> Format.fprintf ppf "@,P%d ∈ %a" i Vset.pp v) a.procs;
    Array.iteri
      (fun k svc ->
        Format.fprintf ppf "@,S#%d val ∈ %a" k Vset.pp svc.value;
        Array.iteri (fun p b -> Format.fprintf ppf "@,  inv[%d] %a" p pp_buf b) svc.inv;
        Array.iteri (fun p b -> Format.fprintf ppf "@,  resp[%d] %a" p pp_buf b) svc.resp)
      a.svcs;
    Array.iteri (fun i d -> Format.fprintf ppf "@,dec[%d] %a" i pp_dopt d) a.decisions;
    Format.fprintf ppf "@]"
