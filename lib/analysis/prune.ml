module System = Model.System
module State = Model.State

type cert = { quiescent_from : int; buffers_empty : bool }

(* Cache serialization: negative results (no certificate) are worth storing
   too — recomputing "nothing to prune" costs a full fixpoint. *)
let encode_cert b = function
  | None -> Buffer.add_char b '-'
  | Some c ->
    Buffer.add_char b '+';
    Codec.int_out b c.quiescent_from;
    Codec.int_out b (if c.buffers_empty then 1 else 0)

let decode_cert cur =
  match Codec.next cur with
  | '-' -> None
  | '+' ->
    let quiescent_from = Codec.int_in cur in
    let buffers_empty = Codec.int_in cur <> 0 in
    Some { quiescent_from; buffers_empty }
  | ch -> raise (Codec.Corrupt (Printf.sprintf "bad cert tag %c" ch))

let clean_from ?(max_faults = 1) ~inputs ~horizon (sys : System.t) =
  if horizon <= 0 then None
  else begin
    let tasks = sys.System.tasks in
    let nt = Array.length tasks in
    let limit = horizon + nt in
    (* Concrete fault-free round-robin walk — the exact (singleton-domain)
       simulation of every crash-only candidate's shared stem. No failures,
       so no dummy action is enabled and the policy cannot bite (§2.1.3). *)
    let s = ref (System.initialize sys inputs) in
    let last_bad = ref (-1) in
    for t = 0 to limit - 1 do
      match System.transition sys !s tasks.(t mod nt) with
      | None -> ()
      | Some (ev, s') ->
        let changed = not (State.equal s' !s) in
        let decide = match ev with Model.Event.Decide _ -> true | _ -> false in
        if changed || decide then last_bad := t;
        s := s'
    done;
    let q = !last_bad + 1 in
    (* Q < horizon or nothing can be pruned; Q + nt ≤ limit then holds, so a
       full task cycle after Q was observed silent — determinism freezes the
       fault-free run forever. *)
    if q >= horizon then None
    else if
      (* f-termination must hold at the frozen state: every initialized
         process has decided (crashed ones are exempt a fortiori). *)
      not
        (Array.for_all2
           (fun inp dec -> inp = None || dec <> None)
           !s.State.inputs !s.State.decisions)
    then None
    else
      (* Crash closure: under every failed superset within max_faults, and
         under both preference resolutions, no task can change the state or
         emit a decide event. Proven by the fixpoint, not sampled. *)
      let r = Reach.analyze_from ~max_faults !s sys in
      if Reach.frozen r then
        (* Checked concretely on the frozen state: with every response buffer
           empty, post-Q omission deliveries (drop/dup/delay) are provably
           vacuous — they mutate nothing and leave no event — and post-Q
           partitions can never block an output turn ([blocked] is false on
           an empty buffer), so the frozen lasso absorbs them too. *)
        let buffers_empty =
          Array.for_all
            (fun (svc : State.svc) -> Array.for_all (fun buf -> buf = []) svc.State.resp_bufs)
            !s.State.svcs
        in
        Some { quiescent_from = q; buffers_empty }
      else None
  end
