(** Static may-read/may-write footprints per task.

    The concrete configuration ({!Model.State.t}) decomposes into components:
    per-process program states and decision slots, per-process crash bits
    (the failed set, bit by bit), and per-service object values and
    per-endpoint inv/resp buffers. A task's footprint names every component
    its transition — real {e or} dummy branch, enabledness tests included —
    may read or write, for any configuration reachable with at most
    [max_crashes] total failures.

    Footprints are derived from the task semantics the same way the
    {!Transfer} functions are: structurally from the system's wiring
    (endpoint sets, service classes), optionally refined by probing the
    per-process [step] functions over a solved {!Reach} abstraction (the
    refinement narrows a process task's may-invoke service set and its
    may-decide bit; imprecision falls back to the structural answer, so the
    result is always an over-approximation).

    The footprint is what {!Interfere} builds its independence relation on:
    two tasks whose footprints do not write-overlap commute in every
    described configuration (DESIGN.md §3.9 connects this to paper
    Lemma 8). *)

type component =
  | Pstate of int  (** Program state of process [i]. *)
  | Decision of int  (** Decision slot of process [i]. *)
  | Crash_bit of int  (** Membership of [i] in the failed set. *)
  | Svc_value of int  (** Object value of the service at position [k]. *)
  | Svc_inv of int * int  (** Invocation buffer of service [k], endpoint [i]. *)
  | Svc_resp of int * int  (** Response buffer of service [k], endpoint [i]. *)
  | Net_topology
      (** The cross-block delivery state (active partitions and their
          heals). Not part of {!Model.State.t} — it lives in the compiled
          chaos schedule — but service-output turns read it (the [blocked]
          gate) and partition/heal deliveries write it. *)

module Cset : Set.S with type elt = component

type t = { reads : Cset.t; writes : Cset.t }

val of_task : ?reach:Reach.t -> ?max_crashes:int -> Model.System.t -> Model.Task.t -> t
(** [max_crashes] (default: the process count, fully conservative) bounds
    the failures in the configurations described; at most [f] crashes make
    an f-resilient service's silencing threshold statically dead, shrinking
    the crash-bit read set. [reach] enables the process-step refinement. *)

val of_system :
  ?reach:Reach.t -> ?max_crashes:int -> Model.System.t -> (Model.Task.t * t) array
(** One footprint per entry of [sys.tasks], in task order. *)

val fail_writes : int -> Cset.t
(** The footprint of the adversary's [fail_pid] input: writes the pid's
    crash bit, reads nothing. *)

type net_op =
  | Omission of { svc : int; endpoint : int }
      (** A drop/duplicate/delay delivery against service position [svc]'s
          response buffer at endpoint (pid) [endpoint]. *)
  | Topology
      (** A partition or heal delivery: rewrites the cross-block delivery
          state, touches no buffer. *)

val of_net_op : net_op -> t
(** The footprint of one network-adversary delivery: an omission reads and
    writes exactly its target endpoint's response buffer (reading covers the
    vacuousness test on an empty buffer); a topology change reads and writes
    only [Net_topology]. DESIGN.md §3.12 connects this to the Lemma 8 /
    Claim 2 commutation argument lifted to omission faults. *)

(** {1 Cache serialization}

    Footprint arrays persist as first-class cache entries (kind ["fp"]), so
    POR/static-prune runs and the lint pipeline stop re-deriving them. *)

val encode : Buffer.t -> t -> unit

val decode : Codec.cursor -> t
(** Raises {!Codec.Corrupt} on malformed input. *)

val pp_component : Format.formatter -> component -> unit
val pp_cset : Format.formatter -> Cset.t -> unit
val pp : Format.formatter -> t -> unit
