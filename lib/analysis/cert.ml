(* Resilience certificates: the machine-checkable record behind
   `boost lint --param`.

   A certificate stores the lint verdict of one protocol at every (n, f)
   point of a window and derives the universally-quantified statements the
   paper's theorems are phrased in: findings byte-identical at every point
   quantify verbatim ("∀ (n, f) in the window: …"), findings whose
   (code, severity, subject) key recurs everywhere while the detail embeds
   the parameters (e.g. tob's guarantee-gap, whose message names f+1 and f)
   quantify at the key level. Validation is concrete and byte-for-byte:
   [disagreements] re-lints fresh at each point and compares findings and
   exit codes exactly, so a certificate can claim nothing a concrete
   instantiation would not reproduce — the symbolic layer ({!Param},
   {!Reach.analyze_sym}) buys speed, never authority. *)

type point = { pn : int; pf : int; findings : Lint.finding list; code : int }

type t = {
  protocol : string;
  family : string;
  max_faults : int;
  points : point list;
  stable : Lint.finding list;
  everywhere : (string * Lint.severity * string) list;
}

let finding_equal (a : Lint.finding) (b : Lint.finding) =
  String.equal a.Lint.code b.Lint.code
  && a.Lint.severity = b.Lint.severity
  && String.equal a.Lint.subject b.Lint.subject
  && String.equal a.Lint.detail b.Lint.detail

let key_of (f : Lint.finding) = f.Lint.code, f.Lint.severity, f.Lint.subject

let make ~protocol ~family ~max_faults points =
  let points = List.sort (fun a b -> compare (a.pn, a.pf) (b.pn, b.pf)) points in
  let stable, everywhere =
    match points with
    | [] -> [], []
    | p0 :: rest ->
      let stable =
        List.filter
          (fun f -> List.for_all (fun p -> List.exists (finding_equal f) p.findings) rest)
          p0.findings
      in
      let everywhere =
        p0.findings
        |> List.filter (fun f -> not (List.exists (finding_equal f) stable))
        |> List.filter_map (fun f ->
               let k = key_of f in
               if
                 List.for_all
                   (fun p -> List.exists (fun g -> key_of g = k) p.findings)
                   rest
               then Some k
               else None)
        |> List.sort_uniq compare
      in
      stable, everywhere
  in
  { protocol; family; max_faults; points; stable; everywhere }

let window t =
  match t.points with
  | [] -> (0, 0), (0, 0)
  | p0 :: _ ->
    List.fold_left
      (fun ((nlo, flo), (nhi, fhi)) p ->
        (min nlo p.pn, min flo p.pf), (max nhi p.pn, max fhi p.pf))
      ((p0.pn, p0.pf), (p0.pn, p0.pf))
      t.points

let find_point t ~n ~f = List.find_opt (fun p -> p.pn = n && p.pf = f) t.points

let disagreements t ~fresh =
  List.filter_map
    (fun p ->
      let findings, code = fresh ~n:p.pn ~f:p.pf in
      if
        code = p.code
        && List.length findings = List.length (p.findings)
        && List.for_all2 finding_equal findings p.findings
      then None
      else Some (p.pn, p.pf))
    t.points

(* --- cache serialization (kind "pcert") ---

   Only the validated per-point verdicts persist; [stable]/[everywhere] are
   re-derived by [make] on decode, so the quantified view always matches the
   stored points. *)

let encode b t =
  Codec.string_out b t.protocol;
  Codec.string_out b t.family;
  Codec.int_out b t.max_faults;
  Codec.int_out b (List.length t.points);
  List.iter
    (fun p ->
      Codec.int_out b p.pn;
      Codec.int_out b p.pf;
      Codec.int_out b p.code;
      Lint.encode_findings b p.findings)
    t.points

let decode c =
  let protocol = Codec.string_in c in
  let family = Codec.string_in c in
  let max_faults = Codec.int_in c in
  let np = Codec.int_in c in
  if np < 0 then raise (Codec.Corrupt "negative point count");
  let points =
    List.init np (fun _ ->
        let pn = Codec.int_in c in
        let pf = Codec.int_in c in
        let code = Codec.int_in c in
        let findings = Lint.decode_findings c in
        { pn; pf; findings; code })
  in
  make ~protocol ~family ~max_faults points

(* --- rendering --- *)

let pp ppf t =
  let (nlo, flo), (nhi, fhi) = window t in
  Format.fprintf ppf "@[<v>certificate %s (family %s, max-faults %d)@," t.protocol
    t.family t.max_faults;
  Format.fprintf ppf "window n ∈ [%d, %d], f ∈ [%d, %d], %d point(s)@," nlo nhi flo
    fhi (List.length t.points);
  List.iter
    (fun f -> Format.fprintf ppf "∀ (n, f): %a@," Lint.pp_finding f)
    t.stable;
  List.iter
    (fun (code, sev, subject) ->
      Format.fprintf ppf "∀ (n, f): %a[%s] %s (detail varies with (n, f))@,"
        Lint.pp_severity sev code subject)
    t.everywhere;
  Format.fprintf ppf "@[<h>per-point exit:%t@]@]" (fun ppf ->
      List.iter (fun p -> Format.fprintf ppf "@ (%d,%d)=%d" p.pn p.pf p.code) t.points)

let json t =
  let esc = Lint.json_escape in
  let (nlo, flo), (nhi, fhi) = window t in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"certificate":"%s","family":"%s","max_faults":%d,"window":{"n":[%d,%d],"f":[%d,%d]},"stable":[|}
       (esc t.protocol) (esc t.family) t.max_faults nlo nhi flo fhi);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Lint.json_of_finding ~protocol:t.protocol f))
    t.stable;
  Buffer.add_string b {|],"everywhere":[|};
  List.iteri
    (fun i (code, sev, subject) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"rule":"%s","severity":"%s","subject":"%s"}|} (esc code)
           (Lint.severity_name sev) (esc subject)))
    t.everywhere;
  Buffer.add_string b {|],"points":[|};
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf {|{"n":%d,"f":%d,"exit":%d,"findings":[|} p.pn p.pf p.code);
      List.iteri
        (fun j f ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Lint.json_of_finding ~protocol:t.protocol f))
        p.findings;
      Buffer.add_string b "]}")
    t.points;
  Buffer.add_string b "]}";
  Buffer.contents b
