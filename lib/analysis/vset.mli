(** Bounded value-set domain over {!Ioa.Value.t}.

    The control/decision lattice for per-process program states, service
    object values and buffer contents: a finite set of concrete values up to
    {!cap} elements, then [Top] (any value). Finite height cap+1, so
    widening is plain join; precision degrades to [Top] instead of
    diverging. [Bot] is the empty set. *)

type t = Top | Set of Ioa.Value.t list  (** Sorted, duplicate-free. *)

include Domain.LATTICE with type t := t

val cap : int
(** Cardinality bound before collapsing to [Top] (24). *)

val bot : t
val top : t
val is_bot : t -> bool
val is_top : t -> bool
val singleton : Ioa.Value.t -> t
val of_list : Ioa.Value.t list -> t
val add : Ioa.Value.t -> t -> t
val mem : Ioa.Value.t -> t -> bool
(** [mem _ Top] is true. *)

val elements : t -> Ioa.Value.t list option
(** [None] on [Top]. *)

val cardinal : t -> int option

val map : (Ioa.Value.t -> Ioa.Value.t) -> t -> t
(** Pointwise image, [Top]-preserving, re-capped. *)

val concat_map : (Ioa.Value.t -> t) -> t -> t
(** Union of images; any [Top] image collapses the result. *)
