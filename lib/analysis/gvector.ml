(* The guarantee-vector lattice. Components are ordered strongest-first;
   [meet] takes the weakest value pointwise, so composing a system is a fold
   of [meet] over its services' vectors: the end-to-end guarantee is pinned
   by the weakest service — the typing-level shadow of Theorems 2/9/10. *)

type order = Ord_none | Ord_per_object | Ord_total
type visibility = Vis_oblivious | Vis_eventual | Vis_failures
type recency = Rec_none | Rec_eventual | Rec_fresh
type idem = Dup_unsafe | Dup_safe
type termination = Term_none | Term_crashes of int | Term_wait_free

type t = {
  scope : int;
  order : order;
  visibility : visibility;
  recency : recency;
  idem : idem;
  termination : termination;
}

let top =
  {
    scope = 1;
    order = Ord_total;
    visibility = Vis_failures;
    recency = Rec_fresh;
    idem = Dup_safe;
    termination = Term_wait_free;
  }

(* Rank within each component chain; higher = stronger. *)
let order_rank = function Ord_none -> 0 | Ord_per_object -> 1 | Ord_total -> 2
let visibility_rank = function Vis_oblivious -> 0 | Vis_eventual -> 1 | Vis_failures -> 2
let recency_rank = function Rec_none -> 0 | Rec_eventual -> 1 | Rec_fresh -> 2
let idem_rank = function Dup_unsafe -> 0 | Dup_safe -> 1

(* Termination is a chain [Term_none < Term_crashes 0 < Term_crashes 1 < …
   < Term_wait_free]; [Term_crashes] counts survivable crashes among the
   participants, wait-freedom tops the chain (§2.1.3: effectively
   reliable). *)
let term_leq a b =
  match a, b with
  | Term_none, _ -> true
  | _, Term_none -> false
  | _, Term_wait_free -> true
  | Term_wait_free, _ -> false
  | Term_crashes x, Term_crashes y -> x <= y

let term_meet a b = if term_leq a b then a else b

let min_by rank a b = if rank a <= rank b then a else b

let meet a b =
  {
    (* More islands = weaker scope: 1 means globally connected. *)
    scope = max a.scope b.scope;
    order = min_by order_rank a.order b.order;
    visibility = min_by visibility_rank a.visibility b.visibility;
    recency = min_by recency_rank a.recency b.recency;
    idem = min_by idem_rank a.idem b.idem;
    termination = term_meet a.termination b.termination;
  }

let leq a b =
  a.scope >= b.scope
  && order_rank a.order <= order_rank b.order
  && visibility_rank a.visibility <= visibility_rank b.visibility
  && recency_rank a.recency <= recency_rank b.recency
  && idem_rank a.idem <= idem_rank b.idem
  && term_leq a.termination b.termination

let equal a b = leq a b && leq b a

let order_to_string = function
  | Ord_none -> "none"
  | Ord_per_object -> "per-object"
  | Ord_total -> "total"

let visibility_to_string = function
  | Vis_oblivious -> "oblivious"
  | Vis_eventual -> "eventual"
  | Vis_failures -> "failures"

let recency_to_string = function
  | Rec_none -> "none"
  | Rec_eventual -> "eventual"
  | Rec_fresh -> "fresh"

let idem_to_string = function Dup_unsafe -> "dup-unsafe" | Dup_safe -> "dup-safe"

let termination_to_string = function
  | Term_none -> "none"
  | Term_crashes f -> Printf.sprintf "crashes(%d)" f
  | Term_wait_free -> "wait-free"

let scope_to_string = function 1 -> "global" | k -> Printf.sprintf "%d islands" k

let pp ppf t =
  Format.fprintf ppf "⟨scope=%s, order=%s, vis=%s, rec=%s, idem=%s, term=%s⟩"
    (scope_to_string t.scope) (order_to_string t.order)
    (visibility_to_string t.visibility)
    (recency_to_string t.recency) (idem_to_string t.idem)
    (termination_to_string t.termination)

let to_string t = Format.asprintf "%a" pp t
