(** Abstract reachability over the failed-set powerset.

    The constraint system has one unknown per failed set F with
    [seed ⊆ F] and [|F ∖ seed| ≤ max_faults] — the powerset-capped-by-f
    domain of the crash adversary. Its value abstracts every concrete
    configuration reachable in a context where exactly F has crashed:

    - the seed unknown starts from the initialized state (or an arbitrary
      supplied state for {!analyze_from});
    - task edges close each unknown under its own {!Transfer} posts;
    - crash edges flow A(F ∖ {i}) into A(F) unchanged — [fail_i] only moves
      the failed set, which the unknown index carries (the abstract
      configuration deliberately omits it, see {!Astate}).

    Solved with {!Fixpoint} over {!Astate}; the failure-free solution
    over-approximates the vertex set of G(C) (paper Fig. 3). *)

type info = {
  failed : Spec.Iset.t;
  astate : Astate.t;
  decides : (int * Ioa.Value.t) list;
      (** Decide events possible in this context (post-fixpoint pass). *)
  decide_havoc : bool;  (** Imprecision admits arbitrary decide events. *)
  real : bool array;  (** Per task index: the real action may fire. *)
}

type t = {
  sys : Model.System.t;
  max_faults : int;
  infos : info array;  (** Index 0 is the seed failed-set. *)
  incidents : Transfer.incident list;  (** Deduplicated by code × subject. *)
  stats : Fixpoint.stats;
}

val analyze : ?max_faults:int -> ?inputs:Ioa.Value.t list -> Model.System.t -> t
(** From the initialized system. [max_faults] defaults to 1; [inputs] to the
    binary staircase convention [i mod 2]. *)

val analyze_from : ?max_faults:int -> Model.State.t -> Model.System.t -> t
(** From an arbitrary concrete state; the seed failed-set is the state's
    own. *)

val analyze_sym :
  ?max_faults:int ->
  ?inputs:Ioa.Value.t list ->
  ?classes:Param.cls list ->
  Model.System.t ->
  t
(** Symbolic parameter mode: one unknown per crash {e signature} — the
    per-symmetry-class crash-count vector of {!Param} — instead of one per
    concrete failed set, so the transfer functions are probed on one
    canonical prefix-crashed representative per class pattern. The unknown
    count grows with the number of classes (typically O(f^k) for k classes),
    not with [C(n, ≤f)]. [classes] defaults to [Param.classes ~inputs sys].

    Facts are reported at canonical failed sets only. The quotient is exact
    for class-respecting facts and may lose (never gain) reachable behavior
    for pid-embedding values, which is why resilience certificates
    ({!Cert}) are validated against concrete per-point runs, not against
    this mode. *)

val seed_info : t -> info

val may_decisions : t -> i:int -> Astate.dopt
(** Process [i]'s decision abstraction in the failure-free (seed) context. *)

val may_decided_values : t -> Vset.t
(** Every value any process may have decided, seed context. *)

val proven_blank : t -> bool
(** No decide event is abstractly reachable in the seed context — the
    static counterpart of a [Valence.Blank] root (sound: abstract absence
    implies concrete absence). *)

val never_decides : t -> int list
(** Processes provably unable to emit any decide event, seed context. *)

val dead_tasks : t -> (int * Model.Task.t) list
(** Tasks whose real action fires in no context, with their indices. *)

val crash_interval : t -> Interval.t
(** Hull of the crash counts covered by the constraint system. *)

val frozen : t -> bool
(** Every unknown's solution stays within the seed abstraction and no
    decide event is possible anywhere: the seed state is quiescent and
    remains so under every further crash pattern within [max_faults] —
    the {!Prune} closure certificate. *)

(** {1 Cache serialization}

    Only the fixpoint {e solution} is persisted — the per-unknown failed
    sets and abstract states plus the solver statistics. Decides, incidents
    and firing facts are rebuilt by the (cheap) harvest sweep against the
    current system, so a solution restored through a service permutation
    renders facts in the new system's own task order and positions. *)

type solution = {
  s_max_faults : int;
  s_failed : Spec.Iset.t array;
  s_astates : Astate.t array;
  s_stats : Fixpoint.stats;
}

val solution_of : t -> solution

val of_solution : Model.System.t -> solution -> t
(** Re-harvest the facts against [sys]; the caller owes a solution computed
    for this system or a behaviorally identical (possibly service-permuted,
    already re-indexed) twin. *)

val encode_solution : Buffer.t -> solution -> unit

val decode_solution : Codec.cursor -> solution
(** Raises {!Codec.Corrupt} on malformed input. *)
