(** The sound infeasibility oracle for the chaos explorer.

    {!clean_from} certifies a {e quiescence step} Q for a system under the
    exploration convention (round-robin interleaving, default monitors,
    silencing adversary): the fault-free round-robin execution is frozen
    from step Q on — no state change and no decide event, verified
    concretely over a full task cycle — and the frozen state is closed under
    every crash pattern of at most [max_faults] processes, under {e both}
    preference resolutions, proven by the {!Reach} fixpoint
    ({!Reach.frozen}); moreover every initialized process has decided there,
    so [f-termination] holds at any lasso.

    Consequently any crash-only silencing schedule whose crashes all land at
    steps ≥ Q yields a run that provably terminates in a clean lasso with
    every crash delivered: the explorer can skip it without concrete
    execution, recording the same per-run counters the run would have
    produced. The certificate additionally reports whether every response
    buffer is empty at the frozen state ([buffers_empty]); when it is,
    post-Q {e network} deliveries are absorbed too — a drop/dup/delay finds
    an empty buffer (provably vacuous, no event, no waiver) and a partition
    can never block an output turn, so its begin/heal pair merely decorates
    the same clean lasso. Prune only on proven infeasibility: when any
    certificate step fails, the answer is [None] and everything runs
    concretely. *)

type cert = {
  quiescent_from : int;  (** The certified quiescence step Q. *)
  buffers_empty : bool;
      (** Every service response buffer is empty at the frozen state, so the
          certificate extends to post-Q omission and partition deliveries. *)
}

val clean_from :
  ?max_faults:int ->
  inputs:Ioa.Value.t list ->
  horizon:int ->
  Model.System.t ->
  cert option
(** The certificate, if one exists with Q < [horizon] (fault steps range
    over [0, horizon), so a later Q prunes nothing). [max_faults] defaults
    to 1 and must cover the explorer's maximum crash count. *)

val encode_cert : Buffer.t -> cert option -> unit
(** Cache serialization; negative results (no certificate) are encodable
    too — recomputing "nothing to prune" costs a full fixpoint. *)

val decode_cert : Codec.cursor -> cert option
(** Raises {!Codec.Corrupt} on malformed input. *)
