(* The symbolic face of the (n, f) parameter space.

   Every analyzer in this library runs at one concrete instantiation; this
   module supplies the two reductions that make a parameter sweep tractable
   and the fixpoint parameter-generic:

   - Process symmetry classes: processes are grouped by their probed
     behavioral hash ({!Structhash} — one bounded probe per process, so the
     classes are discovered by probing one representative behavior, not by
     trusting construction-site symmetry) refined by the seed input each
     process is initialized with. Members of one class are behaviorally
     interchangeable under the analysis' probe bound.

   - Canonical crash signatures: the f-capped crash powerset
     {F : |F| ≤ f} is quotiented by the classes. A signature is the vector
     (c_1, ..., c_k) of per-class crash counts under the linear constraints
     0 ≤ c_j ≤ |class_j| and Σ c_j ≤ f — the symbolic index set — and each
     signature is represented by its canonical failed set (the first c_j
     members of each class). [C(4,0)+C(4,1)+C(4,2) = 11] concrete sets
     collapse to 6 signatures for two classes of two at f = 2, and the gap
     widens binomially with n.

   The quotient is exact for class-respecting facts (a crash pattern and
   its class-preserving permutation drive behaviorally identical process
   sets); facts that embed process identities beyond the class relation
   (e.g. values carrying sender pids) may lose precision, never soundness,
   which is why the certificate layer ({!Cert}) always validates against
   concrete instantiation before anything is reported. *)

module System = Model.System
module Iset = Spec.Iset
module Value = Ioa.Value

type cls = { repr : int; members : int list }

(* The binary staircase convention every analysis defaults to
   ({!Reach.analyze}); classes must be refined by it because two
   behaviorally identical processes seeded with different inputs are not
   interchangeable. *)
let staircase_inputs n = List.init n (fun i -> Value.int (i mod 2))

let classes ?inputs (sys : System.t) =
  let n = Array.length sys.System.processes in
  let inputs =
    Array.of_list (match inputs with Some l -> l | None -> staircase_inputs n)
  in
  let h = Structhash.system sys in
  let tbl = Hashtbl.create 8 in
  for i = n - 1 downto 0 do
    let key =
      ( h.Structhash.procs.(i),
        if i < Array.length inputs then Some inputs.(i) else None )
    in
    let prev = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    Hashtbl.replace tbl key (i :: prev)
  done;
  Hashtbl.fold (fun _ members acc -> { repr = List.hd members; members } :: acc) tbl []
  |> List.sort (fun a b -> compare a.repr b.repr)

let signature classes failed =
  List.map
    (fun c -> List.length (List.filter (fun i -> Iset.mem i failed) c.members))
    classes

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let of_signature classes sg =
  List.fold_left2
    (fun acc c k -> List.fold_left (fun f i -> Iset.add i f) acc (take k c.members))
    Iset.empty classes sg

let canon classes failed = of_signature classes (signature classes failed)

(* All signatures under the linear constraints, ordered by total crash count
   then lexicographically — mirroring {!Reach.subsets}' deterministic
   unknown order, with the all-zero (failure-free) signature first. *)
let signatures classes ~max_faults =
  let sizes = List.map (fun c -> List.length c.members) classes in
  let rec vectors budget = function
    | [] -> [ [] ]
    | size :: rest ->
      List.concat_map
        (fun c -> List.map (fun v -> c :: v) (vectors (budget - c) rest))
        (List.init (min size budget + 1) Fun.id)
  in
  vectors (max 0 max_faults) sizes
  |> List.map (fun v -> List.fold_left ( + ) 0 v, v)
  |> List.sort compare
  |> List.map snd

let class_sets classes ~max_faults =
  List.map (of_signature classes) (signatures classes ~max_faults)

(* How many concrete failed sets each run of the symbolic system covers:
   a signature stands for Π_j C(|class_j|, c_j) concrete sets. *)
let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let r = ref 1 in
    for i = 0 to k - 1 do
      r := !r * (n - i) / (i + 1)
    done;
    !r
  end

let covered classes ~max_faults =
  let sizes = List.map (fun c -> List.length c.members) classes in
  let sgs = signatures classes ~max_faults in
  let full =
    List.fold_left
      (fun acc sg -> acc + List.fold_left2 (fun p n k -> p * binomial n k) 1 sizes sg)
      0 sgs
  in
  List.length sgs, full

let pp_cls ppf c =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    c.members

let pp_classes ppf cs =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_cls)
    cs
