(** Abstract configurations: the independent-attribute abstraction of
    {!Model.State.t}.

    Each component of the concrete state is abstracted separately — process
    program states and service object values by {!Vset}, each inv/resp
    buffer by a {!Vset} of whole-queue encodings paired with a length
    {!Interval} (the observable-buffer cardinality domain), decisions and
    inputs by an optional-value lattice. The [failed] set is deliberately
    absent: reachability ({!Reach}) indexes its constraint system by the
    failed set, the powerset-capped-by-f domain, so each abstract
    configuration describes the non-failure components only.

    The concretization of [St a] is the set of concrete states whose every
    component is described by the corresponding abstract component; [Bot]
    describes no state. An element of a failure-free G(C) vertex set (paper
    Fig. 3) concretizes from the solution at the ∅ unknown — see DESIGN.md. *)

type abuf = {
  items : Vset.t;  (** Whole queues, each encoded as a [Value.List]. *)
  len : Interval.t;  (** Queue length; kept exact while [items] is finite. *)
}

type asvc = { value : Vset.t; inv : abuf array; resp : abuf array }

type dopt = { may_none : bool; values : Vset.t }
(** Abstraction of ['a option]: [may_none] admits [None], [values] the
    possible payloads. *)

type st = {
  procs : Vset.t array;
  svcs : asvc array;
  decisions : dopt array;
  inputs : dopt array;
}

type t = Bot | St of st

include Domain.LATTICE with type t := t

val bot : t
val of_state : Model.State.t -> t
(** Exact singleton abstraction ([failed] dropped). *)

val buf_of_queue : Ioa.Value.t list -> abuf
val buf_make : items:Vset.t -> len:Interval.t -> abuf
(** Renormalizes: a finite [items] recomputes [len] as the hull of the
    concrete lengths. *)

val buf_top : len:Interval.t -> abuf

val dopt_none : dopt
val dopt_of : Ioa.Value.t option -> dopt
val dopt_leq : dopt -> dopt -> bool
val dopt_join : dopt -> dopt -> dopt

val permute_svcs : int array -> t -> t
(** Re-index the service slots onto a permuted service table: [perm.(j)]
    names the old position of the service now at [j]. The abstract state is
    positional (no identifiers inside), so this is the entire rename
    mapping the cache needs for stored fixpoint solutions. *)

val permute_procs : int array -> t -> t
(** Re-index the per-process slots onto a permuted pid space: [perm.(i)]
    names the old pid of the process now at [i]. Service inv/resp rows are
    permuted only when pid-indexed (length = process count); the caller
    owes class-respecting permutations otherwise. Used by the symmetry
    tests to transport facts between a canonical crash set and its
    permuted twins. *)
