module System = Model.System
module Service = Model.Service

(* ---- static vector assignment ------------------------------------------- *)

let termination_of (c : Service.t) =
  if Service.is_wait_free c then Gvector.Term_wait_free
  else Gvector.Term_crashes c.Service.resilience

let of_service (c : Service.t) : Gvector.t =
  let gname = c.Service.gtype.Spec.General_type.name in
  let base =
    match c.Service.cls with
    | Service.Register ->
      {
        Gvector.top with
        Gvector.order = Gvector.Ord_per_object;
        visibility = Gvector.Vis_oblivious;
        recency = Gvector.Rec_fresh;
        idem = Gvector.Dup_safe;
      }
    | Service.Atomic ->
      (* A single linearizable object: totally ordered, but replaying a
         consuming response (dequeue, test&set) changes its meaning. *)
      {
        Gvector.top with
        Gvector.order = Gvector.Ord_total;
        visibility = Gvector.Vis_oblivious;
        recency = Gvector.Rec_fresh;
        idem = Gvector.Dup_unsafe;
      }
    | Service.Oblivious ->
      let order =
        if String.equal gname "totally-ordered-broadcast" then Gvector.Ord_total
        else Gvector.Ord_none
      in
      {
        Gvector.top with
        Gvector.order;
        visibility = Gvector.Vis_oblivious;
        recency = Gvector.Rec_eventual;
        idem = Gvector.Dup_unsafe;
      }
    | Service.General ->
      let visibility, recency =
        if String.equal gname "eventually-perfect-fd" then
          Gvector.Vis_eventual, Gvector.Rec_eventual
        else Gvector.Vis_failures, Gvector.Rec_fresh
      in
      {
        Gvector.top with
        Gvector.order = Gvector.Ord_none;
        visibility;
        recency;
        idem = Gvector.Dup_safe;
      }
  in
  { base with Gvector.termination = termination_of c }

(* ---- composition -------------------------------------------------------- *)

(* Union-find over process ids; each service merges its endpoint set. The
   number of remaining components among 0..n-1 is the composed scope: > 1
   means no service spans the islands, so no cross-island coordination has a
   carrier (Theorem 2's situation in the k-set construction, §4). *)
let islands (sys : System.t) =
  let n = System.n_processes sys in
  if n = 0 then 0
  else begin
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    Array.iter
      (fun (c : Service.t) ->
        let eps = c.Service.endpoints in
        Array.iter (fun e -> if e < n && eps.(0) < n then union eps.(0) e) eps)
      sys.System.services;
    List.init n find |> List.sort_uniq Int.compare |> List.length
  end

(* The order component only constrains services that retain a sequential
   spec (the ones linearizability is checked against); a broadcast or
   detector without an object interface does not weaken the store's
   ordering. Vacuously total when no service carries a spec. *)
let seq_order (sys : System.t) =
  let rank = function
    | Gvector.Ord_none -> 0
    | Gvector.Ord_per_object -> 1
    | Gvector.Ord_total -> 2
  in
  Array.fold_left
    (fun acc (c : Service.t) ->
      match c.Service.seq with
      | None -> acc
      | Some _ ->
        let v = of_service c in
        if rank v.Gvector.order < rank acc then v.Gvector.order else acc)
    Gvector.Ord_total sys.System.services

let compose (sys : System.t) : Gvector.t =
  let v =
    Array.fold_left
      (fun acc c -> Gvector.meet acc (of_service c))
      Gvector.top sys.System.services
  in
  { v with Gvector.scope = islands sys; order = seq_order sys }

(* ---- registered claims and the gap pass --------------------------------- *)

type resilience = Crashes of int | Wait_free

type claim = {
  agreement : int option;
  termination : resilience option;
  linearizable : bool;
  scales : bool;
}

let no_claim = { agreement = None; termination = None; linearizable = false; scales = false }

type gap = { component : string; theorem : string; claimed : string; supported : string }

let pp_gap ppf g =
  Format.fprintf ppf "component %s: claimed %s, composition supports %s (%s)" g.component
    g.claimed g.supported g.theorem

let resilience_to_string = function
  | Crashes f -> Printf.sprintf "termination under %d crash(es)" f
  | Wait_free -> "wait-free termination"

let term_of_resilience = function
  | Crashes f -> Gvector.Term_crashes f
  | Wait_free -> Gvector.Term_wait_free

let gaps ~claim (sys : System.t) : gap list =
  let v = compose sys in
  let gs = ref [] in
  let add g = gs := g :: !gs in
  (match claim.agreement with
  | Some k when v.Gvector.scope > k ->
    add
      {
        component = "scope";
        theorem = "Thm 2: no service spans the islands, so cross-island agreement has no carrier";
        claimed = Printf.sprintf "%d-agreement" k;
        supported = Gvector.scope_to_string v.Gvector.scope;
      }
  | _ -> ());
  (match claim.termination with
  | Some r when not (Gvector.term_leq (term_of_resilience r) v.Gvector.termination) ->
    add
      {
        component = "termination";
        theorem =
          "Thm 9: the meet is pinned by the weakest service — boosting cannot raise it";
        claimed = resilience_to_string r;
        supported =
          Printf.sprintf "termination %s"
            (Gvector.termination_to_string v.Gvector.termination);
      }
  | _ -> ());
  if claim.linearizable && v.Gvector.order = Gvector.Ord_none then
    add
      {
        component = "order";
        theorem = "no service carries an ordered sequential interface";
        claimed = "linearizability";
        supported = Printf.sprintf "order %s" (Gvector.order_to_string v.Gvector.order);
      };
  List.rev !gs

(* A claim marked [scales] quantifies over all n; checking it at a probe
   size asks whether the typing still certifies the boost there. Thm 10's
   hypothesis: boosting carried by failure information needs a general
   service connected to every process. §6.3's 2-process construction
   satisfies it (the pairwise detector spans both processes); the same
   protocol at n ≥ 3 does not. *)
let scaling_gaps ~claim (probe : System.t) : gap list =
  match claim.termination with
  | None | Some (Crashes 0) -> []
  | Some r ->
    let n = System.n_processes probe in
    let t = match r with Wait_free -> n - 1 | Crashes t -> t in
    if t <= 0 then []
    else
      let oblivious_coordinator (c : Service.t) =
        (match c.Service.cls with
        | Service.Atomic | Service.Oblivious -> true
        | Service.Register | Service.General -> false)
        && Service.connected_to_all c ~n
        && (Service.is_wait_free c || c.Service.resilience >= t)
      in
      let visible_coordinator (c : Service.t) =
        (of_service c).Gvector.visibility = Gvector.Vis_failures
        && Service.connected_to_all c ~n
      in
      if
        Array.exists oblivious_coordinator probe.System.services
        || Array.exists visible_coordinator probe.System.services
      then []
      else
        [
          {
            component = "visibility";
            theorem =
              Printf.sprintf
                "Thm 10: at n=%d no failure-aware service is connected to every process, \
                 so the claimed boost has no certified carrier (§6.3 warrants it only \
                 where the detector spans all processes)"
                n;
            claimed = resilience_to_string r ^ " at every n";
            supported = "visibility carried by pairwise detectors only";
          };
        ]
