module Value = Ioa.Value
module System = Model.System
module Service = Model.Service
module Process = Model.Process
module Task = Model.Task

type incident = { code : string; subject : string; detail : string }

type outcome = {
  post : Astate.t;
  real : bool;
  dummy : bool;
  decides : (int * Value.t) list;
  decide_havoc : bool;
  incidents : incident list;
}

(* Mutable accumulator threaded through one task's combo enumeration. *)
type acc = {
  mutable posts : Astate.t;
  mutable fires : bool;
  mutable dec : (int * Value.t) list;
  mutable dec_havoc : bool;
  mutable incs : incident list;
}

let acc () = { posts = Astate.Bot; fires = false; dec = []; dec_havoc = false; incs = [] }

let incident acc code subject detail =
  if not (List.exists (fun i -> String.equal i.code code && String.equal i.subject subject) acc.incs)
  then acc.incs <- { code; subject; detail } :: acc.incs

let emit acc post =
  acc.fires <- true;
  acc.posts <- Astate.join acc.posts post

let set_arr a i x =
  let a = Array.copy a in
  a.(i) <- x;
  a

let rec last = function [] -> None | [ x ] -> Some x | _ :: rest -> last rest

(* Call a concrete relation twice; a mismatch between the calls breaks the
   §3.1 determinism assumption (the exact engine always takes the first
   choice of a *stable* relation). *)
let probe2 acc ~raise_code ~nondet_code ~subject ~equal f =
  match f () with
  | exception e ->
    incident acc raise_code subject (Printexc.to_string e);
    None
  | r1 ->
    (match f () with
    | exception e -> incident acc nondet_code subject ("second call raised: " ^ Printexc.to_string e)
    | r2 ->
      if not (equal r1 r2) then
        incident acc nondet_code subject "two calls on the same state disagreed");
    Some r1

let proc_outcome_equal o1 o2 =
  match o1, o2 with
  | Process.Internal a, Process.Internal b -> Value.equal a b
  | Process.Decide { value = v1; next = n1 }, Process.Decide { value = v2; next = n2 } ->
    Value.equal v1 v2 && Value.equal n1 n2
  | ( Process.Invoke { service = s1; op = op1; next = n1 },
      Process.Invoke { service = s2; op = op2; next = n2 } ) ->
    String.equal s1 s2 && Value.equal op1 op2 && Value.equal n1 n2
  | _ -> false

let rmap_equal r1 r2 =
  List.equal
    (fun (j1, rs1) (j2, rs2) -> j1 = j2 && List.equal Value.equal rs1 rs2)
    r1 r2

let delta_head_equal d1 d2 =
  (* The determinized semantics only ever takes the head (§3.1). *)
  match d1, d2 with
  | [], [] -> true
  | (r1, v1) :: _, (r2, v2) :: _ -> rmap_equal r1 r2 && Value.equal v1 v2
  | _ -> false

(* --- buffer operations on the abstract encodings --- *)

let buf_push ab v =
  let items = Vset.map (fun q -> Value.list (Value.to_list q @ [ v ])) ab.Astate.items in
  Astate.buf_make ~items ~len:(Interval.add ab.Astate.len 1)

let buf_push_resp ~coalesce ab r =
  let push q =
    let ql = Value.to_list q in
    if coalesce && (match last ql with Some t -> Value.equal t r | None -> false) then q
    else Value.list (ql @ [ r ])
  in
  let items = Vset.map push ab.Astate.items in
  let len =
    if coalesce then Interval.stretch ab.Astate.len 1 else Interval.add ab.Astate.len 1
  in
  Astate.buf_make ~items ~len

let buf_pop_top ab =
  Astate.buf_top ~len:(Interval.pred ab.Astate.len)

(* A buffer that may receive any responses: contents unknown, length only
   bounded below. *)
let buf_havoc_push ab =
  match ab.Astate.len with
  | Interval.Bot -> Astate.buf_top ~len:(Interval.unbounded 0)
  | Interval.Range (lo, _) -> Astate.buf_top ~len:(Interval.Range (lo, Interval.Inf))

let svc_subject (c : Service.t) = "service " ^ c.Service.id
let proc_subject i = Printf.sprintf "process %d" i

(* Apply a concrete response map to an abstract service, mirroring
   [System.apply_response_map]. *)
let apply_rmap acc (c : Service.t) (asvc : Astate.asvc) rmap =
  List.fold_left
    (fun asvc_opt (j, rs) ->
      match asvc_opt with
      | None -> None
      | Some (asvc : Astate.asvc) -> (
        match Service.endpoint_pos c j with
        | None ->
          incident acc "resp-non-endpoint" (svc_subject c)
            (Printf.sprintf "δ maps a response to process %d, not an endpoint" j);
          None
        | Some rpos ->
          let rb =
            List.fold_left
              (fun rb r -> buf_push_resp ~coalesce:c.Service.coalesce rb r)
              asvc.Astate.resp.(rpos) rs
          in
          Some { asvc with Astate.resp = set_arr asvc.Astate.resp rpos rb }))
    (Some asvc) rmap

(* Every endpoint's resp buffer may be written when the response map is
   unknown. *)
let havoc_all_resp (asvc : Astate.asvc) =
  { asvc with Astate.resp = Array.map buf_havoc_push asvc.Astate.resp }

(* --- per-task transfers --- *)

let proc_task sys acc (st : Astate.st) i =
  let p = sys.System.processes.(i) in
  match st.Astate.procs.(i) with
  | Vset.Top ->
    acc.dec_havoc <- true;
    let d = st.Astate.decisions.(i) in
    emit acc
      (Astate.St
         {
           st with
           Astate.procs = set_arr st.Astate.procs i Vset.top;
           decisions =
             set_arr st.Astate.decisions i
               { Astate.may_none = d.Astate.may_none; values = Vset.top };
         })
  | Vset.Set vs ->
    List.iter
      (fun v ->
        match
          probe2 acc ~raise_code:"non-total-step" ~nondet_code:"nondet-step"
            ~subject:(proc_subject i) ~equal:proc_outcome_equal
            (fun () -> p.Process.step v)
        with
        | None -> ()
        | Some (Process.Internal next) ->
          emit acc (Astate.St { st with Astate.procs = set_arr st.Astate.procs i (Vset.singleton next) })
        | Some (Process.Decide { value; next }) ->
          acc.dec <- (i, value) :: acc.dec;
          let d = st.Astate.decisions.(i) in
          let d' =
            {
              Astate.may_none = false;
              values =
                Vset.join d.Astate.values
                  (if d.Astate.may_none then Vset.singleton value else Vset.bot);
            }
          in
          emit acc
            (Astate.St
               {
                 st with
                 Astate.procs = set_arr st.Astate.procs i (Vset.singleton next);
                 decisions = set_arr st.Astate.decisions i d';
               })
        | Some (Process.Invoke { service; op; next }) -> (
          match System.service_pos sys service with
          | exception Invalid_argument msg ->
            incident acc "unknown-service" (proc_subject i) msg
          | svc -> (
            let c = sys.System.services.(svc) in
            match Service.endpoint_pos c i with
            | None ->
              incident acc "invoke-non-endpoint" (proc_subject i)
                (Printf.sprintf "invokes %s without being one of its endpoints" service)
            | Some pos ->
              let asvc = st.Astate.svcs.(svc) in
              let asvc' =
                { asvc with Astate.inv = set_arr asvc.Astate.inv pos (buf_push asvc.Astate.inv.(pos) op) }
              in
              emit acc
                (Astate.St
                   {
                     st with
                     Astate.procs = set_arr st.Astate.procs i (Vset.singleton next);
                     svcs = set_arr st.Astate.svcs svc asvc';
                   }))))
      vs

let probe_delta acc (c : Service.t) ~what f =
  match
    probe2 acc ~raise_code:"delta-raised" ~nondet_code:"nondet-delta" ~subject:(svc_subject c)
      ~equal:delta_head_equal f
  with
  | None -> None
  | Some [] ->
    incident acc "empty-delta" (svc_subject c)
      (Printf.sprintf "%s relation empty (totality violation, §3.1)" what);
    None
  | Some (head :: _) -> Some head

let perform_task sys acc (st : Astate.st) ~failed ~svc ~endpoint:i =
  let c = sys.System.services.(svc) in
  let pos = Option.get (Service.endpoint_pos c i) in
  let asvc = st.Astate.svcs.(svc) in
  let failed_c = Service.failed_endpoints c failed in
  let inv = asvc.Astate.inv.(pos) in
  match Vset.elements inv.Astate.items, Vset.elements asvc.Astate.value with
  | Some qs, Some vs ->
    List.iter
      (fun qv ->
        match Value.to_list qv with
        | [] -> ()
        | a :: rest ->
          List.iter
            (fun v ->
              match
                probe_delta acc c ~what:"delta_inv" (fun () ->
                    c.Service.gtype.Spec.General_type.delta_inv a i v ~failed:failed_c)
              with
              | None -> ()
              | Some (rmap, value') -> (
                let asvc' =
                  {
                    asvc with
                    Astate.value = Vset.singleton value';
                    inv = set_arr asvc.Astate.inv pos (Astate.buf_of_queue rest);
                  }
                in
                match apply_rmap acc c asvc' rmap with
                | None -> ()
                | Some asvc' ->
                  emit acc (Astate.St { st with Astate.svcs = set_arr st.Astate.svcs svc asvc' })))
            vs)
      qs
  | _ ->
    (* Unknown queue or object value: the pop, the new value and the
       response map are all unknown — unless the queue is provably empty,
       in which case the real action cannot fire at all. *)
    let may_nonempty =
      match Vset.elements inv.Astate.items with
      | Some qs -> List.exists (fun q -> Value.to_list q <> []) qs
      | None -> true
    in
    if may_nonempty then begin
      let asvc' =
        havoc_all_resp
          {
            asvc with
            Astate.value = Vset.top;
            inv = set_arr asvc.Astate.inv pos (buf_pop_top inv);
          }
      in
      emit acc (Astate.St { st with Astate.svcs = set_arr st.Astate.svcs svc asvc' })
    end

let output_task sys acc (st : Astate.st) ~svc ~endpoint:i =
  let c = sys.System.services.(svc) in
  let pos = Option.get (Service.endpoint_pos c i) in
  let asvc = st.Astate.svcs.(svc) in
  let p = sys.System.processes.(i) in
  let rb = asvc.Astate.resp.(pos) in
  match Vset.elements rb.Astate.items with
  | None ->
    let asvc' = { asvc with Astate.resp = set_arr asvc.Astate.resp pos (buf_pop_top rb) } in
    emit acc
      (Astate.St
         {
           st with
           Astate.procs = set_arr st.Astate.procs i Vset.top;
           svcs = set_arr st.Astate.svcs svc asvc';
         })
  | Some qs ->
    List.iter
      (fun qv ->
        match Value.to_list qv with
        | [] -> ()
        | b :: rest ->
          let asvc' =
            { asvc with Astate.resp = set_arr asvc.Astate.resp pos (Astate.buf_of_queue rest) }
          in
          let with_proc pv' =
            emit acc
              (Astate.St
                 {
                   st with
                   Astate.procs = set_arr st.Astate.procs i pv';
                   svcs = set_arr st.Astate.svcs svc asvc';
                 })
          in
          (match st.Astate.procs.(i) with
          | Vset.Top -> with_proc Vset.top
          | Vset.Set pvs ->
            List.iter
              (fun pv ->
                match p.Process.on_response pv ~service:c.Service.id b with
                | exception e ->
                  incident acc "on-response-raised" (proc_subject i) (Printexc.to_string e)
                | pv' -> with_proc (Vset.singleton pv'))
              pvs))
      qs

let compute_task sys acc (st : Astate.st) ~failed ~svc ~glob =
  let c = sys.System.services.(svc) in
  let asvc = st.Astate.svcs.(svc) in
  let failed_c = Service.failed_endpoints c failed in
  match Vset.elements asvc.Astate.value with
  | None ->
    let asvc' = havoc_all_resp { asvc with Astate.value = Vset.top } in
    emit acc (Astate.St { st with Astate.svcs = set_arr st.Astate.svcs svc asvc' })
  | Some vs ->
    List.iter
      (fun v ->
        match
          probe_delta acc c ~what:"delta_glob" (fun () ->
              c.Service.gtype.Spec.General_type.delta_glob glob v ~failed:failed_c)
        with
        | None -> ()
        | Some (rmap, value') -> (
          let asvc' = { asvc with Astate.value = Vset.singleton value' } in
          match apply_rmap acc c asvc' rmap with
          | None -> ()
          | Some asvc' ->
            emit acc (Astate.St { st with Astate.svcs = set_arr st.Astate.svcs svc asvc' })))
      vs

let task sys ~failed (a : Astate.t) (tk : Task.t) =
  let dummy =
    match tk with
    | Task.Proc i -> Spec.Iset.mem i failed
    | Task.Svc_perform { svc; endpoint } | Task.Svc_output { svc; endpoint } ->
      System.dummy_io_enabled sys.System.services.(svc) failed endpoint
    | Task.Svc_compute { svc; _ } -> System.dummy_compute_enabled sys.System.services.(svc) failed
  in
  match a with
  | Astate.Bot ->
    { post = Astate.Bot; real = false; dummy; decides = []; decide_havoc = false; incidents = [] }
  | Astate.St st ->
    let acc = acc () in
    (match tk with
    | Task.Proc i -> if not (Spec.Iset.mem i failed) then proc_task sys acc st i
    | Task.Svc_perform { svc; endpoint } -> perform_task sys acc st ~failed ~svc ~endpoint
    | Task.Svc_output { svc; endpoint } -> output_task sys acc st ~svc ~endpoint
    | Task.Svc_compute { svc; glob } -> compute_task sys acc st ~failed ~svc ~glob);
    {
      post = acc.posts;
      real = acc.fires;
      dummy;
      decides = List.sort_uniq (fun (i, v) (j, w) -> if i <> j then compare i j else Value.compare v w) acc.dec;
      decide_havoc = acc.dec_havoc;
      incidents = List.rev acc.incs;
    }
