module Value = Ioa.Value
module System = Model.System
module Service = Model.Service

type severity = Error | Warning | Info

type finding = { code : string; severity : severity; subject : string; detail : string }

type report = { findings : finding list; reach : Reach.t; interference : Interfere.t }

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_finding a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.subject b.subject

let analyze ?max_faults ?inputs ?(gaps = []) ?reach ?interference (sys : System.t) =
  (* [?reach] lets the cache substitute a restored fixpoint solution for the
     solve; the caller owes a solution computed for this system (or one
     behaviorally identical under its key) at the same [max_faults]. Same
     contract for [?interference] (cached footprints rehydrated through
     {!Interfere.of_footprints}). *)
  let r = match reach with Some r -> r | None -> Reach.analyze ?max_faults ?inputs sys in
  let interference =
    match interference with
    | Some itf -> itf
    | None -> Interfere.analyze ~reach:r ?max_crashes:max_faults sys
  in
  let fs = ref [] in
  let add code severity subject detail = fs := { code; severity; subject; detail } :: !fs in
  (* Guarantee-vector typing: the registered claim exceeds the meet of the
     services' vectors. Info, not a defect — for the boosting protocols the
     gap is the point (the static face of the Thm 2/9/10 refutation). *)
  List.iter
    (fun (g : Guarantee.gap) ->
      add "guarantee-gap" Info
        (Printf.sprintf "component %s" g.Guarantee.component)
        (Printf.sprintf "claimed %s, composition supports %s — %s" g.Guarantee.claimed
           g.Guarantee.supported g.Guarantee.theorem))
    gaps;
  (* Write-write/write-read conflicts between tasks that can never share a
     participant: a would-be Lemma 8 violation surfaced statically. *)
  List.iter
    (fun (race : Interfere.race) ->
      add "static-race" Warning
        (Format.asprintf "tasks %a / %a" Model.Task.pp race.Interfere.e Model.Task.pp
           race.Interfere.e')
        (Format.asprintf
           "share written component %a without a shared participant (Lemma 8 gives no \
            commutation discipline for the pair)"
           Footprint.pp_component race.Interfere.component))
    (Interfere.races interference);
  (* §3.1 assumption breaches and endpoint-discipline bugs surfaced by the
     transfer probes. *)
  List.iter
    (fun (i : Transfer.incident) -> add i.Transfer.code Error i.Transfer.subject i.Transfer.detail)
    r.Reach.incidents;
  (* Statically blank: no decide event reachable failure-free. Subsumes the
     per-process dead-decide findings. *)
  if Reach.proven_blank r then
    add "blank-protocol" Error "protocol"
      "no decide event is reachable in any failure-free execution (statically Blank)"
  else
    List.iter
      (fun i ->
        add "dead-decide" Warning
          (Printf.sprintf "process %d" i)
          "provably never emits a decide event in any failure-free execution")
      (Reach.never_decides r);
  (* Tasks whose real action never fires in any analyzed context. *)
  List.iter
    (fun (_, tk) ->
      add "dead-task" Info
        (Format.asprintf "task %a" Model.Task.pp tk)
        "real action fires in no analyzed context (dead or unreachable transition)")
    (Reach.dead_tasks r);
  (* Resilience-interface checks (static metadata, always exact). *)
  let n = System.n_processes sys in
  Array.iter
    (fun (c : Service.t) ->
      let subject = "service " ^ c.Service.id in
      let m = Array.length c.Service.endpoints in
      if c.Service.resilience >= m then
        add "over-resilient" Warning subject
          (Printf.sprintf "resilience f=%d ≥ %d endpoints: the silencing threshold is unattainable"
             c.Service.resilience m)
      else if Service.is_wait_free c && c.Service.cls <> Service.Register then
        add "wait-free-claim" Info subject
          (Printf.sprintf
             "f=%d ≥ |J|−1=%d: wait-free, i.e. effectively reliable (§2.1.3) — boosting results do not apply to it"
             c.Service.resilience (m - 1));
      if not (Service.connected_to_all c ~n) then
        add "not-connected-to-all" Info subject
          "not connected to every process (Theorem 10 assumes fully connected general services)")
    sys.System.services;
  (* Decisions outside the proposed inputs: a validity risk when provable
     on both sides. *)
  (match (Reach.seed_info r).Reach.astate with
  | Astate.Bot -> ()
  | Astate.St st ->
    let all_inputs =
      Array.fold_left
        (fun acc (d : Astate.dopt) ->
          match acc with
          | None -> None
          | Some vs -> if d.Astate.may_none then None else (
            match Vset.elements d.Astate.values with
            | None -> None
            | Some es -> Some (es @ vs)))
        (Some []) st.Astate.inputs
    in
    match all_inputs, Vset.elements (Reach.may_decided_values r) with
    | Some inputs, Some decided ->
      List.iter
        (fun v ->
          if not (List.exists (Value.equal v) inputs) then
            add "decide-outside-inputs" Info
              (Format.asprintf "value %a" Value.pp v)
              "may be decided although no process proposed it (potential validity violation)")
        decided
    | _ -> ());
  { findings = List.sort_uniq compare_finding !fs; reach = r; interference }

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let pp_severity ppf s = Format.pp_print_string ppf (severity_name s)

let pp_finding ppf f =
  Format.fprintf ppf "%a[%s] %s: %s" pp_severity f.severity f.code f.subject f.detail

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) r.findings;
  Format.fprintf ppf "%a@," Interfere.pp_summary r.interference;
  Format.fprintf ppf "%d finding(s); crashes %a; fixpoint in %d iteration(s), %d widening(s)@]"
    (List.length r.findings) Interval.pp
    (Reach.crash_interval r.reach)
    r.reach.Reach.stats.Fixpoint.iterations r.reach.Reach.stats.Fixpoint.widenings

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_finding ~protocol f =
  Printf.sprintf
    {|{"protocol":"%s","severity":"%s","rule":"%s","subject":"%s","message":"%s"}|}
    (json_escape protocol) (severity_name f.severity) (json_escape f.code)
    (json_escape f.subject) (json_escape f.detail)

let exit_code r =
  if List.exists (fun f -> f.severity <> Info) r.findings then 1 else 0

(* Artifact ordering: (protocol, severity, code, subject) — a total, input-
   order-independent sort, so the `lint --all --json` artifact is diff-stable
   across parallel runs and cache replays. *)
let sort_for_artifact pairs =
  List.stable_sort
    (fun (p1, f1) (p2, f2) ->
      let c = String.compare p1 p2 in
      if c <> 0 then c else compare_finding f1 f2)
    pairs

(* --- cache serialization --- *)

let severity_tag = function Error -> 0 | Warning -> 1 | Info -> 2

let severity_of_tag = function
  | 0 -> Error
  | 1 -> Warning
  | 2 -> Info
  | n -> raise (Codec.Corrupt (Printf.sprintf "bad severity tag %d" n))

let encode_findings b findings =
  Codec.int_out b (List.length findings);
  List.iter
    (fun f ->
      Codec.int_out b (severity_tag f.severity);
      Codec.string_out b f.code;
      Codec.string_out b f.subject;
      Codec.string_out b f.detail)
    findings

let decode_findings c =
  let n = Codec.int_in c in
  if n < 0 then raise (Codec.Corrupt "negative finding count");
  List.init n (fun _ ->
      let severity = severity_of_tag (Codec.int_in c) in
      let code = Codec.string_in c in
      let subject = Codec.string_in c in
      let detail = Codec.string_in c in
      { code; severity; subject; detail })
