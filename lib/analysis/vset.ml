module Value = Ioa.Value

type t = Top | Set of Value.t list

let cap = 24
let bot = Set []
let top = Top
let is_bot = function Set [] -> true | _ -> false
let is_top = function Top -> true | _ -> false
let singleton v = Set [ v ]

let norm vs = if List.length vs > cap then Top else Set vs

let of_list vs = norm (List.sort_uniq Value.compare vs)

let rec insert v = function
  | [] -> [ v ]
  | x :: rest as l ->
    let c = Value.compare v x in
    if c < 0 then v :: l else if c = 0 then l else x :: insert v rest

let add v = function Top -> Top | Set vs -> norm (insert v vs)
let mem v = function Top -> true | Set vs -> List.exists (Value.equal v) vs
let elements = function Top -> None | Set vs -> Some vs
let cardinal = function Top -> None | Set vs -> Some (List.length vs)

let rec union a b =
  match a, b with
  | [], l | l, [] -> l
  | x :: xs, y :: ys ->
    let c = Value.compare x y in
    if c < 0 then x :: union xs b else if c > 0 then y :: union a ys else x :: union xs ys

let leq a b =
  match a, b with
  | _, Top -> true
  | Top, Set _ -> false
  | Set xs, Set ys -> List.for_all (fun x -> List.exists (Value.equal x) ys) xs

let join a b =
  match a, b with Top, _ | _, Top -> Top | Set xs, Set ys -> norm (union xs ys)

let widen = join

let equal a b =
  match a, b with
  | Top, Top -> true
  | Set xs, Set ys -> List.equal Value.equal xs ys
  | _ -> false

let map f = function Top -> Top | Set vs -> of_list (List.map f vs)

let concat_map f = function
  | Top -> Top
  | Set vs ->
    List.fold_left
      (fun acc v -> match acc with Top -> Top | _ -> join acc (f v))
      bot vs

let pp ppf = function
  | Top -> Format.fprintf ppf "⊤"
  | Set vs ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") Value.pp)
      vs
