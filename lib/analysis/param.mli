(** Symbolic (n, f) parameter structure: process symmetry classes and
    canonical crash signatures.

    The crash adversary's index set — failed sets [F] with [|F| ≤ f] — is
    quotiented by behavioral symmetry classes discovered by probing
    ({!Structhash}'s per-process semantic hash, refined by each process's
    seed input). A {e signature} is the per-class crash-count vector under
    the linear constraints [0 ≤ c_j ≤ |class_j|] and [Σ c_j ≤ f]; each
    signature's canonical representative failed set crashes the first [c_j]
    members of each class. {!Reach.analyze_sym} solves one unknown per
    signature instead of one per concrete subset.

    The quotient is exact for class-respecting facts; analyses whose values
    embed raw process identities (e.g. sender pids) may lose precision at
    the quotient, never soundness — certificates ({!Cert}) are therefore
    always validated against concrete instantiation. *)

type cls = {
  repr : int;  (** Least member: the representative probed for the class. *)
  members : int list;  (** Ascending pids. *)
}

val staircase_inputs : int -> Ioa.Value.t list
(** The binary staircase seed convention ([i mod 2]) every analysis
    defaults to. *)

val classes : ?inputs:Ioa.Value.t list -> Model.System.t -> cls list
(** Symmetry classes of [sys]'s processes: grouped by per-process semantic
    behavioral hash × seed input, sorted by representative. [inputs]
    defaults to the staircase convention. *)

val signature : cls list -> Spec.Iset.t -> int list
(** Per-class crash counts of a failed set. *)

val canon : cls list -> Spec.Iset.t -> Spec.Iset.t
(** The canonical failed set sharing [failed]'s signature: the first
    [c_j] members of each class. *)

val class_sets : cls list -> max_faults:int -> Spec.Iset.t list
(** Canonical failed sets of every signature within the fault budget,
    ordered by total crash count then lexicographically — the empty set
    first. *)

val covered : cls list -> max_faults:int -> int * int
(** [(canonical, full)]: how many signatures the symbolic system solves
    versus how many concrete failed sets they stand for
    (Π_j C(|class_j|, c_j) summed over signatures). *)

val pp_classes : Format.formatter -> cls list -> unit
