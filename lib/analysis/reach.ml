module Value = Ioa.Value
module Iset = Spec.Iset
module System = Model.System

type info = {
  failed : Iset.t;
  astate : Astate.t;
  decides : (int * Value.t) list;
  decide_havoc : bool;
  real : bool array;
}

type t = {
  sys : System.t;
  max_faults : int;
  infos : info array;
  incidents : Transfer.incident list;
  stats : Fixpoint.stats;
}

module FP = Fixpoint.Make (Astate)
module IMap = Map.Make (Iset)

(* All F0 ∪ S with S drawn from the non-seed pids, |S| ≤ extra; seed first,
   then by size, then lexicographic — a deterministic unknown order. *)
let subsets ~n ~seed ~extra =
  let free = List.filter (fun i -> not (Iset.mem i seed)) (List.init n Fun.id) in
  let rec choose k lst =
    if k = 0 then [ [] ]
    else
      match lst with
      | [] -> []
      | x :: rest -> List.map (fun c -> x :: c) (choose (k - 1) rest) @ choose k rest
  in
  List.concat_map
    (fun k -> List.map (fun s -> List.fold_left (fun f i -> Iset.add i f) seed s) (choose k free))
    (List.init (extra + 1) Fun.id)

(* Post-fixpoint fact pass: rerun each transfer once against a solution to
   harvest firing, decide and incident facts. Factored out of [solve] so a
   cached solution can be rehydrated into a full [t] without re-running the
   fixpoint — the facts are one transfer sweep, the fixpoint is many. *)
let harvest ~max_faults ~fsets ~values ~stats (sys : System.t) =
  let tasks = sys.System.tasks in
  let incidents = ref [] in
  let note inc =
    if
      not
        (List.exists
           (fun (i : Transfer.incident) ->
             String.equal i.Transfer.code inc.Transfer.code
             && String.equal i.Transfer.subject inc.Transfer.subject)
           !incidents)
    then incidents := inc :: !incidents
  in
  let infos =
    Array.mapi
      (fun u f ->
        let decides = ref [] in
        let decide_havoc = ref false in
        let real =
          Array.map
            (fun tk ->
              let o = Transfer.task sys ~failed:f values.(u) tk in
              List.iter note o.Transfer.incidents;
              decides := o.Transfer.decides @ !decides;
              if o.Transfer.decide_havoc then decide_havoc := true;
              o.Transfer.real)
            tasks
        in
        {
          failed = f;
          astate = values.(u);
          decides =
            List.sort_uniq
              (fun (i, v) (j, w) -> if i <> j then compare i j else Value.compare v w)
              !decides;
          decide_havoc = !decide_havoc;
          real;
        })
      fsets
  in
  { sys; max_faults; infos; incidents = List.rev !incidents; stats }

(* The solver core shared by the concrete and symbolic index sets: the
   caller owes the unknown array (seed at index 0) plus its crash-edge
   predecessors and dependents; the rhs and harvest are identical. *)
let solve_over ~max_faults ~seed_astate ~fsets ~crash_preds ~dependents (sys : System.t) =
  let nu = Array.length fsets in
  let tasks = sys.System.tasks in
  let rhs ~get u =
    let contrib = if u = 0 then seed_astate else Astate.Bot in
    let contrib =
      List.fold_left (fun a p -> Astate.join a (get p)) contrib crash_preds.(u)
    in
    let here = get u in
    Array.fold_left
      (fun a tk -> Astate.join a (Transfer.task sys ~failed:fsets.(u) here tk).Transfer.post)
      contrib tasks
  in
  let values, stats =
    FP.solve ~n:nu ~bot:Astate.Bot ~rhs ~dependents:(fun u -> dependents.(u)) ()
  in
  harvest ~max_faults ~fsets ~values ~stats sys

let solve ~max_faults ~seed_failed ~seed_astate (sys : System.t) =
  let n = Array.length sys.System.processes in
  let fsets = Array.of_list (subsets ~n ~seed:seed_failed ~extra:max_faults) in
  let index = Array.to_seq fsets |> Seq.mapi (fun i f -> f, i) |> IMap.of_seq in
  let crash_preds =
    Array.map
      (fun f ->
        Iset.elements (Iset.diff f seed_failed)
        |> List.map (fun i -> IMap.find (Iset.remove i f) index))
      fsets
  in
  let dependents =
    Array.mapi
      (fun u f ->
        let supers =
          if Iset.cardinal (Iset.diff f seed_failed) >= max_faults then []
          else
            List.filter_map
              (fun i -> if Iset.mem i f then None else IMap.find_opt (Iset.add i f) index)
              (List.init n Fun.id)
        in
        u :: supers)
      fsets
  in
  solve_over ~max_faults ~seed_astate ~fsets ~crash_preds ~dependents sys

let default_inputs (sys : System.t) =
  List.init (Array.length sys.System.processes) (fun i -> Value.int (i mod 2))

let analyze ?(max_faults = 1) ?inputs (sys : System.t) =
  let inputs = match inputs with Some l -> l | None -> default_inputs sys in
  let start = System.initialize sys inputs in
  solve ~max_faults ~seed_failed:Iset.empty ~seed_astate:(Astate.of_state start) sys

(* Symbolic mode: one unknown per crash signature ({!Param}), represented
   by its canonical prefix-crashed failed set. Crash edges remove one
   prefix member per class and land on the canonical set of the reduced
   signature (non-canonical removals fold onto it via [Param.canon]); the
   signature lattice is closed under both directions, so every predecessor
   and dependent lookup resolves inside the index. The quotient may lose
   precision on pid-embedding values, never soundness — see param.ml; the
   certificate layer validates concretely. *)
let analyze_sym ?(max_faults = 1) ?inputs ?classes (sys : System.t) =
  let inputs = match inputs with Some l -> l | None -> default_inputs sys in
  let classes =
    match classes with Some c -> c | None -> Param.classes ~inputs sys
  in
  let start = System.initialize sys inputs in
  let fsets = Array.of_list (Param.class_sets classes ~max_faults) in
  let index = Array.to_seq fsets |> Seq.mapi (fun i f -> f, i) |> IMap.of_seq in
  let crash_preds =
    Array.map
      (fun f ->
        Iset.elements f
        |> List.filter_map (fun i ->
               IMap.find_opt (Param.canon classes (Iset.remove i f)) index)
        |> List.sort_uniq compare)
      fsets
  in
  let dependents =
    Array.mapi
      (fun u f ->
        let supers =
          if Iset.cardinal f >= max_faults then []
          else
            List.filter_map
              (fun (c : Param.cls) ->
                match
                  List.find_opt (fun i -> not (Iset.mem i f)) c.Param.members
                with
                | Some i -> IMap.find_opt (Iset.add i f) index
                | None -> None)
              classes
        in
        u :: supers)
      fsets
  in
  solve_over ~max_faults ~seed_astate:(Astate.of_state start) ~fsets ~crash_preds
    ~dependents sys

let analyze_from ?(max_faults = 1) (state : Model.State.t) (sys : System.t) =
  solve ~max_faults ~seed_failed:state.Model.State.failed
    ~seed_astate:(Astate.of_state state) sys

let seed_info t = t.infos.(0)

let may_decisions t ~i =
  match (seed_info t).astate with
  | Astate.Bot -> { Astate.may_none = true; values = Vset.bot }
  | Astate.St st -> st.Astate.decisions.(i)

let may_decided_values t =
  match (seed_info t).astate with
  | Astate.Bot -> Vset.bot
  | Astate.St st ->
    Array.fold_left (fun a (d : Astate.dopt) -> Vset.join a d.Astate.values) Vset.bot
      st.Astate.decisions

let proven_blank t =
  let s = seed_info t in
  s.decides = [] && not s.decide_havoc

let never_decides t =
  let s = seed_info t in
  if s.decide_havoc then []
  else
    List.filter
      (fun i -> not (List.exists (fun (j, _) -> j = i) s.decides))
      (List.init (Array.length t.sys.System.processes) Fun.id)

let dead_tasks t =
  let tasks = t.sys.System.tasks in
  List.filter_map
    (fun ti ->
      if Array.exists (fun inf -> inf.real.(ti)) t.infos then None else Some (ti, tasks.(ti)))
    (List.init (Array.length tasks) Fun.id)

let crash_interval t =
  Interval.hull (Array.to_list (Array.map (fun inf -> Iset.cardinal inf.failed) t.infos))

let frozen t =
  let a0 = (seed_info t).astate in
  Array.for_all
    (fun inf -> Astate.leq inf.astate a0 && inf.decides = [] && not inf.decide_havoc)
    t.infos

(* --- cache serialization ---

   Only the fixpoint *solution* is persisted — the per-unknown failed sets
   and abstract states plus the solver statistics. Decides, incidents and
   firing facts are rebuilt by the (cheap) [harvest] sweep against the
   current system, so a solution restored through a service permutation
   renders facts in the new system's own task order and positions. *)

type solution = {
  s_max_faults : int;
  s_failed : Iset.t array;
  s_astates : Astate.t array;
  s_stats : Fixpoint.stats;
}

let solution_of t =
  {
    s_max_faults = t.max_faults;
    s_failed = Array.map (fun inf -> inf.failed) t.infos;
    s_astates = Array.map (fun inf -> inf.astate) t.infos;
    s_stats = t.stats;
  }

let of_solution (sys : System.t) sol =
  harvest ~max_faults:sol.s_max_faults ~fsets:sol.s_failed ~values:sol.s_astates
    ~stats:sol.s_stats sys

let encode_solution b sol =
  Codec.int_out b sol.s_max_faults;
  Codec.int_out b sol.s_stats.Fixpoint.iterations;
  Codec.int_out b sol.s_stats.Fixpoint.widenings;
  Codec.array_out b Codec.iset_out sol.s_failed;
  Codec.array_out b Codec.astate_out sol.s_astates

let decode_solution c =
  let s_max_faults = Codec.int_in c in
  let iterations = Codec.int_in c in
  let widenings = Codec.int_in c in
  let s_failed = Codec.array_in c Codec.iset_in in
  let s_astates = Codec.array_in c Codec.astate_in in
  if Array.length s_failed <> Array.length s_astates then
    raise (Codec.Corrupt "solution arity mismatch");
  { s_max_faults; s_failed; s_astates; s_stats = { Fixpoint.iterations; widenings } }
