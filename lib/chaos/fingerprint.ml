type key = {
  cursor : int;
  obs : int;
  state : Model.State.t;
}

let key ~cursor exec =
  { cursor; obs = Model.Exec.obs_fingerprint exec; state = Model.Exec.last_state exec }

let equal a b =
  a.cursor = b.cursor && a.obs = b.obs && Model.State.equal a.state b.state

let hash k =
  let prime = 0x100000001b3 in
  let combine h x = (h lxor x) * prime in
  combine (combine (combine 0x9e3779b9 k.cursor) k.obs) (Model.State.fingerprint k.state)
  land max_int

let pp ppf k =
  Format.fprintf ppf "cursor %d, obs %#x, state fp %#x" k.cursor k.obs
    (Model.State.fingerprint k.state)

module H = Hashtbl.Make (struct
  type t = key

  let equal = equal
  let hash = hash
end)

module Visited = struct
  type shard = { lock : Mutex.t; tbl : int H.t }
  type t = shard array

  let create ?(shards = 64) () =
    Array.init (max 1 shards) (fun _ -> { lock = Mutex.create (); tbl = H.create 64 })

  let shard (t : t) k = t.(hash k mod Array.length t)

  let with_lock s f =
    Mutex.lock s.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

  let find t k =
    let s = shard t k in
    with_lock s (fun () -> H.find_opt s.tbl k)

  let add t k ~suffix_steps =
    let s = shard t k in
    with_lock s (fun () ->
        (* Keep the largest recorded suffix: pruning guards on
           [step + suffix <= max_steps], so a larger suffix only makes the
           guard more conservative when histories disagree. *)
        match H.find_opt s.tbl k with
        | Some prior when prior >= suffix_steps -> ()
        | _ -> H.replace s.tbl k suffix_steps)

  let size t = Array.fold_left (fun acc s -> acc + H.length s.tbl) 0 t
end
