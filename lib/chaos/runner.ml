type interleave = Round_robin | Seeded of int

type stop =
  | Violation of { monitor : string; reason : string; proven : bool }
  | Lasso of { period : int }
  | Budget
  | Pruned

type result = {
  exec : Model.Exec.t;
  steps : int;
  stop : stop;
  monitor_truncations : (string * Monitor.category * string) list;
  undelivered_crashes : int;
  undelivered_net : int;
  vacuous_net_faults : int;
}

let pp_stop ppf = function
  | Violation { monitor; reason; proven } ->
    Format.fprintf ppf "VIOLATION of %s (%s): %s" monitor
      (if proven then "proven" else "bounded evidence")
      reason
  | Lasso { period } -> Format.fprintf ppf "pass (lasso of period %d: provably quiescent)" period
  | Budget -> Format.fprintf ppf "pass (step budget exhausted: bounded evidence)"
  | Pruned ->
    Format.fprintf ppf "pruned (configuration already explored: verdict inherited)"

module Tbl = Hashtbl.Make (struct
  type t = int * Model.State.t

  let equal (c1, s1) (c2, s2) = c1 = c2 && Model.State.equal s1 s2
  let hash (c, s) = (c * 31) lxor Model.State.hash s
end)

let default_inputs sys =
  List.init (Model.System.n_processes sys) (fun i -> Ioa.Value.int (i mod 2))

let initialized sys inputs =
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i v, i + 1)
    (Model.Exec.init (Model.System.initial_state sys), 0)
    inputs
  |> fst

(* The fault-free round-robin prefix, shared across candidate schedules.

   Every crash-only schedule under the silencing adversary behaves
   identically until its first crash is delivered: no process has failed, so
   no dummy action is enabled and the preference policy cannot bite
   (§2.1.3), and the task order is the deterministic round-robin. [prefix]
   walks that common execution once — with the same per-step safety-monitor
   checks a real run performs — and snapshots every prefix, so {!run} can
   resume a candidate at its first crash step instead of re-executing the
   shared stem. Executions are immutable, so the snapshots alias one spine
   and the whole cache is safe to share across domains read-only. *)
type prefix = {
  p_snaps : (Model.Exec.t * (string * Monitor.category * string) list) array;
      (** [p_snaps.(k)]: the execution after [k] fault-free steps, with the
          monitor truncations accumulated so far. *)
  p_filled : int;  (** Snapshots [0..p_filled] are valid. *)
  p_cut :
    [ `Violation of
      Model.Exec.t * int * string * string * (string * Monitor.category * string) list
    | `Budget of Model.Exec.t * int * (string * Monitor.category * string) list ]
    option;
      (** Why the walk stopped before the requested depth, if it did: a
          safety violation at the recorded step, or the step budget. A run
          whose first crash lands at or past the cut ends identically. *)
}

let prefix ?(monitors = Monitor.defaults ()) ?(max_steps = 20_000) ?inputs ~steps
    (sys : Model.System.t) =
  let inputs = match inputs with Some vs -> vs | None -> default_inputs sys in
  let policy = Schedule.policy (Schedule.compile Schedule.empty sys) in
  let tasks = sys.Model.System.tasks in
  let n_tasks = Array.length tasks in
  let steps = max 0 steps in
  let snaps = Array.make (steps + 1) (Model.Exec.init (Model.System.initial_state sys), []) in
  let rec walk exec truncs j =
    snaps.(j) <- (exec, truncs);
    if j >= steps then { p_snaps = snaps; p_filled = j; p_cut = None }
    else if j >= max_steps then
      { p_snaps = snaps; p_filled = j; p_cut = Some (`Budget (exec, j, truncs)) }
    else
      let task = tasks.(j mod n_tasks) in
      match Model.Exec.append_task ~policy sys exec task with
      | None -> walk exec truncs (j + 1)
      | Some exec' -> (
        let event =
          match exec'.Model.Exec.rev_steps with
          | s :: _ -> s.Model.Exec.event
          | [] -> assert false
        in
        let fail, t = Monitor.check_phase monitors ~phase:Monitor.Step ~event sys exec' in
        let truncs = truncs @ t in
        match fail with
        | Some (monitor, reason) ->
          {
            p_snaps = snaps;
            p_filled = j;
            p_cut = Some (`Violation (exec', j + 1, monitor, reason, truncs));
          }
        | None -> walk exec' truncs (j + 1))
  in
  walk (initialized sys inputs) [] 0

(* A schedule may resume from the shared prefix only when its own prefix
   provably coincides with it: deterministic task order, crashes only, the
   same (silencing) adversary, no overrides. *)
let resumable schedule =
  schedule.Schedule.overrides = []
  && schedule.Schedule.default_pref = Model.System.Prefer_dummy
  && Schedule.n_crashes schedule = List.length schedule.Schedule.faults

let run ?(monitors = Monitor.defaults ()) ?(max_steps = 20_000) ?(interleave = Round_robin)
    ?inputs ?on_active ?prefix ~schedule (sys : Model.System.t) =
  let inputs = match inputs with Some vs -> vs | None -> default_inputs sys in
  let compiled = Schedule.compile schedule sys in
  let policy = Schedule.policy compiled in
  let tasks = sys.Model.System.tasks in
  let n_tasks = Array.length tasks in
  let rng =
    match interleave with
    | Round_robin -> None
    | Seeded seed -> Some (Random.State.make [| seed; 0x1A7E |])
  in
  let cursor = ref 0 in
  let seen = Tbl.create 256 in
  let truncs = ref [] in
  let vacuous = ref 0 in
  let finish exec steps stop =
    {
      exec;
      steps;
      stop;
      monitor_truncations = !truncs;
      undelivered_crashes = Schedule.undelivered compiled;
      undelivered_net = Schedule.undelivered_net compiled;
      vacuous_net_faults = !vacuous;
    }
  in
  (* End-of-run: evaluate the liveness monitors; [proven] records whether
     the terminal situation repeats forever (lasso) or merely ran out of
     budget. *)
  let ended exec steps ~proven pass =
    let fail, t = Monitor.check_phase monitors ~phase:Monitor.End sys exec in
    truncs := !truncs @ t;
    match fail with
    | Some (monitor, reason) -> finish exec steps (Violation { monitor; reason; proven })
    | None -> finish exec steps pass
  in
  let probed = ref false in
  let rec go exec step =
    if step >= max_steps then ended exec step ~proven:false Budget
    else begin
      let active =
        (* Once fully active the schedule is memoryless (no pending crash,
           no future silence activation): under the deterministic task order
           the continuation is a function of (cursor, state) alone. *)
        match interleave with
        | Round_robin -> Schedule.fully_active compiled ~step
        | Seeded _ -> false
      in
      let prune =
        (* The one-shot activation probe: the explorer fingerprints the
           configuration here and may inherit a previously proven verdict. *)
        if active && not !probed then begin
          probed := true;
          match on_active with
          | Some probe -> probe ~step ~cursor:(!cursor mod n_tasks) exec = `Prune
          | None -> false
        end
        else false
      in
      if prune then finish exec step Pruned
      else
      let lasso =
        (* (cursor, state) repetition proves a cycle only once the schedule
           is memoryless and the task order is deterministic. *)
        if active then begin
          let key = !cursor mod n_tasks, Model.Exec.last_state exec in
          let prior = Tbl.find_opt seen key in
          if prior = None then Tbl.replace seen key step;
          Option.map (fun at -> step - at) prior
        end
        else None
      in
      match lasso with
      | Some period -> ended exec step ~proven:true (Lasso { period })
      | None -> (
        match Schedule.due compiled ~step with
        | Some (Schedule.Deliver_fail pid) ->
          go (Model.Exec.append_fail sys exec pid) (step + 1)
        | Some (Schedule.Deliver_net { service; endpoint; kind }) -> (
          match Model.Exec.append_net sys exec ~service ~endpoint ~kind with
          | None ->
            (* Vacuous fault (empty buffer): counted, not recorded. *)
            incr vacuous;
            go exec (step + 1)
          | Some exec -> go exec (step + 1))
        | Some (Schedule.Deliver_partition { blocks; _ }) ->
          go (Model.Exec.append_partition exec blocks) (step + 1)
        | Some (Schedule.Deliver_heal blocks) ->
          go (Model.Exec.append_heal exec blocks) (step + 1)
        | None -> (
          let task =
            match rng with
            | Some rng -> tasks.(Random.State.int rng n_tasks)
            | None ->
              let t = tasks.(!cursor mod n_tasks) in
              incr cursor;
              t
          in
          if Schedule.blocked compiled sys (Model.Exec.last_state exec) task then
            (* An active partition holds this output turn back; the task
               regains its turn after the heal. *)
            go exec (step + 1)
          else
          match Model.Exec.append_task ~policy sys exec task with
          | None -> go exec (step + 1)
          | Some exec' -> (
            let event =
              match exec'.Model.Exec.rev_steps with
              | s :: _ -> s.Model.Exec.event
              | [] -> assert false
            in
            let fail, t =
              Monitor.check_phase monitors ~phase:Monitor.Step ~event sys exec'
            in
            truncs := !truncs @ t;
            match fail with
            | Some (monitor, reason) ->
              (* A safety violation is witnessed by the prefix itself. *)
              finish exec' (step + 1) (Violation { monitor; reason; proven = true })
            | None -> go exec' (step + 1))))
    end
  in
  let resume =
    (* Resume from the shared fault-free prefix at the first crash step,
       when the schedule's own prefix provably coincides with it. *)
    match prefix, interleave with
    | Some p, Round_robin when resumable schedule -> (
      match Schedule.crashes schedule with
      | [] -> None
      | (s, _) :: _ -> Some (p, s))
    | _ -> None
  in
  match resume with
  | None -> go (initialized sys inputs) 0
  | Some (p, s) -> (
    match p.p_cut with
    | Some (`Violation (exec, v, monitor, reason, tr)) when s >= v ->
      (* The shared prefix violates safety before the first crash can land:
         this run ends exactly there. *)
      truncs := tr;
      finish exec v (Violation { monitor; reason; proven = true })
    | Some (`Budget (exec, b, tr)) when s >= b ->
      truncs := tr;
      ended exec b ~proven:false Budget
    | _ ->
      let k = min s p.p_filled in
      let exec, tr = p.p_snaps.(k) in
      truncs := tr;
      (* [cursor = step] through a fault-free prefix: crash deliveries are
         the only turns that do not consume a task. *)
      cursor := k;
      go exec k)
