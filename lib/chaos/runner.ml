type interleave = Round_robin | Seeded of int

type stop =
  | Violation of { monitor : string; reason : string; proven : bool }
  | Lasso of { period : int }
  | Budget

type result = {
  exec : Model.Exec.t;
  steps : int;
  stop : stop;
  monitor_truncations : (string * string) list;
  undelivered_crashes : int;
}

let pp_stop ppf = function
  | Violation { monitor; reason; proven } ->
    Format.fprintf ppf "VIOLATION of %s (%s): %s" monitor
      (if proven then "proven" else "bounded evidence")
      reason
  | Lasso { period } -> Format.fprintf ppf "pass (lasso of period %d: provably quiescent)" period
  | Budget -> Format.fprintf ppf "pass (step budget exhausted: bounded evidence)"

module Tbl = Hashtbl.Make (struct
  type t = int * Model.State.t

  let equal (c1, s1) (c2, s2) = c1 = c2 && Model.State.equal s1 s2
  let hash (c, s) = (c * 31) lxor Model.State.hash s
end)

let default_inputs sys =
  List.init (Model.System.n_processes sys) (fun i -> Ioa.Value.int (i mod 2))

let initialized sys inputs =
  List.fold_left
    (fun (exec, i) v -> Model.Exec.append_init sys exec i v, i + 1)
    (Model.Exec.init (Model.System.initial_state sys), 0)
    inputs
  |> fst

let run ?(monitors = Monitor.defaults ()) ?(max_steps = 20_000) ?(interleave = Round_robin)
    ?inputs ~schedule (sys : Model.System.t) =
  let inputs = match inputs with Some vs -> vs | None -> default_inputs sys in
  let compiled = Schedule.compile schedule sys in
  let policy = Schedule.policy compiled in
  let tasks = sys.Model.System.tasks in
  let n_tasks = Array.length tasks in
  let rng =
    match interleave with
    | Round_robin -> None
    | Seeded seed -> Some (Random.State.make [| seed; 0x1A7E |])
  in
  let cursor = ref 0 in
  let seen = Tbl.create 256 in
  let truncs = ref [] in
  let finish exec steps stop =
    {
      exec;
      steps;
      stop;
      monitor_truncations = !truncs;
      undelivered_crashes = Schedule.undelivered compiled;
    }
  in
  (* End-of-run: evaluate the liveness monitors; [proven] records whether
     the terminal situation repeats forever (lasso) or merely ran out of
     budget. *)
  let ended exec steps ~proven pass =
    let fail, t = Monitor.check_phase monitors ~phase:Monitor.End sys exec in
    truncs := !truncs @ t;
    match fail with
    | Some (monitor, reason) -> finish exec steps (Violation { monitor; reason; proven })
    | None -> finish exec steps pass
  in
  let rec go exec step =
    if step >= max_steps then ended exec step ~proven:false Budget
    else begin
      let lasso =
        (* (cursor, state) repetition proves a cycle only once the schedule
           is memoryless (no pending crash, no future silence activation)
           and the task order is deterministic. *)
        match interleave with
        | Round_robin when Schedule.fully_active compiled ~step ->
          let key = !cursor mod n_tasks, Model.Exec.last_state exec in
          let prior = Tbl.find_opt seen key in
          if prior = None then Tbl.replace seen key step;
          Option.map (fun at -> step - at) prior
        | _ -> None
      in
      match lasso with
      | Some period -> ended exec step ~proven:true (Lasso { period })
      | None -> (
        match Schedule.due compiled ~step with
        | Some pid -> go (Model.Exec.append_fail sys exec pid) (step + 1)
        | None -> (
          let task =
            match rng with
            | Some rng -> tasks.(Random.State.int rng n_tasks)
            | None ->
              let t = tasks.(!cursor mod n_tasks) in
              incr cursor;
              t
          in
          match Model.Exec.append_task ~policy sys exec task with
          | None -> go exec (step + 1)
          | Some exec' -> (
            let event =
              match exec'.Model.Exec.rev_steps with
              | s :: _ -> s.Model.Exec.event
              | [] -> assert false
            in
            let fail, t =
              Monitor.check_phase monitors ~phase:Monitor.Step ~event sys exec'
            in
            truncs := !truncs @ t;
            match fail with
            | Some (monitor, reason) ->
              (* A safety violation is witnessed by the prefix itself. *)
              finish exec' (step + 1) (Violation { monitor; reason; proven = true })
            | None -> go exec' (step + 1))))
    end
  in
  go (initialized sys inputs) 0
