(** The seeded chaos mode: derive a pseudo-random fault schedule and a
    pseudo-random task interleaving from one seed, with exact replay — the
    system is deterministic and both derivations consume only the seeded
    generators, so the same seed reproduces the identical execution
    byte-for-byte (asserted in the test suite).

    Fault delivery is schedule-driven and consumes no randomness, which is
    what makes shrinking sound in this mode: removing a fault from the
    schedule does not shift the task-choice stream. *)

val interleave : seed:int -> Runner.interleave
(** The task-interleaving component derived from [seed]; reuse it to re-run
    or shrink a violation found by {!run}. *)

val schedule :
  seed:int ->
  ?max_faults:int ->
  ?silence_prob:float ->
  ?horizon:int ->
  ?kinds:Schedule.kind list ->
  Model.System.t ->
  Schedule.t
(** A pseudo-random schedule: up to [max_faults] (default 1) crashes of
    distinct processes at steps below [horizon] (default twice the task
    count), plus each service silenced with probability [silence_prob]
    (default 0.25). [kinds] (default [[Crash_k; Silence_k]]) selects the
    fault kinds drawn: with the default the schedule is byte-identical to
    the crash-only generator of the earlier engine. Network kinds
    ({!Schedule.Drop_k}, {!Schedule.Dup_k}, {!Schedule.Delay_k},
    {!Schedule.Partition_k}) add up to [max_faults] further faults drawn
    from a second generator seeded independently of the crash/silence
    stream, so mixing kinds in never shifts the crash-only draws. *)

val run :
  seed:int ->
  ?max_faults:int ->
  ?silence_prob:float ->
  ?horizon:int ->
  ?kinds:Schedule.kind list ->
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?inputs:Ioa.Value.t list ->
  Model.System.t ->
  Runner.result * Schedule.t
(** One seeded chaos run; returns the result and the schedule it ran. *)
