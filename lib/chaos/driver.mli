(** The chaos engine's front door: explore (systematically or by seeded
    random walks), monitor, shrink, and render the result through the
    impossibility engine's witness vocabulary.

    A minimized f-termination violation becomes an
    {!Engine.Counterexample.Non_termination} witness (with the schedule's
    crashed pids as the failed set and [proven] tracking whether a lasso
    was found); agreement/validity violations map to their witnesses
    likewise, so chaos findings print exactly like the Theorem 2/9/10
    refutations. *)

type mode =
  | Systematic of Explore.config
  | Seeded of {
      seed : int;
      runs : int;  (** Seeds [seed], [seed+1], ... are tried in order. *)
      max_faults : int;
      horizon : int;
      max_steps : int;
      kinds : Schedule.kind list;
          (** Fault kinds the random generator may draw; see
              {!Rand.schedule}. *)
      degrade : bool;
          (** Annotate violations with the live guarantee vector, as
              {!Explore.config.degrade} does for systematic mode. *)
    }

type outcome =
  | Passed
  | Violated of {
      original : Explore.violation;
      minimized : Explore.violation option;  (** When shrinking was enabled. *)
      shrink_stats : Shrink.stats option;
      witness : Engine.Counterexample.witness option;
          (** Rendering of the final (minimized if available) violation;
          [None] for properties outside the engine's vocabulary
          (k-agreement, linearizability), which are reported directly. *)
      replayed : bool option;
          (** Seeded mode only: the violating seed was re-run and produced
          the identical event sequence. *)
    }

type report = {
  mode : mode;
  examined : int;
  space : int;
  truncated : bool;
  wall_truncated : bool;
      (** The wall-clock budget ([stop] returning true) cut the run short
          before a violation was found; reported as
          ["truncated: wall-clock"]. *)
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
      (** Network faults / partition starts scheduled beyond executed
          ranges, summed over runs. *)
  vacuous_net_faults : int;
      (** Delivered network faults that found an empty buffer and mutated
          nothing, summed over runs. *)
  dedup_hits : int;
      (** Schedules pruned by configuration fingerprint (parallel systematic
          mode only; 0 otherwise). *)
  static_prunes : int;
      (** Schedules skipped by the abstract-interpretation infeasibility
          oracle (systematic mode with [static_prune]; 0 otherwise). *)
  por_prunes : int;
      (** Schedules skipped by partial-order reduction (systematic mode
          with [por]; 0 otherwise). *)
  outcome : outcome;
}

val witness_of_violation : Explore.violation -> Engine.Counterexample.witness option

val run :
  ?monitors:Monitor.t list ->
  ?inputs:Ioa.Value.t list ->
  ?shrink:bool ->
  ?domains:int ->
  ?dedup:bool ->
  ?static_prune:bool ->
  ?por:bool ->
  ?cache:Analysis.Cache.t * Analysis.Structhash.t ->
  ?stop:(unit -> bool) ->
  mode ->
  Model.System.t ->
  report
(** [shrink] defaults to true. [domains] (default 1) > 1, [static_prune]
    (default false) or [por] (default false) routes systematic exploration
    through {!Explore.run_par} with [dedup] (default true); otherwise the
    sequential {!Explore.run} path is kept, byte-identical to the
    pre-parallel engine. Seeded mode ignores all four.

    [cache] — a persistent analysis cache plus the system's structural
    hash — enables the verdict cache for systematic sweeps with default
    monitors and inputs: one entry per sweep, keyed by the structural hash
    and every configuration knob, storing the counters (per schedule, when
    the parallel engine ran), the winning and minimized schedules as
    strings, and the shrink statistics. A warm hit skips the exploration
    and the shrinker, re-running only the stored schedules (deterministic
    {!Runner.run}) to regenerate the violating prefixes and the witness;
    a replay that does not reproduce the recorded verdict quarantines the
    entry and falls back to a cold sweep. Wall-truncated sweeps are never
    stored; seeded mode and custom monitors bypass the cache entirely.
    The quiescence certificate consulted by [static_prune] is cached under
    the same handle.

    [stop] (default never) is the wall-clock budget: polled between
    candidate schedules in every mode; once it returns true no further
    schedule starts, and the partial report carries
    [wall_truncated = true] unless a violation had already been found.
    Shrinking of an already-found violation is not interrupted. *)

val pp_report : Format.formatter -> report -> unit
