(** The chaos engine's front door: explore (systematically or by seeded
    random walks), monitor, shrink, and render the result through the
    impossibility engine's witness vocabulary.

    A minimized f-termination violation becomes an
    {!Engine.Counterexample.Non_termination} witness (with the schedule's
    crashed pids as the failed set and [proven] tracking whether a lasso
    was found); agreement/validity violations map to their witnesses
    likewise, so chaos findings print exactly like the Theorem 2/9/10
    refutations. *)

type mode =
  | Systematic of Explore.config
  | Seeded of {
      seed : int;
      runs : int;  (** Seeds [seed], [seed+1], ... are tried in order. *)
      max_faults : int;
      horizon : int;
      max_steps : int;
    }

type outcome =
  | Passed
  | Violated of {
      original : Explore.violation;
      minimized : Explore.violation option;  (** When shrinking was enabled. *)
      shrink_stats : Shrink.stats option;
      witness : Engine.Counterexample.witness option;
          (** Rendering of the final (minimized if available) violation;
          [None] for properties outside the engine's vocabulary
          (k-agreement, linearizability), which are reported directly. *)
      replayed : bool option;
          (** Seeded mode only: the violating seed was re-run and produced
          the identical event sequence. *)
    }

type report = {
  mode : mode;
  examined : int;
  space : int;
  truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  dedup_hits : int;
      (** Schedules pruned by configuration fingerprint (parallel systematic
          mode only; 0 otherwise). *)
  static_prunes : int;
      (** Schedules skipped by the abstract-interpretation infeasibility
          oracle (systematic mode with [static_prune]; 0 otherwise). *)
  por_prunes : int;
      (** Schedules skipped by partial-order reduction (systematic mode
          with [por]; 0 otherwise). *)
  outcome : outcome;
}

val witness_of_violation : Explore.violation -> Engine.Counterexample.witness option

val run :
  ?monitors:Monitor.t list ->
  ?inputs:Ioa.Value.t list ->
  ?shrink:bool ->
  ?domains:int ->
  ?dedup:bool ->
  ?static_prune:bool ->
  ?por:bool ->
  mode ->
  Model.System.t ->
  report
(** [shrink] defaults to true. [domains] (default 1) > 1, [static_prune]
    (default false) or [por] (default false) routes systematic exploration
    through {!Explore.run_par} with [dedup] (default true); otherwise the
    sequential {!Explore.run} path is kept, byte-identical to the
    pre-parallel engine. Seeded mode ignores all four. *)

val pp_report : Format.formatter -> report -> unit
