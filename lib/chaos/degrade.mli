(** Dynamic guarantee-vector degradation.

    Folds the adversary events of an execution (crashes, buffer-mutating
    network faults, partitions and heals) into a damage summary {!t}, and
    maps it — through {!Analysis.Guarantee.of_service} — to the {e live}
    vector: the static composed vector with every component the damage has
    voided knocked down, and restored where the damage has healed. The
    degrade-aware monitors ({!Monitor.defaults} with [~degrade:true]) consult
    it instead of waiving liveness wholesale; [boost chaos --degrade]
    surfaces it as the [degraded to] report field and the [--witness-out]
    trajectory. *)

type t = {
  crashed : Spec.Iset.t;
  dropped : (string * int) list;  (** (service id, endpoint) stolen responses. *)
  mutated : string list;  (** Services with any drop/dup/delay buffer mutation. *)
  active : int list list list;  (** Unhealed partitions' block lists, oldest first. *)
  was_partitioned : bool;
}

val empty : t
val absorb : t -> Model.Event.t -> t
val of_exec : Model.Exec.t -> t

(** {2 Direct builders}

    The workload engine maintains a damage summary across consensus shots
    without a single backing execution; these build it event by event.
    [uncrash] is the one with no adversary-event counterpart: crash-recovery
    (a crashed replica catching up and rejoining) is a protocol-layer act,
    and restores the live vector the crash had knocked down. *)

val crash : t -> int -> t
val uncrash : t -> int -> t
val partition : t -> int list list -> t
val heal : t -> int list list -> t
val mutate : t -> service:string -> endpoint:int -> kind:Model.Event.net_kind -> t

val separated : t -> int -> int -> bool
(** Whether an active (unhealed) partition puts the two pids in different
    blocks — same residual-block semantics as the schedule compiler: pids in
    no listed block share an implicit residual block. *)

val partition_active : t -> bool
val drop_victims : t -> Spec.Iset.t
val dropped : t -> service:string -> bool
val mutated : t -> service:string -> bool

val has_network_service : Model.System.t -> int -> bool
(** Whether some network-type service covers the pid (its packet flow is the
    one a partition gates). *)

val service_live_vector : t -> Model.Service.t -> Analysis.Gvector.t
val live_vector : Model.System.t -> t -> Analysis.Gvector.t
val live_islands : Model.System.t -> t -> int

val describe : Model.System.t -> Model.Exec.t -> string
(** The live vector at the end of the execution, pretty-printed. *)

val trajectory :
  Model.System.t ->
  Model.Exec.t ->
  Analysis.Gvector.t * (int * Model.Event.t * Analysis.Gvector.t) list
(** The static baseline vector, then one entry per step at which the live
    vector changed: (1-based step position, the adversary event, the vector
    after it). Heals that restore the full vector appear as entries equal to
    the baseline. *)
