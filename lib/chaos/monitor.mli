(** Property monitors checked while a chaos run unfolds.

    Safety monitors ({!Step}) are evaluated after every step whose event is
    {!val-relevant} — for the consensus conditions that means decision
    events, so monitoring is O(1) on non-deciding steps. Liveness monitors
    ({!End}) are evaluated when the run ends: at a lasso (the verdict is
    then {e proven} — the detected cycle repeats forever) or at the step
    budget (bounded evidence only).

    A monitor may also report {!Truncated} when it declined to decide (e.g.
    a history too long for the exponential linearizability search); runs
    surface truncations instead of silently passing. *)

type verdict =
  | Pass
  | Fail of string  (** Why, human-readable. *)
  | Truncated of string  (** The monitor gave up; the reason is reported. *)

type phase = Step | End

type t = {
  name : string;
  phase : phase;
  relevant : Model.Event.t -> bool;
      (** [Step] monitors are re-checked only after events matching this. *)
  check : Model.System.t -> Model.Exec.t -> verdict;
}

val agreement : ?k:int -> unit -> t
(** At most [k] (default 1) distinct decided values, checked per step. *)

val validity : t
(** Every decided value is some process's input, checked per step. *)

val per_process_agreement : t
(** No process decides two different values, checked per step. *)

val f_termination : t
(** Modified termination (§2.2.4): at the end of the run, every nonfaulty
    process that received an input has decided. *)

val linearizability : ?max_history:int -> unit -> t
(** Every service retaining a sequential spec ({!Model.Service.t}[.seq])
    has a linearizable history ({!Model.Linearize}). Histories longer than
    [max_history] (default 240 events) yield {!Truncated}. *)

val defaults : ?k:int -> unit -> t list
(** All of the above. *)

val safety : ?k:int -> unit -> t list
(** The [Step] subset. *)

val check_phase :
  t list -> phase:phase -> ?event:Model.Event.t -> Model.System.t -> Model.Exec.t ->
  (string * string) option * (string * string) list
(** Run the monitors of [phase] (filtered by [event] relevance for [Step]):
    the first failure as [(name, reason)], plus all truncations. *)
