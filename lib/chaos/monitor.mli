(** Property monitors checked while a chaos run unfolds.

    Safety monitors ({!Step}) are evaluated after every step whose event is
    {!val-relevant} — for the consensus conditions that means decision
    events, so monitoring is O(1) on non-deciding steps. Liveness monitors
    ({!End}) are evaluated when the run ends: at a lasso (the verdict is
    then {e proven} — the detected cycle repeats forever) or at the step
    budget (bounded evidence only).

    A monitor may also report {!Truncated} when it declined to decide (e.g.
    a history too long for the exponential linearizability search); runs
    surface truncations instead of silently passing. *)

type category =
  | Monitor_budget  (** The monitor's own budget gave out (e.g. a history too
                        long for the exponential linearizability search). *)
  | Adversary  (** The adversary's damage voided the verdict (stolen
                   responses, unhealed partitions). *)

val category_name : category -> string
(** ["monitor-budget"] | ["adversary"] — the machine-readable tag. *)

type verdict =
  | Pass
  | Fail of string  (** Why, human-readable. *)
  | Truncated of category * string
      (** The monitor declined to decide; the category says whether its own
          budget or the adversary's damage is to blame. *)

type phase = Step | End

type t = {
  name : string;
  phase : phase;
  relevant : Model.Event.t -> bool;
      (** [Step] monitors are re-checked only after events matching this. *)
  check : Model.System.t -> Model.Exec.t -> verdict;
}

val agreement : ?k:int -> ?degrade:bool -> unit -> t
(** At most [k] (default 1) distinct decided values, checked per step. With
    [degrade], decisions made across an active partition are held to the
    degraded scope instead: only mutually-reachable deciders (transitively,
    at the later decision) must agree — per-partition-block agreement while
    unhealed, full agreement among post-heal decisions. Identical to the
    plain check on executions without partitions. *)

val validity : t
(** Every decided value is some process's input, checked per step. *)

val per_process_agreement : t
(** No process decides two different values, checked per step. *)

val f_termination : t
(** Modified termination (§2.2.4): at the end of the run, every nonfaulty
    process that received an input has decided. Recovery-aware: a run with
    message-drop faults or an unhealed partition yields {!Truncated} rather
    than charging the protocol for the adversary's theft — duplications,
    delays and healed partitions still enforce termination (degradation must
    be graceful once the network recovers). Crash-only verdicts are
    unchanged. *)

val f_termination_degraded : t
(** The degrade-aware variant (same monitor name): consults {!Degrade}
    instead of waiving liveness wholesale. Drop victims lose their
    termination guarantee; an unhealed partition waives fully isolated
    processes and, where a network service carries the protocol, any
    separated process; a heal restores the full demand. Everyone still
    covered by the live vector must decide — a stall there is a [Fail]
    carrying the degraded vector, not a truncation. Crash-only verdicts
    coincide with {!f_termination}. *)

val linearizability : ?max_history:int -> ?degrade:bool -> unit -> t
(** Every service retaining a sequential spec ({!Model.Service.t}[.seq])
    has a linearizable history ({!Model.Linearize}). Histories longer than
    [max_history] (default 240 events) yield {!Truncated} with category
    [Monitor_budget]; runs with buffer-mutating network faults
    (drop/dup/delay) yield {!Truncated} with category [Adversary], their
    histories no longer reflecting what the service did. With [degrade],
    only the mutated services are skipped (reported as an [Adversary]
    truncation) — every untouched service is still checked. *)

val fd_completeness : output:(Model.State.t -> pid:int -> Spec.Iset.t) -> unit -> t
(** ◇P strong completeness at end of run: every crashed process is suspected
    by every alive process, where [output s ~pid] reads a process's current
    suspect set out of the protocol state. {!Truncated} while a partition is
    unhealed. Opt-in (not part of {!defaults}); wire [output] to the
    protocol's accessor, e.g. [Protocols.Fd_network.output_of]. *)

val fd_accuracy : output:(Model.State.t -> pid:int -> Spec.Iset.t) -> unit -> t
(** ◇P eventual accuracy at end of run: no alive process is still suspected
    by an alive process. Unhealed partitions waive the verdict ({!Truncated})
    — ◇P tolerates finitely many false suspicions until the network heals.
    Opt-in, like {!fd_completeness}. *)

val has_drop : Model.Exec.t -> bool
(** Whether the execution carries a message-drop network fault. *)

val has_net_fault : Model.Exec.t -> bool
(** Whether the execution carries any buffer-mutating network fault. *)

val unhealed_partition : Model.Exec.t -> bool
(** Whether some partition is still in force when the execution ends. *)

val defaults : ?k:int -> ?degrade:bool -> unit -> t list
(** All of the above; with [degrade], the degrade-aware variants of
    agreement, f-termination and linearizability. *)

val safety : ?k:int -> ?degrade:bool -> unit -> t list
(** The [Step] subset. *)

val check_phase :
  t list -> phase:phase -> ?event:Model.Event.t -> Model.System.t -> Model.Exec.t ->
  (string * string) option * (string * category * string) list
(** Run the monitors of [phase] (filtered by [event] relevance for [Step]):
    the first failure as [(name, reason)], plus all truncations with their
    categories. *)
