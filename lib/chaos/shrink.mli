(** Delta-debug a failing fault schedule to a minimal one.

    Greedy fixpoint over structural reductions — drop a fault (cheapest
    kinds first: a duplication before a drop before a delay before a crash
    before a silencing, a partition last), downgrade the silencing
    adversary to the helpful one, drop a per-task override, weaken a fault
    in place (shorten a delay's lag, heal a partition earlier, merge a
    partition block into the residual block), pull a crash earlier, and
    clamp fault steps or heal points referencing steps beyond the
    violating run's executed range back into it — keeping a reduction iff
    re-running the shrunk schedule still violates the {e same} monitor.
    Every candidate is re-validated ({!Schedule.validate}) after mutation
    and skipped when the mutation broke a well-formedness invariant. The
    result is 1-minimal: no single remaining reduction preserves the
    violation.

    Pass the same [monitors]/[max_steps]/[interleave]/[inputs] the
    violation was found with; in particular, seeded-random violations
    shrink under their own interleaving (fault delivery never consumes
    randomness, so removing faults does not shift the task stream). *)

type stats = { candidates : int; runs : int }

val shrink :
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?interleave:Runner.interleave ->
  ?inputs:Ioa.Value.t list ->
  Model.System.t ->
  Explore.violation ->
  Explore.violation * stats
