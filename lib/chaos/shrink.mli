(** Delta-debug a failing fault schedule to a minimal one.

    Greedy fixpoint over structural reductions — drop a fault, downgrade
    the silencing adversary to the helpful one, drop a per-task override,
    pull a crash earlier — keeping a reduction iff re-running the shrunk
    schedule still violates the {e same} monitor. The result is 1-minimal:
    no single remaining reduction preserves the violation.

    Pass the same [monitors]/[max_steps]/[interleave]/[inputs] the
    violation was found with; in particular, seeded-random violations
    shrink under their own interleaving (fault delivery never consumes
    randomness, so removing faults does not shift the task stream). *)

type stats = { candidates : int; runs : int }

val shrink :
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?interleave:Runner.interleave ->
  ?inputs:Ioa.Value.t list ->
  Model.System.t ->
  Explore.violation ->
  Explore.violation * stats
