type stats = { candidates : int; runs : int }

(* Give up a duplication before a drop, a drop before a delay, a delay
   before a crash, and weaken a partition last (ISSUE 5's shrink order,
   backed by Schedule.compare_fault's kind ranking). *)
let shrink_priority = function
  | Schedule.Duplicate _ -> 0
  | Schedule.Drop _ -> 1
  | Schedule.Delay _ -> 2
  | Schedule.Crash _ -> 3
  | Schedule.Silence _ -> 4
  | Schedule.Partition _ -> 5

(* One round of improvement candidates, most aggressive first:
   1. drop a fault entirely (cheapest kinds first);
   2. downgrade the silencing adversary to the helpful one;
   3. drop a per-task override;
   4. weaken a fault in place: shorten a delay, heal a partition earlier,
      merge partition blocks into the residual block;
   5. pull a crash earlier (to 0, then halfway, then one step);
   6. clamp steps that reference points beyond the violating prefix
      ([exec_len]) back into it — a minimized schedule must not carry fault
      indices past the execution that witnesses it. *)
let candidates ~exec_len (s : Schedule.t) =
  let without i = List.filteri (fun j _ -> j <> i) s.Schedule.faults in
  let replace i f' =
    Schedule.
      { s with faults = List.mapi (fun j f -> if j = i then f' else f) s.Schedule.faults }
  in
  let drops =
    List.mapi (fun i f -> shrink_priority f, Schedule.{ s with faults = without i }) s.Schedule.faults
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map snd
  in
  let helpful =
    match s.Schedule.default_pref with
    | Model.System.Prefer_dummy ->
      [ Schedule.{ s with default_pref = Model.System.Prefer_real } ]
    | Model.System.Prefer_real -> []
  in
  let override_drops =
    List.mapi
      (fun i _ ->
        Schedule.
          { s with overrides = List.filteri (fun j _ -> j <> i) s.Schedule.overrides })
      s.Schedule.overrides
  in
  let weaken =
    List.concat
      (List.mapi
         (fun i fault ->
           match fault with
           | Schedule.Delay { step; service; endpoint; lag } when lag > 1 ->
             List.filter_map
               (fun lag' ->
                 if lag' >= 1 && lag' < lag then
                   Some (replace i (Schedule.delay ~step ~service ~endpoint ~lag:lag'))
                 else None)
               (List.sort_uniq Int.compare [ 1; lag / 2 ])
           | Schedule.Partition { step; blocks; heal_at } ->
             let heal_earlier =
               List.filter_map
                 (fun h ->
                   if h > step && h < heal_at then
                     Some (replace i (Schedule.partition ~step ~blocks ~heal_at:h))
                   else None)
                 (List.sort_uniq Int.compare [ step + 1; (step + heal_at) / 2 ])
             in
             let merge_blocks =
               (* Releasing a block into the implicit residual block merges
                  it with the unlisted processes — a strictly weaker split. *)
               if List.length blocks > 1 then
                 List.mapi
                   (fun k _ ->
                     replace i
                       (Schedule.partition ~step
                          ~blocks:(List.filteri (fun j _ -> j <> k) blocks)
                          ~heal_at))
                   blocks
               else []
             in
             heal_earlier @ merge_blocks
           | _ -> [])
         s.Schedule.faults)
  in
  let earlier =
    List.concat
      (List.mapi
         (fun i fault ->
           match fault with
           | Schedule.Crash { step; pid } when step > 0 ->
             List.filter_map
               (fun step' ->
                 if step' < step then Some (replace i (Schedule.crash ~step:step' ~pid))
                 else None)
               (List.sort_uniq Int.compare [ 0; step / 2; step - 1 ])
           | _ -> [])
         s.Schedule.faults)
  in
  let clamps =
    List.concat
      (List.mapi
         (fun i fault ->
           let reclamp step k = if step > exec_len then [ replace i (k exec_len) ] else [] in
           match fault with
           | Schedule.Partition { step; blocks; heal_at }
             when heal_at > exec_len + 1 && exec_len + 1 > step ->
             [ replace i (Schedule.partition ~step ~blocks ~heal_at:(exec_len + 1)) ]
           | Schedule.Crash { step; pid } ->
             reclamp step (fun step -> Schedule.crash ~step ~pid)
           | Schedule.Silence { step; service } ->
             reclamp step (fun step -> Schedule.silence ~step ~service)
           | Schedule.Drop { step; service; endpoint } ->
             reclamp step (fun step -> Schedule.drop ~step ~service ~endpoint)
           | Schedule.Duplicate { step; service; endpoint } ->
             reclamp step (fun step -> Schedule.duplicate ~step ~service ~endpoint)
           | Schedule.Delay { step; service; endpoint; lag } ->
             reclamp step (fun step -> Schedule.delay ~step ~service ~endpoint ~lag)
           | Schedule.Partition _ -> [])
         s.Schedule.faults)
  in
  drops @ helpful @ override_drops @ weaken @ earlier @ clamps

let shrink ?monitors ?max_steps ?interleave ?inputs sys (v : Explore.violation) =
  let tried = ref 0 and runs = ref 0 in
  (* Does [schedule] still violate the same monitor as [v]? *)
  let reproduces (v : Explore.violation) schedule =
    incr runs;
    let r = Runner.run ?monitors ?max_steps ?interleave ?inputs ~schedule sys in
    match r.Runner.stop with
    | Runner.Violation { monitor; reason; proven } when String.equal monitor v.monitor ->
      Some
        { v with
          Explore.schedule;
          reason;
          proven;
          exec = r.Runner.exec;
          steps = r.Runner.steps;
        }
    | _ -> None
  in
  let rec fixpoint (v : Explore.violation) =
    let rec first = function
      | [] -> None
      | c :: rest ->
        incr tried;
        (* Re-normalize so fault delivery order stays canonical. *)
        let c =
          Schedule.make ~default_pref:c.Schedule.default_pref ~overrides:c.Schedule.overrides
            c.Schedule.faults
        in
        if Schedule.equal c v.Explore.schedule then first rest
          (* Mutations can produce schedules the compiler would reject
             (e.g. a clamp inverting a partition's span): re-validate before
             running, skip on failure. *)
        else if Result.is_error (Schedule.validate sys c) then first rest
        else (
          match reproduces v c with
          | Some v' -> Some v'
          | None -> first rest)
    in
    match first (candidates ~exec_len:v.Explore.steps v.Explore.schedule) with
    | Some v' -> fixpoint v'
    | None -> v
  in
  let v = fixpoint v in
  v, { candidates = !tried; runs = !runs }
