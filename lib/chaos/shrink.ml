type stats = { candidates : int; runs : int }

(* One round of improvement candidates, most aggressive first:
   1. drop a fault entirely;
   2. downgrade the silencing adversary to the helpful one;
   3. drop a per-task override;
   4. pull a crash earlier (to 0, then halfway, then one step). *)
let candidates (s : Schedule.t) =
  let without i = List.filteri (fun j _ -> j <> i) s.Schedule.faults in
  let drops =
    List.mapi (fun i _ -> Schedule.{ s with faults = without i }) s.Schedule.faults
  in
  let helpful =
    match s.Schedule.default_pref with
    | Model.System.Prefer_dummy ->
      [ Schedule.{ s with default_pref = Model.System.Prefer_real } ]
    | Model.System.Prefer_real -> []
  in
  let override_drops =
    List.mapi
      (fun i _ ->
        Schedule.
          { s with overrides = List.filteri (fun j _ -> j <> i) s.Schedule.overrides })
      s.Schedule.overrides
  in
  let earlier =
    List.concat
      (List.mapi
         (fun i fault ->
           match fault with
           | Schedule.Crash { step; pid } when step > 0 ->
             List.filter_map
               (fun step' ->
                 if step' < step then
                   Some
                     Schedule.
                       {
                         s with
                         faults =
                           List.mapi
                             (fun j f ->
                               if j = i then Schedule.crash ~step:step' ~pid else f)
                             s.Schedule.faults;
                       }
                 else None)
               (List.sort_uniq Int.compare [ 0; step / 2; step - 1 ])
           | _ -> [])
         s.Schedule.faults)
  in
  drops @ helpful @ override_drops @ earlier

let shrink ?monitors ?max_steps ?interleave ?inputs sys (v : Explore.violation) =
  let tried = ref 0 and runs = ref 0 in
  (* Does [schedule] still violate the same monitor as [v]? *)
  let reproduces (v : Explore.violation) schedule =
    incr runs;
    let r = Runner.run ?monitors ?max_steps ?interleave ?inputs ~schedule sys in
    match r.Runner.stop with
    | Runner.Violation { monitor; reason; proven } when String.equal monitor v.monitor ->
      Some { v with Explore.schedule; reason; proven; exec = r.Runner.exec }
    | _ -> None
  in
  let rec fixpoint (v : Explore.violation) =
    let rec first = function
      | [] -> None
      | c :: rest ->
        incr tried;
        (* Re-normalize so crash delivery order stays canonical. *)
        let c =
          Schedule.make ~default_pref:c.Schedule.default_pref ~overrides:c.Schedule.overrides
            c.Schedule.faults
        in
        if Schedule.equal c v.Explore.schedule then first rest
        else (
          match reproduces v c with
          | Some v' -> Some v'
          | None -> first rest)
    in
    match first (candidates v.Explore.schedule) with
    | Some v' -> fixpoint v'
    | None -> v
  in
  let v = fixpoint v in
  v, { candidates = !tried; runs = !runs }
