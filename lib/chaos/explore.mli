(** Systematic fault-schedule exploration: enumerate crash placements up to
    [max_faults] failures across a bounded step space and run each candidate
    under the monitored runner, stopping at the first violation.

    Bounds are explicit and truncation is reported, never silent: the report
    carries the full enumeration-space size versus the number of schedules
    actually examined, the runs that hit the step budget undecided, and any
    monitor that declined to decide. *)

type config = {
  max_faults : int;  (** Enumerate 0, 1, ..., [max_faults] faults. *)
  horizon : int;  (** Fault steps drawn from [0, horizon). *)
  stride : int;  (** Step-grid granularity. *)
  budget : int;  (** Maximum schedules to run. *)
  max_steps : int;  (** Per-run step bound. *)
  kinds : Schedule.kind list;
      (** Fault kinds the budget lattice ranges over. [[Crash_k]] reproduces
          the crash-only enumeration of the earlier engine exactly (pinned
          by the differential in test_chaos_net.ml). *)
  degrade : bool;
      (** Annotate each violation with the live guarantee vector
          ({!Degrade.describe}) at the violating prefix's end, and run the
          degrade-aware default monitor family
          ([Monitor.defaults ~degrade:true ()]) whenever the caller passes
          no explicit [monitors]. Off by default. *)
}

val default_config : Model.System.t -> config
(** 1 fault, horizon twice the task count, stride 1, 1024 schedules,
    20_000 steps, crash faults only, no degrade annotation. *)

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;  (** The violating prefix. *)
  steps : int;
      (** The violating run's step count (>= the exec length: skipped and
          vacuous turns advance the step clock without appending an event);
          the shrinker clamps fault references to this range. *)
  degraded_to : string option;
      (** With [config.degrade]: the live guarantee vector at the end of the
          violating prefix, pretty-printed. [None] otherwise, keeping
          crash-only reports byte-identical to the degrade-off runs. *)
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  examined : int;
  space : int;  (** Full enumeration-space size for the config. *)
  truncated : bool;  (** Enumeration budget hit before exhausting the space. *)
  wall_truncated : bool;
      (** The caller's [stop] thunk fired before the enumeration finished
          and no violation had been found: the report is a partial,
          wall-clock-truncated view of the space. *)
  step_budget_hits : int;  (** Runs ending undecided at [max_steps]. *)
  monitor_truncations : int;
  undelivered_crashes : int;
  undelivered_net : int;
      (** Net faults / partition starts scheduled beyond executed ranges. *)
  vacuous_net_faults : int;
      (** Delivered net faults that found an empty buffer (no-ops). *)
  dedup_hits : int;
      (** Schedules pruned by configuration fingerprint ({!run_par} with
          dedup): counted as examined — their verdict is inherited from an
          equivalent already-run configuration. Always 0 for {!run}. *)
  static_prunes : int;
      (** Schedules skipped without any concrete execution because the
          abstract-interpretation oracle ({!Analysis.Prune.clean_from})
          proved them infeasible as violations: every fault lands at or
          after the certified quiescence step (net faults additionally
          require the empty-buffer certificate), so the run provably ends
          in a clean lasso. Counted as examined. Always 0 for {!run} and
          for {!run_par} without [static_prune]. *)
  por_prunes : int;
      (** Schedules skipped by partial-order reduction ({!run_par} with
          [por]): their fault placement differs from a lower-ranked
          schedule's only by sliding deliveries (crash, omission, or a
          partition's begin/heal pair) past task slots that are statically
          independent of them ({!Analysis.Interfere}), so the lower-ranked
          run provably reaches the same verdict. Counted as examined.
          Always 0 for {!run}. *)
  violation : violation option;
}

val schedules : Model.System.t -> config -> Schedule.t Seq.t
(** The lazy candidate stream: by fault count, then fault-site subsets, then
    step assignments, all lexicographic. Fault sites are drawn per kind in
    [config.kinds] order — crashes per pid, silences per service,
    drop/dup/delay per (service, endpoint), isolate-one-pid partitions per
    pid — so with [kinds = [Crash_k]] the stream coincides with the old
    crash-only enumeration. Every candidate uses the silencing adversary
    ({!Schedule.make}'s default). *)

val space_size : Model.System.t -> config -> int

val run :
  ?monitors:Monitor.t list ->
  ?interleave:Runner.interleave ->
  ?inputs:Ioa.Value.t list ->
  ?config:config ->
  ?stop:(unit -> bool) ->
  Model.System.t ->
  report
(** The sequential explorer — the trusted oracle the parallel engine is
    differentially tested against. Single-domain, no dedup, first violation
    in enumeration order wins. [stop] is polled once per candidate; once it
    returns true the scan ends immediately and the report is marked
    [wall_truncated]. *)

(** {1 Parallel exploration}

    {!run_par} distributes the same candidate enumeration over OCaml 5
    domains: ranks (enumeration indices) are dealt into per-worker deques of
    contiguous ranges, idle workers steal half a range from a victim's back,
    and per-run results are merged deterministically — counters are summed
    over ranks at most the winning rank, and the winning violation is the
    rank-least (then lexicographically least) one, so the merged report is
    identical run-to-run regardless of interleaving, and identical to {!run}
    whenever dedup is off.

    With [dedup] (default on), each run fingerprints its configuration at
    schedule activation ({!Fingerprint.key}: round-robin cursor, observable
    history, exact state); a configuration whose continuation was already
    proven quiescent by a lasso run is pruned and inherits that verdict.
    Pruning preserves verdicts, [examined], [space], [truncated],
    [step_budget_hits] and [undelivered_crashes] exactly; only
    [monitor_truncations] can undercount (a pruned run's suffix truncations
    are not re-counted). Dedup is disabled automatically under [Seeded]
    interleaving, where runs are not cursor×state deterministic. *)

type run_record = {
  rank : int;  (** Enumeration index of the candidate schedule. *)
  budget_hit : bool;
  truncations : int;
  undelivered : int;
  undelivered_n : int;
  vacuous : int;
  deduped : bool;
  statically_pruned : bool;
      (** Skipped by the static infeasibility oracle; the clean-lasso
          counters were recorded without executing the run. *)
  por_pruned : bool;
      (** Skipped by partial-order reduction: an equivalent lower-ranked
          schedule represents this run's verdict. *)
  parent : int option;
      (** The rank whose record this one's counters are inherited from:
          the slid-earlier equivalent for POR prunes, rank 0 (the
          fault-free run, for monitor truncations) for net-bearing static
          prunes, [None] otherwise. Resolved — transitively, for chains of
          slides — after the workers join, before {!merge}. *)
  found : violation option;
}
(** One worker-side run result, the unit {!merge} operates on. *)

type partial = run_record list
(** A worker's sub-report. *)

val merge : ?wall:bool -> space:int -> scheduled:int -> partial list -> report
(** Deterministic, partition- and order-insensitive merge: any shuffling of
    records across sub-reports yields the identical report. [scheduled] is
    the number of ranks dealt out, i.e. [min budget space]. With [wall]
    (default false) and no winning violation, the report is marked
    [wall_truncated] and [examined] counts the records actually produced. *)

val run_par :
  ?monitors:Monitor.t list ->
  ?interleave:Runner.interleave ->
  ?inputs:Ioa.Value.t list ->
  ?config:config ->
  ?domains:int ->
  ?dedup:bool ->
  ?static_prune:bool ->
  ?por:bool ->
  ?cache:Analysis.Cache.t * string ->
  ?record_sink:(run_record list -> unit) ->
  ?stop:(unit -> bool) ->
  Model.System.t ->
  report
(** [domains] defaults to 1 (same worker machinery, no spawned domains);
    [dedup] defaults to true.

    [cache] — a persistent analysis cache plus the system's structural-hash
    key prefix: the quiescence certificate ({!Analysis.Prune.clean_from}, a
    full Reach fixpoint) is looked up / stored under it instead of being
    recomputed per exploration. Consulted only for default inputs; negative
    verdicts are cached too. [record_sink], when given, receives the final
    resolved per-schedule records just before they are merged — the hook
    the chaos verdict cache persists its per-schedule verdict table
    through.

    With [static_prune] (default false), the abstract-interpretation oracle
    {!Analysis.Prune.clean_from} certifies a quiescence step Q once per
    exploration; silencing candidates whose faults all land at steps ≥ Q
    are then skipped without concrete execution, recording exactly the
    counters their run would have produced (clean lasso, all faults
    delivered). Net-bearing candidates additionally require the
    certificate's [buffers_empty] (post-Q omission deliveries provably
    vacuous, partitions never blocking) and a per-schedule check that the
    delivery tail — a partition heals half a horizon past its begin — fits
    the step budget; silences always disqualify. The report is
    byte-identical to the unpruned one except that [monitor_truncations]
    can undercount (like dedup) and [static_prunes] counts the skips. The
    oracle only engages under the convention it certifies: default
    monitors (degrade-aware when [config.degrade]), round-robin
    interleaving, and a step budget large enough that no pruned run could
    have hit [Budget]; otherwise every candidate runs concretely.

    With [por] (default false), candidates whose fault placement is
    non-canonical — some delivery (a crash, an omission, or a partition's
    begin/heal pair sliding together) can slide one grid notch earlier
    across task slots that provably ignore its footprint (the static
    interference relation, {!Analysis.Interfere}, sharpened by the
    config's fault bound; see DESIGN.md §3.12 for the net-fault rows and
    the partition-boundary and degrade refinements) — are skipped: an
    equivalent schedule of strictly lower rank runs the same task slots to
    the same verdict. Violations, [examined], [space] and [truncated]
    match the un-reduced oracle exactly (a violating schedule's canonical
    form violates at lower rank, so the rank-least winner is never
    pruned); the per-run counters are inherited from the slid parent's
    record, so they too match wherever the parent itself ran concretely.
    Engages under the same convention: default monitors (degrade-aware
    when [config.degrade]), round-robin interleaving, sufficient step
    budget — with a per-schedule delivery-tail check for net-bearing
    candidates. Composes freely with [dedup], [static_prune], [degrade]
    and [domains]. *)

val pp_report : Format.formatter -> report -> unit
