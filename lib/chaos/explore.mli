(** Systematic fault-schedule exploration: enumerate crash placements up to
    [max_faults] failures across a bounded step space and run each candidate
    under the monitored runner, stopping at the first violation.

    Bounds are explicit and truncation is reported, never silent: the report
    carries the full enumeration-space size versus the number of schedules
    actually examined, the runs that hit the step budget undecided, and any
    monitor that declined to decide. *)

type config = {
  max_faults : int;  (** Enumerate 0, 1, ..., [max_faults] crashes. *)
  horizon : int;  (** Crash steps drawn from [0, horizon). *)
  stride : int;  (** Step-grid granularity. *)
  budget : int;  (** Maximum schedules to run. *)
  max_steps : int;  (** Per-run step bound. *)
}

val default_config : Model.System.t -> config
(** 1 fault, horizon twice the task count, stride 1, 1024 schedules,
    20_000 steps. *)

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;  (** The violating prefix. *)
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  examined : int;
  space : int;  (** Full enumeration-space size for the config. *)
  truncated : bool;  (** Enumeration budget hit before exhausting the space. *)
  step_budget_hits : int;  (** Runs ending undecided at [max_steps]. *)
  monitor_truncations : int;
  undelivered_crashes : int;
  violation : violation option;
}

val schedules : n:int -> config -> Schedule.t Seq.t
(** The lazy candidate stream: by fault count, then pid subsets, then step
    assignments, all lexicographic. Every candidate uses the silencing
    adversary ({!Schedule.make}'s default). *)

val space_size : n:int -> config -> int

val run :
  ?monitors:Monitor.t list ->
  ?interleave:Runner.interleave ->
  ?inputs:Ioa.Value.t list ->
  ?config:config ->
  Model.System.t ->
  report

val pp_report : Format.formatter -> report -> unit
