(** Configuration fingerprints for cross-run deduplication.

    The systematic explorer walks the same configuration graph [G(C)] the
    paper's Fig. 3 path construction does: each monitored run is a path, and
    distinct fault schedules frequently {e reconverge} — once a schedule is
    fully active (all crashes delivered, all silences on), the remainder of a
    round-robin run is a deterministic function of the round-robin cursor and
    the global state. A [key] names that residual computation:

    - the round-robin cursor position (mod task count),
    - the observable event history so far ({!Model.Exec.obs_fingerprint} —
      what end-of-run monitors such as linearizability can distinguish),
    - the exact global state ({!Model.State.t}, compared structurally, with
      {!Model.State.fingerprint} as its hash).

    Two runs reaching equal keys have identical continuations and identical
    monitor verdicts, so the second can be pruned. The state is stored and
    compared exactly — only the observable-history component is probabilistic
    (63-bit). *)

type key

val key : cursor:int -> Model.Exec.t -> key
(** [key ~cursor exec] fingerprints the configuration reached by [exec] with
    the round-robin cursor at [cursor] (already reduced mod task count). *)

val equal : key -> key -> bool
(** Exact on cursor and state; fingerprint-exact on observable history. *)

val hash : key -> int
val pp : Format.formatter -> key -> unit

(** Sharded visited table, safe for concurrent use from multiple domains.
    Each shard is an independent mutex-guarded hash table; keys map to the
    recorded run's suffix length (steps from the key to its proven-quiescent
    lasso), which callers use to guard pruning against step-budget cutoffs. *)
module Visited : sig
  type t

  val create : ?shards:int -> unit -> t
  (** Default 64 shards. *)

  val find : t -> key -> int option
  (** The recorded suffix length, if this configuration was seen. *)

  val add : t -> key -> suffix_steps:int -> unit
  (** Record a configuration whose continuation ran [suffix_steps] steps to a
      proven-quiescent end. Keeps the largest suffix on duplicate insert. *)

  val size : t -> int
end
