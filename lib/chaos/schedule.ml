type fault =
  | Crash of { step : int; pid : int }
  | Silence of { step : int; service : string }

type t = {
  faults : fault list;
  default_pref : Model.System.pref;
  overrides : (Model.Task.t * Model.System.pref) list;
}

let crash ~step ~pid = Crash { step; pid }
let silence ~step ~service = Silence { step; service }

let fault_step = function Crash { step; _ } | Silence { step; _ } -> step

let make ?(default_pref = Model.System.Prefer_dummy) ?(overrides = []) faults =
  let faults = List.stable_sort (fun a b -> Int.compare (fault_step a) (fault_step b)) faults in
  { faults; default_pref; overrides }

let empty = make []

let equal_fault a b =
  match a, b with
  | Crash a, Crash b -> a.step = b.step && a.pid = b.pid
  | Silence a, Silence b -> a.step = b.step && String.equal a.service b.service
  | _ -> false

let equal a b =
  List.equal equal_fault a.faults b.faults
  && a.default_pref = b.default_pref
  && List.equal
       (fun (t1, p1) (t2, p2) -> Model.Task.equal t1 t2 && p1 = p2)
       a.overrides b.overrides

let compare_fault a b =
  match a, b with
  | Crash a, Crash b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c else Int.compare a.pid b.pid
  | Silence a, Silence b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c else String.compare a.service b.service
  | Crash _, Silence _ -> -1
  | Silence _, Crash _ -> 1

let pref_rank = function Model.System.Prefer_dummy -> 0 | Model.System.Prefer_real -> 1

let compare a b =
  let c = List.compare compare_fault a.faults b.faults in
  if c <> 0 then c
  else
    let c = Int.compare (pref_rank a.default_pref) (pref_rank b.default_pref) in
    if c <> 0 then c
    else
      List.compare
        (fun (t1, p1) (t2, p2) ->
          let c = Model.Task.compare t1 t2 in
          if c <> 0 then c else Int.compare (pref_rank p1) (pref_rank p2))
        a.overrides b.overrides

let crashes t =
  List.filter_map (function Crash { step; pid } -> Some (step, pid) | _ -> None) t.faults

let n_crashes t = List.length (crashes t)
let crashed_pids t = List.sort_uniq Int.compare (List.map snd (crashes t))

let pp_fault ppf = function
  | Crash { step; pid } -> Format.fprintf ppf "crash@%d:%d" step pid
  | Silence { step; service } -> Format.fprintf ppf "silence@%d:%s" step service

let pp_pref ppf = function
  | Model.System.Prefer_real -> Format.pp_print_string ppf "helpful"
  | Model.System.Prefer_dummy -> Format.pp_print_string ppf "silencing"

let pp ppf t =
  Format.fprintf ppf "@[<h>%a adversary" pp_pref t.default_pref;
  if t.faults = [] then Format.fprintf ppf ", no faults"
  else
    Format.fprintf ppf ": %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_fault)
      t.faults;
  List.iter
    (fun (task, pref) ->
      Format.fprintf ppf ",@ %a->%a" Model.Task.pp task pp_pref pref)
    t.overrides;
  Format.fprintf ppf "@]"

let to_string t =
  let faults = List.map (Format.asprintf "%a" pp_fault) t.faults in
  let parts =
    match t.default_pref with
    | Model.System.Prefer_real -> "helpful" :: faults
    | Model.System.Prefer_dummy -> faults
  in
  String.concat "," parts

let parse s =
  let tokens =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun tok -> tok <> "")
  in
  let parse_int what str =
    match int_of_string_opt str with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad %s %S" what str)
  in
  let parse_at kind rest =
    match String.index_opt rest ':' with
    | None -> Error (Printf.sprintf "expected %s@STEP:TARGET in %S" kind rest)
    | Some i ->
      let step = String.sub rest 0 i in
      let target = String.sub rest (i + 1) (String.length rest - i - 1) in
      Result.bind (parse_int "step" step) (fun step -> Ok (step, target))
  in
  let ( let* ) = Result.bind in
  let rec go acc pref = function
    | [] -> Ok (make ?default_pref:pref (List.rev acc))
    | "helpful" :: rest -> go acc (Some Model.System.Prefer_real) rest
    | "silencing" :: rest -> go acc (Some Model.System.Prefer_dummy) rest
    | tok :: rest -> (
      match String.index_opt tok '@' with
      | Some i ->
        let kind = String.sub tok 0 i in
        let body = String.sub tok (i + 1) (String.length tok - i - 1) in
        let* step, target = parse_at kind body in
        let* fault =
          match kind with
          | "crash" ->
            let* pid = parse_int "pid" target in
            Ok (crash ~step ~pid)
          | "silence" -> Ok (silence ~step ~service:target)
          | k -> Error (Printf.sprintf "unknown fault kind %S" k)
        in
        go (fault :: acc) pref rest
      | None ->
        (* Shorthand STEP:PID for a crash, matching round_robin's faults. *)
        let* step, target = parse_at "crash" tok in
        let* pid = parse_int "pid" target in
        go (crash ~step ~pid :: acc) pref rest)
  in
  go [] None tokens

let validate sys t =
  let n = Model.System.n_processes sys in
  let check = function
    | Crash { pid; step } ->
      if pid < 0 || pid >= n then Error (Printf.sprintf "crash pid %d out of range" pid)
      else if step < 0 then Error (Printf.sprintf "negative crash step %d" step)
      else Ok ()
    | Silence { service; _ } ->
      if
        Array.exists
          (fun (c : Model.Service.t) -> String.equal c.Model.Service.id service)
          sys.Model.System.services
      then Ok ()
      else Error (Printf.sprintf "silence of unknown service %S" service)
  in
  List.fold_left
    (fun acc fault -> Result.bind acc (fun () -> check fault))
    (Ok ()) t.faults

type compiled = {
  now : int ref;
  pending : (int * int) list ref;  (* crash (step, pid), sorted by step *)
  silences : (int * int) list;  (* (service position, activation step) *)
  latest_silence : int;
  policy : Model.System.policy;
}

let compile t sys =
  (match validate sys t with Ok () -> () | Error e -> invalid_arg ("Chaos.Schedule: " ^ e));
  let now = ref (-1) in
  let silences =
    List.filter_map
      (function
        | Silence { step; service } -> Some (Model.System.service_pos sys service, step)
        | Crash _ -> None)
      t.faults
  in
  let latest_silence = List.fold_left (fun acc (_, s) -> max acc s) 0 silences in
  let silenced svc =
    List.exists (fun (pos, step) -> pos = svc && step <= !now) silences
  in
  let policy task =
    match List.find_opt (fun (t', _) -> Model.Task.equal t' task) t.overrides with
    | Some (_, pref) -> pref
    | None -> (
      match task with
      | Model.Task.Svc_perform { svc; _ }
      | Model.Task.Svc_output { svc; _ }
      | Model.Task.Svc_compute { svc; _ }
        when silenced svc ->
        Model.System.Prefer_dummy
      | _ -> t.default_pref)
  in
  { now; pending = ref (crashes t); silences; latest_silence; policy }

let policy c = c.policy

let due c ~step =
  c.now := max !(c.now) step;
  match !(c.pending) with
  | (at, pid) :: rest when step >= at ->
    c.pending := rest;
    Some pid
  | _ -> None

let exhausted c = !(c.pending) = []
let undelivered c = List.length !(c.pending)

let fully_active c ~step = exhausted c && step >= c.latest_silence

let to_scheduler ?(quiesce = true) t (sys : Model.System.t) =
  let c = compile t sys in
  let tasks = sys.Model.System.tasks in
  let cursor = ref 0 in
  let silent = ref 0 in
  let prev : Model.State.t option ref = ref None in
  let sched ~step s =
    (match !prev with
    | Some s' when Model.State.equal s s' -> incr silent
    | _ -> silent := 0);
    prev := Some s;
    if quiesce && exhausted c && !silent > Array.length tasks then Model.Scheduler.Stop
    else
      match due c ~step with
      | Some pid ->
        silent := 0;
        Model.Scheduler.Do_fail pid
      | None ->
        let task = tasks.(!cursor mod Array.length tasks) in
        incr cursor;
        Model.Scheduler.Do_task task
  in
  sched, c.policy
