type fault =
  | Crash of { step : int; pid : int }
  | Silence of { step : int; service : string }
  | Drop of { step : int; service : string; endpoint : int }
  | Duplicate of { step : int; service : string; endpoint : int }
  | Delay of { step : int; service : string; endpoint : int; lag : int }
  | Partition of { step : int; blocks : int list list; heal_at : int }

type kind = Crash_k | Silence_k | Drop_k | Dup_k | Delay_k | Partition_k

let all_kinds = [ Crash_k; Silence_k; Drop_k; Dup_k; Delay_k; Partition_k ]

let kind_of_fault = function
  | Crash _ -> Crash_k
  | Silence _ -> Silence_k
  | Drop _ -> Drop_k
  | Duplicate _ -> Dup_k
  | Delay _ -> Delay_k
  | Partition _ -> Partition_k

let kind_to_string = function
  | Crash_k -> "crash"
  | Silence_k -> "silence"
  | Drop_k -> "drop"
  | Dup_k -> "dup"
  | Delay_k -> "delay"
  | Partition_k -> "partition"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let kind_of_string = function
  | "crash" -> Some Crash_k
  | "silence" -> Some Silence_k
  | "drop" -> Some Drop_k
  | "dup" | "duplicate" -> Some Dup_k
  | "delay" -> Some Delay_k
  | "partition" -> Some Partition_k
  | _ -> None

let parse_kinds s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun tok -> tok <> "")
  |> List.fold_left
       (fun acc tok ->
         Result.bind acc (fun ks ->
             match kind_of_string tok with
             | Some k -> Ok (if List.mem k ks then ks else ks @ [ k ])
             | None ->
               Error
                 (Printf.sprintf "unknown fault kind %S; accepted kinds: %s (e.g. --faults crash)"
                    tok
                    (String.concat ", " (List.map kind_to_string all_kinds)))))
       (Ok [])
  |> function
  | Ok [] ->
    Error
      (Printf.sprintf "empty fault-kind list; accepted kinds: %s (e.g. --faults crash)"
         (String.concat ", " (List.map kind_to_string all_kinds)))
  | r -> r

type t = {
  faults : fault list;
  default_pref : Model.System.pref;
  overrides : (Model.Task.t * Model.System.pref) list;
}

let crash ~step ~pid = Crash { step; pid }
let silence ~step ~service = Silence { step; service }
let drop ~step ~service ~endpoint = Drop { step; service; endpoint }
let duplicate ~step ~service ~endpoint = Duplicate { step; service; endpoint }
let delay ~step ~service ~endpoint ~lag = Delay { step; service; endpoint; lag }
let partition ~step ~blocks ~heal_at = Partition { step; blocks; heal_at }

let fault_step = function
  | Crash { step; _ }
  | Silence { step; _ }
  | Drop { step; _ }
  | Duplicate { step; _ }
  | Delay { step; _ }
  | Partition { step; _ } -> step

let make ?(default_pref = Model.System.Prefer_dummy) ?(overrides = []) faults =
  let faults = List.stable_sort (fun a b -> Int.compare (fault_step a) (fault_step b)) faults in
  { faults; default_pref; overrides }

let empty = make []

(* Shrinking minimizes along this kind order: duplications are the cheapest
   faults to give up, partitions the dearest (ISSUE 5 — "drop a Duplicate
   before weakening a Partition"). *)
let kind_rank = function
  | Crash _ -> 0
  | Silence _ -> 1
  | Drop _ -> 2
  | Duplicate _ -> 3
  | Delay _ -> 4
  | Partition _ -> 5

let compare_blocks = List.compare (List.compare Int.compare)

let compare_fault a b =
  match a, b with
  | Crash a, Crash b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c else Int.compare a.pid b.pid
  | Silence a, Silence b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c else String.compare a.service b.service
  | Drop a, Drop b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c
    else
      let c = String.compare a.service b.service in
      if c <> 0 then c else Int.compare a.endpoint b.endpoint
  | Duplicate a, Duplicate b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c
    else
      let c = String.compare a.service b.service in
      if c <> 0 then c else Int.compare a.endpoint b.endpoint
  | Delay a, Delay b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c
    else
      let c = String.compare a.service b.service in
      if c <> 0 then c
      else
        let c = Int.compare a.endpoint b.endpoint in
        if c <> 0 then c else Int.compare a.lag b.lag
  | Partition a, Partition b ->
    let c = Int.compare a.step b.step in
    if c <> 0 then c
    else
      let c = Int.compare a.heal_at b.heal_at in
      if c <> 0 then c else compare_blocks a.blocks b.blocks
  | a, b -> Int.compare (kind_rank a) (kind_rank b)

let equal_fault a b = compare_fault a b = 0

let equal a b =
  List.equal equal_fault a.faults b.faults
  && a.default_pref = b.default_pref
  && List.equal
       (fun (t1, p1) (t2, p2) -> Model.Task.equal t1 t2 && p1 = p2)
       a.overrides b.overrides

let pref_rank = function Model.System.Prefer_dummy -> 0 | Model.System.Prefer_real -> 1

let compare a b =
  let c = List.compare compare_fault a.faults b.faults in
  if c <> 0 then c
  else
    let c = Int.compare (pref_rank a.default_pref) (pref_rank b.default_pref) in
    if c <> 0 then c
    else
      List.compare
        (fun (t1, p1) (t2, p2) ->
          let c = Model.Task.compare t1 t2 in
          if c <> 0 then c else Int.compare (pref_rank p1) (pref_rank p2))
        a.overrides b.overrides

let map_steps f t =
  let faults =
    List.map
      (function
        | Crash { step; pid } -> Crash { step = f step; pid }
        | Silence { step; service } -> Silence { step = f step; service }
        | Drop { step; service; endpoint } -> Drop { step = f step; service; endpoint }
        | Duplicate { step; service; endpoint } -> Duplicate { step = f step; service; endpoint }
        | Delay { step; service; endpoint; lag } -> Delay { step = f step; service; endpoint; lag }
        | Partition { step; blocks; heal_at } ->
          (* Rebase both edges; keep heal strictly after onset so the result
             still validates. *)
          let step' = f step in
          Partition { step = step'; blocks; heal_at = max (f heal_at) (step' + 1) })
      t.faults
  in
  make ~default_pref:t.default_pref ~overrides:t.overrides faults

let crashes t =
  List.filter_map (function Crash { step; pid } -> Some (step, pid) | _ -> None) t.faults

let n_crashes t = List.length (crashes t)
let crashed_pids t = List.sort_uniq Int.compare (List.map snd (crashes t))
let n_faults t = List.length t.faults

let net_faults t =
  List.filter
    (function Drop _ | Duplicate _ | Delay _ | Partition _ -> true | Crash _ | Silence _ -> false)
    t.faults

let is_crash_only t =
  List.for_all (function Crash _ -> true | _ -> false) t.faults

let pp_blocks = Model.Event.pp_blocks

let pp_fault ppf = function
  | Crash { step; pid } -> Format.fprintf ppf "crash@%d:%d" step pid
  | Silence { step; service } -> Format.fprintf ppf "silence@%d:%s" step service
  | Drop { step; service; endpoint } -> Format.fprintf ppf "drop@%d:%s:%d" step service endpoint
  | Duplicate { step; service; endpoint } ->
    Format.fprintf ppf "dup@%d:%s:%d" step service endpoint
  | Delay { step; service; endpoint; lag } ->
    Format.fprintf ppf "delay@%d:%s:%d:%d" step service endpoint lag
  | Partition { step; blocks; heal_at } ->
    Format.fprintf ppf "partition@%d:%a:%d" step pp_blocks blocks heal_at

let pp_pref ppf = function
  | Model.System.Prefer_real -> Format.pp_print_string ppf "helpful"
  | Model.System.Prefer_dummy -> Format.pp_print_string ppf "silencing"

let pp ppf t =
  Format.fprintf ppf "@[<h>%a adversary" pp_pref t.default_pref;
  if t.faults = [] then Format.fprintf ppf ", no faults"
  else
    Format.fprintf ppf ": %a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_fault)
      t.faults;
  List.iter
    (fun (task, pref) ->
      Format.fprintf ppf ",@ %a->%a" Model.Task.pp task pp_pref pref)
    t.overrides;
  Format.fprintf ppf "@]"

let to_string t =
  let faults = List.map (Format.asprintf "%a" pp_fault) t.faults in
  let parts =
    match t.default_pref with
    | Model.System.Prefer_real -> "helpful" :: faults
    | Model.System.Prefer_dummy -> faults
  in
  String.concat "," parts

let parse s =
  let s =
    (* Witness files append '#'-prefixed annotation lines (the degradation
       trajectory) after the schedule; drop them so witnesses round-trip. *)
    String.split_on_char '\n' s
    |> List.filter (fun line ->
           let line = String.trim line in
           line = "" || line.[0] <> '#')
    |> String.concat ","
  in
  let tokens =
    String.split_on_char ',' s
    |> List.concat_map (String.split_on_char ' ')
    |> List.map String.trim
    |> List.filter (fun tok -> tok <> "")
  in
  let parse_int what str =
    match int_of_string_opt str with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "bad %s %S" what str)
  in
  let parse_blocks str =
    (* pids joined by '.', blocks by '|': "0.1|2" *)
    String.split_on_char '|' str
    |> List.fold_left
         (fun acc blk ->
           Result.bind acc (fun blocks ->
               String.split_on_char '.' blk
               |> List.fold_left
                    (fun acc p ->
                      Result.bind acc (fun pids ->
                          Result.map (fun p -> p :: pids) (parse_int "pid" p)))
                    (Ok [])
               |> Result.map (fun pids -> List.rev pids :: blocks)))
         (Ok [])
    |> Result.map List.rev
  in
  let ( let* ) = Result.bind in
  let rec go acc pref = function
    | [] -> Ok (make ?default_pref:pref (List.rev acc))
    | "helpful" :: rest -> go acc (Some Model.System.Prefer_real) rest
    | "silencing" :: rest -> go acc (Some Model.System.Prefer_dummy) rest
    | tok :: rest -> (
      match String.index_opt tok '@' with
      | Some i ->
        let kind = String.sub tok 0 i in
        let body = String.sub tok (i + 1) (String.length tok - i - 1) in
        let parts = String.split_on_char ':' body in
        let* fault =
          match kind, parts with
          | "crash", [ step; pid ] ->
            let* step = parse_int "step" step in
            let* pid = parse_int "pid" pid in
            Ok (crash ~step ~pid)
          | "silence", [ step; service ] ->
            let* step = parse_int "step" step in
            Ok (silence ~step ~service)
          | "drop", [ step; service; ep ] ->
            let* step = parse_int "step" step in
            let* endpoint = parse_int "endpoint" ep in
            Ok (drop ~step ~service ~endpoint)
          | ("dup" | "duplicate"), [ step; service; ep ] ->
            let* step = parse_int "step" step in
            let* endpoint = parse_int "endpoint" ep in
            Ok (duplicate ~step ~service ~endpoint)
          | "delay", [ step; service; ep; lag ] ->
            let* step = parse_int "step" step in
            let* endpoint = parse_int "endpoint" ep in
            let* lag = parse_int "lag" lag in
            Ok (delay ~step ~service ~endpoint ~lag)
          | "partition", [ step; blocks; heal ] ->
            let* step = parse_int "step" step in
            let* blocks = parse_blocks blocks in
            let* heal_at = parse_int "heal step" heal in
            Ok (partition ~step ~blocks ~heal_at)
          | ("crash" | "silence" | "drop" | "dup" | "duplicate" | "delay" | "partition"), _ ->
            Error (Printf.sprintf "malformed %s fault %S" kind tok)
          | k, _ -> Error (Printf.sprintf "unknown fault kind %S" k)
        in
        go (fault :: acc) pref rest
      | None -> (
        (* Shorthand STEP:PID for a crash, matching round_robin's faults. *)
        match String.split_on_char ':' tok with
        | [ step; pid ] ->
          let* step = parse_int "step" step in
          let* pid = parse_int "pid" pid in
          go (crash ~step ~pid :: acc) pref rest
        | _ -> Error (Printf.sprintf "expected STEP:PID in %S" tok)))
  in
  go [] None tokens

let validate sys t =
  let n = Model.System.n_processes sys in
  let find_service service =
    Array.find_opt
      (fun (c : Model.Service.t) -> String.equal c.Model.Service.id service)
      sys.Model.System.services
  in
  let check_endpoint what service endpoint =
    match find_service service with
    | None -> Error (Printf.sprintf "%s at unknown service %S" what service)
    | Some c ->
      if Array.exists (fun i -> i = endpoint) c.Model.Service.endpoints then Ok ()
      else
        Error
          (Printf.sprintf "%s endpoint %d is not connected to service %S" what endpoint service)
  in
  let check = function
    | Crash { pid; step } ->
      if pid < 0 || pid >= n then Error (Printf.sprintf "crash pid %d out of range" pid)
      else if step < 0 then Error (Printf.sprintf "negative crash step %d" step)
      else Ok ()
    | Silence { service; _ } ->
      if Option.is_some (find_service service) then Ok ()
      else Error (Printf.sprintf "silence of unknown service %S" service)
    | Drop { service; endpoint; _ } -> check_endpoint "drop" service endpoint
    | Duplicate { service; endpoint; _ } -> check_endpoint "dup" service endpoint
    | Delay { service; endpoint; lag; _ } ->
      if lag < 1 then Error (Printf.sprintf "delay lag %d must be >= 1" lag)
      else check_endpoint "delay" service endpoint
    | Partition { step; blocks; heal_at } ->
      if blocks = [] || List.exists (fun b -> b = []) blocks then
        Error "partition with an empty block"
      else if heal_at <= step then
        Error (Printf.sprintf "partition heals at %d, not after step %d" heal_at step)
      else
        let pids = List.concat blocks in
        if List.exists (fun i -> i < 0 || i >= n) pids then
          Error "partition block pid out of range"
        else if List.length (List.sort_uniq Int.compare pids) <> List.length pids then
          Error "partition blocks overlap"
        else Ok ()
  in
  List.fold_left
    (fun acc fault -> Result.bind acc (fun () -> check fault))
    (Ok ()) t.faults

type delivery =
  | Deliver_fail of int
  | Deliver_net of { service : string; endpoint : int; kind : Model.Event.net_kind }
  | Deliver_partition of { blocks : int list list; heal_at : int }
  | Deliver_heal of int list list

type compiled = {
  now : int ref;
  pending : (int * delivery) list ref;  (* deliveries, sorted by step *)
  silences : (int * int) list;  (* (service position, activation step) *)
  latest_silence : int;
  partitions : (int * int * int list list) list;  (* (from, heal_at, blocks) *)
  policy : Model.System.policy;
}

let deliveries t =
  List.concat_map
    (function
      | Crash { step; pid } -> [ step, Deliver_fail pid ]
      | Silence _ -> []
      | Drop { step; service; endpoint } ->
        [ step, Deliver_net { service; endpoint; kind = Model.Event.Drop } ]
      | Duplicate { step; service; endpoint } ->
        [ step, Deliver_net { service; endpoint; kind = Model.Event.Duplicate } ]
      | Delay { step; service; endpoint; lag } ->
        [ step, Deliver_net { service; endpoint; kind = Model.Event.Delay lag } ]
      | Partition { step; blocks; heal_at } ->
        [ step, Deliver_partition { blocks; heal_at }; heal_at, Deliver_heal blocks ])
    t.faults
  |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)

let compile t sys =
  (match validate sys t with Ok () -> () | Error e -> invalid_arg ("Chaos.Schedule: " ^ e));
  let now = ref (-1) in
  let silences =
    List.filter_map
      (function
        | Silence { step; service } -> Some (Model.System.service_pos sys service, step)
        | _ -> None)
      t.faults
  in
  let latest_silence = List.fold_left (fun acc (_, s) -> max acc s) 0 silences in
  let partitions =
    List.filter_map
      (function
        | Partition { step; blocks; heal_at } -> Some (step, heal_at, blocks)
        | _ -> None)
      t.faults
  in
  let silenced svc =
    List.exists (fun (pos, step) -> pos = svc && step <= !now) silences
  in
  let policy task =
    match List.find_opt (fun (t', _) -> Model.Task.equal t' task) t.overrides with
    | Some (_, pref) -> pref
    | None -> (
      match task with
      | Model.Task.Svc_perform { svc; _ }
      | Model.Task.Svc_output { svc; _ }
      | Model.Task.Svc_compute { svc; _ }
        when silenced svc ->
        Model.System.Prefer_dummy
      | _ -> t.default_pref)
  in
  { now; pending = ref (deliveries t); silences; latest_silence; partitions; policy }

let policy c = c.policy

let due c ~step =
  c.now := max !(c.now) step;
  match !(c.pending) with
  | (at, d) :: rest when step >= at ->
    c.pending := rest;
    Some d
  | _ -> None

let exhausted c = !(c.pending) = []

let undelivered c =
  List.length
    (List.filter (function _, Deliver_fail _ -> true | _ -> false) !(c.pending))

let undelivered_net c =
  List.length
    (List.filter
       (function _, (Deliver_net _ | Deliver_partition _) -> true | _ -> false)
       !(c.pending))

let fully_active c ~step = exhausted c && step >= c.latest_silence

(* Which block of an active partition holds pid [i]; [None] means the
   implicit residual block of processes not listed. *)
let block_idx blocks i =
  let rec go idx = function
    | [] -> None
    | b :: rest -> if List.mem i b then Some idx else go (idx + 1) rest
  in
  go 0 blocks

let separated c i j =
  i <> j
  && List.exists
       (fun (from, heal_at, blocks) ->
         from <= !(c.now)
         && !(c.now) < heal_at
         && block_idx blocks i <> block_idx blocks j)
       c.partitions

(* A service-output turn is held back by an active partition when the
   response waiting at the head of the endpoint's buffer crossed a block
   boundary: for network packets the sender is in the payload; for other
   services the (atomic, shared) service is reachable as long as any other
   endpoint shares the endpoint's block — only a fully isolated process
   loses it (§6.3: the service is no longer "connected to" that process). *)
let blocked_endpoint c sys s ~svc ~endpoint =
  c.partitions <> []
  &&
  let service : Model.Service.t = sys.Model.System.services.(svc) in
  match Model.Service.endpoint_pos service endpoint with
  | None -> false
  | Some pos -> (
    match s.Model.State.svcs.(svc).Model.State.resp_bufs.(pos) with
    | [] -> false
    | b :: _ ->
      if Services.Network.is_packet b then
        let _, src = Services.Network.packet_parts b in
        separated c src endpoint
      else
        Array.length service.Model.Service.endpoints > 1
        && Array.for_all
             (fun j -> j = endpoint || separated c j endpoint)
             service.Model.Service.endpoints)

let blocked c sys s task =
  match task with
  | Model.Task.Svc_output { svc; endpoint } -> blocked_endpoint c sys s ~svc ~endpoint
  | _ -> false

let decision_of_delivery ~silent = function
  | Deliver_fail pid ->
    silent := 0;
    Model.Scheduler.Do_fail pid
  | Deliver_net { service; endpoint; kind } ->
    silent := 0;
    Model.Scheduler.Do_net { service; endpoint; kind }
  | Deliver_partition { blocks; _ } ->
    silent := 0;
    Model.Scheduler.Do_partition blocks
  | Deliver_heal blocks ->
    silent := 0;
    Model.Scheduler.Do_heal blocks

let to_scheduler ?(quiesce = true) t (sys : Model.System.t) =
  let c = compile t sys in
  let tasks = sys.Model.System.tasks in
  let cursor = ref 0 in
  let silent = ref 0 in
  let prev : Model.State.t option ref = ref None in
  let sched ~step s =
    (match !prev with
    | Some s' when Model.State.equal s s' -> incr silent
    | _ -> silent := 0);
    prev := Some s;
    if quiesce && exhausted c && !silent > Array.length tasks then Model.Scheduler.Stop
    else
      match due c ~step with
      | Some d -> decision_of_delivery ~silent d
      | None ->
        let task = tasks.(!cursor mod Array.length tasks) in
        incr cursor;
        if blocked c sys s task then Model.Scheduler.Skip
        else Model.Scheduler.Do_task task
  in
  sched, c.policy
