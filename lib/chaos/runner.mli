(** The monitored chaos run: drive a system under a compiled fault schedule,
    checking safety monitors per step and liveness monitors at the end.

    The task order is either the fair round-robin (with lasso detection:
    once the schedule is {!Schedule.fully_active}, a repeated
    (cursor, state) pair proves the run cycles forever, turning liveness
    verdicts into proofs) or a seeded-random interleaving with exact replay
    (the same seed reproduces the identical execution; asserted in tests). *)

type interleave =
  | Round_robin
  | Seeded of int  (** Uniform random task choice from this seed. *)

type stop =
  | Violation of { monitor : string; reason : string; proven : bool }
      (** [proven] is true for safety violations (the prefix is the witness)
          and for liveness violations established at a lasso; false when the
          evidence is only budget-bounded. *)
  | Lasso of { period : int }  (** All monitors passed; run provably cycles. *)
  | Budget  (** All monitors passed within the step budget. *)
  | Pruned
      (** The [on_active] probe recognized the configuration at schedule
          activation as already explored: the run was cut short, inheriting
          the recorded run's verdict. Only produced when a probe is given. *)

type result = {
  exec : Model.Exec.t;  (** The violating prefix, or the full bounded run. *)
  steps : int;
  stop : stop;
  monitor_truncations : (string * Monitor.category * string) list;
      (** Monitors that declined to decide, with reasons — reported, never
          silently dropped. *)
  undelivered_crashes : int;
      (** Crashes scheduled beyond the executed step range. *)
  undelivered_net : int;
      (** Net faults / partition starts scheduled beyond the executed
          range. *)
  vacuous_net_faults : int;
      (** Delivered net faults that found an empty buffer and mutated
          nothing; they leave no event in the execution. *)
}

val pp_stop : Format.formatter -> stop -> unit

val default_inputs : Model.System.t -> Ioa.Value.t list
(** Binary inputs [i mod 2], the staircase convention used elsewhere. *)

type prefix
(** The shared fault-free round-robin prefix of an exploration: every
    crash-only candidate under the silencing adversary behaves identically
    until its first crash is delivered (no failures, so no dummy action is
    enabled and the preference policy cannot bite, §2.1.3). Built once with
    {!val-prefix} and passed to {!run}, which then resumes each candidate at
    its first crash step instead of re-executing the common stem. Immutable
    after construction; safe to share across domains. *)

val prefix :
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?inputs:Ioa.Value.t list ->
  steps:int ->
  Model.System.t ->
  prefix
(** Walk the fault-free round-robin execution up to [steps] steps,
    performing the same per-step safety-monitor checks as {!run} and
    snapshotting every prefix. The walk stops early at a safety violation or
    at [max_steps]; runs whose first crash lands at or past the stop end
    identically and inherit the recorded outcome. Must be built with the
    same [monitors], [max_steps] and [inputs] the runs it serves use —
    resuming is unsound otherwise. *)

val run :
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?interleave:interleave ->
  ?inputs:Ioa.Value.t list ->
  ?on_active:(step:int -> cursor:int -> Model.Exec.t -> [ `Continue | `Prune ]) ->
  ?prefix:prefix ->
  schedule:Schedule.t ->
  Model.System.t ->
  result
(** Defaults: {!Monitor.defaults}, 20_000 steps, [Round_robin], binary
    inputs.

    [on_active], if given, is called exactly once, at the first [Round_robin]
    step where the compiled schedule is {!Schedule.fully_active} — the point
    from which the continuation is a deterministic function of the cursor and
    the state. [cursor] is already reduced mod the task count. Returning
    [`Prune] stops the run immediately with {!Pruned} and {e without}
    evaluating end-of-run monitors: the caller asserts it has already
    examined an equivalent configuration. Never called under [Seeded]
    interleaving. Without the argument, behaviour is byte-identical to the
    probe-free runner.

    [prefix] is consulted only under [Round_robin], and only for schedules
    whose own prefix provably coincides with the shared one (crashes only,
    silencing adversary, no overrides); it changes the cost, never the
    result. *)
