(** The monitored chaos run: drive a system under a compiled fault schedule,
    checking safety monitors per step and liveness monitors at the end.

    The task order is either the fair round-robin (with lasso detection:
    once the schedule is {!Schedule.fully_active}, a repeated
    (cursor, state) pair proves the run cycles forever, turning liveness
    verdicts into proofs) or a seeded-random interleaving with exact replay
    (the same seed reproduces the identical execution; asserted in tests). *)

type interleave =
  | Round_robin
  | Seeded of int  (** Uniform random task choice from this seed. *)

type stop =
  | Violation of { monitor : string; reason : string; proven : bool }
      (** [proven] is true for safety violations (the prefix is the witness)
          and for liveness violations established at a lasso; false when the
          evidence is only budget-bounded. *)
  | Lasso of { period : int }  (** All monitors passed; run provably cycles. *)
  | Budget  (** All monitors passed within the step budget. *)

type result = {
  exec : Model.Exec.t;  (** The violating prefix, or the full bounded run. *)
  steps : int;
  stop : stop;
  monitor_truncations : (string * string) list;
      (** Monitors that declined to decide, with reasons — reported, never
          silently dropped. *)
  undelivered_crashes : int;
      (** Crashes scheduled beyond the executed step range. *)
}

val pp_stop : Format.formatter -> stop -> unit

val default_inputs : Model.System.t -> Ioa.Value.t list
(** Binary inputs [i mod 2], the staircase convention used elsewhere. *)

val run :
  ?monitors:Monitor.t list ->
  ?max_steps:int ->
  ?interleave:interleave ->
  ?inputs:Ioa.Value.t list ->
  schedule:Schedule.t ->
  Model.System.t ->
  result
(** Defaults: {!Monitor.defaults}, 20_000 steps, [Round_robin], binary
    inputs. *)
