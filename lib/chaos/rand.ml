let interleave ~seed = Runner.Seeded (seed lxor 0x5EED7)

let schedule ~seed ?(max_faults = 1) ?(silence_prob = 0.25) ?horizon (sys : Model.System.t) =
  let rng = Random.State.make [| seed; 0xC4A05 |] in
  let n = Model.System.n_processes sys in
  let horizon =
    match horizon with Some h -> h | None -> 2 * Array.length sys.Model.System.tasks
  in
  let k = Random.State.int rng (min max_faults n + 1) in
  (* k distinct pids via a seeded Fisher–Yates prefix. *)
  let pids = Array.init n Fun.id in
  for i = 0 to min k (n - 1) - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = pids.(i) in
    pids.(i) <- pids.(j);
    pids.(j) <- tmp
  done;
  let crashes =
    List.init k (fun i ->
      Schedule.crash ~step:(Random.State.int rng horizon) ~pid:pids.(i))
  in
  let silences =
    Array.to_list sys.Model.System.services
    |> List.filter_map (fun (c : Model.Service.t) ->
         if Random.State.float rng 1.0 < silence_prob then
           Some
             (Schedule.silence ~step:(Random.State.int rng horizon)
                ~service:c.Model.Service.id)
         else None)
  in
  Schedule.make (crashes @ silences)

let run ~seed ?max_faults ?silence_prob ?horizon ?monitors ?max_steps ?inputs sys =
  let sched = schedule ~seed ?max_faults ?silence_prob ?horizon sys in
  let r =
    Runner.run ?monitors ?max_steps ~interleave:(interleave ~seed) ?inputs ~schedule:sched
      sys
  in
  r, sched
