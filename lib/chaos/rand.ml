let interleave ~seed = Runner.Seeded (seed lxor 0x5EED7)

let default_kinds = [ Schedule.Crash_k; Schedule.Silence_k ]

let schedule ~seed ?(max_faults = 1) ?(silence_prob = 0.25) ?horizon
    ?(kinds = default_kinds) (sys : Model.System.t) =
  let rng = Random.State.make [| seed; 0xC4A05 |] in
  let n = Model.System.n_processes sys in
  let horizon =
    match horizon with Some h -> h | None -> 2 * Array.length sys.Model.System.tasks
  in
  let want k = List.mem k kinds in
  (* The crash/silence draws below always consume the legacy generator in
     the legacy order, whether or not their kind is requested: with the
     default [kinds] the produced schedule is byte-identical to the pre-net
     engine (the seed-replay pin in the tests), and narrowing [kinds] never
     shifts another kind's stream. *)
  let k = Random.State.int rng (min max_faults n + 1) in
  (* k distinct pids via a seeded Fisher–Yates prefix. *)
  let pids = Array.init n Fun.id in
  for i = 0 to min k (n - 1) - 1 do
    let j = i + Random.State.int rng (n - i) in
    let tmp = pids.(i) in
    pids.(i) <- pids.(j);
    pids.(j) <- tmp
  done;
  let crashes =
    List.init k (fun i ->
      Schedule.crash ~step:(Random.State.int rng horizon) ~pid:pids.(i))
  in
  let crashes = if want Schedule.Crash_k then crashes else [] in
  let silences =
    Array.to_list sys.Model.System.services
    |> List.filter_map (fun (c : Model.Service.t) ->
         let hit = Random.State.float rng 1.0 < silence_prob in
         if hit && want Schedule.Silence_k then
           Some
             (Schedule.silence ~step:(Random.State.int rng horizon)
                ~service:c.Model.Service.id)
         else begin
           (* Keep the draw pattern fixed: a silenced-but-unwanted service
              still consumes its step draw. *)
           if hit then ignore (Random.State.int rng horizon);
           None
         end)
  in
  (* Network faults come from a second, independently-seeded generator so
     that requesting them leaves the crash/silence stream untouched. *)
  let net_kinds =
    List.filter
      (function
        | Schedule.Drop_k | Schedule.Dup_k | Schedule.Delay_k | Schedule.Partition_k ->
          true
        | Schedule.Crash_k | Schedule.Silence_k -> false)
      kinds
  in
  let net =
    if net_kinds = [] then []
    else begin
      let nrng = Random.State.make [| seed; 0x0F417 |] in
      let sites =
        Array.to_list sys.Model.System.services
        |> List.concat_map (fun (c : Model.Service.t) ->
             List.map
               (fun ep -> c.Model.Service.id, ep)
               (Array.to_list c.Model.Service.endpoints))
      in
      let kinds_arr = Array.of_list net_kinds in
      let m = Random.State.int nrng (max_faults + 1) in
      List.init m (fun _ ->
        let step = Random.State.int nrng horizon in
        match kinds_arr.(Random.State.int nrng (Array.length kinds_arr)) with
        | Schedule.Partition_k ->
          if n < 2 then None
          else
            let pid = Random.State.int nrng n in
            let heal_at = step + 1 + Random.State.int nrng (max 1 (horizon / 2)) in
            Some (Schedule.partition ~step ~blocks:[ [ pid ] ] ~heal_at)
        | kind ->
          if sites = [] then None
          else
            let service, endpoint = List.nth sites (Random.State.int nrng (List.length sites)) in
            (match kind with
            | Schedule.Drop_k -> Some (Schedule.drop ~step ~service ~endpoint)
            | Schedule.Dup_k -> Some (Schedule.duplicate ~step ~service ~endpoint)
            | Schedule.Delay_k ->
              Some
                (Schedule.delay ~step ~service ~endpoint
                   ~lag:(1 + Random.State.int nrng 3))
            | Schedule.Crash_k | Schedule.Silence_k | Schedule.Partition_k ->
              assert false))
      |> List.filter_map Fun.id
    end
  in
  Schedule.make (crashes @ silences @ net)

let run ~seed ?max_faults ?silence_prob ?horizon ?kinds ?monitors ?max_steps ?inputs sys
    =
  let sched = schedule ~seed ?max_faults ?silence_prob ?horizon ?kinds sys in
  let r =
    Runner.run ?monitors ?max_steps ~interleave:(interleave ~seed) ?inputs ~schedule:sched
      sys
  in
  r, sched
