module Event = Model.Event
module Exec = Model.Exec
module Service = Model.Service
module System = Model.System
module Gvector = Analysis.Gvector

(* ---- adversary damage, folded from the execution ------------------------ *)

type t = {
  crashed : Spec.Iset.t;
  dropped : (string * int) list;
  mutated : string list;
  active : int list list list;
  was_partitioned : bool;
}

let empty =
  { crashed = Spec.Iset.empty; dropped = []; mutated = []; active = []; was_partitioned = false }

let absorb d = function
  | Event.Fail i -> { d with crashed = Spec.Iset.add i d.crashed }
  | Event.Net { service; endpoint; kind } ->
    let mutated =
      if List.mem service d.mutated then d.mutated else service :: d.mutated
    in
    let dropped =
      match kind with
      | Event.Drop -> (service, endpoint) :: d.dropped
      | Event.Duplicate | Event.Delay _ -> d.dropped
    in
    { d with mutated; dropped }
  | Event.Partition blocks ->
    { d with active = d.active @ [ blocks ]; was_partitioned = true }
  | Event.Heal blocks ->
    let rec remove = function
      | [] -> []
      | b :: bs -> if b = blocks then bs else b :: remove bs
    in
    { d with active = remove d.active }
  | _ -> d

(* ---- direct builders (workload engine) ----------------------------------- *)

let crash d pid = absorb d (Event.Fail pid)
let partition d blocks = absorb d (Event.Partition blocks)
let heal d blocks = absorb d (Event.Heal blocks)
let mutate d ~service ~endpoint ~kind = absorb d (Event.Net { service; endpoint; kind })

(* Crash-recovery: the inverse of [crash]. No adversary event maps to it —
   rejoining is a protocol-layer act (the workload engine's catch-up), not a
   model transition — so it exists only as a builder. *)
let uncrash d pid = { d with crashed = Spec.Iset.remove pid d.crashed }

let of_exec exec =
  List.fold_left (fun d s -> absorb d s.Exec.event) empty exec.Exec.rev_steps
(* rev_steps is newest-first, but [absorb] is order-insensitive except for
   partition/heal matching; heals remove the first equal block list, which is
   the same multiset operation in either direction. *)

(* ---- partition geometry -------------------------------------------------- *)

(* Same block semantics as {!Schedule.separated}: a pid in none of the blocks
   belongs to an implicit residual block shared by every other unlisted pid. *)
let block_idx blocks i =
  let rec go idx = function
    | [] -> None
    | b :: rest -> if List.mem i b then Some idx else go (idx + 1) rest
  in
  go 0 blocks

let separated d i j =
  i <> j && List.exists (fun blocks -> block_idx blocks i <> block_idx blocks j) d.active

let partition_active d = d.active <> []

let drop_victims d = Spec.Iset.of_list (List.map snd d.dropped)
let dropped d ~service = List.exists (fun (s, _) -> String.equal s service) d.dropped
let mutated d ~service = List.mem service d.mutated

(* ---- the live vector ----------------------------------------------------- *)

let has_network_service (sys : System.t) pid =
  Array.exists
    (fun (c : Service.t) ->
      String.equal c.Service.gtype.Spec.General_type.name "network"
      && Service.endpoint_pos c pid <> None)
    sys.System.services

let service_live_vector d (c : Service.t) =
  let v = Analysis.Guarantee.of_service c in
  let v =
    (* Crashes beyond the resilience threshold may silence the service. *)
    let nc = Spec.Iset.cardinal (Service.failed_endpoints c d.crashed) in
    if nc = 0 then v
    else
      match v.Gvector.termination with
      | Gvector.Term_crashes f ->
        {
          v with
          Gvector.termination =
            (if nc > f then Gvector.Term_none else Gvector.Term_crashes (f - nc));
        }
      | Gvector.Term_wait_free | Gvector.Term_none -> v
  in
  let v =
    if dropped d ~service:c.Service.id then
      (* A stolen response is gone for good: the victim endpoint's liveness
         and the service's freshness are no longer promised. *)
      { v with Gvector.recency = Gvector.Rec_none; termination = Gvector.Term_none }
    else if mutated d ~service:c.Service.id then
      {
        v with
        Gvector.recency =
          Gvector.(if v.recency = Rec_none then Rec_none else Rec_eventual);
      }
    else v
  in
  let v =
    if
      partition_active d
      && Array.exists
           (fun i -> Array.exists (fun j -> separated d i j) c.Service.endpoints)
           c.Service.endpoints
    then
      (* Some pair of participants is cut: delivery across the cut waits for
         the heal (eventual, not lost — partitions hold packets, they do not
         steal them). *)
      {
        v with
        Gvector.recency =
          Gvector.(if v.recency = Rec_none then Rec_none else Rec_eventual);
      }
    else v
  in
  v

(* Scope under damage: union-find as in {!Analysis.Guarantee.islands}, but an
   edge between two endpoints of a service only survives when no active
   partition separates them. *)
let live_islands (sys : System.t) d =
  let n = System.n_processes sys in
  if n = 0 then 0
  else begin
    let parent = Array.init n Fun.id in
    let rec find i = if parent.(i) = i then i else find parent.(i) in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then parent.(ri) <- rj
    in
    Array.iter
      (fun (c : Service.t) ->
        Array.iter
          (fun i ->
            Array.iter
              (fun j -> if i < j && i < n && j < n && not (separated d i j) then union i j)
              c.Service.endpoints)
          c.Service.endpoints)
      sys.System.services;
    List.init n find |> List.sort_uniq Int.compare |> List.length
  end

let live_vector (sys : System.t) d =
  let v =
    Array.fold_left
      (fun acc c -> Gvector.meet acc (service_live_vector d c))
      Gvector.top sys.System.services
  in
  {
    v with
    Gvector.scope = live_islands sys d;
    order = (Analysis.Guarantee.compose sys).Gvector.order;
  }

let describe sys exec = Gvector.to_string (live_vector sys (of_exec exec))

(* ---- the vector trajectory ----------------------------------------------- *)

(* One entry per step at which the composed live vector changed: the static
   vector degrading under damage and recovering at heals. Oldest first;
   step indices are 1-based positions in the execution. *)
let trajectory (sys : System.t) exec =
  let baseline = Analysis.Guarantee.compose sys in
  let _, _, _, out =
    List.fold_left
      (fun (i, d, prev, out) s ->
        match s.Exec.event with
        | Event.Fail _ | Event.Net _ | Event.Partition _ | Event.Heal _ ->
          let d = absorb d s.Exec.event in
          let v = live_vector sys d in
          if Gvector.equal v prev then i + 1, d, prev, out
          else i + 1, d, v, (i, s.Exec.event, v) :: out
        | _ -> i + 1, d, prev, out)
      (1, empty, baseline, [])
      (Exec.steps exec)
  in
  baseline, List.rev out
