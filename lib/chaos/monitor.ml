type category = Monitor_budget | Adversary

let category_name = function
  | Monitor_budget -> "monitor-budget"
  | Adversary -> "adversary"

type verdict = Pass | Fail of string | Truncated of category * string
type phase = Step | End

type t = {
  name : string;
  phase : phase;
  relevant : Model.Event.t -> bool;
  check : Model.System.t -> Model.Exec.t -> verdict;
}

let on_decide = function Model.Event.Decide _ -> true | _ -> false

(* Recovery-aware waiving: the liveness monitors refuse to turn a network
   fault into a spurious verdict. All three predicates are false on
   crash-only executions, so the crash-only verdicts — and with them the
   pinned differential — are untouched. *)

let has_drop exec =
  List.exists
    (function
      | { Model.Exec.event = Model.Event.Net { kind = Model.Event.Drop; _ }; _ } -> true
      | _ -> false)
    exec.Model.Exec.rev_steps

let has_net_fault exec =
  List.exists
    (function { Model.Exec.event = Model.Event.Net _; _ } -> true | _ -> false)
    exec.Model.Exec.rev_steps

(* Newest-first scan: a heal seen before (i.e. after, in execution order)
   its partition discharges it; a partition with no matching heal is still
   in force when the run ends. *)
let unhealed_partition exec =
  let rec scan healed = function
    | [] -> false
    | { Model.Exec.event = Model.Event.Heal blocks; _ } :: rest ->
      scan (blocks :: healed) rest
    | { Model.Exec.event = Model.Event.Partition blocks; _ } :: rest ->
      let rec remove = function
        | [] -> None
        | b :: bs -> if b = blocks then Some bs else Option.map (List.cons b) (remove bs)
      in
      (match remove healed with
      | Some healed -> scan healed rest
      | None -> true)
    | _ :: rest -> scan healed rest
  in
  scan [] exec.Model.Exec.rev_steps

let pp_values ppf vs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Ioa.Value.pp)
    vs

(* Degraded-scope agreement: while a partition is in force the composed
   scope component is more than one island, so only decisions whose deciders
   were mutually reachable are held to the same value. Two decisions are
   comparable when, at the later of the two, no active partition separated
   the deciders; comparability is closed transitively (union-find) and each
   class must stay within k values. With no partition ever active there is
   one class and the check coincides with plain agreement. *)
let degraded_agreement_check k exec =
  let ds, _ =
    List.fold_left
      (fun (acc, d) (st : Model.Exec.step) ->
        let d = Degrade.absorb d st.Model.Exec.event in
        match st.Model.Exec.event with
        | Model.Event.Decide (pid, v) -> (pid, v, d) :: acc, d
        | _ -> acc, d)
      ([], Degrade.empty) (Model.Exec.steps exec)
  in
  let ds = Array.of_list (List.rev ds) in
  let m = Array.length ds in
  let parent = Array.init m Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for j = 0 to m - 1 do
    let pj, _, dj = ds.(j) in
    for i = 0 to j - 1 do
      let pi, _, _ = ds.(i) in
      if not (Degrade.separated dj pi pj) then union i j
    done
  done;
  let worst = ref None in
  for r = 0 to m - 1 do
    if find r = r then begin
      let values = ref [] in
      for i = 0 to m - 1 do
        if find i = r then
          let _, v, _ = ds.(i) in
          if not (List.exists (Ioa.Value.equal v) !values) then values := v :: !values
      done;
      let distinct = List.length !values in
      if distinct > k then
        match !worst with
        | Some (d0, _) when d0 >= distinct -> ()
        | _ -> worst := Some (distinct, List.rev !values)
    end
  done;
  !worst

let agreement ?(k = 1) ?(degrade = false) () =
  {
    name = (if k = 1 then "agreement" else Printf.sprintf "%d-agreement" k);
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.agreement ~k s then Pass
        else if degrade then (
          match degraded_agreement_check k exec with
          | None -> Pass
          | Some (distinct, values) ->
            Fail
              (Format.asprintf
                 "%d distinct decisions %a within one partition scope (allowed: %d)"
                 distinct pp_values values k))
        else
          Fail
            (Format.asprintf "%d distinct decisions %a (allowed: %d)"
               (List.length (Model.State.decided_values s))
               pp_values (Model.State.decided_values s) k));
  }

let validity =
  {
    name = "validity";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.validity s then Pass
        else Fail (Format.asprintf "decided values %a not all inputs" pp_values (Model.State.decided_values s)));
  }

let per_process_agreement =
  {
    name = "per-process agreement";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        if Model.Properties.per_process_agreement exec then Pass
        else Fail "some process emitted two different decide events");
  }

let f_termination =
  {
    name = "f-termination";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.termination s then Pass
        else if has_drop exec then
          (* An omitted message may be the decision's only carrier; failing
             here would charge the protocol for the adversary's theft.
             Duplications, delays and healed partitions give no such excuse —
             degradation must be graceful once the network recovers. *)
          Truncated (Adversary, "termination waived: message-drop fault(s) in this run")
        else if unhealed_partition exec then
          Truncated (Adversary, "termination waived: partition still unhealed at end of run")
        else
          let undecided =
            List.filteri
              (fun i input ->
                input <> None
                && (not (Spec.Iset.mem i s.Model.State.failed))
                && s.Model.State.decisions.(i) = None)
              (Array.to_list s.Model.State.inputs)
            |> List.length
          in
          Fail
            (Printf.sprintf "%d nonfaulty initialized process(es) never decide" undecided));
  }

(* The degrade-aware variant: instead of waiving liveness wholesale under a
   stolen response or an unhealed partition, demand termination of every
   process the live vector still covers — drop victims lose their guarantee
   (their response is gone for good), a partition waives processes whose
   packet flow is cut (any separation, where a network service carries the
   protocol) or that are fully isolated, and a heal restores the full
   demand. Crash-only verdicts coincide with {!f_termination}. *)
let f_termination_degraded =
  {
    name = "f-termination";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.termination s then Pass
        else
          let d = Degrade.of_exec exec in
          let n = Array.length s.Model.State.procs in
          let pids = List.init n Fun.id in
          let victims = Degrade.drop_victims d in
          let waived i =
            Spec.Iset.mem i victims
            || (Degrade.partition_active d
                && ((n > 1 && List.for_all (fun j -> j = i || Degrade.separated d i j) pids)
                   || (Degrade.has_network_service sys i
                      && List.exists (fun j -> j <> i && Degrade.separated d i j) pids)))
          in
          let undecided =
            List.filteri
              (fun i input ->
                input <> None
                && (not (Spec.Iset.mem i s.Model.State.failed))
                && s.Model.State.decisions.(i) = None
                && not (waived i))
              (Array.to_list s.Model.State.inputs)
            |> List.length
          in
          if undecided = 0 then Pass
          else if d.Degrade.dropped = [] && d.Degrade.mutated = [] && not d.Degrade.was_partitioned
          then
            (* No network damage: word-identical to {!f_termination}, so the
               crash-only differential stays pinned. *)
            Fail
              (Printf.sprintf "%d nonfaulty initialized process(es) never decide" undecided)
          else
            Fail
              (Printf.sprintf
                 "%d process(es) inside the degraded guarantee never decide (live vector %s)"
                 undecided
                 (Analysis.Gvector.to_string (Degrade.live_vector sys d))));
  }

let linearizability ?(max_history = 240) ?(degrade = false) () =
  {
    name = "linearizability";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun sys exec ->
        if (not degrade) && has_net_fault exec then
          (* Buffer mutations detach responses from the operations that
             earned them (a dropped response orphans its invocation, a
             duplicate answers one invocation twice), so the reconstructed
             history no longer reflects what the service did. *)
          Truncated
            (Adversary, "linearizability waived: network fault(s) mutated response buffers")
        else
        (* With [degrade], only the services whose buffers were actually
           mutated lose the check; mutations do not corrupt another
           service's reconstructed history. *)
        let d = if degrade then Degrade.of_exec exec else Degrade.empty in
        let bad = ref None and trunc = ref [] and skipped = ref [] in
        Array.iter
          (fun (c : Model.Service.t) ->
            match c.Model.Service.seq with
            | None -> ()
            | Some seq ->
              if !bad = None then begin
                if degrade && Degrade.mutated d ~service:c.Model.Service.id then
                  skipped :=
                    Printf.sprintf "service %s: buffers mutated by the adversary, history skipped"
                      c.Model.Service.id
                    :: !skipped
                else begin
                  let h = Model.Linearize.history exec ~service:c.Model.Service.id in
                  let len = List.length h in
                  if len > max_history then
                    trunc :=
                      Printf.sprintf "service %s: history of %d events > bound %d"
                        c.Model.Service.id len max_history
                      :: !trunc
                  else if not (Model.Linearize.check seq h) then
                    bad :=
                      Some
                        (Printf.sprintf "service %s: history of %d events not linearizable"
                           c.Model.Service.id len)
                end
              end)
          sys.Model.System.services;
        match !bad with
        | Some why -> Fail why
        | None ->
          if !trunc <> [] then
            (* The monitor, not the adversary, gave up: the history outgrew
               the exponential search's budget. *)
            Truncated (Monitor_budget, String.concat "; " (!trunc @ !skipped))
          else if !skipped <> [] then Truncated (Adversary, String.concat "; " !skipped)
          else Pass);
  }

let alive_pids s =
  List.init (Array.length s.Model.State.procs) Fun.id
  |> List.filter (fun i -> not (Spec.Iset.mem i s.Model.State.failed))

let fd_completeness ~output () =
  {
    name = "fd-completeness";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        if unhealed_partition exec then
          Truncated (Adversary, "completeness waived: partition still unhealed at end of run")
        else
          let s = Model.Exec.last_state exec in
          let missing =
            List.concat_map
              (fun i ->
                let suspects = output s ~pid:i in
                Spec.Iset.elements s.Model.State.failed
                |> List.filter (fun j -> not (Spec.Iset.mem j suspects))
                |> List.map (fun j -> i, j))
              (alive_pids s)
          in
          if missing = [] then Pass
          else
            Fail
              (String.concat "; "
                 (List.map
                    (fun (i, j) -> Printf.sprintf "P%d never suspects crashed P%d" i j)
                    missing)));
  }

let fd_accuracy ~output () =
  {
    name = "fd-accuracy";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        if unhealed_partition exec then
          (* ◇P tolerates finitely many false suspicions while a partition
             is in force; only a healed network must converge to accuracy. *)
          Truncated (Adversary, "accuracy waived: partition still unhealed at end of run")
        else
          let s = Model.Exec.last_state exec in
          let alive = alive_pids s in
          let false_suspicions =
            List.concat_map
              (fun i ->
                let suspects = output s ~pid:i in
                List.filter_map
                  (fun j -> if Spec.Iset.mem j suspects then Some (i, j) else None)
                  alive)
              alive
          in
          if false_suspicions = [] then Pass
          else
            Fail
              (String.concat "; "
                 (List.map
                    (fun (i, j) -> Printf.sprintf "P%d still suspects alive P%d" i j)
                    false_suspicions)));
  }

let safety ?k ?(degrade = false) () = [ agreement ?k ~degrade (); validity; per_process_agreement ]

let defaults ?k ?(degrade = false) () =
  safety ?k ~degrade ()
  @ [
      (if degrade then f_termination_degraded else f_termination);
      linearizability ~degrade ();
    ]

let check_phase monitors ~phase ?event sys exec =
  let applicable m =
    m.phase = phase
    && match phase, event with Step, Some e -> m.relevant e | _ -> true
  in
  List.fold_left
    (fun (fail, truncs) m ->
      if not (applicable m) then fail, truncs
      else
        match fail with
        | Some _ -> fail, truncs
        | None -> (
          match m.check sys exec with
          | Pass -> fail, truncs
          | Fail why -> Some (m.name, why), truncs
          | Truncated (cat, why) -> fail, truncs @ [ m.name, cat, why ]))
    (None, []) monitors
