type verdict = Pass | Fail of string | Truncated of string
type phase = Step | End

type t = {
  name : string;
  phase : phase;
  relevant : Model.Event.t -> bool;
  check : Model.System.t -> Model.Exec.t -> verdict;
}

let on_decide = function Model.Event.Decide _ -> true | _ -> false

(* Recovery-aware waiving: the liveness monitors refuse to turn a network
   fault into a spurious verdict. All three predicates are false on
   crash-only executions, so the crash-only verdicts — and with them the
   pinned differential — are untouched. *)

let has_drop exec =
  List.exists
    (function
      | { Model.Exec.event = Model.Event.Net { kind = Model.Event.Drop; _ }; _ } -> true
      | _ -> false)
    exec.Model.Exec.rev_steps

let has_net_fault exec =
  List.exists
    (function { Model.Exec.event = Model.Event.Net _; _ } -> true | _ -> false)
    exec.Model.Exec.rev_steps

(* Newest-first scan: a heal seen before (i.e. after, in execution order)
   its partition discharges it; a partition with no matching heal is still
   in force when the run ends. *)
let unhealed_partition exec =
  let rec scan healed = function
    | [] -> false
    | { Model.Exec.event = Model.Event.Heal blocks; _ } :: rest ->
      scan (blocks :: healed) rest
    | { Model.Exec.event = Model.Event.Partition blocks; _ } :: rest ->
      let rec remove = function
        | [] -> None
        | b :: bs -> if b = blocks then Some bs else Option.map (List.cons b) (remove bs)
      in
      (match remove healed with
      | Some healed -> scan healed rest
      | None -> true)
    | _ :: rest -> scan healed rest
  in
  scan [] exec.Model.Exec.rev_steps

let pp_values ppf vs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Ioa.Value.pp)
    vs

let agreement ?(k = 1) () =
  {
    name = (if k = 1 then "agreement" else Printf.sprintf "%d-agreement" k);
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.agreement ~k s then Pass
        else
          Fail
            (Format.asprintf "%d distinct decisions %a (allowed: %d)"
               (List.length (Model.State.decided_values s))
               pp_values (Model.State.decided_values s) k));
  }

let validity =
  {
    name = "validity";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.validity s then Pass
        else Fail (Format.asprintf "decided values %a not all inputs" pp_values (Model.State.decided_values s)));
  }

let per_process_agreement =
  {
    name = "per-process agreement";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        if Model.Properties.per_process_agreement exec then Pass
        else Fail "some process emitted two different decide events");
  }

let f_termination =
  {
    name = "f-termination";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.termination s then Pass
        else if has_drop exec then
          (* An omitted message may be the decision's only carrier; failing
             here would charge the protocol for the adversary's theft.
             Duplications, delays and healed partitions give no such excuse —
             degradation must be graceful once the network recovers. *)
          Truncated "termination waived: message-drop fault(s) in this run"
        else if unhealed_partition exec then
          Truncated "termination waived: partition still unhealed at end of run"
        else
          let undecided =
            List.filteri
              (fun i input ->
                input <> None
                && (not (Spec.Iset.mem i s.Model.State.failed))
                && s.Model.State.decisions.(i) = None)
              (Array.to_list s.Model.State.inputs)
            |> List.length
          in
          Fail
            (Printf.sprintf "%d nonfaulty initialized process(es) never decide" undecided));
  }

let linearizability ?(max_history = 240) () =
  {
    name = "linearizability";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun sys exec ->
        if has_net_fault exec then
          (* Buffer mutations detach responses from the operations that
             earned them (a dropped response orphans its invocation, a
             duplicate answers one invocation twice), so the reconstructed
             history no longer reflects what the service did. *)
          Truncated
            "linearizability waived: network fault(s) mutated response buffers"
        else
        let bad = ref None and trunc = ref [] in
        Array.iter
          (fun (c : Model.Service.t) ->
            match c.Model.Service.seq with
            | None -> ()
            | Some seq ->
              if !bad = None then begin
                let h = Model.Linearize.history exec ~service:c.Model.Service.id in
                let len = List.length h in
                if len > max_history then
                  trunc :=
                    Printf.sprintf "service %s: history of %d events > bound %d"
                      c.Model.Service.id len max_history
                    :: !trunc
                else if not (Model.Linearize.check seq h) then
                  bad :=
                    Some
                      (Printf.sprintf "service %s: history of %d events not linearizable"
                         c.Model.Service.id len)
              end)
          sys.Model.System.services;
        match !bad with
        | Some why -> Fail why
        | None -> if !trunc = [] then Pass else Truncated (String.concat "; " !trunc));
  }

let alive_pids s =
  List.init (Array.length s.Model.State.procs) Fun.id
  |> List.filter (fun i -> not (Spec.Iset.mem i s.Model.State.failed))

let fd_completeness ~output () =
  {
    name = "fd-completeness";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        if unhealed_partition exec then
          Truncated "completeness waived: partition still unhealed at end of run"
        else
          let s = Model.Exec.last_state exec in
          let missing =
            List.concat_map
              (fun i ->
                let suspects = output s ~pid:i in
                Spec.Iset.elements s.Model.State.failed
                |> List.filter (fun j -> not (Spec.Iset.mem j suspects))
                |> List.map (fun j -> i, j))
              (alive_pids s)
          in
          if missing = [] then Pass
          else
            Fail
              (String.concat "; "
                 (List.map
                    (fun (i, j) -> Printf.sprintf "P%d never suspects crashed P%d" i j)
                    missing)));
  }

let fd_accuracy ~output () =
  {
    name = "fd-accuracy";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        if unhealed_partition exec then
          (* ◇P tolerates finitely many false suspicions while a partition
             is in force; only a healed network must converge to accuracy. *)
          Truncated "accuracy waived: partition still unhealed at end of run"
        else
          let s = Model.Exec.last_state exec in
          let alive = alive_pids s in
          let false_suspicions =
            List.concat_map
              (fun i ->
                let suspects = output s ~pid:i in
                List.filter_map
                  (fun j -> if Spec.Iset.mem j suspects then Some (i, j) else None)
                  alive)
              alive
          in
          if false_suspicions = [] then Pass
          else
            Fail
              (String.concat "; "
                 (List.map
                    (fun (i, j) -> Printf.sprintf "P%d still suspects alive P%d" i j)
                    false_suspicions)));
  }

let safety ?k () = [ agreement ?k (); validity; per_process_agreement ]
let defaults ?k () = safety ?k () @ [ f_termination; linearizability () ]

let check_phase monitors ~phase ?event sys exec =
  let applicable m =
    m.phase = phase
    && match phase, event with Step, Some e -> m.relevant e | _ -> true
  in
  List.fold_left
    (fun (fail, truncs) m ->
      if not (applicable m) then fail, truncs
      else
        match fail with
        | Some _ -> fail, truncs
        | None -> (
          match m.check sys exec with
          | Pass -> fail, truncs
          | Fail why -> Some (m.name, why), truncs
          | Truncated why -> fail, truncs @ [ m.name, why ]))
    (None, []) monitors
