type verdict = Pass | Fail of string | Truncated of string
type phase = Step | End

type t = {
  name : string;
  phase : phase;
  relevant : Model.Event.t -> bool;
  check : Model.System.t -> Model.Exec.t -> verdict;
}

let on_decide = function Model.Event.Decide _ -> true | _ -> false

let pp_values ppf vs =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Ioa.Value.pp)
    vs

let agreement ?(k = 1) () =
  {
    name = (if k = 1 then "agreement" else Printf.sprintf "%d-agreement" k);
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.agreement ~k s then Pass
        else
          Fail
            (Format.asprintf "%d distinct decisions %a (allowed: %d)"
               (List.length (Model.State.decided_values s))
               pp_values (Model.State.decided_values s) k));
  }

let validity =
  {
    name = "validity";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.validity s then Pass
        else Fail (Format.asprintf "decided values %a not all inputs" pp_values (Model.State.decided_values s)));
  }

let per_process_agreement =
  {
    name = "per-process agreement";
    phase = Step;
    relevant = on_decide;
    check =
      (fun _sys exec ->
        if Model.Properties.per_process_agreement exec then Pass
        else Fail "some process emitted two different decide events");
  }

let f_termination =
  {
    name = "f-termination";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun _sys exec ->
        let s = Model.Exec.last_state exec in
        if Model.Properties.termination s then Pass
        else
          let undecided =
            List.filteri
              (fun i input ->
                input <> None
                && (not (Spec.Iset.mem i s.Model.State.failed))
                && s.Model.State.decisions.(i) = None)
              (Array.to_list s.Model.State.inputs)
            |> List.length
          in
          Fail
            (Printf.sprintf "%d nonfaulty initialized process(es) never decide" undecided));
  }

let linearizability ?(max_history = 240) () =
  {
    name = "linearizability";
    phase = End;
    relevant = (fun _ -> true);
    check =
      (fun sys exec ->
        let bad = ref None and trunc = ref [] in
        Array.iter
          (fun (c : Model.Service.t) ->
            match c.Model.Service.seq with
            | None -> ()
            | Some seq ->
              if !bad = None then begin
                let h = Model.Linearize.history exec ~service:c.Model.Service.id in
                let len = List.length h in
                if len > max_history then
                  trunc :=
                    Printf.sprintf "service %s: history of %d events > bound %d"
                      c.Model.Service.id len max_history
                    :: !trunc
                else if not (Model.Linearize.check seq h) then
                  bad :=
                    Some
                      (Printf.sprintf "service %s: history of %d events not linearizable"
                         c.Model.Service.id len)
              end)
          sys.Model.System.services;
        match !bad with
        | Some why -> Fail why
        | None -> if !trunc = [] then Pass else Truncated (String.concat "; " !trunc));
  }

let safety ?k () = [ agreement ?k (); validity; per_process_agreement ]
let defaults ?k () = safety ?k () @ [ f_termination; linearizability () ]

let check_phase monitors ~phase ?event sys exec =
  let applicable m =
    m.phase = phase
    && match phase, event with Step, Some e -> m.relevant e | _ -> true
  in
  List.fold_left
    (fun (fail, truncs) m ->
      if not (applicable m) then fail, truncs
      else
        match fail with
        | Some _ -> fail, truncs
        | None -> (
          match m.check sys exec with
          | Pass -> fail, truncs
          | Fail why -> Some (m.name, why), truncs
          | Truncated why -> fail, truncs @ [ m.name, why ]))
    (None, []) monitors
