type config = {
  max_faults : int;
  horizon : int;
  stride : int;
  budget : int;
  max_steps : int;
}

let default_config (sys : Model.System.t) =
  {
    max_faults = 1;
    horizon = 2 * Array.length sys.Model.System.tasks;
    stride = 1;
    budget = 1_024;
    max_steps = 20_000;
  }

type violation = {
  schedule : Schedule.t;
  monitor : string;
  reason : string;
  proven : bool;
  exec : Model.Exec.t;
}

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>%s violated (%s) under schedule [%a]:@,%s@]" v.monitor
    (if v.proven then "proven" else "bounded evidence")
    Schedule.pp v.schedule v.reason

type report = {
  examined : int;
  space : int;
  truncated : bool;
  step_budget_hits : int;
  monitor_truncations : int;
  undelivered_crashes : int;
  violation : violation option;
}

let grid cfg = List.init ((cfg.horizon + cfg.stride - 1) / cfg.stride) (fun i -> i * cfg.stride)

let rec choose k lst =
  (* k-subsets of [lst], lexicographic, as a lazy sequence. *)
  if k = 0 then Seq.return []
  else
    match lst with
    | [] -> Seq.empty
    | x :: rest ->
      Seq.append
        (Seq.map (fun c -> x :: c) (choose (k - 1) rest))
        (fun () -> choose k rest ())

let rec tuples k points =
  (* k-tuples over [points] (crash steps per chosen pid), lexicographic. *)
  if k = 0 then Seq.return []
  else
    Seq.flat_map
      (fun tl -> Seq.map (fun p -> p :: tl) (List.to_seq points))
      (fun () -> tuples (k - 1) points ())

let schedules ~n cfg =
  let points = grid cfg in
  let pids = List.init n Fun.id in
  let of_size k =
    Seq.flat_map
      (fun subset ->
        Seq.map
          (fun steps ->
            Schedule.make
              (List.map2 (fun pid step -> Schedule.crash ~step ~pid) subset (List.rev steps)))
          (tuples k points))
      (choose k pids)
  in
  Seq.flat_map of_size (Seq.init (cfg.max_faults + 1) Fun.id)

let space_size ~n cfg =
  let g = List.length (grid cfg) in
  let rec binom n k = if k = 0 || k = n then 1 else binom (n - 1) (k - 1) + binom (n - 1) k in
  let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
  let rec sum k acc =
    if k > cfg.max_faults || k > n then acc else sum (k + 1) (acc + (binom n k * pow g k))
  in
  sum 0 0

let run ?monitors ?interleave ?inputs ?config (sys : Model.System.t) =
  let n = Model.System.n_processes sys in
  let cfg = match config with Some c -> c | None -> default_config sys in
  let space = space_size ~n cfg in
  let examined = ref 0 in
  let step_budget_hits = ref 0 in
  let monitor_truncations = ref 0 in
  let undelivered_crashes = ref 0 in
  let rec scan seq =
    match seq () with
    | Seq.Nil -> None, false
    | Seq.Cons (schedule, rest) ->
      if !examined >= cfg.budget then None, true
      else begin
        incr examined;
        let r =
          Runner.run ?monitors ?interleave ?inputs ~max_steps:cfg.max_steps ~schedule sys
        in
        monitor_truncations := !monitor_truncations + List.length r.Runner.monitor_truncations;
        undelivered_crashes := !undelivered_crashes + r.Runner.undelivered_crashes;
        match r.Runner.stop with
        | Runner.Violation { monitor; reason; proven } ->
          Some { schedule; monitor; reason; proven; exec = r.Runner.exec }, false
        | Runner.Lasso _ -> scan rest
        | Runner.Budget ->
          incr step_budget_hits;
          scan rest
      end
  in
  let violation, truncated = scan (schedules ~n cfg) in
  {
    examined = !examined;
    space;
    truncated;
    step_budget_hits = !step_budget_hits;
    monitor_truncations = !monitor_truncations;
    undelivered_crashes = !undelivered_crashes;
    violation;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>examined %d of %d candidate fault schedule(s)%s@," r.examined r.space
    (if r.truncated then " — TRUNCATED: enumeration budget hit before exhausting the space"
     else "");
  if r.step_budget_hits > 0 then
    Format.fprintf ppf
      "%d run(s) hit the step budget undecided — liveness verdicts there are bounded evidence only@,"
      r.step_budget_hits;
  if r.monitor_truncations > 0 then
    Format.fprintf ppf "%d monitor check(s) truncated (see per-run reports)@,"
      r.monitor_truncations;
  if r.undelivered_crashes > 0 then
    Format.fprintf ppf "%d scheduled crash(es) fell beyond the executed step range@,"
      r.undelivered_crashes;
  (match r.violation with
  | Some v -> Format.fprintf ppf "%a@]" pp_violation v
  | None -> Format.fprintf ppf "no violation found@]")
